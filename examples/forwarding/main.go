// Forwarding demo: reproduce the paper's Figure 1 — the same dependent
// instruction pair with its forwarding path exercised (isolated execution)
// and broken (multi-core fetch delays) — as pipeline diagrams, and show the
// consequence for fault coverage via the per-path excitation counters.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

func main() {
	fig, err := experiments.Figure1(experiments.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderFigure1(fig))
	fmt.Println()

	// Beyond the two-instruction illustration: run the full forwarding
	// self-test routine both ways and compare which multiplexer paths are
	// excited. Unexcited paths are exactly where stuck-at faults survive.
	pathNames := []string{"RF", "EX-EX(L0)", "EX-EX(L1)", "MEM-EX(L0)", "MEM-EX(L1)", "cascade"}
	use := func(strategy core.Strategy, cached bool, active int) [2][2][fault.NumPaths]int64 {
		cfg := soc.DefaultConfig()
		var jobs [soc.NumCores]*core.CoreJob
		for id := 0; id < soc.NumCores; id++ {
			cfg.Cores[id].Active = id < active
			cfg.Cores[id].CachesOn = cached
			cfg.Cores[id].WriteAlloc = true
			if id < active {
				jobs[id] = &core.CoreJob{
					Routine: sbst.NewForwardingTest(sbst.ForwardingOptions{
						DataBase: mem.SRAMBase + 0x2000*uint32(id+1),
					}),
					Strategy: strategy,
					CodeBase: soc.CodeLow + uint32(id)*0x10000,
				}
			}
		}
		_, s, err := core.RunJobs(cfg, jobs, 5_000_000)
		if err != nil {
			log.Fatal(err)
		}
		return s.Cores[0].Core.PathUse
	}

	broken := use(core.Plain{}, false, 3)
	isolated := use(core.CacheBased{WriteAllocate: true}, true, 3)

	fmt.Println("forwarding-path excitation counts of the full routine on core A:")
	fmt.Printf("%-22s %12s %12s\n", "path", "3-core plain", "cache-based")
	for lane := 0; lane < 2; lane++ {
		for op := 0; op < 2; op++ {
			for p := 1; p < fault.NumPaths; p++ {
				if p == fault.PathCascade && lane == 0 {
					continue
				}
				label := fmt.Sprintf("lane%d op%c %s", lane, 'A'+op, pathNames[p])
				fmt.Printf("%-22s %12d %12d\n", label, broken[lane][op][p], isolated[lane][op][p])
			}
		}
	}
	fmt.Println("\npaths with zero excitation in the plain run keep their stuck-at faults undetected;")
	fmt.Println("worse, the set of excited paths changes with the SoC configuration (Table II's min-max).")
}
