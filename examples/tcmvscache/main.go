// TCM-versus-cache demo (the paper's Table IV): run the imprecise-interrupt
// self-test routine under both deterministic execution strategies and
// compare memory overhead and execution time.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

func main() {
	rows, err := experiments.TableIV(experiments.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(experiments.RenderTableIV(rows))
	fmt.Println()

	// The overhead scales with the routine; show it for the whole library.
	fmt.Println("per-routine TCM reservation (bytes) vs cache-based (always 0):")
	routines := []*sbst.Routine{
		sbst.NewForwardingTest(sbst.ForwardingOptions{DataBase: mem.SRAMBase + 0x2000}),
		sbst.NewHDCUTest(sbst.HDCUOptions{DataBase: mem.SRAMBase + 0x2000}),
		sbst.NewICUTest(sbst.ICUOptions{DataBase: mem.SRAMBase + 0x2000}),
	}
	total := 0
	for _, r := range routines {
		ov, err := (core.TCMBased{CoreID: 0}).MemoryOverhead(r)
		if err != nil {
			log.Fatal(err)
		}
		size, _ := r.SizeBytes()
		fmt.Printf("  %-12s routine %5d bytes -> TCM reserved %5d bytes\n", r.Name, size, ov)
		total += ov
	}
	fmt.Printf("  total TCM permanently lost to test code: %d of %d bytes (%.0f%%)\n",
		total, mem.TCMSize, 100*float64(total)/float64(mem.TCMSize))
	fmt.Println("\nthe cache-based strategy frees that capacity for the application —")
	fmt.Println("the paper's core argument for accepting its small execution-time premium.")

	_ = soc.CodeLow
}
