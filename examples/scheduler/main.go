// Scheduler demo: partition the boot-time STL across the three cores with
// the decentralized scheduler (after the paper's reference [13]), run it
// with the end-of-test barrier, and compare the makespan against serial
// execution.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/sched"
	"repro/internal/soc"
)

func main() {
	// Two instances of the generic library, each routine iterating its
	// pattern sweep four times (boot tests typically do several passes).
	var tasks []sched.Task
	for i := 0; i < 2; i++ {
		for _, r := range sbst.StandardSTL(mem.SRAMBase + 0x3000*uint32(i+1)) {
			rr := sbst.Repeat(r, 4)
			size, _ := rr.SizeBytes()
			tasks = append(tasks, sched.Task{Routine: rr, EstCycles: int64(size) * 4})
		}
	}

	run := func(nCores int) int64 {
		plan, err := sched.Partition(tasks, nCores)
		if err != nil {
			log.Fatal(err)
		}
		if nCores > 1 {
			fmt.Printf("plan for %d cores:\n", nCores)
			for id := 0; id < nCores; id++ {
				fmt.Printf("  core %c:", rune('A'+id))
				for _, t := range plan.PerCore[id] {
					fmt.Printf(" %s", t.Routine.Name)
				}
				fmt.Println()
			}
		}
		jobs := plan.Jobs(func(int) core.Strategy { return core.Plain{} })
		cfg := soc.DefaultConfig()
		for id := 0; id < soc.NumCores; id++ {
			cfg.Cores[id].Active = id < nCores
			cfg.Cores[id].CachesOn = true
			cfg.Cores[id].WriteAlloc = true
		}
		results, _, err := core.RunJobs(cfg, jobs, 20_000_000)
		if err != nil {
			log.Fatal(err)
		}
		var makespan int64
		for id := 0; id < nCores; id++ {
			if results[id] == nil || !results[id].OK {
				log.Fatalf("core %d failed", id)
			}
			if results[id].Cycles > makespan {
				makespan = results[id].Cycles
			}
		}
		return makespan
	}

	serial := run(1)
	parallel := run(3)
	fmt.Printf("\nserial boot test:   %7d cycles\n", serial)
	fmt.Printf("parallel boot test: %7d cycles (%.2fx speedup, barrier included)\n",
		parallel, float64(serial)/float64(parallel))
	fmt.Println("\nhigher availability is why the paper wants parallel boot tests —")
	fmt.Println("and parallel execution is exactly what breaks naive self-test determinism.")
}
