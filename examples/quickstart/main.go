// Quickstart: wrap a self-test routine with the paper's cache-based
// strategy and watch its signature stay identical across multi-core SoC
// configurations that break the plain version.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

func main() {
	// The routine under test: the hazard-detection-unit self-test. Its
	// signature folds pipeline stall counters, so it is maximally
	// sensitive to timing.
	mkRoutine := func(coreID int) *sbst.Routine {
		r, err := sbst.NewRoutineByName("hdcu", sbst.RoutineOptions{
			DataBase: mem.SRAMBase + 0x2000*uint32(coreID+1),
			CoreID:   coreID,
		})
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	// Three SoC configurations: different start phases and code positions,
	// the "initial SoC configuration" the paper says an in-field test
	// cannot predict.
	type config struct {
		delays [soc.NumCores]int
		bases  [soc.NumCores]uint32
	}
	configs := []config{
		{[3]int{0, 0, 0}, [3]uint32{soc.CodeLow, soc.CodeMid, soc.CodeHigh}},
		{[3]int{0, 11, 23}, [3]uint32{soc.CodeMid, soc.CodeLow, soc.CodeHigh}},
		{[3]int{7, 0, 13}, [3]uint32{soc.CodeHigh, soc.CodeMid, soc.CodeLow}},
	}

	run := func(strategy core.Strategy, cached bool) []uint32 {
		var sigs []uint32
		for _, c := range configs {
			cfg := soc.DefaultConfig()
			var jobs [soc.NumCores]*core.CoreJob
			for id := 0; id < soc.NumCores; id++ {
				cfg.Cores[id].CachesOn = cached
				cfg.Cores[id].WriteAlloc = true
				cfg.Cores[id].StartDelay = c.delays[id]
				jobs[id] = &core.CoreJob{
					Routine:  mkRoutine(id),
					Strategy: strategy,
					CodeBase: c.bases[id],
				}
			}
			results, _, err := core.RunJobs(cfg, jobs, 5_000_000)
			if err != nil {
				log.Fatal(err)
			}
			if !results[0].OK {
				log.Fatalf("core A failed: %+v", results[0])
			}
			sigs = append(sigs, results[0].Signature)
		}
		return sigs
	}

	fmt.Println("plain in-place execution (no caches), core A signatures per configuration:")
	for i, sig := range run(core.Plain{}, false) {
		fmt.Printf("  config %d: %08x\n", i, sig)
	}
	fmt.Println("-> the signatures disagree: no golden value exists, the test cannot ship.")
	fmt.Println()
	fmt.Println("cache-based strategy (invalidate + loading loop + execution loop):")
	for i, sig := range run(core.CacheBased{WriteAllocate: true}, true) {
		fmt.Printf("  config %d: %08x\n", i, sig)
	}
	fmt.Println("-> one stable signature: store it as the golden reference and test in field.")
}
