// Fault-injection walkthrough: inject a single stuck-at fault into the
// forwarding network, watch the self-test signature expose it under the
// cache-based strategy, then run a small campaign and break detection down
// per signal class.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

func runOnce(plane fault.Plane) (uint32, bool) {
	cfg := soc.DefaultConfig()
	for id := 0; id < soc.NumCores; id++ {
		cfg.Cores[id].Active = id == 0
		cfg.Cores[id].CachesOn = true
		cfg.Cores[id].WriteAlloc = true
	}
	cfg.Cores[0].Plane = plane
	routine, err := sbst.NewRoutineByName("forwarding", sbst.RoutineOptions{DataBase: mem.SRAMBase + 0x2000})
	if err != nil {
		log.Fatal(err)
	}
	res, _, err := core.RunSingle(cfg, 0, &core.CoreJob{
		Routine:  routine,
		Strategy: core.CacheBased{WriteAllocate: true},
		CodeBase: soc.CodeLow,
	}, 3_000_000)
	if err != nil {
		log.Fatal(err)
	}
	return res.Signature, res.OK
}

func main() {
	golden, ok := runOnce(nil)
	if !ok {
		log.Fatal("golden run failed")
	}
	fmt.Printf("golden signature: %08x\n\n", golden)

	// One fault, end to end: a stuck-at-1 data line on the EX-to-EX bypass
	// feeding lane 0's first operand, bit 13.
	site := fault.Site{
		Unit: fault.UnitFwd, Signal: fault.SigMuxData,
		Lane: 0, Operand: 0, Path: fault.PathEXL0, Bit: 13, Stuck: 1,
	}
	sig, _ := runOnce(fault.NewSingle(site))
	fmt.Printf("with %v:\n", site)
	fmt.Printf("  signature %08x -> %s\n\n", sig, verdict(sig != golden))

	// A small campaign over the forwarding universe (every 4th data bit to
	// keep this demo fast).
	sites := fault.ForwardingLogic(fault.ListOptions{DataBits: 32, BitStep: 4})
	fault.SortSites(sites)
	rep := fault.Simulate(sites, runOnce, 0)
	fmt.Println("campaign:", rep.String())
	fmt.Println("per-signal breakdown:")
	for _, st := range rep.BySignal() {
		fmt.Printf("  %-8v %3d/%3d (%.1f%%)\n", st.Signal, st.Detected, st.Total,
			100*float64(st.Detected)/float64(st.Total))
	}
	if und := rep.Undetected(); len(und) > 0 {
		fmt.Printf("first undetected survivors (%d total):\n", len(und))
		for i, s := range und {
			if i == 5 {
				break
			}
			fmt.Println("  ", s)
		}
	}
}

func verdict(detected bool) string {
	if detected {
		return "DETECTED (signature mismatch: the part is rejected)"
	}
	return "not detected"
}
