package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fault universes and scenario counts")
	only := flag.String("only", "", "run a single experiment: t1, t2, t3, t4, fig1, fig2, delay")
	workers := flag.Int("workers", 0, "fault-simulation worker goroutines (0 = GOMAXPROCS)")
	flag.Parse()

	o := experiments.Options{Quick: *quick, Workers: *workers}
	want := func(name string) bool { return *only == "" || *only == name }
	start := time.Now()

	if want("fig1") {
		res, err := experiments.Figure1(o)
		fail(err)
		fmt.Println(experiments.RenderFigure1(res))
	}
	if want("fig2") {
		res, err := experiments.Figure2(o)
		fail(err)
		fmt.Println(experiments.RenderFigure2(res))
	}
	if want("t1") {
		rows, err := experiments.TableI(o)
		fail(err)
		fmt.Println(experiments.RenderTableI(rows))
	}
	if want("t2") {
		rows, err := experiments.TableII(o)
		fail(err)
		fmt.Println(experiments.RenderTableII(rows))
	}
	if want("t3") {
		rows, err := experiments.TableIII(o)
		fail(err)
		fmt.Println(experiments.RenderTableIII(rows))
	}
	if want("t4") {
		rows, err := experiments.TableIV(o)
		fail(err)
		fmt.Println(experiments.RenderTableIV(rows))
	}
	if want("delay") {
		rows, err := experiments.DelayFaults(o)
		fail(err)
		fmt.Println(experiments.RenderDelay(rows))
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
