package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fault universes and scenario counts")
	only := flag.String("only", "", "run a single experiment: t1, t2, t3, t4, fig1, fig2, delay")
	workers := flag.Int("workers", 0, "fault-simulation worker goroutines (0 = GOMAXPROCS)")
	progress := flag.Duration("progress", 0, "print per-campaign progress lines to stderr every interval (0 = off)")
	eventsPath := flag.String("events", "", "stream campaign and table-span events (JSONL) to this file")
	telemetryAddr := flag.String("telemetry", "", "serve Prometheus /metrics and /debug/pprof on this address (:0 picks a free port, printed to stderr)")
	summaryPath := flag.String("summary", "", "write a telemetry-snapshot JSON (per-table spans, campaign metrics) to this file")
	flag.Parse()

	o := experiments.Options{Quick: *quick, Workers: *workers, Progress: *progress}
	var reg *telemetry.Registry
	if *telemetryAddr != "" || *summaryPath != "" {
		reg = telemetry.NewRegistry()
		o.Telemetry = reg
	}
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		fail(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "repro: telemetry on http://%s/metrics\n", srv.Addr())
	}
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		fail(err)
		defer f.Close()
		o.Events = telemetry.NewEventLog(f)
	}
	want := func(name string) bool { return *only == "" || *only == name }
	start := time.Now()

	if want("fig1") {
		res, err := experiments.Figure1(o)
		fail(err)
		fmt.Println(experiments.RenderFigure1(res))
	}
	if want("fig2") {
		res, err := experiments.Figure2(o)
		fail(err)
		fmt.Println(experiments.RenderFigure2(res))
	}
	if want("t1") {
		rows, err := experiments.TableI(o)
		fail(err)
		fmt.Println(experiments.RenderTableI(rows))
	}
	if want("t2") {
		rows, err := experiments.TableII(o)
		fail(err)
		fmt.Println(experiments.RenderTableII(rows))
	}
	if want("t3") {
		rows, err := experiments.TableIII(o)
		fail(err)
		fmt.Println(experiments.RenderTableIII(rows))
	}
	if want("t4") {
		rows, err := experiments.TableIV(o)
		fail(err)
		fmt.Println(experiments.RenderTableIV(rows))
	}
	if want("delay") {
		rows, err := experiments.DelayFaults(o)
		fail(err)
		fmt.Println(experiments.RenderDelay(rows))
	}
	fail(o.Events.Err())
	if *summaryPath != "" {
		blob, err := json.MarshalIndent(struct {
			FinishedAt time.Time          `json:"finishedAt"`
			Telemetry  telemetry.Snapshot `json:"telemetry"`
		}{time.Now().UTC(), reg.Snapshot()}, "", "  ")
		fail(err)
		fail(os.WriteFile(*summaryPath, append(blob, '\n'), 0o644))
	}
	fmt.Printf("total wall time: %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}
