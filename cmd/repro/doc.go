// Command repro regenerates the paper's evaluation: every table and figure
// of Section IV, printed in the paper's layout.
//
// Usage:
//
//	repro [-quick] [-only t1|t2|t3|t4|fig1|fig2|delay] [-workers N]
package main
