// Command faultserve is the campaign job server: it accepts fault-campaign
// specs over HTTP/JSON, shards each campaign's fault universe across
// leasing faultworker processes, streams per-site verdicts as an NDJSON
// event feed, and caches every settled verdict in a content-addressed
// store — so resubmitting a campaign (or overlapping with one) is served
// from cache without simulation, and a worker or server kill resumes
// site-granularly to the same byte-identical report.
//
// Usage:
//
//	faultserve [-addr :8080] [-store DIR] [-shard-size N] [-lease 1m]
//
// The API (docs/SERVICE.md is the full reference):
//
//	POST /v1/jobs                    submit a campaign spec (?wait=1 blocks)
//	GET  /v1/jobs                    list jobs
//	GET  /v1/jobs/{id}               job status (?wait=1 blocks)
//	GET  /v1/jobs/{id}/report        final report (byte-identical to faultsim -report)
//	GET  /v1/jobs/{id}/events        NDJSON event stream (replay + follow)
//	GET  /v1/jobs/{id}/metrics       per-job Prometheus metrics
//	POST /v1/lease                   worker: lease a shard
//	POST /v1/jobs/{id}/shards/{s}/verdicts   worker: stream verdicts
//	POST /v1/jobs/{id}/shards/{s}/complete   worker: confirm completion
//	GET  /metrics, /debug/pprof/     pool telemetry (PR 9 surface)
package main
