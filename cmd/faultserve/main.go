package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (:0 picks a free port, printed to stderr)")
	store := flag.String("store", "faultserve-store", "content-addressed store directory (one verdict journal per campaign fingerprint)")
	shardSize := flag.Int("shard-size", serve.DefaultShardSize, "shard width in sites (the unit of work distribution and caching)")
	lease := flag.Duration("lease", serve.DefaultLease, "shard lease duration; a silent worker forfeits its shard after this long")
	flag.Parse()

	srv, err := serve.New(serve.Config{
		StoreDir:  *store,
		ShardSize: *shardSize,
		Lease:     *lease,
		Registry:  telemetry.NewRegistry(),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultserve:", err)
		os.Exit(1)
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultserve:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "faultserve: listening on http://%s (store %s)\n", ln.Addr(), *store)
	hs := &http.Server{Handler: srv, ReadHeaderTimeout: 10 * time.Second}
	if err := hs.Serve(ln); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "faultserve:", err)
		os.Exit(1)
	}
}
