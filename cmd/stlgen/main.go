package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

func main() {
	routineName := flag.String("routine", "hdcu", "routine to generate")
	strategyName := flag.String("strategy", "cache", "plain, cache or tcm")
	coreID := flag.Int("core", 0, "core the program targets")
	base := flag.Uint("base", soc.CodeLow, "link address")
	flag.Parse()

	r, err := sbst.NewRoutineByName(*routineName, sbst.RoutineOptions{
		DataBase: mem.SRAMBase + 0x2000*uint32(*coreID+1),
		CoreID:   *coreID,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "stlgen:", err)
		os.Exit(2)
	}

	var strat core.Strategy
	switch *strategyName {
	case "plain":
		strat = core.Plain{}
	case "cache":
		strat = core.CacheBased{WriteAllocate: true}
	case "tcm":
		strat = core.TCMBased{CoreID: *coreID}
	default:
		fmt.Fprintf(os.Stderr, "stlgen: unknown strategy %q\n", *strategyName)
		os.Exit(2)
	}

	b := asm.NewBuilder()
	if err := strat.Emit(b, r); err != nil {
		fmt.Fprintln(os.Stderr, "stlgen:", err)
		os.Exit(1)
	}
	b.Halt()
	prog, err := b.Assemble(uint32(*base))
	if err != nil {
		fmt.Fprintln(os.Stderr, "stlgen:", err)
		os.Exit(1)
	}

	plainSize, _ := r.SizeBytes()
	overhead, _ := strat.MemoryOverhead(r)
	fmt.Printf("; routine %s  strategy %s  core %c\n", r.Name, strat.Name(), rune('A'+*coreID))
	fmt.Printf("; single-core body %d bytes, emitted program %d bytes, data %d bytes, reserved memory %d bytes\n",
		plainSize, prog.Size(), r.DataSize(), overhead)
	fmt.Printf("; blocks: %d, perf counters: %v, interrupts: %v, splittable: %v\n\n",
		len(r.Blocks), r.UsesPerfCounters, r.UsesInterrupts, !r.NoSplit)
	fmt.Print(prog.Listing())
}
