// Command stlgen generates a self-test routine and prints its assembled
// listing — the single-core form or any wrapped strategy — together with
// size and footprint figures. Useful for inspecting exactly what the
// strategies emit.
//
// Usage:
//
//	stlgen [-routine forwarding|hdcu|icu|alu|shift|mul|loadstore|branch]
//	       [-strategy plain|cache|tcm] [-core N] [-base addr]
package main
