// Command conform runs the conformance suite: seeded random programs
// cross-checked between the functional ISS, the cycle-accurate pipeline
// (cached, uncached, bus-contended, interrupt-enabled) and the fault-free
// arena engine, plus random fault universes pushed through both campaign
// engines with bit-identical reports required (see internal/conform).
//
// Usage:
//
//	conform [-scenario all|cached|uncached|contended|arena|interrupts|campaign]
//	        [-seed N] [-n N] [-duration D] [-cover] [-corpus DIR]
//	        [-minimize] [-recipe FILE] [-selftest] [-v]
//
// By default each scenario runs -n fresh seeded programs (or universes).
// With -cover the program scenarios instead run the coverage-guided corpus
// loop: the target system is instrumented with internal/coverage counters
// (issue slots, stalls, forwarding paths, bus contention, cache states),
// and programs that light new coverage bits are kept and mutated
// (splice/drop/dup/swap plus knob perturbation) while the rest are
// discarded. Each scenario then prints a coverage summary by feature
// group. -corpus DIR persists interesting programs as recipe JSON files
// and reloads them on the next run (implies -cover); -minimize instead
// runs the corpus lifecycle pass over -corpus through -scenario, deleting
// entries whose coverage bits the rest of the corpus subsumes.
//
// The interrupts scenario generates handler-carrying programs under a
// deterministic retire-indexed interrupt plan (internal/archint): the ISS
// recognises the plan precisely, the pipeline receives the same plan
// through its ICU, and the architectural results must still agree.
// Failing interrupt programs minimize along both axes — program units and
// plan events.
//
// On a mismatch the failing input is shrunk (drop-an-instruction for
// programs, drop-a-site for fault universes) and the tool prints the
// divergence, a one-line repro command and the minimized disassembly, then
// exits non-zero. Guided finds additionally print the failing program's
// recipe; -recipe FILE replays such a recipe through -scenario directly.
//
// -selftest injects a decoder bug (arithmetic right shifts decode as
// logical) into the pipeline's program image and verifies the harness
// catches and minimizes it — the end-to-end check that the fuzzer can
// actually find bugs. Combined with -cover it exercises the guided loop's
// catch path instead of the seed sweep.
package main
