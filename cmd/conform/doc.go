// Command conform runs the conformance suite: seeded random programs
// cross-checked between the functional ISS, the cycle-accurate pipeline
// (cached, uncached, bus-contended, interrupt-enabled), the fault-free
// arena engine, the wrapping strategies and the multi-core scheduler,
// plus random fault universes pushed through both campaign engines with
// bit-identical reports required (see internal/conform).
//
// Usage:
//
//	conform [-scenario all|cached|uncached|contended|arena|interrupts|strategies|sched|campaign]
//	        [-seed N] [-n N] [-duration D] [-cover] [-corpus DIR]
//	        [-minimize] [-recipe FILE] [-selftest] [-list]
//	        [-artifacts DIR] [-v]
//
// By default each scenario runs -n fresh seeded programs (or universes).
// With -cover the program scenarios instead run the coverage-guided corpus
// loop: the target system is instrumented with internal/coverage counters
// (issue slots, stalls, forwarding paths, bus contention, cache states),
// and programs that light new coverage bits are kept and mutated
// (splice/drop/dup/swap plus knob perturbation) while the rest are
// discarded. Each scenario then prints a coverage summary by feature
// group. -corpus DIR persists interesting programs as recipe JSON files
// and reloads them on the next run (implies -cover); -minimize instead
// runs the corpus lifecycle pass over -corpus through -scenario, deleting
// entries whose coverage bits the rest of the corpus subsumes.
//
// The interrupts scenario generates handler-carrying programs under a
// deterministic retire-indexed interrupt plan (internal/archint): the ISS
// recognises the plan precisely, the pipeline receives the same plan
// through its ICU, and the architectural results must still agree.
// Failing interrupt programs minimize along both axes — program units and
// plan events.
//
// The strategies scenario bridges the program into routine block form
// (progen.BlockForm) and wraps it with core.Plain, core.CacheBased (a
// seed-swept partition budget exercises multi-chunk splitting) and
// core.TCMBased: every wrapping the strategy accepts must reproduce the
// ISS reference signature, and Validate/MemoryOverhead rejections are
// counted as explicit skip verdicts. The sched scenario partitions the
// bridged program plus seed-derived sbst library tasks over a random core
// count and requires the multi-core barrier boot's per-task signatures to
// be bit-identical to the one-core serial plan; its failures minimize
// along program units and library tasks.
//
// -list prints the scenario names one per line (machine-readable); the CI
// workflow matrices are gated against it by TestScenarioMatrixInSync.
// -artifacts DIR saves every reported mismatch's minimized recipe/plan
// JSON into DIR so CI can upload it as a workflow artifact.
//
// On a mismatch the failing input is shrunk (drop-an-instruction for
// programs, drop-a-site for fault universes) and the tool prints the
// divergence, a one-line repro command and the minimized disassembly, then
// exits non-zero. Guided finds additionally print the failing program's
// recipe; -recipe FILE replays such a recipe through -scenario directly.
//
// -selftest injects a decoder bug (arithmetic right shifts decode as
// logical) into the pipeline's program image and verifies the harness
// catches and minimizes it — the end-to-end check that the fuzzer can
// actually find bugs. Combined with -cover it exercises the guided loop's
// catch path instead of the seed sweep.
package main
