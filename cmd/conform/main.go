// Command conform runs the conformance suite: seeded random programs
// cross-checked between the functional ISS, the cycle-accurate pipeline
// (cached, uncached, bus-contended) and the fault-free arena engine, plus
// random fault universes pushed through both campaign engines with
// bit-identical reports required (see internal/conform).
//
// Usage:
//
//	conform [-scenario all|cached|uncached|contended|arena|campaign]
//	        [-seed N] [-n N] [-duration D] [-selftest] [-v]
//
// On a mismatch the failing input is shrunk (drop-an-instruction for
// programs, drop-a-site for fault universes) and the tool prints the
// divergence, a one-line repro command and the minimized disassembly, then
// exits non-zero.
//
// -selftest injects a decoder bug (arithmetic right shifts decode as
// logical) into the pipeline's program image and verifies the harness
// catches and minimizes it — the end-to-end check that the fuzzer can
// actually find bugs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/conform"
)

func main() {
	scenarioName := flag.String("scenario", "all", "scenario to run (all, cached, uncached, contended, arena, campaign)")
	seed := flag.Int64("seed", 1, "first seed")
	n := flag.Int("n", 200, "programs (or universes) per scenario")
	duration := flag.Duration("duration", 0, "run each scenario for this long instead of -n iterations")
	selftest := flag.Bool("selftest", false, "inject a decoder bug and require the harness to catch and minimize it")
	verbose := flag.Bool("v", false, "print every seed")
	flag.Parse()

	if *selftest {
		os.Exit(runSelfTest(*seed, *n, *verbose))
	}

	var scenarios []*conform.Scenario
	if *scenarioName == "all" {
		scenarios = conform.Scenarios()
	} else {
		sc, err := conform.Lookup(*scenarioName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "conform:", err)
			os.Exit(2)
		}
		scenarios = []*conform.Scenario{sc}
	}

	for _, sc := range scenarios {
		start := time.Now()
		deadline := time.Time{}
		if *duration > 0 {
			deadline = start.Add(*duration)
		}
		iters := 0
		for i := 0; ; i++ {
			if deadline.IsZero() {
				if i >= *n {
					break
				}
			} else if time.Now().After(deadline) {
				break
			}
			s := *seed + int64(i)
			if *verbose {
				fmt.Printf("scenario %-9s seed %d\n", sc.Name, s)
			}
			if m := sc.Run(s); m != nil {
				report(m)
				os.Exit(1)
			}
			iters++
		}
		fmt.Printf("scenario %-9s %4d runs ok  (%.1fs)  %s\n",
			sc.Name, iters, time.Since(start).Seconds(), sc.Desc)
	}
}

// report shrinks and prints a mismatch.
func report(m *conform.Mismatch) {
	fmt.Printf("MISMATCH: %s\n", m)
	fmt.Println("minimizing...")
	m.Minimize()
	fmt.Printf("minimized: %s\n", m.Detail)
	if m.Program != nil {
		fmt.Printf("minimized program: %d instructions (+HALT)\n", m.Program.NumInsts())
	} else {
		fmt.Printf("minimized universe: %d sites\n", len(m.Sites))
	}
	fmt.Printf("repro: %s\n", m.Repro())
	fmt.Println(m.Disassembly())
}

// runSelfTest injects conform.DecoderBugArithShift into the uncached
// scenario and requires the harness to catch it within n seeds and shrink
// the repro to a handful of instructions.
func runSelfTest(seed int64, n int, verbose bool) int {
	sc, err := conform.NewMutated("uncached", conform.DecoderBugArithShift)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	for i := 0; i < n; i++ {
		s := seed + int64(i)
		if verbose {
			fmt.Printf("selftest seed %d\n", s)
		}
		m := sc.Run(s)
		if m == nil {
			continue
		}
		fmt.Printf("injected decoder bug caught: %s\n", m)
		m.Minimize()
		insts := m.Program.NumInsts()
		fmt.Printf("minimized to %d instructions (+HALT): %s\n", insts, m.Detail)
		fmt.Println(m.Disassembly())
		if insts > 20 {
			fmt.Fprintf(os.Stderr, "conform: selftest repro too large (%d instructions)\n", insts)
			return 1
		}
		fmt.Println("selftest ok")
		return 0
	}
	fmt.Fprintf(os.Stderr, "conform: selftest: injected bug not caught in %d seeds\n", n)
	return 1
}
