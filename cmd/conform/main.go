package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"repro/internal/conform"
	"repro/internal/fault"
	"repro/internal/progen"
	"repro/internal/telemetry"
)

func main() {
	scenarioName := flag.String("scenario", "all", "scenario to run (all, cached, uncached, contended, arena, interrupts, strategies, sched, campaign, multifault)")
	seed := flag.Int64("seed", 1, "first seed")
	n := flag.Int("n", 200, "programs (or universes) per scenario")
	duration := flag.Duration("duration", 0, "run each scenario for this long instead of -n iterations")
	cover := flag.Bool("cover", false, "coverage-guided fuzzing: keep and mutate programs that reach new microarchitectural coverage, and print a coverage summary")
	corpus := flag.String("corpus", "", "corpus directory of recipe files to load before fuzzing and extend with new finds (implies -cover)")
	minimize := flag.Bool("minimize", false, "minimize the -corpus directory through -scenario (drop entries whose coverage other entries subsume) and exit")
	recipe := flag.String("recipe", "", "replay one recipe JSON file through -scenario and exit (repro mode)")
	selftest := flag.Bool("selftest", false, "inject a decoder bug and require the harness to catch and minimize it")
	list := flag.Bool("list", false, "print the scenario names, one per line, and exit (machine-readable; CI matrices sync against it)")
	artifacts := flag.String("artifacts", "", "on a mismatch, save the failing recipe/plan JSON into this directory (workflow-artifact repro)")
	progress := flag.Duration("progress", 0, "print a progress line to stderr every interval (0 = off)")
	telemetryAddr := flag.String("telemetry", "", "serve Prometheus /metrics and /debug/pprof on this address (:0 picks a free port, printed to stderr)")
	verbose := flag.Bool("v", false, "print every seed")
	flag.Parse()

	if *list {
		for _, sc := range conform.Scenarios() {
			fmt.Println(sc.Name)
		}
		return
	}
	artifactsDir = *artifacts
	if *corpus != "" {
		*cover = true
	}
	if *minimize {
		os.Exit(runMinimize(*scenarioName, *corpus))
	}
	if *recipe != "" {
		os.Exit(replayRecipe(*recipe, *scenarioName, *selftest))
	}
	if *selftest {
		os.Exit(runSelfTest(*seed, *n, *cover, *verbose))
	}

	var scenarios []*conform.Scenario
	if *scenarioName == "all" {
		scenarios = conform.Scenarios()
	} else {
		sc, err := conform.Lookup(*scenarioName)
		if err != nil {
			fmt.Fprintln(os.Stderr, "conform:", err)
			os.Exit(2)
		}
		scenarios = []*conform.Scenario{sc}
	}

	// Telemetry: one registry across every scenario when a listener is up
	// (the fuzz loops and the plain-loop ticker all feed it). A progress
	// interval alone also needs it for the rate counters.
	var reg *telemetry.Registry
	if *telemetryAddr != "" || *progress > 0 {
		reg = telemetry.NewRegistry()
	}
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "conform:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "conform: telemetry on http://%s/metrics\n", srv.Addr())
	}
	plainRuns := reg.Counter("conform_runs_total")

	// Panicked checks and all-skip windows fail the run, but only after
	// every scenario has had its turn — they are verdicts about the suite,
	// not stop-the-world divergences.
	exitCode := 0
	for _, sc := range scenarios {
		start := time.Now()
		deadline := time.Time{}
		iters := *n
		if *duration > 0 {
			deadline = start.Add(*duration)
			iters = 1 << 30 // the deadline is the bound
		}
		if *cover && sc.Guidable() {
			res, err := sc.Fuzz(*seed, iters, deadline,
				conform.FuzzOptions{CorpusDir: *corpus, OnPanic: saveArtifact,
					Telemetry: reg, Progress: *progress})
			if err != nil {
				fmt.Fprintln(os.Stderr, "conform:", err)
				os.Exit(2)
			}
			if res.Mismatch != nil {
				report(res.Mismatch)
				reportGuided(sc.Name, *seed, *corpus, res)
				os.Exit(1)
			}
			fmt.Printf("scenario %-9s %s  (%.1fs)\n", sc.Name, res.Summary(), time.Since(start).Seconds())
			if res.Panics > 0 {
				fmt.Fprintf(os.Stderr, "conform: scenario %s: %d panicked checks isolated (first: %s)\n",
					sc.Name, res.Panics, res.FirstPanic.Detail)
				exitCode = 1
			}
			if res.Iters > 0 && res.FullSkips >= res.Iters {
				fmt.Fprintf(os.Stderr, "conform: scenario %s skipped all %d iterations entirely — this seed window tests nothing\n",
					sc.Name, res.Iters)
				exitCode = 1
			}
			continue
		}
		if *cover {
			fmt.Printf("scenario %-9s runs unguided (no generated program to steer)\n", sc.Name)
		}
		count, panics := 0, 0
		fullBase := sc.FullSkips()
		// The plain-loop progress ticker reads only the registry counter,
		// never the loop's own locals.
		runsBase := plainRuns.Value()
		tick := telemetry.StartTicker(*progress, func() {
			n := plainRuns.Value() - runsBase
			fmt.Fprintf(os.Stderr, "progress: scenario %s, %d runs, %.1f runs/s\n",
				sc.Name, n, float64(n)/time.Since(start).Seconds())
		})
		for i := 0; ; i++ {
			if deadline.IsZero() {
				if i >= iters {
					break
				}
			} else if time.Now().After(deadline) {
				break
			}
			s := *seed + int64(i)
			if *verbose {
				fmt.Printf("scenario %-9s seed %d\n", sc.Name, s)
			}
			if m := sc.Run(s); m != nil {
				if m.Panicked {
					// Isolated, artifact saved, sweep continues: one
					// crashing seed must not cost the rest of the window.
					panics++
					fmt.Printf("scenario %-9s seed %d PANIC (isolated): %s\n", sc.Name, s, m.Detail)
					saveArtifact(m)
					count++
					plainRuns.Inc()
					continue
				}
				report(m)
				os.Exit(1)
			}
			count++
			plainRuns.Inc()
		}
		tick.Stop()
		fmt.Printf("scenario %-9s %4d runs ok  (%.1fs)  %s\n",
			sc.Name, count, time.Since(start).Seconds(), sc.Desc)
		if panics > 0 {
			fmt.Fprintf(os.Stderr, "conform: scenario %s: %d panicked checks isolated\n", sc.Name, panics)
			exitCode = 1
		}
		if fullSkips := sc.FullSkips() - fullBase; count > 0 && fullSkips >= count {
			fmt.Fprintf(os.Stderr, "conform: scenario %s skipped all %d iterations entirely — this seed window tests nothing\n",
				sc.Name, count)
			exitCode = 1
		}
	}
	os.Exit(exitCode)
}

// artifactsDir, when set via -artifacts, receives the failing recipe/plan
// JSON of every reported mismatch so CI can upload it as a workflow
// artifact and the repro survives the runner.
var artifactsDir string

// artifact is the self-describing failure record written to artifactsDir.
type artifact struct {
	Scenario string         `json:"scenario"`
	Seed     int64          `json:"seed"`
	Detail   string         `json:"detail"`
	Repro    string         `json:"repro"`
	Panicked bool           `json:"panicked,omitempty"`
	Stack    string         `json:"stack,omitempty"`
	LibTasks []string       `json:"libTasks,omitempty"`
	Recipe   *progen.Recipe `json:"recipe,omitempty"`
	Sites    []fault.Site   `json:"sites,omitempty"`
	Groups   [][]fault.Site `json:"groups,omitempty"`
}

// saveArtifact writes the minimized mismatch into artifactsDir (no-op when
// the flag is unset). Failures to save are reported but never mask the
// mismatch exit code.
func saveArtifact(m *conform.Mismatch) {
	if artifactsDir == "" {
		return
	}
	a := artifact{Scenario: m.Scenario, Seed: m.Seed, Detail: m.Detail,
		Repro: m.Repro(), Panicked: m.Panicked, Stack: m.Stack,
		LibTasks: m.LibTasks, Sites: m.Sites, Groups: m.Groups}
	if m.Program != nil {
		a.Recipe = &m.Program.Recipe
	}
	blob, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform: artifact:", err)
		return
	}
	if err := os.MkdirAll(artifactsDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "conform: artifact:", err)
		return
	}
	name := filepath.Join(artifactsDir, fmt.Sprintf("failing-%s-seed%d.json", m.Scenario, m.Seed))
	if err := os.WriteFile(name, append(blob, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "conform: artifact:", err)
		return
	}
	fmt.Printf("artifact: %s\n", name)
}

// report shrinks and prints a mismatch.
func report(m *conform.Mismatch) {
	fmt.Printf("MISMATCH: %s\n", m)
	fmt.Println("minimizing...")
	m.Minimize()
	fmt.Printf("minimized: %s\n", m.Detail)
	switch {
	case m.Program != nil:
		fmt.Printf("minimized program: %d instructions (+HALT)\n", m.Program.NumInsts())
	case m.Groups != nil:
		fmt.Printf("minimized universe: %d groups\n", len(m.Groups))
	default:
		fmt.Printf("minimized universe: %d sites\n", len(m.Sites))
	}
	fmt.Printf("repro: %s\n", m.Repro())
	fmt.Println(m.Disassembly())
	saveArtifact(m)
}

// reportGuided prints the extra repro handles of a guided find: the
// minimized program's standalone recipe and, when the run did not depend
// on an evolving on-disk corpus, the deterministic loop replay line.
func reportGuided(scenario string, seed int64, corpusDir string, res *conform.FuzzResult) {
	if corpusDir == "" && res.Iters > 0 {
		fmt.Printf("guided repro: go run ./cmd/conform -cover -scenario %s -seed %d -n %d\n",
			scenario, seed, res.Iters)
	}
	blob, err := json.Marshal(res.Mismatch.Program.Recipe)
	if err != nil {
		return
	}
	fmt.Printf("recipe (save to FILE, replay with -recipe FILE -scenario %s):\n%s\n", scenario, blob)
}

// runMinimize runs the corpus lifecycle pass: every recipe in the corpus
// directory replays through the scenario, and entries whose coverage bits
// are subsumed by the rest are deleted. A divergence during replay aborts
// the pass — that entry is a repro, not redundancy.
func runMinimize(scenarioName, corpusDir string) int {
	if corpusDir == "" {
		fmt.Fprintln(os.Stderr, "conform: -minimize requires -corpus DIR")
		return 2
	}
	if scenarioName == "all" {
		fmt.Fprintln(os.Stderr, "conform: -minimize needs one program scenario "+
			"(-scenario cached|uncached|contended|arena|interrupts|strategies|sched): coverage is "+
			"scenario-relative, so each corpus minimizes against the scenario it serves")
		return 2
	}
	sc, err := scenarioFor(scenarioName, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	res, err := sc.MinimizeCorpus(corpusDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	if res.Mismatch != nil {
		report(res.Mismatch)
		return 1
	}
	fmt.Printf("corpus %s: kept %d, dropped %d, union %d bits\n",
		corpusDir, res.Kept, res.Dropped, res.Bits.Count())
	return 0
}

// replayRecipe rebuilds one recipe file and runs it through the scenario
// once — the direct repro path for corpus entries, guided finds and saved
// -artifacts files. An artifact wraps the recipe with its scenario and
// (for sched mismatches) the minimized library task list, so the uploaded
// file replays exactly the failing configuration.
func replayRecipe(path, scenarioName string, selftest bool) int {
	blob, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	var r progen.Recipe
	var libs []string
	var a artifact
	switch {
	case json.Unmarshal(blob, &a) == nil && a.Recipe != nil:
		r = *a.Recipe
		libs = a.LibTasks
		if scenarioName == "all" && a.Scenario != "" {
			scenarioName = a.Scenario
		}
	case json.Unmarshal(blob, &a) == nil && (a.Sites != nil || a.Groups != nil):
		name := a.Scenario
		if name == "" {
			name = "campaign"
		}
		fmt.Fprintf(os.Stderr, "conform: %s is a %s artifact; replay with "+
			"go run ./cmd/conform -scenario %s -seed %d -n 1\n", path, name, name, a.Seed)
		return 2
	default:
		if err := json.Unmarshal(blob, &r); err != nil {
			fmt.Fprintf(os.Stderr, "conform: %s: %v\n", path, err)
			return 2
		}
	}
	p, err := progen.FromRecipe(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	if scenarioName == "all" {
		scenarioName = "uncached"
	}
	sc, err := scenarioFor(scenarioName, selftest)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	if m := sc.CheckProgramWithLibs(p, libs, nil); m != nil {
		report(m)
		fmt.Printf("replay: go run ./cmd/conform -recipe %s -scenario %s\n", path, scenarioName)
		return 1
	}
	fmt.Printf("recipe %s: %d instructions, scenario %s ok\n", path, p.NumInsts(), scenarioName)
	return 0
}

func scenarioFor(name string, selftest bool) (*conform.Scenario, error) {
	if selftest {
		return conform.NewMutated(name, conform.DecoderBugArithShift)
	}
	sc, err := conform.Lookup(name)
	if err != nil {
		return nil, err
	}
	if !sc.Guidable() {
		return nil, fmt.Errorf("scenario %q does not run generated programs", name)
	}
	return sc, nil
}

// runSelfTest injects conform.DecoderBugArithShift into the uncached
// scenario and requires the harness to catch it within n seeds (or, with
// -cover, within n guided iterations) and shrink the repro to a handful
// of instructions.
func runSelfTest(seed int64, n int, cover, verbose bool) int {
	sc, err := conform.NewMutated("uncached", conform.DecoderBugArithShift)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	var m *conform.Mismatch
	if cover {
		res, err := sc.Fuzz(seed, n, time.Time{}, conform.FuzzOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "conform:", err)
			return 2
		}
		m = res.Mismatch
		if m != nil {
			fmt.Printf("injected decoder bug caught after %d guided runs: %s\n", res.Iters, m)
		}
	} else {
		for i := 0; i < n && m == nil; i++ {
			s := seed + int64(i)
			if verbose {
				fmt.Printf("selftest seed %d\n", s)
			}
			if m = sc.Run(s); m != nil {
				fmt.Printf("injected decoder bug caught: %s\n", m)
			}
		}
	}
	if m == nil {
		fmt.Fprintf(os.Stderr, "conform: selftest: injected bug not caught in %d runs\n", n)
		return 1
	}
	m.Minimize()
	insts := m.Program.NumInsts()
	fmt.Printf("minimized to %d instructions (+HALT): %s\n", insts, m.Detail)
	fmt.Println(m.Disassembly())
	if insts > 20 {
		fmt.Fprintf(os.Stderr, "conform: selftest repro too large (%d instructions)\n", insts)
		return 1
	}
	if code := runCrashSelfTest(seed); code != 0 {
		return code
	}
	fmt.Println("selftest ok")
	return 0
}

// runCrashSelfTest is the crash leg of the self-test: an injected engine
// bug that panics instead of diverging must be isolated on every iteration
// — recipe artifact saved, fuzz loop still completing — proving the
// recover boundary end to end.
func runCrashSelfTest(seed int64) int {
	crash, err := conform.NewMutated("uncached", conform.CrashBug)
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	// Artifacts must land somewhere checkable even without -artifacts.
	saved := artifactsDir
	defer func() { artifactsDir = saved }()
	if artifactsDir == "" {
		tmp, err := os.MkdirTemp("", "conform-selftest")
		if err != nil {
			fmt.Fprintln(os.Stderr, "conform:", err)
			return 2
		}
		defer os.RemoveAll(tmp)
		artifactsDir = tmp
	}
	const crashIters = 5
	res, err := crash.Fuzz(seed, crashIters, time.Time{}, conform.FuzzOptions{OnPanic: saveArtifact})
	if err != nil {
		fmt.Fprintln(os.Stderr, "conform:", err)
		return 2
	}
	if res.Mismatch != nil {
		fmt.Fprintf(os.Stderr, "conform: selftest: crash bug stopped the loop instead of isolating: %s\n", res.Mismatch)
		return 1
	}
	if res.Iters != crashIters || res.Panics != crashIters {
		fmt.Fprintf(os.Stderr, "conform: selftest: crash bug isolated %d of %d runs (want %d of %d)\n",
			res.Panics, res.Iters, crashIters, crashIters)
		return 1
	}
	names, err := filepath.Glob(filepath.Join(artifactsDir, "failing-*.json"))
	if err != nil || len(names) == 0 {
		fmt.Fprintln(os.Stderr, "conform: selftest: crash bug saved no recipe artifact")
		return 1
	}
	fmt.Printf("injected crash bug isolated %d/%d runs, recipe artifact saved (%s)\n",
		res.Panics, res.Iters, filepath.Base(names[0]))
	return 0
}
