// Command faultsim runs a standalone stuck-at fault campaign: it grades one
// of the library's self-test routines against its module's fault universe
// on a chosen core, under a chosen execution strategy and SoC environment,
// and prints the coverage with a per-signal breakdown and the surviving
// fault list.
//
// Usage:
//
//	faultsim [-routine forwarding|hdcu|icu] [-core 0|1|2]
//	         [-strategy plain|cache|tcm] [-multicore] [-bitstep N]
//	         [-engine arena|legacy] [-workers N] [-v]
//
// The default "arena" engine keeps one long-lived SoC per worker (program
// loaded once, each fault run is reset + plane-swap) and terminates runs
// early once they observably diverge from the golden trace and stop making
// progress; "legacy" rebuilds the SoC per fault and always simulates to the
// full watchdog budget. Both engines produce identical reports.
package main
