// Command faultsim runs a standalone stuck-at fault campaign: it grades one
// of the library's self-test routines against its module's fault universe
// on a chosen core, under a chosen execution strategy and SoC environment,
// and prints the coverage with a per-signal breakdown and the surviving
// fault list.
//
// Usage:
//
//	faultsim [-routine forwarding|hdcu|icu] [-core 0|1|2]
//	         [-strategy plain|cache|tcm] [-multicore] [-bitstep N]
//	         [-engine arena|reference] [-workers N] [-v]
//
// Both modes keep one long-lived SoC per worker (program loaded once, each
// fault run is reset + plane-swap). The default "arena" mode terminates
// runs early once they observably diverge from the golden trace and stop
// making progress, and fast-forwards transition runs over golden
// checkpoints; "reference" simulates every run to the full watchdog budget
// with no shortcuts — the semantics the optimized mode is differentially
// pinned against. Both modes produce identical reports.
package main
