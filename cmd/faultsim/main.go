package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	routineName := flag.String("routine", "forwarding", "routine: forwarding, hdcu or icu")
	coreID := flag.Int("core", 0, "core under test (0=A, 1=B, 2=C)")
	strategyName := flag.String("strategy", "cache", "execution strategy: plain, cache or tcm")
	multicore := flag.Bool("multicore", true, "replay 3-core bus contention around the core under test")
	bitStep := flag.Int("bitstep", 1, "enumerate every Nth data bit (campaign reduction)")
	faults := flag.String("faults", "stuckat", "fault model: stuckat or transition (forwarding routine only)")
	engine := flag.String("engine", "arena", "campaign mode: arena (optimized: early exit, checkpointing) or reference (full budget, no shortcuts)")
	ckptInterval := flag.Int64("checkpoint-interval", 0, "arena golden-run checkpoint interval in cycles (0 = auto, negative = off)")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	journal := flag.String("journal", "", "append-only verdict journal file (line-delimited JSON; survives SIGKILL)")
	resume := flag.Bool("resume", false, "resume from -journal: skip settled sites and reproduce the bit-identical report")
	reportFile := flag.String("report", "", "write the final fault.Report as JSON to this file")
	progress := flag.Duration("progress", 0, "print a campaign progress line to stderr every interval (0 = off)")
	eventsPath := flag.String("events", "", "stream campaign events (JSONL: start/progress/site/quarantine/finish) to this file")
	telemetryAddr := flag.String("telemetry", "", "serve Prometheus /metrics and /debug/pprof on this address (:0 picks a free port, printed to stderr)")
	summaryPath := flag.String("summary", "", "write a run-summary JSON (report + telemetry snapshot) to this file")
	checkEvents := flag.String("check-events", "", "validate a JSONL event-stream file (strict schema, campaign shape) and exit")
	verbose := flag.Bool("v", false, "list undetected faults")
	flag.Parse()
	if *checkEvents != "" {
		os.Exit(checkEventStream(*checkEvents))
	}
	if *engine == "legacy" {
		fmt.Fprintln(os.Stderr, "faultsim: the legacy rebuild-per-fault engine was retired; use -engine reference for the full-budget reference-arena semantics")
		os.Exit(2)
	}
	if *engine != "arena" && *engine != "reference" {
		fmt.Fprintf(os.Stderr, "faultsim: unknown engine %q\n", *engine)
		os.Exit(2)
	}

	// Campaign construction is shared with the campaign service: the same
	// Spec a faultserve client submits builds the same environment here,
	// which is what makes service reports and local reports byte-identical.
	spec := serve.Spec{
		Routine:   *routineName,
		Core:      *coreID,
		Strategy:  *strategyName,
		Multicore: *multicore,
		BitStep:   *bitStep,
		Faults:    *faults,
	}
	c, err := spec.Build()
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(2)
	}

	// Telemetry sinks: a registry when anything consumes it, an HTTP
	// listener for /metrics and pprof, and a JSONL event stream.
	var reg *telemetry.Registry
	if *telemetryAddr != "" || *summaryPath != "" {
		reg = telemetry.NewRegistry()
	}
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		fail(err)
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "faultsim: telemetry on http://%s/metrics\n", srv.Addr())
	}
	var events *telemetry.EventLog
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		fail(err)
		defer f.Close()
		events = telemetry.NewEventLog(f)
	}

	rep, err := core.RunCampaignOpts(c.Cfg, c.Core, c.Job, c.Sites,
		c.Budget, core.CampaignOptions{
			Workers:            *workers,
			Reference:          *engine == "reference",
			Journal:            *journal,
			Resume:             *resume,
			CheckpointInterval: *ckptInterval,
			Telemetry:          reg,
			Events:             events,
			Progress:           *progress,
		})
	fail(err)
	fail(events.Err())
	fmt.Printf("routine=%s core=%c strategy=%s multicore=%v engine=%s\n",
		*routineName, rune('A'+*coreID), *strategyName, *multicore, *engine)
	fmt.Println(rep.String())
	for _, a := range rep.Anomalies {
		fmt.Fprintf(os.Stderr, "faultsim: panicked run (site %v): %s\n", a.Site, a.Msg)
	}
	if *reportFile != "" {
		// Stacks are diagnostic, not part of the verdict set:
		// serve.MarshalReport strips them so report files are
		// byte-comparable across resumed runs and against service jobs.
		blob, err := serve.MarshalReport(rep)
		fail(err)
		fail(os.WriteFile(*reportFile, blob, 0o644))
	}
	if *summaryPath != "" {
		fail(writeSummary(*summaryPath, rep, reg))
	}

	fmt.Println("per-signal breakdown:")
	for _, st := range rep.BySignal() {
		fmt.Printf("  %-8v %4d/%4d (%.1f%%)\n", st.Signal, st.Detected, st.Total,
			100*float64(st.Detected)/float64(st.Total))
	}
	if *verbose {
		fmt.Println("undetected faults:")
		for _, s := range rep.Undetected() {
			fmt.Println("  ", s)
		}
	}
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

// runSummary is the campaign provenance record -summary writes: the final
// report (anomaly stacks stripped, like -report) plus the full telemetry
// snapshot and wall-clock timestamp.
type runSummary struct {
	FinishedAt time.Time          `json:"finishedAt"`
	Report     fault.Report       `json:"report"`
	Telemetry  telemetry.Snapshot `json:"telemetry"`
	Dispatch   map[string]int64   `json:"dispatch"`
}

// writeSummary renders the run summary. The dispatch counts ride in their
// own map (Report excludes them from JSON so report files stay
// byte-comparable across engine modes).
func writeSummary(path string, rep fault.Report, reg *telemetry.Registry) error {
	clean := rep
	clean.Anomalies = nil
	dispatch := make(map[string]int64, fault.NumDispatchPaths)
	for p := fault.DispatchPath(0); p < fault.NumDispatchPaths; p++ {
		dispatch[p.String()] = rep.Dispatch[p]
	}
	blob, err := json.MarshalIndent(runSummary{
		FinishedAt: time.Now().UTC(),
		Report:     clean,
		Telemetry:  reg.Snapshot(),
		Dispatch:   dispatch,
	}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// checkEventStream validates a JSONL event-stream file with the same
// strict decoder the telemetry schema test pins, then checks the campaign
// shape: exactly one start and one finish, and the finish's settled count
// must equal the number of site events in the stream.
func checkEventStream(path string) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		return 1
	}
	defer f.Close()
	events, err := telemetry.DecodeEvents(f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "faultsim: check-events:", err)
		return 1
	}
	starts := telemetry.CountKind(events, telemetry.EventStart)
	finishes := telemetry.CountKind(events, telemetry.EventFinish)
	siteEvents := telemetry.CountKind(events, telemetry.EventSite)
	fmt.Printf("events: %d total (%d start, %d progress, %d site, %d quarantine, %d finish)\n",
		len(events), starts,
		telemetry.CountKind(events, telemetry.EventProgress), siteEvents,
		telemetry.CountKind(events, telemetry.EventQuarantine), finishes)
	if starts != 1 || finishes != 1 {
		fmt.Fprintf(os.Stderr, "faultsim: check-events: want exactly one start and one finish, got %d and %d\n", starts, finishes)
		return 1
	}
	for _, e := range events {
		if e.Kind == telemetry.EventFinish && e.Settled != int64(siteEvents) {
			fmt.Fprintf(os.Stderr, "faultsim: check-events: finish settled %d but stream carries %d site events\n",
				e.Settled, siteEvents)
			return 1
		}
	}
	fmt.Println("event stream ok")
	return 0
}
