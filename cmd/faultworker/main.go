package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/serve"
	"repro/internal/telemetry"
)

func main() {
	server := flag.String("server", "http://localhost:8080", "faultserve base URL")
	name := flag.String("name", "", "worker name recorded on leases (default host:pid)")
	workers := flag.Int("workers", 0, "arena goroutines per shard (0 = GOMAXPROCS)")
	poll := flag.Duration("poll", serve.DefaultPoll, "idle re-poll interval when no work is pending")
	drain := flag.Bool("drain", false, "exit successfully on the first idle poll instead of waiting for more work")
	telemetryAddr := flag.String("telemetry", "", "serve Prometheus /metrics and /debug/pprof on this address (:0 picks a free port, printed to stderr)")
	flag.Parse()

	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	reg := telemetry.NewRegistry()
	if *telemetryAddr != "" {
		srv, err := telemetry.Serve(*telemetryAddr, reg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "faultworker:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "faultworker: telemetry on http://%s/metrics\n", srv.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	w := &serve.Worker{
		Server:    *server,
		Name:      *name,
		Workers:   *workers,
		Poll:      *poll,
		Drain:     *drain,
		Telemetry: reg,
	}
	t0 := time.Now()
	if err := w.Run(ctx); err != nil {
		fmt.Fprintln(os.Stderr, "faultworker:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "faultworker: %s done in %s\n", *name, time.Since(t0).Round(time.Millisecond))
}
