// Command faultworker is the campaign service's shard worker: it leases
// shards from a faultserve server, rebuilds each campaign deterministically
// from the spec in the lease (the spec is the whole wire format — program,
// universe, traffic and budget are reconstructed locally, never shipped),
// simulates the unsettled sites on a local arena pool, and streams verdict
// batches back as sites settle.
//
// Usage:
//
//	faultworker -server http://host:8080 [-name NAME] [-workers N]
//	            [-poll 500ms] [-drain] [-telemetry :0]
//
// Workers hold no durable state: every streamed verdict lands in the
// server's content-addressed journal before it is counted, so killing a
// worker (SIGKILL included) costs at most the verdicts not yet posted —
// its lease expires and the next leaseholder is told exactly which sites
// remain. Run as many workers as you have machines; -drain exits after
// the queue empties (the batch-mode switch CI uses).
package main
