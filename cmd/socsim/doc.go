// Command socsim assembles a program and runs it on one core of the
// simulated SoC, printing the architectural outcome: registers of interest,
// performance counters, cache statistics and bus utilisation.
//
// Usage:
//
//	socsim [-core 0|1|2] [-cached] [-contend] [-base addr] [-max cycles] prog.s
package main
