package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/soc"
)

// contender is the busy-loop workload placed on the other cores with
// -contend: a store/load mill that keeps the bus under pressure.
const contender = `
	li   r29, 0x20008000
	addi r1, r0, 4000
loop:
	sw   r1, 0(r29)
	lw   r2, 0(r29)
	addi r1, r1, -1
	bne  r1, r0, loop
	halt
`

func main() {
	coreID := flag.Int("core", 0, "core to run on (0=A, 1=B, 2=C)")
	cached := flag.Bool("cached", false, "enable the private I/D caches")
	base := flag.Uint("base", soc.CodeLow, "flash load address")
	maxCycles := flag.Int64("max", 10_000_000, "watchdog cycle budget")
	contend := flag.Bool("contend", false, "run bus-hammering loops on the other cores")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: socsim [flags] prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	fail(err)

	b, err := asm.Parse(string(src))
	fail(err)
	prog, err := b.Assemble(uint32(*base))
	fail(err)

	cfg := soc.DefaultConfig()
	for id := 0; id < soc.NumCores; id++ {
		cfg.Cores[id].Active = id == *coreID || *contend
		cfg.Cores[id].CachesOn = *cached
		cfg.Cores[id].WriteAlloc = true
	}
	s := soc.New(cfg)
	fail(s.Load(prog))
	s.Start(*coreID, prog.Base)

	if *contend {
		cb, err := asm.Parse(contender)
		fail(err)
		for id := 0; id < soc.NumCores; id++ {
			if id == *coreID {
				continue
			}
			p, err := cb.Assemble(soc.CodeMid + uint32(id)*0x2000)
			fail(err)
			fail(s.Load(p))
			s.Start(id, p.Base)
		}
	}

	res := s.Run(*maxCycles)
	u := s.Cores[*coreID]
	fmt.Printf("core %c: cycles=%d halted=%v wedged=%v timed-out=%v\n",
		rune('A'+*coreID), u.Core.Cycle(), u.Core.Halted(), u.Core.Wedged(), res.TimedOut)
	fmt.Printf("counters: instret=%d ifstall=%d memstall=%d hazstall=%d dual-issue=%d\n",
		u.Core.Counter(fault.CntInstret), u.Core.Counter(fault.CntIFStall),
		u.Core.Counter(fault.CntMemStall), u.Core.Counter(fault.CntHazStall),
		u.Core.Counter(fault.CntIssued2))
	fmt.Printf("signature (r28) = %08x\n", u.Core.Reg(isa.RegSig))
	fmt.Println("registers:")
	for r := uint8(1); r <= 15; r++ {
		fmt.Printf("  r%-2d = %08x", r, u.Core.Reg(r))
		if r%5 == 0 {
			fmt.Println()
		}
	}
	if u.ICache != nil {
		st := u.ICache.Stats()
		fmt.Printf("icache: hits=%d misses=%d\n", st.Hits, st.Misses)
		st = u.DCache.Stats()
		fmt.Printf("dcache: hits=%d misses=%d writebacks=%d\n", st.Hits, st.Misses, st.Writebacks)
	}
	fmt.Printf("bus utilization: %.1f%%\n", 100*s.Bus.Utilization())
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "socsim:", err)
		os.Exit(1)
	}
}
