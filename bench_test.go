// Package repro's root benchmarks regenerate every table and figure of the
// paper (in reduced "quick" form so a full -bench=. pass stays tractable on
// a laptop; run cmd/repro for the full campaigns) and measure the ablations
// called out in DESIGN.md. Benchmarks report experiment outcomes as custom
// metrics so a -benchmem run doubles as a results check.
package repro_test

import (
	"io"
	"reflect"
	"testing"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
	"repro/internal/telemetry"
)

var quick = experiments.Options{Quick: true}

// BenchmarkTableI regenerates the stall-versus-core-count measurement.
func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableI(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[2].IFStalls)/float64(rows[0].IFStalls), "if-stall-growth-3c")
	}
}

// BenchmarkTableII regenerates the forwarding-logic coverage campaign.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableII(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MaxFC-rows[0].MinFC, "coreA-FC-spread-pts")
		b.ReportMetric(rows[0].CacheFC, "coreA-cache-FC-pct")
	}
}

// BenchmarkCampaignEngineSpeedup times the quick Table II campaign under
// the reference arena mode (full watchdog budget every run, no shortcuts)
// and the optimized mode (divergence-bounded early exit plus golden-run
// checkpointing), verifies the results are identical, and reports the
// wall-clock speedup as a metric. The PR acceptance bar is >= 2x.
func BenchmarkCampaignEngineSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		refRows, err := experiments.TableII(experiments.Options{Quick: true, Reference: true})
		if err != nil {
			b.Fatal(err)
		}
		ref := time.Since(t0)

		t0 = time.Now()
		arenaRows, err := experiments.TableII(experiments.Options{Quick: true})
		if err != nil {
			b.Fatal(err)
		}
		arena := time.Since(t0)

		if !reflect.DeepEqual(refRows, arenaRows) {
			b.Fatalf("modes disagree:\nreference %+v\noptimized %+v", refRows, arenaRows)
		}
		b.ReportMetric(ref.Seconds()/arena.Seconds(), "speedup-vs-reference")
		b.ReportMetric(arena.Seconds(), "arena-s")
		b.ReportMetric(ref.Seconds(), "reference-s")
	}
}

// BenchmarkTableIII regenerates the ICU/HDCU coverage campaign.
func BenchmarkTableIII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIII(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MultiCacheFC-rows[0].SingleFC, "icuA-FC-gain-pts")
	}
}

// BenchmarkTableIV regenerates the TCM-versus-cache comparison.
func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.TableIV(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[1].ExecutionTime)/float64(rows[0].ExecutionTime), "cache-vs-tcm-time")
		b.ReportMetric(float64(rows[0].MemoryOverhead), "tcm-overhead-bytes")
	}
}

// BenchmarkFigure1 regenerates the pipeline diagrams.
func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(quick)
		if err != nil {
			b.Fatal(err)
		}
		if !res.ForwardingUsed || !res.ForwardingLost {
			b.Fatal("figure 1 shape lost")
		}
	}
}

// BenchmarkFigure2 regenerates the structural comparison.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure2(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.OverheadBytes), "wrapper-overhead-bytes")
	}
}

// BenchmarkDelayFaultExtension regenerates the transition-fault campaign
// (the paper's future-work note implemented). Campaigns run with golden-run
// checkpointing on by default: Transition runs skip the golden prefix
// before their site's first activating edge, never-activating sites are
// served the golden verdict outright, and exactly-re-converged runs jump
// over provably-golden windows.
func BenchmarkDelayFaultExtension(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.DelayFaults(quick)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].MaxFC-rows[0].MinFC, "coreA-delay-FC-spread-pts")
		b.ReportMetric(rows[0].CacheFC, "coreA-delay-cache-FC-pct")
	}
}

// BenchmarkCheckpointSpeedup times the quick transition-fault sweep under
// the reference arena mode, the optimized mode with checkpointing
// disabled, and the default checkpointed mode, verifies all three produce
// identical rows, and reports the wall-clock speedups. The PR acceptance
// bar is >= 3x over the reference mode with checkpointing enabled; the
// ckpt-vs-plain-arena metric isolates the checkpointing machinery's own
// contribution (bounded by the detected-fault runs, whose diverged
// suffixes every sound engine must simulate).
func BenchmarkCheckpointSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		refRows, err := experiments.DelayFaults(experiments.Options{Quick: true, Reference: true})
		if err != nil {
			b.Fatal(err)
		}
		ref := time.Since(t0)

		t0 = time.Now()
		plainRows, err := experiments.DelayFaults(experiments.Options{Quick: true, CheckpointInterval: -1})
		if err != nil {
			b.Fatal(err)
		}
		plain := time.Since(t0)

		t0 = time.Now()
		ckptRows, err := experiments.DelayFaults(quick)
		if err != nil {
			b.Fatal(err)
		}
		ckpt := time.Since(t0)

		if !reflect.DeepEqual(refRows, ckptRows) || !reflect.DeepEqual(plainRows, ckptRows) {
			b.Fatalf("modes disagree:\nreference %+v\nplain  %+v\nckpt   %+v",
				refRows, plainRows, ckptRows)
		}
		b.ReportMetric(ref.Seconds()/ckpt.Seconds(), "speedup-vs-reference")
		b.ReportMetric(plain.Seconds()/ckpt.Seconds(), "ckpt-vs-plain-arena")
		b.ReportMetric(ckpt.Seconds(), "ckpt-s")
	}
}

// BenchmarkCampaignTelemetryOverhead times the quick Table II campaign with
// telemetry fully attached (registry + event stream into a discard writer)
// against the detached default, verifies the verdicts are identical, and
// reports the relative cost. The acceptance bar is "no measurable overhead
// with flags off"; the attached arm documents what turning everything on
// costs (atomic counters + histogram observes + one JSONL line per site).
func BenchmarkCampaignTelemetryOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t0 := time.Now()
		plainRows, err := experiments.TableII(quick)
		if err != nil {
			b.Fatal(err)
		}
		plain := time.Since(t0)

		reg := telemetry.NewRegistry()
		t0 = time.Now()
		instRows, err := experiments.TableII(experiments.Options{
			Quick:     true,
			Telemetry: reg,
			Events:    telemetry.NewEventLog(io.Discard),
		})
		if err != nil {
			b.Fatal(err)
		}
		inst := time.Since(t0)

		if !reflect.DeepEqual(plainRows, instRows) {
			b.Fatalf("telemetry changed results:\nplain %+v\ninstrumented %+v", plainRows, instRows)
		}
		if reg.Counter("campaign_sites_settled_total").Value() == 0 {
			b.Fatal("instrumented run settled no sites into the registry")
		}
		b.ReportMetric(inst.Seconds()/plain.Seconds(), "attached-vs-detached")
		b.ReportMetric(plain.Seconds(), "detached-s")
	}
}

// --- Ablations (DESIGN.md section 5) ---

func hdcuJobs(strategy core.Strategy, bases [soc.NumCores]uint32) [soc.NumCores]*core.CoreJob {
	var jobs [soc.NumCores]*core.CoreJob
	for id := 0; id < soc.NumCores; id++ {
		jobs[id] = &core.CoreJob{
			Routine:  sbst.NewHDCUTest(sbst.HDCUOptions{DataBase: mem.SRAMBase + 0x2000*uint32(id+1)}),
			Strategy: strategy,
			CodeBase: bases[id],
		}
	}
	return jobs
}

// distinctSigs runs the HDCU routine under the given strategy across
// scenario variations and counts distinct core-A signatures (1 =
// deterministic).
func distinctSigs(b *testing.B, strategy core.Strategy, cached, writeAlloc bool) int {
	b.Helper()
	sigs := map[uint32]bool{}
	scenarios := []struct {
		delays [soc.NumCores]int
		bases  [soc.NumCores]uint32
	}{
		{[3]int{0, 0, 0}, [3]uint32{soc.CodeLow, soc.CodeMid, soc.CodeHigh}},
		{[3]int{0, 9, 17}, [3]uint32{soc.CodeLow, soc.CodeHigh, soc.CodeMid}},
		{[3]int{5, 0, 11}, [3]uint32{soc.CodeLow, soc.CodeMid, soc.CodeHigh}},
	}
	for _, sc := range scenarios {
		cfg := soc.DefaultConfig()
		for id := 0; id < soc.NumCores; id++ {
			cfg.Cores[id].CachesOn = cached
			cfg.Cores[id].WriteAlloc = writeAlloc
			cfg.Cores[id].StartDelay = sc.delays[id]
		}
		results, _, err := core.RunJobs(cfg, hdcuJobs(strategy, sc.bases), 5_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if results[0] == nil || results[0].Wedged {
			b.Fatal("run failed")
		}
		sigs[results[0].Signature] = true
	}
	return len(sigs)
}

// BenchmarkAblationLoadingLoops compares the full strategy (loading loop +
// execution loop) against a single-iteration variant: without the loading
// loop the "execution loop" runs on cold caches and loses determinism.
func BenchmarkAblationLoadingLoops(b *testing.B) {
	for i := 0; i < b.N; i++ {
		with := distinctSigs(b, core.CacheBased{WriteAllocate: true, Iterations: 2}, true, true)
		without := distinctSigs(b, core.CacheBased{WriteAllocate: true, Iterations: 1}, true, true)
		b.ReportMetric(float64(with), "distinct-sigs-2-iter")
		b.ReportMetric(float64(without), "distinct-sigs-1-iter")
		if with != 1 {
			b.Fatal("full strategy lost determinism")
		}
		if without == 1 {
			b.Log("note: single-iteration variant happened to stay stable on this scenario set")
		}
	}
}

// BenchmarkAblationWritePolicy shows the paper's rule 1: with a
// no-write-allocate data cache, only the dummy loads after stores keep the
// execution loop off the bus. Without them every checkpoint store misses
// again in the execution loop and becomes a bus write, re-coupling the
// "isolated" loop to system traffic (measured as extra data-side misses
// and write transactions).
func BenchmarkAblationWritePolicy(b *testing.B) {
	run := func(dummy bool) (misses, busWrites int) {
		cfg := soc.DefaultConfig()
		var jobs [soc.NumCores]*core.CoreJob
		for id := 0; id < soc.NumCores; id++ {
			cfg.Cores[id].CachesOn = true
			cfg.Cores[id].WriteAlloc = false
			jobs[id] = &core.CoreJob{
				Routine: sbst.NewForwardingTest(sbst.ForwardingOptions{
					DataBase:            mem.SRAMBase + 0x2000*uint32(id+1),
					WithPerfCounters:    true,
					DummyLoadAfterStore: dummy,
				}),
				// DummyLoadsPresent deliberately asserted in both arms so
				// the ablation can run the forbidden configuration.
				Strategy: core.CacheBased{WriteAllocate: false, DummyLoadsPresent: true},
				CodeBase: soc.CodeLow + uint32(id)*0x10000,
			}
		}
		results, s, err := core.RunJobs(cfg, jobs, 5_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if results[0] == nil || !results[0].OK {
			b.Fatal("run failed")
		}
		return s.Cores[0].DCache.Stats().Misses, s.Bus.StatsFor(1).Transactions
	}
	for i := 0; i < b.N; i++ {
		missWith, writesWith := run(true)
		missWithout, writesWithout := run(false)
		b.ReportMetric(float64(missWith), "dmisses-dummy-loads")
		b.ReportMetric(float64(missWithout), "dmisses-no-dummy")
		if missWithout <= missWith || writesWithout <= writesWith {
			b.Fatal("missing dummy loads did not re-couple the execution loop to the bus")
		}
	}
}

// BenchmarkAblationArbiter compares round-robin against fixed-priority
// arbitration: fixed priority starves the low-priority core, inflating its
// stall counts.
func BenchmarkAblationArbiter(b *testing.B) {
	run := func(policy bus.Arbitration) float64 {
		cfg := soc.DefaultConfig()
		cfg.Arbitration = policy
		var jobs [soc.NumCores]*core.CoreJob
		for id := 0; id < soc.NumCores; id++ {
			jobs[id] = &core.CoreJob{
				Routines: sbst.StandardSTL(mem.SRAMBase + 0x2000*uint32(id+1)),
				Strategy: core.Plain{},
				CodeBase: soc.CodeLow + uint32(id)*0x8000,
			}
		}
		results, _, err := core.RunJobs(cfg, jobs, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := results[0].IFStall, results[0].IFStall
		for id := 1; id < soc.NumCores; id++ {
			if results[id].IFStall < lo {
				lo = results[id].IFStall
			}
			if results[id].IFStall > hi {
				hi = results[id].IFStall
			}
		}
		return float64(hi) / float64(lo)
	}
	for i := 0; i < b.N; i++ {
		rr := run(bus.RoundRobin)
		fp := run(bus.FixedPriority)
		b.ReportMetric(rr, "if-stall-imbalance-rr")
		b.ReportMetric(fp, "if-stall-imbalance-prio")
		if fp <= rr {
			b.Log("note: fixed priority did not increase imbalance on this workload")
		}
	}
}

// BenchmarkAblationFlashLatency sweeps the flash wait states: slower flash
// widens the fetch gaps, further suppressing forwarding-path excitation in
// uncached runs (the single-core coverage limit of Table III).
func BenchmarkAblationFlashLatency(b *testing.B) {
	coverage := func(latency int) float64 {
		sites := fault.Sample(func() []fault.Site {
			s := fault.ForwardingLogic(fault.ListOptions{DataBits: 32, BitStep: 8})
			fault.SortSites(s)
			return s
		}(), 2)
		routine := sbst.NewForwardingTest(sbst.ForwardingOptions{DataBase: mem.SRAMBase + 0x2000})
		job := &core.CoreJob{Routine: routine, Strategy: core.Plain{}, CodeBase: soc.CodeLow}
		mkCfg := func(p fault.Plane) soc.Config {
			cfg := soc.DefaultConfig()
			cfg.FlashBanks = []int{latency, latency, latency, latency}
			for id := 0; id < soc.NumCores; id++ {
				cfg.Cores[id].Active = id == 0
			}
			cfg.Cores[0].Plane = p
			return cfg
		}
		run := func(p fault.Plane) (uint32, bool) {
			res, _, err := core.RunSingle(mkCfg(p), 0, job, 3_000_000)
			if err != nil {
				return 0, false
			}
			return res.Signature, res.OK
		}
		rep := fault.Simulate(sites, run, 0)
		return rep.Coverage()
	}
	for i := 0; i < b.N; i++ {
		fast := coverage(2)
		slow := coverage(12)
		b.ReportMetric(fast, "FC-flash-2cyc-pct")
		b.ReportMetric(slow, "FC-flash-12cyc-pct")
		if slow >= fast {
			b.Fatal("slower flash should suppress uncached forwarding coverage")
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: cycles per
// second of a three-core cached STL run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var cycles int64
	for i := 0; i < b.N; i++ {
		cfg := soc.DefaultConfig()
		var jobs [soc.NumCores]*core.CoreJob
		for id := 0; id < soc.NumCores; id++ {
			cfg.Cores[id].CachesOn = true
			cfg.Cores[id].WriteAlloc = true
			jobs[id] = &core.CoreJob{
				Routines: sbst.StandardSTL(mem.SRAMBase + 0x2000*uint32(id+1)),
				Strategy: core.Plain{},
				CodeBase: soc.CodeLow + uint32(id)*0x8000,
			}
		}
		_, s, err := core.RunJobs(cfg, jobs, 10_000_000)
		if err != nil {
			b.Fatal(err)
		}
		cycles += s.Cycle()
	}
	b.ReportMetric(float64(cycles)/b.Elapsed().Seconds(), "soc-cycles/s")
}
