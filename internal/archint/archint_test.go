package archint

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/icu"
)

func TestPlanJSONRoundtrip(t *testing.T) {
	p := Plan{Enable: 0xB, Events: []Event{{Retire: 40, Line: 2}, {Retire: 7, Line: 0}}}
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Plan
	if err := json.Unmarshal(blob, &q); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, q) {
		t.Fatalf("roundtrip %+v -> %+v", p, q)
	}
	// The empty plan serializes to nothing and stays disabled — recipes
	// without interrupts must not grow a field.
	blob, err = json.Marshal(Plan{})
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != "{}" {
		t.Errorf("empty plan serialized as %s", blob)
	}
	if (Plan{}).Enabled() {
		t.Error("empty plan reports enabled")
	}
}

func TestWithoutEvent(t *testing.T) {
	p := Plan{Events: []Event{{Retire: 1, Line: 0}, {Retire: 2, Line: 1}, {Retire: 3, Line: 2}}}
	q := p.WithoutEvent(1)
	if len(q.Events) != 2 || q.Events[0].Line != 0 || q.Events[1].Line != 2 {
		t.Fatalf("drop produced %+v", q.Events)
	}
	if len(p.Events) != 3 {
		t.Fatal("drop mutated the original plan")
	}
}

func TestExpectedCauseHonoursMaskAndEncoding(t *testing.T) {
	p := Plan{
		Enable: 0b0001, // only cause bit 0 enabled
		Events: []Event{{Retire: 1, Line: 1}, {Retire: 2, Line: 3}},
	}
	// Shared encoding: line 1 -> bit 0 (enabled), line 3 -> bit 1 (masked).
	if got := p.ExpectedCause(true); got != 0b0001 {
		t.Errorf("shared expected cause %#b", got)
	}
	// Distinct encoding: line 1 -> bit 1, line 3 -> bit 3, both masked.
	if got := p.ExpectedCause(false); got != 0 {
		t.Errorf("distinct expected cause %#b", got)
	}
}

// TestRandomPlanAlwaysRecognisable: every drawn plan must schedule at
// least one event whose cause bit is enabled under either encoder, so the
// generated program's drain loop always has a delivery to wait for.
func TestRandomPlanAlwaysRecognisable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		p := RandomPlan(rng)
		if len(p.Events) == 0 {
			t.Fatal("empty plan")
		}
		if p.ExpectedCause(true) == 0 || p.ExpectedCause(false) == 0 {
			t.Fatalf("plan %+v has no recognisable event", p)
		}
		for _, e := range p.Events {
			if e.Retire <= 0 || e.Line >= fault.NumEvents {
				t.Fatalf("out-of-range event %+v", e)
			}
		}
	}
}

// TestMangledPlanDegradesSafely: a hand-mangled recipe can carry events
// on lines the hardware does not have and enable bits beyond the mask.
// Both shims must skip such events identically — the pipeline must not
// crash where the reference silently ignores — and the drain target must
// shrink rather than wait on unachievable bits.
func TestMangledPlanDegradesSafely(t *testing.T) {
	p := Plan{
		Enable: 0xFFFF_FFFF,
		Events: []Event{
			{Retire: 1, Line: 9},                        // nonexistent line
			{Retire: MaxDeliverableRetire + 1, Line: 1}, // beyond the budget-safe bound
			{Retire: 2, Line: 0},
		},
	}
	// The injector drives a real ICU: line 9 must not reach (and panic) it.
	u := icu.New(icu.Config{}, nil)
	in := NewInjector(p)
	in.Tick(10, u.Raise)
	if u.PendingMask() != 1<<0 {
		t.Errorf("pipeline pending %#x, want only line 0", u.PendingMask())
	}
	m := NewModel(false, p)
	m.Advance(10)
	if m.PendingMask() != 1<<0 {
		t.Errorf("model pending %#x, want only line 0", m.PendingMask())
	}
	// The drain target contains only achievable bits: neither the
	// nonexistent line nor the never-matured event may be waited on.
	if got := p.ExpectedCause(false); got != 1<<0 {
		t.Errorf("expected cause %#x, want %#x", got, 1<<0)
	}
	// The undeliverable event also never fires late.
	in.Reset()
	raised := 0
	in.Tick(int(MaxDeliverableRetire)*2, func(uint8) { raised++ })
	if raised != 1 {
		t.Errorf("%d raises, want 1 (only the valid event)", raised)
	}
}

// TestModelMirrorsICUMergedTake pins the model's take semantics to the
// pipeline ICU's: the cause encoding of ALL pending lines is latched —
// masked lines included — and every pending line clears.
func TestModelMirrorsICUMergedTake(t *testing.T) {
	for _, shared := range []bool{true, false} {
		m := NewModel(shared, Plan{})
		u := icu.New(icu.Config{SharedCauseBits: shared}, nil)
		m.SetEnable(0b0001)
		u.SetEnable(0b0001)
		m.SetVector(0x404)
		u.SetVector(0x404)
		for _, line := range []uint8{0, 3} { // line 0 enabled, line 3 masked
			m.Raise(line)
			u.Raise(line)
		}
		if !m.ShouldTake() {
			t.Fatalf("shared=%v: model does not take", shared)
		}
		for i := 0; i < icu.RecognitionDelay; i++ {
			u.Tick(1)
		}
		if !u.WantInterrupt() {
			t.Fatalf("shared=%v: ICU does not take", shared)
		}
		if got, want := m.Take(0x1000), u.TakeInterrupt(0x2000); got != 0x404 || want != 0x404 {
			t.Fatalf("shared=%v: vectors %#x / %#x", shared, got, want)
		}
		if m.Cause() != u.Cause() {
			t.Errorf("shared=%v: cause %#x, ICU %#x", shared, m.Cause(), u.Cause())
		}
		if m.PendingMask() != 0 || u.PendingMask() != 0 {
			t.Errorf("shared=%v: pending not cleared (%#x / %#x)",
				shared, m.PendingMask(), u.PendingMask())
		}
		if m.ShouldTake() {
			t.Errorf("shared=%v: re-entrant take", shared)
		}
		if pc := m.RFE(); pc != 0x1000 {
			t.Errorf("shared=%v: rfe pc %#x", shared, pc)
		}
		if m.InHandler() {
			t.Errorf("shared=%v: still in handler", shared)
		}
	}
}

func TestModelCSRBlock(t *testing.T) {
	m := NewModel(false, Plan{})
	m.SetEnable(0xFFFF)
	if m.Enable() != 0xF {
		t.Errorf("enable mask not truncated: %#x", m.Enable())
	}
	m.SetVector(0x1237)
	if m.Vector() != 0x1234 {
		t.Errorf("vector not aligned: %#x", m.Vector())
	}
	m.Raise(1)
	m.Raise(2)
	if m.PendingMask() != 0b0110 {
		t.Errorf("pending %#b", m.PendingMask())
	}
	m.ClearPending(0b0010)
	if m.PendingMask() != 0b0100 {
		t.Errorf("w1c left pending %#b", m.PendingMask())
	}
	if m.Dist() != 0 {
		t.Error("reference dist must be zero")
	}
	// RFE outside a handler returns the stale EPC, like the ICU.
	if m.RFE() != 0 || m.InHandler() {
		t.Error("bare RFE misbehaved")
	}
}

// TestModelAndInjectorDeliverSamePlan: the two shims must raise the same
// lines in the same retire order from one plan, whatever order the plan
// lists its events in.
func TestModelAndInjectorDeliverSamePlan(t *testing.T) {
	plan := Plan{Events: []Event{
		{Retire: 30, Line: 2}, {Retire: 5, Line: 0}, {Retire: 5, Line: 3}, {Retire: 90, Line: 1},
	}}
	m := NewModel(false, plan)
	m.SetEnable(0) // keep everything pending so raises are observable
	var issOrder []uint8
	for ret := int64(0); ret <= 100; ret++ {
		before := m.PendingMask()
		m.Advance(ret)
		after := m.PendingMask()
		for line := uint8(0); line < fault.NumEvents; line++ {
			if after&^before&(1<<line) != 0 {
				issOrder = append(issOrder, line)
			}
		}
	}
	in := NewInjector(plan)
	var pipeOrder []uint8
	// Uneven per-cycle retirement, like a real pipeline.
	for cycle := 0; in.retired <= 100; cycle++ {
		in.Tick(cycle%3, func(line uint8) { pipeOrder = append(pipeOrder, line) })
	}
	want := []uint8{0, 3, 2, 1}
	if !reflect.DeepEqual(issOrder, want) || !reflect.DeepEqual(pipeOrder, want) {
		t.Fatalf("delivery orders: iss %v, pipeline %v, want %v", issOrder, pipeOrder, want)
	}
	// Reset rewinds delivery.
	in.Reset()
	n := 0
	in.Tick(100, func(uint8) { n++ })
	if n != len(plan.Events) {
		t.Errorf("after reset, %d raises", n)
	}
}
