// Package archint is the architectural interrupt subsystem shared by both
// execution models: a deterministic, serializable interrupt-event plan, an
// architectural recognition model for the functional interpreter, and an
// injection shim that drives the same plan into the cycle-accurate
// pipeline's ICU.
//
// The pipeline recognises interrupts imprecisely: an event matures through
// a fixed-length recognition pipeline (icu.RecognitionDelay cycles), so
// the exact instruction boundary where the handler runs — and with it the
// icause/idist/iepc CSR values — depends on microarchitectural timing the
// interpreter deliberately does not model. Differential comparison is
// still possible because delivery, not placement, is architectural. The
// contract the two models share:
//
//   - A Plan's events are indexed by the retired-instruction count, the
//     one clock both models agree on. The interpreter raises an event the
//     moment its retire index is reached (Model.Advance); the pipeline shim
//     raises the same line into the ICU when the core's cumulative retire
//     count crosses it (Injector.Tick).
//   - Recognition semantics mirror icu.ICU exactly: pending lines are
//     level-latched, a take latches the cause encoding of *all* pending
//     lines (merged recognition), clears them, and blocks further takes
//     until RFE; events that pend during a handler are recognised after
//     RFE (the ICU re-arms its recognition pipeline on handler return).
//   - Every enabled pending event is eventually recognised, provided the
//     program keeps retiring instructions. Programs that must observe all
//     planned deliveries therefore end with a drain loop (see
//     internal/progen's handler mode) — the interpreter falls straight
//     through it, the pipeline spins until recognition catches up.
//
// What is NOT comparable across models, by design: the per-take icause
// value (the pipeline may merge several events into one take that the
// interpreter delivers separately), idist (always 0 in the precise
// reference), and iepc (timing-dependent). Generated handlers therefore
// confine these to dedicated registers outside the compared architectural
// state, and only monotonic accumulations of them (the OR of observed
// causes) may feed back into control flow.
package archint
