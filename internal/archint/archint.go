package archint

import (
	"math/rand"
	"sort"

	"repro/internal/fault"
)

// Event is one planned external interrupt: Line becomes pending once the
// executing model has retired Retire instructions. Retire indexing is what
// makes a plan deterministic across execution models — both the
// interpreter and the pipeline count retired instructions, while cycle
// counts exist only on the pipeline side.
type Event struct {
	Retire int64 `json:"retire"`
	Line   uint8 `json:"line"`
}

// Plan is a deterministic interrupt-event plan: the pending-line schedule
// plus the enable mask the generated program installs before the first
// event can be recognised. Plans are JSON-serializable like progen
// recipes, so a failing interrupt program's full derivation — program
// recipe and plan — travels in one corpus entry.
type Plan struct {
	// Enable is the ienable mask the program writes during its prelude; a
	// plan may deliberately include events whose cause bits are masked
	// (they stay pending until swept by an enabled take).
	Enable uint32 `json:"enable,omitempty"`

	Events []Event `json:"events,omitempty"`
}

// Enabled reports whether the plan schedules any events — the switch that
// turns progen's handler-emitting mode on.
func (p Plan) Enabled() bool { return len(p.Events) > 0 }

// WithoutEvent returns a copy of p with event i removed — the plan-side
// minimization step (internal/conform shrinks failing interrupt programs
// along both the unit axis and the plan axis).
func (p Plan) WithoutEvent(i int) Plan {
	cp := p
	cp.Events = append(append([]Event(nil), p.Events[:i]...), p.Events[i+1:]...)
	return cp
}

// CauseBit returns the cause bit a pending line encodes to: cores A and B
// share cause bits between pairs of lines (cost-reduced encoder), core C
// decodes every line to its own bit. Mirrors icu.ICU's encoder.
func CauseBit(line uint8, shared bool) uint32 {
	if shared {
		return 1 << (line / 2)
	}
	return 1 << line
}

// ExpectedCause returns the OR of the cause bits of the plan's enabled
// events under the given encoder — the set of bits a handler accumulating
// icause is guaranteed to eventually observe in either execution model.
// Masked events contribute nothing: their delivery is not architecturally
// guaranteed (they surface only if swept by an enabled take). Events on
// nonexistent lines and enable bits beyond the hardware mask contribute
// nothing either — both shims skip them, so a mangled plan must degrade
// to a weaker drain target, never to a drain that waits forever.
func (p Plan) ExpectedCause(shared bool) uint32 {
	enable := p.Enable & (1<<fault.NumEvents - 1)
	var m uint32
	for _, e := range p.Events {
		if !e.deliverable() {
			continue
		}
		if b := CauseBit(e.Line, shared); b&enable != 0 {
			m |= b
		}
	}
	return m
}

// deliverable reports whether an event is within the contract both shims
// honour: an existing line, matured within the deliverable retire bound.
func (e Event) deliverable() bool {
	return e.Line < fault.NumEvents && e.Retire <= MaxDeliverableRetire
}

// maxPlanRetire bounds generated retire indices so a draining program
// delivers every event well inside the differential harness's instruction
// and cycle budgets.
const maxPlanRetire = 600

// MaxDeliverableRetire is the retire index beyond which a plan event no
// longer counts as deliverable: a drain loop would have to retire this
// many instructions to mature it, which must stay comfortably inside the
// differential harness's instruction budget. Events beyond it (a mangled
// recipe — generation stays far below) are skipped by both shims and
// excluded from ExpectedCause, the budget-safety twin of the line-range
// filtering: a mangled plan degrades to a weaker drain target, never to a
// drain that spins its budget out.
const MaxDeliverableRetire = 100_000

// RandomPlan draws a small plan from rng: 1..4 events on random lines with
// retire indices spread over the early program, and an enable mask that is
// guaranteed to enable the first event under either cause encoding — so
// every plan yields at least one architecturally recognised interrupt.
func RandomPlan(rng *rand.Rand) Plan {
	n := 1 + rng.Intn(4)
	p := Plan{Events: make([]Event, 0, n)}
	for i := 0; i < n; i++ {
		p.Events = append(p.Events, Event{
			Retire: 1 + rng.Int63n(maxPlanRetire),
			Line:   uint8(rng.Intn(fault.NumEvents)),
		})
	}
	l0 := p.Events[0].Line
	p.Enable = (rng.Uint32() & (1<<fault.NumEvents - 1)) |
		CauseBit(l0, true) | CauseBit(l0, false)
	return p
}

// sortedEvents returns the plan's deliverable events ordered by retire
// index (stable, so same-index events keep their plan order).
// Undeliverable events — nonexistent lines, retire indices beyond the
// budget-safe bound — are dropped here, once, so the Model and the
// Injector skip exactly the same set and ExpectedCause never waits on a
// bit neither shim will raise.
func sortedEvents(p Plan) []Event {
	ev := make([]Event, 0, len(p.Events))
	for _, e := range p.Events {
		if e.deliverable() {
			ev = append(ev, e)
		}
	}
	sort.SliceStable(ev, func(i, j int) bool { return ev[i].Retire < ev[j].Retire })
	return ev
}

// Model is the interpreter-side architectural recognition model: the
// precise counterpart of the pipeline's icu.ICU. It latches pending lines
// (from the plan and from the interpreter's trap-raising ops), resolves
// mask and cause encoding identically to the ICU, and recognises an
// enabled pending event at the very next instruction boundary — zero
// imprecision distance, which is the architectural ideal the pipeline's
// delayed recognition converges to.
type Model struct {
	shared bool
	events []Event
	next   int

	pending [fault.NumEvents]bool

	// Architectural registers, mirroring the ICU's CSR block.
	cause     uint32
	epc       uint32
	enable    uint32
	vector    uint32
	inHandler bool
}

// NewModel builds a recognition model for the given cause encoding
// (shared: cores A/B; distinct: core C) driven by plan.
func NewModel(shared bool, plan Plan) *Model {
	return &Model{shared: shared, events: sortedEvents(plan)}
}

// Advance raises every plan event whose retire index has been reached.
// Call it at each instruction boundary with the retired-instruction count.
func (m *Model) Advance(instret int64) {
	for m.next < len(m.events) && m.events[m.next].Retire <= instret {
		m.Raise(m.events[m.next].Line)
		m.next++
	}
}

// Raise latches event line — the entry point for both plan delivery and
// the interpreter's synchronous trap-raising operations.
func (m *Model) Raise(line uint8) {
	if line < fault.NumEvents {
		m.pending[line] = true
	}
}

func (m *Model) encodeCause() uint32 {
	var c uint32
	for line := uint8(0); line < fault.NumEvents; line++ {
		if m.pending[line] {
			c |= CauseBit(line, m.shared)
		}
	}
	return c
}

// ShouldTake reports whether an interrupt must be taken before the next
// instruction executes: an enabled pending cause outside a handler.
func (m *Model) ShouldTake() bool {
	return !m.inHandler && m.encodeCause()&m.enable != 0
}

// Take commits the interrupt exactly like icu.ICU.TakeInterrupt: the cause
// encoding of all pending lines is latched (merged recognition), pending
// state clears, handler mode begins, and the handler vector is returned.
// resumePC is the PC of the next unexecuted instruction.
func (m *Model) Take(resumePC uint32) (vector uint32) {
	m.cause = m.encodeCause()
	m.epc = resumePC
	for i := range m.pending {
		m.pending[i] = false
	}
	m.inHandler = true
	return m.vector
}

// RFE ends handler mode and returns the resume PC. Like the ICU, calling
// it outside a handler is legal and simply returns the stale EPC.
func (m *Model) RFE() uint32 {
	m.inHandler = false
	return m.epc
}

// InHandler reports whether the model is executing a handler.
func (m *Model) InHandler() bool { return m.inHandler }

// CSR accessors, mirroring icu.ICU's CSR block. Dist is always zero: the
// reference recognises precisely, and idist is explicitly outside the
// comparable architectural state (see the package comment).

// Cause returns the cause bits latched by the last take.
func (m *Model) Cause() uint32 { return m.cause }

// Dist returns the imprecision distance of the last take — always zero.
func (m *Model) Dist() uint32 { return 0 }

// EPC returns the resume PC saved by the last take.
func (m *Model) EPC() uint32 { return m.epc }

// Enable returns the interrupt enable mask.
func (m *Model) Enable() uint32 { return m.enable }

// Vector returns the handler vector address.
func (m *Model) Vector() uint32 { return m.vector }

// SetEnable writes the enable mask (ienable CSR semantics).
func (m *Model) SetEnable(v uint32) { m.enable = v & (1<<fault.NumEvents - 1) }

// SetVector writes the handler vector (ivec CSR semantics).
func (m *Model) SetVector(v uint32) { m.vector = v &^ 3 }

// PendingMask returns the raw pending lines (ipend CSR read).
func (m *Model) PendingMask() uint32 {
	var v uint32
	for line := uint8(0); line < fault.NumEvents; line++ {
		if m.pending[line] {
			v |= 1 << line
		}
	}
	return v
}

// ClearPending drops the pending lines set in mask (write-one-to-clear,
// the ipend CSR write semantics).
func (m *Model) ClearPending(mask uint32) {
	for line := uint8(0); line < fault.NumEvents; line++ {
		if mask&(1<<line) != 0 {
			m.pending[line] = false
		}
	}
}

// Injector drives a Plan into the pipeline: it accumulates the core's
// per-cycle retirements and raises each event's line into the ICU when its
// retire index is crossed — the pipeline-side twin of Model.Advance.
type Injector struct {
	events  []Event
	next    int
	retired int64
}

// NewInjector builds the pipeline-side shim for plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{events: sortedEvents(plan)}
}

// Tick advances the injector by one clock cycle: retired is the number of
// instructions the core retired this cycle, raise latches one event line
// into the ICU (typically icu.ICU.Raise). Undeliverable events of a
// hand-mangled plan never reach here — sortedEvents filters them for the
// Model and the Injector alike, so both execution models agree on what a
// malformed plan does (nothing) instead of the pipeline crashing or
// spinning on it.
func (in *Injector) Tick(retired int, raise func(line uint8)) {
	in.retired += int64(retired)
	for in.next < len(in.events) && in.events[in.next].Retire <= in.retired {
		raise(in.events[in.next].Line)
		in.next++
	}
}

// Reset rewinds the injector for another run of the same plan.
func (in *Injector) Reset() { in.next, in.retired = 0, 0 }
