package trace

import (
	"strings"
	"testing"

	"repro/internal/cpu"
	"repro/internal/isa"
)

func ev(cycle int64, kind string, lane int, pc uint32, inst isa.Inst) cpu.TraceEvent {
	return cpu.TraceEvent{Cycle: cycle, Kind: kind, Lane: lane, PC: pc, Inst: inst}
}

func TestRecorderBuildsTimeline(t *testing.T) {
	r := NewRecorder(0x100, 0x110)
	fn := r.Fn()
	add := isa.Inst{Op: isa.OpADD, Rd: 2, Rs1: 1, Rs2: 1}
	or := isa.Inst{Op: isa.OpOR, Rd: 1, Rs1: 5}

	fn(ev(10, "issue", 0, 0x100, or))
	fn(ev(10, "issue", 1, 0x104, add))
	fn(ev(11, "ex", 0, 0x100, or))
	fn(ev(11, "ex", 1, 0x104, add))
	fn(cpu.TraceEvent{Cycle: 11, Kind: "fwd", Lane: 1, PC: 0x104, Inst: add, Operand: 0, Path: 5})
	fn(ev(12, "mem", 0, 0x100, or))
	fn(ev(13, "wb", 0, 0x100, or))
	fn(ev(13, "wb", 1, 0x104, add))
	// Outside the window: ignored.
	fn(ev(14, "issue", 0, 0x200, or))

	out := r.Render()
	if !strings.Contains(out, "IS") || !strings.Contains(out, "EX") || !strings.Contains(out, "WB") {
		t.Errorf("missing stage cells:\n%s", out)
	}
	if !strings.Contains(out, "cascade") {
		t.Errorf("missing forwarding annotation:\n%s", out)
	}
	if strings.Contains(out, "00000200") {
		t.Error("out-of-window instruction rendered")
	}
	if !r.ForwardingUsed(0x104) {
		t.Error("ForwardingUsed(0x104) = false")
	}
	if r.ForwardingUsed(0x100) {
		t.Error("ForwardingUsed(0x100) = true")
	}
}

func TestRecorderMultipleDynamicInstances(t *testing.T) {
	// The same PC issuing twice (a loop) creates two lines; stage events
	// attach to the latest instance.
	r := NewRecorder(0x100, 0x104)
	fn := r.Fn()
	nop := isa.Inst{Op: isa.OpNOP}
	fn(ev(1, "issue", 0, 0x100, nop))
	fn(ev(2, "ex", 0, 0x100, nop))
	fn(ev(10, "issue", 0, 0x100, nop))
	fn(ev(11, "ex", 0, 0x100, nop))
	out := r.Render()
	if strings.Count(out, "00000100") != 2 {
		t.Errorf("expected two dynamic instances:\n%s", out)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder(0, 0)
	if out := r.Render(); !strings.Contains(out, "no instructions") {
		t.Errorf("empty render = %q", out)
	}
}

func TestPathNames(t *testing.T) {
	want := map[int]string{0: "RF", 1: "EX-EX", 2: "EX-EX", 3: "MEM-EX", 4: "MEM-EX", 5: "cascade"}
	for p, name := range want {
		if got := pathName(p); got != name {
			t.Errorf("pathName(%d) = %q, want %q", p, got, name)
		}
	}
}
