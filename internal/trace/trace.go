package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cpu"
	"repro/internal/isa"
)

// stage occupancy labels in pipeline order.
var stageNames = []string{"IS", "EX", "ME", "WB"}

const (
	stIssue = iota
	stEx
	stMem
	stWb
	numStages
)

// instLine is one instruction's reconstructed timeline.
type instLine struct {
	pc     uint32
	inst   isa.Inst
	lane   int
	cycles [numStages]int64 // absolute cycle the instruction entered each stage
	fwd    []string         // forwarding annotations, e.g. "opA<-EX-EX"
	seq    int
}

// Recorder collects trace events for a PC window.
type Recorder struct {
	Lo, Hi uint32 // PC window of interest (inclusive, exclusive)

	lines  map[int64]*instLine // keyed by issue identity (cycle*4+lane... see key)
	byAddr map[uint32][]*instLine
	order  []*instLine
}

// NewRecorder observes instructions with Lo <= PC < Hi.
func NewRecorder(lo, hi uint32) *Recorder {
	return &Recorder{
		Lo: lo, Hi: hi,
		lines:  map[int64]*instLine{},
		byAddr: map[uint32][]*instLine{},
	}
}

// Fn returns the cpu.TraceFn to attach.
func (r *Recorder) Fn() cpu.TraceFn { return r.observe }

func pathName(p int) string {
	switch p {
	case 1, 2:
		return "EX-EX"
	case 3, 4:
		return "MEM-EX"
	case 5:
		return "cascade"
	}
	return "RF"
}

func (r *Recorder) observe(ev cpu.TraceEvent) {
	if ev.PC < r.Lo || ev.PC >= r.Hi {
		return
	}
	switch ev.Kind {
	case "issue":
		ln := &instLine{pc: ev.PC, inst: ev.Inst, lane: ev.Lane, seq: len(r.order)}
		for i := range ln.cycles {
			ln.cycles[i] = -1
		}
		ln.cycles[stIssue] = ev.Cycle
		r.byAddr[ev.PC] = append(r.byAddr[ev.PC], ln)
		r.order = append(r.order, ln)
	case "ex", "mem", "wb", "fwd":
		lns := r.byAddr[ev.PC]
		if len(lns) == 0 {
			return
		}
		ln := lns[len(lns)-1] // latest dynamic instance of this PC
		switch ev.Kind {
		case "ex":
			ln.cycles[stEx] = ev.Cycle
		case "mem":
			ln.cycles[stMem] = ev.Cycle
		case "wb":
			ln.cycles[stWb] = ev.Cycle
		case "fwd":
			op := "A"
			if ev.Operand == 1 {
				op = "B"
			}
			ln.fwd = append(ln.fwd, fmt.Sprintf("op%s<-%s", op, pathName(ev.Path)))
		}
	}
}

// ForwardingUsed reports whether any recorded instruction at pc received an
// operand through a non-register-file path.
func (r *Recorder) ForwardingUsed(pc uint32) bool {
	for _, ln := range r.byAddr[pc] {
		if len(ln.fwd) > 0 {
			return true
		}
	}
	return false
}

// Render draws the ASCII pipeline diagram of everything recorded.
func (r *Recorder) Render() string {
	if len(r.order) == 0 {
		return "(no instructions recorded)\n"
	}
	lines := append([]*instLine(nil), r.order...)
	sort.SliceStable(lines, func(i, j int) bool { return lines[i].seq < lines[j].seq })

	min, max := int64(1<<62), int64(0)
	for _, ln := range lines {
		for _, c := range ln.cycles {
			if c >= 0 {
				if c < min {
					min = c
				}
				if c > max {
					max = c
				}
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s|", "cycle ->")
	for c := min; c <= max; c++ {
		fmt.Fprintf(&sb, "%3d", c-min+1)
	}
	sb.WriteString("\n")
	for _, ln := range lines {
		fmt.Fprintf(&sb, "%-28s|", fmt.Sprintf("%08x %v", ln.pc, ln.inst))
		for c := min; c <= max; c++ {
			cell := " ."
			for st, sc := range ln.cycles {
				if sc == c {
					cell = stageNames[st]
				}
			}
			fmt.Fprintf(&sb, "%3s", cell)
		}
		if len(ln.fwd) > 0 {
			fmt.Fprintf(&sb, "  [%s]", strings.Join(ln.fwd, " "))
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
