// Package trace reconstructs pipeline diagrams from the CPU's trace-event
// stream, reproducing the paper's Figure 1: the same dependent instruction
// pair shown once with the forwarding path exercised (producer and consumer
// in back-to-back issue packets) and once broken apart by multi-core fetch
// stalls, with the consumer reading the register file instead.
package trace
