// Package mem provides the memory devices of the simulated SoC: shared
// flash (code storage with multi-cycle, per-bank access latency), shared
// SRAM, and per-core tightly-coupled memories (TCMs). Devices expose plain
// byte-addressed storage plus an access-latency model; all multi-byte values
// are little-endian.
package mem
