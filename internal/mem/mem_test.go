package mem

import "testing"

func TestRAMReadWrite(t *testing.T) {
	r := NewRAM(1024, 2)
	WriteWord(r, 16, 0xCAFEBABE)
	if got := ReadWord(r, 16); got != 0xCAFEBABE {
		t.Errorf("got 0x%x", got)
	}
	if r.AccessCycles(0, 4) != 2 {
		t.Error("latency")
	}
	// Little-endian layout.
	b := make([]byte, 4)
	r.Read(16, b)
	if b[0] != 0xBE || b[3] != 0xCA {
		t.Errorf("endianness: % x", b)
	}
}

func TestFlashBankLatency(t *testing.T) {
	f := NewFlash(1<<20, []int{8, 9})
	if got := f.AccessCycles(0, 16); got != 8 {
		t.Errorf("bank0 latency %d", got)
	}
	if got := f.AccessCycles(1<<19, 16); got != 9 {
		t.Errorf("bank1 latency %d", got)
	}
	if got := f.AccessCycles(1<<20-4, 4); got != 9 {
		t.Errorf("last bank latency %d", got)
	}
}

func TestFlashLoadAndReadOnly(t *testing.T) {
	f := NewFlash(4096, []int{8})
	if err := f.LoadWords(8, []uint32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if ReadWord(f, 12) != 2 {
		t.Error("load failed")
	}
	WriteWord(f, 12, 99) // bus writes ignored
	if ReadWord(f, 12) != 2 {
		t.Error("flash was writable from the bus")
	}
	if err := f.LoadWords(4094, []uint32{1}); err == nil {
		t.Error("overflow load accepted")
	}
}

func TestTCM(t *testing.T) {
	tcm := NewTCM(TCMSize)
	WriteWord(tcm, 0, 7)
	if ReadWord(tcm, 0) != 7 {
		t.Error("tcm rw")
	}
	if tcm.AccessCycles(0, 4) != 1 {
		t.Error("tcm must be single cycle")
	}
}

func TestTCMAddressing(t *testing.T) {
	if DTCMFor(0) != DTCMBase || DTCMFor(2) != DTCMBase+2*TCMStride {
		t.Error("DTCMFor")
	}
	if !InTCM(DTCMFor(1), 1) || InTCM(DTCMFor(1), 0) {
		t.Error("InTCM privacy")
	}
	if !InTCM(ITCMFor(2)+TCMSize-1, 2) || InTCM(ITCMFor(2)+TCMSize, 2) {
		t.Error("InTCM bounds")
	}
}

func TestLineAddr(t *testing.T) {
	if LineAddr(0x1237) != 0x1230 {
		t.Errorf("LineAddr = %#x", LineAddr(0x1237))
	}
	if LineAddr(0x1230) != 0x1230 {
		t.Error("aligned address changed")
	}
}
