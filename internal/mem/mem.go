package mem

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Physical memory map of the SoC. The uncached SRAM alias maps to the same
// storage as SRAMBase but is never routed through the private caches; it is
// used for inter-core synchronisation flags.
const (
	FlashBase = 0x0000_0000
	FlashSize = 1 << 20 // 1 MiB

	SRAMBase         = 0x2000_0000
	SRAMSize         = 256 << 10
	SRAMUncachedBase = 0x2800_0000 // alias of SRAMBase, uncacheable

	DTCMBase  = 0x3000_0000 // + coreID*TCMStride, private
	ITCMBase  = 0x3400_0000 // + coreID*TCMStride, private
	TCMSize   = 16 << 10
	TCMStride = 1 << 16

	// LineBytes is the width of a bus burst and of one cache line.
	LineBytes = 16

	// BarrierFlagBase is the reserved line at the top of the uncached SRAM
	// alias holding the per-core completion flags of the decentralized
	// scheduler barrier (internal/sched). Word id*4 belongs to core id.
	BarrierFlagBase = SRAMUncachedBase + SRAMSize - 64
)

// Device is byte-addressable storage with an access-cost model. Addresses
// are device-relative (0-based).
type Device interface {
	// Size returns the device capacity in bytes.
	Size() uint32
	// Read copies len(dst) bytes starting at off into dst.
	Read(off uint32, dst []byte)
	// Write stores src at off. Read-only devices ignore writes.
	Write(off uint32, src []byte)
	// AccessCycles returns how many bus cycles an access of n bytes at off
	// costs (the same for read and write in this model).
	AccessCycles(off uint32, n int) int
}

// dirtyPageBits is the log2 of the dirty-tracking page size: writable
// memories remember which 4 KiB pages a run has touched, so restoring
// between fault runs copies only the touched pages instead of the whole
// device (a run typically dirties a few data pages of the 256 KiB SRAM).
const dirtyPageBits = 12

// dirtyMap tracks written pages of a byte-addressed device.
type dirtyMap []uint64

func newDirtyMap(size uint32) dirtyMap {
	pages := (size + (1 << dirtyPageBits) - 1) >> dirtyPageBits
	return make(dirtyMap, (pages+63)/64)
}

func (d dirtyMap) mark(off uint32, n int) {
	first := off >> dirtyPageBits
	last := (off + uint32(n) - 1) >> dirtyPageBits
	for p := first; p <= last; p++ {
		d[p/64] |= 1 << (p % 64)
	}
}

// sweep calls fn for every dirty page's byte range and clears the map.
func (d dirtyMap) sweep(size uint32, fn func(lo, hi uint32)) {
	for w := range d {
		m := d[w]
		d[w] = 0
		for m != 0 {
			p := uint32(w*64 + bits.TrailingZeros64(m))
			m &= m - 1
			lo := p << dirtyPageBits
			hi := lo + 1<<dirtyPageBits
			if hi > size {
				hi = size
			}
			fn(lo, hi)
		}
	}
}

// pages calls fn for every dirty page's byte range without clearing the
// map (non-destructive counterpart of sweep, used for delta capture).
func (d dirtyMap) pages(size uint32, fn func(lo, hi uint32)) {
	for w := range d {
		m := d[w]
		for m != 0 {
			p := uint32(w*64 + bits.TrailingZeros64(m))
			m &= m - 1
			lo := p << dirtyPageBits
			hi := lo + 1<<dirtyPageBits
			if hi > size {
				hi = size
			}
			fn(lo, hi)
		}
	}
}

// PageDelta is the set of pages a run has written since the device's last
// Reset/Restore sweep, with their contents — exactly the difference between
// the current contents and the swept-to state, because sweeps are the only
// operations that clear the dirty map. Captured by RAM.CaptureDelta /
// TCM.CaptureDelta and reapplied by ApplyDelta (checkpoint machinery).
type PageDelta struct {
	offs []uint32 // page range start offsets, ascending
	ends []uint32 // matching page range end offsets (exclusive)
	data []byte   // page contents, concatenated in offs order
}

// captureDelta copies every dirty page of data into a PageDelta without
// clearing the dirty map (the run keeps going after the snapshot).
func captureDelta(data []byte, dirty dirtyMap, size uint32) *PageDelta {
	d := &PageDelta{}
	dirty.pages(size, func(lo, hi uint32) {
		d.offs = append(d.offs, lo)
		d.ends = append(d.ends, hi)
		d.data = append(d.data, data[lo:hi]...)
	})
	return d
}

// applyDelta copies the delta's pages back into data, marking them dirty so
// the next Reset/Restore sweep rewinds them again.
func applyDelta(data []byte, dirty dirtyMap, d *PageDelta) {
	pos := 0
	for i, lo := range d.offs {
		hi := d.ends[i]
		n := int(hi - lo)
		copy(data[lo:hi], d.data[pos:pos+n])
		dirty.mark(lo, n)
		pos += n
	}
}

// RAM is simple SRAM with uniform latency.
type RAM struct {
	data    []byte
	dirty   dirtyMap
	latency int
}

// NewRAM returns a RAM of the given size and access latency in cycles.
func NewRAM(size uint32, latency int) *RAM {
	return &RAM{data: make([]byte, size), dirty: newDirtyMap(size), latency: latency}
}

func (r *RAM) Size() uint32 { return uint32(len(r.data)) }

func (r *RAM) Read(off uint32, dst []byte) { copy(dst, r.data[off:]) }

func (r *RAM) Write(off uint32, src []byte) {
	if len(src) != 0 {
		r.dirty.mark(off, len(src))
		copy(r.data[off:], src)
	}
}

func (r *RAM) AccessCycles(uint32, int) int { return r.latency }

// Snapshot returns a copy of the RAM contents (baseline capture for
// reusable-simulator resets).
func (r *RAM) Snapshot() []byte { return append([]byte(nil), r.data...) }

// Restore rewinds the RAM contents to a snapshot taken from a RAM of the
// same size, copying only the pages written since the previous
// Restore/Reset (writes before the snapshot was taken are content no-ops).
func (r *RAM) Restore(img []byte) {
	if len(img) != len(r.data) {
		panic(fmt.Sprintf("mem: RAM restore size %d != %d", len(img), len(r.data)))
	}
	r.dirty.sweep(r.Size(), func(lo, hi uint32) { copy(r.data[lo:hi], img[lo:hi]) })
}

// Reset clears the RAM to power-on state (all zeros), sweeping only the
// pages written since the previous Restore/Reset.
func (r *RAM) Reset() {
	r.dirty.sweep(r.Size(), func(lo, hi uint32) { clear(r.data[lo:hi]) })
}

// CaptureDelta snapshots the pages written since the last Restore/Reset
// sweep without disturbing the dirty map; ApplyDelta on a RAM in the
// swept-to state reproduces the captured contents exactly.
func (r *RAM) CaptureDelta() *PageDelta { return captureDelta(r.data, r.dirty, r.Size()) }

// ApplyDelta overlays a captured page delta, marking the pages dirty so the
// next sweep rewinds them.
func (r *RAM) ApplyDelta(d *PageDelta) { applyDelta(r.data, r.dirty, d) }

// Flash models the code flash: writable only through the loader (LoadWords),
// read-only from the bus, with per-bank wait states. Bank latencies differ
// slightly, which is one reason the paper's "code position in memory"
// scenario knob affects timing.
type Flash struct {
	data     []byte
	bankSize uint32
	lat      []int
}

// NewFlash creates a flash of the given size split into equal banks; lat[i]
// is the access latency of bank i and must be non-empty.
func NewFlash(size uint32, bankLatencies []int) *Flash {
	if len(bankLatencies) == 0 {
		panic("mem: flash needs at least one bank latency")
	}
	if size%uint32(len(bankLatencies)) != 0 {
		panic("mem: flash size not divisible by bank count")
	}
	return &Flash{
		data:     make([]byte, size),
		bankSize: size / uint32(len(bankLatencies)),
		lat:      append([]int(nil), bankLatencies...),
	}
}

func (f *Flash) Size() uint32 { return uint32(len(f.data)) }

func (f *Flash) Read(off uint32, dst []byte) { copy(dst, f.data[off:]) }

// Write is ignored: flash is not bus-writable (mirrors real hardware, and
// keeps wild stores from a faulty program from corrupting code).
func (f *Flash) Write(uint32, []byte) {}

func (f *Flash) AccessCycles(off uint32, _ int) int {
	b := off / f.bankSize
	if int(b) >= len(f.lat) {
		b = uint32(len(f.lat) - 1)
	}
	return f.lat[b]
}

// LoadWords programs the flash image at the given offset (loader path, not
// a bus access).
func (f *Flash) LoadWords(off uint32, words []uint32) error {
	end := uint64(off) + uint64(len(words))*4
	if end > uint64(len(f.data)) {
		return fmt.Errorf("mem: flash image [%#x,%#x) exceeds size %#x", off, end, len(f.data))
	}
	for i, w := range words {
		binary.LittleEndian.PutUint32(f.data[off+uint32(i)*4:], w)
	}
	return nil
}

// TCM is a single-cycle tightly-coupled memory private to one core.
type TCM struct {
	data  []byte
	dirty dirtyMap
}

// NewTCM returns a TCM of the given size.
func NewTCM(size uint32) *TCM { return &TCM{data: make([]byte, size), dirty: newDirtyMap(size)} }

func (t *TCM) Size() uint32                { return uint32(len(t.data)) }
func (t *TCM) Read(off uint32, dst []byte) { copy(dst, t.data[off:]) }
func (t *TCM) Write(off uint32, src []byte) {
	if len(src) != 0 {
		t.dirty.mark(off, len(src))
		copy(t.data[off:], src)
	}
}
func (t *TCM) AccessCycles(uint32, int) int { return 1 }

// Snapshot returns a copy of the TCM contents.
func (t *TCM) Snapshot() []byte { return append([]byte(nil), t.data...) }

// Restore rewinds the TCM contents to a snapshot of the same size; like
// RAM.Restore it copies only the pages written since the previous sweep.
func (t *TCM) Restore(img []byte) {
	if len(img) != len(t.data) {
		panic(fmt.Sprintf("mem: TCM restore size %d != %d", len(img), len(t.data)))
	}
	t.dirty.sweep(t.Size(), func(lo, hi uint32) { copy(t.data[lo:hi], img[lo:hi]) })
}

// Reset clears the TCM to power-on state (all zeros), sweeping only the
// pages written since the previous sweep.
func (t *TCM) Reset() {
	t.dirty.sweep(t.Size(), func(lo, hi uint32) { clear(t.data[lo:hi]) })
}

// CaptureDelta snapshots the pages written since the last sweep without
// disturbing the dirty map (see RAM.CaptureDelta).
func (t *TCM) CaptureDelta() *PageDelta { return captureDelta(t.data, t.dirty, t.Size()) }

// ApplyDelta overlays a captured page delta, marking the pages dirty so the
// next sweep rewinds them.
func (t *TCM) ApplyDelta(d *PageDelta) { applyDelta(t.data, t.dirty, d) }

// Word helpers shared by devices and the CPU.

// ReadWord reads a little-endian 32-bit word from d at off.
func ReadWord(d Device, off uint32) uint32 {
	var b [4]byte
	d.Read(off, b[:])
	return binary.LittleEndian.Uint32(b[:])
}

// WriteWord writes a little-endian 32-bit word to d at off.
func WriteWord(d Device, off uint32, v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	d.Write(off, b[:])
}

// DTCMFor returns the base address of core coreID's data TCM.
func DTCMFor(coreID int) uint32 { return DTCMBase + uint32(coreID)*TCMStride }

// ITCMFor returns the base address of core coreID's instruction TCM.
func ITCMFor(coreID int) uint32 { return ITCMBase + uint32(coreID)*TCMStride }

// InTCM reports whether addr falls in core coreID's private TCM windows.
func InTCM(addr uint32, coreID int) bool {
	d := DTCMFor(coreID)
	i := ITCMFor(coreID)
	return (addr >= d && addr < d+TCMSize) || (addr >= i && addr < i+TCMSize)
}

// LineAddr returns the line-aligned base of addr.
func LineAddr(addr uint32) uint32 { return addr &^ uint32(LineBytes-1) }
