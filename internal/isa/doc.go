// Package isa defines the instruction set architecture of the simulated
// automotive cores: a 32-bit RISC ISA (DLX-flavoured) with a paired-register
// 64-bit extension implemented only by core C, a small CSR space exposing
// performance counters and the interrupt control unit, and cache-control
// instructions. Instructions are encoded in fixed 32-bit words so that
// programs can live in simulated memory, be copied by load/store loops
// (TCM-based strategy) and be fetched through caches.
package isa
