package isa

// Control and Status Register numbers. CSRs are read with CSRR and written
// with CSRW; the performance counters are read-only from software.
const (
	CsrCycle    = 0 // clock cycles since reset
	CsrInstret  = 1 // instructions retired
	CsrIFStall  = 2 // cycles the pipeline waited on instruction fetch
	CsrMemStall = 3 // cycles the pipeline waited on data memory
	CsrHazStall = 4 // bubbles inserted by the hazard detection control unit
	CsrIssued2  = 5 // dual-issue packets (both lanes filled)

	CsrICause  = 8  // interrupt cause bits (ICU)
	CsrIDist   = 9  // imprecision distance of the last taken interrupt
	CsrIEPC    = 10 // resume PC saved by the last taken interrupt
	CsrIEnable = 11 // interrupt enable mask (bit per cause line)
	CsrIPend   = 12 // pending event lines (read-only)
	CsrIVec    = 13 // interrupt vector address

	CsrCoreID = 16 // hardwired core identifier (0=A, 1=B, 2=C)
)

// CsrName returns a symbolic name for the CSR number, for disassembly.
func CsrName(n int32) string {
	switch n {
	case CsrCycle:
		return "cycle"
	case CsrInstret:
		return "instret"
	case CsrIFStall:
		return "ifstall"
	case CsrMemStall:
		return "memstall"
	case CsrHazStall:
		return "hazstall"
	case CsrIssued2:
		return "issued2"
	case CsrICause:
		return "icause"
	case CsrIDist:
		return "idist"
	case CsrIEPC:
		return "iepc"
	case CsrIEnable:
		return "ienable"
	case CsrIPend:
		return "ipend"
	case CsrIVec:
		return "ivec"
	case CsrCoreID:
		return "coreid"
	}
	return "csr?"
}
