package isa

import (
	"math/rand"
	"testing"
)

// randInstFor builds a random canonical instruction for op: only the fields
// the operand format uses are populated, with immediates drawn from the
// encodable range — exactly the shape Decode reports back.
func randInstFor(rng *rand.Rand, op Op) Inst {
	reg := func() uint8 { return uint8(rng.Intn(32)) }
	i := Inst{Op: op}
	switch FormatOf(op) {
	case FmtNone:
		// no operands
	case FmtR:
		i.Rd, i.Rs1, i.Rs2 = reg(), reg(), reg()
	case FmtRShamt:
		i.Rd, i.Rs1, i.Imm = reg(), reg(), int32(rng.Intn(32))
	case FmtI:
		i.Rd, i.Rs1 = reg(), reg()
		if zeroExtImm(op) {
			i.Imm = int32(rng.Intn(1 << 16))
		} else {
			i.Imm = int32(rng.Intn(1<<16)) - 1<<15
		}
	case FmtLui:
		i.Rd, i.Imm = reg(), int32(rng.Intn(1<<16))
	case FmtMem:
		i.Rs1, i.Imm = reg(), int32(rng.Intn(1<<16))-1<<15
		if op.IsStore() {
			i.Rs2 = reg()
		} else {
			i.Rd = reg()
		}
	case FmtBranch:
		i.Rs1, i.Rs2 = reg(), reg()
		i.Imm = (int32(rng.Intn(1<<16)) - 1<<15) &^ 3
	case FmtJump:
		i.Imm = (int32(rng.Intn(1<<26)) - 1<<25) &^ 3
	case FmtJR:
		i.Rs1 = reg()
	case FmtJALR:
		i.Rd, i.Rs1 = reg(), reg()
	case FmtCSRR:
		i.Rd, i.Imm = reg(), int32(rng.Intn(1<<16))
	case FmtCSRW:
		i.Rs1, i.Imm = reg(), int32(rng.Intn(1<<16))
	case FmtCINV:
		i.Imm = int32(1 + rng.Intn(3))
	}
	return i
}

// TestEncodeDecodeRoundTrip: for every operation of the ISA, random
// instances of its operand form must survive encode→decode bit-exactly,
// and re-encoding the decoded instruction must reproduce the same word.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const trials = 200
	for opn := 1; opn <= NumOps; opn++ {
		op := Op(opn)
		for trial := 0; trial < trials; trial++ {
			in := randInstFor(rng, op)
			w, err := Encode(in)
			if err != nil {
				t.Fatalf("%v: cannot encode %+v: %v", op, in, err)
			}
			out, err := Decode(w)
			if err != nil {
				t.Fatalf("%v: cannot decode %08x (from %+v): %v", op, w, in, err)
			}
			if out != in {
				t.Fatalf("%v: round trip %+v -> %08x -> %+v", op, in, w, out)
			}
			w2, err := Encode(out)
			if err != nil {
				t.Fatalf("%v: cannot re-encode %+v: %v", op, out, err)
			}
			if w2 != w {
				t.Fatalf("%v: word round trip %08x -> %08x", op, w, w2)
			}
		}
	}
}

// TestDecodeNeverPanics: arbitrary words either decode to a valid op that
// re-encodes to the same word, or return an error — never panic, never
// decode to something unencodable.
func TestDecodeNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100_000; trial++ {
		w := rng.Uint32()
		inst, err := Decode(w)
		if err != nil {
			continue
		}
		if !inst.Op.Valid() {
			t.Fatalf("word %08x decoded without error to invalid op", w)
		}
		w2, err := Encode(inst)
		if err != nil {
			t.Fatalf("word %08x decoded to unencodable %+v: %v", w, inst, err)
		}
		if w2 != w {
			t.Fatalf("word %08x re-encodes to %08x (%+v)", w, w2, inst)
		}
	}
}
