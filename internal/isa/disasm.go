package isa

import "fmt"

// String renders the instruction in assembler syntax, e.g. "add r3, r1, r2".
func (i Inst) String() string {
	switch FormatOf(i.Op) {
	case FmtNone:
		return i.Op.String()
	case FmtR:
		return fmt.Sprintf("%s r%d, r%d, r%d", i.Op, i.Rd, i.Rs1, i.Rs2)
	case FmtRShamt:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case FmtI:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case FmtLui:
		return fmt.Sprintf("%s r%d, 0x%x", i.Op, i.Rd, uint32(i.Imm)&0xFFFF)
	case FmtMem:
		reg := i.Rd
		if i.Op.IsStore() {
			reg = i.Rs2
		}
		return fmt.Sprintf("%s r%d, %d(r%d)", i.Op, reg, i.Imm, i.Rs1)
	case FmtBranch:
		return fmt.Sprintf("%s r%d, r%d, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case FmtJump:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case FmtJR:
		return fmt.Sprintf("%s r%d", i.Op, i.Rs1)
	case FmtJALR:
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Rd, i.Rs1)
	case FmtCSRR:
		return fmt.Sprintf("%s r%d, %s", i.Op, i.Rd, CsrName(i.Imm))
	case FmtCSRW:
		return fmt.Sprintf("%s %s, r%d", i.Op, CsrName(i.Imm), i.Rs1)
	case FmtCINV:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	}
	return i.Op.String()
}

// Disasm decodes and renders a memory word; undecodable words render as
// ".word 0x…".
func Disasm(w uint32) string {
	i, err := Decode(w)
	if err != nil {
		return fmt.Sprintf(".word 0x%08x", w)
	}
	return i.String()
}
