package isa

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestOpStringsUnique(t *testing.T) {
	seen := map[string]Op{}
	for op := OpInvalid + 1; op < opMax; op++ {
		s := op.String()
		if s == "" || s == "invalid" {
			t.Errorf("op %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("mnemonic %q shared by %d and %d", s, prev, op)
		}
		seen[s] = op
	}
}

func TestEveryOpHasFormat(t *testing.T) {
	for op := OpInvalid + 1; op < opMax; op++ {
		// FmtNone is a legitimate format, so only check that R-type ops
		// were not accidentally given a major opcode and vice versa.
		_, isI := opMajor[op]
		f := FormatOf(op)
		if isI && f == FmtR {
			t.Errorf("%v has a major opcode but R format", op)
		}
	}
}

func TestEncodeDecodeRoundTripExhaustiveOps(t *testing.T) {
	cases := []Inst{
		{Op: OpADD, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: OpSUB, Rd: 31, Rs1: 30, Rs2: 29},
		{Op: OpSLL, Rd: 5, Rs1: 6, Imm: 31},
		{Op: OpSRA, Rd: 5, Rs1: 6, Imm: 0},
		{Op: OpADDI, Rd: 7, Rs1: 8, Imm: -32768},
		{Op: OpADDI, Rd: 7, Rs1: 8, Imm: 32767},
		{Op: OpANDI, Rd: 7, Rs1: 8, Imm: 0xFFFF},
		{Op: OpORI, Rd: 1, Rs1: 0, Imm: 0},
		{Op: OpLUI, Rd: 9, Imm: 0xABCD},
		{Op: OpLW, Rd: 10, Rs1: 29, Imm: 1024},
		{Op: OpSW, Rs2: 11, Rs1: 29, Imm: -4},
		{Op: OpLB, Rd: 2, Rs1: 3, Imm: 5},
		{Op: OpSB, Rs2: 2, Rs1: 3, Imm: -5},
		{Op: OpLWP, Rd: 12, Rs1: 29, Imm: 8},
		{Op: OpSWP, Rs2: 12, Rs1: 29, Imm: 8},
		{Op: OpBEQ, Rs1: 1, Rs2: 2, Imm: -32768},
		{Op: OpBNE, Rs1: 1, Rs2: 2, Imm: 32764},
		{Op: OpBLT, Rs1: 3, Rs2: 4, Imm: 8},
		{Op: OpBGE, Rs1: 3, Rs2: 4, Imm: -8},
		{Op: OpJ, Imm: -(1 << 25)},
		{Op: OpJAL, Imm: 1<<25 - 4},
		{Op: OpJALR, Rd: 31, Rs1: 5},
		{Op: OpJR, Rs1: 31},
		{Op: OpCSRR, Rd: 4, Imm: CsrCycle},
		{Op: OpCSRW, Rs1: 4, Imm: CsrIEnable},
		{Op: OpCINV, Imm: CinvBoth},
		{Op: OpRFE}, {Op: OpHALT}, {Op: OpNOP},
		{Op: OpADDV, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpDIVV, Rd: 1, Rs1: 2, Rs2: 3},
		{Op: OpADDP, Rd: 2, Rs1: 4, Rs2: 6},
		{Op: OpMUL, Rd: 8, Rs1: 9, Rs2: 10},
		{Op: OpNOR, Rd: 8, Rs1: 9, Rs2: 10},
		{Op: OpSLTU, Rd: 8, Rs1: 9, Rs2: 10},
		{Op: OpSLLV, Rd: 8, Rs1: 9, Rs2: 10},
	}
	for _, in := range cases {
		w, err := Encode(in)
		if err != nil {
			t.Fatalf("Encode(%v): %v", in, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("Decode(Encode(%v)) = 0x%08x: %v", in, w, err)
		}
		if out != in {
			t.Errorf("roundtrip %v -> 0x%08x -> %v", in, w, out)
		}
	}
}

// randInst builds a random but encodable instruction.
func randInst(r *rand.Rand) Inst {
	for {
		op := Op(1 + r.Intn(NumOps))
		i := Inst{Op: op}
		switch FormatOf(op) {
		case FmtR:
			i.Rd, i.Rs1, i.Rs2 = uint8(r.Intn(32)), uint8(r.Intn(32)), uint8(r.Intn(32))
		case FmtRShamt:
			i.Rd, i.Rs1, i.Imm = uint8(r.Intn(32)), uint8(r.Intn(32)), int32(r.Intn(32))
		case FmtI:
			i.Rd, i.Rs1 = uint8(r.Intn(32)), uint8(r.Intn(32))
			if zeroExtImm(op) {
				i.Imm = int32(r.Intn(1 << 16))
			} else {
				i.Imm = int32(r.Intn(1<<16)) - 1<<15
			}
		case FmtLui:
			i.Rd, i.Imm = uint8(r.Intn(32)), int32(r.Intn(1<<16))
		case FmtMem:
			i.Rs1, i.Imm = uint8(r.Intn(32)), int32(r.Intn(1<<16))-1<<15
			if op.IsStore() {
				i.Rs2 = uint8(r.Intn(32))
			} else {
				i.Rd = uint8(r.Intn(32))
			}
		case FmtBranch:
			i.Rs1, i.Rs2 = uint8(r.Intn(32)), uint8(r.Intn(32))
			i.Imm = (int32(r.Intn(1<<14)) - 1<<13) * 4
		case FmtJump:
			i.Imm = (int32(r.Intn(1<<24)) - 1<<23) * 4
		case FmtJR:
			i.Rs1 = uint8(r.Intn(32))
		case FmtJALR:
			i.Rd, i.Rs1 = uint8(r.Intn(32)), uint8(r.Intn(32))
		case FmtCSRR:
			i.Rd, i.Imm = uint8(r.Intn(32)), int32(r.Intn(17))
		case FmtCSRW:
			i.Rs1, i.Imm = uint8(r.Intn(32)), int32(r.Intn(17))
		case FmtCINV:
			i.Imm = int32(1 + r.Intn(3))
		}
		return i
	}
}

func TestEncodeDecodeRoundTripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 5000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randInst(r))
		},
	}
	prop := func(in Inst) bool {
		w, err := Encode(in)
		if err != nil {
			t.Logf("encode %v: %v", in, err)
			return false
		}
		out, err := Decode(w)
		if err != nil {
			t.Logf("decode 0x%08x: %v", w, err)
			return false
		}
		return out == in
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []uint32{
		0xFFFFFFFF,                          // major 63 undefined
		uint32(7) << 26,                     // major 7 undefined
		uint32(majorRType) | 0,              // funct 0 = OpInvalid
		uint32(majorRType) | uint32(OpADDI), // I-type op as R funct
		uint32(0x3F) << 26,
	}
	for _, w := range bad {
		if _, err := Decode(w); err == nil {
			t.Errorf("Decode(0x%08x) accepted garbage", w)
		}
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: 40000},
		{Op: OpADDI, Rd: 1, Rs1: 1, Imm: -40000},
		{Op: OpANDI, Rd: 1, Rs1: 1, Imm: -1},
		{Op: OpSLL, Rd: 1, Rs1: 1, Imm: 32},
		{Op: OpBEQ, Rs1: 1, Rs2: 1, Imm: 2},       // misaligned
		{Op: OpBEQ, Rs1: 1, Rs2: 1, Imm: 1 << 16}, // out of range
		{Op: OpJ, Imm: 1 << 26},
		{Op: OpJ, Imm: 6}, // misaligned
		{Op: OpADD, Rd: 32, Rs1: 0, Rs2: 0},
		{Op: OpInvalid},
	}
	for _, i := range bad {
		if _, err := Encode(i); err == nil {
			t.Errorf("Encode(%v) accepted out-of-range operand", i)
		}
	}
}

func TestClassifiers(t *testing.T) {
	if !OpLW.IsLoad() || OpLW.IsStore() || !OpLW.IsMem() {
		t.Error("LW misclassified")
	}
	if !OpSWP.IsStore() || !OpSWP.IsPair() {
		t.Error("SWP misclassified")
	}
	if !OpBEQ.IsBranch() || OpBEQ.IsJump() || !OpBEQ.IsControl() {
		t.Error("BEQ misclassified")
	}
	if !OpJAL.IsJump() || !OpRFE.IsJump() {
		t.Error("jump misclassified")
	}
	if !OpCSRR.IsSystem() || !OpHALT.IsSystem() {
		t.Error("system misclassified")
	}
	if !OpADDV.CanRaiseEvent() || OpADD.CanRaiseEvent() {
		t.Error("event classification wrong")
	}
}

func TestWritesRegAndSrcRegs(t *testing.T) {
	cases := []struct {
		i      Inst
		writes bool
		a      uint8
		useA   bool
		b      uint8
		useB   bool
	}{
		{Inst{Op: OpADD, Rd: 3, Rs1: 1, Rs2: 2}, true, 1, true, 2, true},
		{Inst{Op: OpADDI, Rd: 3, Rs1: 1, Imm: 5}, true, 1, true, 0, false},
		{Inst{Op: OpLW, Rd: 3, Rs1: 29, Imm: 0}, true, 29, true, 0, false},
		{Inst{Op: OpSW, Rs2: 3, Rs1: 29, Imm: 0}, false, 29, true, 3, true},
		{Inst{Op: OpBEQ, Rs1: 4, Rs2: 5, Imm: 8}, false, 4, true, 5, true},
		{Inst{Op: OpJAL, Imm: 8}, true, 0, false, 0, false},
		{Inst{Op: OpJR, Rs1: 31}, false, 31, true, 0, false},
		{Inst{Op: OpJALR, Rd: 31, Rs1: 2}, true, 2, true, 0, false},
		{Inst{Op: OpCSRW, Rs1: 7, Imm: CsrIVec}, false, 7, true, 0, false},
		{Inst{Op: OpCSRR, Rd: 7, Imm: CsrCycle}, true, 0, false, 0, false},
		{Inst{Op: OpNOP}, false, 0, false, 0, false},
	}
	for _, c := range cases {
		if got := c.i.WritesReg(); got != c.writes {
			t.Errorf("%v WritesReg = %v, want %v", c.i, got, c.writes)
		}
		a, ua, b, ub := c.i.SrcRegs()
		if a != c.a || ua != c.useA || b != c.b || ub != c.useB {
			t.Errorf("%v SrcRegs = (%d,%v,%d,%v), want (%d,%v,%d,%v)",
				c.i, a, ua, b, ub, c.a, c.useA, c.b, c.useB)
		}
	}
}

func TestDisasm(t *testing.T) {
	cases := []struct {
		i    Inst
		want string
	}{
		{Inst{Op: OpADD, Rd: 3, Rs1: 1, Rs2: 2}, "add r3, r1, r2"},
		{Inst{Op: OpADDI, Rd: 3, Rs1: 1, Imm: -7}, "addi r3, r1, -7"},
		{Inst{Op: OpLW, Rd: 4, Rs1: 29, Imm: 12}, "lw r4, 12(r29)"},
		{Inst{Op: OpSW, Rs2: 4, Rs1: 29, Imm: 12}, "sw r4, 12(r29)"},
		{Inst{Op: OpBNE, Rs1: 30, Rs2: 0, Imm: -16}, "bne r30, r0, -16"},
		{Inst{Op: OpCSRR, Rd: 5, Imm: CsrIFStall}, "csrr r5, ifstall"},
		{Inst{Op: OpNOP}, "nop"},
		{Inst{Op: OpSLL, Rd: 2, Rs1: 2, Imm: 1}, "sll r2, r2, 1"},
	}
	for _, c := range cases {
		if got := c.i.String(); got != c.want {
			t.Errorf("String(%+v) = %q, want %q", c.i, got, c.want)
		}
		w := MustEncode(c.i)
		if got := Disasm(w); got != c.want {
			t.Errorf("Disasm(0x%08x) = %q, want %q", w, got, c.want)
		}
	}
	if got := Disasm(0xFFFFFFFF); got != ".word 0xffffffff" {
		t.Errorf("Disasm(garbage) = %q", got)
	}
}
