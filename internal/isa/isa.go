package isa

import "fmt"

// Op identifies an operation. The zero value is OpInvalid so that
// uninitialised memory decodes to an illegal instruction.
type Op uint8

// Operation set. R-type ALU operations share the RTYPE major opcode and are
// distinguished by a funct field; every other Op maps to its own major
// opcode. See encode.go for the binary layout.
const (
	OpInvalid Op = iota

	// R-type ALU (register-register).
	OpADD
	OpSUB
	OpAND
	OpOR
	OpXOR
	OpNOR
	OpSLT
	OpSLTU
	OpSLLV // shift left by register
	OpSRLV
	OpSRAV
	OpMUL

	// R-type shifts by immediate amount (shamt encoded in the rs2 field).
	OpSLL
	OpSRL
	OpSRA

	// R-type overflow/trap-raising arithmetic. These raise synchronous
	// imprecise interrupt events towards the ICU (see internal/icu).
	OpADDV // raises EvOverflowAdd on signed overflow
	OpSUBV // raises EvOverflowSub on signed overflow
	OpMULV // raises EvOverflowMul when the 64-bit product does not fit 32 bits
	OpDIVV // raises EvDivideByZero when rs2 == 0

	// R-type paired-register 64-bit extension (core C only). A register
	// pair (r[n], r[n+1]) holds the (low, high) words of a 64-bit value.
	OpADDP
	OpSUBP
	OpANDP
	OpORP
	OpXORP

	// R-type system.
	OpJR
	OpRFE  // return from exception
	OpHALT // stop the core
	OpNOP

	// I-type ALU.
	OpADDI
	OpANDI
	OpORI
	OpXORI
	OpSLTI
	OpLUI // rd = imm16 << 16

	// Memory. LWP/SWP move register pairs (64 bits, core C only).
	OpLW
	OpSW
	OpLB
	OpLBU
	OpSB
	OpLWP
	OpSWP

	// Control flow. Branch offsets are in bytes relative to the address of
	// the instruction after the branch.
	OpBEQ
	OpBNE
	OpBLT
	OpBGE
	OpJ
	OpJAL
	OpJALR

	// CSR access and cache control.
	OpCSRR // rd = csr[imm]
	OpCSRW // csr[imm] = rs1
	OpCINV // invalidate caches; imm selects I(1), D(2) or both(3)

	opMax // number of ops; keep last
)

// NumOps reports how many distinct operations the ISA defines (excluding
// OpInvalid).
const NumOps = int(opMax) - 1

var opNames = [...]string{
	OpInvalid: "invalid",
	OpADD:     "add", OpSUB: "sub", OpAND: "and", OpOR: "or",
	OpXOR: "xor", OpNOR: "nor", OpSLT: "slt", OpSLTU: "sltu",
	OpSLLV: "sllv", OpSRLV: "srlv", OpSRAV: "srav", OpMUL: "mul",
	OpSLL: "sll", OpSRL: "srl", OpSRA: "sra",
	OpADDV: "addv", OpSUBV: "subv", OpMULV: "mulv", OpDIVV: "divv",
	OpADDP: "addp", OpSUBP: "subp", OpANDP: "andp", OpORP: "orp", OpXORP: "xorp",
	OpJR: "jr", OpRFE: "rfe", OpHALT: "halt", OpNOP: "nop",
	OpADDI: "addi", OpANDI: "andi", OpORI: "ori", OpXORI: "xori",
	OpSLTI: "slti", OpLUI: "lui",
	OpLW: "lw", OpSW: "sw", OpLB: "lb", OpLBU: "lbu", OpSB: "sb",
	OpLWP: "lwp", OpSWP: "swp",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt", OpBGE: "bge",
	OpJ: "j", OpJAL: "jal", OpJALR: "jalr",
	OpCSRR: "csrr", OpCSRW: "csrw", OpCINV: "cinv",
}

// String returns the assembler mnemonic for op.
func (op Op) String() string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// Valid reports whether op names a defined operation.
func (op Op) Valid() bool { return op > OpInvalid && op < opMax }

// Inst is a decoded instruction. Fields that a given operation does not use
// are zero. Imm carries sign-extended immediates, branch/jump offsets, shift
// amounts, CSR numbers and CINV selectors depending on the operation.
type Inst struct {
	Op  Op
	Rd  uint8 // destination register (0..31)
	Rs1 uint8 // first source register
	Rs2 uint8 // second source register
	Imm int32
}

// Format classifies an operation's operand shape for encoding, assembly
// parsing and hazard analysis.
type Format uint8

const (
	FmtNone   Format = iota // nop, halt, rfe
	FmtR                    // rd, rs1, rs2
	FmtRShamt               // rd, rs1, shamt
	FmtI                    // rd, rs1, imm
	FmtLui                  // rd, imm
	FmtMem                  // rd/rs2, imm(rs1)
	FmtBranch               // rs1, rs2, offset
	FmtJump                 // target offset
	FmtJR                   // rs1
	FmtJALR                 // rd, rs1
	FmtCSRR                 // rd, csr
	FmtCSRW                 // csr, rs1
	FmtCINV                 // selector
)

var opFormats = [...]Format{
	OpADD: FmtR, OpSUB: FmtR, OpAND: FmtR, OpOR: FmtR, OpXOR: FmtR,
	OpNOR: FmtR, OpSLT: FmtR, OpSLTU: FmtR, OpSLLV: FmtR, OpSRLV: FmtR,
	OpSRAV: FmtR, OpMUL: FmtR,
	OpSLL: FmtRShamt, OpSRL: FmtRShamt, OpSRA: FmtRShamt,
	OpADDV: FmtR, OpSUBV: FmtR, OpMULV: FmtR, OpDIVV: FmtR,
	OpADDP: FmtR, OpSUBP: FmtR, OpANDP: FmtR, OpORP: FmtR, OpXORP: FmtR,
	OpJR: FmtJR, OpRFE: FmtNone, OpHALT: FmtNone, OpNOP: FmtNone,
	OpADDI: FmtI, OpANDI: FmtI, OpORI: FmtI, OpXORI: FmtI, OpSLTI: FmtI,
	OpLUI: FmtLui,
	OpLW:  FmtMem, OpSW: FmtMem, OpLB: FmtMem, OpLBU: FmtMem, OpSB: FmtMem,
	OpLWP: FmtMem, OpSWP: FmtMem,
	OpBEQ: FmtBranch, OpBNE: FmtBranch, OpBLT: FmtBranch, OpBGE: FmtBranch,
	OpJ: FmtJump, OpJAL: FmtJump, OpJALR: FmtJALR,
	OpCSRR: FmtCSRR, OpCSRW: FmtCSRW, OpCINV: FmtCINV,
}

// FormatOf returns the operand format of op.
func FormatOf(op Op) Format {
	if int(op) < len(opFormats) {
		return opFormats[op]
	}
	return FmtNone
}

// Classification helpers used by the pipeline's issue and hazard logic.

// IsLoad reports whether op reads data memory.
func (op Op) IsLoad() bool {
	return op == OpLW || op == OpLB || op == OpLBU || op == OpLWP
}

// IsStore reports whether op writes data memory.
func (op Op) IsStore() bool { return op == OpSW || op == OpSB || op == OpSWP }

// IsMem reports whether op accesses data memory.
func (op Op) IsMem() bool { return op.IsLoad() || op.IsStore() }

// IsBranch reports whether op is a conditional branch.
func (op Op) IsBranch() bool {
	return op == OpBEQ || op == OpBNE || op == OpBLT || op == OpBGE
}

// IsJump reports whether op unconditionally redirects control flow.
func (op Op) IsJump() bool {
	return op == OpJ || op == OpJAL || op == OpJR || op == OpJALR || op == OpRFE
}

// IsControl reports whether op can redirect control flow.
func (op Op) IsControl() bool { return op.IsBranch() || op.IsJump() || op == OpHALT }

// IsPair reports whether op belongs to the 64-bit paired-register extension
// (legal only on cores with Has64 set, i.e. core C).
func (op Op) IsPair() bool {
	switch op {
	case OpADDP, OpSUBP, OpANDP, OpORP, OpXORP, OpLWP, OpSWP:
		return true
	}
	return false
}

// IsSystem reports whether op must issue alone (serialising).
func (op Op) IsSystem() bool {
	switch op {
	case OpCSRR, OpCSRW, OpCINV, OpRFE, OpHALT:
		return true
	}
	return false
}

// CanRaiseEvent reports whether op may raise a synchronous imprecise
// interrupt event towards the ICU.
func (op Op) CanRaiseEvent() bool {
	switch op {
	case OpADDV, OpSUBV, OpMULV, OpDIVV:
		return true
	}
	return false
}

// WritesReg reports whether the instruction writes a general-purpose
// register (writes to r0 are discarded by the register file but still count
// as "writes" for encoding purposes; hazard logic must additionally check
// Rd != 0).
func (i Inst) WritesReg() bool {
	switch FormatOf(i.Op) {
	case FmtR, FmtRShamt, FmtI, FmtLui, FmtCSRR, FmtJALR:
		return true
	case FmtMem:
		return i.Op.IsLoad()
	case FmtJump:
		return i.Op == OpJAL
	}
	return false
}

// SrcRegs returns the general-purpose source registers the instruction
// reads, as (reg, used) pairs for up to two operands. Paired operations also
// read/write reg+1; the pipeline widens those accesses itself.
func (i Inst) SrcRegs() (a uint8, useA bool, b uint8, useB bool) {
	switch FormatOf(i.Op) {
	case FmtR:
		return i.Rs1, true, i.Rs2, true
	case FmtRShamt, FmtI:
		return i.Rs1, true, 0, false
	case FmtMem:
		if i.Op.IsStore() {
			return i.Rs1, true, i.Rs2, true // base, data
		}
		return i.Rs1, true, 0, false
	case FmtBranch:
		return i.Rs1, true, i.Rs2, true
	case FmtJR, FmtJALR:
		return i.Rs1, true, 0, false
	case FmtCSRW:
		return i.Rs1, true, 0, false
	}
	return 0, false, 0, false
}

// Reg register-name table: r0..r31 with conventional aliases used by the
// SBST generators.
const (
	RegZero = 0  // hardwired zero
	RegSig  = 28 // software MISR signature accumulator
	RegTmp0 = 26 // scratch (MISR expansion)
	RegTmp1 = 27 // scratch (MISR expansion)
	RegBase = 29 // data base pointer
	RegLoop = 30 // loading/execution loop counter
	RegLink = 31 // subroutine link
)

// RegName returns the canonical name of register r.
func RegName(r uint8) string { return fmt.Sprintf("r%d", r) }

// CINV selector values (Imm field of OpCINV).
const (
	CinvI    = 1
	CinvD    = 2
	CinvBoth = 3
)

// InstBytes is the size of one encoded instruction in memory.
const InstBytes = 4
