package isa

import "fmt"

// Binary encoding. Every instruction is one 32-bit word:
//
//	R-type  (major 0):  major[31:26] rs1[25:21] rs2[20:16] rd[15:11] funct[10:0]
//	I-type:             major[31:26] rs1[25:21] rd[20:16]  imm16[15:0]
//	store:              major[31:26] rs1[25:21] rs2[20:16] imm16[15:0]   (rs2 = data)
//	branch:             major[31:26] rs1[25:21] rs2[20:16] off16[15:0]
//	J-type  (J, JAL):   major[31:26] off26[25:0]
//
// R-type funct is simply the Op number, which keeps encode/decode total and
// collision-free. Shift-immediate operations reuse the rs2 field as shamt.
//
// Immediates: sign-extended 16 bits for arithmetic, memory offsets and
// branches; zero-extended for ANDI/ORI/XORI, CSR numbers and CINV selectors;
// LUI places its 16-bit immediate in the upper half of rd. Branch and jump
// offsets are byte offsets relative to the address of the *next* instruction
// and must be multiples of 4.

const majorRType = 0

var opMajor = map[Op]uint32{
	OpADDI: 1, OpANDI: 2, OpORI: 3, OpXORI: 4, OpSLTI: 5, OpLUI: 6,
	OpLW: 8, OpSW: 9, OpLB: 10, OpLBU: 11, OpSB: 12, OpLWP: 13, OpSWP: 14,
	OpBEQ: 16, OpBNE: 17, OpBLT: 18, OpBGE: 19,
	OpJ: 20, OpJAL: 21, OpJALR: 22,
	OpCSRR: 24, OpCSRW: 25, OpCINV: 26,
}

// majorOp and isIType are array mirrors of opMajor: Decode sits on the
// per-fetch hot path of the pipeline model, where a map lookup per decoded
// word is measurable. Entry 0 of majorOp (the R-type major) stays OpInvalid.
var majorOp = func() (m [64]Op) {
	for op, mj := range opMajor {
		if mj >= 64 || mj == majorRType {
			panic("isa: major opcode out of range")
		}
		if m[mj] != OpInvalid {
			panic("isa: duplicate major opcode")
		}
		m[mj] = op
	}
	return m
}()

var isIType = func() (t [opMax]bool) {
	for op := range opMajor {
		t[op] = true
	}
	return t
}()

// zeroExtImm reports whether op's 16-bit immediate is zero-extended.
func zeroExtImm(op Op) bool {
	switch op {
	case OpANDI, OpORI, OpXORI, OpLUI, OpCSRR, OpCSRW, OpCINV:
		return true
	}
	return false
}

// EncodeError describes an instruction that cannot be encoded.
type EncodeError struct {
	Inst   Inst
	Reason string
}

func (e *EncodeError) Error() string {
	return fmt.Sprintf("isa: cannot encode %v: %s", e.Inst, e.Reason)
}

// Encode converts an instruction to its 32-bit memory representation.
func Encode(i Inst) (uint32, error) {
	bad := func(reason string) (uint32, error) { return 0, &EncodeError{i, reason} }
	if !i.Op.Valid() {
		return bad("invalid op")
	}
	if i.Rd > 31 || i.Rs1 > 31 || i.Rs2 > 31 {
		return bad("register out of range")
	}
	mj, isI := opMajor[i.Op]
	if !isI { // R-type
		funct := uint32(i.Op)
		rs2 := uint32(i.Rs2)
		if FormatOf(i.Op) == FmtRShamt {
			if i.Imm < 0 || i.Imm > 31 {
				return bad("shift amount out of range")
			}
			rs2 = uint32(i.Imm)
		}
		return uint32(majorRType)<<26 | uint32(i.Rs1)<<21 | rs2<<16 |
			uint32(i.Rd)<<11 | funct, nil
	}
	switch FormatOf(i.Op) {
	case FmtJump:
		if i.Imm%InstBytes != 0 {
			return bad("jump offset not word aligned")
		}
		if i.Imm < -(1<<25) || i.Imm >= 1<<25 {
			return bad("jump offset out of range")
		}
		return mj<<26 | uint32(i.Imm)&0x03FFFFFF, nil
	case FmtBranch:
		if i.Imm%InstBytes != 0 {
			return bad("branch offset not word aligned")
		}
		if i.Imm < -(1<<15) || i.Imm >= 1<<15 {
			return bad("branch offset out of range")
		}
		return mj<<26 | uint32(i.Rs1)<<21 | uint32(i.Rs2)<<16 | uint32(i.Imm)&0xFFFF, nil
	default:
		if zeroExtImm(i.Op) {
			if i.Imm < 0 || i.Imm > 0xFFFF {
				return bad("immediate out of unsigned 16-bit range")
			}
		} else if i.Imm < -(1<<15) || i.Imm >= 1<<15 {
			return bad("immediate out of signed 16-bit range")
		}
		second := uint32(i.Rd) << 16
		if i.Op.IsStore() {
			second = uint32(i.Rs2) << 16
		}
		return mj<<26 | uint32(i.Rs1)<<21 | second | uint32(i.Imm)&0xFFFF, nil
	}
}

// MustEncode is Encode but panics on error; for use with literal programs.
func MustEncode(i Inst) uint32 {
	w, err := Encode(i)
	if err != nil {
		panic(err)
	}
	return w
}

// Decode converts a 32-bit memory word back into an instruction. Words that
// do not correspond to a defined operation decode to Op == OpInvalid with a
// non-nil error; the pipeline treats executing such a word as a fatal
// program error.
func Decode(w uint32) (Inst, error) {
	mj := w >> 26
	if mj == majorRType {
		// The funct field is 11 bits; values beyond the op range must be
		// rejected before the uint8 conversion, or garbage in the upper
		// funct bits would silently alias onto valid operations.
		if w&0x7FF >= uint32(opMax) {
			return Inst{}, fmt.Errorf("isa: invalid R-type funct %d", w&0x7FF)
		}
		funct := Op(w & 0x7FF)
		if !funct.Valid() {
			return Inst{}, fmt.Errorf("isa: invalid R-type funct %d", uint32(funct))
		}
		if isIType[funct] {
			return Inst{}, fmt.Errorf("isa: funct %v is not an R-type op", funct)
		}
		i := Inst{
			Op:  funct,
			Rs1: uint8(w >> 21 & 31),
			Rs2: uint8(w >> 16 & 31),
			Rd:  uint8(w >> 11 & 31),
		}
		if FormatOf(funct) == FmtRShamt {
			i.Imm = int32(i.Rs2)
			i.Rs2 = 0
		}
		return i, nil
	}
	op := majorOp[mj]
	if op == OpInvalid {
		return Inst{}, fmt.Errorf("isa: invalid major opcode %d", mj)
	}
	if FormatOf(op) == FmtJump {
		off := int32(w<<6) >> 6 // sign-extend 26 bits
		if off%InstBytes != 0 {
			return Inst{}, fmt.Errorf("isa: misaligned jump offset %d", off)
		}
		return Inst{Op: op, Imm: off}, nil
	}
	i := Inst{Op: op, Rs1: uint8(w >> 21 & 31)}
	sec := uint8(w >> 16 & 31)
	imm := w & 0xFFFF
	switch {
	case FormatOf(op) == FmtBranch:
		i.Rs2 = sec
	case op.IsStore():
		i.Rs2 = sec
	default:
		i.Rd = sec
	}
	if zeroExtImm(op) {
		i.Imm = int32(imm)
	} else {
		i.Imm = int32(int16(imm))
	}
	if FormatOf(op) == FmtBranch && i.Imm%InstBytes != 0 {
		return Inst{}, fmt.Errorf("isa: misaligned branch offset %d", i.Imm)
	}
	return i, nil
}
