package bus

import (
	"testing"

	"repro/internal/mem"
)

func testBus(n int, policy Arbitration) (*Bus, *mem.RAM) {
	ram := mem.NewRAM(4096, 2)
	b := New(n, policy, []Region{{Base: 0x2000_0000, Size: 4096, Dev: ram}})
	return b, ram
}

func runUntilDone(t *testing.T, b *Bus, p *Port, maxCycles int) int {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		b.Step()
		if p.Done() {
			return i + 1
		}
	}
	t.Fatalf("request not done after %d cycles", maxCycles)
	return 0
}

func TestSingleReadLatency(t *testing.T) {
	b, ram := testBus(1, RoundRobin)
	mem.WriteWord(ram, 8, 0x12345678)
	p := b.PortFor(0)
	p.StartRead(0x2000_0008, 4)
	cycles := runUntilDone(t, b, p, 10)
	// RAM latency 2: grant on cycle 1, countdown 2 cycles -> done cycle 3.
	if cycles != 3 {
		t.Errorf("read took %d cycles, want 3", cycles)
	}
	data := p.Take()
	if got := uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24; got != 0x12345678 {
		t.Errorf("data = %#x", got)
	}
	if p.Busy() {
		t.Error("port still busy after Take")
	}
}

func TestWriteThenRead(t *testing.T) {
	b, ram := testBus(1, RoundRobin)
	p := b.PortFor(0)
	p.StartWrite(0x2000_0010, []byte{1, 2, 3, 4})
	runUntilDone(t, b, p, 10)
	p.Take()
	if got := mem.ReadWord(ram, 0x10); got != 0x04030201 {
		t.Errorf("memory = %#x", got)
	}
}

func TestContentionDelaysSecondMaster(t *testing.T) {
	b, _ := testBus(2, RoundRobin)
	p0, p1 := b.PortFor(0), b.PortFor(1)
	p0.StartRead(0x2000_0000, 16)
	p1.StartRead(0x2000_0000, 16)
	var done0, done1 int
	for i := 1; i <= 20 && (done0 == 0 || done1 == 0); i++ {
		b.Step()
		if done0 == 0 && p0.Done() {
			done0 = i
		}
		if done1 == 0 && p1.Done() {
			done1 = i
		}
	}
	if done0 == 0 || done1 == 0 {
		t.Fatal("requests did not finish")
	}
	if done1 <= done0 {
		t.Errorf("master1 (%d) should finish after master0 (%d)", done1, done0)
	}
	if w := b.StatsFor(1).WaitCycles; w == 0 {
		t.Error("master1 recorded no wait cycles under contention")
	}
	if b.StatsFor(0).Transactions != 1 || b.StatsFor(1).Transactions != 1 {
		t.Error("transaction counts wrong")
	}
}

func TestRoundRobinIsFair(t *testing.T) {
	b, _ := testBus(3, RoundRobin)
	ports := []*Port{b.PortFor(0), b.PortFor(1), b.PortFor(2)}
	finish := make([]int, 3)
	for _, p := range ports {
		p.StartRead(0x2000_0000, 4)
	}
	for i := 1; i <= 30; i++ {
		b.Step()
		for k, p := range ports {
			if finish[k] == 0 && p.Done() {
				finish[k] = i
				p.Take()
				p.StartRead(0x2000_0000, 4) // immediately request again
			}
		}
		if finish[0] > 0 && finish[1] > 0 && finish[2] > 0 {
			break
		}
	}
	if finish[0] == 0 || finish[1] == 0 || finish[2] == 0 {
		t.Fatal("not all masters served")
	}
	// With round robin all three must be served before any is served twice,
	// so the finishing order is 0,1,2 spaced by the device latency.
	if !(finish[0] < finish[1] && finish[1] < finish[2]) {
		t.Errorf("finish order %v not round-robin", finish)
	}
}

func TestFixedPriorityStarves(t *testing.T) {
	b, _ := testBus(2, FixedPriority)
	p0, p1 := b.PortFor(0), b.PortFor(1)
	p1.StartRead(0x2000_0000, 4)
	p0.StartRead(0x2000_0000, 4)
	// Master 0 should win arbitration even though both were pending.
	b.Step()
	b.Step()
	b.Step()
	if !p0.Done() {
		t.Error("master0 not served first under fixed priority")
	}
	if p1.Done() {
		t.Error("master1 served simultaneously")
	}
}

func TestOpenBusReadsAllOnes(t *testing.T) {
	b, _ := testBus(1, RoundRobin)
	p := b.PortFor(0)
	p.StartRead(0xDEAD_0000, 4)
	runUntilDone(t, b, p, 10)
	data := p.Take()
	for _, v := range data {
		if v != 0xFF {
			t.Errorf("open bus read % x", data)
			break
		}
	}
}

func TestPortMisuse(t *testing.T) {
	b, _ := testBus(1, RoundRobin)
	p := b.PortFor(0)
	p.StartRead(0x2000_0000, 4)
	mustPanic(t, func() { p.StartRead(0x2000_0000, 4) })
	mustPanic(t, func() { p.Take() })
	b.Step() // grant: now in service
	mustPanic(t, func() { p.Cancel() })
	mustPanic(t, func() { b.PortFor(9) })
	mustPanic(t, func() { p.StartWrite(0, make([]byte, 32)) })
}

func TestCancelQueued(t *testing.T) {
	b, _ := testBus(2, FixedPriority)
	p0, p1 := b.PortFor(0), b.PortFor(1)
	p0.StartRead(0x2000_0000, 4)
	b.Step() // p0 in service
	p1.StartRead(0x2000_0000, 4)
	p1.Cancel()
	if p1.Busy() {
		t.Error("cancel did not clear request")
	}
	p1.Cancel() // idempotent
}

func TestRecorderAndReplayer(t *testing.T) {
	b, _ := testBus(2, RoundRobin)
	rec := NewRecorder(0)
	b.Attach(rec)
	p0 := b.PortFor(0)
	p0.StartRead(0x2000_0000, 16)
	for i := 0; i < 5; i++ {
		b.Step()
	}
	if p0.Done() {
		p0.Take()
	}
	p0.StartWrite(0x2000_0020, []byte{1, 2, 3, 4})
	for i := 0; i < 5; i++ {
		b.Step()
	}
	ev := rec.Events()
	if len(ev) != 2 {
		t.Fatalf("recorded %d events, want 2", len(ev))
	}
	if ev[0].Addr != 0x2000_0000 || ev[0].Write || ev[0].N != 16 {
		t.Errorf("event0 = %+v", ev[0])
	}
	if ev[1].Addr != 0x2000_0020 || !ev[1].Write || ev[1].N != 4 {
		t.Errorf("event1 = %+v", ev[1])
	}

	// Replay onto a fresh bus and check the same bus pressure appears.
	b2, _ := testBus(2, RoundRobin)
	rp := NewReplayer(b2.PortFor(1), ev)
	for i := 0; i < 100 && !rp.Done(); i++ {
		b2.Step()
		rp.Step(b2.Cycle())
	}
	if !rp.Done() {
		t.Fatal("replayer did not finish")
	}
	if b2.StatsFor(1).Transactions != 2 {
		t.Errorf("replayed %d transactions", b2.StatsFor(1).Transactions)
	}
}

func TestUtilization(t *testing.T) {
	b, _ := testBus(1, RoundRobin)
	p := b.PortFor(0)
	p.StartRead(0x2000_0000, 4)
	runUntilDone(t, b, p, 10)
	if u := b.Utilization(); u <= 0 || u > 1 {
		t.Errorf("utilization %f", u)
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// TestServiceConservation: the bus's busy time must equal the sum of the
// device latencies of all completed transactions — the arbiter can delay
// work but never create or destroy it.
func TestServiceConservation(t *testing.T) {
	ram := mem.NewRAM(4096, 3)
	flash := mem.NewFlash(4096, []int{8})
	b := New(3, RoundRobin, []Region{
		{Base: 0x0000_0000, Size: 4096, Dev: flash},
		{Base: 0x2000_0000, Size: 4096, Dev: ram},
	})
	ports := []*Port{b.PortFor(0), b.PortFor(1), b.PortFor(2)}
	issued := []int{0, 0, 0}
	wantBusy := 0
	const perMaster = 25
	for cycle := 0; cycle < 5000; cycle++ {
		b.Step()
		for id, p := range ports {
			if p.Done() {
				p.Take()
			}
			if !p.Busy() && issued[id] < perMaster {
				if (cycle+id)%2 == 0 {
					p.StartRead(0x2000_0000+uint32(id)*64, 4)
					wantBusy += 3
				} else {
					p.StartRead(uint32(id)*64, 16)
					wantBusy += 8
				}
				issued[id]++
			}
		}
		if issued[0] == perMaster && issued[1] == perMaster && issued[2] == perMaster &&
			!ports[0].Busy() && !ports[1].Busy() && !ports[2].Busy() {
			break
		}
	}
	totalTx := 0
	totalBusy := 0
	for id := range ports {
		st := b.StatsFor(id)
		totalTx += st.Transactions
		totalBusy += st.BusyCycles
	}
	if totalTx != 3*perMaster {
		t.Fatalf("completed %d transactions, want %d", totalTx, 3*perMaster)
	}
	if totalBusy != wantBusy {
		t.Errorf("busy cycles %d, want %d (service created or lost)", totalBusy, wantBusy)
	}
}

// TestNoStarvationUnderRoundRobin: with all masters continuously
// requesting, every master completes work within a bounded window.
func TestNoStarvationUnderRoundRobin(t *testing.T) {
	ram := mem.NewRAM(4096, 2)
	b := New(4, RoundRobin, []Region{{Base: 0, Size: 4096, Dev: ram}})
	done := make([]int, 4)
	ports := make([]*Port, 4)
	for i := range ports {
		ports[i] = b.PortFor(i)
		ports[i].StartRead(0, 4)
	}
	for cycle := 0; cycle < 64; cycle++ {
		b.Step()
		for id, p := range ports {
			if p.Done() {
				p.Take()
				done[id]++
				p.StartRead(0, 4)
			}
		}
	}
	for id, n := range done {
		if n == 0 {
			t.Errorf("master %d starved", id)
		}
	}
	// Fairness: min and max completions within one transaction of each
	// other.
	min, max := done[0], done[0]
	for _, n := range done {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max-min > 1 {
		t.Errorf("round robin unfair: %v", done)
	}
}
