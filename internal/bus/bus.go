package bus

import (
	"fmt"
	"math/bits"

	"repro/internal/coverage"
	"repro/internal/mem"
)

// Region maps an address window onto a device.
type Region struct {
	Base uint32
	Size uint32
	Dev  mem.Device
}

// Arbitration selects the arbiter policy.
type Arbitration uint8

const (
	RoundRobin    Arbitration = iota
	FixedPriority             // lower master ID wins; starves late masters under load
)

// Stats accumulates per-master bus statistics.
type Stats struct {
	Transactions int
	WaitCycles   int // cycles spent queued while the bus served others
	BusyCycles   int // cycles the bus spent serving this master
}

type request struct {
	active bool
	addr   uint32
	write  bool
	n      int
	done   bool
	issued int64 // cycle the request was submitted
	// data carries the write payload or receives the read result. A fixed
	// line-sized buffer keeps the per-transaction hot path allocation-free
	// (bursts never exceed one line).
	data [mem.LineBytes]byte
}

// Bus is the shared system interconnect. It is not safe for concurrent use;
// the SoC steps it from a single goroutine.
type Bus struct {
	regions []Region
	policy  Arbitration

	reqs  []request
	stats []Stats

	cycle     int64
	owner     int // master being served, -1 if idle
	remaining int // cycles left on current transaction
	rrNext    int // round-robin scan start
	// pending is a bitmask of masters with an active, not-yet-completed
	// request; it lets the per-cycle wait accounting and the arbiter scan
	// only live requests instead of every master slot.
	pending uint64

	totalBusy int64
	recorder  *Recorder
	// cov collects arbitration/contention coverage when attached; nil (the
	// default) disables it at the cost of one branch per grant/completion.
	cov *coverage.Map
}

// New creates a bus with n master ports and the given address regions.
func New(nMasters int, policy Arbitration, regions []Region) *Bus {
	if nMasters > 64 {
		panic("bus: more than 64 masters")
	}
	return &Bus{
		regions: regions,
		policy:  policy,
		reqs:    make([]request, nMasters),
		stats:   make([]Stats, nMasters),
		owner:   -1,
	}
}

// NumMasters returns the number of master ports.
func (b *Bus) NumMasters() int { return len(b.reqs) }

// Reset restores the bus to power-on state: all requests dropped, statistics
// cleared, arbitration state rewound and any attached recorder detached. The
// regions and master ports survive, so the bus can immediately serve a fresh
// run without reallocation.
func (b *Bus) Reset() {
	clear(b.reqs)
	clear(b.stats)
	b.cycle = 0
	b.owner = -1
	b.remaining = 0
	b.rrNext = 0
	b.pending = 0
	b.totalBusy = 0
	b.recorder = nil
}

// Cycle returns the current bus cycle count.
func (b *Bus) Cycle() int64 { return b.cycle }

// State is an opaque snapshot of the bus's dynamic state — in-flight
// requests, arbitration position and statistics. Attachments (recorder,
// coverage) are not part of it.
type State struct {
	reqs      []request
	stats     []Stats
	cycle     int64
	owner     int
	remaining int
	rrNext    int
	pending   uint64
	totalBusy int64
}

// Snapshot captures the bus's dynamic state mid-run. The request slots use
// fixed line-sized buffers, so a slice copy is a deep copy.
func (b *Bus) Snapshot() *State {
	return &State{
		reqs:      append([]request(nil), b.reqs...),
		stats:     append([]Stats(nil), b.stats...),
		cycle:     b.cycle,
		owner:     b.owner,
		remaining: b.remaining,
		rrNext:    b.rrNext,
		pending:   b.pending,
		totalBusy: b.totalBusy,
	}
}

// Restore rewinds the bus to a snapshot taken from an identically built bus
// (same master count and regions). Attachments are left as they are.
func (b *Bus) Restore(st *State) {
	copy(b.reqs, st.reqs)
	copy(b.stats, st.stats)
	b.cycle = st.cycle
	b.owner = st.owner
	b.remaining = st.remaining
	b.rrNext = st.rrNext
	b.pending = st.pending
	b.totalBusy = st.totalBusy
}

// SetCoverage attaches a coverage map (nil detaches). Unlike the recorder,
// the attachment survives Reset — coverage spans many runs of one bus.
func (b *Bus) SetCoverage(m *coverage.Map) { b.cov = m }

// StatsFor returns the accumulated statistics of master id.
func (b *Bus) StatsFor(id int) Stats { return b.stats[id] }

// Utilization returns the fraction of elapsed cycles the bus was busy.
func (b *Bus) Utilization() float64 {
	if b.cycle == 0 {
		return 0
	}
	return float64(b.totalBusy) / float64(b.cycle)
}

func (b *Bus) resolve(addr uint32) (mem.Device, uint32, bool) {
	for _, r := range b.regions {
		if addr >= r.Base && addr-r.Base < r.Size {
			return r.Dev, addr - r.Base, true
		}
	}
	return nil, 0, false
}

// Step advances the bus by one clock cycle: progresses the in-flight
// transaction and, when the bus is free, grants the next pending request.
func (b *Bus) Step() {
	b.cycle++
	if b.owner >= 0 {
		b.totalBusy++
		b.stats[b.owner].BusyCycles++
		b.remaining--
		if b.remaining <= 0 {
			b.complete(b.owner)
			b.owner = -1
		}
	}
	// Account waiting for everyone still queued behind the bus.
	wait := b.pending
	if b.owner >= 0 {
		wait &^= 1 << b.owner
	}
	for wait != 0 {
		id := bits.TrailingZeros64(wait)
		wait &= wait - 1
		b.stats[id].WaitCycles++
	}
	if b.owner < 0 {
		b.grantNext()
	}
}

func (b *Bus) grantNext() {
	if b.pending == 0 {
		return
	}
	pick := -1
	switch b.policy {
	case RoundRobin:
		// First pending master at or after rrNext, wrapping.
		if hi := b.pending >> b.rrNext; hi != 0 {
			pick = b.rrNext + bits.TrailingZeros64(hi)
		} else {
			pick = bits.TrailingZeros64(b.pending)
		}
		b.rrNext = (pick + 1) % len(b.reqs)
	case FixedPriority:
		pick = bits.TrailingZeros64(b.pending)
	}
	if pick < 0 {
		return
	}
	b.owner = pick
	r := &b.reqs[pick]
	if b.cov != nil {
		b.coverGrant(r)
	}
	dev, off, ok := b.resolve(r.addr)
	if !ok {
		// Open-bus access: completes in one cycle, reads all-ones.
		b.cov.Inc(coverage.FeatBusOpenBus)
		b.remaining = 1
		return
	}
	b.remaining = dev.AccessCycles(off, r.n)
	if b.remaining < 1 {
		b.remaining = 1
	}
}

// coverGrant records the arbitration and transaction shape of a freshly
// granted request: how many rivals were queued behind it, its direction,
// and its burst size class.
func (b *Bus) coverGrant(r *request) {
	rivals := bits.OnesCount64(b.pending) - 1
	switch {
	case rivals <= 0:
		b.cov.Inc(coverage.FeatBusGrantAlone)
	case rivals == 1:
		b.cov.Inc(coverage.FeatBusGrantContend1)
	case rivals == 2:
		b.cov.Inc(coverage.FeatBusGrantContend2)
	default:
		b.cov.Inc(coverage.FeatBusGrantContend3)
	}
	if r.write {
		b.cov.Inc(coverage.FeatBusWrite)
	} else {
		b.cov.Inc(coverage.FeatBusRead)
	}
	switch {
	case r.n < 4:
		b.cov.Inc(coverage.FeatBusBurstSub)
	case r.n == 4:
		b.cov.Inc(coverage.FeatBusBurstWord)
	case r.n == 8 && mem.LineBytes != 8:
		b.cov.Inc(coverage.FeatBusBurstWide)
	case r.n >= mem.LineBytes:
		b.cov.Inc(coverage.FeatBusBurstLine)
	default:
		b.cov.Inc(coverage.FeatBusBurstWide)
	}
}

func (b *Bus) complete(id int) {
	r := &b.reqs[id]
	dev, off, ok := b.resolve(r.addr)
	if ok {
		if r.write {
			dev.Write(off, r.data[:r.n])
		} else {
			dev.Read(off, r.data[:r.n])
		}
	} else if !r.write {
		for i := 0; i < r.n; i++ {
			r.data[i] = 0xFF
		}
	}
	r.done = true
	b.pending &^= 1 << id
	b.stats[id].Transactions++
}

// Port gives one master a handle on its bus slot.
type Port struct {
	bus *Bus
	id  int
}

// PortFor returns the port for master id.
func (b *Bus) PortFor(id int) *Port {
	if id < 0 || id >= len(b.reqs) {
		panic(fmt.Sprintf("bus: no master %d", id))
	}
	return &Port{bus: b, id: id}
}

// ID returns the master identifier of this port.
func (p *Port) ID() int { return p.id }

// InService reports whether this master's request is the one currently
// being transferred (such a request can no longer be cancelled).
func (p *Port) InService() bool { return p.bus.owner == p.id }

// Busy reports whether a request is outstanding (issued and not yet taken).
func (p *Port) Busy() bool { return p.bus.reqs[p.id].active }

// Done reports whether the outstanding request has completed.
func (p *Port) Done() bool {
	r := &p.bus.reqs[p.id]
	return r.active && r.done
}

// StartRead submits a read of n bytes at addr. The port must be idle.
func (p *Port) StartRead(addr uint32, n int) {
	r := &p.bus.reqs[p.id]
	if r.active {
		panic("bus: StartRead on busy port")
	}
	if n > mem.LineBytes {
		panic("bus: burst longer than a line")
	}
	r.active, r.write, r.done = true, false, false
	r.addr, r.n, r.issued = addr, n, p.bus.cycle
	p.bus.pending |= 1 << p.id
	p.bus.record(p.id, addr, false, n)
}

// StartWrite submits a write of len(data) bytes at addr. The port must be
// idle. data is copied.
func (p *Port) StartWrite(addr uint32, data []byte) {
	r := &p.bus.reqs[p.id]
	if r.active {
		panic("bus: StartWrite on busy port")
	}
	if len(data) > mem.LineBytes {
		panic("bus: burst longer than a line")
	}
	r.active, r.write, r.done = true, true, false
	r.addr, r.n, r.issued = addr, len(data), p.bus.cycle
	copy(r.data[:], data)
	p.bus.pending |= 1 << p.id
	p.bus.record(p.id, addr, true, len(data))
}

// Take consumes a completed request and returns the read data (nil for
// writes). It panics if the request has not completed. The returned slice
// aliases the port's transaction buffer and is only valid until the next
// request is submitted on this port.
func (p *Port) Take() []byte {
	r := &p.bus.reqs[p.id]
	if !r.active || !r.done {
		panic("bus: Take before completion")
	}
	r.active, r.done = false, false
	if r.write {
		return nil
	}
	return r.data[:r.n]
}

// Cancel aborts a queued or completed request. It is a no-op when idle and
// panics if the request is currently being served (real bus masters cannot
// retract a granted burst).
func (p *Port) Cancel() {
	r := &p.bus.reqs[p.id]
	if !r.active {
		return
	}
	if p.bus.owner == p.id && !r.done {
		panic("bus: cancel of in-service request")
	}
	r.active, r.done = false, false
	p.bus.pending &^= 1 << p.id
	p.bus.cov.Inc(coverage.FeatBusCancel)
}
