package bus

// Traffic recording and replay. Fault simulation needs thousands of runs of
// a multi-core scenario; simulating all three cores for every fault would
// multiply the cost by the core count even though a fault is private to the
// core under test. Instead, the fault-free scenario is run once with every
// core live while the bus records the other cores' transactions; each fault
// run then replays that recorded traffic through Replayer masters, so the
// core under test sees the same deterministic contention.

// TrafficEvent is one recorded bus transaction start.
type TrafficEvent struct {
	Cycle  int64 // bus cycle the request was submitted
	Master int   // master that issued it
	Addr   uint32
	Write  bool
	N      int
}

// Recorder captures the requests submitted by a set of masters.
type Recorder struct {
	watch map[int]bool
	log   []TrafficEvent
}

// NewRecorder records transactions issued by the given master IDs.
func NewRecorder(masters ...int) *Recorder {
	w := make(map[int]bool, len(masters))
	for _, m := range masters {
		w[m] = true
	}
	return &Recorder{watch: w}
}

// Events returns the captured trace in submission order.
func (r *Recorder) Events() []TrafficEvent { return r.log }

// EventsByMaster splits the trace per originating master, preserving
// order. Replaying each sub-trace on its own bus master reproduces the
// original contention pattern (one shared port would serialise overlapping
// requests and understate it).
func (r *Recorder) EventsByMaster() [][]TrafficEvent {
	byID := map[int][]TrafficEvent{}
	var ids []int
	for _, ev := range r.log {
		if _, seen := byID[ev.Master]; !seen {
			ids = append(ids, ev.Master)
		}
		byID[ev.Master] = append(byID[ev.Master], ev)
	}
	out := make([][]TrafficEvent, 0, len(ids))
	for _, id := range ids {
		out = append(out, byID[id])
	}
	return out
}

// Attach installs the recorder on the bus. Only one recorder can be
// attached at a time.
func (b *Bus) Attach(r *Recorder) { b.recorder = r }

func (b *Bus) record(id int, addr uint32, write bool, n int) {
	if b.recorder == nil || !b.recorder.watch[id] {
		return
	}
	b.recorder.log = append(b.recorder.log, TrafficEvent{
		Cycle: b.cycle, Master: id, Addr: addr, Write: write, N: n,
	})
}

// Replayer drives one bus master through a recorded trace. Each event is
// submitted at its recorded cycle, or as soon as the previous replayed
// transaction finishes, whichever is later — the same back-pressure a real
// core experiences.
type Replayer struct {
	port *Port
	req  *request // direct handle on the port's request slot (hot path)
	log  []TrafficEvent
	next int
	buf  [16]byte
}

// NewReplayer builds a replayer for port over the given trace.
func NewReplayer(port *Port, log []TrafficEvent) *Replayer {
	return &Replayer{port: port, req: &port.bus.reqs[port.id], log: log}
}

// Reset rewinds the replayer to the start of its trace. The caller must
// reset the bus as well (a stale in-flight request would otherwise be
// mistaken for a replayed one).
func (r *Replayer) Reset() { r.next = 0 }

// Pos returns the replay cursor (number of events already submitted). The
// in-flight request, if any, lives in the bus's request slot and is covered
// by Bus.Snapshot, so the cursor is the replayer's whole dynamic state.
func (r *Replayer) Pos() int { return r.next }

// Seek rewinds or advances the replay cursor to a position previously
// returned by Pos (checkpoint restore).
func (r *Replayer) Seek(n int) { r.next = n }

// Step advances the replayer by one cycle; call once per bus cycle after
// Bus.Step. It is stepped once per simulated cycle for the whole campaign,
// so it polls its request slot directly instead of going through the port
// accessors.
func (r *Replayer) Step(now int64) {
	if r.req.active {
		if !r.req.done {
			return // in flight
		}
		r.req.active, r.req.done = false, false // take
	}
	if r.next >= len(r.log) {
		return
	}
	ev := r.log[r.next]
	if now < ev.Cycle {
		return
	}
	if ev.Write {
		r.port.StartWrite(ev.Addr, r.buf[:ev.N])
	} else {
		r.port.StartRead(ev.Addr, ev.N)
	}
	r.next++
}

// Done reports whether the whole trace has been replayed and retired.
func (r *Replayer) Done() bool { return r.next >= len(r.log) && !r.port.Busy() }
