// Package bus implements the single shared system bus of the SoC: one
// transaction in flight at a time, round-robin arbitration among masters,
// and per-master contention statistics. Bus contention between cores is the
// root cause of the non-determinism the paper addresses, so the arbiter is
// deliberately simple and fully deterministic.
package bus
