package icu

import (
	"repro/internal/coverage"
	"repro/internal/fault"
)

// RecognitionDelay is the number of clock cycles the recognition pipeline
// takes between an event being latched and the interrupt being requested at
// the next issue boundary. The number of younger instructions that retire
// in this window — the imprecision distance — depends on the issue rate,
// which is what couples it to fetch and bus timing.
const RecognitionDelay = 24

// Config selects the cause-encoder variant.
type Config struct {
	// SharedCauseBits maps event pairs onto shared cause bits (cores A/B).
	SharedCauseBits bool
}

// ICU is one core's interrupt control unit.
type ICU struct {
	cfg   Config
	plane fault.Plane
	// evClean caches fault.AffectsEvLines(plane): a transparent plane plus
	// no pending events lets Tick skip polling the event lines entirely.
	evClean bool

	pending    [fault.NumEvents]bool
	numPending int

	// Architectural registers (CSR-visible).
	cause  uint32
	dist   uint32
	epc    uint32
	enable uint32
	vector uint32

	// Recognition state.
	counting  bool
	countdown int
	retired   uint32 // instructions retired since the trigger
	inHandler bool

	// sinceRFE counts retirements since the last handler return while
	// within the tail-chain window; -1 means outside it. Coverage only.
	sinceRFE int
	// maskedNoted makes FeatIntMaskedPend edge-triggered: one increment
	// per recognition episode that matures masked, not one per polled
	// cycle (dwell time would pollute the coverage signal). Coverage only.
	maskedNoted bool

	// cov collects interrupt-recognition coverage when attached; nil (the
	// default) is the zero-cost disabled mode.
	cov *coverage.Map
}

// tailChainWindow is how many retirements after an RFE a take still counts
// as tail-chaining (back-to-back handler invocations) for coverage.
const tailChainWindow = 8

// New builds an ICU with the given configuration and fault plane.
func New(cfg Config, plane fault.Plane) *ICU {
	if plane == nil {
		plane = fault.None
	}
	return &ICU{cfg: cfg, plane: plane, evClean: !fault.AffectsEvLines(plane), sinceRFE: -1}
}

// Reset restores power-on state (everything clear, interrupts disabled).
// Like the core's, a coverage attachment survives Reset.
func (u *ICU) Reset() {
	*u = ICU{cfg: u.cfg, plane: u.plane, evClean: u.evClean, sinceRFE: -1, cov: u.cov}
}

// SetCoverage attaches a coverage map for the interrupt-recognition
// features (nil detaches). The attachment survives Reset.
func (u *ICU) SetCoverage(m *coverage.Map) { u.cov = m }

// State is an opaque snapshot of the ICU's dynamic state — pending lines,
// architectural registers and recognition pipeline. Attachments and
// configuration (plane, coverage, cause encoding) are not part of it.
type State struct {
	pending     [fault.NumEvents]bool
	numPending  int
	cause       uint32
	dist        uint32
	epc         uint32
	enable      uint32
	vector      uint32
	counting    bool
	countdown   int
	retired     uint32
	inHandler   bool
	sinceRFE    int
	maskedNoted bool
}

// Snapshot captures the ICU's dynamic state mid-run.
func (u *ICU) Snapshot() State {
	return State{
		pending:     u.pending,
		numPending:  u.numPending,
		cause:       u.cause,
		dist:        u.dist,
		epc:         u.epc,
		enable:      u.enable,
		vector:      u.vector,
		counting:    u.counting,
		countdown:   u.countdown,
		retired:     u.retired,
		inHandler:   u.inHandler,
		sinceRFE:    u.sinceRFE,
		maskedNoted: u.maskedNoted,
	}
}

// Restore rewinds the dynamic state to a snapshot, keeping the current
// plane, configuration and coverage attachment.
func (u *ICU) Restore(st State) {
	u.pending = st.pending
	u.numPending = st.numPending
	u.cause = st.cause
	u.dist = st.dist
	u.epc = st.epc
	u.enable = st.enable
	u.vector = st.vector
	u.counting = st.counting
	u.countdown = st.countdown
	u.retired = st.retired
	u.inHandler = st.inHandler
	u.sinceRFE = st.sinceRFE
	u.maskedNoted = st.maskedNoted
}

// SetPlane swaps the fault-injection plane (nil restores fault-free). Used
// by reusable fault-simulation arenas, which reset one long-lived ICU
// between runs instead of rebuilding it.
func (u *ICU) SetPlane(plane fault.Plane) {
	if plane == nil {
		plane = fault.None
	}
	u.plane = plane
	u.evClean = !fault.AffectsEvLines(plane)
}

// encodeCause maps pending event lines to cause bits.
func (u *ICU) encodeCause() uint32 {
	var c uint32
	for line := uint8(0); line < fault.NumEvents; line++ {
		if !u.pending[line] {
			continue
		}
		if u.cfg.SharedCauseBits {
			c |= 1 << (line / 2) // lines {0,1}->bit0, {2,3}->bit1
		} else {
			c |= 1 << line
		}
	}
	return u.plane.Cause(c)
}

// Raise latches a synchronous event from the execute stage. The fault
// plane can force a line stuck (spurious or missing events).
func (u *ICU) Raise(line uint8) {
	if u.plane.EvLine(line, true) {
		if !u.pending[line] {
			u.numPending++
		}
		u.pending[line] = true
		if u.inHandler {
			u.cov.Inc(coverage.FeatIntPendInHandler)
		}
	}
	if !u.counting && !u.inHandler {
		u.counting = true
		u.countdown = RecognitionDelay
		u.retired = 0
		u.maskedNoted = false
	}
}

// Tick advances the recognition pipeline by one clock cycle; retired is the
// number of instructions that left the pipeline this cycle.
func (u *ICU) Tick(retired int) {
	// Polling the event lines through the plane is a no-op when the plane
	// is transparent there and nothing is pending — the common case on the
	// fault-simulation hot path.
	if !u.evClean || u.numPending != 0 {
		// Stuck-at-1 event lines raise events spontaneously.
		for line := uint8(0); line < fault.NumEvents; line++ {
			if !u.pending[line] && u.plane.EvLine(line, false) {
				u.Raise(line)
			}
			// Stuck-at-0 lines drop latched events.
			if u.pending[line] && !u.plane.EvLine(line, true) {
				u.pending[line] = false
				u.numPending--
			}
		}
	}
	if u.sinceRFE >= 0 {
		if u.sinceRFE += retired; u.sinceRFE > tailChainWindow {
			u.sinceRFE = -1
		}
	}
	if !u.counting {
		return
	}
	u.retired += uint32(retired)
	if u.countdown > 0 {
		u.countdown--
	}
}

// WantInterrupt reports whether the recognition pipeline has matured and an
// enabled pending event should redirect the core at the next issue
// boundary.
func (u *ICU) WantInterrupt() bool {
	if u.inHandler || !u.counting || u.countdown > 0 {
		return false
	}
	c := u.encodeCause()
	if c&u.plane.Enable(u.enable) == 0 {
		if c != 0 && !u.maskedNoted {
			u.cov.Inc(coverage.FeatIntMaskedPend)
			u.maskedNoted = true
		}
		return false
	}
	return true
}

// TakeInterrupt commits the interrupt: latches cause/distance/EPC, clears
// pending state and returns the handler vector. resumePC is the PC of the
// oldest instruction that has not entered the pipeline.
func (u *ICU) TakeInterrupt(resumePC uint32) (vector uint32) {
	u.cause = u.encodeCause()
	u.dist = u.plane.Dist(u.retired & 0xFF)
	u.epc = u.plane.EPC(resumePC)
	for i := range u.pending {
		u.pending[i] = false
	}
	u.numPending = 0
	u.counting = false
	u.inHandler = true
	u.maskedNoted = false
	if u.cov != nil {
		if c := u.cause; c&(c-1) != 0 {
			u.cov.Inc(coverage.FeatIntCauseMulti)
		}
		if u.sinceRFE >= 0 {
			u.cov.Inc(coverage.FeatIntTailChain)
		}
	}
	u.sinceRFE = -1
	return u.vector
}

// ReturnFromException ends handler mode and returns the resume PC. Events
// that pended while the handler ran re-arm the recognition pipeline here:
// pending state is level-latched, so an enabled event is eventually
// recognised no matter when it arrived — the architectural delivery
// guarantee the differential interrupt harness (internal/archint) rests
// on.
func (u *ICU) ReturnFromException() uint32 {
	u.inHandler = false
	u.cov.Inc(coverage.FeatIntReti)
	u.sinceRFE = 0
	if u.numPending != 0 && !u.counting {
		u.counting = true
		u.countdown = RecognitionDelay
		u.retired = 0
	}
	return u.epc
}

// InHandler reports whether the core is executing the handler.
func (u *ICU) InHandler() bool { return u.inHandler }

// PendingMask returns the raw pending lines (CSR ipend).
func (u *ICU) PendingMask() uint32 {
	var m uint32
	for line := uint8(0); line < fault.NumEvents; line++ {
		if u.pending[line] {
			m |= 1 << line
		}
	}
	return m
}

// CSR accessors used by the CPU's CSRR/CSRW implementation.

func (u *ICU) Cause() uint32  { return u.cause }
func (u *ICU) Dist() uint32   { return u.dist }
func (u *ICU) EPC() uint32    { return u.epc }
func (u *ICU) Enable() uint32 { return u.enable }
func (u *ICU) Vector() uint32 { return u.vector }

func (u *ICU) SetEnable(v uint32) { u.enable = v & (1<<fault.NumEvents - 1) }
func (u *ICU) SetVector(v uint32) { u.vector = v &^ 3 }

// ClearPending drops the pending lines set in mask (write-one-to-clear,
// the ipend CSR write semantics). When nothing remains pending the
// recognition pipeline is also cleared, so a stale matured countdown
// cannot make a later event fire instantly with an inflated distance.
func (u *ICU) ClearPending(mask uint32) {
	for line := uint8(0); line < fault.NumEvents; line++ {
		if mask&(1<<line) != 0 && u.pending[line] {
			u.pending[line] = false
			u.numPending--
		}
	}
	if u.numPending == 0 {
		u.counting = false
	}
}
