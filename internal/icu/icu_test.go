package icu

import (
	"testing"

	"repro/internal/fault"
)

func TestRaiseRecognitionFlow(t *testing.T) {
	u := New(Config{}, nil)
	u.SetEnable(0xF)
	u.SetVector(0x400)
	u.Raise(fault.EvDivZero)
	if u.WantInterrupt() {
		t.Fatal("interrupt before recognition delay")
	}
	retired := 0
	for i := 0; i < RecognitionDelay; i++ {
		u.Tick(2)
		retired += 2
	}
	if !u.WantInterrupt() {
		t.Fatal("interrupt not requested after delay")
	}
	vec := u.TakeInterrupt(0x1234)
	if vec != 0x400 {
		t.Errorf("vector %#x", vec)
	}
	if u.Cause() != 1<<fault.EvDivZero {
		t.Errorf("cause %#x", u.Cause())
	}
	if u.Dist() != uint32(retired) {
		t.Errorf("dist %d, want %d", u.Dist(), retired)
	}
	if u.EPC() != 0x1234 {
		t.Errorf("epc %#x", u.EPC())
	}
	if !u.InHandler() {
		t.Error("not in handler")
	}
	if u.WantInterrupt() {
		t.Error("re-entrant interrupt")
	}
	if pc := u.ReturnFromException(); pc != 0x1234 {
		t.Errorf("rfe pc %#x", pc)
	}
	if u.InHandler() {
		t.Error("still in handler after rfe")
	}
}

func TestDisabledInterruptStaysPending(t *testing.T) {
	u := New(Config{}, nil)
	u.SetEnable(0)
	u.Raise(fault.EvOverflowAdd)
	for i := 0; i < RecognitionDelay+4; i++ {
		u.Tick(1)
	}
	if u.WantInterrupt() {
		t.Error("masked interrupt requested")
	}
	if u.PendingMask() != 1<<fault.EvOverflowAdd {
		t.Errorf("pending %#x", u.PendingMask())
	}
	u.ClearPending(0xF)
	if u.PendingMask() != 0 {
		t.Error("clear failed")
	}
	// A later raise must restart the recognition pipeline from scratch.
	u.SetEnable(0xF)
	u.Raise(fault.EvOverflowSub)
	if u.WantInterrupt() {
		t.Error("stale countdown reused after ClearPending")
	}
}

func TestSharedVsDistinctCauseEncoding(t *testing.T) {
	shared := New(Config{SharedCauseBits: true}, nil)
	shared.SetEnable(0xF)
	shared.Raise(fault.EvOverflowAdd) // line 0 -> bit 0
	shared.Raise(fault.EvOverflowSub) // line 1 -> bit 0 (masked together)
	for i := 0; i < RecognitionDelay; i++ {
		shared.Tick(0)
	}
	shared.TakeInterrupt(0)
	if shared.Cause() != 1 {
		t.Errorf("shared cause %#x, want 1", shared.Cause())
	}

	distinct := New(Config{}, nil)
	distinct.SetEnable(0xF)
	distinct.Raise(fault.EvOverflowAdd)
	distinct.Raise(fault.EvOverflowSub)
	for i := 0; i < RecognitionDelay; i++ {
		distinct.Tick(0)
	}
	distinct.TakeInterrupt(0)
	if distinct.Cause() != 3 {
		t.Errorf("distinct cause %#x, want 3", distinct.Cause())
	}
}

func TestCauseBitMaskingDetectabilityAsymmetry(t *testing.T) {
	// A stuck-at-1 on cause bit 0 is masked on cores A/B whenever lines 0
	// or 1 are pending anyway; with distinct encoding the same fault can
	// still alias. What matters for the paper's Table III effect: for a
	// line-1 event, shared encoding cannot distinguish a line-0 stuck line
	// from the real cause — distinct encoding can.
	evFault := fault.Site{Unit: fault.UnitICU, Signal: fault.SigEvLine, Path: 0, Stuck: 1}
	run := func(cfg Config) uint32 {
		u := New(cfg, fault.NewSingle(evFault))
		u.SetEnable(0xF)
		u.Raise(fault.EvOverflowSub) // line 1
		for i := 0; i < RecognitionDelay; i++ {
			u.Tick(0)
		}
		u.TakeInterrupt(0)
		return u.Cause()
	}
	goldenShared := func() uint32 {
		u := New(Config{SharedCauseBits: true}, nil)
		u.SetEnable(0xF)
		u.Raise(fault.EvOverflowSub)
		for i := 0; i < RecognitionDelay; i++ {
			u.Tick(0)
		}
		u.TakeInterrupt(0)
		return u.Cause()
	}()
	goldenDistinct := func() uint32 {
		u := New(Config{}, nil)
		u.SetEnable(0xF)
		u.Raise(fault.EvOverflowSub)
		for i := 0; i < RecognitionDelay; i++ {
			u.Tick(0)
		}
		u.TakeInterrupt(0)
		return u.Cause()
	}()
	if run(Config{SharedCauseBits: true}) != goldenShared {
		t.Error("shared encoding detected the stuck line (expected masking)")
	}
	if run(Config{}) == goldenDistinct {
		t.Error("distinct encoding failed to expose the stuck line")
	}
}

func TestDistanceFaultInjection(t *testing.T) {
	s := fault.Site{Unit: fault.UnitICU, Signal: fault.SigDist, Bit: 0, Stuck: 1}
	u := New(Config{}, fault.NewSingle(s))
	u.SetEnable(0xF)
	u.Raise(fault.EvDivZero)
	for i := 0; i < RecognitionDelay; i++ {
		u.Tick(2)
	}
	u.TakeInterrupt(0)
	want := uint32(2*RecognitionDelay) | 1
	if u.Dist() != want {
		t.Errorf("dist %d, want %d", u.Dist(), want)
	}
}

// TestSimultaneousEqualPriorityLines: two lines raised in the same cycle
// have equal priority — one recognition merges both into the cause latch,
// under either encoder, and neither line survives the take.
func TestSimultaneousEqualPriorityLines(t *testing.T) {
	for _, tc := range []struct {
		cfg  Config
		want uint32
	}{
		{Config{}, 1<<fault.EvOverflowMul | 1<<fault.EvDivZero},
		{Config{SharedCauseBits: true}, 1 << 1}, // lines 2,3 share bit 1
	} {
		u := New(tc.cfg, nil)
		u.SetEnable(0xF)
		u.Raise(fault.EvOverflowMul)
		u.Raise(fault.EvDivZero) // same cycle: no Tick between raises
		for i := 0; i < RecognitionDelay; i++ {
			u.Tick(1)
		}
		if !u.WantInterrupt() {
			t.Fatalf("cfg %+v: no interrupt", tc.cfg)
		}
		u.TakeInterrupt(0)
		if u.Cause() != tc.want {
			t.Errorf("cfg %+v: cause %#x, want %#x", tc.cfg, u.Cause(), tc.want)
		}
		if u.PendingMask() != 0 {
			t.Errorf("cfg %+v: lines survived the take: %#x", tc.cfg, u.PendingMask())
		}
	}
}

// TestMaskWriteAtRecognitionBoundary: an ienable write landing in the very
// cycle recognition matures wins — the next issue boundary sees the new
// mask, in both directions.
func TestMaskWriteAtRecognitionBoundary(t *testing.T) {
	// Disabling just as the countdown matures suppresses the take.
	u := New(Config{}, nil)
	u.SetEnable(0xF)
	u.SetVector(0x400)
	u.Raise(fault.EvDivZero)
	for i := 0; i < RecognitionDelay-1; i++ {
		u.Tick(1)
	}
	u.Tick(1)      // countdown reaches zero this cycle...
	u.SetEnable(0) // ...and the same cycle's CSR write clears the mask
	if u.WantInterrupt() {
		t.Error("masked interrupt requested at the recognition boundary")
	}
	// The pending line is not lost: re-enabling delivers it from the
	// already-matured recognition state.
	u.SetEnable(0xF)
	if !u.WantInterrupt() {
		t.Error("re-enabled interrupt not requested")
	}
	// Conversely, enabling in the maturity cycle delivers immediately.
	v := New(Config{}, nil)
	v.SetVector(0x400)
	v.Raise(fault.EvDivZero) // raised while masked: counts down anyway
	for i := 0; i < RecognitionDelay; i++ {
		v.Tick(1)
	}
	if v.WantInterrupt() {
		t.Fatal("request while masked")
	}
	v.SetEnable(0xF)
	if !v.WantInterrupt() {
		t.Error("same-boundary enable write did not deliver")
	}
}

// TestRetiWithNoActiveInterrupt: a stray RFE outside a handler is legal —
// it reports the stale EPC, does not enter or corrupt handler state, and a
// later interrupt still takes normally.
func TestRetiWithNoActiveInterrupt(t *testing.T) {
	u := New(Config{}, nil)
	u.SetEnable(0xF)
	u.SetVector(0x400)
	if pc := u.ReturnFromException(); pc != 0 {
		t.Errorf("stray RFE returned %#x, want stale EPC 0", pc)
	}
	if u.InHandler() {
		t.Error("stray RFE entered handler mode")
	}
	u.Raise(fault.EvOverflowAdd)
	for i := 0; i < RecognitionDelay; i++ {
		u.Tick(1)
	}
	if !u.WantInterrupt() {
		t.Error("interrupt lost after stray RFE")
	}
	u.TakeInterrupt(0x80)
	if pc := u.ReturnFromException(); pc != 0x80 {
		t.Errorf("real RFE returned %#x", pc)
	}
}

// TestHandlerPendedEventRecognisedAfterRFE pins the delivery guarantee:
// an event arriving while the handler runs is recognised after RFE — the
// recognition pipeline re-arms on handler return.
func TestHandlerPendedEventRecognisedAfterRFE(t *testing.T) {
	u := New(Config{}, nil)
	u.SetEnable(0xF)
	u.SetVector(0x400)
	u.Raise(fault.EvOverflowAdd)
	for i := 0; i < RecognitionDelay; i++ {
		u.Tick(1)
	}
	u.TakeInterrupt(0x100)
	u.Raise(fault.EvDivZero) // arrives mid-handler: latched, not armed
	u.Tick(1)
	if u.WantInterrupt() {
		t.Fatal("nested take inside the handler")
	}
	u.ReturnFromException()
	if u.WantInterrupt() {
		t.Fatal("re-armed recognition skipped its delay")
	}
	for i := 0; i < RecognitionDelay; i++ {
		u.Tick(1)
	}
	if !u.WantInterrupt() {
		t.Fatal("handler-pended event never recognised")
	}
	u.TakeInterrupt(0x104)
	if u.Cause() != 1<<fault.EvDivZero {
		t.Errorf("cause %#x", u.Cause())
	}
}

func TestResetClearsEverything(t *testing.T) {
	u := New(Config{}, nil)
	u.SetEnable(0xF)
	u.SetVector(0x100)
	u.Raise(fault.EvDivZero)
	u.Reset()
	if u.PendingMask() != 0 || u.Enable() != 0 || u.Vector() != 0 || u.WantInterrupt() {
		t.Error("reset incomplete")
	}
}
