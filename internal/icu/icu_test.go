package icu

import (
	"testing"

	"repro/internal/fault"
)

func TestRaiseRecognitionFlow(t *testing.T) {
	u := New(Config{}, nil)
	u.SetEnable(0xF)
	u.SetVector(0x400)
	u.Raise(fault.EvDivZero)
	if u.WantInterrupt() {
		t.Fatal("interrupt before recognition delay")
	}
	retired := 0
	for i := 0; i < RecognitionDelay; i++ {
		u.Tick(2)
		retired += 2
	}
	if !u.WantInterrupt() {
		t.Fatal("interrupt not requested after delay")
	}
	vec := u.TakeInterrupt(0x1234)
	if vec != 0x400 {
		t.Errorf("vector %#x", vec)
	}
	if u.Cause() != 1<<fault.EvDivZero {
		t.Errorf("cause %#x", u.Cause())
	}
	if u.Dist() != uint32(retired) {
		t.Errorf("dist %d, want %d", u.Dist(), retired)
	}
	if u.EPC() != 0x1234 {
		t.Errorf("epc %#x", u.EPC())
	}
	if !u.InHandler() {
		t.Error("not in handler")
	}
	if u.WantInterrupt() {
		t.Error("re-entrant interrupt")
	}
	if pc := u.ReturnFromException(); pc != 0x1234 {
		t.Errorf("rfe pc %#x", pc)
	}
	if u.InHandler() {
		t.Error("still in handler after rfe")
	}
}

func TestDisabledInterruptStaysPending(t *testing.T) {
	u := New(Config{}, nil)
	u.SetEnable(0)
	u.Raise(fault.EvOverflowAdd)
	for i := 0; i < RecognitionDelay+4; i++ {
		u.Tick(1)
	}
	if u.WantInterrupt() {
		t.Error("masked interrupt requested")
	}
	if u.PendingMask() != 1<<fault.EvOverflowAdd {
		t.Errorf("pending %#x", u.PendingMask())
	}
	u.ClearPending(0xF)
	if u.PendingMask() != 0 {
		t.Error("clear failed")
	}
	// A later raise must restart the recognition pipeline from scratch.
	u.SetEnable(0xF)
	u.Raise(fault.EvOverflowSub)
	if u.WantInterrupt() {
		t.Error("stale countdown reused after ClearPending")
	}
}

func TestSharedVsDistinctCauseEncoding(t *testing.T) {
	shared := New(Config{SharedCauseBits: true}, nil)
	shared.SetEnable(0xF)
	shared.Raise(fault.EvOverflowAdd) // line 0 -> bit 0
	shared.Raise(fault.EvOverflowSub) // line 1 -> bit 0 (masked together)
	for i := 0; i < RecognitionDelay; i++ {
		shared.Tick(0)
	}
	shared.TakeInterrupt(0)
	if shared.Cause() != 1 {
		t.Errorf("shared cause %#x, want 1", shared.Cause())
	}

	distinct := New(Config{}, nil)
	distinct.SetEnable(0xF)
	distinct.Raise(fault.EvOverflowAdd)
	distinct.Raise(fault.EvOverflowSub)
	for i := 0; i < RecognitionDelay; i++ {
		distinct.Tick(0)
	}
	distinct.TakeInterrupt(0)
	if distinct.Cause() != 3 {
		t.Errorf("distinct cause %#x, want 3", distinct.Cause())
	}
}

func TestCauseBitMaskingDetectabilityAsymmetry(t *testing.T) {
	// A stuck-at-1 on cause bit 0 is masked on cores A/B whenever lines 0
	// or 1 are pending anyway; with distinct encoding the same fault can
	// still alias. What matters for the paper's Table III effect: for a
	// line-1 event, shared encoding cannot distinguish a line-0 stuck line
	// from the real cause — distinct encoding can.
	evFault := fault.Site{Unit: fault.UnitICU, Signal: fault.SigEvLine, Path: 0, Stuck: 1}
	run := func(cfg Config) uint32 {
		u := New(cfg, fault.NewSingle(evFault))
		u.SetEnable(0xF)
		u.Raise(fault.EvOverflowSub) // line 1
		for i := 0; i < RecognitionDelay; i++ {
			u.Tick(0)
		}
		u.TakeInterrupt(0)
		return u.Cause()
	}
	goldenShared := func() uint32 {
		u := New(Config{SharedCauseBits: true}, nil)
		u.SetEnable(0xF)
		u.Raise(fault.EvOverflowSub)
		for i := 0; i < RecognitionDelay; i++ {
			u.Tick(0)
		}
		u.TakeInterrupt(0)
		return u.Cause()
	}()
	goldenDistinct := func() uint32 {
		u := New(Config{}, nil)
		u.SetEnable(0xF)
		u.Raise(fault.EvOverflowSub)
		for i := 0; i < RecognitionDelay; i++ {
			u.Tick(0)
		}
		u.TakeInterrupt(0)
		return u.Cause()
	}()
	if run(Config{SharedCauseBits: true}) != goldenShared {
		t.Error("shared encoding detected the stuck line (expected masking)")
	}
	if run(Config{}) == goldenDistinct {
		t.Error("distinct encoding failed to expose the stuck line")
	}
}

func TestDistanceFaultInjection(t *testing.T) {
	s := fault.Site{Unit: fault.UnitICU, Signal: fault.SigDist, Bit: 0, Stuck: 1}
	u := New(Config{}, fault.NewSingle(s))
	u.SetEnable(0xF)
	u.Raise(fault.EvDivZero)
	for i := 0; i < RecognitionDelay; i++ {
		u.Tick(2)
	}
	u.TakeInterrupt(0)
	want := uint32(2*RecognitionDelay) | 1
	if u.Dist() != want {
		t.Errorf("dist %d, want %d", u.Dist(), want)
	}
}

func TestResetClearsEverything(t *testing.T) {
	u := New(Config{}, nil)
	u.SetEnable(0xF)
	u.SetVector(0x100)
	u.Raise(fault.EvDivZero)
	u.Reset()
	if u.PendingMask() != 0 || u.Enable() != 0 || u.Vector() != 0 || u.WantInterrupt() {
		t.Error("reset incomplete")
	}
}
