// Package icu models the Interrupt Control Unit of the simulated cores,
// specifically the class of interrupts the paper's third experiment
// targets: synchronous imprecise interrupts. They are raised by a specific
// instruction (synchronous) but recognised only after a variable number of
// younger instructions have retired (imprecise) — the recognition logic
// takes a fixed number of clock cycles, so how many instructions slip past
// depends on pipeline stalls, which in a multi-core SoC depend on bus
// contention. The test routine folds the cause and the imprecision
// distance into its signature, which is why its signature is only stable
// when the routine executes deterministically.
//
// Cores A and B implement a cost-reduced cause encoder that maps pairs of
// event lines onto shared cause bits; core C gives every event its own bit.
// The paper attributes core C's ~10% higher ICU coverage to exactly this
// difference (shared bits mask some fault effects).
package icu
