package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/mem"
)

// rig is a minimal single-core environment: program and data in TCMs
// (single-cycle, no bus) so pipeline timings are exact, or flash-backed
// fetch via the bus for contention-sensitive tests.
type rig struct {
	core  *Core
	bus   *bus.Bus
	icc   *cache.Cache // optional i-cache
	dcc   *cache.Cache
	steps int
}

const (
	rigITCM = mem.ITCMBase
	rigDTCM = mem.DTCMBase
)

// newTCMRig loads src into an ITCM-backed core (1-cycle fetch and data).
func newTCMRig(t *testing.T, cfg Config, plane fault.Plane, src string) *rig {
	t.Helper()
	b, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return newTCMRigBuilder(t, cfg, plane, b)
}

func newTCMRigBuilder(t *testing.T, cfg Config, plane fault.Plane, b *asm.Builder) *rig {
	t.Helper()
	p, err := b.Assemble(rigITCM)
	if err != nil {
		t.Fatal(err)
	}
	itcm := mem.NewTCM(mem.TCMSize)
	dtcm := mem.NewTCM(mem.TCMSize)
	for i, w := range p.Words {
		mem.WriteWord(itcm, uint32(i)*4, w)
	}
	imem := cache.NewTCMClient(itcm, rigITCM)
	dmem := cache.NewTCMClient(dtcm, rigDTCM)
	core := New(cfg, imem, dmem, nil, plane)
	core.Reset(rigITCM)
	return &rig{core: core}
}

// newFlashRig loads src into flash at base; fetch goes through the bus with
// the line prefetch buffer (no caches), data through an uncached bus port
// to SRAM.
func newFlashRig(t *testing.T, cfg Config, plane fault.Plane, src string, base uint32) *rig {
	t.Helper()
	b, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble(base)
	if err != nil {
		t.Fatal(err)
	}
	flash := mem.NewFlash(mem.FlashSize, []int{8, 9})
	if err := flash.LoadWords(p.Base, p.Words); err != nil {
		t.Fatal(err)
	}
	ram := mem.NewRAM(mem.SRAMSize, 2)
	bb := bus.New(2, bus.RoundRobin, []bus.Region{
		{Base: mem.FlashBase, Size: mem.FlashSize, Dev: flash},
		{Base: mem.SRAMBase, Size: mem.SRAMSize, Dev: ram},
	})
	imem := cache.NewBypass(bb.PortFor(0), true)
	dmem := cache.NewBypass(bb.PortFor(1), false)
	core := New(cfg, imem, dmem, nil, plane)
	core.Reset(p.Base)
	return &rig{core: core, bus: bb}
}

// run steps until the core is done or maxCycles elapse.
func (r *rig) run(t *testing.T, maxCycles int) {
	t.Helper()
	for i := 0; i < maxCycles; i++ {
		if r.bus != nil {
			r.bus.Step()
		}
		r.core.Step()
		r.steps++
		if r.core.Done() {
			return
		}
	}
	t.Fatalf("core did not halt in %d cycles: %v", maxCycles, r.core)
}

func TestBasicALUAndHalt(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 5
		addi r2, r0, 7
		add  r3, r1, r2
		sub  r4, r2, r1
		and  r5, r1, r2
		or   r6, r1, r2
		xor  r7, r1, r2
		nor  r8, r1, r2
		slt  r9, r1, r2
		sltu r10, r2, r1
		sll  r11, r1, 4
		srl  r12, r11, 2
		sra  r13, r11, 1
		mul  r14, r1, r2
		halt
	`)
	r.run(t, 200)
	want := map[uint8]uint32{
		1: 5, 2: 7, 3: 12, 4: 2, 5: 5, 6: 7, 7: 2,
		8: ^uint32(7), 9: 1, 10: 0, 11: 80, 12: 20, 13: 40, 14: 35,
	}
	for reg, v := range want {
		if got := r.core.Reg(reg); got != v {
			t.Errorf("r%d = %d, want %d", reg, got, v)
		}
	}
	if r.core.Wedged() {
		t.Error("wedged")
	}
}

func TestR0IsHardwiredZero(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		addi r0, r0, 55
		add  r1, r0, r0
		halt
	`)
	r.run(t, 100)
	if r.core.Reg(0) != 0 || r.core.Reg(1) != 0 {
		t.Errorf("r0=%d r1=%d", r.core.Reg(0), r.core.Reg(1))
	}
}

func TestCascadeSamePacket(t *testing.T) {
	// The dependent pair is adjacent and both are plain ALU ops: the HDCU
	// must co-issue them with lane 1 reading lane 0 through the cascade
	// (interpipeline) path.
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 3
		add  r2, r1, r1
		halt
	`)
	r.run(t, 100)
	if got := r.core.Reg(2); got != 6 {
		t.Errorf("r2 = %d, want 6", got)
	}
	if r.core.PathUse[1][0][fault.PathCascade] == 0 ||
		r.core.PathUse[1][1][fault.PathCascade] == 0 {
		t.Errorf("cascade path not exercised: %v", r.core.PathUse[1])
	}
	if r.core.Counter(fault.CntIssued2) == 0 {
		t.Error("pair did not dual-issue")
	}
}

func TestEXtoEXForwarding(t *testing.T) {
	// A nop pads lane 1 so the producer/consumer land in consecutive
	// packets: the consumer must take the EX/MEM-latch path (paper Fig 1a).
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 5
		nop
		add  r2, r1, r1
		nop
		halt
	`)
	r.run(t, 100)
	if got := r.core.Reg(2); got != 10 {
		t.Errorf("r2 = %d, want 10", got)
	}
	use := r.core.PathUse
	if use[0][0][fault.PathEXL0]+use[0][1][fault.PathEXL0] == 0 {
		t.Errorf("EX-EX path not exercised: %+v", use[0])
	}
}

func TestMEMtoEXForwarding(t *testing.T) {
	// Producer two packets ahead: value comes from the MEM/WB latch.
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 9
		nop
		nop
		nop
		add  r2, r1, r0
		halt
	`)
	r.run(t, 100)
	if got := r.core.Reg(2); got != 9 {
		t.Errorf("r2 = %d, want 9", got)
	}
	use := r.core.PathUse
	if use[0][0][fault.PathMEML0]+use[0][0][fault.PathMEML1] == 0 {
		t.Errorf("MEM-EX path not exercised: %+v", use[0])
	}
}

func TestLoadUseInsertsOneBubble(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		li   r29, 0x30000000
		addi r1, r0, 42
		sw   r1, 0(r29)
		lw   r3, 0(r29)
		add  r4, r3, r3
		halt
	`)
	r.run(t, 200)
	if got := r.core.Reg(4); got != 84 {
		t.Errorf("r4 = %d, want 84", got)
	}
	if got := r.core.Counter(fault.CntHazStall); got == 0 {
		t.Error("no hazard stall recorded for load-use")
	}
	// Load data must arrive via a MEM/WB path, not EX/MEM.
	use := r.core.PathUse
	if use[0][0][fault.PathMEML0]+use[0][0][fault.PathMEML1]+
		use[1][0][fault.PathMEML0]+use[1][0][fault.PathMEML1] == 0 {
		t.Error("load not forwarded from MEM/WB latch")
	}
}

func TestStoreLoadByteAndWord(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		li   r29, 0x30000000
		li   r1, 0x11223344
		sw   r1, 8(r29)
		lb   r2, 8(r29)
		lbu  r3, 11(r29)
		li   r4, 0xFFFFFF80
		sb   r4, 12(r29)
		lb   r5, 12(r29)
		lbu  r6, 12(r29)
		halt
	`)
	r.run(t, 300)
	if got := r.core.Reg(2); got != 0x44 {
		t.Errorf("lb = %#x", got)
	}
	if got := r.core.Reg(3); got != 0x11 {
		t.Errorf("lbu = %#x", got)
	}
	if got := r.core.Reg(5); got != 0xFFFFFF80 {
		t.Errorf("lb sign-extend = %#x", got)
	}
	if got := r.core.Reg(6); got != 0x80 {
		t.Errorf("lbu zero-extend = %#x", got)
	}
}

func TestBranchLoopAndJumps(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 0      ; sum
		addi r2, r0, 5      ; i
	loop:
		add  r1, r1, r2
		addi r2, r2, -1
		bne  r2, r0, loop
		jal  sub1
		j    end
	sub1:
		addi r3, r0, 77
		jr   r31
	end:
		halt
	`)
	r.run(t, 500)
	if got := r.core.Reg(1); got != 15 {
		t.Errorf("sum = %d, want 15", got)
	}
	if got := r.core.Reg(3); got != 77 {
		t.Errorf("r3 = %d (subroutine not taken)", got)
	}
}

func TestBranchCompares(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		li   r1, 0xFFFFFFFF  ; -1
		addi r2, r0, 1
		addi r10, r0, 0
		blt  r1, r2, t1      ; -1 < 1 signed: taken
		addi r10, r10, 1     ; skipped
	t1:
		bge  r2, r1, t2      ; taken
		addi r10, r10, 1     ; skipped
	t2:
		beq  r1, r2, t3      ; not taken
		addi r11, r0, 5
	t3:
		halt
	`)
	r.run(t, 300)
	if r.core.Reg(10) != 0 {
		t.Errorf("signed compare branches wrong: r10=%d", r.core.Reg(10))
	}
	if r.core.Reg(11) != 5 {
		t.Error("not-taken fallthrough skipped")
	}
}

func TestPairOpsOnCoreC(t *testing.T) {
	r := newTCMRig(t, CoreC(), nil, `
		li   r2, 0xFFFFFFFF  ; pair (r2,r3) = 0x00000001_FFFFFFFF
		addi r3, r0, 1
		li   r4, 1           ; pair (r4,r5) = 0x00000000_00000001
		addi r5, r0, 0
		addp r6, r2, r4      ; = 0x00000002_00000000
		li   r29, 0x30000000
		swp  r6, 0(r29)
		lwp  r8, 0(r29)
		xorp r10, r8, r6     ; = 0
		halt
	`)
	r.run(t, 400)
	if lo, hi := r.core.Reg(6), r.core.Reg(7); lo != 0 || hi != 2 {
		t.Errorf("addp = %#x_%08x, want 2_00000000", hi, lo)
	}
	if lo, hi := r.core.Reg(8), r.core.Reg(9); lo != 0 || hi != 2 {
		t.Errorf("lwp = %#x_%08x", hi, lo)
	}
	if r.core.Reg(10) != 0 || r.core.Reg(11) != 0 {
		t.Error("xorp mismatch")
	}
}

func TestCSRCounters(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 1
		addi r2, r0, 2
		csrr r3, cycle
		csrr r4, instret
		csrr r5, coreid
		halt
	`)
	r.run(t, 100)
	if r.core.Reg(3) == 0 {
		t.Error("cycle counter zero")
	}
	if r.core.Reg(4) == 0 {
		t.Error("instret zero")
	}
	if r.core.Reg(5) != 0 {
		t.Errorf("coreid = %d", r.core.Reg(5))
	}
}

func TestImpreciseInterrupt(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		la   r1, handler
		csrw ivec, r1
		addi r1, r0, 15
		csrw ienable, r1
		li   r2, 0x7FFFFFFF
		addi r3, r0, 1
		addv r4, r2, r3      ; overflow: raises line 0
		addi r20, r0, 1      ; younger instructions retire (imprecise)
		addi r21, r0, 2
		addi r22, r0, 3
	wait:
		beq  r23, r0, wait   ; spin until the handler sets r23
		halt
	handler:
		csrr r24, icause
		csrr r25, idist
		addi r23, r0, 1
		rfe
	`)
	r.run(t, 2000)
	if r.core.Reg(23) != 1 {
		t.Fatal("handler never ran")
	}
	if got := r.core.Reg(24); got != 1 {
		t.Errorf("icause = %#x, want bit0 (shared encoder, line0)", got)
	}
	// Imprecise: at least one younger instruction retired before
	// recognition.
	if got := r.core.Reg(25); got == 0 {
		t.Errorf("idist = 0; interrupt recognised precisely?")
	}
	// The younger instructions did retire (not squashed).
	if r.core.Reg(20) != 1 || r.core.Reg(21) != 2 || r.core.Reg(22) != 3 {
		t.Error("younger instructions were squashed; interrupt was precise")
	}
}

func TestCauseEncodingSharedVsDistinct(t *testing.T) {
	src := `
		la   r1, handler
		csrw ivec, r1
		addi r1, r0, 15
		csrw ienable, r1
		addi r2, r0, 7
		divv r3, r2, r0      ; divide by zero: line 3
	wait:
		beq  r23, r0, wait
		halt
	handler:
		csrr r24, icause
		addi r23, r0, 1
		rfe
	`
	rA := newTCMRig(t, CoreA(), nil, src)
	rA.run(t, 2000)
	if got := rA.core.Reg(24); got != 2 {
		t.Errorf("core A: icause = %#x, want bit1 (lines 2,3 share bit 1)", got)
	}
	rC := newTCMRig(t, CoreC(), nil, src)
	rC.run(t, 2000)
	if got := rC.core.Reg(24); got != 8 {
		t.Errorf("core C: icause = %#x, want bit3", got)
	}
}

func TestWedgeOnGarbage(t *testing.T) {
	b := asm.NewBuilder()
	b.Word(0xFFFFFFFF) // invalid opcode
	r := newTCMRigBuilder(t, CoreA(), nil, b)
	for i := 0; i < 50 && !r.core.Done(); i++ {
		r.core.Step()
	}
	if !r.core.Wedged() {
		t.Error("garbage did not wedge the core")
	}
}

func TestPairOpWedgesCoreA(t *testing.T) {
	// Pair ops are core C only; core A must not execute them silently.
	// (They decode fine — the ISA is shared — but EX refuses them.)
	r := newTCMRig(t, CoreA(), nil, `
		addp r2, r4, r6
		halt
	`)
	for i := 0; i < 100 && !r.core.Done(); i++ {
		r.core.Step()
	}
	if !r.core.Wedged() {
		t.Error("core A executed a 64-bit pair op")
	}
}

func TestMisrSignatureDeterministic(t *testing.T) {
	src := `
		xor  r28, r28, r28
		addi r1, r0, 10
	loop:
		add  r2, r2, r1
		misr r2
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`
	r1 := newTCMRig(t, CoreA(), nil, src)
	r1.run(t, 2000)
	r2 := newTCMRig(t, CoreA(), nil, src)
	r2.run(t, 2000)
	sig1, sig2 := r1.core.Reg(isa.RegSig), r2.core.Reg(isa.RegSig)
	if sig1 == 0 {
		t.Error("signature is zero")
	}
	if sig1 != sig2 {
		t.Errorf("signatures differ across identical runs: %#x vs %#x", sig1, sig2)
	}
}

func TestFlashFetchBreaksAdjacency(t *testing.T) {
	// From flash (no caches) the dependent pair in the same 16-byte line
	// co-issues, but a pair split across a line boundary cannot: the second
	// line takes ~8 cycles to arrive, so the consumer reads the register
	// file instead of a forwarding path. This is the Figure 1b effect.
	src := `
		addi r1, r0, 1
		addi r2, r0, 2
		addi r3, r0, 3      ; line 0 ends after next inst
		addi r4, r0, 4
		addi r5, r0, 5      ; line 1 starts here
		add  r6, r5, r5     ; same line as producer: forwarded
		nop
		nop
		addi r7, r0, 7      ; last word of line 2...
		add  r8, r7, r7     ; first word of line 3: RF read, no forwarding
		halt
	`
	r := newFlashRig(t, CoreA(), nil, src, 0)
	r.run(t, 3000)
	if r.core.Reg(6) != 10 || r.core.Reg(8) != 14 {
		t.Fatalf("results wrong: r6=%d r8=%d", r.core.Reg(6), r.core.Reg(8))
	}
	if got := r.core.Counter(fault.CntIFStall); got == 0 {
		t.Error("no IF stalls from flash fetch")
	}
}

func TestDeterminismSameRigTwice(t *testing.T) {
	src := `
		li   r29, 0x20000000
		addi r1, r0, 25
	loop:
		sw   r1, 0(r29)
		lw   r2, 0(r29)
		misr r2
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`
	a := newFlashRig(t, CoreA(), nil, src, 0x1000)
	a.run(t, 50000)
	b := newFlashRig(t, CoreA(), nil, src, 0x1000)
	b.run(t, 50000)
	if a.core.Cycle() != b.core.Cycle() {
		t.Errorf("cycle counts differ: %d vs %d", a.core.Cycle(), b.core.Cycle())
	}
	if a.core.Reg(isa.RegSig) != b.core.Reg(isa.RegSig) {
		t.Error("signatures differ")
	}
}
