package cpu

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/isa"
)

// Edge-case pipeline tests: behaviours that the main test file's golden
// programs do not pin down.

func TestBackToBackTakenBranches(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 0
		beq  r0, r0, a
		addi r1, r1, 100   ; squashed
	a:	beq  r0, r0, bb
		addi r1, r1, 100   ; squashed
	bb:	addi r1, r1, 1
		halt
	`)
	r.run(t, 300)
	if got := r.core.Reg(1); got != 1 {
		t.Errorf("r1 = %d, want 1 (wrong-path instructions executed?)", got)
	}
}

func TestBranchInLoopBodyEveryIteration(t *testing.T) {
	// A data-dependent branch inside a counted loop: taken on even
	// iterations only; the architectural result must reflect every
	// individual decision.
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 8      ; i
		addi r2, r0, 0      ; acc
	loop:
		andi r3, r1, 1
		bne  r3, r0, odd
		addi r2, r2, 10     ; even path
	odd:
		addi r2, r2, 1      ; both paths
		addi r1, r1, -1
		bne  r1, r0, loop
		halt
	`)
	r.run(t, 2000)
	// 8 iterations: i=8,7..1; even i (8,6,4,2): +11; odd: +1 => 4*11+4*1.
	if got := r.core.Reg(2); got != 48 {
		t.Errorf("acc = %d, want 48", got)
	}
}

func TestJALRReturnsThroughForwardedLink(t *testing.T) {
	// The link value produced by JAL must forward into an immediately
	// following consumer after return.
	r := newTCMRig(t, CoreA(), nil, `
		jal  f
		j    end
	f:	add  r2, r31, r0   ; read the link register inside the callee
		jr   r31
	end:
		halt
	`)
	r.run(t, 300)
	if r.core.Reg(2) == 0 {
		t.Error("link value not observable in callee")
	}
}

func TestStoreDataForwarding(t *testing.T) {
	// A store whose data operand was produced by the immediately preceding
	// instruction: the value must arrive through the bypass network.
	r := newTCMRig(t, CoreA(), nil, `
		li   r29, 0x30000000
		addi r1, r0, 123
		sw   r1, 0(r29)
		lw   r2, 0(r29)
		halt
	`)
	r.run(t, 300)
	if got := r.core.Reg(2); got != 123 {
		t.Errorf("stored/loaded %d, want 123", got)
	}
}

func TestStoreAddressFromLoadStalls(t *testing.T) {
	// The store's base register comes from a load one packet earlier: the
	// load-use interlock must also protect address generation.
	r := newTCMRig(t, CoreA(), nil, `
		li   r29, 0x30000000
		li   r1, 0x30000040
		sw   r1, 0(r29)      ; mem[base] = pointer
		lw   r2, 0(r29)      ; r2 = pointer
		addi r3, r0, 55
		sw   r3, 0(r2)       ; store through the just-loaded pointer
		lw   r4, 0x40(r29)
		halt
	`)
	r.run(t, 500)
	if got := r.core.Reg(4); got != 55 {
		t.Errorf("pointer store wrote %d, want 55", got)
	}
}

func TestCINVIssuesAloneAndInvalidates(t *testing.T) {
	invalidated := 0
	itcmSrc := `
		cinv both
		cinv i
		cinv d
		halt
	`
	b, err := asm.Parse(itcmSrc)
	if err != nil {
		t.Fatal(err)
	}
	r := newTCMRigBuilder(t, CoreA(), nil, b)
	// Replace the invalidate hook to count selector decoding.
	r.core.invalidate = func(sel int32) {
		switch sel {
		case isa.CinvBoth, isa.CinvI, isa.CinvD:
			invalidated++
		default:
			t.Errorf("bad selector %d", sel)
		}
	}
	r.run(t, 200)
	if invalidated != 3 {
		t.Errorf("invalidate called %d times, want 3", invalidated)
	}
}

func TestInterruptDuringLoopRedirect(t *testing.T) {
	// An imprecise interrupt maturing right around a taken branch must not
	// lose the loop's architectural work.
	r := newTCMRig(t, CoreA(), nil, `
		la   r1, handler
		csrw ivec, r1
		addi r1, r0, 15
		csrw ienable, r1
		li   r2, 0x7FFFFFFF
		addi r3, r0, 1
		addi r4, r0, 40     ; loop counter (long enough for recognition)
		addi r5, r0, 0      ; acc
	loop:
		addv r6, r2, r3     ; overflow event on every iteration
		addi r5, r5, 1
		addi r4, r4, -1
		bne  r4, r0, loop
		halt
	handler:
		addi r20, r20, 1    ; count handler invocations
		rfe
	`)
	r.run(t, 20000)
	if got := r.core.Reg(5); got != 40 {
		t.Errorf("acc = %d, want 40 (iterations lost across interrupts)", got)
	}
	if r.core.Reg(20) == 0 {
		t.Error("handler never ran")
	}
}

func TestCounterGatingFault(t *testing.T) {
	site := fault.Site{Unit: fault.UnitPerf, Signal: fault.SigCntInc,
		Lane: fault.CntInstret, Stuck: 0}
	r := newTCMRig(t, CoreA(), fault.NewSingle(site), `
		addi r1, r0, 1
		addi r2, r0, 2
		halt
	`)
	r.run(t, 100)
	if got := r.core.Counter(fault.CntInstret); got != 0 {
		t.Errorf("instret = %d with gated increment", got)
	}
	// The cycle counter is unaffected.
	if r.core.Counter(fault.CntCycle) == 0 {
		t.Error("cycle counter also gated")
	}
}

func TestMuxSelFaultDeliversWrongSource(t *testing.T) {
	// Force the lane-0 operand-A select toward EXL0 even without a
	// dependency: the consumer reads the previous packet's lane-0 result
	// instead of its register.
	site := fault.Site{Unit: fault.UnitFwd, Signal: fault.SigMuxSel,
		Lane: 0, Operand: 0, Bit: 0, Stuck: 1}
	src := `
		addi r1, r0, 5
		nop
		nop
		nop
		addi r2, r0, 70
		nop
		add  r3, r1, r0
		nop
		halt
	`
	clean := newTCMRig(t, CoreA(), nil, src)
	clean.run(t, 300)
	faulty := newTCMRig(t, CoreA(), fault.NewSingle(site), src)
	faulty.run(t, 300)
	if clean.core.Reg(3) != 5 {
		t.Fatalf("clean r3 = %d", clean.core.Reg(3))
	}
	if faulty.core.Reg(3) == clean.core.Reg(3) {
		t.Error("select fault had no architectural effect")
	}
}

func TestWedgePCReported(t *testing.T) {
	b, err := asm.Parse("nop")
	if err != nil {
		t.Fatal(err)
	}
	b.Word(0xFFFFFFFF)
	r := newTCMRigBuilder(t, CoreA(), nil, b)
	for i := 0; i < 100 && !r.core.Done(); i++ {
		r.core.Step()
	}
	if !r.core.Wedged() {
		t.Fatal("not wedged")
	}
	if r.core.wedgePC != rigITCM+4 {
		t.Errorf("wedge pc = %#x, want %#x", r.core.wedgePC, rigITCM+4)
	}
}

func TestDoneRequiresDrain(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, "halt")
	for i := 0; i < 50 && !r.core.Done(); i++ {
		r.core.Step()
		if r.core.Halted() && !r.core.Done() {
			// Halted but still draining: legal intermediate state.
			continue
		}
	}
	if !r.core.Done() {
		t.Error("never drained")
	}
}

func TestResetRestoresCleanState(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 9
		halt
	`)
	r.run(t, 100)
	if r.core.Reg(1) != 9 {
		t.Fatal("setup failed")
	}
	r.core.Reset(rigITCM)
	if r.core.Reg(1) != 0 || r.core.Halted() || r.core.Cycle() != 0 {
		t.Error("reset incomplete")
	}
	// Runs again identically.
	for i := 0; i < 200 && !r.core.Done(); i++ {
		r.core.Step()
	}
	if r.core.Reg(1) != 9 {
		t.Error("re-run after reset diverged")
	}
}
