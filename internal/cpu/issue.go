package cpu

import (
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/isa"
)

// stepFetch keeps the fetch queue topped up, requesting 8-byte chunks
// (one potential issue packet) through the instruction-side memory client.
func (c *Core) stepFetch() {
	if c.fetchBusy {
		done, data := c.imem.Tick()
		if !done {
			return
		}
		c.fetchBusy = false
		if c.discardFetch {
			c.discardFetch = false
		} else {
			c.enqueue(data)
			c.fetchAddr += 8
		}
	}
	for !c.fetchBusy && !c.halted && len(c.fetchQ) <= fetchQCap-2 {
		c.imem.Start(c.fetchAddr, false, 0, 8)
		done, data := c.imem.Tick()
		if !done {
			c.fetchBusy = true
			return
		}
		c.enqueue(data)
		c.fetchAddr += 8
	}
}

func (c *Core) enqueue(chunk uint64) {
	for k := 0; k < 2; k++ {
		pc := c.fetchAddr + uint32(k)*4
		if pc < c.skipBelow {
			continue
		}
		word := uint32(chunk >> (32 * k))
		e := &c.decCache[(word^word>>11^word>>22)&(decCacheSize-1)]
		if !e.valid || e.word != word {
			inst, err := isa.Decode(word)
			*e = decEntry{word: word, valid: true, bad: err != nil, inst: inst}
		}
		c.fetchQ = append(c.fetchQ, fetched{pc: pc, inst: e.inst, bad: e.bad})
		c.emit(TraceEvent{Kind: "fetch", PC: pc, Inst: e.inst, Lane: len(c.fetchQ)})
	}
}

// popFetch removes the first n queue entries.
func (c *Core) popFetch(n int) {
	c.fetchQ = c.fetchQ[:copy(c.fetchQ, c.fetchQ[n:])]
}

// stepIssue forms the next issue packet into exPkt. exOld is the packet
// that was in EX this cycle (it is in MEM next cycle; its loads cannot
// forward yet, which is the load-use hazard).
func (c *Core) stepIssue(exOld *packet) {
	if c.halted {
		return
	}
	if c.ICU.WantInterrupt() {
		vec := c.ICU.TakeInterrupt(c.nextIssuePC)
		c.cov.Inc(coverage.FeatInterrupt)
		c.redirect(vec)
		return
	}
	if len(c.fetchQ) == 0 {
		// The pipeline wanted to issue but fetch could not supply: this is
		// the instruction-side stall the paper's Table I counts.
		c.bump(fault.CntIFStall, 1)
		c.cov.Inc(coverage.FeatStallIF)
		c.emit(TraceEvent{Kind: "stall", Why: "if"})
		return
	}
	i0 := c.fetchQ[0]
	if i0.bad {
		c.wedged = true
		c.wedgePC = i0.pc
		c.halted = true
		c.cov.Inc(coverage.FeatWedge)
		return
	}
	// Load-use: a source of the candidate matches a load destination in
	// the packet entering MEM. Width-mismatch hazards (pair/single
	// overlaps the 32/64-bit bypass network cannot deliver) stall the same
	// way.
	if c.loadUseHazard(exOld, 0, i0.inst) || c.widthHazard(exOld, i0.inst) {
		c.bump(fault.CntHazStall, 1)
		c.cov.Inc(coverage.FeatStallHaz)
		c.emit(TraceEvent{Kind: "stall", Why: "haz"})
		return
	}

	c.mkUop(&c.exPkt[0], i0)
	c.popFetch(1)
	c.nextIssuePC = i0.pc + 4
	c.cov.Inc(coverage.FeatIssue1)
	c.emit(TraceEvent{Kind: "issue", Lane: 0, PC: i0.pc, Inst: i0.inst})

	if i0.inst.Op.IsControl() || i0.inst.Op.IsSystem() || i0.inst.Op.IsPair() {
		return // serialising and pair-width instructions issue alone
	}
	if len(c.fetchQ) == 0 {
		return
	}
	i1 := c.fetchQ[0]
	ok, casA, casB := c.canDualIssue(exOld, i0.inst, i1)
	if !ok {
		return
	}
	c.mkUop(&c.exPkt[1], i1)
	c.exPkt[1].cascadeA = casA
	c.exPkt[1].cascadeB = casB
	c.popFetch(1)
	c.nextIssuePC = i1.pc + 4
	c.bump(fault.CntIssued2, 1)
	if c.cov != nil {
		c.cov.Inc(coverage.FeatIssue2)
		if casA {
			c.cov.Inc(coverage.FeatCascadeA)
		}
		if casB {
			c.cov.Inc(coverage.FeatCascadeB)
		}
	}
	c.emit(TraceEvent{Kind: "issue", Lane: 1, PC: i1.pc, Inst: i1.inst})
}

// canDualIssue decides whether i1 may share a packet with i0 and whether
// its operands use the intra-packet cascade path.
func (c *Core) canDualIssue(exOld *packet, first isa.Inst, i1 fetched) (ok, casA, casB bool) {
	if i1.bad || i1.inst.Op.IsControl() || i1.inst.Op.IsSystem() || i1.inst.Op.IsPair() {
		return false, false, false
	}
	if first.Op.IsMem() && i1.inst.Op.IsMem() {
		return false, false, false // single load/store unit
	}
	if c.loadUseHazard(exOld, 1, i1.inst) || c.widthHazard(exOld, i1.inst) {
		return false, false, false // issue i0 alone; i1 re-checked next cycle
	}

	splitWanted := false

	// Intra-packet RAW: lane1 sourcing lane0's destination.
	raw := false
	a, useA, b, useB := i1.inst.SrcRegs()
	if first.WritesReg() {
		rd := destOf(first)
		if rd != 0 {
			rawA := useA && c.plane.CmpEq(fault.CmpIntra(0), rd, a)
			rawB := useB && c.plane.CmpEq(fault.CmpIntra(1), rd, b)
			raw = rawA || rawB
			if raw {
				cascadable := !first.Op.IsLoad() &&
					c.plane.Ctl(fault.CtlCascade, true)
				if cascadable {
					casA, casB = rawA, rawB
				} else {
					splitWanted = true
				}
			}
		}
	}
	// Intra-packet pure WAW (no read of lane 0's result): the write-back
	// order rule forces a split. When a RAW cascade already chains the two
	// instructions the ordering is resolved and the packet may issue
	// whole (e.g. lui/ori load-immediate pairs).
	if !raw && first.WritesReg() && i1.inst.WritesReg() {
		rd0, rd1 := destOf(first), destOf(i1.inst)
		if rd0 != 0 && c.plane.CmpEq(fault.CmpIntra(2), rd0, rd1) {
			splitWanted = true
		}
	}

	if c.plane.Ctl(fault.CtlSplit, splitWanted) {
		c.cov.Inc(coverage.FeatSplitWAW)
		return false, false, false
	}
	return true, casA, casB
}

// loadUseHazard reports whether any source of inst matches a load
// destination in pkt (the packet one stage ahead).
func (c *Core) loadUseHazard(pkt *packet, candLane uint8, inst isa.Inst) bool {
	a, useA, b, useB := inst.SrcRegs()
	detected := false
	for exLane := uint8(0); exLane < 2; exLane++ {
		u := &pkt[exLane]
		if !u.valid || !u.isLoad || u.rd == 0 {
			continue
		}
		if useA && c.plane.CmpEq(fault.CmpLoadUse(exLane, candLane, 0), u.rd, a) {
			detected = true
		}
		if useB && c.plane.CmpEq(fault.CmpLoadUse(exLane, candLane, 1), u.rd, b) {
			detected = true
		}
		// Pair loads also produce rd+1.
		if u.isPair {
			hi := (u.rd + 1) & 31
			if useA && hi == a || useB && hi == b {
				detected = true
			}
		}
	}
	return c.plane.Ctl(fault.CtlLoadUse, detected)
}

// widthHazard reports whether inst has a pair/single width overlap with a
// producer in pkt (the packet one stage ahead) that the bypass network
// cannot deliver: a 32-bit producer feeding half of a pair operand, a pair
// producer's high word feeding a 32-bit source, or offset pair overlaps.
// One stall cycle resolves them (the producer's register-file write becomes
// visible before the consumer's EX). These are hard-wired width checks in
// the issue logic, not comparator outputs, so no fault sites attach here.
func (c *Core) widthHazard(pkt *packet, inst isa.Inst) bool {
	a, useA, b, useB := inst.SrcRegs()
	pairA, pairB := pairOperands(inst)
	for exLane := 0; exLane < 2; exLane++ {
		p := &pkt[exLane]
		if !p.valid || !p.writes || p.rd == 0 {
			continue
		}
		hi := (p.rd + 1) & 31
		check := func(s uint8, used, pairOp bool) bool {
			if !used {
				return false
			}
			sHi := (s + 1) & 31
			switch {
			case !p.isPair && pairOp:
				return p.rd == s || p.rd == sHi
			case p.isPair && !pairOp:
				return s == hi
			case p.isPair && pairOp:
				return s == hi || sHi == p.rd // offset overlap
			}
			return false
		}
		if check(a, useA, pairA) || check(b, useB, pairB) {
			return true
		}
	}
	return false
}

// destOf returns the architectural destination register of inst.
func destOf(inst isa.Inst) uint8 {
	if inst.Op == isa.OpJAL {
		return isa.RegLink
	}
	return inst.Rd
}

// pairOperands reports which source operands of inst are 64-bit register
// pairs. Pair ALU ops read two pairs; SWP's data operand (B) is a pair; the
// base address operand of LWP/SWP is a normal 32-bit register.
func pairOperands(inst isa.Inst) (pairA, pairB bool) {
	switch inst.Op {
	case isa.OpADDP, isa.OpSUBP, isa.OpANDP, isa.OpORP, isa.OpXORP:
		return true, true
	case isa.OpSWP:
		return false, true
	}
	return false, false
}

// mkUop decodes static fields of a fetched instruction into *u (in place:
// this runs once per issued instruction, and the issue slot is already
// zeroed by the latch rotation).
func (c *Core) mkUop(u *uop, f fetched) {
	op := f.inst.Op
	*u = uop{
		valid:   true,
		inst:    f.inst,
		pc:      f.pc,
		writes:  f.inst.WritesReg(),
		rd:      destOf(f.inst),
		isPair:  op.IsPair(),
		isLoad:  op.IsLoad(),
		isStore: op.IsStore(),
	}
	switch op {
	case isa.OpLB, isa.OpLBU, isa.OpSB:
		u.memSize = 1
	case isa.OpLW, isa.OpSW:
		u.memSize = 4
	case isa.OpLWP, isa.OpSWP:
		u.memSize = 8
	}
}
