package cpu

import (
	"fmt"

	"repro/internal/archint"
	"repro/internal/cache"
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/icu"
	"repro/internal/isa"
)

// Config describes one core.
type Config struct {
	CoreID int
	Has64  bool // paired-register 64-bit extension (core C)
	ICU    icu.Config
}

// CoreA/B/C return the three configurations of the paper's SoC. Cores A and
// B are the same processor model (they differ only in physical design,
// which this architectural model cannot distinguish); core C extends the
// ISA with 64-bit paired-register operations and has a fully decoded
// interrupt cause register.
func CoreA() Config { return Config{CoreID: 0, ICU: icu.Config{SharedCauseBits: true}} }
func CoreB() Config { return Config{CoreID: 1, ICU: icu.Config{SharedCauseBits: true}} }
func CoreC() Config { return Config{CoreID: 2, Has64: true} }

// fetchQCap is the fetch queue depth in instructions.
const fetchQCap = 6

type fetched struct {
	pc   uint32
	inst isa.Inst
	bad  bool // undecodable word
}

// decCacheSize is the decode-cache capacity (power of two).
const decCacheSize = 256

type decEntry struct {
	word  uint32
	valid bool
	bad   bool
	inst  isa.Inst
}

// uop is an instruction in flight.
type uop struct {
	valid  bool
	inst   isa.Inst
	pc     uint32
	rd     uint8
	writes bool
	isPair bool

	result   uint64 // EX result; load data is filled in MEM
	isLoad   bool
	isStore  bool
	memAddr  uint32
	memSize  int
	storeVal uint64

	cascadeA bool // operand A takes the intra-packet cascade path
	cascadeB bool
}

type packet [2]uop

func (p packet) any() bool { return p[0].valid || p[1].valid }

// Counters indexes the performance counters (mirrors fault.Cnt* and the CSR
// numbers).
const numCounters = fault.NumCounters

// TraceEvent reports pipeline activity to an attached tracer.
type TraceEvent struct {
	Cycle int64
	Kind  string // "issue", "ex", "mem", "wb", "fwd", "stall", "redirect"
	Lane  int
	PC    uint32
	Inst  isa.Inst
	// Forwarding detail (Kind == "fwd").
	Operand int
	Path    int
	// Stall detail (Kind == "stall"): "if", "mem", "haz".
	Why string
	// Result carries the computed value for "ex" events.
	Result uint64
}

// TraceFn receives trace events when attached with SetTracer.
type TraceFn func(TraceEvent)

// Core is one processor core.
type Core struct {
	cfg   Config
	plane fault.Plane
	// cntIncClean caches fault.AffectsCounterInc(plane): counters are
	// bumped several times per cycle, and a plane transparent to counter
	// increments lets bump skip the per-increment plane call.
	cntIncClean bool
	ICU         *icu.ICU

	imem cache.Client
	dmem cache.Client
	// invalidate is called by CINV with the isa.Cinv* selector; wired by
	// the SoC to the private caches.
	invalidate func(sel int32)

	regs     [32]uint32
	counters [numCounters]uint64

	// Fetch.
	fetchAddr    uint32 // next 8-byte chunk to request
	skipBelow    uint32 // discard fetched words below this PC (redirects)
	fetchBusy    bool
	discardFetch bool
	fetchQ       []fetched
	nextIssuePC  uint32
	// decCache memoises isa.Decode, which is pure in the fetched word:
	// loop bodies re-decode the same handful of words every iteration (and
	// every fault run of a reusable arena re-decodes the same program).
	// Direct-mapped; survives Reset by construction.
	decCache [decCacheSize]decEntry

	// Pipeline latches. The packets live in the fixed latches array and
	// the stage pointers rotate over it each cycle — advancing the
	// pipeline is three pointer swaps instead of three packet copies,
	// which matters at one advance per simulated cycle per core.
	latches [3]packet
	exPkt   *packet
	memPkt  *packet
	wbPkt   *packet

	// MEM stage progress.
	memLane    int // lane currently accessing memory (0,1) or -1
	memStarted bool

	cycle   int64
	halted  bool
	wedged  bool
	wedgePC uint32

	// PathUse counts forwarding-mux selections per (lane, operand, path);
	// the Figure 1 demo and the coverage analysis read it.
	PathUse [2][2][fault.NumPaths]int64

	trace    TraceFn
	storeObs StoreFn
	// inj drives a deterministic interrupt-event plan into the ICU,
	// retire-indexed so the differential harness can replay the same plan
	// against the architectural reference; nil means no external events.
	inj *archint.Injector
	// cov collects microarchitectural coverage when attached; nil (the
	// default) is the zero-cost disabled mode — coverage.Map methods are
	// nil-safe, so call sites pay one predictable branch.
	cov *coverage.Map
}

// StoreFn observes completed data-side stores (address, value, size in
// bytes). The fault-simulation arenas use it to compare a faulty run's
// observable behaviour against the golden run's.
type StoreFn func(addr uint32, val uint64, size int)

// New builds a core. imem and dmem are the fetch- and data-side memory
// clients (wired by the SoC), invalidate is the CINV callback (may be nil),
// and plane is the fault-injection plane (nil means fault-free).
func New(cfg Config, imem, dmem cache.Client, invalidate func(sel int32), plane fault.Plane) *Core {
	if plane == nil {
		plane = fault.None
	}
	if invalidate == nil {
		invalidate = func(int32) {}
	}
	c := &Core{
		cfg:         cfg,
		plane:       plane,
		cntIncClean: !fault.AffectsCounterInc(plane),
		ICU:         icu.New(cfg.ICU, plane),
		imem:        imem,
		dmem:        dmem,
		invalidate:  invalidate,
		fetchQ:      make([]fetched, 0, fetchQCap),
		memLane:     -1,
	}
	c.exPkt, c.memPkt, c.wbPkt = &c.latches[0], &c.latches[1], &c.latches[2]
	return c
}

// Reset restores architectural state and points fetch at pc.
func (c *Core) Reset(pc uint32) {
	c.regs = [32]uint32{}
	c.counters = [numCounters]uint64{}
	c.fetchQ = c.fetchQ[:0]
	c.fetchBusy = false
	c.discardFetch = false
	c.latches = [3]packet{}
	// Rewire the stage pointers to their boot positions. The rotation
	// phase is semantically irrelevant over empty latches, but leaving it
	// where the previous run ended makes a Reset core differ bit-wise
	// from a freshly built one — breaking snapshot comparisons against
	// golden-run checkpoints (see core.Arena).
	c.exPkt, c.memPkt, c.wbPkt = &c.latches[0], &c.latches[1], &c.latches[2]
	c.memLane = -1
	c.memStarted = false
	c.cycle = 0
	c.halted = false
	c.wedged = false
	c.wedgePC = 0
	c.PathUse = [2][2][fault.NumPaths]int64{}
	c.ICU.Reset()
	if c.inj != nil {
		c.inj.Reset()
	}
	c.redirect(pc)
}

// CoreState is an opaque snapshot of a core's dynamic state: architectural
// registers, counters, fetch/issue front end, pipeline latches, MEM-stage
// progress and the ICU. Attachments (plane, tracer, store observer,
// injector, coverage) and the decode cache (a pure memo) are not part of
// it. An attached archint.Injector's delivery cursor is not covered either
// — fault-campaign arenas never attach one.
type CoreState struct {
	regs         [32]uint32
	counters     [numCounters]uint64
	fetchAddr    uint32
	skipBelow    uint32
	fetchBusy    bool
	discardFetch bool
	fetchQ       []fetched
	nextIssuePC  uint32
	latches      [3]packet
	exIdx        int8 // stage-pointer positions within latches
	memIdx       int8
	wbIdx        int8
	memLane      int
	memStarted   bool
	cycle        int64
	halted       bool
	wedged       bool
	wedgePC      uint32
	pathUse      [2][2][fault.NumPaths]int64
	icu          icu.State
}

// latchIdx locates a rotating stage pointer within the latch array.
func (c *Core) latchIdx(p *packet) int8 {
	for i := range c.latches {
		if p == &c.latches[i] {
			return int8(i)
		}
	}
	panic("cpu: stage pointer outside latch array")
}

// Snapshot captures the core's dynamic state mid-run.
func (c *Core) Snapshot() *CoreState {
	return &CoreState{
		regs:         c.regs,
		counters:     c.counters,
		fetchAddr:    c.fetchAddr,
		skipBelow:    c.skipBelow,
		fetchBusy:    c.fetchBusy,
		discardFetch: c.discardFetch,
		fetchQ:       append([]fetched(nil), c.fetchQ...),
		nextIssuePC:  c.nextIssuePC,
		latches:      c.latches,
		exIdx:        c.latchIdx(c.exPkt),
		memIdx:       c.latchIdx(c.memPkt),
		wbIdx:        c.latchIdx(c.wbPkt),
		memLane:      c.memLane,
		memStarted:   c.memStarted,
		cycle:        c.cycle,
		halted:       c.halted,
		wedged:       c.wedged,
		wedgePC:      c.wedgePC,
		pathUse:      c.PathUse,
		icu:          c.ICU.Snapshot(),
	}
}

// Restore rewinds the core (and its ICU) to a snapshot, keeping the current
// plane and attachments. The in-flight fetch or data access a busy client
// may have had at the snapshot lives in the memory clients and bus — the
// SoC-level restore covers those.
func (c *Core) Restore(st *CoreState) {
	c.regs = st.regs
	c.counters = st.counters
	c.fetchAddr = st.fetchAddr
	c.skipBelow = st.skipBelow
	c.fetchBusy = st.fetchBusy
	c.discardFetch = st.discardFetch
	c.fetchQ = append(c.fetchQ[:0], st.fetchQ...)
	c.nextIssuePC = st.nextIssuePC
	c.latches = st.latches
	c.exPkt = &c.latches[st.exIdx]
	c.memPkt = &c.latches[st.memIdx]
	c.wbPkt = &c.latches[st.wbIdx]
	c.memLane = st.memLane
	c.memStarted = st.memStarted
	c.cycle = st.cycle
	c.halted = st.halted
	c.wedged = st.wedged
	c.wedgePC = st.wedgePC
	c.PathUse = st.pathUse
	c.ICU.Restore(st.icu)
}

// SetPlane swaps the fault-injection plane of the core and its ICU (nil
// restores fault-free). Combined with Reset this lets one long-lived core
// serve many fault runs without being rebuilt.
func (c *Core) SetPlane(plane fault.Plane) {
	if plane == nil {
		plane = fault.None
	}
	c.plane = plane
	c.cntIncClean = !fault.AffectsCounterInc(plane)
	c.ICU.SetPlane(plane)
}

// SetTracer attaches fn (nil detaches).
func (c *Core) SetTracer(fn TraceFn) { c.trace = fn }

// SetStoreObserver attaches fn to the MEM stage's store completion (nil
// detaches).
func (c *Core) SetStoreObserver(fn StoreFn) { c.storeObs = fn }

// SetCoverage attaches a coverage map to the core and its ICU (nil
// detaches). Like tracers and store observers, the attachment survives
// Reset.
func (c *Core) SetCoverage(m *coverage.Map) {
	c.cov = m
	c.ICU.SetCoverage(m)
}

// SetInjector attaches an interrupt-plan injector (nil detaches). The
// attachment survives Reset; the injector's own delivery cursor rewinds
// with the core.
func (c *Core) SetInjector(in *archint.Injector) { c.inj = in }

// Config returns the core's configuration.
func (c *Core) Config() Config { return c.cfg }

// Halted reports whether the core has executed HALT (or wedged).
func (c *Core) Halted() bool { return c.halted }

// Wedged reports whether the core stopped on an undecodable instruction.
func (c *Core) Wedged() bool { return c.wedged }

// Done reports whether the core is halted and the pipeline has drained.
func (c *Core) Done() bool {
	return c.halted && !c.exPkt.any() && !c.memPkt.any() && !c.wbPkt.any()
}

// Reg returns architectural register r.
func (c *Core) Reg(r uint8) uint32 { return c.regs[r&31] }

// SetReg writes architectural register r (test harness use).
func (c *Core) SetReg(r uint8, v uint32) {
	if r&31 != 0 {
		c.regs[r&31] = v
	}
}

// Counter returns the raw value of performance counter id (fault.Cnt*).
func (c *Core) Counter(id int) uint64 { return c.counters[id] }

// Cycle returns the core-local cycle count.
func (c *Core) Cycle() int64 { return c.cycle }

func (c *Core) emit(ev TraceEvent) {
	if c.trace != nil {
		ev.Cycle = c.cycle
		c.trace(ev)
	}
}

// bump increments performance counter id through the fault plane's
// increment gate.
func (c *Core) bump(id int, by uint64) {
	if c.cntIncClean || c.plane.CounterInc(uint8(id), true) {
		c.counters[id] += by
	}
}

// redirect flushes the front end and restarts fetch at target.
func (c *Core) redirect(target uint32) {
	target &^= 3
	c.fetchQ = c.fetchQ[:0]
	c.fetchAddr = target &^ 7
	c.skipBelow = target
	c.nextIssuePC = target
	if c.fetchBusy {
		// Retract the wrong-path fetch if its bus request has not been
		// granted; an in-service transfer must drain and be discarded.
		if c.imem.TryAbort() {
			c.fetchBusy = false
		} else {
			c.discardFetch = true
		}
	}
	c.emit(TraceEvent{Kind: "redirect", PC: target})
}

// Step advances the core one clock cycle. The SoC must step the bus first
// so in-flight memory transactions complete before the pipeline observes
// them.
func (c *Core) Step() {
	if c.Done() && !c.fetchBusy {
		return
	}
	c.cycle++
	c.bump(fault.CntCycle, 1)

	// WB: retire (reads the MEM/WB latch, mutates only the register file).
	retired := 0
	for lane := 0; lane < 2; lane++ {
		u := &c.wbPkt[lane]
		if !u.valid {
			continue
		}
		c.writeBack(u)
		retired++
		c.bump(fault.CntInstret, 1)
		c.emit(TraceEvent{Kind: "wb", Lane: lane, PC: u.pc, Inst: u.inst})
	}

	// Snapshot the EX/MEM results: stepMEM fills load results in place,
	// and the forwarding network below must observe the pre-cycle values.
	// The result words are the only fields stepMEM mutates that the
	// forwarding network reads, so nothing else needs a copy.
	memRes := [2]uint64{c.memPkt[0].result, c.memPkt[1].result}

	// MEM: progress the packet's memory accesses.
	memDone := c.stepMEM()

	if memDone {
		// EX: execute the packet entering MEM next cycle, reading
		// forwarding sources from the pre-cycle MEM/WB latches.
		c.stepEX(c.exPkt, c.memPkt, &memRes, c.wbPkt)

		// Advance latches by rotating the packet buffers: the retired
		// MEM/WB packet becomes the cleared new issue slot.
		spare := c.wbPkt
		c.wbPkt = c.memPkt
		c.memPkt = c.exPkt
		*spare = packet{}
		c.exPkt = spare
		c.memLane = -1
		c.memStarted = false

		// Issue: form the next packet (may be squashed by redirects that
		// stepEX performed, since redirect cleared the fetch queue).
		// c.memPkt now holds the packet that was in EX this cycle — the
		// load-use hazard source.
		c.stepIssue(c.memPkt)
	} else {
		*c.wbPkt = packet{}
		if c.exPkt.any() || c.memPkt.any() {
			c.bump(fault.CntMemStall, 1)
			c.cov.Inc(coverage.FeatStallMem)
			c.emit(TraceEvent{Kind: "stall", Why: "mem"})
		}
	}

	// Fetch: keep the queue full.
	c.stepFetch()

	// External interrupt events matured by this cycle's retirements, then
	// the recognition pipeline.
	if c.inj != nil {
		c.inj.Tick(retired, c.ICU.Raise)
	}
	c.ICU.Tick(retired)
}

func (c *Core) writeBack(u *uop) {
	if !u.writes || u.rd == 0 {
		return
	}
	c.regs[u.rd] = uint32(u.result)
	if u.isPair {
		hi := (u.rd + 1) & 31
		if hi != 0 {
			c.regs[hi] = uint32(u.result >> 32)
		}
	}
}

// stepMEM advances the MEM stage. It returns true when the packet in MEM
// (possibly empty) has finished all its memory work and the pipeline may
// advance.
func (c *Core) stepMEM() bool {
	for {
		if c.memLane < 0 {
			// Find the next lane with outstanding memory work.
			next := -1
			for lane := 0; lane < 2; lane++ {
				u := &c.memPkt[lane]
				if u.valid && (u.isLoad || u.isStore) && u.memSize != 0 {
					next = lane
					break
				}
			}
			if next < 0 {
				return true
			}
			c.memLane = next
			c.memStarted = false
		}
		u := &c.memPkt[c.memLane]
		if !c.memStarted {
			c.dmem.Start(u.memAddr, u.isStore, u.storeVal, u.memSize)
			c.memStarted = true
		}
		done, data := c.dmem.Tick()
		if !done {
			return false
		}
		if u.isLoad {
			u.result = c.loadExtend(u.inst.Op, data)
		}
		if u.isStore && c.storeObs != nil {
			c.storeObs(u.memAddr, u.storeVal, u.memSize)
		}
		if c.cov != nil {
			c.cov.Inc(memCovFeat(u.isStore, u.memSize))
		}
		u.memSize = 0 // mark this lane's access complete
		c.memLane = -1
		c.memStarted = false
		c.emit(TraceEvent{Kind: "mem", Lane: 0, PC: u.pc, Inst: u.inst})
	}
}

// memCovFeat maps a completed data-side access onto its coverage feature.
func memCovFeat(store bool, size int) coverage.Feature {
	switch {
	case store && size == 1:
		return coverage.FeatStoreByte
	case store && size == 8:
		return coverage.FeatStorePair
	case store:
		return coverage.FeatStoreWord
	case size == 1:
		return coverage.FeatLoadByte
	case size == 8:
		return coverage.FeatLoadPair
	}
	return coverage.FeatLoadWord
}

func (c *Core) loadExtend(op isa.Op, data uint64) uint64 {
	switch op {
	case isa.OpLB:
		return uint64(uint32(int32(int8(uint8(data)))))
	case isa.OpLBU:
		return data & 0xFF
	case isa.OpLW:
		return data & 0xFFFFFFFF
	case isa.OpLWP:
		return data
	}
	return data
}

// String summarises the core state (debugging aid).
func (c *Core) String() string {
	return fmt.Sprintf("core%d cycle=%d halted=%v wedged=%v nextPC=%#x qlen=%d",
		c.cfg.CoreID, c.cycle, c.halted, c.wedged, c.nextIssuePC, len(c.fetchQ))
}
