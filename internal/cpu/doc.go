// Package cpu implements the dual-issue in-order 5-stage pipeline of the
// simulated automotive cores (two 32-bit cores A/B and one 64-bit-capable
// core C). The model is cycle-accurate at the architectural-signal level:
// instruction fetch through a pluggable memory client (flash line buffer,
// I-cache or ITCM), dual-issue packet formation with a hazard detection
// control unit, a full forwarding network with inter-packet and
// intra-packet (cascade) paths, performance counters, and synchronous
// imprecise interrupts via the ICU. Every signal the paper's self-test
// routines target is routed through a fault.Plane so stuck-at faults can be
// injected.
package cpu
