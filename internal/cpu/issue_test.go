package cpu

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/isa"
)

// White-box tests of the issue rules: packet formation is where the HDCU
// lives, so each rule gets pinned independently of full-program behaviour.

func issueProbe(t *testing.T, first, second isa.Inst, exLoad bool) (dual bool, casA, casB bool) {
	t.Helper()
	c := New(CoreC(), nil, nil, nil, nil)
	var exOld packet
	if exLoad {
		exOld[0] = uop{valid: true, inst: isa.Inst{Op: isa.OpLW, Rd: 6}, rd: 6,
			writes: true, isLoad: true, memSize: 4}
	}
	_ = first
	ok, a, b := c.canDualIssue(&exOld, first, fetched{inst: second})
	return ok, a, b
}

func TestIssueRules(t *testing.T) {
	alu := func(rd, rs1, rs2 uint8) isa.Inst {
		return isa.Inst{Op: isa.OpADD, Rd: rd, Rs1: rs1, Rs2: rs2}
	}
	load := func(rd uint8) isa.Inst { return isa.Inst{Op: isa.OpLW, Rd: rd, Rs1: 29} }
	store := func(rs2 uint8) isa.Inst { return isa.Inst{Op: isa.OpSW, Rs2: rs2, Rs1: 29} }

	cases := []struct {
		name          string
		first, second isa.Inst
		exLoad        bool
		wantDual      bool
		wantCasA      bool
	}{
		{"independent ALU pair", alu(1, 2, 3), alu(4, 5, 6), false, true, false},
		{"RAW cascade", alu(1, 2, 3), alu(4, 1, 5), false, true, true},
		{"RAW cascade from load forbidden", load(1), alu(4, 1, 5), false, false, false},
		{"pure WAW splits", alu(1, 2, 3), alu(1, 4, 5), false, false, false},
		{"RAW+WAW cascades (lui/ori shape)", alu(1, 2, 3), alu(1, 1, 5), false, true, true},
		{"two memory ops split", load(1), store(2), false, false, false},
		{"load + ALU pairs", load(1), alu(4, 5, 6), false, true, false},
		{"branch second splits", alu(1, 2, 3), isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: 8}, false, false, false},
		{"system second splits", alu(1, 2, 3), isa.Inst{Op: isa.OpCSRR, Rd: 4}, false, false, false},
		{"pair op second splits", alu(1, 2, 3), isa.Inst{Op: isa.OpADDP, Rd: 4, Rs1: 6, Rs2: 8}, false, false, false},
		{"load-use on second delays it", alu(1, 2, 3), alu(4, 6, 5), true, false, false},
		{"r0 RAW is no dependency", alu(0, 2, 3), alu(4, 0, 5), false, true, false},
	}
	for _, c := range cases {
		dual, casA, _ := issueProbe(t, c.first, c.second, c.exLoad)
		if dual != c.wantDual {
			t.Errorf("%s: dual = %v, want %v", c.name, dual, c.wantDual)
		}
		if casA != c.wantCasA {
			t.Errorf("%s: cascade = %v, want %v", c.name, casA, c.wantCasA)
		}
	}
}

func TestWidthHazardRules(t *testing.T) {
	c := New(CoreC(), nil, nil, nil, nil)
	pairProducer := packet{uop{valid: true, writes: true, rd: 4, isPair: true,
		inst: isa.Inst{Op: isa.OpADDP, Rd: 4}}}
	singleProducer := packet{uop{valid: true, writes: true, rd: 4,
		inst: isa.Inst{Op: isa.OpADD, Rd: 4}}}

	cases := []struct {
		name string
		pkt  packet
		inst isa.Inst
		want bool
	}{
		{"single->pair low overlap", singleProducer,
			isa.Inst{Op: isa.OpADDP, Rd: 8, Rs1: 4, Rs2: 10}, true},
		{"single->pair high overlap", singleProducer,
			isa.Inst{Op: isa.OpADDP, Rd: 8, Rs1: 3, Rs2: 10}, true},
		{"pair->single high word", pairProducer,
			isa.Inst{Op: isa.OpADD, Rd: 8, Rs1: 5, Rs2: 10}, true},
		{"pair->single base word forwards fine", pairProducer,
			isa.Inst{Op: isa.OpADD, Rd: 8, Rs1: 4, Rs2: 10}, false},
		{"pair->pair aligned forwards fine", pairProducer,
			isa.Inst{Op: isa.OpADDP, Rd: 8, Rs1: 4, Rs2: 10}, false},
		{"pair->pair offset overlap", pairProducer,
			isa.Inst{Op: isa.OpADDP, Rd: 8, Rs1: 5, Rs2: 10}, true},
		{"pair->pair offset overlap below", pairProducer,
			isa.Inst{Op: isa.OpADDP, Rd: 8, Rs1: 3, Rs2: 10}, true},
		{"unrelated registers", singleProducer,
			isa.Inst{Op: isa.OpADD, Rd: 8, Rs1: 9, Rs2: 10}, false},
	}
	for _, cse := range cases {
		if got := c.widthHazard(&cse.pkt, cse.inst); got != cse.want {
			t.Errorf("%s: widthHazard = %v, want %v", cse.name, got, cse.want)
		}
	}
}

func TestPathUseAccounting(t *testing.T) {
	r := newTCMRig(t, CoreA(), nil, `
		addi r1, r0, 3
		add  r2, r1, r1    ; cascade x2
		nop
		add  r3, r2, r2    ; EXL? distance depends on pairing; just run
		halt
	`)
	r.run(t, 200)
	var total int64
	use := r.core.PathUse
	for lane := 0; lane < 2; lane++ {
		for op := 0; op < 2; op++ {
			for p := 0; p < fault.NumPaths; p++ {
				if use[lane][op][p] < 0 {
					t.Fatal("negative path count")
				}
				total += use[lane][op][p]
			}
		}
	}
	if total == 0 {
		t.Error("no operand resolutions recorded")
	}
	if use[1][0][fault.PathCascade] == 0 {
		t.Error("cascade not recorded")
	}
}

func TestIssued2CountExact(t *testing.T) {
	// Four independent pairable ALU instructions after a serialising CSR
	// read: exactly two dual-issue packets.
	r := newTCMRig(t, CoreA(), nil, `
		csrr r20, issued2
		add  r1, r0, r0
		add  r2, r0, r0
		add  r3, r0, r0
		add  r4, r0, r0
		csrr r21, issued2
		sub  r22, r21, r20
		halt
	`)
	r.run(t, 200)
	if got := r.core.Reg(22); got != 2 {
		t.Errorf("issued2 delta = %d, want 2", got)
	}
}

func TestHazStallCountExact(t *testing.T) {
	// One genuine load-use: exactly one hazard bubble.
	r := newTCMRig(t, CoreA(), nil, `
		li   r29, 0x30000000
		csrr r20, hazstall
		lw   r1, 0(r29)
		add  r2, r1, r1
		csrr r21, hazstall
		sub  r22, r21, r20
		halt
	`)
	r.run(t, 200)
	if got := r.core.Reg(22); got != 1 {
		t.Errorf("hazstall delta = %d, want 1", got)
	}
}
