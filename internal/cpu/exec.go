package cpu

import (
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/isa"
)

// openBusValue is what a forwarding mux delivers when a (faulty) select
// code points at a source that does not exist for this lane.
const openBusValue = ^uint64(0)

// stepEX executes the packet in the EX stage. memOld and wbOld are the
// pre-cycle EX/MEM and MEM/WB latches, i.e. the packets issued one and two
// packets earlier — the producers the forwarding network can bypass from.
// memRes carries memOld's pre-MEM-stage result words (the MEM stage fills
// load results into the latch in place before EX runs).
func (c *Core) stepEX(pkt, memOld *packet, memRes *[2]uint64, wbOld *packet) {
	var casVal uint64 // lane 0 result, input to the cascade path
	for lane := 0; lane < 2; lane++ {
		u := &pkt[lane]
		if !u.valid {
			continue
		}
		a, b := c.readOperands(lane, u, memOld, memRes, wbOld, casVal)
		c.execute(u, a, b)
		if lane == 0 {
			casVal = u.result
		}
		c.emit(TraceEvent{Kind: "ex", Lane: lane, PC: u.pc, Inst: u.inst, Result: u.result})
	}
}

// readOperands resolves both source operands of u through the forwarding
// network.
func (c *Core) readOperands(lane int, u *uop, memOld *packet, memRes *[2]uint64, wbOld *packet, casVal uint64) (a, b uint64) {
	srcA, useA, srcB, useB := u.inst.SrcRegs()
	pairA, pairB := pairOperands(u.inst)
	if useA {
		a = c.forward(uint8(lane), 0, srcA, pairA, u, memOld, memRes, wbOld, u.cascadeA, casVal)
	}
	if useB {
		b = c.forward(uint8(lane), 1, srcB, pairB, u, memOld, memRes, wbOld, u.cascadeB, casVal)
	}
	return a, b
}

// forward selects and reads one operand through the forwarding multiplexer
// for (lane, operand). Selection priority follows program-order recency:
// cascade (same packet) > EX/MEM lane1 > EX/MEM lane0 > MEM/WB lane1 >
// MEM/WB lane0 > register file. Loads in EX/MEM cannot forward (their data
// arrives at the end of MEM); the hazard unit prevents that case with a
// stall, so under fault-free operation it never arises here.
func (c *Core) forward(lane, operand, src uint8, pairOp bool, u *uop, memOld *packet, memRes *[2]uint64, wbOld *packet, cascade bool, casVal uint64) uint64 {
	sel := uint8(fault.PathRF)
	switch {
	case cascade && lane == 1:
		sel = fault.PathCascade
	case c.fwdMatch(fault.PathEXL1, lane, operand, &memOld[1], src, pairOp, false):
		sel = fault.PathEXL1
	case c.fwdMatch(fault.PathEXL0, lane, operand, &memOld[0], src, pairOp, false):
		sel = fault.PathEXL0
	case c.fwdMatch(fault.PathMEML1, lane, operand, &wbOld[1], src, pairOp, true):
		sel = fault.PathMEML1
	case c.fwdMatch(fault.PathMEML0, lane, operand, &wbOld[0], src, pairOp, true):
		sel = fault.PathMEML0
	}
	sel = c.plane.MuxSel(lane, operand, sel)

	var v uint64
	switch sel {
	case fault.PathRF:
		v = c.readRF(src, pairOp)
	case fault.PathEXL0:
		v = memRes[0]
	case fault.PathEXL1:
		v = memRes[1]
	case fault.PathMEML0:
		v = wbOld[0].result
	case fault.PathMEML1:
		v = wbOld[1].result
	case fault.PathCascade:
		if lane == 1 {
			v = casVal
		} else {
			v = openBusValue
		}
	default:
		v = openBusValue
	}
	v = c.plane.MuxData(lane, operand, sel, v)
	if sel < fault.NumPaths {
		c.PathUse[lane][operand][sel]++
		c.cov.Inc(coverage.FwdFeat(lane, operand, sel))
	}
	if sel != fault.PathRF {
		c.emit(TraceEvent{
			Kind: "fwd", Lane: int(lane), PC: u.pc, Inst: u.inst,
			Operand: int(operand), Path: int(sel),
		})
	}
	return v
}

// fwdMatch decides whether producer p can feed (lane, operand) for source
// register src via the given path. loadsOK is true for MEM/WB paths where
// load data has arrived. Width rules: a 32-bit producer can only feed a
// 32-bit operand; a pair producer can feed a pair operand (full 64-bit
// bypass) or a 32-bit operand reading its *base* register (low word). All
// other overlaps are prevented by the issue-stage width hazard stall and
// resolve through the register file.
func (c *Core) fwdMatch(path, lane, operand uint8, p *uop, src uint8, pairOp, loadsOK bool) bool {
	if !p.valid || !p.writes || p.rd == 0 {
		return false
	}
	if p.isLoad && !loadsOK {
		return false
	}
	if pairOp != p.isPair && pairOp {
		return false // 32-bit producer cannot fill a 64-bit operand
	}
	return c.plane.CmpEq(fault.CmpFwd(path, lane, operand), p.rd, src)
}

func (c *Core) readRF(src uint8, pair bool) uint64 {
	v := uint64(c.regs[src])
	if pair {
		v |= uint64(c.regs[(src+1)&31]) << 32
	}
	return v
}

// execute computes u's result from operand values a and b, raising ICU
// events and redirecting control flow as needed.
func (c *Core) execute(u *uop, a, b uint64) {
	op := u.inst.Op
	imm := u.inst.Imm
	a32, b32 := uint32(a), uint32(b)

	if op.IsPair() && !c.cfg.Has64 {
		// Cores A/B do not implement the 64-bit extension.
		c.wedged = true
		c.wedgePC = u.pc
		c.halted = true
		c.cov.Inc(coverage.FeatWedge)
		return
	}

	switch op {
	case isa.OpADD:
		u.result = uint64(a32 + b32)
	case isa.OpSUB:
		u.result = uint64(a32 - b32)
	case isa.OpAND:
		u.result = uint64(a32 & b32)
	case isa.OpOR:
		u.result = uint64(a32 | b32)
	case isa.OpXOR:
		u.result = uint64(a32 ^ b32)
	case isa.OpNOR:
		u.result = uint64(^(a32 | b32))
	case isa.OpSLT:
		u.result = boolTo64(int32(a32) < int32(b32))
	case isa.OpSLTU:
		u.result = boolTo64(a32 < b32)
	case isa.OpSLLV:
		u.result = uint64(a32 << (b32 & 31))
	case isa.OpSRLV:
		u.result = uint64(a32 >> (b32 & 31))
	case isa.OpSRAV:
		u.result = uint64(uint32(int32(a32) >> (b32 & 31)))
	case isa.OpMUL:
		u.result = uint64(a32 * b32)
	case isa.OpSLL:
		u.result = uint64(a32 << uint32(imm&31))
	case isa.OpSRL:
		u.result = uint64(a32 >> uint32(imm&31))
	case isa.OpSRA:
		u.result = uint64(uint32(int32(a32) >> uint32(imm&31)))

	case isa.OpADDV:
		sum := a32 + b32
		u.result = uint64(sum)
		if (a32^sum)&(b32^sum)&0x8000_0000 != 0 {
			c.ICU.Raise(fault.EvOverflowAdd)
			c.cov.Inc(coverage.FeatTrapOverflowAdd)
		}
	case isa.OpSUBV:
		diff := a32 - b32
		u.result = uint64(diff)
		if (a32^b32)&(a32^diff)&0x8000_0000 != 0 {
			c.ICU.Raise(fault.EvOverflowSub)
			c.cov.Inc(coverage.FeatTrapOverflowSub)
		}
	case isa.OpMULV:
		prod := int64(int32(a32)) * int64(int32(b32))
		u.result = uint64(uint32(prod))
		if prod != int64(int32(prod)) {
			c.ICU.Raise(fault.EvOverflowMul)
			c.cov.Inc(coverage.FeatTrapOverflowMul)
		}
	case isa.OpDIVV:
		if b32 == 0 {
			u.result = 0
			c.ICU.Raise(fault.EvDivZero)
			c.cov.Inc(coverage.FeatTrapDivZero)
		} else if a32 == 0x8000_0000 && b32 == 0xFFFF_FFFF {
			u.result = uint64(a32) // overflow case: saturate like the HW
		} else {
			u.result = uint64(uint32(int32(a32) / int32(b32)))
		}

	case isa.OpADDP:
		u.result = a + b
	case isa.OpSUBP:
		u.result = a - b
	case isa.OpANDP:
		u.result = a & b
	case isa.OpORP:
		u.result = a | b
	case isa.OpXORP:
		u.result = a ^ b

	case isa.OpADDI:
		u.result = uint64(a32 + uint32(imm))
	case isa.OpANDI:
		u.result = uint64(a32 & uint32(imm))
	case isa.OpORI:
		u.result = uint64(a32 | uint32(imm))
	case isa.OpXORI:
		u.result = uint64(a32 ^ uint32(imm))
	case isa.OpSLTI:
		u.result = boolTo64(int32(a32) < imm)
	case isa.OpLUI:
		u.result = uint64(uint32(imm) << 16)

	case isa.OpLW, isa.OpLB, isa.OpLBU, isa.OpLWP:
		u.memAddr = a32 + uint32(imm)
	case isa.OpSW, isa.OpSB, isa.OpSWP:
		u.memAddr = a32 + uint32(imm)
		u.storeVal = b

	case isa.OpBEQ:
		c.branch(u, a32 == b32)
	case isa.OpBNE:
		c.branch(u, a32 != b32)
	case isa.OpBLT:
		c.branch(u, int32(a32) < int32(b32))
	case isa.OpBGE:
		c.branch(u, int32(a32) >= int32(b32))

	case isa.OpJ:
		c.cov.Inc(coverage.FeatJump)
		c.redirect(u.pc + 4 + uint32(imm))
	case isa.OpJAL:
		u.result = uint64(u.pc + 4)
		c.cov.Inc(coverage.FeatJump)
		c.redirect(u.pc + 4 + uint32(imm))
	case isa.OpJR:
		c.cov.Inc(coverage.FeatJump)
		c.redirect(a32)
	case isa.OpJALR:
		u.result = uint64(u.pc + 4)
		c.cov.Inc(coverage.FeatJump)
		c.redirect(a32)
	case isa.OpRFE:
		c.cov.Inc(coverage.FeatJump)
		c.redirect(c.ICU.ReturnFromException())

	case isa.OpCSRR:
		u.result = uint64(c.readCSR(imm))
	case isa.OpCSRW:
		c.writeCSR(imm, a32)
	case isa.OpCINV:
		c.invalidate(imm)
	case isa.OpHALT:
		c.halted = true
	case isa.OpNOP:
		// nothing
	default:
		// Unreachable for decoded instructions; treat as wedge.
		c.wedged = true
		c.wedgePC = u.pc
		c.halted = true
		c.cov.Inc(coverage.FeatWedge)
	}
}

func (c *Core) branch(u *uop, taken bool) {
	if taken {
		c.cov.Inc(coverage.FeatBranchTaken)
		c.redirect(u.pc + 4 + uint32(u.inst.Imm))
	} else {
		c.cov.Inc(coverage.FeatBranchNotTaken)
	}
}

func (c *Core) readCSR(n int32) uint32 {
	switch n {
	case isa.CsrCycle, isa.CsrInstret, isa.CsrIFStall,
		isa.CsrMemStall, isa.CsrHazStall, isa.CsrIssued2:
		return c.plane.CounterRead(uint8(n), uint32(c.counters[n]))
	case isa.CsrICause:
		return c.ICU.Cause()
	case isa.CsrIDist:
		return c.ICU.Dist()
	case isa.CsrIEPC:
		return c.ICU.EPC()
	case isa.CsrIEnable:
		return c.ICU.Enable()
	case isa.CsrIPend:
		return c.ICU.PendingMask()
	case isa.CsrIVec:
		return c.ICU.Vector()
	case isa.CsrCoreID:
		return uint32(c.cfg.CoreID)
	}
	return 0
}

func (c *Core) writeCSR(n int32, v uint32) {
	switch n {
	case isa.CsrIEnable:
		c.ICU.SetEnable(v)
	case isa.CsrIVec:
		c.ICU.SetVector(v)
	case isa.CsrIPend:
		c.ICU.ClearPending(v)
	}
}

func boolTo64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
