package fault

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// syntheticRun mirrors TestSimulateSyntheticCampaign's runner: faults on
// lane-0 operand-A mux data lines perturb the signature, all else is
// silent.
func syntheticRun(p Plane) (uint32, bool) {
	v := p.MuxData(0, 0, PathEXL0, 0x1234)
	v = p.MuxData(0, 0, PathEXL1, v)
	v = p.MuxData(0, 0, PathMEML0, v)
	v = p.MuxData(0, 0, PathMEML1, v)
	return uint32(v), true
}

func syntheticSites() []Site {
	return ForwardingLogic(ListOptions{DataBits: 32, BitStep: 8})
}

func TestSimulatePanicIsolation(t *testing.T) {
	sites := syntheticSites()
	// The runner panics on exactly one site: lane 1 opB path 5 bit 0 SA1.
	bad := Site{Unit: UnitFwd, Signal: SigMuxData, Lane: 1, Operand: 1,
		Path: PathCascade, Bit: 0, Stuck: 1}
	badIdx := -1
	for i, s := range sites {
		if s == bad {
			badIdx = i
		}
	}
	if badIdx < 0 {
		t.Fatal("panic site not in universe")
	}
	run := func(p Plane) (uint32, bool) {
		if f, ok := p.(*Single); ok && f.S == bad {
			panic("injected simulator defect")
		}
		return syntheticRun(p)
	}
	rep := Simulate(sites, run, 4)
	clean := Simulate(sites, syntheticRun, 4)

	if rep.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", rep.Panics)
	}
	got := rep.Results[badIdx]
	want := SiteResult{Site: bad, Detected: true, Signature: 0, Crashed: true, Panicked: true}
	if got != want {
		t.Errorf("panicked verdict %+v, want %+v", got, want)
	}
	// Every other verdict is exactly the clean campaign's.
	for i := range rep.Results {
		if i == badIdx {
			continue
		}
		if rep.Results[i] != clean.Results[i] {
			t.Fatalf("site %d verdict changed by unrelated panic: %+v vs %+v",
				i, rep.Results[i], clean.Results[i])
		}
	}
	if len(rep.Anomalies) != 1 {
		t.Fatalf("anomalies = %d, want 1", len(rep.Anomalies))
	}
	a := rep.Anomalies[0]
	if a.Index != badIdx || a.Site != bad || !strings.Contains(a.Msg, "injected simulator defect") || a.Stack == "" {
		t.Errorf("anomaly %+v lacks index/site/message/stack", a)
	}
	if !strings.Contains(rep.String(), "panicked") {
		t.Errorf("report string hides panics: %q", rep.String())
	}
}

func TestSimulateGoldenPanicSurvives(t *testing.T) {
	sites := syntheticSites()[:8]
	run := func(p Plane) (uint32, bool) {
		if p == None {
			panic("golden run defect")
		}
		return syntheticRun(p)
	}
	rep := Simulate(sites, run, 2)
	if rep.GoldenOK {
		t.Error("panicked golden run reported OK")
	}
	if len(rep.Results) != len(sites) {
		t.Error("campaign did not complete")
	}
	if len(rep.Anomalies) == 0 || rep.Anomalies[0].Index != -1 {
		t.Errorf("golden anomaly missing: %+v", rep.Anomalies)
	}
}

func testHeader(sites []Site) JournalHeader {
	return JournalHeader{
		Program:  "prog-hash",
		Universe: HashSites(sites),
		Env:      "env-hash",
		Sites:    len(sites),
	}
}

// journalCampaign runs the synthetic campaign against the journal at path,
// tracking which site indices were actually executed (vs settled from the
// journal).
func journalCampaign(t *testing.T, path string, sites []Site) (Report, map[int]bool) {
	t.Helper()
	j, err := ResumeJournal(path, testHeader(sites))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	var mu sync.Mutex
	ran := map[int]bool{}
	idxOf := map[Site]int{}
	for i, s := range sites {
		idxOf[s] = i
	}
	run := func(p Plane) (uint32, bool) {
		if f, ok := p.(*Single); ok {
			mu.Lock()
			ran[idxOf[f.S]] = true
			mu.Unlock()
		}
		return syntheticRun(p)
	}
	rep, err := SimulateOpts(sites, []RunFunc{run, run}, SimOptions{Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	return rep, ran
}

func TestJournalResumeBitIdenticalAfterTruncation(t *testing.T) {
	sites := syntheticSites()
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.journal")
	killedPath := filepath.Join(dir, "killed.journal")

	full, _ := journalCampaign(t, fullPath, sites)

	// Forge the killed journal: the full journal cut mid-append — a prefix
	// of whole lines plus one torn line.
	blob, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(blob), "\n")
	if len(lines) < 10 {
		t.Fatalf("journal too short to truncate (%d lines)", len(lines))
	}
	partial := strings.Join(lines[:7], "") + lines[7][:len(lines[7])/2]
	if err := os.WriteFile(killedPath, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, ran := journalCampaign(t, killedPath, sites)
	// The five settled site verdicts (lines 2..6 after header+golden) must
	// not have been re-run...
	settled := 0
	for i := range sites {
		if !ran[i] {
			settled++
		}
	}
	if settled != 5 {
		t.Errorf("resume re-ran settled sites: %d skipped, want 5", settled)
	}
	// ...and the resumed report is bit-identical to the uninterrupted one.
	if !reflect.DeepEqual(full, resumed) {
		t.Fatalf("resumed report differs from uninterrupted:\nfull    %+v\nresumed %+v", full, resumed)
	}

	// A second resume settles everything from the journal and re-runs
	// nothing.
	again, ran := journalCampaign(t, killedPath, sites)
	if len(ran) != 0 {
		t.Errorf("full journal still re-ran %d sites", len(ran))
	}
	if !reflect.DeepEqual(full, again) {
		t.Fatal("fully journaled report differs from uninterrupted")
	}
}

func TestJournalTruncatedFinalLineDropped(t *testing.T) {
	sites := syntheticSites()[:6]
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")
	journalCampaign(t, path, sites)
	blob, _ := os.ReadFile(path)
	os.WriteFile(path, blob[:len(blob)-3], 0o644) // tear the last line

	j, err := ResumeJournal(path, testHeader(sites))
	if err != nil {
		t.Fatalf("torn trailing line refused: %v", err)
	}
	defer j.Close()
	if j.Dropped() != 1 {
		t.Errorf("Dropped = %d, want 1", j.Dropped())
	}
	if j.SettledCount() != len(sites)-1 {
		t.Errorf("settled %d of %d after tear", j.SettledCount(), len(sites))
	}
}

func TestJournalMidFileCorruptionRefused(t *testing.T) {
	sites := syntheticSites()[:6]
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")
	journalCampaign(t, path, sites)
	blob, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(blob), "\n")
	lines[2] = "{torn mid-file garbage\n"
	os.WriteFile(path, []byte(strings.Join(lines, "")), 0o644)

	if _, err := ResumeJournal(path, testHeader(sites)); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestJournalDuplicateSiteEntries(t *testing.T) {
	sites := syntheticSites()[:6]
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")
	rep, _ := journalCampaign(t, path, sites)

	blob, _ := os.ReadFile(path)
	lines := strings.SplitAfter(string(blob), "\n")
	var siteLine string
	for _, ln := range lines {
		if strings.Contains(ln, `"kind":"site"`) {
			siteLine = ln
			break
		}
	}
	if siteLine == "" {
		t.Fatal("no site line in journal")
	}

	// An identical duplicate (a retried append) is tolerated.
	os.WriteFile(path, append(blob, siteLine...), 0o644)
	dup, ran := journalCampaign(t, path, sites)
	if len(ran) != 0 || !reflect.DeepEqual(rep, dup) {
		t.Error("identical duplicate not folded cleanly")
	}

	// A conflicting duplicate is refused.
	conflict := strings.Replace(siteLine, `"sig":`, `"detected":true,"sig":9`, 1)
	if conflict == siteLine {
		t.Fatal("failed to forge conflicting line")
	}
	os.WriteFile(path, append(blob, conflict...), 0o644)
	if _, err := ResumeJournal(path, testHeader(sites)); err == nil {
		t.Fatal("conflicting duplicate silently merged")
	} else if !strings.Contains(err.Error(), "conflicting duplicate") {
		t.Errorf("unhelpful error: %v", err)
	}
}

func TestJournalHeaderMismatchRefused(t *testing.T) {
	sites := syntheticSites()[:6]
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")
	journalCampaign(t, path, sites)

	h := testHeader(sites)
	h.Program = "different-program"
	if _, err := ResumeJournal(path, h); err == nil {
		t.Fatal("program-hash mismatch silently accepted")
	} else if !strings.Contains(err.Error(), "different campaign") {
		t.Errorf("unhelpful error: %v", err)
	}

	h = testHeader(sites)
	h.Universe = "0000000000000000"
	if _, err := ResumeJournal(path, h); err == nil {
		t.Fatal("universe mismatch silently accepted")
	}
}

func TestJournalGoldenMismatchRefused(t *testing.T) {
	sites := syntheticSites()[:4]
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")
	j, err := CreateJournal(path, testHeader(sites))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.BindGolden(0x1234, true); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j, err = ResumeJournal(path, testHeader(sites))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.BindGolden(0x1234, true); err != nil {
		t.Errorf("matching golden refused: %v", err)
	}
	if err := j.BindGolden(0x9999, true); err == nil {
		t.Fatal("mismatched golden accepted")
	}
}

func TestJournalPanickedVerdictRoundTrips(t *testing.T) {
	sites := syntheticSites()[:4]
	bad := sites[2]
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")

	run := func(p Plane) (uint32, bool) {
		if f, ok := p.(*Single); ok && f.S == bad {
			panic("journaled defect")
		}
		return syntheticRun(p)
	}
	j, err := CreateJournal(path, testHeader(sites))
	if err != nil {
		t.Fatal(err)
	}
	first, err := SimulateOpts(sites, []RunFunc{run}, SimOptions{Journal: j})
	j.Close()
	if err != nil {
		t.Fatal(err)
	}

	// Resume with a runner that would halt cleanly everywhere: the
	// journaled panicked verdict must win, message and stack included.
	resumed, ran := journalCampaign(t, path, sites)
	if len(ran) != 0 {
		t.Error("settled sites re-ran")
	}
	if !reflect.DeepEqual(first.Results, resumed.Results) || resumed.Panics != 1 {
		t.Fatalf("panicked verdict not reproduced: %+v", resumed.Results[2])
	}
	if len(resumed.Anomalies) != 1 || !strings.Contains(resumed.Anomalies[0].Msg, "journaled defect") ||
		resumed.Anomalies[0].Stack == "" {
		t.Errorf("journaled anomaly lost: %+v", resumed.Anomalies)
	}
}

func TestHashSitesDistinguishesUniverses(t *testing.T) {
	a := syntheticSites()
	b := append([]Site{}, a...)
	if HashSites(a) != HashSites(b) {
		t.Error("equal universes hash differently")
	}
	b[0].Bit ^= 1
	if HashSites(a) == HashSites(b) {
		t.Error("different universes collide")
	}
	if HashSites(a[:len(a)-1]) == HashSites(a) {
		t.Error("prefix universe collides")
	}
}
