package fault

import (
	"math/bits"
	"sort"
)

// Golden-run activation probing. A Transition fault is transparent until
// its first activating edge: the run of a slow-rise (slow-fall) fault at
// bit b of a forwarding-mux line is bit-identical to the golden run up to
// the first time bit b rises (falls) between consecutive uses of that
// line. MuxProbe is an identity plane installed during a golden capture
// run that records, per line and bit, the cycle of that first edge — the
// site→window metadata checkpointed arenas use to pick how much golden
// prefix each Transition run may skip — plus the per-line value history
// checkpoints need to seed restored planes consistently.

// numMuxLines is the number of distinct forwarding-mux data lines:
// (lane, operand, path) with 2 lanes, 2 operands and NumPaths paths.
const numMuxLines = 2 * 2 * NumPaths

func muxLineIndex(lane, operand, path uint8) int {
	return (int(lane)*2+int(operand))*NumPaths + int(path)
}

// muxLine is one line's probe state: the last delivered value (the edge
// history a Transition plane keeps), per bit the first and last edge
// cycles (-1 = no such edge in the run), and the full edge schedule as
// per-cycle rise/fall masks.
type muxLine struct {
	prev uint64
	seen bool

	firstRise [64]int64
	firstFall [64]int64
	lastRise  [64]int64
	lastFall  [64]int64
	edges     []edgeEvent
}

// edgeEvent records which bits of a line rose and fell during one cycle
// (consecutive uses within the cycle are merged).
type edgeEvent struct {
	cycle      int64
	rise, fall uint64
}

// MuxHistory is a point-in-time copy of every line's (prev, seen) edge
// history, stored with each checkpoint so restored Transition planes can be
// seeded as if they had replayed the whole prefix.
type MuxHistory struct {
	prev [numMuxLines]uint64
	seen [numMuxLines]bool
}

// For returns the edge history of site s's line at the history's capture
// point, in the form Transition.SeedHistory takes.
func (h *MuxHistory) For(s Site) (prev uint64, seen bool) {
	i := muxLineIndex(s.Lane, s.Operand, s.Path)
	return h.prev[i], h.seen[i]
}

// MuxProbe is an identity Plane that watches the forwarding-mux data lines
// of a golden run. now reports the current simulation cycle (the probe has
// no clock of its own). Like all planes it serves one core; after the
// capture run finishes the recorded data is read-only and may be shared
// across arenas.
type MuxProbe struct {
	now   func() int64
	lines [numMuxLines]muxLine
}

// NewMuxProbe builds a probe reading the capture run's clock through now.
func NewMuxProbe(now func() int64) *MuxProbe {
	p := &MuxProbe{now: now}
	for i := range p.lines {
		l := &p.lines[i]
		for b := range l.firstRise {
			l.firstRise[b] = -1
			l.firstFall[b] = -1
			l.lastRise[b] = -1
			l.lastFall[b] = -1
		}
	}
	return p
}

// MuxData implements Plane: identity on the value, recording first and
// last edges per bit.
func (p *MuxProbe) MuxData(lane, operand, path uint8, v uint64) uint64 {
	l := &p.lines[muxLineIndex(lane, operand, path)]
	if l.seen {
		rise := ^l.prev & v
		fall := l.prev & ^v
		if rise|fall != 0 {
			now := p.now()
			if n := len(l.edges); n > 0 && l.edges[n-1].cycle == now {
				l.edges[n-1].rise |= rise
				l.edges[n-1].fall |= fall
			} else {
				l.edges = append(l.edges, edgeEvent{cycle: now, rise: rise, fall: fall})
			}
			for rise != 0 {
				b := bits.TrailingZeros64(rise)
				rise &= rise - 1
				if l.firstRise[b] < 0 {
					l.firstRise[b] = now
				}
				l.lastRise[b] = now
			}
			for fall != 0 {
				b := bits.TrailingZeros64(fall)
				fall &= fall - 1
				if l.firstFall[b] < 0 {
					l.firstFall[b] = now
				}
				l.lastFall[b] = now
			}
		}
	}
	l.prev = v
	l.seen = true
	return v
}

// FirstActivation returns the golden-run cycle at which a Transition fault
// at site s first modifies a delivered value, -1 when it never does (its
// whole run is bit-identical to the golden run), and 0 when s is not a
// forwarding-mux transition site the probe models (conservatively "live
// from cycle 0"). Sound only for runs over the same program and
// environment as the capture run, up to the returned cycle.
func (p *MuxProbe) FirstActivation(s Site) int64 {
	if s.Unit != UnitFwd || s.Signal != SigMuxData ||
		s.Lane >= 2 || s.Operand >= 2 || s.Path >= NumPaths || s.Bit >= 64 {
		if s.Kind == KindStuckAt {
			return 0
		}
		// A Transition for a non-forwarding site never injects (its MuxData
		// guard filters it), so it never activates.
		return -1
	}
	l := &p.lines[muxLineIndex(s.Lane, s.Operand, s.Path)]
	switch s.Kind {
	case KindSlowRise:
		return l.firstRise[s.Bit]
	case KindSlowFall:
		return l.firstFall[s.Bit]
	}
	return 0
}

// LastActivation returns the golden-run cycle of the last edge that
// injects a Transition fault at site s, with the same conventions as
// FirstActivation (-1 = never, 0 = not modelled / always live). After
// this cycle the golden trajectory presents no further activating edges,
// which is what makes re-convergence fast-forward sound (see
// core.Arena): a faulty run whose state coincides with a golden
// checkpoint past this cycle provably finishes as the golden run.
func (p *MuxProbe) LastActivation(s Site) int64 {
	if s.Unit != UnitFwd || s.Signal != SigMuxData ||
		s.Lane >= 2 || s.Operand >= 2 || s.Path >= NumPaths || s.Bit >= 64 {
		if s.Kind == KindStuckAt {
			return 0
		}
		return -1
	}
	l := &p.lines[muxLineIndex(s.Lane, s.Operand, s.Path)]
	switch s.Kind {
	case KindSlowRise:
		return l.lastRise[s.Bit]
	case KindSlowFall:
		return l.lastFall[s.Bit]
	}
	return 0
}

// NextActivation returns the first golden-run cycle strictly after
// "after" at which a Transition fault at site s injects, or -1 when no
// further activating edge exists. Same site conventions as
// FirstActivation (unmodelled sites report 0, "always live").
func (p *MuxProbe) NextActivation(s Site, after int64) int64 {
	if s.Unit != UnitFwd || s.Signal != SigMuxData ||
		s.Lane >= 2 || s.Operand >= 2 || s.Path >= NumPaths || s.Bit >= 64 {
		if s.Kind == KindStuckAt {
			return 0
		}
		return -1
	}
	l := &p.lines[muxLineIndex(s.Lane, s.Operand, s.Path)]
	i := sort.Search(len(l.edges), func(i int) bool { return l.edges[i].cycle > after })
	for ; i < len(l.edges); i++ {
		m := l.edges[i].rise
		if s.Kind == KindSlowFall {
			m = l.edges[i].fall
		}
		if m>>(s.Bit&63)&1 == 1 {
			return l.edges[i].cycle
		}
	}
	return -1
}

// History snapshots every line's edge history at the current point of the
// capture run.
func (p *MuxProbe) History() MuxHistory {
	var h MuxHistory
	for i := range p.lines {
		h.prev[i] = p.lines[i].prev
		h.seen[i] = p.lines[i].seen
	}
	return h
}

// The remaining hooks are identity: the probe only watches the forwarding
// data lines.

func (p *MuxProbe) MuxSel(_, _, sel uint8) uint8         { return sel }
func (p *MuxProbe) CmpEq(_ uint8, a, b uint8) bool       { return a == b }
func (p *MuxProbe) Ctl(_ uint8, v bool) bool             { return v }
func (p *MuxProbe) EvLine(_ uint8, v bool) bool          { return v }
func (p *MuxProbe) Cause(v uint32) uint32                { return v }
func (p *MuxProbe) Dist(v uint32) uint32                 { return v }
func (p *MuxProbe) Enable(v uint32) uint32               { return v }
func (p *MuxProbe) EPC(v uint32) uint32                  { return v }
func (p *MuxProbe) CounterRead(_ uint8, v uint32) uint32 { return v }
func (p *MuxProbe) CounterInc(_ uint8, inc bool) bool    { return inc }

var _ Plane = (*MuxProbe)(nil)
