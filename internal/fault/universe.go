package fault

// Fault-list enumeration. Options control the datapath width (core C's
// forwarding network is 64 bits wide to support paired-register operands)
// and, for tests, a reduced bit sampling to keep campaigns fast.

// ListOptions tunes fault-universe enumeration.
type ListOptions struct {
	DataBits int // forwarding datapath width: 32 (cores A/B) or 64 (core C)
	BitStep  int // enumerate every BitStep-th data bit (1 = all)
}

// DefaultOptions returns the full universe for a given datapath width.
func DefaultOptions(dataBits int) ListOptions {
	return ListOptions{DataBits: dataBits, BitStep: 1}
}

func (o ListOptions) norm() ListOptions {
	if o.DataBits == 0 {
		o.DataBits = 32
	}
	if o.BitStep <= 0 {
		o.BitStep = 1
	}
	return o
}

// ForwardingLogic enumerates the forwarding-multiplexer fault list: every
// data-bit line of every bypass input (paths 1..5; the register-file input
// belongs to the register file) and every select line, both stuck-at
// values. This is the Table II fault universe.
func ForwardingLogic(o ListOptions) []Site {
	o = o.norm()
	var sites []Site
	for lane := uint8(0); lane < 2; lane++ {
		for op := uint8(0); op < 2; op++ {
			for path := uint8(PathEXL0); path <= PathCascade; path++ {
				if path == PathCascade && lane == 0 {
					continue // cascade feeds lane 1 only
				}
				for bit := 0; bit < o.DataBits; bit += o.BitStep {
					for st := uint8(0); st < 2; st++ {
						sites = append(sites, Site{
							Unit: UnitFwd, Signal: SigMuxData,
							Lane: lane, Operand: op, Path: path,
							Bit: uint8(bit), Stuck: st,
						})
					}
				}
			}
			for bit := uint8(0); bit < SelBits; bit++ {
				for st := uint8(0); st < 2; st++ {
					sites = append(sites, Site{
						Unit: UnitFwd, Signal: SigMuxSel,
						Lane: lane, Operand: op, Bit: bit, Stuck: st,
					})
				}
			}
		}
	}
	return sites
}

// HDCU enumerates the hazard-detection-control-unit fault list: comparator
// XNOR bits and control lines. Detecting many of these requires the
// performance counters (wrongly inserted stalls do not corrupt dataflow),
// which is why the Table III HDCU routine folds counter deltas into its
// signature.
func HDCU(o ListOptions) []Site {
	o = o.norm()
	var sites []Site
	for cmp := uint8(0); cmp < NumCmp; cmp++ {
		if cmp >= cmpIntraBase+3 {
			continue // spare comparator slot not implemented
		}
		if cmp >= cmpFwdBase+(PathCascade-1)*4 && cmp < cmpFwdBase+PathCascade*4 {
			// The cascade path's select is latched at issue time from the
			// intra-packet comparators; it has no EX-stage comparator.
			continue
		}
		for bit := uint8(0); bit < CmpBits; bit++ {
			for st := uint8(0); st < 2; st++ {
				sites = append(sites, Site{
					Unit: UnitHDCU, Signal: SigCmp,
					Path: cmp, Bit: bit, Stuck: st,
				})
			}
		}
	}
	for line := uint8(0); line < NumCtl; line++ {
		for st := uint8(0); st < 2; st++ {
			sites = append(sites, Site{
				Unit: UnitHDCU, Signal: SigCtl, Path: line, Stuck: st,
			})
		}
	}
	return sites
}

// ICU enumerates the interrupt-control-unit fault list: event pending
// lines, cause register bits, the imprecision distance counter, the enable
// mask and the saved resume PC.
func ICU(o ListOptions) []Site {
	o = o.norm()
	var sites []Site
	add := func(sig Signal, path, lo, hi uint8) {
		for bit := lo; bit < hi; bit++ {
			for st := uint8(0); st < 2; st++ {
				sites = append(sites, Site{
					Unit: UnitICU, Signal: sig, Path: path, Bit: bit, Stuck: st,
				})
			}
		}
	}
	for line := uint8(0); line < NumEvents; line++ {
		add(SigEvLine, line, 0, 1)
	}
	add(SigCause, 0, 0, NumEvents)
	add(SigDist, 0, 0, 8)
	add(SigEnable, 0, 0, NumEvents)
	// The EPC register bits the test routine observes (word offset within
	// its padding window); bits outside this window are not graded, like
	// any logic outside the observable cone of a netlist fault list.
	add(SigEPC, 0, 2, 6)
	return sites
}

// PerfCounters enumerates performance-counter faults: stuck register bits
// (low 16, the range the test routines exercise) and stuck increment
// enables. These are graded together with the HDCU routine.
func PerfCounters(o ListOptions) []Site {
	o = o.norm()
	var sites []Site
	for id := uint8(CntIFStall); id <= CntIssued2; id++ { // the stall/issue counters
		for bit := 0; bit < 16; bit += o.BitStep {
			for st := uint8(0); st < 2; st++ {
				sites = append(sites, Site{
					Unit: UnitPerf, Signal: SigCntBit,
					Lane: id, Bit: uint8(bit), Stuck: st,
				})
			}
		}
		for st := uint8(0); st < 2; st++ {
			sites = append(sites, Site{
				Unit: UnitPerf, Signal: SigCntInc, Lane: id, Stuck: st,
			})
		}
	}
	return sites
}
