package fault

import (
	"reflect"
	"testing"
)

// probeHooks drives every Plane hook over a deterministic input sweep and
// returns the concatenated outputs: two planes with equal probe vectors
// are behaviourally identical on the sweep. Stateful planes (Transition
// parts) are mutated by the sweep, so callers build a fresh plane per
// probe.
func probeHooks(p Plane) []uint64 {
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	var out []uint64
	for lane := uint8(0); lane < 2; lane++ {
		for op := uint8(0); op < 2; op++ {
			for path := uint8(0); path < NumPaths; path++ {
				for _, v := range []uint64{0, ^uint64(0), 0xAAAA5555_33CC0FF0, 1 << 63, 1} {
					out = append(out, p.MuxData(lane, op, path, v))
				}
				for sel := uint8(0); sel < 1<<SelBits; sel++ {
					out = append(out, uint64(p.MuxSel(lane, op, sel)))
				}
			}
		}
	}
	for id := uint8(0); id < NumCmp; id++ {
		for a := uint8(0); a < 8; a++ {
			for b := uint8(0); b < 8; b++ {
				out = append(out, b2u(p.CmpEq(id, a, b)))
			}
		}
	}
	for line := uint8(0); line < 8; line++ {
		out = append(out, b2u(p.Ctl(line, false)), b2u(p.Ctl(line, true)),
			b2u(p.EvLine(line, false)), b2u(p.EvLine(line, true)))
	}
	for _, v := range []uint32{0, ^uint32(0), 0xDEADBEEF, 0x00FF00FF} {
		out = append(out, uint64(p.Cause(v)), uint64(p.Dist(v)),
			uint64(p.Enable(v)), uint64(p.EPC(v)))
	}
	for id := uint8(0); id < NumCounters; id++ {
		for _, v := range []uint32{0, ^uint32(0), 0x12345678} {
			out = append(out, uint64(p.CounterRead(id, v)))
		}
		out = append(out, b2u(p.CounterInc(id, false)), b2u(p.CounterInc(id, true)))
	}
	return out
}

// disjointSites is a cross-unit selection of mutually disjoint fault sites
// (no two share a guarded signal coordinate and bit): every plane hook has
// at least one non-transparent component among them.
func disjointSites() []Site {
	return []Site{
		{Unit: UnitFwd, Signal: SigMuxData, Lane: 0, Operand: 0, Path: PathEXL0, Bit: 3, Stuck: 1},
		// Same mux line as above, different bit: forceBit on distinct bits
		// must still commute.
		{Unit: UnitFwd, Signal: SigMuxData, Lane: 0, Operand: 0, Path: PathEXL0, Bit: 7, Stuck: 0},
		{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowRise, Lane: 1, Operand: 1, Path: PathEXL1, Bit: 5},
		{Unit: UnitFwd, Signal: SigMuxSel, Lane: 1, Operand: 0, Bit: 1, Stuck: 1},
		{Unit: UnitHDCU, Signal: SigCmp, Path: 2, Bit: 0, Stuck: 0},
		{Unit: UnitHDCU, Signal: SigCtl, Path: CtlLoadUse, Stuck: 1},
		{Unit: UnitICU, Signal: SigEvLine, Path: 1, Stuck: 1},
		{Unit: UnitICU, Signal: SigCause, Bit: 4, Stuck: 0},
		{Unit: UnitICU, Signal: SigEnable, Bit: 2, Stuck: 1},
		{Unit: UnitPerf, Signal: SigCntBit, Lane: 2, Bit: 5, Stuck: 1},
		{Unit: UnitPerf, Signal: SigCntInc, Lane: 0, Stuck: 0},
	}
}

// TestCompositeDisjointOrderIndependent: composing disjoint sites in any
// order yields a behaviourally identical plane.
func TestCompositeDisjointOrderIndependent(t *testing.T) {
	sites := disjointSites()
	want := probeHooks(CompositeFor(sites))
	orders := [][]int{}
	// A reversal plus a few deterministic rotations of the site list.
	rev := make([]int, len(sites))
	for i := range rev {
		rev[i] = len(sites) - 1 - i
	}
	orders = append(orders, rev)
	for rot := 1; rot < len(sites); rot += 3 {
		ord := make([]int, len(sites))
		for i := range ord {
			ord[i] = (i + rot) % len(sites)
		}
		orders = append(orders, ord)
	}
	for _, ord := range orders {
		perm := make([]Site, len(sites))
		for i, j := range ord {
			perm[i] = sites[j]
		}
		if got := probeHooks(CompositeFor(perm)); !reflect.DeepEqual(got, want) {
			t.Fatalf("composite of disjoint sites is order-dependent (order %v)", ord)
		}
	}
}

// TestCompositeIdentityNoOp: composing any site with the fault-free plane
// (on either side) behaves exactly like the site alone.
func TestCompositeIdentityNoOp(t *testing.T) {
	for _, s := range disjointSites() {
		want := probeHooks(PlaneFor(s))
		if got := probeHooks(NewComposite(None, PlaneFor(s))); !reflect.DeepEqual(got, want) {
			t.Errorf("%v: None∘site differs from site", s)
		}
		if got := probeHooks(NewComposite(PlaneFor(s), None)); !reflect.DeepEqual(got, want) {
			t.Errorf("%v: site∘None differs from site", s)
		}
	}
}

// TestCompositeSelfEqualsSingle: a composite of a stuck-at site with
// itself behaves exactly like the single site (forcing a bit twice is
// forcing it once).
func TestCompositeSelfEqualsSingle(t *testing.T) {
	for _, s := range disjointSites() {
		if s.Kind != KindStuckAt {
			continue // transition self-composition is not idempotent by model
		}
		want := probeHooks(NewSingle(s))
		if got := probeHooks(CompositeFor([]Site{s, s})); !reflect.DeepEqual(got, want) {
			t.Errorf("%v: site∘site differs from single site", s)
		}
	}
}

// TestCompositeAffectsQueries: AffectsEvLines and AffectsCounterInc over a
// composite are the OR of the component answers.
func TestCompositeAffectsQueries(t *testing.T) {
	fwd := Site{Unit: UnitFwd, Signal: SigMuxData, Path: PathEXL0, Bit: 1, Stuck: 1}
	ev := Site{Unit: UnitICU, Signal: SigEvLine, Path: 0, Stuck: 1}
	inc := Site{Unit: UnitPerf, Signal: SigCntInc, Lane: 1, Stuck: 0}
	for _, tc := range []struct {
		group   []Site
		evLines bool
		cntInc  bool
	}{
		{[]Site{fwd, fwd}, false, false},
		{[]Site{fwd, ev}, true, false},
		{[]Site{ev, fwd}, true, false},
		{[]Site{fwd, inc}, false, true},
		{[]Site{ev, inc}, true, true},
	} {
		c := CompositeFor(tc.group)
		if got := AffectsEvLines(c); got != tc.evLines {
			t.Errorf("AffectsEvLines(%v) = %v, want %v", tc.group, got, tc.evLines)
		}
		if got := AffectsCounterInc(c); got != tc.cntInc {
			t.Errorf("AffectsCounterInc(%v) = %v, want %v", tc.group, got, tc.cntInc)
		}
	}
	if AffectsEvLines(NewComposite()) || AffectsCounterInc(NewComposite()) {
		t.Error("empty composite is not transparent")
	}
}

// TestCompositeResetAndFlatten: ResetState clears every stateful
// component's edge history, and nested composites flatten.
func TestCompositeResetAndFlatten(t *testing.T) {
	tr := NewTransition(Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowFall, Path: PathEXL1, Bit: 2})
	c := NewComposite(NewSingle(disjointSites()[0]), NewComposite(tr, None))
	if len(c.Parts) != 3 {
		t.Fatalf("nested composite not flattened: %d parts", len(c.Parts))
	}
	tr.MuxData(0, 0, PathEXL1, ^uint64(0))
	if _, seen := tr.History(); !seen {
		t.Fatal("transition part recorded no history; test is vacuous")
	}
	ResetPlaneState(c)
	if _, seen := tr.History(); seen {
		t.Error("ResetPlaneState(composite) left stale edge history on a component")
	}
}
