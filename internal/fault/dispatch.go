package fault

import (
	"fmt"
	"reflect"
)

// DispatchPath classifies how the campaign engine served one site's run.
// The arena picks the cheapest sound path per site (see core.Arena); the
// per-path counts are the number that explains why a campaign was fast or
// slow, so they ride on the Report and feed the telemetry histograms.
type DispatchPath uint8

// The dispatch paths, cheapest-sound-path order as the arena tries them.
const (
	// DispatchFullReplay is a reset + plane-swap run from cycle 0.
	DispatchFullReplay DispatchPath = iota
	// DispatchCheckpoint is a run started from a golden checkpoint before
	// the site's first activating edge.
	DispatchCheckpoint
	// DispatchFastForward is a run cut short (or jumped forward) by exact
	// re-convergence with the golden run.
	DispatchFastForward
	// DispatchGolden is a site served the golden verdict outright because
	// its fault never activates.
	DispatchGolden
	// DispatchFallback is a rebuild-per-fault run on a fresh SoC
	// (quarantined or dead arena).
	DispatchFallback
	// NumDispatchPaths sizes per-path arrays.
	NumDispatchPaths
)

// dispatchNames renders paths for reports and metric names.
var dispatchNames = [NumDispatchPaths]string{
	"full_replay", "checkpoint_restore", "fast_forward", "golden_shortcut", "fallback",
}

func (p DispatchPath) String() string {
	if int(p) < len(dispatchNames) {
		return dispatchNames[p]
	}
	return fmt.Sprintf("path%d", uint8(p))
}

// DispatchStats counts served sites per dispatch path. It is an execution
// -strategy diagnostic, not verdict content: reports stay bit-identical
// across engine modes while their DispatchStats differ, so the field is
// excluded from Report JSON and from report equality.
type DispatchStats [NumDispatchPaths]int64

// Total returns the number of sites served across all paths.
func (d DispatchStats) Total() int64 {
	var n int64
	for _, c := range d {
		n += c
	}
	return n
}

// Shortcuts returns the sites that avoided a full replay (checkpoint
// restore, fast forward, or golden shortcut).
func (d DispatchStats) Shortcuts() int64 {
	return d[DispatchCheckpoint] + d[DispatchFastForward] + d[DispatchGolden]
}

// Add accumulates o into d (per-arena stats folding into a campaign
// total).
func (d *DispatchStats) Add(o DispatchStats) {
	for i := range d {
		d[i] += o[i]
	}
}

// SameVerdicts reports whether two reports agree on every verdict-bearing
// field, ignoring the execution-strategy Dispatch counts — the equality
// the mode-equivalence and resume pins check (a resumed or
// differently-optimized campaign serves sites through different paths
// while computing the identical report).
func (r Report) SameVerdicts(o Report) bool {
	r.Dispatch, o.Dispatch = DispatchStats{}, DispatchStats{}
	return reflect.DeepEqual(r, o)
}

// String renders the per-path counts with the shortcut rate — the line
// Report.String appends so campaign output shows checkpoint
// effectiveness.
func (d DispatchStats) String() string {
	total := d.Total()
	pct := 0.0
	if total > 0 {
		pct = 100 * float64(d.Shortcuts()) / float64(total)
	}
	return fmt.Sprintf("dispatch: %d full-replay, %d checkpoint, %d fast-forward, %d golden-shortcut, %d fallback (%.1f%% shortcut)",
		d[DispatchFullReplay], d[DispatchCheckpoint], d[DispatchFastForward],
		d[DispatchGolden], d[DispatchFallback], pct)
}
