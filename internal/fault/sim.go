package fault

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// RunFunc executes the self-test procedure in a fixed environment with the
// given injection plane and reports the final test signature plus whether
// the run completed cleanly (halted without wedging or timing out).
// Implementations must be safe for concurrent calls: the campaign fans out
// over worker goroutines, each building its own SoC instance.
type RunFunc func(p Plane) (sig uint32, ok bool)

// SiteResult records one fault's outcome.
type SiteResult struct {
	Site      Site
	Detected  bool
	Signature uint32
	Crashed   bool // run wedged or timed out (counted as detected)
}

// Report summarises a campaign.
type Report struct {
	Golden   uint32
	GoldenOK bool
	Total    int
	Detected int
	Results  []SiteResult
}

// Coverage returns the fault coverage in percent.
func (r Report) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Detected) / float64(r.Total)
}

// BySignal breaks detection down per signal class.
func (r Report) BySignal() map[Signal][2]int {
	out := map[Signal][2]int{}
	for _, res := range r.Results {
		v := out[res.Site.Signal]
		v[1]++
		if res.Detected {
			v[0]++
		}
		out[res.Site.Signal] = v
	}
	return out
}

// Undetected lists the surviving fault sites (diagnosis aid).
func (r Report) Undetected() []Site {
	var out []Site
	for _, res := range r.Results {
		if !res.Detected {
			out = append(out, res.Site)
		}
	}
	return out
}

func (r Report) String() string {
	return fmt.Sprintf("%d/%d faults detected, FC %.2f%% (golden %08x)",
		r.Detected, r.Total, r.Coverage(), r.Golden)
}

// Simulate runs the full campaign: one golden run, then one run per fault
// site, comparing signatures. A fault is detected when the signature
// differs from the golden one or the run does not complete (a wedged or
// deadlocked core fails its test by construction: the watchdog expires).
// workers <= 0 uses GOMAXPROCS.
func Simulate(sites []Site, run RunFunc, workers int) Report {
	golden, goldenOK := run(None)
	rep := Report{
		Golden:   golden,
		GoldenOK: goldenOK,
		Total:    len(sites),
		Results:  make([]SiteResult, len(sites)),
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(sites) {
		workers = len(sites)
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range next {
				site := sites[idx]
				sig, ok := run(PlaneFor(site))
				rep.Results[idx] = SiteResult{
					Site:      site,
					Signature: sig,
					Crashed:   !ok,
					Detected:  !ok || sig != golden,
				}
			}
		}()
	}
	for i := range sites {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, res := range rep.Results {
		if res.Detected {
			rep.Detected++
		}
	}
	return rep
}

// MinMax summarises coverage across scenario campaigns (the paper's
// Table II reports min–max fault coverage over SoC configurations).
type MinMax struct {
	Min, Max float64
	Reports  []Report
}

// NewMinMax aggregates reports.
func NewMinMax(reports []Report) MinMax {
	mm := MinMax{Min: 101, Max: -1, Reports: reports}
	for _, r := range reports {
		fc := r.Coverage()
		if fc < mm.Min {
			mm.Min = fc
		}
		if fc > mm.Max {
			mm.Max = fc
		}
	}
	if len(reports) == 0 {
		mm.Min, mm.Max = 0, 0
	}
	return mm
}

// Spread returns Max-Min in coverage points.
func (m MinMax) Spread() float64 { return m.Max - m.Min }

// SortSites orders a fault list deterministically (useful for stable
// sub-sampling in tests).
func SortSites(sites []Site) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		if a.Signal != b.Signal {
			return a.Signal < b.Signal
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Operand != b.Operand {
			return a.Operand < b.Operand
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Bit != b.Bit {
			return a.Bit < b.Bit
		}
		return a.Stuck < b.Stuck
	})
}

// Sample returns every k-th site of a sorted list (test-time reduction).
func Sample(sites []Site, k int) []Site {
	if k <= 1 {
		return sites
	}
	var out []Site
	for i := 0; i < len(sites); i += k {
		out = append(out, sites[i])
	}
	return out
}
