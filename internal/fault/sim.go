package fault

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
)

// RunFunc executes the self-test procedure in a fixed environment with the
// given injection plane and reports the final test signature plus whether
// the run completed cleanly (halted without wedging or timing out).
// Implementations passed to Simulate must be safe for concurrent calls: the
// campaign fans out over worker goroutines. SimulateWith instead gives each
// worker its own RunFunc, so a runner may own mutable state (a reusable
// simulator arena).
type RunFunc func(p Plane) (sig uint32, ok bool)

// SiteResult records one fault's outcome. Crashed runs record signature 0:
// the residual register value of a wedged or timed-out run is noise that
// depends on where the watchdog fired, and canonicalising it keeps reports
// comparable across campaign engines. A Panicked run is the canonical
// verdict for a simulator panic caught at the per-run recover boundary:
// signature 0, Crashed, Detected — the fault provoked behaviour the model
// itself cannot represent. The panic message and stack live in the
// Report's Anomalies, not here, so SiteResult stays ==-comparable and
// bit-identical across resumed campaigns.
type SiteResult struct {
	Site      Site
	Detected  bool
	Signature uint32
	Crashed   bool // run wedged or timed out (counted as detected)
	Panicked  bool // run panicked; caught at the per-run recover boundary
}

// Anomaly is the diagnostic record of one caught panic. Index is the site
// index in Results, or -1 for the golden run.
type Anomaly struct {
	Index int
	Site  Site
	Msg   string
	Stack string
}

// Report summarises a campaign. Panics counts sites whose verdict is
// Panicked; Anomalies carries their diagnostics in site order (diagnostic
// only — resumed campaigns reproduce verdicts bit-identically, but a
// journaled stack is reported by the run that caught it, so equality
// checks between reports should compare Results and counts).
type Report struct {
	Golden    uint32
	GoldenOK  bool
	Total     int
	Detected  int
	Panics    int
	Results   []SiteResult
	Anomalies []Anomaly `json:",omitempty"`

	// Dispatch counts how the engine served each site (filled by
	// core.RunCampaignOpts from its arenas). It describes execution
	// strategy, not verdicts: the optimized and reference modes produce
	// different DispatchStats around bit-identical Results, so the field
	// is excluded from the JSON encoding and from report comparisons.
	Dispatch DispatchStats `json:"-"`
}

// Coverage returns the fault coverage in percent.
func (r Report) Coverage() float64 {
	if r.Total == 0 {
		return 0
	}
	return 100 * float64(r.Detected) / float64(r.Total)
}

// SignalStat is one line of the per-signal detection breakdown.
type SignalStat struct {
	Signal   Signal
	Detected int
	Total    int
}

// BySignal breaks detection down per signal class, ordered by signal so the
// breakdown renders deterministically.
func (r Report) BySignal() []SignalStat {
	idx := map[Signal]int{}
	var out []SignalStat
	for _, res := range r.Results {
		i, seen := idx[res.Site.Signal]
		if !seen {
			i = len(out)
			idx[res.Site.Signal] = i
			out = append(out, SignalStat{Signal: res.Site.Signal})
		}
		out[i].Total++
		if res.Detected {
			out[i].Detected++
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Signal < out[j].Signal })
	return out
}

// Undetected lists the surviving fault sites (diagnosis aid).
func (r Report) Undetected() []Site {
	var out []Site
	for _, res := range r.Results {
		if !res.Detected {
			out = append(out, res.Site)
		}
	}
	return out
}

func (r Report) String() string {
	s := fmt.Sprintf("%d/%d faults detected, FC %.2f%% (golden %08x)",
		r.Detected, r.Total, r.Coverage(), r.Golden)
	if r.Panics > 0 {
		s += fmt.Sprintf(", %d panicked (isolated)", r.Panics)
	}
	if r.Dispatch.Total() > 0 {
		s += "\n" + r.Dispatch.String()
	}
	return s
}

// Workers resolves a worker-count option: n when positive, else GOMAXPROCS,
// in both cases capped by the number of fault sites.
func Workers(n, sites int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > sites {
		n = sites
	}
	if n < 1 {
		n = 1
	}
	return n
}

// Simulate runs the full campaign: one golden run, then one run per fault
// site, comparing signatures. A fault is detected when the signature
// differs from the golden one or the run does not complete (a wedged or
// deadlocked core fails its test by construction: the watchdog expires).
// run must be safe for concurrent calls. workers <= 0 uses GOMAXPROCS.
func Simulate(sites []Site, run RunFunc, workers int) Report {
	runners := make([]RunFunc, Workers(workers, len(sites)))
	for i := range runners {
		runners[i] = run
	}
	return SimulateWith(sites, runners)
}

// SimulateWith is Simulate with one runner per worker goroutine: runner w
// serves every site that worker claims, so a runner may own heavyweight
// mutable state (one long-lived SoC arena per worker). The golden reference
// comes from runners[0](None) on the calling goroutine before the workers
// start. Sites are claimed through a shared atomic cursor — there is no
// producer goroutine to serialise with — and each worker writes only its
// claimed slots of Results, with the WaitGroup providing the final
// happens-before edge to the caller.
func SimulateWith(sites []Site, runners []RunFunc) Report {
	rep, _ := SimulateOpts(sites, runners, SimOptions{})
	return rep
}

// SimOptions tunes SimulateOpts beyond the defaults.
type SimOptions struct {
	// Journal, when non-nil, supplies already-settled verdicts (those
	// sites are not re-run) and records every newly settled one. The
	// caller owns Close.
	Journal *Journal
	// Telemetry, when non-nil, receives the campaign dispatcher's live
	// metrics: sites settled, per-verdict-class counts, journal append
	// latency, worker busy time. Nil is the disabled mode at zero cost.
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives one site event per settled verdict
	// (journal-folded verdicts included, flagged FromJournal).
	Events *telemetry.EventLog
	// OnSettle, when non-nil, is invoked once per settled verdict with the
	// site's universe index — journal-folded verdicts included, flagged by
	// fromJournal. It runs on the settling worker goroutine, so it must be
	// safe for concurrent calls; it is the streaming hook a campaign-service
	// worker uses to publish shard verdicts as they land.
	OnSettle func(i int, res SiteResult, fromJournal bool)
	// OnGolden, when non-nil, is invoked once with the golden verdict,
	// after the golden run and before any site settles — so a streaming
	// consumer can attach the reference every verdict was compared against.
	OnGolden func(sig uint32, ok bool)
}

// simMetrics is the resolved handle set of the campaign dispatcher; the
// zero value (telemetry detached) no-ops on every field.
type simMetrics struct {
	enabled     bool
	settled     *telemetry.Counter
	fromJournal *telemetry.Counter
	detected    *telemetry.Counter
	crashed     *telemetry.Counter
	panicked    *telemetry.Counter
	journalNs   *telemetry.Histogram
	workerBusy  *telemetry.Counter
	workers     *telemetry.Gauge
}

// newSimMetrics resolves the dispatcher's metric names once, at campaign
// start (reg may be nil: every handle stays nil and no-ops).
func newSimMetrics(reg *telemetry.Registry, workers int) simMetrics {
	m := simMetrics{
		enabled:     reg != nil,
		settled:     reg.Counter("campaign_sites_settled_total"),
		fromJournal: reg.Counter("campaign_sites_from_journal_total"),
		detected:    reg.Counter("campaign_verdict_detected_total"),
		crashed:     reg.Counter("campaign_verdict_crashed_total"),
		panicked:    reg.Counter("campaign_verdict_panicked_total"),
		journalNs:   reg.Histogram("campaign_journal_append_ns"),
		workerBusy:  reg.Counter("campaign_worker_busy_ns_total"),
		workers:     reg.Gauge("campaign_workers"),
	}
	m.workers.Set(int64(workers))
	return m
}

// settle records one settled verdict on the counters.
func (m *simMetrics) settle(res SiteResult, fromJournal bool) {
	m.settled.Inc()
	if fromJournal {
		m.fromJournal.Inc()
	}
	if res.Detected {
		m.detected.Inc()
	}
	if res.Crashed {
		m.crashed.Inc()
	}
	if res.Panicked {
		m.panicked.Inc()
	}
}

// siteEvent renders one settled verdict as an event-stream line.
func siteEvent(idx int, res SiteResult, fromJournal bool) telemetry.Event {
	return telemetry.Event{
		Kind:        telemetry.EventSite,
		Index:       idx,
		Site:        res.Site.String(),
		Sig:         res.Signature,
		Detected:    res.Detected,
		Crashed:     res.Crashed,
		Panicked:    res.Panicked,
		FromJournal: fromJournal,
	}
}

// safeRun invokes run behind the per-run recover boundary. A panic is
// returned as a message/stack pair instead of unwinding into the worker
// pool.
func safeRun(run RunFunc, p Plane) (sig uint32, ok, panicked bool, msg, stack string) {
	defer func() {
		if v := recover(); v != nil {
			sig, ok, panicked = 0, false, true
			msg = fmt.Sprint(v)
			stack = string(debug.Stack())
		}
	}()
	sig, ok = run(p)
	return
}

// SimulateOpts is the full-control campaign dispatcher behind Simulate and
// SimulateWith. Every run — golden included — executes behind a recover
// boundary: a panicking fault run settles the canonical Panicked verdict
// for its site and the pool moves on; a panicking golden run yields
// GoldenOK=false. The only errors are journal I/O or consistency failures,
// reported after the campaign state they interrupt is already in rep.
func SimulateOpts(sites []Site, runners []RunFunc, opt SimOptions) (Report, error) {
	j := opt.Journal
	met := newSimMetrics(opt.Telemetry, len(runners))
	golden, goldenOK, gpan, gmsg, gstack := safeRun(runners[0], None)
	rep := Report{
		Golden:   golden,
		GoldenOK: goldenOK,
		Total:    len(sites),
		Results:  make([]SiteResult, len(sites)),
	}
	if j != nil {
		if err := j.BindGolden(golden, goldenOK); err != nil {
			return rep, err
		}
	}
	if opt.OnGolden != nil {
		opt.OnGolden(golden, goldenOK)
	}
	msgs := make([]string, len(sites))
	stacks := make([]string, len(sites))
	var cursor atomic.Int64
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	for _, run := range runners {
		wg.Add(1)
		go func(run RunFunc) {
			defer wg.Done()
			for {
				idx := int(cursor.Add(1)) - 1
				if idx >= len(sites) {
					return
				}
				site := sites[idx]
				if j != nil {
					if res, msg, stack, settled := j.Settled(idx); settled {
						res.Site = site
						rep.Results[idx] = res
						msgs[idx], stacks[idx] = msg, stack
						met.settle(res, true)
						if opt.Events != nil {
							opt.Events.Emit(siteEvent(idx, res, true))
						}
						if opt.OnSettle != nil {
							opt.OnSettle(idx, res, true)
						}
						continue
					}
				}
				var t0 time.Time
				if met.enabled {
					t0 = time.Now()
				}
				sig, ok, panicked, msg, stack := safeRun(run, PlaneFor(site))
				if met.enabled {
					met.workerBusy.Add(time.Since(t0).Nanoseconds())
				}
				if !ok {
					sig = 0 // canonical crash signature
				}
				res := SiteResult{
					Site:      site,
					Signature: sig,
					Crashed:   !ok,
					Panicked:  panicked,
					Detected:  !ok || sig != golden,
				}
				rep.Results[idx] = res
				msgs[idx], stacks[idx] = msg, stack
				if j != nil {
					var j0 time.Time
					if met.enabled {
						j0 = time.Now()
					}
					err := j.Record(idx, res, msg, stack)
					if met.enabled {
						met.journalNs.Observe(time.Since(j0).Nanoseconds())
					}
					if err != nil {
						setErr(err)
						return
					}
				}
				met.settle(res, false)
				if opt.Events != nil {
					opt.Events.Emit(siteEvent(idx, res, false))
				}
				if opt.OnSettle != nil {
					opt.OnSettle(idx, res, false)
				}
			}
		}(run)
	}
	wg.Wait()
	if gpan {
		rep.Anomalies = append(rep.Anomalies, Anomaly{Index: -1, Msg: gmsg, Stack: gstack})
	}
	for i, res := range rep.Results {
		if res.Detected {
			rep.Detected++
		}
		if res.Panicked {
			rep.Panics++
			rep.Anomalies = append(rep.Anomalies, Anomaly{
				Index: i, Site: res.Site, Msg: msgs[i], Stack: stacks[i],
			})
		}
	}
	return rep, firstErr
}

// MinMax summarises coverage across scenario campaigns (the paper's
// Table II reports min–max fault coverage over SoC configurations).
type MinMax struct {
	Min, Max float64
	Reports  []Report
}

// NewMinMax aggregates reports.
func NewMinMax(reports []Report) MinMax {
	mm := MinMax{Min: 101, Max: -1, Reports: reports}
	for _, r := range reports {
		fc := r.Coverage()
		if fc < mm.Min {
			mm.Min = fc
		}
		if fc > mm.Max {
			mm.Max = fc
		}
	}
	if len(reports) == 0 {
		mm.Min, mm.Max = 0, 0
	}
	return mm
}

// Spread returns Max-Min in coverage points.
func (m MinMax) Spread() float64 { return m.Max - m.Min }

// SortSites orders a fault list deterministically (useful for stable
// sub-sampling in tests).
func SortSites(sites []Site) {
	sort.Slice(sites, func(i, j int) bool {
		a, b := sites[i], sites[j]
		if a.Unit != b.Unit {
			return a.Unit < b.Unit
		}
		if a.Signal != b.Signal {
			return a.Signal < b.Signal
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Lane != b.Lane {
			return a.Lane < b.Lane
		}
		if a.Operand != b.Operand {
			return a.Operand < b.Operand
		}
		if a.Path != b.Path {
			return a.Path < b.Path
		}
		if a.Bit != b.Bit {
			return a.Bit < b.Bit
		}
		return a.Stuck < b.Stuck
	})
}

// Sample returns every k-th site of a sorted list (test-time reduction).
func Sample(sites []Site, k int) []Site {
	if k <= 1 {
		return sites
	}
	var out []Site
	for i := 0; i < len(sites); i += k {
		out = append(out, sites[i])
	}
	return out
}
