package fault

// Multi-fault extension: a Composite plane injects two or more
// simultaneous faults by chaining component planes. Value-transforming
// hooks (mux data, select codes, ICU registers, counter reads) thread the
// signal through every component in order — for disjoint sites at most
// one component is non-transparent per call, or the components force
// distinct bits, so composition is order-independent. CmpEq is a verdict,
// not a value: each component observes the original comparator inputs and
// any component that flips the fault-free comparison decides (every flip
// yields the same boolean, so this too is order-independent). For sites on
// distinct comparators the merged verdict is exact; two stuck XNOR bits on
// the *same* comparator are approximated as an OR of single-bit overrides.

// Composite injects every component plane's faults simultaneously.
type Composite struct {
	// Parts are the component planes, applied in order on value hooks.
	Parts []Plane
}

// NewComposite builds a multi-fault plane from component planes. Nested
// composites are flattened, so NewComposite(a, NewComposite(b, c)) equals
// NewComposite(a, b, c).
func NewComposite(parts ...Plane) *Composite {
	c := &Composite{Parts: make([]Plane, 0, len(parts))}
	for _, p := range parts {
		if sub, ok := p.(*Composite); ok {
			c.Parts = append(c.Parts, sub.Parts...)
			continue
		}
		c.Parts = append(c.Parts, p)
	}
	return c
}

// CompositeFor builds the multi-fault plane for a site group: one
// component per site, each via PlaneFor (stuck-at or transition by kind).
func CompositeFor(group []Site) *Composite {
	parts := make([]Plane, len(group))
	for i, s := range group {
		parts[i] = PlaneFor(s)
	}
	return NewComposite(parts...)
}

// ResetState clears the per-run state of every stateful component
// (Transition edge history), so a Composite that already executed can
// serve a fresh run from cycle 0.
func (c *Composite) ResetState() {
	for _, p := range c.Parts {
		ResetPlaneState(p)
	}
}

func (c *Composite) MuxData(lane, operand, path uint8, v uint64) uint64 {
	for _, p := range c.Parts {
		v = p.MuxData(lane, operand, path, v)
	}
	return v
}

func (c *Composite) MuxSel(lane, operand, sel uint8) uint8 {
	for _, p := range c.Parts {
		sel = p.MuxSel(lane, operand, sel)
	}
	return sel
}

func (c *Composite) CmpEq(cmpID uint8, a, b uint8) bool {
	out := a == b
	for _, p := range c.Parts {
		if r := p.CmpEq(cmpID, a, b); r != (a == b) {
			out = r
		}
	}
	return out
}

func (c *Composite) Ctl(line uint8, v bool) bool {
	for _, p := range c.Parts {
		v = p.Ctl(line, v)
	}
	return v
}

func (c *Composite) EvLine(line uint8, v bool) bool {
	for _, p := range c.Parts {
		v = p.EvLine(line, v)
	}
	return v
}

func (c *Composite) Cause(v uint32) uint32 {
	for _, p := range c.Parts {
		v = p.Cause(v)
	}
	return v
}

func (c *Composite) Dist(v uint32) uint32 {
	for _, p := range c.Parts {
		v = p.Dist(v)
	}
	return v
}

func (c *Composite) Enable(v uint32) uint32 {
	for _, p := range c.Parts {
		v = p.Enable(v)
	}
	return v
}

func (c *Composite) EPC(v uint32) uint32 {
	for _, p := range c.Parts {
		v = p.EPC(v)
	}
	return v
}

func (c *Composite) CounterRead(id uint8, v uint32) uint32 {
	for _, p := range c.Parts {
		v = p.CounterRead(id, v)
	}
	return v
}

func (c *Composite) CounterInc(id uint8, inc bool) bool {
	for _, p := range c.Parts {
		inc = p.CounterInc(id, inc)
	}
	return inc
}

var _ Plane = (*Composite)(nil)

// PairGroups enumerates every unordered pair of distinct sites from the
// universe as a two-site multi-fault group, in universe order — the pair
// counterpart of the single-site List functions. For n sites it returns
// n*(n-1)/2 groups; callers steer or sample before simulating.
func PairGroups(sites []Site) [][]Site {
	var groups [][]Site
	for i := 0; i < len(sites); i++ {
		for j := i + 1; j < len(sites); j++ {
			groups = append(groups, []Site{sites[i], sites[j]})
		}
	}
	return groups
}
