package fault

import (
	"testing"
	"testing/quick"
)

func TestNonePlaneIsIdentity(t *testing.T) {
	if v := None.MuxData(1, 0, PathEXL0, 0xDEAD); v != 0xDEAD {
		t.Error("MuxData")
	}
	if s := None.MuxSel(0, 1, 3); s != 3 {
		t.Error("MuxSel")
	}
	if !None.CmpEq(5, 7, 7) || None.CmpEq(5, 7, 8) {
		t.Error("CmpEq")
	}
	if !None.Ctl(CtlLoadUse, true) || None.Ctl(CtlSplit, false) {
		t.Error("Ctl")
	}
	if None.Cause(5) != 5 || None.Dist(9) != 9 || None.Enable(3) != 3 {
		t.Error("ICU hooks")
	}
	if None.CounterRead(1, 42) != 42 || !None.CounterInc(1, true) {
		t.Error("counter hooks")
	}
}

func TestSingleMuxDataFault(t *testing.T) {
	f := NewSingle(Site{Unit: UnitFwd, Signal: SigMuxData, Lane: 1, Operand: 0, Path: PathCascade, Bit: 7, Stuck: 1})
	if v := f.MuxData(1, 0, PathCascade, 0); v != 1<<7 {
		t.Errorf("sa1 not forced: %#x", v)
	}
	// Wrong lane/operand/path: masked.
	if v := f.MuxData(0, 0, PathCascade, 0); v != 0 {
		t.Error("fault leaked to other lane")
	}
	if v := f.MuxData(1, 1, PathCascade, 0); v != 0 {
		t.Error("fault leaked to other operand")
	}
	if v := f.MuxData(1, 0, PathEXL0, 0); v != 0 {
		t.Error("fault leaked to other path")
	}
	f0 := NewSingle(Site{Unit: UnitFwd, Signal: SigMuxData, Path: PathEXL1, Bit: 31, Stuck: 0})
	if v := f0.MuxData(0, 0, PathEXL1, 0xFFFFFFFF); v != 0x7FFFFFFF {
		t.Errorf("sa0 not forced: %#x", v)
	}
}

func TestSingleMuxSelFault(t *testing.T) {
	f := NewSingle(Site{Unit: UnitFwd, Signal: SigMuxSel, Lane: 0, Operand: 0, Bit: 1, Stuck: 1})
	if s := f.MuxSel(0, 0, 0); s != 2 {
		t.Errorf("sel = %d, want 2", s)
	}
	if s := f.MuxSel(1, 0, 0); s != 0 {
		t.Error("sel fault leaked")
	}
	// Select stays within the encoding width.
	f2 := NewSingle(Site{Unit: UnitFwd, Signal: SigMuxSel, Bit: 1, Stuck: 1})
	if s := f2.MuxSel(0, 0, 5); s != 7 {
		t.Errorf("sel = %d, want 7", s)
	}
}

func TestSingleCmpFault(t *testing.T) {
	// SA1 on bit 3: indices differing only in bit 3 compare equal.
	f := NewSingle(Site{Unit: UnitHDCU, Signal: SigCmp, Path: 5, Bit: 3, Stuck: 1})
	if !f.CmpEq(5, 2, 10) { // 2 ^ 10 = 8 = bit 3
		t.Error("sa1 comparator should see 2 == 10")
	}
	if f.CmpEq(5, 2, 3) {
		t.Error("unequal elsewhere must stay unequal")
	}
	if !f.CmpEq(5, 6, 6) {
		t.Error("true equality must survive sa1")
	}
	if !f.CmpEq(4, 6, 6) || f.CmpEq(4, 2, 10) {
		t.Error("fault leaked to other comparator")
	}
	// SA0: never equal.
	f0 := NewSingle(Site{Unit: UnitHDCU, Signal: SigCmp, Path: 5, Bit: 0, Stuck: 0})
	if f0.CmpEq(5, 6, 6) {
		t.Error("sa0 comparator should never match")
	}
}

func TestSingleCtlAndICUFaults(t *testing.T) {
	f := NewSingle(Site{Unit: UnitHDCU, Signal: SigCtl, Path: CtlLoadUse, Stuck: 0})
	if f.Ctl(CtlLoadUse, true) {
		t.Error("stall line stuck at 0 still asserted")
	}
	if !f.Ctl(CtlSplit, true) {
		t.Error("fault leaked to other line")
	}
	ev := NewSingle(Site{Unit: UnitICU, Signal: SigEvLine, Path: 2, Stuck: 1})
	if !ev.EvLine(2, false) {
		t.Error("event line stuck at 1 not raised")
	}
	if ev.EvLine(1, false) {
		t.Error("event fault leaked")
	}
	dist := NewSingle(Site{Unit: UnitICU, Signal: SigDist, Bit: 2, Stuck: 1})
	if dist.Dist(0) != 4 {
		t.Error("dist bit not forced")
	}
	cnt := NewSingle(Site{Unit: UnitPerf, Signal: SigCntInc, Lane: CntHazStall, Stuck: 0})
	if cnt.CounterInc(CntHazStall, true) {
		t.Error("counter increment not gated")
	}
	if !cnt.CounterInc(CntIFStall, true) {
		t.Error("counter fault leaked")
	}
}

func TestUniverseSizes(t *testing.T) {
	fwd32 := ForwardingLogic(DefaultOptions(32))
	fwd64 := ForwardingLogic(DefaultOptions(64))
	// Data sites: lane0 has 4 input paths, lane1 has 5 (cascade), 2
	// operands each, bits x 2 stuck values; plus 2x2 muxes x 3 select bits
	// x 2.
	wantData32 := (4 + 5) * 2 * 32 * 2
	wantSel := 2 * 2 * SelBits * 2
	if len(fwd32) != wantData32+wantSel {
		t.Errorf("32-bit forwarding universe = %d, want %d", len(fwd32), wantData32+wantSel)
	}
	if len(fwd64) != 2*wantData32+wantSel {
		t.Errorf("64-bit forwarding universe = %d, want %d", len(fwd64), 2*wantData32+wantSel)
	}
	if n := len(HDCU(DefaultOptions(32))); n == 0 {
		t.Error("empty HDCU universe")
	}
	if n := len(ICU(DefaultOptions(32))); n == 0 {
		t.Error("empty ICU universe")
	}
	if n := len(PerfCounters(DefaultOptions(32))); n == 0 {
		t.Error("empty counter universe")
	}
}

func TestUniverseUniqueSites(t *testing.T) {
	all := ForwardingLogic(DefaultOptions(64))
	all = append(all, HDCU(DefaultOptions(32))...)
	all = append(all, ICU(DefaultOptions(32))...)
	all = append(all, PerfCounters(DefaultOptions(32))...)
	seen := map[Site]bool{}
	for _, s := range all {
		if seen[s] {
			t.Fatalf("duplicate site %v", s)
		}
		seen[s] = true
	}
}

func TestUniverseBitStep(t *testing.T) {
	full := ForwardingLogic(DefaultOptions(32))
	quarter := ForwardingLogic(ListOptions{DataBits: 32, BitStep: 4})
	if len(quarter) >= len(full) {
		t.Error("BitStep did not reduce the universe")
	}
}

func TestSimulateSyntheticCampaign(t *testing.T) {
	sites := ForwardingLogic(ListOptions{DataBits: 32, BitStep: 8})
	// Synthetic runner: "detects" any fault on operand A of lane 0 by
	// perturbing the signature; everything else is silent.
	run := func(p Plane) (uint32, bool) {
		v := p.MuxData(0, 0, PathEXL0, 0x1234)
		v = p.MuxData(0, 0, PathEXL1, v)
		v = p.MuxData(0, 0, PathMEML0, v)
		v = p.MuxData(0, 0, PathMEML1, v)
		return uint32(v), true
	}
	rep := Simulate(sites, run, 4)
	if rep.Golden != 0x1234 {
		t.Errorf("golden = %#x", rep.Golden)
	}
	wantDetected := 0
	for _, s := range sites {
		if s.Signal == SigMuxData && s.Lane == 0 && s.Operand == 0 &&
			// Stuck value must actually flip the bit of 0x1234.
			((s.Stuck == 1 && 0x1234&(1<<s.Bit) == 0) || (s.Stuck == 0 && 0x1234&(1<<s.Bit) != 0)) {
			wantDetected++
		}
	}
	if rep.Detected != wantDetected {
		t.Errorf("detected %d, want %d", rep.Detected, wantDetected)
	}
	if got := len(rep.Undetected()); got != rep.Total-rep.Detected {
		t.Errorf("undetected list %d", got)
	}
	by := rep.BySignal()
	for i := 1; i < len(by); i++ {
		if by[i].Signal <= by[i-1].Signal {
			t.Error("BySignal breakdown not ordered by signal")
		}
	}
	for _, st := range by {
		if st.Signal == SigMuxSel && st.Detected != 0 {
			t.Error("select faults cannot be detected by this runner")
		}
	}
}

func TestSimulateCrashCountsAsDetected(t *testing.T) {
	sites := []Site{{Unit: UnitHDCU, Signal: SigCtl, Path: CtlLoadUse, Stuck: 1}}
	run := func(p Plane) (uint32, bool) {
		if p.Ctl(CtlLoadUse, false) {
			return 0, false // deadlock -> watchdog
		}
		return 99, true
	}
	rep := Simulate(sites, run, 1)
	if rep.Detected != 1 || !rep.Results[0].Crashed {
		t.Errorf("crash not detected: %+v", rep.Results[0])
	}
}

func TestMinMax(t *testing.T) {
	r1 := Report{Total: 100, Detected: 60}
	r2 := Report{Total: 100, Detected: 75}
	mm := NewMinMax([]Report{r1, r2})
	if mm.Min != 60 || mm.Max != 75 || mm.Spread() != 15 {
		t.Errorf("minmax %+v", mm)
	}
}

func TestSortAndSample(t *testing.T) {
	sites := ForwardingLogic(DefaultOptions(32))
	SortSites(sites)
	for i := 1; i < len(sites); i++ {
		if sites[i] == sites[i-1] {
			t.Fatal("duplicate after sort")
		}
	}
	s4 := Sample(sites, 4)
	if len(s4) != (len(sites)+3)/4 {
		t.Errorf("sample size %d of %d", len(s4), len(sites))
	}
}

func TestForceBitProperty(t *testing.T) {
	prop := func(v uint32, bit uint8, stuck bool) bool {
		bit %= 32
		var st uint8
		if stuck {
			st = 1
		}
		got := forceBit32(v, bit, st)
		otherBitsSame := got&^(uint32(1)<<bit) == v&^(uint32(1)<<bit)
		if stuck {
			return got&(1<<bit) != 0 && otherBitsSame
		}
		return got&(1<<bit) == 0 && otherBitsSame
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTransitionFaultEdges(t *testing.T) {
	site := Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowRise,
		Lane: 0, Operand: 0, Path: PathEXL0, Bit: 4}
	f := NewTransition(site)
	// First use: no history, value passes.
	if v := f.MuxData(0, 0, PathEXL0, 1<<4); v != 1<<4 {
		t.Errorf("first use corrupted: %#x", v)
	}
	// 1 -> 1: no edge, passes.
	if v := f.MuxData(0, 0, PathEXL0, 1<<4); v != 1<<4 {
		t.Errorf("steady high corrupted: %#x", v)
	}
	// 1 -> 0: falling edge is healthy on a slow-to-rise fault.
	if v := f.MuxData(0, 0, PathEXL0, 0); v != 0 {
		t.Errorf("fall corrupted: %#x", v)
	}
	// 0 -> 1: the rising edge is late; the stale 0 is delivered once.
	if v := f.MuxData(0, 0, PathEXL0, 1<<4); v != 0 {
		t.Errorf("slow rise not modelled: %#x", v)
	}
	// Recovered on the next use.
	if v := f.MuxData(0, 0, PathEXL0, 1<<4); v != 1<<4 {
		t.Errorf("did not recover: %#x", v)
	}
	// Other paths untouched.
	if v := f.MuxData(0, 0, PathEXL1, 0); v != 0 {
		t.Error("fault leaked to another path")
	}
}

func TestTransitionSlowFall(t *testing.T) {
	site := Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowFall,
		Lane: 1, Operand: 1, Path: PathCascade, Bit: 0}
	f := NewTransition(site)
	f.MuxData(1, 1, PathCascade, 1) // line high
	if v := f.MuxData(1, 1, PathCascade, 0); v != 1 {
		t.Errorf("slow fall not modelled: %#x", v)
	}
	if v := f.MuxData(1, 1, PathCascade, 0); v != 0 {
		t.Errorf("did not recover: %#x", v)
	}
}

func TestTransitionUniverse(t *testing.T) {
	sites := TransitionFaults(DefaultOptions(32))
	wantData := (4 + 5) * 2 * 32 * 2 // same line count as stuck-at, 2 kinds
	if len(sites) != wantData {
		t.Errorf("universe = %d, want %d", len(sites), wantData)
	}
	for _, s := range sites {
		if s.Kind == KindStuckAt {
			t.Fatal("stuck-at site in transition universe")
		}
	}
	SortSites(sites)
	seen := map[Site]bool{}
	for _, s := range sites {
		if seen[s] {
			t.Fatal("duplicate transition site")
		}
		seen[s] = true
	}
}

func TestPlaneForDispatch(t *testing.T) {
	sa := Site{Unit: UnitFwd, Signal: SigMuxData, Stuck: 1}
	if _, ok := PlaneFor(sa).(*Single); !ok {
		t.Error("stuck-at site got wrong plane")
	}
	tr := Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowRise}
	if _, ok := PlaneFor(tr).(*Transition); !ok {
		t.Error("transition site got wrong plane")
	}
}

func TestTransitionIdentityHooks(t *testing.T) {
	f := NewTransition(Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowRise})
	if f.MuxSel(0, 0, 3) != 3 || !f.CmpEq(1, 5, 5) || f.CmpEq(1, 5, 6) {
		t.Error("select/compare hooks not identity")
	}
	if !f.Ctl(CtlLoadUse, true) || f.EvLine(0, false) {
		t.Error("control/event hooks not identity")
	}
	if f.Cause(3) != 3 || f.Dist(9) != 9 || f.Enable(7) != 7 || f.EPC(0x80) != 0x80 {
		t.Error("ICU hooks not identity")
	}
	if f.CounterRead(1, 42) != 42 || !f.CounterInc(1, true) {
		t.Error("counter hooks not identity")
	}
}

func TestSiteAndKindStrings(t *testing.T) {
	sa := Site{Unit: UnitFwd, Signal: SigMuxData, Lane: 1, Operand: 1,
		Path: PathCascade, Bit: 17, Stuck: 0}
	if got := sa.String(); got != "FWD/muxdata L1 opB p5 b17 SA0" {
		t.Errorf("stuck-at string %q", got)
	}
	tr := Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowFall,
		Lane: 0, Operand: 0, Path: PathEXL0, Bit: 3}
	if got := tr.String(); got != "FWD/muxdata L0 opA p1 b3 STF" {
		t.Errorf("transition string %q", got)
	}
	for k, want := range map[Kind]string{KindStuckAt: "SA", KindSlowRise: "STR", KindSlowFall: "STF", Kind(9): "?"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q", k, k.String())
		}
	}
	for u, want := range map[Unit]string{UnitFwd: "FWD", UnitHDCU: "HDCU", UnitICU: "ICU", UnitPerf: "PERF", Unit(9): "?"} {
		if u.String() != want {
			t.Errorf("Unit(%d) = %q", u, u.String())
		}
	}
	if Signal(200).String() != "?" {
		t.Error("out-of-range signal string")
	}
}

func TestComparatorIDsDisjoint(t *testing.T) {
	seen := map[uint8]string{}
	add := func(id uint8, name string) {
		if prev, dup := seen[id]; dup {
			t.Errorf("comparator id %d used by both %s and %s", id, prev, name)
		}
		seen[id] = name
	}
	for path := uint8(PathEXL0); path <= PathCascade; path++ {
		for lane := uint8(0); lane < 2; lane++ {
			for op := uint8(0); op < 2; op++ {
				add(CmpFwd(path, lane, op), "fwd")
			}
		}
	}
	for ex := uint8(0); ex < 2; ex++ {
		for cand := uint8(0); cand < 2; cand++ {
			for op := uint8(0); op < 2; op++ {
				add(CmpLoadUse(ex, cand, op), "loaduse")
			}
		}
	}
	for k := uint8(0); k < 3; k++ {
		add(CmpIntra(k), "intra")
	}
	for id := range seen {
		if id >= NumCmp {
			t.Errorf("comparator id %d out of the enumerated space", id)
		}
	}
}

func TestSingleICUFullHookSet(t *testing.T) {
	cause := NewSingle(Site{Unit: UnitICU, Signal: SigCause, Bit: 1, Stuck: 1})
	if cause.Cause(0) != 2 {
		t.Error("cause bit not forced")
	}
	if cause.Enable(5) != 5 || cause.EPC(7) != 7 {
		t.Error("cause fault leaked into other hooks")
	}
	en := NewSingle(Site{Unit: UnitICU, Signal: SigEnable, Bit: 0, Stuck: 0})
	if en.Enable(0xF) != 0xE {
		t.Error("enable bit not forced")
	}
	epc := NewSingle(Site{Unit: UnitICU, Signal: SigEPC, Bit: 4, Stuck: 1})
	if epc.EPC(0) != 16 {
		t.Error("epc bit not forced")
	}
	cnt := NewSingle(Site{Unit: UnitPerf, Signal: SigCntBit, Lane: CntIFStall, Bit: 2, Stuck: 0})
	if cnt.CounterRead(CntIFStall, 0xF) != 0xB {
		t.Error("counter bit not forced")
	}
	if cnt.CounterRead(CntMemStall, 0xF) != 0xF {
		t.Error("counter fault leaked to other counter")
	}
	ev := NewSingle(Site{Unit: UnitICU, Signal: SigEvLine, Path: 1, Stuck: 0})
	if ev.EvLine(1, true) {
		t.Error("event line stuck-at-0 still asserted")
	}
}

func TestReportString(t *testing.T) {
	r := Report{Golden: 0xABCD, Total: 10, Detected: 7}
	s := r.String()
	if s == "" || r.Coverage() != 70 {
		t.Errorf("report string %q coverage %f", s, r.Coverage())
	}
	empty := Report{}
	if empty.Coverage() != 0 {
		t.Error("empty report coverage")
	}
}
