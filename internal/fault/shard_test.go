package fault

import (
	"path/filepath"
	"reflect"
	"testing"
)

func TestShardRanges(t *testing.T) {
	cases := []struct {
		total, size int
		want        []ShardRange
	}{
		{0, 4, nil},
		{-3, 4, nil},
		{10, 4, []ShardRange{{0, 4}, {4, 8}, {8, 10}}},
		{8, 4, []ShardRange{{0, 4}, {4, 8}}},
		{3, 0, []ShardRange{{0, 3}}},
		{3, -1, []ShardRange{{0, 3}}},
		{3, 100, []ShardRange{{0, 3}}},
		{1, 1, []ShardRange{{0, 1}}},
	}
	for _, c := range cases {
		got := ShardRanges(c.total, c.size)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("ShardRanges(%d, %d) = %v, want %v", c.total, c.size, got, c.want)
		}
	}
	// The partition is exact: every index appears in exactly one range.
	covered := 0
	for _, r := range ShardRanges(1037, 64) {
		if r.Lo != covered {
			t.Fatalf("range %v does not start where the previous ended (%d)", r, covered)
		}
		if r.Len() <= 0 {
			t.Fatalf("empty range %v", r)
		}
		covered = r.Hi
	}
	if covered != 1037 {
		t.Fatalf("ranges cover %d of 1037 sites", covered)
	}
}

func TestJournalShardState(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.journal")
	h := JournalHeader{Program: "p", Universe: "u", Env: "e", Sites: 10}
	j, err := CreateJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.BindGolden(0xdead, true); err != nil {
		t.Fatal(err)
	}
	for _, i := range []int{1, 3, 4, 9} {
		res := SiteResult{Signature: uint32(i), Detected: true}
		if err := j.Record(i, res, "", ""); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := ResumeJournal(path, h)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if got, want := r.SettledIndices(), []int{1, 3, 4, 9}; !reflect.DeepEqual(got, want) {
		t.Errorf("SettledIndices = %v, want %v", got, want)
	}
	if got, want := r.Unsettled(0, 5), []int{0, 2}; !reflect.DeepEqual(got, want) {
		t.Errorf("Unsettled(0,5) = %v, want %v", got, want)
	}
	if got := r.Unsettled(3, 5); got != nil {
		t.Errorf("Unsettled(3,5) = %v, want nil (shard complete)", got)
	}
	sig, ok, bound := r.Golden()
	if !bound || sig != 0xdead || !ok {
		t.Errorf("Golden = %08x/%v bound=%v, want dead/true bound", sig, ok, bound)
	}
	if got := r.Header(); got.Universe != "u" || got.Sites != 10 {
		t.Errorf("Header = %+v", got)
	}
}
