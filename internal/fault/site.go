package fault

import "fmt"

// Unit identifies the module a fault site belongs to.
type Unit uint8

const (
	UnitFwd  Unit = iota // forwarding logic (mux network)
	UnitHDCU             // hazard detection control unit
	UnitICU              // interrupt control unit
	UnitPerf             // performance counters
)

func (u Unit) String() string {
	switch u {
	case UnitFwd:
		return "FWD"
	case UnitHDCU:
		return "HDCU"
	case UnitICU:
		return "ICU"
	case UnitPerf:
		return "PERF"
	}
	return "?"
}

// Signal classes within a unit.
type Signal uint8

const (
	SigMuxData Signal = iota // forwarding mux input data line
	SigMuxSel                // forwarding mux select line
	SigCmp                   // hazard comparator XNOR output bit
	SigCtl                   // hazard control line (stall/split/cascade)
	SigEvLine                // ICU event pending line
	SigCause                 // ICU cause register bit
	SigDist                  // ICU distance counter bit
	SigEnable                // ICU enable mask bit
	SigEPC                   // ICU saved-PC register bit
	SigCntBit                // performance counter register bit
	SigCntInc                // performance counter increment enable
)

func (s Signal) String() string {
	names := [...]string{"muxdata", "muxsel", "cmp", "ctl", "evline",
		"cause", "dist", "enable", "epc", "cntbit", "cntinc"}
	if int(s) < len(names) {
		return names[s]
	}
	return "?"
}

// Forwarding mux input indices (the Path field of mux fault sites). Path 0
// is the register-file input; its data lines belong to the register file
// module, not the forwarding logic, so the forwarding fault list enumerates
// paths 1..5 only. The consumer-side mux select still encodes path 0.
const (
	PathRF      = 0
	PathEXL0    = 1 // EX/MEM latch, lane 0: the paper's "EX to EX" path
	PathEXL1    = 2 // EX/MEM latch, lane 1
	PathMEML0   = 3 // MEM/WB latch, lane 0 ("MEM to EX", carries load data)
	PathMEML1   = 4 // MEM/WB latch, lane 1
	PathCascade = 5 // same-packet lane0 -> lane1 (interpipeline path)
	NumPaths    = 6
	SelBits     = 3 // select encoding width
)

// Hazard control lines (the Path field of SigCtl sites).
const (
	CtlLoadUse = 0 // load-use stall request
	CtlSplit   = 1 // issue-packet split request
	CtlCascade = 2 // cascade (interpipeline forwarding) enable
	NumCtl     = 3
)

// Comparator identifiers (the Path field of SigCmp sites). Forwarding
// comparators compare a producer destination against a consumer source;
// there is one per (producer path, consumer lane, consumer operand).
// Load-use comparators live at the issue stage.
const (
	cmpFwdBase     = 0  // (path-1)*4 + lane*2 + operand, paths 1..5 => 0..19
	cmpLoadUseBase = 20 // exLane*4 + candLane*2 + operand => 20..27
	cmpIntraBase   = 28 // intra-packet RAW/WAW comparators => 28..31
	NumCmp         = 32
	CmpBits        = 5 // register indices are 5 bits wide
)

// CmpFwd returns the comparator ID for a forwarding match of producer path
// (1..5) against consumer (lane, operand).
func CmpFwd(path, lane, operand uint8) uint8 {
	return cmpFwdBase + (path-1)*4 + lane*2 + operand
}

// CmpLoadUse returns the comparator ID for the issue-stage load-use check
// of EX-stage lane exLane against issue candidate (candLane, operand).
func CmpLoadUse(exLane, candLane, operand uint8) uint8 {
	return cmpLoadUseBase + exLane*4 + candLane*2 + operand
}

// CmpIntra returns the comparator ID for intra-packet dependency checks
// (kind 0: RAW on operand A, 1: RAW on operand B, 2: WAW, 3: spare).
func CmpIntra(kind uint8) uint8 { return cmpIntraBase + kind }

// ICU event lines (the Lane field of ICU sites is unused; Path is the
// line).
const (
	EvOverflowAdd = 0
	EvOverflowSub = 1
	EvOverflowMul = 2
	EvDivZero     = 3
	NumEvents     = 4
)

// Performance counter IDs (the Lane field of SigCnt sites); these mirror
// the CSR numbers in internal/isa.
const (
	CntCycle    = 0
	CntInstret  = 1
	CntIFStall  = 2
	CntMemStall = 3
	CntHazStall = 4
	CntIssued2  = 5
	NumCounters = 6
)

// Site is one fault location. Kind selects the fault model: classic
// stuck-at (the paper's evaluation) or the transition faults of its
// future-work note (see delay.go).
type Site struct {
	Unit    Unit
	Signal  Signal
	Kind    Kind  // KindStuckAt (default), KindSlowRise, KindSlowFall
	Lane    uint8 // consumer lane (muxes), counter ID (counters)
	Operand uint8 // consumer operand: 0 = A, 1 = B
	Path    uint8 // mux input / comparator ID / control line / event line
	Bit     uint8 // bit position within the signal
	Stuck   uint8 // 0 or 1 (stuck-at only)
}

// String renders the site compactly, e.g. "FWD/muxdata L1 opA p5 b17 SA0".
func (s Site) String() string {
	if s.Kind != KindStuckAt {
		return fmt.Sprintf("%v/%v L%d op%c p%d b%d %v",
			s.Unit, s.Signal, s.Lane, 'A'+s.Operand, s.Path, s.Bit, s.Kind)
	}
	return fmt.Sprintf("%v/%v L%d op%c p%d b%d SA%d",
		s.Unit, s.Signal, s.Lane, 'A'+s.Operand, s.Path, s.Bit, s.Stuck)
}

func forceBit32(v uint32, bit, stuck uint8) uint32 {
	if stuck == 0 {
		return v &^ (1 << bit)
	}
	return v | 1<<bit
}

func forceBit64(v uint64, bit, stuck uint8) uint64 {
	if stuck == 0 {
		return v &^ (1 << bit)
	}
	return v | 1<<bit
}

func forceBool(stuck uint8) bool { return stuck != 0 }
