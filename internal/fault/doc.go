// Package fault provides the structural stuck-at fault model for the
// modules the paper's self-test routines target: the forwarding multiplexer
// network and hazard detection control unit (HDCU), the interrupt control
// unit (ICU), and the performance counters. It defines the fault-site
// universe, the injection plane the CPU consults on every relevant signal,
// and (in sim.go) the fault-simulation campaign driver.
//
// The paper fault-grades a post-layout gate-level netlist with a commercial
// fault simulator; the absolute fault counts there (tens of thousands per
// module) come from the physical implementation. Here the universe is
// enumerated over the architectural signals of the same modules — data and
// select lines of every forwarding path, hazard comparators and control
// lines, ICU pending/cause/distance/enable bits, counter bits — which
// preserves the property the experiments measure: a fault is detectable
// only in runs whose instruction stream exercises its signal.
package fault
