package fault

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestDispatchPathString(t *testing.T) {
	want := map[DispatchPath]string{
		DispatchFullReplay:  "full_replay",
		DispatchCheckpoint:  "checkpoint_restore",
		DispatchFastForward: "fast_forward",
		DispatchGolden:      "golden_shortcut",
		DispatchFallback:    "fallback",
	}
	if len(want) != int(NumDispatchPaths) {
		t.Fatalf("test covers %d paths, enum has %d", len(want), NumDispatchPaths)
	}
	for p, name := range want {
		if p.String() != name {
			t.Errorf("path %d = %q, want %q", p, p.String(), name)
		}
	}
	if got := NumDispatchPaths.String(); got != "path5" {
		t.Errorf("out-of-range path = %q, want path5", got)
	}
}

func TestDispatchStatsArithmetic(t *testing.T) {
	var d DispatchStats
	d[DispatchFullReplay] = 3
	d[DispatchCheckpoint] = 10
	d[DispatchFastForward] = 2
	d[DispatchGolden] = 4
	d[DispatchFallback] = 1
	if got := d.Total(); got != 20 {
		t.Errorf("Total = %d, want 20", got)
	}
	if got := d.Shortcuts(); got != 16 {
		t.Errorf("Shortcuts = %d, want 16", got)
	}
	var sum DispatchStats
	sum.Add(d)
	sum.Add(d)
	if got := sum.Total(); got != 40 {
		t.Errorf("after two Adds Total = %d, want 40", got)
	}
	s := d.String()
	for _, frag := range []string{
		"3 full-replay", "10 checkpoint", "2 fast-forward",
		"4 golden-shortcut", "1 fallback", "80.0% shortcut",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("DispatchStats.String misses %q:\n%s", frag, s)
		}
	}
	if s := (DispatchStats{}).String(); !strings.Contains(s, "0.0% shortcut") {
		t.Errorf("empty stats should render a 0%% rate, got %s", s)
	}
}

// TestSameVerdictsIgnoresDispatch pins the equality the resume and
// mode-equivalence tests rely on: Dispatch differences do not break
// verdict equality, while any verdict-bearing difference does.
func TestSameVerdictsIgnoresDispatch(t *testing.T) {
	a := Report{Golden: 0xdead, GoldenOK: true, Total: 2, Detected: 1}
	b := a
	b.Dispatch[DispatchCheckpoint] = 7
	if !a.SameVerdicts(b) {
		t.Error("dispatch-only difference broke SameVerdicts")
	}
	b.Detected = 2
	if a.SameVerdicts(b) {
		t.Error("verdict difference not caught by SameVerdicts")
	}
}

// TestReportJSONExcludesDispatch pins that report files stay
// byte-comparable across engine modes: the dispatch counts (which differ
// between arena and reference runs of the same campaign) must not appear
// in the JSON encoding.
func TestReportJSONExcludesDispatch(t *testing.T) {
	r := Report{Total: 1}
	r.Dispatch[DispatchFullReplay] = 1
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(strings.ToLower(string(blob)), "dispatch") {
		t.Errorf("Report JSON leaks dispatch counts: %s", blob)
	}
}

// TestReportStringDispatchLine pins that Report.String appends the
// dispatch line exactly when counts exist.
func TestReportStringDispatchLine(t *testing.T) {
	r := Report{GoldenOK: true, Total: 1, Detected: 1}
	if strings.Contains(r.String(), "dispatch:") {
		t.Error("dispatch line rendered with no counts")
	}
	r.Dispatch[DispatchCheckpoint] = 1
	if !strings.Contains(r.String(), "dispatch: 0 full-replay, 1 checkpoint") {
		t.Errorf("dispatch line missing:\n%s", r.String())
	}
}
