package fault

// Transition (delay) fault extension — the paper's future-work note:
// "[the problem] might be further emphasized with delay faults which
// require test patterns applied in a timed sequence." A slow-to-rise or
// slow-to-fall defect on a forwarding data line only misbehaves when the
// line toggles on consecutive uses; detecting it requires the test to
// drive a timed two-pattern sequence through the same path — which is
// impossible to guarantee when bus contention reshuffles issue packets,
// and exactly what the cache-based strategy restores.
//
// Model: the faulty line's previous value is remembered per use of its
// path; when the new value requires the slow edge, the line delivers the
// stale bit for that use and recovers afterwards.

// Kind distinguishes the fault models.
type Kind uint8

const (
	KindStuckAt  Kind = iota // classic stuck-at (the paper's evaluation)
	KindSlowRise             // transition fault: 0->1 edge delayed one use
	KindSlowFall             // transition fault: 1->0 edge delayed one use
)

func (k Kind) String() string {
	switch k {
	case KindStuckAt:
		return "SA"
	case KindSlowRise:
		return "STR"
	case KindSlowFall:
		return "STF"
	}
	return "?"
}

// Transition is an injection plane for one transition fault on a
// forwarding-mux data line. It is stateful (remembers the line's previous
// value) but fully deterministic; like all planes it must only be used by
// one core.
type Transition struct {
	S Site // Site.Kind selects slow-rise or slow-fall; Stuck is unused

	prev     uint64
	prevSeen bool
}

// NewTransition returns a plane injecting the transition fault s.
func NewTransition(s Site) *Transition { return &Transition{S: s} }

// ResetState clears the plane's edge history, as if it had never observed
// the line. A Transition that already executed must be reset (or rebuilt
// via PlaneFor) before serving a fresh run from cycle 0 — stale history
// would otherwise leak the previous run's last line value into the new
// run's first edge decision.
func (f *Transition) ResetState() {
	f.prev = 0
	f.prevSeen = false
}

// SeedHistory sets the plane's edge history to a known (value, seen) pair —
// the line history a golden-run checkpoint recorded for this site's line.
// Seeding before a checkpoint-restored run makes the plane behave exactly
// as if it had replayed the whole prefix, which is sound as long as the
// restore point precedes the site's first activating edge (before that
// edge the faulty run is bit-identical to the golden run).
func (f *Transition) SeedHistory(prev uint64, seen bool) {
	f.prev = prev
	f.prevSeen = seen
}

// History returns the plane's current edge history (the line value it last
// observed, and whether it observed one at all) — the counterpart of
// SeedHistory, used to compare a run's plane state against a golden
// checkpoint's recorded history.
func (f *Transition) History() (prev uint64, seen bool) {
	return f.prev, f.prevSeen
}

// MuxData implements Plane: on the faulty (lane, operand, path) line, a
// delayed edge delivers the previous bit value once. Like Single.MuxData,
// only a forwarding-unit mux-data site injects here — a site for another
// unit handed to NewTransition stays transparent.
func (f *Transition) MuxData(lane, operand, path uint8, v uint64) uint64 {
	s := f.S
	if s.Unit != UnitFwd || s.Signal != SigMuxData ||
		s.Lane != lane || s.Operand != operand || s.Path != path {
		return v
	}
	bit := (v >> s.Bit) & 1
	out := v
	if f.prevSeen {
		prevBit := (f.prev >> s.Bit) & 1
		switch s.Kind {
		case KindSlowRise:
			if prevBit == 0 && bit == 1 {
				out = v &^ (1 << s.Bit)
			}
		case KindSlowFall:
			if prevBit == 1 && bit == 0 {
				out = v | 1<<s.Bit
			}
		}
	}
	f.prev = v
	f.prevSeen = true
	return out
}

// The remaining hooks are identity: transition faults are modelled on the
// forwarding data lines only.

func (f *Transition) MuxSel(_, _, sel uint8) uint8         { return sel }
func (f *Transition) CmpEq(_ uint8, a, b uint8) bool       { return a == b }
func (f *Transition) Ctl(_ uint8, v bool) bool             { return v }
func (f *Transition) EvLine(_ uint8, v bool) bool          { return v }
func (f *Transition) Cause(v uint32) uint32                { return v }
func (f *Transition) Dist(v uint32) uint32                 { return v }
func (f *Transition) Enable(v uint32) uint32               { return v }
func (f *Transition) EPC(v uint32) uint32                  { return v }
func (f *Transition) CounterRead(_ uint8, v uint32) uint32 { return v }
func (f *Transition) CounterInc(_ uint8, inc bool) bool    { return inc }

var _ Plane = (*Transition)(nil)

// TransitionFaults enumerates slow-to-rise and slow-to-fall faults on
// every forwarding bypass data line (paths 1..5, like ForwardingLogic).
func TransitionFaults(o ListOptions) []Site {
	o = o.norm()
	var sites []Site
	for lane := uint8(0); lane < 2; lane++ {
		for op := uint8(0); op < 2; op++ {
			for path := uint8(PathEXL0); path <= PathCascade; path++ {
				if path == PathCascade && lane == 0 {
					continue
				}
				for bit := 0; bit < o.DataBits; bit += o.BitStep {
					for _, k := range []Kind{KindSlowRise, KindSlowFall} {
						sites = append(sites, Site{
							Unit: UnitFwd, Signal: SigMuxData, Kind: k,
							Lane: lane, Operand: op, Path: path, Bit: uint8(bit),
						})
					}
				}
			}
		}
	}
	return sites
}

// PlaneFor builds the right plane for a site's kind.
func PlaneFor(s Site) Plane {
	if s.Kind == KindStuckAt {
		return NewSingle(s)
	}
	return NewTransition(s)
}
