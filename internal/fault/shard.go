package fault

// Shard partitioning: a campaign service splits one fault universe into
// contiguous index ranges so the sites can be distributed across worker
// processes and cached per range. The partition is a pure function of
// (universe size, shard size), so two submissions of the same campaign
// always agree on shard boundaries — which is what lets a content-addressed
// store serve a previously completed range without resimulation.

import "fmt"

// ShardRange is one contiguous half-open index range [Lo, Hi) of a fault
// universe.
type ShardRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Len returns the number of sites in the range.
func (r ShardRange) Len() int { return r.Hi - r.Lo }

// String renders the range in the "lo-hi" form the service's shard URLs
// use.
func (r ShardRange) String() string { return fmt.Sprintf("%d-%d", r.Lo, r.Hi) }

// ShardRanges partitions a universe of total sites into contiguous ranges
// of at most size sites each (the final range carries the remainder).
// size <= 0 yields a single range covering the whole universe; total <= 0
// yields no ranges.
func ShardRanges(total, size int) []ShardRange {
	if total <= 0 {
		return nil
	}
	if size <= 0 || size > total {
		size = total
	}
	out := make([]ShardRange, 0, (total+size-1)/size)
	for lo := 0; lo < total; lo += size {
		hi := lo + size
		if hi > total {
			hi = total
		}
		out = append(out, ShardRange{Lo: lo, Hi: hi})
	}
	return out
}
