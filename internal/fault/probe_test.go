package fault

import "testing"

// A Transition built for a non-forwarding site must stay transparent on the
// forwarding data lines, exactly like Single.MuxData does for its sites —
// otherwise an HDCU or ICU transition site would corrupt mux traffic it was
// never meant to touch.
func TestTransitionIgnoresNonForwardingSite(t *testing.T) {
	foreign := []Site{
		{Unit: UnitHDCU, Signal: SigMuxData, Kind: KindSlowRise, Path: PathEXL0, Bit: 4},
		{Unit: UnitFwd, Signal: SigMuxSel, Kind: KindSlowRise, Path: PathEXL0, Bit: 4},
		{Unit: UnitICU, Signal: SigEvLine, Kind: KindSlowFall, Path: 1, Bit: 0},
	}
	for _, s := range foreign {
		f := NewTransition(s)
		// Drive the exact edge pattern that would trigger the fault on a
		// matching forwarding site: 0 then 1 (rise), then 1 then 0 (fall).
		for _, v := range []uint64{0, 1 << s.Bit, 1 << s.Bit, 0} {
			if got := f.MuxData(s.Lane, s.Operand, s.Path, v); got != v {
				t.Errorf("site %v corrupted mux data: sent %#x, got %#x", s, v, got)
			}
		}
	}

	// Control: the same edge pattern on a matching forwarding site does
	// delay the rise, proving the pattern above is an activating one.
	s := Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowRise, Path: PathEXL0, Bit: 4}
	f := NewTransition(s)
	f.MuxData(s.Lane, s.Operand, s.Path, 0)
	if got := f.MuxData(s.Lane, s.Operand, s.Path, 1<<4); got != 0 {
		t.Errorf("forwarding control site did not inject: got %#x, want 0", got)
	}
}

func TestTransitionHistoryRoundTrip(t *testing.T) {
	s := Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowFall, Path: PathMEML0, Bit: 1}
	f := NewTransition(s)
	if prev, seen := f.History(); prev != 0 || seen {
		t.Fatalf("fresh plane history = (%#x, %v), want (0, false)", prev, seen)
	}
	f.MuxData(s.Lane, s.Operand, s.Path, 0xAB)
	if prev, seen := f.History(); prev != 0xAB || !seen {
		t.Fatalf("history after one use = (%#x, %v), want (0xAB, true)", prev, seen)
	}
	f.ResetState()
	if prev, seen := f.History(); prev != 0 || seen {
		t.Fatalf("history after ResetState = (%#x, %v), want (0, false)", prev, seen)
	}
	f.SeedHistory(0x2, true)
	// Seeded history drives the next edge decision: 1 -> 0 on bit 1 is a
	// fall, so the slow-fall fault holds the stale 1.
	if got := f.MuxData(s.Lane, s.Operand, s.Path, 0); got != 0x2 {
		t.Errorf("seeded slow fall not modelled: got %#x, want 0x2", got)
	}
}

func TestMuxProbeActivationCycles(t *testing.T) {
	now := int64(0)
	p := NewMuxProbe(func() int64 { return now })

	// Line (0,0,PathEXL0): 0 @10, 1 @20 (rise), 1 @30, 0 @40 (fall),
	// 1 @50 (rise), 0 @60 (fall). First use records no edge.
	drive := func(cycle int64, v uint64) {
		now = cycle
		if got := p.MuxData(0, 0, PathEXL0, v); got != v {
			t.Fatalf("probe modified value at cycle %d: %#x -> %#x", cycle, v, got)
		}
	}
	drive(10, 0)
	drive(20, 1)
	drive(30, 1)
	drive(40, 0)
	drive(50, 1)
	drive(60, 0)

	rise := Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowRise, Path: PathEXL0, Bit: 0}
	fall := rise
	fall.Kind = KindSlowFall
	if got := p.FirstActivation(rise); got != 20 {
		t.Errorf("FirstActivation(rise) = %d, want 20", got)
	}
	if got := p.LastActivation(rise); got != 50 {
		t.Errorf("LastActivation(rise) = %d, want 50", got)
	}
	if got := p.FirstActivation(fall); got != 40 {
		t.Errorf("FirstActivation(fall) = %d, want 40", got)
	}
	if got := p.LastActivation(fall); got != 60 {
		t.Errorf("LastActivation(fall) = %d, want 60", got)
	}
	for _, tc := range []struct {
		after int64
		want  int64
	}{{0, 20}, {20, 50}, {49, 50}, {50, -1}} {
		if got := p.NextActivation(rise, tc.after); got != tc.want {
			t.Errorf("NextActivation(rise, %d) = %d, want %d", tc.after, got, tc.want)
		}
	}
	if got := p.NextActivation(fall, 40); got != 60 {
		t.Errorf("NextActivation(fall, 40) = %d, want 60", got)
	}

	// A bit that never toggles on this line never activates.
	idle := rise
	idle.Bit = 7
	if got := p.FirstActivation(idle); got != -1 {
		t.Errorf("FirstActivation(idle bit) = %d, want -1", got)
	}
	if got := p.NextActivation(idle, 0); got != -1 {
		t.Errorf("NextActivation(idle bit) = %d, want -1", got)
	}
	// Untouched lines never activate either.
	other := rise
	other.Path = PathMEML1
	if got := p.FirstActivation(other); got != -1 {
		t.Errorf("FirstActivation(untouched line) = %d, want -1", got)
	}
}

func TestMuxProbeSiteConventions(t *testing.T) {
	p := NewMuxProbe(func() int64 { return 0 })
	stuck := Site{Unit: UnitHDCU, Signal: SigCtl, Kind: KindStuckAt, Path: 1}
	if got := p.FirstActivation(stuck); got != 0 {
		t.Errorf("FirstActivation(stuck-at) = %d, want 0 (always live)", got)
	}
	if got := p.LastActivation(stuck); got != 0 {
		t.Errorf("LastActivation(stuck-at) = %d, want 0", got)
	}
	if got := p.NextActivation(stuck, 100); got != 0 {
		t.Errorf("NextActivation(stuck-at) = %d, want 0", got)
	}
	// A Transition for a site its MuxData guard filters never injects.
	foreign := Site{Unit: UnitICU, Signal: SigEvLine, Kind: KindSlowRise, Path: 1}
	if got := p.FirstActivation(foreign); got != -1 {
		t.Errorf("FirstActivation(foreign transition) = %d, want -1", got)
	}
	if got := p.LastActivation(foreign); got != -1 {
		t.Errorf("LastActivation(foreign transition) = %d, want -1", got)
	}
}

func TestMuxProbeHistorySeeding(t *testing.T) {
	now := int64(5)
	p := NewMuxProbe(func() int64 { return now })
	p.MuxData(1, 0, PathEXL1, 0x30)
	h := p.History()

	used := Site{Unit: UnitFwd, Signal: SigMuxData, Kind: KindSlowFall,
		Lane: 1, Operand: 0, Path: PathEXL1, Bit: 4}
	if prev, seen := h.For(used); prev != 0x30 || !seen {
		t.Errorf("History.For(used line) = (%#x, %v), want (0x30, true)", prev, seen)
	}
	unused := used
	unused.Lane = 0
	if prev, seen := h.For(unused); prev != 0 || seen {
		t.Errorf("History.For(unused line) = (%#x, %v), want (0, false)", prev, seen)
	}

	// Seeding a fresh plane from the history reproduces the prefix's edge
	// decision: 0x30 -> 0x20 is a fall on bit 4, held by the slow-fall fault.
	f := NewTransition(used)
	f.SeedHistory(h.For(used))
	if got := f.MuxData(1, 0, PathEXL1, 0x20); got != 0x30 {
		t.Errorf("seeded plane: got %#x, want 0x30 (stale bit held)", got)
	}
	// History snapshots are point-in-time: later probe traffic must not
	// retroactively change h.
	now = 6
	p.MuxData(1, 0, PathEXL1, 0)
	if prev, seen := h.For(used); prev != 0x30 || !seen {
		t.Errorf("history mutated by later traffic: (%#x, %v)", prev, seen)
	}
}
