package fault

// Plane is the injection surface the CPU, HDCU, ICU and counters consult.
// Every method transforms a signal value; the fault-free plane is the
// identity. Implementations must be deterministic and cheap: these hooks
// sit on the pipeline's per-cycle paths.
type Plane interface {
	// MuxData transforms the value delivered by the *selected* input of
	// the forwarding mux feeding (lane, operand). Faults on unselected
	// inputs are masked, as in an AND-OR mux tree.
	MuxData(lane, operand, path uint8, v uint64) uint64
	// MuxSel transforms the select code of the forwarding mux.
	MuxSel(lane, operand, sel uint8) uint8
	// CmpEq transforms a register-index equality comparison. A stuck XNOR
	// output bit makes that bit position always-equal (SA1) or
	// never-equal (SA0).
	CmpEq(cmpID uint8, a, b uint8) bool
	// Ctl transforms a hazard control line.
	Ctl(line uint8, v bool) bool
	// EvLine transforms an ICU event pending line.
	EvLine(line uint8, v bool) bool
	// Cause transforms the ICU cause register value.
	Cause(v uint32) uint32
	// Dist transforms the ICU imprecision distance value.
	Dist(v uint32) uint32
	// Enable transforms the ICU enable mask as seen by recognition logic.
	Enable(v uint32) uint32
	// EPC transforms the ICU saved resume PC.
	EPC(v uint32) uint32
	// CounterRead transforms a performance counter value as read by CSRR.
	CounterRead(id uint8, v uint32) uint32
	// CounterInc gates a performance counter increment.
	CounterInc(id uint8, inc bool) bool
}

// None is the fault-free plane.
var None Plane = noFault{}

// AffectsEvLines reports whether plane p can transform an ICU event line.
// The ICU polls every event line through the plane each clock cycle, so
// knowing a plane is transparent there lets it skip the poll when nothing
// is pending — a sizeable share of the fault-simulation hot path. Unknown
// plane implementations conservatively report true.
func AffectsEvLines(p Plane) bool {
	switch f := p.(type) {
	case noFault:
		return false
	case *Single:
		return f.S.Unit == UnitICU && f.S.Signal == SigEvLine
	case *Transition:
		return false // transition faults live on the forwarding data lines
	case *MuxProbe:
		return false // the probe only watches the forwarding data lines
	case *Composite:
		for _, part := range f.Parts {
			if AffectsEvLines(part) {
				return true
			}
		}
		return false
	}
	return true
}

// AffectsCounterInc reports whether plane p can gate a performance-counter
// increment. The pipeline bumps several counters every clock cycle; a plane
// known to be transparent there lets those bumps skip the per-increment
// plane call. Unknown plane implementations conservatively report true.
func AffectsCounterInc(p Plane) bool {
	switch f := p.(type) {
	case noFault:
		return false
	case *Single:
		return f.S.Unit == UnitPerf && f.S.Signal == SigCntInc
	case *Transition:
		return false
	case *MuxProbe:
		return false
	case *Composite:
		for _, part := range f.Parts {
			if AffectsCounterInc(part) {
				return true
			}
		}
		return false
	}
	return true
}

// ResetPlaneState clears any per-run state plane p carries — a
// Transition's edge history, recursively through Composite components.
// Stateless planes are untouched. Engines call it before serving a fresh
// run from cycle 0 with a plane object that may already have executed.
func ResetPlaneState(p Plane) {
	if r, ok := p.(interface{ ResetState() }); ok {
		r.ResetState()
	}
}

type noFault struct{}

func (noFault) MuxData(_, _, _ uint8, v uint64) uint64 { return v }
func (noFault) MuxSel(_, _, sel uint8) uint8           { return sel }
func (noFault) CmpEq(_ uint8, a, b uint8) bool         { return a == b }
func (noFault) Ctl(_ uint8, v bool) bool               { return v }
func (noFault) EvLine(_ uint8, v bool) bool            { return v }
func (noFault) Cause(v uint32) uint32                  { return v }
func (noFault) Dist(v uint32) uint32                   { return v }
func (noFault) Enable(v uint32) uint32                 { return v }
func (noFault) EPC(v uint32) uint32                    { return v }
func (noFault) CounterRead(_ uint8, v uint32) uint32   { return v }
func (noFault) CounterInc(_ uint8, inc bool) bool      { return inc }

// Single injects exactly one stuck-at fault site.
type Single struct {
	S Site
}

// NewSingle returns a plane with the one fault s injected.
func NewSingle(s Site) *Single { return &Single{S: s} }

func (f *Single) MuxData(lane, operand, path uint8, v uint64) uint64 {
	s := f.S
	if s.Unit == UnitFwd && s.Signal == SigMuxData &&
		s.Lane == lane && s.Operand == operand && s.Path == path {
		return forceBit64(v, s.Bit, s.Stuck)
	}
	return v
}

func (f *Single) MuxSel(lane, operand, sel uint8) uint8 {
	s := f.S
	if s.Unit == UnitFwd && s.Signal == SigMuxSel &&
		s.Lane == lane && s.Operand == operand {
		return uint8(forceBit32(uint32(sel), s.Bit, s.Stuck)) & (1<<SelBits - 1)
	}
	return sel
}

func (f *Single) CmpEq(cmpID uint8, a, b uint8) bool {
	s := f.S
	if s.Unit == UnitHDCU && s.Signal == SigCmp && s.Path == cmpID {
		// Per-bit XNOR outputs, then AND. The faulty bit's XNOR output is
		// stuck: SA1 makes that bit always match, SA0 never.
		xnor := ^(a ^ b) & (1<<CmpBits - 1)
		xnor = uint8(forceBit32(uint32(xnor), s.Bit, s.Stuck))
		return xnor == 1<<CmpBits-1
	}
	return a == b
}

func (f *Single) Ctl(line uint8, v bool) bool {
	s := f.S
	if s.Unit == UnitHDCU && s.Signal == SigCtl && s.Path == line {
		return forceBool(s.Stuck)
	}
	return v
}

func (f *Single) EvLine(line uint8, v bool) bool {
	s := f.S
	if s.Unit == UnitICU && s.Signal == SigEvLine && s.Path == line {
		return forceBool(s.Stuck)
	}
	return v
}

func (f *Single) Cause(v uint32) uint32 {
	s := f.S
	if s.Unit == UnitICU && s.Signal == SigCause {
		return forceBit32(v, s.Bit, s.Stuck)
	}
	return v
}

func (f *Single) Dist(v uint32) uint32 {
	s := f.S
	if s.Unit == UnitICU && s.Signal == SigDist {
		return forceBit32(v, s.Bit, s.Stuck)
	}
	return v
}

func (f *Single) Enable(v uint32) uint32 {
	s := f.S
	if s.Unit == UnitICU && s.Signal == SigEnable {
		return forceBit32(v, s.Bit, s.Stuck)
	}
	return v
}

func (f *Single) EPC(v uint32) uint32 {
	s := f.S
	if s.Unit == UnitICU && s.Signal == SigEPC {
		return forceBit32(v, s.Bit, s.Stuck)
	}
	return v
}

func (f *Single) CounterRead(id uint8, v uint32) uint32 {
	s := f.S
	if s.Unit == UnitPerf && s.Signal == SigCntBit && s.Lane == id {
		return forceBit32(v, s.Bit, s.Stuck)
	}
	return v
}

func (f *Single) CounterInc(id uint8, inc bool) bool {
	s := f.S
	if s.Unit == UnitPerf && s.Signal == SigCntInc && s.Lane == id {
		return forceBool(s.Stuck)
	}
	return inc
}

var (
	_ Plane = noFault{}
	_ Plane = (*Single)(nil)
)
