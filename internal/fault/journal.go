package fault

// Verdict journaling: an append-only, line-delimited JSON record of a
// campaign's settled per-site verdicts, written with one write syscall per
// line so a SIGKILL can corrupt at most the final line. The journal opens
// with a content-addressed header (program image hash, fault-universe
// hash, environment hash), so resuming against a different program,
// universe or SoC configuration is refused instead of silently merged.
// SimulateOpts consumes a Journal: settled sites are skipped and their
// recorded verdicts folded into the Report verbatim, which is what makes a
// resumed campaign bit-identical to an uninterrupted one. This is the
// shard-checkpoint primitive the ROADMAP's campaign service consumes.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"strings"
	"sync"
)

// JournalVersion is the on-disk format version; a mismatch refuses resume.
const JournalVersion = 1

// JournalHeader identifies the campaign a journal belongs to. Program,
// Universe and Env are content hashes (the caller decides what feeds them;
// core.CampaignFingerprint is the canonical producer): two campaigns with
// equal headers are the same pure function and may share verdicts.
type JournalHeader struct {
	Version  int    `json:"version"`
	Program  string `json:"program"`  // hash of the loaded image + data tables
	Universe string `json:"universe"` // HashSites of the ordered fault list
	Env      string `json:"env"`      // hash of SoC config, replay traffic, core, budget
	Sites    int    `json:"sites"`    // universe size (bounds the site indices)
}

// Key returns a filesystem-safe content address for the campaign, used to
// derive per-campaign journal filenames in a shared directory.
func (h JournalHeader) Key() string {
	k := fnv.New64a()
	fmt.Fprintf(k, "%d|%s|%s|%s|%d", h.Version, h.Program, h.Universe, h.Env, h.Sites)
	return fmt.Sprintf("%016x", k.Sum64())
}

// diff names the first header field that disagrees ("" when equal).
func (h JournalHeader) diff(o JournalHeader) string {
	switch {
	case h.Version != o.Version:
		return fmt.Sprintf("version %d != %d", o.Version, h.Version)
	case h.Program != o.Program:
		return fmt.Sprintf("program hash %s != %s", o.Program, h.Program)
	case h.Universe != o.Universe:
		return fmt.Sprintf("universe hash %s != %s", o.Universe, h.Universe)
	case h.Env != o.Env:
		return fmt.Sprintf("environment hash %s != %s", o.Env, h.Env)
	case h.Sites != o.Sites:
		return fmt.Sprintf("%d sites != %d", o.Sites, h.Sites)
	}
	return ""
}

// HashSites content-addresses an ordered fault universe.
func HashSites(sites []Site) string {
	h := fnv.New64a()
	for _, s := range sites {
		fmt.Fprintf(h, "%d.%d.%d.%d.%d.%d.%d.%d;",
			s.Unit, s.Signal, s.Kind, s.Lane, s.Operand, s.Path, s.Bit, s.Stuck)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// journalLine is one journal record. Kind selects the fields in use:
// "header" carries Header, "golden" carries Sig/OK, "site" carries the
// verdict of site Index (Site is the rendered name, informational only —
// the universe hash in the header is what authenticates indices).
type journalLine struct {
	Kind   string         `json:"kind"`
	Header *JournalHeader `json:"header,omitempty"`

	Sig uint32 `json:"sig"`
	OK  bool   `json:"ok,omitempty"`

	Index    int    `json:"i"`
	Site     string `json:"site,omitempty"`
	Crashed  bool   `json:"crashed,omitempty"`
	Panicked bool   `json:"panicked,omitempty"`
	Detected bool   `json:"detected,omitempty"`
	Msg      string `json:"msg,omitempty"`
	Stack    string `json:"stack,omitempty"`
}

// settledEntry is one loaded verdict (Site left zero; SimulateOpts fills
// it from the universe the indices are authenticated against).
type settledEntry struct {
	res        SiteResult
	msg, stack string
}

// Journal is an open verdict journal. Record is safe for concurrent use
// (the campaign's worker pool appends from many goroutines).
type Journal struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	header  JournalHeader
	settled map[int]settledEntry
	golden  *journalLine
	dropped int   // truncated trailing lines discarded on load
	keep    int64 // byte length of the well-formed journal prefix
}

// CreateJournal starts a fresh journal at path (truncating any previous
// file) and writes the header line.
func CreateJournal(path string, h JournalHeader) (*Journal, error) {
	h.Version = JournalVersion
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fault: journal: %w", err)
	}
	j := &Journal{f: f, path: path, header: h, settled: map[int]settledEntry{}}
	if err := j.append(journalLine{Kind: "header", Header: &h}); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// ResumeJournal opens an existing journal at path, validates its header
// against h, and loads the settled verdicts; a missing file starts a fresh
// journal (resuming nothing is an empty resume). A header that does not
// match, a conflicting duplicate verdict, or a malformed line anywhere but
// the very end is an error — the journal is either trusted whole or
// refused, never silently merged. A truncated final line (the signature of
// a mid-append SIGKILL) is dropped and its site recomputed.
func ResumeJournal(path string, h JournalHeader) (*Journal, error) {
	h.Version = JournalVersion
	blob, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return CreateJournal(path, h)
	}
	if err != nil {
		return nil, fmt.Errorf("fault: journal: %w", err)
	}
	j := &Journal{path: path, header: h, settled: map[int]settledEntry{}}
	if err := j.load(blob); err != nil {
		return nil, err
	}
	if j.keep < int64(len(blob)) {
		// Cut the torn trailing line so new appends start on a line
		// boundary.
		if err := os.Truncate(path, j.keep); err != nil {
			return nil, fmt.Errorf("fault: journal %s: dropping torn line: %w", path, err)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("fault: journal: %w", err)
	}
	j.f = f
	return j, nil
}

// load parses the journal body into the settled map.
func (j *Journal) load(blob []byte) error {
	lines := strings.Split(string(blob), "\n")
	// A well-formed journal ends in a newline, leaving one empty trailer.
	for len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		return fmt.Errorf("fault: journal %s: empty file (no header)", j.path)
	}
	for n, raw := range lines {
		var ln journalLine
		if err := json.Unmarshal([]byte(raw), &ln); err != nil {
			if n == len(lines)-1 {
				// Mid-append kill: the final line never completed. Its
				// verdict is simply recomputed.
				j.dropped++
				continue
			}
			return fmt.Errorf("fault: journal %s: line %d corrupt (not at end of file): %v", j.path, n+1, err)
		}
		j.keep += int64(len(raw)) + 1 // the line and its newline
		switch ln.Kind {
		case "header":
			if n != 0 {
				return fmt.Errorf("fault: journal %s: stray header at line %d", j.path, n+1)
			}
			if ln.Header == nil {
				return fmt.Errorf("fault: journal %s: header line carries no header", j.path)
			}
			if d := j.header.diff(*ln.Header); d != "" {
				return fmt.Errorf("fault: journal %s belongs to a different campaign: %s", j.path, d)
			}
		case "golden":
			if j.golden != nil && (j.golden.Sig != ln.Sig || j.golden.OK != ln.OK) {
				return fmt.Errorf("fault: journal %s: conflicting golden records (%08x/%v vs %08x/%v)",
					j.path, j.golden.Sig, j.golden.OK, ln.Sig, ln.OK)
			}
			ln := ln
			j.golden = &ln
		case "site":
			if ln.Index < 0 || ln.Index >= j.header.Sites {
				return fmt.Errorf("fault: journal %s: site index %d outside universe of %d", j.path, ln.Index, j.header.Sites)
			}
			e := settledEntry{
				res: SiteResult{
					Signature: ln.Sig,
					Crashed:   ln.Crashed,
					Panicked:  ln.Panicked,
					Detected:  ln.Detected,
				},
				msg:   ln.Msg,
				stack: ln.Stack,
			}
			if prev, dup := j.settled[ln.Index]; dup {
				if prev != e {
					return fmt.Errorf("fault: journal %s: conflicting duplicate verdicts for site %d (%+v vs %+v)",
						j.path, ln.Index, prev.res, e.res)
				}
				continue // identical duplicate: tolerated
			}
			j.settled[ln.Index] = e
		default:
			return fmt.Errorf("fault: journal %s: line %d: unknown kind %q", j.path, n+1, ln.Kind)
		}
		if n == 0 && ln.Kind != "header" {
			return fmt.Errorf("fault: journal %s: first line is %q, want the header", j.path, ln.Kind)
		}
	}
	return nil
}

// append writes one line with a single Write call (the file is opened
// O_APPEND, so concurrent campaigns sharing a journal cannot interleave
// bytes, and a kill leaves at most one torn trailing line).
func (j *Journal) append(ln journalLine) error {
	blob, err := json.Marshal(ln)
	if err != nil {
		return fmt.Errorf("fault: journal: %w", err)
	}
	if _, err := j.f.Write(append(blob, '\n')); err != nil {
		return fmt.Errorf("fault: journal %s: %w", j.path, err)
	}
	return nil
}

// BindGolden reconciles this run's golden verdict with the journal: the
// first campaign records it, a resumed campaign must reproduce it exactly
// (a different golden means the environment is not the one journaled).
func (j *Journal) BindGolden(sig uint32, ok bool) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.golden != nil {
		if j.golden.Sig != sig || j.golden.OK != ok {
			return fmt.Errorf("fault: journal %s: golden %08x/%v does not reproduce the journaled %08x/%v",
				j.path, sig, ok, j.golden.Sig, j.golden.OK)
		}
		return nil
	}
	ln := journalLine{Kind: "golden", Sig: sig, OK: ok}
	if err := j.append(ln); err != nil {
		return err
	}
	j.golden = &ln
	return nil
}

// Settled returns site i's journaled verdict, if any. The returned
// SiteResult carries a zero Site; the caller owns the universe and fills
// it in.
func (j *Journal) Settled(i int) (res SiteResult, msg, stack string, ok bool) {
	e, ok := j.settled[i]
	return e.res, e.msg, e.stack, ok
}

// SettledCount returns how many sites the journal already settles.
func (j *Journal) SettledCount() int { return len(j.settled) }

// SettledIndices returns the sorted site indices the journal already
// settles — the shard-completion state a campaign service derives its
// cache hits from.
func (j *Journal) SettledIndices() []int {
	out := make([]int, 0, len(j.settled))
	for i := range j.settled {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// Unsettled returns the sorted site indices within [lo, hi) that the
// journal does not yet settle. A shard is complete exactly when this is
// empty.
func (j *Journal) Unsettled(lo, hi int) []int {
	var out []int
	for i := lo; i < hi; i++ {
		if _, ok := j.settled[i]; !ok {
			out = append(out, i)
		}
	}
	return out
}

// Golden returns the journaled golden verdict and whether one has been
// bound yet (by this process or a previous one).
func (j *Journal) Golden() (sig uint32, ok, bound bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.golden == nil {
		return 0, false, false
	}
	return j.golden.Sig, j.golden.OK, true
}

// Header returns the content-addressed campaign identity the journal was
// opened with.
func (j *Journal) Header() JournalHeader { return j.header }

// Dropped returns how many torn trailing lines were discarded on load.
func (j *Journal) Dropped() int { return j.dropped }

// Record appends site i's verdict. Safe for concurrent use.
func (j *Journal) Record(i int, r SiteResult, msg, stack string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(journalLine{
		Kind:     "site",
		Index:    i,
		Site:     r.Site.String(),
		Sig:      r.Signature,
		Crashed:  r.Crashed,
		Panicked: r.Panicked,
		Detected: r.Detected,
		Msg:      msg,
		Stack:    stack,
	})
}

// Close releases the journal file. The journal remains resumable.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
