package conform

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// syncBuffer is a goroutine-safe writer for ticker output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestFuzzTelemetryCounts pins the guided-loop instrumentation: with a
// registry attached, the iteration counter and the corpus/coverage gauges
// must land exactly on the values the FuzzResult reports, and attaching
// them must not change the run itself.
func TestFuzzTelemetryCounts(t *testing.T) {
	sc, err := Lookup("uncached")
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sc.Fuzz(1, 40, time.Time{}, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	res, err := sc.Fuzz(1, 40, time.Time{}, FuzzOptions{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil {
		t.Fatalf("unexpected mismatch: %v", res.Mismatch)
	}
	if res.Iters != plain.Iters || res.Corpus != plain.Corpus ||
		res.Bits.Count() != plain.Bits.Count() {
		t.Errorf("telemetry changed the run: %d/%d iters, %d/%d corpus, %d/%d bits",
			res.Iters, plain.Iters, res.Corpus, plain.Corpus,
			res.Bits.Count(), plain.Bits.Count())
	}
	if got := reg.Counter("fuzz_iters_total").Value(); got != int64(res.Iters) {
		t.Errorf("fuzz_iters_total = %d, want %d", got, res.Iters)
	}
	if got := reg.Gauge("fuzz_corpus_size").Value(); got != int64(res.Corpus) {
		t.Errorf("fuzz_corpus_size = %d, want %d", got, res.Corpus)
	}
	if got := reg.Gauge("fuzz_coverage_bits").Value(); got != int64(res.Bits.Count()) {
		t.Errorf("fuzz_coverage_bits = %d, want %d", got, res.Bits.Count())
	}
	if got := reg.Counter("fuzz_panics_total").Value(); got != 0 {
		t.Errorf("fuzz_panics_total = %d on a clean run", got)
	}
}

// TestFuzzProgressLine pins the fuzz progress ticker: with no registry
// supplied it builds a private one, and the line carries the iteration
// count, rate and corpus/coverage state.
func TestFuzzProgressLine(t *testing.T) {
	sc, err := Lookup("uncached")
	if err != nil {
		t.Fatal(err)
	}
	var buf syncBuffer
	res, err := sc.Fuzz(1, 40, time.Time{}, FuzzOptions{
		Progress:       time.Millisecond,
		ProgressWriter: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil {
		t.Fatalf("unexpected mismatch: %v", res.Mismatch)
	}
	out := buf.String()
	if !strings.Contains(out, "fuzz:") || !strings.Contains(out, "iters/s") ||
		!strings.Contains(out, "corpus") {
		t.Errorf("fuzz progress line malformed:\n%s", out)
	}
}
