package conform

// Coverage-guided fuzzing: the corpus loop that turns conform from a
// random sampler into a feedback fuzzer. Each iteration runs one program
// — freshly generated or mutated from a corpus parent — through the
// scenario's differential check while collecting microarchitectural
// coverage (internal/coverage) from the target system. Programs that
// light coverage bits the corpus has not lit before are kept and mutated
// further; the rest are discarded. The whole loop is deterministic in its
// base seed, so `conform -cover -scenario X -seed N -n M` is a complete
// repro line for anything the loop finds.

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/coverage"
	"repro/internal/progen"
	"repro/internal/telemetry"
)

// FuzzOptions tunes a fuzzing loop (guided or random).
type FuzzOptions struct {
	// CorpusDir, when set, is loaded before the loop (every *.json recipe
	// becomes an initial corpus entry) and receives every new interesting
	// program found while fuzzing.
	CorpusDir string

	// FreshFrac floors the adaptive fresh fraction: guided runs start fully
	// fresh (pure exploration) and decay towards this floor as fresh
	// programs stop producing new coverage, shifting the budget to
	// mutation; 0 means the default 0.35.
	FreshFrac float64

	// PerturbFrac is the fraction of fresh programs generated with
	// rng-perturbed distribution knobs instead of the deterministic
	// seed-sweep config; 0 means the default 0.5.
	PerturbFrac float64

	// Random disables guidance: every iteration generates a fresh seed-swept
	// program and nothing is kept or mutated. Coverage is still collected,
	// which makes Random the baseline the guided mode is measured against.
	Random bool

	// OnPanic is called for every panicked check the loop isolates (the
	// recipe-saving hook); the loop then continues instead of stopping. A
	// genuine divergence still stops the loop. Nil means isolate silently.
	OnPanic func(*Mismatch)

	// Telemetry, when non-nil, receives the loop's live metrics
	// (fuzz_iters_total, fuzz_corpus_size, fuzz_coverage_bits, skip and
	// panic counts). Nil disables them at zero cost.
	Telemetry *telemetry.Registry

	// Progress > 0 prints a progress line (iters, rate, corpus size,
	// coverage bits) to ProgressWriter every interval. The ticker reads
	// only registry atomics, never the scenario's own counters, so it is
	// safe alongside the running loop.
	Progress time.Duration

	// ProgressWriter receives the progress lines; nil means os.Stderr.
	ProgressWriter io.Writer
}

// fuzzMetrics holds the registry handles the fuzz loop updates; the zero
// value (telemetry detached) makes every update a nil-check no-op.
type fuzzMetrics struct {
	enabled bool
	iters   *telemetry.Counter
	panics  *telemetry.Counter
	corpus  *telemetry.Gauge
	bits    *telemetry.Gauge
	skips   *telemetry.Gauge
}

// newFuzzMetrics resolves the fuzz metric names once per loop.
func newFuzzMetrics(reg *telemetry.Registry) fuzzMetrics {
	if reg == nil {
		return fuzzMetrics{}
	}
	return fuzzMetrics{
		enabled: true,
		iters:   reg.Counter("fuzz_iters_total"),
		panics:  reg.Counter("fuzz_panics_total"),
		corpus:  reg.Gauge("fuzz_corpus_size"),
		bits:    reg.Gauge("fuzz_coverage_bits"),
		skips:   reg.Gauge("fuzz_skips"),
	}
}

func (o FuzzOptions) withDefaults() FuzzOptions {
	if o.FreshFrac <= 0 {
		o.FreshFrac = 0.35
	}
	if o.PerturbFrac <= 0 {
		o.PerturbFrac = 0.5
	}
	return o
}

// frontierWindow is how many of the newest corpus entries the biased
// parent pick draws from: fresh discoveries get mutated while they are
// still the coverage frontier.
const frontierWindow = 8

// pickParent selects a corpus entry to mutate, biased towards the newest
// entries (the frontier) but keeping the whole corpus reachable.
func pickParent(rng *rand.Rand, corpus []*progen.Program) *progen.Program {
	if n := len(corpus); n > frontierWindow && rng.Float64() < 0.5 {
		return corpus[n-frontierWindow+rng.Intn(frontierWindow)]
	}
	return corpus[rng.Intn(len(corpus))]
}

// FuzzResult summarises one fuzzing loop.
type FuzzResult struct {
	Iters     int // programs run
	Corpus    int // corpus entries at exit (0 in random mode)
	NewInDir  int // entries newly saved to CorpusDir
	Skips     int // explicit skip verdicts (see Scenario.Skips)
	FullSkips int // iterations that compared nothing (see Scenario.FullSkips)
	Panics    int // panicked checks isolated (loop continued past them)
	Bits      coverage.Bits
	Mismatch  *Mismatch // non-nil when the loop stopped on a divergence
	// FirstPanic keeps the first isolated panic for reporting; the loop does
	// not stop on it, so Mismatch stays nil unless a real divergence hits.
	FirstPanic *Mismatch
}

// Summary renders the coverage reached, total and by feature group, plus
// any explicit skip verdicts the scenario recorded.
func (r *FuzzResult) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d runs, corpus %d, coverage %d bits (", r.Iters, r.Corpus, r.Bits.Count())
	for i, g := range r.Bits.ByGroup() {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %d/%d", g.Name, g.Set, g.Total)
	}
	sb.WriteString(")")
	if r.Skips > 0 {
		fmt.Fprintf(&sb, ", %d skip verdicts", r.Skips)
	}
	if r.Panics > 0 {
		fmt.Fprintf(&sb, ", %d panicked checks isolated", r.Panics)
	}
	return sb.String()
}

// Fuzz runs the corpus loop on a program scenario for up to iters
// iterations (and, when deadline is non-zero, no longer than the
// deadline), starting the fresh-program seed sweep at seed. It stops early
// on the first mismatch, which carries the failing (possibly mutated)
// program and minimizes like any other. Panics on a non-Guidable scenario.
func (s *Scenario) Fuzz(seed int64, iters int, deadline time.Time, opts FuzzOptions) (*FuzzResult, error) {
	if !s.Guidable() {
		panic("conform: Fuzz on a non-program scenario")
	}
	opts = opts.withDefaults()
	// The mutation stream is seeded from the base seed, so a guided run is
	// fully reproducible from its command line.
	rng := rand.New(rand.NewSource(seed ^ 0x636f7665726167)) // "coverag"
	res := &FuzzResult{}
	reg := opts.Telemetry
	if reg == nil && opts.Progress > 0 {
		// The progress line reads registry atomics; give it a private
		// registry when the caller did not attach one.
		reg = telemetry.NewRegistry()
	}
	met := newFuzzMetrics(reg)
	if opts.Progress > 0 {
		w := opts.ProgressWriter
		if w == nil {
			w = os.Stderr
		}
		start := time.Now()
		tk := telemetry.StartTicker(opts.Progress, func() {
			it := met.iters.Value()
			fmt.Fprintf(w, "fuzz: %d iters, %.1f iters/s, corpus %d, coverage %d bits, %d skips, %d panics\n",
				it, float64(it)/time.Since(start).Seconds(),
				met.corpus.Value(), met.bits.Value(), met.skips.Value(), met.panics.Value())
		})
		defer tk.Stop()
	}
	// Scenario.Skips is a lifetime counter; report this loop's delta, on
	// every exit path (including an early mismatch stop).
	skipsBase, fullBase := s.Skips(), s.FullSkips()
	defer func() {
		res.Skips = s.Skips() - skipsBase
		res.FullSkips = s.FullSkips() - fullBase
	}()
	// isolate absorbs a panicked check: count it, hand it to the OnPanic
	// hook, and let the loop continue. Only real divergences stop the loop.
	isolate := func(m *Mismatch) bool {
		if !m.Panicked {
			return false
		}
		res.Panics++
		met.panics.Inc()
		if res.FirstPanic == nil {
			res.FirstPanic = m
		}
		if opts.OnPanic != nil {
			opts.OnPanic(m)
		}
		return true
	}
	var corpus []*progen.Program

	if opts.CorpusDir != "" {
		loaded, err := LoadCorpus(opts.CorpusDir)
		if err != nil {
			return nil, err
		}
		cov := new(coverage.Map)
		for _, p := range loaded {
			cov.Reset()
			if m := s.CheckProgram(p, cov); m != nil {
				if !isolate(m) {
					res.Mismatch = m
					return res, nil
				}
				continue
			}
			bits := cov.Bits()
			if res.Bits.Or(&bits) && !opts.Random {
				corpus = append(corpus, p)
			}
		}
	}

	cov := new(coverage.Map)
	nextSeed := seed
	// freshP is the adaptive exploration rate: start fully fresh so guided
	// mode never trails the random sweep's early diversity, decay towards
	// the floor as fresh seeds stop lighting new bits, and recover when
	// they pay again.
	freshP := 1.0
	for i := 0; i < iters; i++ {
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		var p *progen.Program
		fresh := opts.Random || len(corpus) == 0 || rng.Float64() < freshP
		if fresh {
			sd := nextSeed
			nextSeed++
			cfg := s.spec.cfgFor(sd)
			if !opts.Random && rng.Float64() < opts.PerturbFrac {
				cfg = progen.PerturbKnobs(rng, cfg)
			}
			p = progen.Generate(sd, cfg)
		} else {
			p = progen.Mutate(rng, pickParent(rng, corpus))
		}
		cov.Reset()
		res.Iters++
		met.iters.Inc()
		m := s.CheckProgram(p, cov)
		if met.enabled {
			// Mirror the scenario's (non-atomic) lifetime skip counter into
			// the registry so the progress ticker never reads loop state.
			met.skips.Set(int64(s.Skips() - skipsBase))
		}
		if m != nil {
			if !isolate(m) {
				res.Mismatch = m
				return res, nil
			}
			continue
		}
		bits := cov.Bits()
		gained := res.Bits.Or(&bits)
		if gained && met.enabled {
			met.bits.Set(int64(res.Bits.Count()))
		}
		if fresh && !opts.Random {
			if gained {
				freshP = 1.0
			} else if freshP *= 0.85; freshP < opts.FreshFrac {
				freshP = opts.FreshFrac
			}
		}
		if gained && !opts.Random {
			corpus = append(corpus, p)
			met.corpus.Set(int64(len(corpus)))
			if opts.CorpusDir != "" {
				if err := SaveRecipe(opts.CorpusDir, p.Recipe); err != nil {
					return nil, err
				}
				res.NewInDir++
			}
		}
	}
	res.Corpus = len(corpus)
	return res, nil
}

// LoadCorpus reads every *.json recipe under dir (sorted by name, so runs
// are deterministic) and rebuilds the programs. A missing directory is an
// empty corpus; a file that fails to parse or rebuild is an error — a
// corrupt corpus should fail loudly, not silently shrink.
func LoadCorpus(dir string) ([]*progen.Program, error) {
	names, err := corpusNames(dir)
	if err != nil {
		return nil, err
	}
	out := make([]*progen.Program, 0, len(names))
	for _, name := range names {
		p, err := loadRecipeFile(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// corpusNames lists a corpus directory's recipe files in deterministic
// order.
func corpusNames(dir string) ([]string, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	return names, nil
}

// loadRecipeFile rebuilds the program one recipe file describes.
func loadRecipeFile(name string) (*progen.Program, error) {
	blob, err := os.ReadFile(name)
	if err != nil {
		return nil, fmt.Errorf("conform: corpus %s: %w", name, err)
	}
	var r progen.Recipe
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("conform: corpus %s: %w", name, err)
	}
	p, err := progen.FromRecipe(r)
	if err != nil {
		return nil, fmt.Errorf("conform: corpus %s: %w", name, err)
	}
	return p, nil
}

// MinimizeResult summarises a corpus minimization pass.
type MinimizeResult struct {
	Kept    int
	Dropped int
	// Bits is the corpus's coverage union — identical before and after the
	// pass, by construction.
	Bits coverage.Bits
	// Mismatch is non-nil when a corpus entry diverged during evaluation;
	// nothing is removed in that case (a failing entry is a repro, not
	// redundancy).
	Mismatch *Mismatch
}

// MinimizeCorpus is the corpus lifecycle pass: it replays every recipe
// under dir through the scenario, collects each entry's coverage bits,
// and deletes the files whose bits are fully subsumed by the union of the
// entries kept before them (greedy, richest-entry-first — the classic
// corpus-distillation order). The surviving set reaches exactly the same
// coverage union as the full directory. Panics on a non-Guidable
// scenario.
func (s *Scenario) MinimizeCorpus(dir string) (*MinimizeResult, error) {
	if !s.Guidable() {
		panic("conform: MinimizeCorpus on a non-program scenario")
	}
	names, err := corpusNames(dir)
	if err != nil {
		return nil, err
	}
	type entry struct {
		name  string
		bits  coverage.Bits
		count int
	}
	entries := make([]entry, 0, len(names))
	cov := new(coverage.Map)
	res := &MinimizeResult{}
	for _, name := range names {
		p, err := loadRecipeFile(name)
		if err != nil {
			return nil, err
		}
		cov.Reset()
		if m := s.CheckProgram(p, cov); m != nil {
			res.Mismatch = m
			return res, nil
		}
		bits := cov.Bits()
		entries = append(entries, entry{name: name, bits: bits, count: bits.Count()})
	}
	// Richest first; ties keep name order so the pass is deterministic.
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].count > entries[j].count })
	for _, e := range entries {
		if e.count == 0 {
			// Zero coverage means the scenario did not actually exercise
			// the entry (e.g. the arena scenario skips handler-carrying
			// programs a cross-scenario corpus handed it). Out of scope is
			// not redundant: keep the file for the scenario that owns it.
			res.Kept++
			continue
		}
		if res.Bits.Or(&e.bits) {
			res.Kept++
			continue
		}
		if err := os.Remove(e.name); err != nil {
			return nil, err
		}
		res.Dropped++
	}
	return res, nil
}

// SaveRecipe writes one recipe into dir under a content-derived name
// (creating dir if needed), so re-finding the same program is idempotent.
func SaveRecipe(dir string, r progen.Recipe) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	h := fnv.New64a()
	h.Write(blob)
	name := filepath.Join(dir, fmt.Sprintf("%016x.json", h.Sum64()))
	return os.WriteFile(name, append(blob, '\n'), 0o644)
}
