package conform

// The self-syncing CI scenario matrix: this test is the drift gate the CI
// satellite asks for. The smoke loop in ci.yml and the nightly per-scenario
// matrix are hand-written YAML; Scenarios() is the source of truth. A new
// scenario that is not added to both files fails `go test ./...` (and so
// every CI run) with a message naming the missing entry — a scenario can
// never silently miss smoke or nightly coverage again. The reverse drift
// (a matrix entry for a scenario that no longer exists) fails too.

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

func readWorkflow(t *testing.T, name string) string {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("..", "..", ".github", "workflows", name))
	if err != nil {
		t.Fatalf("workflow %s unreadable: %v", name, err)
	}
	return string(blob)
}

func sortedSet(names []string) []string {
	out := append([]string(nil), names...)
	sort.Strings(out)
	return out
}

func diffSets(t *testing.T, where string, got, want []string) {
	t.Helper()
	g := strings.Join(sortedSet(got), " ")
	w := strings.Join(sortedSet(want), " ")
	if g != w {
		t.Errorf("%s scenario matrix out of sync:\n  matrix:      %s\n  Scenarios(): %s\n"+
			"update the workflow to match `go run ./cmd/conform -list`", where, g, w)
	}
}

// TestScenarioMatrixInSync checks both workflow files against Scenarios().
func TestScenarioMatrixInSync(t *testing.T) {
	var all, guidable []string
	for _, sc := range Scenarios() {
		all = append(all, sc.Name)
		if sc.Guidable() {
			guidable = append(guidable, sc.Name)
		}
	}

	// nightly.yml: the per-scenario matrix must carry every scenario.
	nightly := readWorkflow(t, "nightly.yml")
	mre := regexp.MustCompile(`scenario:\s*\[([^\]]+)\]`)
	m := mre.FindStringSubmatch(nightly)
	if m == nil {
		t.Fatal("nightly.yml: no `scenario: [...]` matrix found")
	}
	var matrix []string
	for _, f := range strings.Split(m[1], ",") {
		if f = strings.TrimSpace(f); f != "" {
			matrix = append(matrix, f)
		}
	}
	diffSets(t, "nightly.yml", matrix, all)

	// ci.yml: the guided smoke loop must cover every guidable scenario.
	ci := readWorkflow(t, "ci.yml")
	lre := regexp.MustCompile(`for s in ([a-z ]+); do`)
	l := lre.FindStringSubmatch(ci)
	if l == nil {
		t.Fatal("ci.yml: no `for s in ...; do` smoke loop found")
	}
	diffSets(t, "ci.yml", strings.Fields(l[1]), guidable)
}
