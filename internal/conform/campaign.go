package conform

import (
	"fmt"
	"math/rand"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

// Campaign-level conformance: the optimized arena (early exit on
// observable divergence, golden-run checkpointing, golden-verdict
// shortcuts) and the reference arena (NoEarlyExit: full budget per run, no
// shortcuts) must produce bit-identical fault reports on any universe, in
// any environment. The fuzz scenario draws random environments and checks
// the *full* universe — no site cap — which is affordable precisely
// because both sides are arenas. CampaignEnv/CompareEngines are also the
// building blocks the fixed mode-equivalence tests use.

// maxCampaignCycles bounds the golden full-system run.
const maxCampaignCycles = 6_000_000

// CampaignEnv is one replayed fault-campaign environment: a multi-core
// golden configuration and the core under test.
type CampaignEnv struct {
	Cfg       soc.Config
	Jobs      [soc.NumCores]*core.CoreJob
	UnderTest int
	Workers   int // campaign parallelism (0 = GOMAXPROCS)
}

// NewCampaignEnv builds the standard campaign environment: the named
// library routine (see sbst.NewRoutineByName) on every active core, the
// core under test placed at pos with pad bytes of alignment padding, the
// others at the remaining code positions.
func NewCampaignEnv(module string, underTest, active int, pos, pad uint32, cached bool) (*CampaignEnv, error) {
	if underTest < 0 || underTest >= active || active > soc.NumCores {
		return nil, fmt.Errorf("conform: bad env: core %d of %d active", underTest, active)
	}
	cfg := soc.DefaultConfig()
	for id := 0; id < soc.NumCores; id++ {
		cfg.Cores[id].Active = id < active
		cfg.Cores[id].CachesOn = cached
		cfg.Cores[id].WriteAlloc = true
	}
	var strat core.Strategy = core.Plain{}
	if cached {
		strat = core.CacheBased{WriteAllocate: true}
	}
	positions := []uint32{soc.CodeLow, soc.CodeMid, soc.CodeHigh}
	env := &CampaignEnv{Cfg: cfg, UnderTest: underTest}
	slot := 0
	for id := 0; id < active; id++ {
		r, err := sbst.NewRoutineByName(module, sbst.RoutineOptions{
			DataBase:    mem.SRAMBase + 0x2000*uint32(id+1),
			CoreID:      id,
			TriggerReps: 2, // keep ICU routines short for fault grading
		})
		if err != nil {
			return nil, err
		}
		var base, alignPad uint32
		if id == underTest {
			base, alignPad = pos, pad
		} else {
			if positions[slot] == pos {
				slot++
			}
			base = positions[slot%len(positions)] + 0x10000
			slot++
		}
		env.Jobs[id] = &core.CoreJob{
			Routine:  r,
			Strategy: strat,
			CodeBase: base,
			AlignPad: alignPad,
		}
	}
	return env, nil
}

// CompareEngines runs the campaign under both arena modes (optimized and
// reference) and returns a description of any report divergence ("" when
// bit-identical). The golden full-system run and traffic recording happen
// once; both modes then fault-simulate against the same replayed
// environment.
func (e *CampaignEnv) CompareEngines(sites []fault.Site) (string, error) {
	replayCfg, budget, err := e.record()
	if err != nil {
		return "", err
	}
	return e.compareOn(replayCfg, budget, sites)
}

// record performs the golden run and returns the replay configuration and
// per-fault cycle budget.
func (e *CampaignEnv) record() (soc.Config, int64, error) {
	var rec *bus.Recorder
	results, _, err := core.RunJobsSetup(e.Cfg, e.Jobs, maxCampaignCycles, nil, func(s *soc.SoC) {
		rec = s.AttachRecorder(e.UnderTest)
	})
	if err != nil {
		return soc.Config{}, 0, err
	}
	golden := results[e.UnderTest]
	if !golden.OK {
		return soc.Config{}, 0, fmt.Errorf("conform: golden run failed on core %d", e.UnderTest)
	}
	replayCfg := e.Cfg
	replayCfg.Replay = rec.EventsByMaster()
	return replayCfg, golden.Cycles*8 + 20_000, nil
}

// compareOn runs both arena modes on an already-recorded environment.
func (e *CampaignEnv) compareOn(replayCfg soc.Config, budget int64, sites []fault.Site) (string, error) {
	ref, err := core.RunCampaign(replayCfg, e.UnderTest, e.Jobs[e.UnderTest], sites,
		budget, e.Workers, true)
	if err != nil {
		return "", fmt.Errorf("reference arena: %w", err)
	}
	opt, err := core.RunCampaign(replayCfg, e.UnderTest, e.Jobs[e.UnderTest], sites,
		budget, e.Workers, false)
	if err != nil {
		return "", fmt.Errorf("optimized arena: %w", err)
	}
	return DiffReports(ref, opt, sites), nil
}

// DiffReports compares two campaign reports site by site and summarises
// any divergence ("" when bit-identical). By convention the first report
// is the reference-mode one.
func DiffReports(ref, opt fault.Report, sites []fault.Site) string {
	var diffs []string
	if len(ref.Results) != len(opt.Results) {
		diffs = append(diffs, fmt.Sprintf("result count %d (reference) != %d (optimized)",
			len(ref.Results), len(opt.Results)))
	}
	if ref.Golden != opt.Golden || ref.GoldenOK != opt.GoldenOK {
		diffs = append(diffs, fmt.Sprintf("golden %08x/%v (reference) != %08x/%v (optimized)",
			ref.Golden, ref.GoldenOK, opt.Golden, opt.GoldenOK))
	}
	if ref.Detected != opt.Detected {
		diffs = append(diffs, fmt.Sprintf("detected %d (reference) != %d (optimized)",
			ref.Detected, opt.Detected))
	}
	for i := range ref.Results {
		if i >= len(opt.Results) {
			diffs = append(diffs, fmt.Sprintf("optimized report short: %d sites, reference %d",
				len(opt.Results), len(ref.Results)))
			break
		}
		if ref.Results[i] != opt.Results[i] {
			diffs = append(diffs, fmt.Sprintf("%v: reference %+v, optimized %+v",
				sites[i], ref.Results[i], opt.Results[i]))
		}
	}
	return renderDiffs(diffs)
}

// runCampaignSeed is one iteration of the campaign fuzz scenario: a full
// fault universe (no sampling — the reference arena can afford it) through
// a random environment, both arena modes, reports compared bit by bit.
func runCampaignSeed(seed int64) *Mismatch {
	rng := rand.New(rand.NewSource(seed))

	active := 2 + rng.Intn(soc.NumCores-1)
	underTest := rng.Intn(active)
	positions := []uint32{soc.CodeLow, soc.CodeMid, soc.CodeHigh}
	pos := positions[rng.Intn(len(positions))]
	pad := uint32(8 * rng.Intn(3))
	cached := rng.Intn(2) == 0

	bits := 32
	if underTest == 2 {
		bits = 64
	}
	var module string
	var sites []fault.Site
	switch rng.Intn(4) {
	case 0:
		module = "forwarding"
		sites = fault.ForwardingLogic(fault.ListOptions{DataBits: bits, BitStep: 8})
	case 1:
		module = "forwarding"
		sites = fault.TransitionFaults(fault.ListOptions{DataBits: bits, BitStep: 8})
	case 2:
		module = "hdcu"
		sites = fault.HDCU(fault.ListOptions{DataBits: bits, BitStep: 8})
	default:
		module = "icu"
		sites = fault.ICU(fault.ListOptions{BitStep: 1})
	}
	fault.SortSites(sites)

	env, err := NewCampaignEnv(module, underTest, active, pos, pad, cached)
	if err != nil {
		return &Mismatch{Scenario: "campaign", Seed: seed, Detail: err.Error()}
	}
	replayCfg, budget, err := env.record()
	if err != nil {
		return &Mismatch{Scenario: "campaign", Seed: seed, Detail: err.Error()}
	}
	recheck := func(sub []fault.Site) string {
		detail, err := env.compareOn(replayCfg, budget, sub)
		if err != nil {
			return err.Error()
		}
		return detail
	}
	if detail := recheck(sites); detail != "" {
		return &Mismatch{
			Scenario:     "campaign",
			Seed:         seed,
			Detail:       fmt.Sprintf("%s campaign (%d cores, core %d under test): %s", module, active, underTest, detail),
			Sites:        sites,
			recheckSites: recheck,
		}
	}
	return nil
}
