package conform

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestGuidedBeatsRandomCoverage is the acceptance bar of the
// coverage-guided tentpole: with the same seed and the same fixed budget,
// the corpus loop must reach strictly more distinct coverage bits than
// pure random generation. Both runs are deterministic, so this is a pin,
// not a statistical test.
func TestGuidedBeatsRandomCoverage(t *testing.T) {
	const budget = 60
	for _, name := range []string{"uncached", "cached"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		random, err := sc.Fuzz(1, budget, time.Time{}, FuzzOptions{Random: true})
		if err != nil {
			t.Fatal(err)
		}
		if random.Mismatch != nil {
			t.Fatalf("%s random: unexpected mismatch: %v", name, random.Mismatch)
		}
		guided, err := sc.Fuzz(1, budget, time.Time{}, FuzzOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if guided.Mismatch != nil {
			t.Fatalf("%s guided: unexpected mismatch: %v", name, guided.Mismatch)
		}
		g, r := guided.Bits.Count(), random.Bits.Count()
		t.Logf("%s: guided %d bits (corpus %d), random %d bits", name, g, guided.Corpus, r)
		if g <= r {
			t.Errorf("%s: guided coverage %d bits not above random %d", name, g, r)
		}
	}
}

// TestGuidedFindsInjectedBug pins that the corpus loop still catches and
// minimizes real divergence: the canonical decoder bug must fall to the
// guided loop within a modest budget, and the mismatch must minimize and
// rebuild from its recipe.
func TestGuidedFindsInjectedBug(t *testing.T) {
	sc, err := NewMutated("uncached", DecoderBugArithShift)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Fuzz(1, 50, time.Time{}, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch == nil {
		t.Fatalf("injected decoder bug not caught in %d guided iterations", res.Iters)
	}
	m := res.Mismatch
	m.Minimize()
	if n := m.Program.NumInsts(); n > 20 {
		t.Errorf("minimized repro too large: %d instructions", n)
	}
	// The minimized program's recipe must rebuild to a program that still
	// fails — the property that makes saved repro corpus entries trustworthy.
	if d := m.recheckProg(m.Program); d == "" {
		t.Error("minimized program no longer fails")
	}
}

// TestCorpusRoundtripThroughDir pins the on-disk corpus: recipes saved by
// one fuzzing run load back and replay cleanly in a second run.
func TestCorpusRoundtripThroughDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	sc, err := Lookup("uncached")
	if err != nil {
		t.Fatal(err)
	}
	first, err := sc.Fuzz(1, 20, time.Time{}, FuzzOptions{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if first.NewInDir == 0 {
		t.Fatal("first run saved nothing")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != first.NewInDir {
		t.Fatalf("dir has %d files, run reported %d", len(files), first.NewInDir)
	}
	progs, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != len(files) {
		t.Fatalf("loaded %d programs from %d files", len(progs), len(files))
	}
	// A second run seeded by the saved corpus starts from its coverage.
	second, err := sc.Fuzz(1000, 5, time.Time{}, FuzzOptions{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second.Mismatch != nil {
		t.Fatalf("replayed corpus mismatched: %v", second.Mismatch)
	}
	if second.Bits.Count() < first.Bits.Count() {
		t.Errorf("second run lost coverage: %d < %d", second.Bits.Count(), first.Bits.Count())
	}
	// A corrupt entry must fail loudly.
	if err := os.WriteFile(filepath.Join(dir, "zz-corrupt.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Error("corrupt corpus entry loaded without error")
	}
}
