package conform

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/coverage"
)

// TestGuidedBeatsRandomCoverage is the acceptance bar of the
// coverage-guided tentpole: with the same seed and the same fixed budget,
// the corpus loop must reach strictly more distinct coverage bits than
// pure random generation. Both runs are deterministic, so this is a pin,
// not a statistical test.
func TestGuidedBeatsRandomCoverage(t *testing.T) {
	const budget = 60
	for _, name := range []string{"uncached", "cached"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		random, err := sc.Fuzz(1, budget, time.Time{}, FuzzOptions{Random: true})
		if err != nil {
			t.Fatal(err)
		}
		if random.Mismatch != nil {
			t.Fatalf("%s random: unexpected mismatch: %v", name, random.Mismatch)
		}
		guided, err := sc.Fuzz(1, budget, time.Time{}, FuzzOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if guided.Mismatch != nil {
			t.Fatalf("%s guided: unexpected mismatch: %v", name, guided.Mismatch)
		}
		g, r := guided.Bits.Count(), random.Bits.Count()
		t.Logf("%s: guided %d bits (corpus %d), random %d bits", name, g, guided.Corpus, r)
		if g <= r {
			t.Errorf("%s: guided coverage %d bits not above random %d", name, g, r)
		}
	}
}

// TestGuidedFindsInjectedBug pins that the corpus loop still catches and
// minimizes real divergence: the canonical decoder bug must fall to the
// guided loop within a modest budget, and the mismatch must minimize and
// rebuild from its recipe.
func TestGuidedFindsInjectedBug(t *testing.T) {
	sc, err := NewMutated("uncached", DecoderBugArithShift)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Fuzz(1, 50, time.Time{}, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch == nil {
		t.Fatalf("injected decoder bug not caught in %d guided iterations", res.Iters)
	}
	m := res.Mismatch
	m.Minimize()
	if n := m.Program.NumInsts(); n > 20 {
		t.Errorf("minimized repro too large: %d instructions", n)
	}
	// The minimized program's recipe must rebuild to a program that still
	// fails — the property that makes saved repro corpus entries trustworthy.
	if d := m.recheckProg(m.Program); d == "" {
		t.Error("minimized program no longer fails")
	}
}

// TestGuidedReachesInterruptCoverage is the acceptance bar of the
// interrupt tentpole: at a fixed seed and budget, the guided loop on the
// interrupts scenario must actually take interrupts on the pipeline —
// FeatInterrupt, wired since the coverage subsystem landed but
// unreachable while the ISS had no interrupt model — and light the new
// recognition features alongside it. Deterministic, so a pin.
func TestGuidedReachesInterruptCoverage(t *testing.T) {
	sc, err := Lookup("interrupts")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Fuzz(1, 40, time.Time{}, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil {
		t.Fatalf("unexpected mismatch: %v", res.Mismatch)
	}
	if !res.Bits.Has(coverage.FeatInterrupt) {
		t.Error("guided loop never took an interrupt (FeatInterrupt unreached)")
	}
	newFeats := map[string]coverage.Feature{
		"reti":            coverage.FeatIntReti,
		"masked-pend":     coverage.FeatIntMaskedPend,
		"cause-multi":     coverage.FeatIntCauseMulti,
		"pend-in-handler": coverage.FeatIntPendInHandler,
		"tail-chain":      coverage.FeatIntTailChain,
	}
	reached := 0
	for name, f := range newFeats {
		if res.Bits.Has(f) {
			reached++
		} else {
			t.Logf("interrupt feature %s unreached in this budget", name)
		}
	}
	if reached == 0 {
		t.Error("no new interrupt recognition feature reached by the guided loop")
	}
	// RFE delivery is structural to every handler program: pin it.
	if !res.Bits.Has(coverage.FeatIntReti) {
		t.Error("FeatIntReti unreached — handlers never returned?")
	}
}

// TestMinimizeCorpusPreservesCoverage: the corpus lifecycle pass must
// delete only redundant entries — the survivors' coverage union equals
// the full directory's — and must actually shrink a corpus padded with
// subsumed duplicates.
func TestMinimizeCorpusPreservesCoverage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	sc, err := Lookup("uncached")
	if err != nil {
		t.Fatal(err)
	}
	first, err := sc.Fuzz(1, 40, time.Time{}, FuzzOptions{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if first.Mismatch != nil || first.NewInDir < 3 {
		t.Fatalf("seed corpus too small: %d entries (mismatch %v)", first.NewInDir, first.Mismatch)
	}
	// Union of the directory before minimization.
	union := func() coverage.Bits {
		progs, err := LoadCorpus(dir)
		if err != nil {
			t.Fatal(err)
		}
		var u coverage.Bits
		cov := new(coverage.Map)
		for _, p := range progs {
			cov.Reset()
			if m := sc.CheckProgram(p, cov); m != nil {
				t.Fatal(m)
			}
			bits := cov.Bits()
			u.Or(&bits)
		}
		return u
	}
	before := union()
	res, err := sc.MinimizeCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil {
		t.Fatal(res.Mismatch)
	}
	if res.Dropped == 0 {
		t.Error("minimization dropped nothing from a corpus grown with early redundant finds")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != res.Kept {
		t.Fatalf("dir has %d files, pass reported %d kept", len(files), res.Kept)
	}
	after := union()
	if after != before {
		t.Error("minimization lost coverage")
	}
	if res.Bits != before {
		t.Error("reported union differs from the directory's")
	}
	// A second pass is a fixed point.
	res2, err := sc.MinimizeCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Dropped != 0 || res2.Kept != res.Kept {
		t.Errorf("second pass not a fixed point: kept %d dropped %d", res2.Kept, res2.Dropped)
	}
}

// TestMinimizeCorpusKeepsOutOfScopeEntries: running the lifecycle pass
// through a scenario that cannot exercise an entry (the arena scenario
// skips handler-carrying programs) must keep the entry on disk — out of
// scope is not redundant, and minimization must never destroy another
// scenario's seeds.
func TestMinimizeCorpusKeepsOutOfScopeEntries(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	intr, err := Lookup("interrupts")
	if err != nil {
		t.Fatal(err)
	}
	res, err := intr.Fuzz(1, 25, time.Time{}, FuzzOptions{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil || res.NewInDir == 0 {
		t.Fatalf("interrupt corpus not grown: %d entries (mismatch %v)", res.NewInDir, res.Mismatch)
	}
	before, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	arena, err := Lookup("arena")
	if err != nil {
		t.Fatal(err)
	}
	mr, err := arena.MinimizeCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Mismatch != nil {
		t.Fatal(mr.Mismatch)
	}
	after, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(after) != len(before) {
		t.Fatalf("arena minimization destroyed interrupt entries: %d -> %d files", len(before), len(after))
	}
	if mr.Dropped != 0 {
		t.Errorf("arena pass reported %d drops over out-of-scope entries", mr.Dropped)
	}
}

// TestCorpusRoundtripThroughDir pins the on-disk corpus: recipes saved by
// one fuzzing run load back and replay cleanly in a second run.
func TestCorpusRoundtripThroughDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "corpus")
	sc, err := Lookup("uncached")
	if err != nil {
		t.Fatal(err)
	}
	first, err := sc.Fuzz(1, 20, time.Time{}, FuzzOptions{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if first.NewInDir == 0 {
		t.Fatal("first run saved nothing")
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*.json"))
	if len(files) != first.NewInDir {
		t.Fatalf("dir has %d files, run reported %d", len(files), first.NewInDir)
	}
	progs, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) != len(files) {
		t.Fatalf("loaded %d programs from %d files", len(progs), len(files))
	}
	// A second run seeded by the saved corpus starts from its coverage.
	second, err := sc.Fuzz(1000, 5, time.Time{}, FuzzOptions{CorpusDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if second.Mismatch != nil {
		t.Fatalf("replayed corpus mismatched: %v", second.Mismatch)
	}
	if second.Bits.Count() < first.Bits.Count() {
		t.Errorf("second run lost coverage: %d < %d", second.Bits.Count(), first.Bits.Count())
	}
	// A corrupt entry must fail loudly.
	if err := os.WriteFile(filepath.Join(dir, "zz-corrupt.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCorpus(dir); err == nil {
		t.Error("corrupt corpus entry loaded without error")
	}
}
