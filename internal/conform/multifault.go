package conform

import (
	"fmt"
	"math/rand"

	"repro/internal/archint"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/soc"
)

// Multi-fault conformance: simultaneous fault groups (fault.Composite) and
// fault x planned-interrupt crosses must settle bit-identical verdicts
// under the optimized arena (early exit on observable divergence) and the
// reference arena (full budget, no shortcuts). Pair universes grow
// quadratically with the site pool, so the scenario steers instead of
// enumerating: every candidate single site runs once under coverage
// instrumentation and a greedy max-gain pass keeps the most behaviourally
// diverse sites; only those are paired up. Mismatches minimize along both
// axes — drop a whole group, then shrink a surviving pair to the single
// component that still diverges.

// maxSteerCandidates caps the single-site pool the steering pass measures,
// and steeredSites is how many it keeps: pairing k sites yields k*(k-1)/2
// groups, so the verdict comparison stays affordable per seed.
const (
	maxSteerCandidates = 24
	steeredSites       = 6
)

// steerSites measures each candidate site's coverage bits with one
// instrumented run on the arena and greedily keeps the k most diverse
// sites (max marginal gain, deterministic ties — see coverage.PickGreedy).
// The returned union is the coverage the kept set reached, the
// reachability signal the pinned scenario test asserts on.
func steerSites(ar *core.Arena, sites []fault.Site, k int) ([]fault.Site, coverage.Bits) {
	cov := new(coverage.Map)
	ar.SoC().SetCoverage(cov)
	defer ar.SoC().SetCoverage(nil)
	cands := make([]coverage.Bits, len(sites))
	for i, s := range sites {
		cov.Reset()
		ar.Run(fault.PlaneFor(s))
		cands[i] = cov.Bits()
	}
	picked, union := coverage.PickGreedy(cands, k)
	out := make([]fault.Site, 0, len(picked))
	for _, idx := range picked {
		out = append(out, sites[idx])
	}
	fault.SortSites(out)
	return out, union
}

// groupVerdict is one multi-fault group's canonical outcome. Crashed runs
// record signature 0, the same canonicalisation fault.SiteResult applies,
// so verdicts compare bit by bit across arena modes.
type groupVerdict struct {
	sig     uint32
	crashed bool
}

// runGroups serves every group on one arena, one composite plane per group.
func runGroups(ar *core.Arena, groups [][]fault.Site) []groupVerdict {
	out := make([]groupVerdict, len(groups))
	for i, g := range groups {
		sig, ok := ar.Run(fault.CompositeFor(g))
		if !ok {
			sig = 0
		}
		out[i] = groupVerdict{sig: sig, crashed: !ok}
	}
	return out
}

// compareGroups runs the group universe under both arena modes (fresh
// arenas, same interrupt plan) and describes any divergence — golden run
// included ("" when bit-identical).
func compareGroups(env *CampaignEnv, replayCfg soc.Config, budget int64, plan archint.Plan, groups [][]fault.Site) (string, error) {
	job := env.Jobs[env.UnderTest]
	opt, err := core.NewArena(replayCfg, env.UnderTest, job, budget, core.ArenaOptions{Plan: plan})
	if err != nil {
		return "", fmt.Errorf("optimized arena: %w", err)
	}
	ref, err := core.NewArena(replayCfg, env.UnderTest, job, budget, core.ArenaOptions{NoEarlyExit: true, Plan: plan})
	if err != nil {
		return "", fmt.Errorf("reference arena: %w", err)
	}
	var diffs []string
	osig, ook := opt.Run(fault.None)
	rsig, rok := ref.Run(fault.None)
	if osig != rsig || ook != rok {
		diffs = append(diffs, fmt.Sprintf("golden %08x/%v (reference) != %08x/%v (optimized)",
			rsig, rok, osig, ook))
	}
	ov := runGroups(opt, groups)
	rv := runGroups(ref, groups)
	for i := range groups {
		if ov[i] != rv[i] {
			diffs = append(diffs, fmt.Sprintf("group %v: reference %+v, optimized %+v",
				groups[i], rv[i], ov[i]))
		}
	}
	return renderDiffs(diffs), nil
}

// runMultifaultSeed is one iteration of the multifault fuzz scenario: a
// random campaign environment, a coverage-steered site selection, the pair
// universe over it (optionally crossed with a random planned-interrupt
// sequence), both arena modes, verdicts compared bit by bit.
func runMultifaultSeed(seed int64) *Mismatch {
	rng := rand.New(rand.NewSource(seed))

	active := 2 + rng.Intn(soc.NumCores-1)
	underTest := rng.Intn(active)
	positions := []uint32{soc.CodeLow, soc.CodeMid, soc.CodeHigh}
	pos := positions[rng.Intn(len(positions))]
	pad := uint32(8 * rng.Intn(3))
	cached := rng.Intn(2) == 0

	bits := 32
	if underTest == 2 {
		bits = 64
	}
	var module string
	var sites []fault.Site
	switch rng.Intn(3) {
	case 0:
		// Stuck-at and transition sites share the pool, so steered pairs
		// may mix a stateless and a stateful component.
		module = "forwarding"
		sites = fault.ForwardingLogic(fault.ListOptions{DataBits: bits, BitStep: 4})
		sites = append(sites, fault.TransitionFaults(fault.ListOptions{DataBits: bits, BitStep: 4})...)
	case 1:
		module = "hdcu"
		sites = fault.HDCU(fault.ListOptions{DataBits: bits, BitStep: 4})
	default:
		module = "icu"
		sites = fault.ICU(fault.ListOptions{BitStep: 1})
	}
	fault.SortSites(sites)
	if len(sites) > maxSteerCandidates {
		sites = fault.Sample(sites, (len(sites)+maxSteerCandidates-1)/maxSteerCandidates)
	}

	env, err := NewCampaignEnv(module, underTest, active, pos, pad, cached)
	if err != nil {
		return &Mismatch{Scenario: "multifault", Seed: seed, Detail: err.Error()}
	}
	replayCfg, budget, err := env.record()
	if err != nil {
		return &Mismatch{Scenario: "multifault", Seed: seed, Detail: err.Error()}
	}

	steer, err := core.NewArena(replayCfg, underTest, env.Jobs[underTest], budget, core.ArenaOptions{})
	if err != nil {
		return &Mismatch{Scenario: "multifault", Seed: seed, Detail: "steer arena: " + err.Error()}
	}
	picked, _ := steerSites(steer, sites, steeredSites)
	groups := fault.PairGroups(picked)

	// Half the seeds cross the fault groups with a planned interrupt
	// sequence. The plan perturbs the golden run too; when even the
	// fault-free run no longer completes under it (handler-less routines
	// may wedge on an unexpected take), the plan is dropped rather than
	// letting it fault every verdict.
	var plan archint.Plan
	if rng.Intn(2) == 0 {
		plan = archint.RandomPlan(rng)
		gate, err := core.NewArena(replayCfg, underTest, env.Jobs[underTest], budget, core.ArenaOptions{Plan: plan})
		if err != nil || !gate.GoldenOK() {
			plan = archint.Plan{}
		}
	}

	recheck := func(sub [][]fault.Site) string {
		detail, err := compareGroups(env, replayCfg, budget, plan, sub)
		if err != nil {
			return err.Error()
		}
		return detail
	}
	if detail := recheck(groups); detail != "" {
		return &Mismatch{
			Scenario: "multifault",
			Seed:     seed,
			Detail: fmt.Sprintf("%s multifault (%d cores, core %d under test, plan=%v): %s",
				module, active, underTest, plan.Enabled(), detail),
			Groups:        groups,
			recheckGroups: recheck,
		}
	}
	return nil
}
