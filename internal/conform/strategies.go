package conform

// Strategy and scheduler conformance — the two scenario families that lift
// differential checking from bare programs to the paper's deployment
// shapes.
//
// "strategies": one generated program is bridged into routine block form
// (progen.BlockForm) and wrapped by each execution strategy — Plain,
// CacheBased (with a seed-swept partition budget, so single- and
// multi-chunk wrappings are both exercised) and TCMBased — and every
// wrapping that the strategy accepts must reproduce the interpreter
// reference signature exactly. A MemoryOverhead/Validate rejection is an
// explicit skip verdict for that wrapping, never a silent pass.
//
// "sched": the bridged program plus a seed-derived slice of the sbst
// library become a task set; sched.Partition distributes it over a random
// core count and the full multi-core boot (decentralized barrier included)
// must produce per-task signatures bit-identical to the one-core serial
// plan, with the LPT plan invariants and a makespan-conservation bound
// checked on the live SoC.

import (
	"fmt"
	"math/rand"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/isa"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/progen"
	"repro/internal/sbst"
	"repro/internal/sched"
	"repro/internal/soc"
)

const (
	// stratIssBudget bounds the interpreter reference run of a bridged
	// program: the per-block clear/fold loops multiply the dynamic
	// instruction count well beyond the bare-program issBudget when the
	// scratch window is large.
	stratIssBudget = 2_000_000

	// schedSlackCycles absorbs serial-only overhead (the one-core barrier
	// epilogue) in the live makespan-conservation bound.
	schedSlackCycles = 20_000

	// sigTableBase is the per-task signature table in the uncached SRAM
	// alias: below the barrier flag line, clear of every data area.
	sigTableBase = mem.SRAMUncachedBase + mem.SRAMSize - 256
)

// sigSlot is task i's published-signature word.
func sigSlot(i int) uint32 { return sigTableBase + uint32(i)*4 }

// stratGeom sweeps the cache strategy's partition budget across the seed
// space so the same physical 8 kB cache sees single-chunk, two-chunk and
// many-chunk wrappings (the paper's splitting rule, Figure 2b). Zero means
// the full cache size.
func stratGeom(seed int64) int {
	switch ((seed % 3) + 3) % 3 {
	case 1:
		return 4096
	case 2:
		return 2048
	default:
		return 0
	}
}

// checkStrategies runs one program through every wrapping strategy and
// compares architectural signatures against the interpreter reference.
func (sp progSpec) checkStrategies(p *progen.Program, cov *coverage.Map) string {
	if p.Cfg.Interrupts.Enabled() {
		// Handler programs need their injection plan, which no strategy
		// wrapper carries; a cross-scenario corpus may hand one over.
		sp.skip()
		sp.fullSkip()
		return ""
	}
	has64, coreID := progTarget(p)
	r := p.BlockForm("strat")

	// Interpreter reference: the plain-wrapped form, architecturally
	// identical to every accepted wrapping.
	ref := asm.NewBuilder()
	if err := (core.Plain{}).Emit(ref, r); err != nil {
		return fmt.Sprintf("plain emit: %v", err)
	}
	ref.Halt()
	prog, err := ref.Assemble(codeBase)
	if err != nil {
		return fmt.Sprintf("assemble: %v", err)
	}
	m := iss.NewSparseMem()
	m.LoadWords(prog.Base, prog.Words)
	s := iss.New(m, prog.Base, has64)
	if err := s.Run(stratIssBudget); err != nil {
		return fmt.Sprintf("iss: %v", err)
	}
	refSig := s.Regs[isa.RegSig]

	wraps := []struct {
		name   string
		strat  core.Strategy
		cached bool
	}{
		{"plain", core.Plain{}, false},
		{"cache", core.CacheBased{WriteAllocate: true, ICacheBytes: stratGeom(p.Seed)}, true},
		{"tcm", core.TCMBased{CoreID: coreID}, false},
	}
	var diffs []string
	accepted := 0
	for _, w := range wraps {
		// Applicability first: a Validate/partition/TCM-size rejection is
		// an explicit skip verdict for this wrapping, not a pass. One dry
		// Emit covers every rejection rule — MemoryOverhead shares the
		// same validation (core.TCMBased.validate), so probing it too
		// would only assemble the body a second time.
		if err := w.strat.Emit(asm.NewBuilder(), r); err != nil {
			sp.skip()
			continue
		}
		accepted++
		res, err := runWrapped(r, coreID, w.strat, w.cached, cov)
		if err != nil {
			diffs = append(diffs, fmt.Sprintf("%s: %v", w.name, err))
			continue
		}
		if !res.OK {
			diffs = append(diffs, fmt.Sprintf("%s: run failed (wedged=%v)", w.name, res.Wedged))
			continue
		}
		if res.Signature != refSig {
			diffs = append(diffs, fmt.Sprintf("%s: sig %08x, want %08x", w.name, res.Signature, refSig))
		}
	}
	if accepted == 0 {
		// Every wrapping rejected the program: nothing was compared at all.
		sp.fullSkip()
	}
	return renderDiffs(diffs)
}

// runWrapped executes one strategy-wrapped routine on the SoC.
func runWrapped(r *sbst.Routine, coreID int, strat core.Strategy, cached bool, cov *coverage.Map) (*core.RunResult, error) {
	var jobs [soc.NumCores]*core.CoreJob
	jobs[coreID] = &core.CoreJob{Routine: r, Strategy: strat, CodeBase: codeBase}
	results, _, err := core.RunJobsSetup(socConfig(coreID, cached, false), jobs, socBudget, nil,
		func(s *soc.SoC) {
			if cov != nil {
				s.SetCoverage(cov)
			}
		})
	if err != nil {
		return nil, err
	}
	return results[coreID], nil
}

// schedShape is the seed-derived scheduler-scenario shape: core count,
// wrapping strategy and the library tasks that ride alongside the fuzzed
// program.
type schedShape struct {
	nCores int
	strat  string
	libs   []string
}

// schedLibPool lists the library routines eligible as scheduler tasks:
// pure-dataflow signatures (no performance counters, no interrupts, no
// position-dependent folds), so serial and parallel placements must agree
// under every strategy including Plain.
var schedLibPool = []string{"alu", "shift", "mul", "loadstore", "branch", "forwarding"}

func schedShapeFor(seed int64) schedShape {
	rng := rand.New(rand.NewSource(seed ^ 0x7363686564)) // "sched"
	sh := schedShape{nCores: 1 + rng.Intn(soc.NumCores)}
	sh.strat = []string{"plain", "cache", "tcm"}[rng.Intn(3)]
	k := rng.Intn(4)
	perm := rng.Perm(len(schedLibPool))
	for i := 0; i < k; i++ {
		sh.libs = append(sh.libs, schedLibPool[perm[i]])
	}
	return sh
}

// schedStrategy resolves a strategy name into the per-core factory
// Plan.Jobs consumes, plus whether the SoC needs caches on.
func schedStrategy(name string) (func(int) core.Strategy, bool) {
	switch name {
	case "cache":
		return func(int) core.Strategy { return core.CacheBased{WriteAllocate: true} }, true
	case "tcm":
		return func(id int) core.Strategy { return core.TCMBased{CoreID: id} }, false
	default:
		return func(int) core.Strategy { return core.Plain{} }, false
	}
}

// checkSched runs one task set through the multi-core scheduled boot and
// the one-core serial plan and compares per-task signatures plus the live
// plan invariants. libs normally comes from schedShapeFor(p.Seed);
// minimization passes reduced lists.
func (sp progSpec) checkSched(p *progen.Program, libs []string, cov *coverage.Map) string {
	if p.Cfg.Interrupts.Enabled() || p.Cfg.Pairs64 {
		// Handler programs need their injector; 64-bit pair programs are
		// core-C-only and a partition may place them on any core. Both are
		// out of scope: explicit skips, not silent passes.
		sp.skip()
		sp.fullSkip()
		return ""
	}
	sh := schedShapeFor(p.Seed)
	tasks := []sched.Task{{Routine: withSigPublish(p.BlockForm("fuzz"), sigSlot(0))}}
	for i, name := range libs {
		r, err := sbst.NewRoutineByName(name, sbst.RoutineOptions{
			DataBase: mem.SRAMBase + 0x1000*uint32(i+1),
		})
		if err != nil {
			return fmt.Sprintf("sched: %v", err)
		}
		tasks = append(tasks, sched.Task{Routine: withSigPublish(r, sigSlot(i+1))})
	}

	strat, cached := schedStrategy(sh.strat)
	for _, t := range tasks {
		if err := strat(0).Emit(asm.NewBuilder(), t.Routine); err != nil {
			// The chosen wrapping rejects a task: downgrade the whole
			// iteration to Plain (identically on both sides) and record the
			// explicit skip.
			strat, cached = schedStrategy("plain")
			sp.skip()
			break
		}
	}

	serialPlan, err := sched.Partition(tasks, 1)
	if err != nil {
		return fmt.Sprintf("sched: %v", err)
	}
	parPlan, err := sched.Partition(tasks, sh.nCores)
	if err != nil {
		return fmt.Sprintf("sched: %v", err)
	}
	if d := checkPlanInvariants(tasks, parPlan, sh.nCores); d != "" {
		return d
	}

	serialSigs, serialMax, d := runPlan(serialPlan, strat, cached, len(tasks), nil)
	if d != "" {
		return "serial: " + d
	}
	parSigs, parMax, d := runPlan(parPlan, strat, cached, len(tasks), cov)
	if d != "" {
		return "parallel: " + d
	}
	var diffs []string
	for i := range tasks {
		if parSigs[i] != serialSigs[i] {
			diffs = append(diffs, fmt.Sprintf("task %d sig %08x (parallel), %08x (serial)",
				i, parSigs[i], serialSigs[i]))
		}
	}
	// Work conservation on the live SoC: contention and barrier spin only
	// slow the parallel boot, so nCores x its makespan can never fall below
	// the serial run (minus the serial-only epilogue slack).
	if int64(sh.nCores)*parMax+schedSlackCycles < serialMax {
		diffs = append(diffs, fmt.Sprintf(
			"makespan conservation violated: %d cores x %d cycles < serial %d cycles",
			sh.nCores, parMax, serialMax))
	}
	return renderDiffs(diffs)
}

// checkPlanInvariants promotes the sched property-test invariants to the
// live scenario: exactly-once assignment, empty inactive cores, and a
// makespan estimate that recounts consistently and carries the heaviest
// task.
func checkPlanInvariants(tasks []sched.Task, plan sched.Plan, nCores int) string {
	seen := make(map[*sbst.Routine]int, len(tasks))
	assigned := 0
	loads := plan.Makespan()
	var longest, heaviest int64
	for c := 0; c < soc.NumCores; c++ {
		if c >= nCores && len(plan.PerCore[c]) > 0 {
			return fmt.Sprintf("plan: inactive core %d received tasks", c)
		}
		var recount int64
		for _, t := range plan.PerCore[c] {
			seen[t.Routine]++
			assigned++
			recount += t.Cost()
		}
		if loads[c] != recount {
			return fmt.Sprintf("plan: Makespan()[%d] = %d, recount %d", c, loads[c], recount)
		}
		if loads[c] > longest {
			longest = loads[c]
		}
	}
	if assigned != len(tasks) {
		return fmt.Sprintf("plan: %d of %d tasks assigned", assigned, len(tasks))
	}
	for i := range tasks {
		if seen[tasks[i].Routine] != 1 {
			return fmt.Sprintf("plan: task %d assigned %d times", i, seen[tasks[i].Routine])
		}
		if c := tasks[i].Cost(); c > heaviest {
			heaviest = c
		}
	}
	if len(tasks) > 0 && longest < heaviest {
		return fmt.Sprintf("plan: makespan %d below heaviest task %d", longest, heaviest)
	}
	return ""
}

// runPlan boots one plan on the SoC and returns the published per-task
// signature table and the slowest core's cycle count. The setup hook
// clears the barrier flags; after a clean run every participating core's
// flag must read published.
func runPlan(plan sched.Plan, strat func(int) core.Strategy, cached bool, nTasks int, cov *coverage.Map) ([]uint32, int64, string) {
	jobs := plan.Jobs(strat)
	cfg := soc.DefaultConfig()
	for id := 0; id < soc.NumCores; id++ {
		cfg.Cores[id].CachesOn = cached
		cfg.Cores[id].WriteAlloc = true
	}
	results, s, err := core.RunJobsSetup(cfg, jobs, socBudget, nil, func(s *soc.SoC) {
		if cov != nil {
			s.SetCoverage(cov)
		}
		sched.ClearFlags(s)
	})
	if err != nil {
		return nil, 0, err.Error()
	}
	var maxCycles int64
	for id := 0; id < plan.NCores; id++ {
		res := results[id]
		if res == nil || !res.OK {
			return nil, 0, fmt.Sprintf("core %d did not complete cleanly (%+v)", id, res)
		}
		if res.Cycles > maxCycles {
			maxCycles = res.Cycles
		}
		if f := mem.ReadWord(s.SRAM, sched.FlagAddr(id)-mem.SRAMUncachedBase); f != 1 {
			return nil, 0, fmt.Sprintf("core %d completion flag = %d, want 1", id, f)
		}
	}
	sigs := make([]uint32, nTasks)
	for i := range sigs {
		sigs[i] = mem.ReadWord(s.SRAM, sigSlot(i)-mem.SRAMUncachedBase)
	}
	return sigs, maxCycles, ""
}

// withSigPublish returns a copy of r with one extra block that stores the
// routine's final signature to the uncached result slot. The block is the
// routine's last, so inside every strategy's loops the signature is
// already final when it runs and the store is idempotent; the last write
// is the committed value the checker reads.
func withSigPublish(r *sbst.Routine, addr uint32) *sbst.Routine {
	cp := *r
	cp.Blocks = append(append([]sbst.Block(nil), r.Blocks...), sbst.Block{
		Name: "publish",
		Emit: func(b *asm.Builder) {
			b.I(isa.OpLUI, isa.RegTmp0, 0, int32(addr>>16))
			b.I(isa.OpORI, isa.RegTmp0, isa.RegTmp0, int32(addr&0xFFFF))
			b.Store(isa.OpSW, isa.RegSig, isa.RegTmp0, 0)
		},
	})
	return &cp
}
