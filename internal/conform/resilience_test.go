package conform

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/archint"
	"repro/internal/progen"
)

// handlerProgram generates a handler-carrying program — out of scope for
// the strategies, sched and arena scenarios, which must skip it entirely
// (and loudly) rather than silently pass.
func handlerProgram(t *testing.T) *progen.Program {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	p := progen.Generate(1, progen.Config{Interrupts: archint.RandomPlan(rng)})
	if !p.Cfg.Interrupts.Enabled() {
		t.Fatal("generated program has no interrupt plan")
	}
	return p
}

// TestRunIsolatesPanic pins the recover boundary at the scenario surface:
// a check that panics comes back as a Panicked mismatch carrying the panic
// value and a stack, never as an unwinding goroutine.
func TestRunIsolatesPanic(t *testing.T) {
	sc, err := NewMutated("uncached", CrashBug)
	if err != nil {
		t.Fatal(err)
	}
	m := sc.Run(1)
	if m == nil {
		t.Fatal("panicking check reported agreement")
	}
	if !m.Panicked {
		t.Fatalf("mismatch not marked Panicked: %s", m)
	}
	if !strings.Contains(m.Detail, "panic:") || !strings.Contains(m.Detail, "injected crash bug") {
		t.Errorf("detail does not carry the panic value: %q", m.Detail)
	}
	if m.Stack == "" {
		t.Error("no stack captured")
	}
	if m.Program == nil {
		t.Error("panicked mismatch lost its program (no recipe to save)")
	}
}

// TestMinimizePanickedMismatch pins that panicking reductions count as
// failing reductions: Minimize on a panicked mismatch terminates and keeps
// a failing (still-panicking) program.
func TestMinimizePanickedMismatch(t *testing.T) {
	sc, err := NewMutated("uncached", CrashBug)
	if err != nil {
		t.Fatal(err)
	}
	m := sc.Run(1)
	if m == nil || !m.Panicked {
		t.Fatal("no panicked mismatch to minimize")
	}
	before := m.Program.NumInsts()
	m.Minimize()
	if !strings.Contains(m.Detail, "panic:") {
		t.Errorf("minimized detail lost the panic: %q", m.Detail)
	}
	if got := m.Program.NumInsts(); got > before {
		t.Errorf("minimization grew the program: %d -> %d instructions", before, got)
	}
}

// TestFuzzContinuesPastPanics pins the fuzz loop's isolation contract: a
// bug that panics on every program must not stop the loop — each panic is
// counted, handed to OnPanic, and the loop runs its full budget.
func TestFuzzContinuesPastPanics(t *testing.T) {
	sc, err := NewMutated("uncached", CrashBug)
	if err != nil {
		t.Fatal(err)
	}
	var hooked []*Mismatch
	const iters = 4
	res, err := sc.Fuzz(1, iters, time.Time{}, FuzzOptions{
		OnPanic: func(m *Mismatch) { hooked = append(hooked, m) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil {
		t.Fatalf("fuzz loop stopped on an isolated panic: %s", res.Mismatch)
	}
	if res.Iters != iters || res.Panics != iters {
		t.Fatalf("iters=%d panics=%d, want %d/%d", res.Iters, res.Panics, iters, iters)
	}
	if len(hooked) != iters {
		t.Fatalf("OnPanic called %d times, want %d", len(hooked), iters)
	}
	if res.FirstPanic == nil || !res.FirstPanic.Panicked || res.FirstPanic.Program == nil {
		t.Fatalf("FirstPanic not kept for reporting: %+v", res.FirstPanic)
	}
	if !strings.Contains(res.Summary(), "panicked checks isolated") {
		t.Errorf("summary silent about panics: %q", res.Summary())
	}
}

// TestFullSkipVerdicts pins the skipped-everything counter on every
// scenario that can skip a whole program: a handler-carrying program
// compares nothing in strategies, sched and arena, and each must say so
// through FullSkips — the signal CI gates on.
func TestFullSkipVerdicts(t *testing.T) {
	p := handlerProgram(t)
	for _, name := range []string{"strategies", "sched", "arena"} {
		sc, err := Lookup(name)
		if err != nil {
			t.Fatal(err)
		}
		if m := sc.CheckProgram(p, nil); m != nil {
			t.Fatalf("%s: out-of-scope program reported a mismatch: %s", name, m)
		}
		if got := sc.FullSkips(); got != 1 {
			t.Errorf("%s: FullSkips = %d, want 1", name, got)
		}
		if got := sc.Skips(); got != 1 {
			t.Errorf("%s: Skips = %d, want 1", name, got)
		}
	}
}

// TestFullSkipsStayZeroInScope is the other half of the gate: a scenario
// actually comparing things records no full skips, so a healthy seed
// window can never trip the CI gate.
func TestFullSkipsStayZeroInScope(t *testing.T) {
	sc, err := Lookup("strategies")
	if err != nil {
		t.Fatal(err)
	}
	if m := sc.Run(3); m != nil {
		t.Fatalf("seed 3 diverged: %s", m)
	}
	if got := sc.FullSkips(); got != 0 {
		t.Errorf("in-scope run recorded %d full skips", got)
	}
}
