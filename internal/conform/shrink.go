package conform

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/progen"
)

// Mismatch is one conformance failure: the scenario and seed that produced
// it, a description of the divergence, and the failing input — a generated
// program for program scenarios, a fault universe for campaign scenarios.
// Minimize shrinks the input in place while it keeps failing.
type Mismatch struct {
	Scenario string
	Seed     int64
	Detail   string

	// Panicked marks a check that panicked instead of diverging: the
	// harness's recover boundary caught it, Detail carries the panic value
	// and Stack the captured stack. The fuzz loop isolates these (saving
	// the recipe and continuing) rather than stopping on them.
	Panicked bool
	Stack    string

	// Program is the failing generated program (program scenarios).
	Program *progen.Program
	// Sites is the failing fault universe (campaign scenarios).
	Sites []fault.Site
	// Groups is the failing multi-fault group universe (multifault
	// scenario): each group's sites are injected simultaneously.
	Groups [][]fault.Site
	// LibTasks is the failing plan's library task list (sched scenario);
	// the fuzzed program is always task 0 and never dropped as a whole.
	LibTasks []string

	// recheck functions re-run the failing check on a reduced input and
	// return the divergence ("" = the reduced input passes, so the
	// reduction went too far).
	recheckProg   func(*progen.Program) string
	recheckSites  func([]fault.Site) string
	recheckSched  func(*progen.Program, []string) string
	recheckGroups func([][]fault.Site) string

	// fromSweep marks mismatches whose program is exactly the seed sweep's
	// Generate(seed, cfgFor(seed)) — the only case a "-seed N -n 1" command
	// line reproduces. Guided/mutated/replayed programs need their recipe.
	fromSweep bool
}

func (m *Mismatch) String() string {
	return fmt.Sprintf("scenario %s seed %d: %s", m.Scenario, m.Seed, m.Detail)
}

// Repro returns the one-line command that reproduces the original
// failure. A seed-sweep mismatch replays from its seed alone; a program
// that carries mutations or a perturbed config does not — only its
// recipe rebuilds it, so the repro points at -recipe replay.
func (m *Mismatch) Repro() string {
	if m.Program != nil && !m.fromSweep {
		return fmt.Sprintf("save the printed recipe and run: go run ./cmd/conform -recipe FILE -scenario %s", m.Scenario)
	}
	return fmt.Sprintf("go run ./cmd/conform -scenario %s -seed %d -n 1", m.Scenario, m.Seed)
}

// Disassembly renders the (minimized) failing program, the failing site
// list for campaign mismatches, or the failing group list for multifault
// mismatches.
func (m *Mismatch) Disassembly() string {
	if m.Program != nil {
		prog, err := m.Program.Assemble(codeBase)
		if err != nil {
			return fmt.Sprintf("<assemble failed: %v>", err)
		}
		return prog.Listing()
	}
	out := ""
	for _, g := range m.Groups {
		out += fmt.Sprintf("  group %v\n", g)
	}
	for _, s := range m.Sites {
		out += fmt.Sprintf("  %v\n", s)
	}
	return out
}

// maxShrinkRounds bounds the greedy passes; each pass that removes nothing
// terminates the loop, so this is a safety net, not the usual exit.
const maxShrinkRounds = 10

// Minimize greedily shrinks the failing input: drop-an-instruction (unit)
// minimization for programs, drop-a-site minimization for fault universes,
// both-axis drop-a-unit / drop-a-task minimization for scheduler
// mismatches, and both-axis drop-a-group / drop-a-component minimization
// for multi-fault group universes. Every candidate reduction is re-checked against the
// scenario; reductions that stop failing are rolled back. Detail is
// updated to describe the minimized failure.
func (m *Mismatch) Minimize() {
	switch {
	case m.Program != nil && m.recheckSched != nil:
		m.Program, m.LibTasks = minimizeSched(m.Program, m.LibTasks, m.recheckSched,
			func(d string) { m.Detail = d })
	case m.Program != nil && m.recheckProg != nil:
		m.Program = minimizeProgram(m.Program, m.recheckProg, func(d string) { m.Detail = d })
	case m.Sites != nil && m.recheckSites != nil:
		m.Sites = minimizeSites(m.Sites, m.recheckSites, func(d string) { m.Detail = d })
	case m.Groups != nil && m.recheckGroups != nil:
		m.Groups = minimizeGroups(m.Groups, m.recheckGroups, func(d string) { m.Detail = d })
	}
}

// minimizeSched is the scheduler scenario's both-axis greedy loop: drop a
// unit from the fuzzed program, then drop a library task from the plan,
// until neither axis can shrink. Each accepted reduction re-ran the full
// serial-vs-parallel check with the reduced inputs.
func minimizeSched(p *progen.Program, libs []string, fails func(*progen.Program, []string) string, onFail func(string)) (*progen.Program, []string) {
	for round := 0; round < maxShrinkRounds; round++ {
		changed := false
		for i := len(p.Units) - 1; i >= 0; i-- {
			if p.Units[i].Pinned {
				continue
			}
			q := p.WithoutUnit(i)
			if d := fails(q, libs); d != "" {
				p = q
				onFail(d)
				changed = true
			}
		}
		for i := len(libs) - 1; i >= 0; i-- {
			sub := append(append([]string(nil), libs[:i]...), libs[i+1:]...)
			if d := fails(p, sub); d != "" {
				libs = sub
				onFail(d)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return p, libs
}

// minimizeProgram drops units from the end first (the spill stores go
// before the instructions that feed the divergence), re-checking after
// each drop, then shrinks the interrupt plan the same way — handler
// programs minimize along both axes until neither a unit nor a plan event
// can go. onFail records the detail of the latest still-failing reduction.
func minimizeProgram(p *progen.Program, fails func(*progen.Program) string, onFail func(string)) *progen.Program {
	for round := 0; round < maxShrinkRounds; round++ {
		changed := false
		for i := len(p.Units) - 1; i >= 0; i-- {
			if p.Units[i].Pinned {
				continue
			}
			q := p.WithoutUnit(i)
			if d := fails(q); d != "" {
				p = q
				onFail(d)
				changed = true
			}
		}
		for i := len(p.Cfg.Interrupts.Events) - 1; i >= 0; i-- {
			// Rebuilds from the edited recipe; the last event refuses to
			// drop (that would dissolve handler mode under the recorded
			// edit list), which WithoutPlanEvent reports as an error.
			q, err := p.WithoutPlanEvent(i)
			if err != nil {
				continue
			}
			if d := fails(q); d != "" {
				p = q
				onFail(d)
				changed = true
			}
		}
		if !changed {
			return p
		}
	}
	return p
}

// minimizeGroups is the multifault scenario's both-axis greedy loop: drop
// a whole group from the universe, then drop one component site from any
// surviving multi-site group (a pair shrinking to the single component
// that still diverges proves the divergence needed no fault interaction).
// Every candidate reduction re-runs the full both-mode comparison.
func minimizeGroups(groups [][]fault.Site, fails func([][]fault.Site) string, onFail func(string)) [][]fault.Site {
	without := func(i int) [][]fault.Site {
		sub := make([][]fault.Site, 0, len(groups)-1)
		sub = append(sub, groups[:i]...)
		return append(sub, groups[i+1:]...)
	}
	for round := 0; round < maxShrinkRounds; round++ {
		changed := false
		for i := len(groups) - 1; i >= 0; i-- {
			if d := fails(without(i)); d != "" {
				groups = without(i)
				onFail(d)
				changed = true
			}
		}
		for i := len(groups) - 1; i >= 0; i-- {
			for j := len(groups[i]) - 1; j >= 0 && len(groups[i]) > 1; j-- {
				g := make([]fault.Site, 0, len(groups[i])-1)
				g = append(g, groups[i][:j]...)
				g = append(g, groups[i][j+1:]...)
				sub := append([][]fault.Site(nil), groups...)
				sub[i] = g
				if d := fails(sub); d != "" {
					groups = sub
					onFail(d)
					changed = true
				}
			}
		}
		if !changed {
			return groups
		}
	}
	return groups
}

// minimizeSites is the same greedy loop over a fault universe.
func minimizeSites(sites []fault.Site, fails func([]fault.Site) string, onFail func(string)) []fault.Site {
	for round := 0; round < maxShrinkRounds; round++ {
		changed := false
		for i := len(sites) - 1; i >= 0; i-- {
			sub := make([]fault.Site, 0, len(sites)-1)
			sub = append(sub, sites[:i]...)
			sub = append(sub, sites[i+1:]...)
			if d := fails(sub); d != "" {
				sites = sub
				onFail(d)
				changed = true
			}
		}
		if !changed {
			return sites
		}
	}
	return sites
}
