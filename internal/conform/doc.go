// Package conform is the conformance subsystem guarding the repository's
// core invariant: timing must never change semantics. It cross-checks the
// same randomly generated program (internal/progen) on every execution
// engine the repository has —
//
//	(1) the functional interpreter (internal/iss),
//	(2) the cycle-accurate pipeline, with caches, without caches, and
//	    without caches while two other cores hammer the shared bus,
//	(3) fault-free runs of the reusable arena campaign engine, including
//	    back-to-back reset determinism,
//	(4) interrupt-enabled runs: handler-carrying programs under a shared
//	    archint interrupt plan, the ISS recognising precisely, the
//	    pipeline through its imprecise ICU,
//	(5) strategy-wrapped runs: the program in routine block form under
//	    core.Plain / CacheBased / TCMBased, every accepted wrapping
//	    reproducing the ISS reference signature (rejections are explicit
//	    skip verdicts),
//	(6) scheduled multi-core boots: sched.Partition plans, barrier
//	    protocol included, bit-identical per-task signatures against
//	    one-core serial execution,
//
// and, at the campaign level, fuzzes random full fault universes through
// both arena modes — optimized (early exit, checkpointing) and reference
// (full budget, no shortcuts) — requiring bit-identical reports, plus
// coverage-steered multi-fault pair universes (multifault scenario).
//
// On a mismatch the harness shrinks the failing input —
// drop-an-instruction minimization for programs (plus drop-a-plan-event
// for interrupt programs and drop-a-task for scheduler plans),
// drop-a-site minimization for fault universes —
// and renders a one-line repro command plus a disassembly of the
// minimized program (see cmd/conform). MinimizeCorpus is the corpus
// lifecycle pass: entries whose coverage bits other entries subsume are
// deleted without losing the corpus's coverage union.
package conform
