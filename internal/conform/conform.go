package conform

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"strings"

	"repro/internal/archint"
	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/iss"
	"repro/internal/mem"
	"repro/internal/progen"
	"repro/internal/sbst"
	"repro/internal/soc"
)

const (
	codeBase = soc.CodeLow

	// issBudget bounds the interpreter run (instructions); socBudget the
	// pipeline runs (cycles, generously above any generated program).
	issBudget = 200_000
	socBudget = 20_000_000

	// arenaBudget is the per-run cycle budget handed to fault-free arena
	// checks.
	arenaBudget = 2_000_000
)

// Mutation rewrites decoded instructions before they reach the target
// engine — the harness's model of a decoder bug. The interpreter always
// runs the clean image, so any semantic effect of the mutation is caught
// as a differential mismatch. Used by the self-test mode that proves the
// harness can catch and minimize an injected bug.
type Mutation func(isa.Inst) isa.Inst

// DecoderBugArithShift is the canonical injected bug: the decoder loses
// the arithmetic/logical distinction of right shifts (SRA decodes as SRL,
// SRAV as SRLV) — wrong only when the shifted value is negative.
func DecoderBugArithShift(i isa.Inst) isa.Inst {
	switch i.Op {
	case isa.OpSRA:
		i.Op = isa.OpSRL
	case isa.OpSRAV:
		i.Op = isa.OpSRLV
	}
	return i
}

// CrashBug is the self-test's injected harness defect: a target-side
// mutation that panics on the first decodable instruction instead of
// diverging — the model of an engine bug that crashes mid-check. The fuzz
// loop must isolate it (panicked mismatch, recipe saved, loop continues)
// rather than die.
func CrashBug(i isa.Inst) isa.Inst {
	panic(fmt.Sprintf("injected crash bug on %v", i.Op))
}

// mutate returns a copy of prog with the mutation applied to every word
// that decodes. Generated programs contain no data words, so this is
// exactly "the target decodes the same image differently".
func mutate(prog *asm.Program, mut Mutation) *asm.Program {
	cp := *prog
	cp.Words = append([]uint32(nil), prog.Words...)
	for i, w := range cp.Words {
		inst, err := isa.Decode(w)
		if err != nil {
			continue
		}
		m := mut(inst)
		if m == inst {
			continue
		}
		if w2, err := isa.Encode(m); err == nil {
			cp.Words[i] = w2
		}
	}
	return &cp
}

// Scenario is one conformance check, identified by name for -scenario
// flags and repro command lines. Program scenarios additionally expose
// program-level checking (CheckProgram) and the coverage-guided corpus
// loop (Fuzz); the campaign scenario has neither.
type Scenario struct {
	Name string
	Desc string
	run  func(seed int64) *Mismatch
	spec *progSpec // program-level access; nil for the campaign scenario
	mut  Mutation  // injected target-side decoder bug (self-test); nil normally
}

// guardCheck runs one differential check behind the harness's recover
// boundary. A panicking check returns a "panic: ..." detail plus the
// captured stack instead of unwinding into the sweep or fuzz loop — the
// same isolation fault campaigns apply per run.
func guardCheck(f func() string) (detail, stack string) {
	defer func() {
		if v := recover(); v != nil {
			detail = fmt.Sprintf("panic: %v", v)
			stack = string(debug.Stack())
		}
	}()
	return f(), ""
}

// guardRecheck wraps a minimization recheck the same way: a reduction that
// panics is still a failing reduction, so panicking mismatches minimize
// like any other.
func guardRecheck(f func() string) string {
	d, _ := guardCheck(f)
	return d
}

// Run executes one iteration. A nil result means the engines agreed. A
// panic anywhere in the check surfaces as a Panicked mismatch instead of
// killing the caller.
func (s *Scenario) Run(seed int64) (m *Mismatch) {
	defer func() {
		if v := recover(); v != nil {
			m = &Mismatch{
				Scenario: s.Name,
				Seed:     seed,
				Detail:   fmt.Sprintf("panic: %v", v),
				Panicked: true,
				Stack:    string(debug.Stack()),
			}
		}
	}()
	return s.run(seed)
}

// Guidable reports whether the scenario runs generated programs and so
// supports coverage collection and guided fuzzing.
func (s *Scenario) Guidable() bool { return s.spec != nil }

// Skips reports the explicit skip verdicts this scenario instance has
// recorded so far: wrappings a strategy rejected (MemoryOverhead/Validate)
// and out-of-scope programs a cross-scenario corpus handed over. Skips are
// deliberately loud in the totals — a scenario that silently passed what
// it never ran would hide coverage holes.
func (s *Scenario) Skips() int {
	if s.spec == nil || s.spec.skips == nil {
		return 0
	}
	return *s.spec.skips
}

// FullSkips reports iterations where the scenario compared NOTHING — every
// wrapping was rejected or the whole program was out of scope. A window of
// seeds producing only full skips means the scenario has stopped testing
// anything, which CI treats as a failure rather than a silent pass.
func (s *Scenario) FullSkips() int {
	if s.spec == nil || s.spec.fullSkips == nil {
		return 0
	}
	return *s.spec.fullSkips
}

// CheckProgram runs one specific program through the scenario's engines,
// collecting coverage into cov when non-nil. A nil result means the
// engines agreed. Only valid on Guidable scenarios.
func (s *Scenario) CheckProgram(p *progen.Program, cov *coverage.Map) *Mismatch {
	detail, stack := guardCheck(func() string { return s.spec.check(p, s.mut, cov) })
	if detail == "" {
		return nil
	}
	m := &Mismatch{
		Scenario: s.Name,
		Seed:     p.Seed,
		Detail:   detail,
		Panicked: stack != "",
		Stack:    stack,
		Program:  p,
		recheckProg: func(q *progen.Program) string {
			return guardRecheck(func() string { return s.spec.check(q, s.mut, nil) })
		},
	}
	s.spec.decorateSched(m)
	return m
}

// CheckProgramWithLibs is CheckProgram with an explicit scheduler
// library-task list — the form a minimized sched artifact carries. A sched
// mismatch's unit drops are validated against its reduced task list, so
// replaying the recipe with the full seed-derived list may legitimately
// pass; replaying with the saved list reproduces. Scenarios other than
// sched (and a nil libs) fall back to CheckProgram.
func (s *Scenario) CheckProgramWithLibs(p *progen.Program, libs []string, cov *coverage.Map) *Mismatch {
	if !s.spec.sched || libs == nil {
		return s.CheckProgram(p, cov)
	}
	detail, stack := guardCheck(func() string { return s.spec.checkSched(p, libs, cov) })
	if detail == "" {
		return nil
	}
	sp := s.spec
	return &Mismatch{
		Scenario: s.Name,
		Seed:     p.Seed,
		Detail:   detail,
		Panicked: stack != "",
		Stack:    stack,
		Program:  p,
		LibTasks: libs,
		recheckProg: func(q *progen.Program) string {
			return guardRecheck(func() string { return sp.checkSched(q, libs, nil) })
		},
		recheckSched: func(q *progen.Program, l []string) string {
			return guardRecheck(func() string { return sp.checkSched(q, l, nil) })
		},
	}
}

// Scenarios returns the full conformance suite.
func Scenarios() []*Scenario {
	out := []*Scenario{}
	for _, spec := range progSpecs {
		spec := spec
		spec.skips = new(int)
		spec.fullSkips = new(int)
		out = append(out, &Scenario{
			Name: spec.name,
			Desc: spec.desc,
			run:  func(seed int64) *Mismatch { return spec.runSeed(seed, nil) },
			spec: &spec,
		})
	}
	out = append(out, &Scenario{
		Name: "campaign",
		Desc: "random full fault universes: optimized vs reference arena reports must be bit-identical",
		run:  runCampaignSeed,
	})
	out = append(out, &Scenario{
		Name: "multifault",
		Desc: "coverage-steered multi-fault pair universes (with planned-interrupt crosses): both arena modes must agree",
		run:  runMultifaultSeed,
	})
	return out
}

// Lookup resolves a scenario by name.
func Lookup(name string) (*Scenario, error) {
	for _, s := range Scenarios() {
		if s.Name == name {
			return s, nil
		}
	}
	var names []string
	for _, s := range Scenarios() {
		names = append(names, s.Name)
	}
	return nil, fmt.Errorf("conform: unknown scenario %q (have %s)", name, strings.Join(names, ", "))
}

// NewMutated returns a copy of a program scenario with a target-side
// decoder mutation injected — the self-test mode. Campaign scenarios have
// no decoder in the loop, and the arena, strategies and sched scenarios
// hand the program to their engines as a routine rather than an image, so
// none of those can be mutated.
func NewMutated(name string, mut Mutation) (*Scenario, error) {
	for _, spec := range progSpecs {
		if spec.name == name && spec.mutable() {
			spec := spec
			spec.skips = new(int)
			spec.fullSkips = new(int)
			return &Scenario{
				Name: spec.name,
				Desc: spec.desc + " (injected decoder bug)",
				run:  func(seed int64) *Mismatch { return spec.runSeed(seed, mut) },
				spec: &spec,
				mut:  mut,
			}, nil
		}
	}
	return nil, fmt.Errorf("conform: no mutable program scenario %q", name)
}

// progSpec is one program-level scenario shape.
type progSpec struct {
	name, desc      string
	cached, contend bool
	arena           bool
	// intr makes the seed sweep generate handler-carrying programs with a
	// deterministic interrupt-event plan: the ISS runs the archint
	// recognition model, the pipeline gets the same plan through the ICU
	// injection shim.
	intr bool
	// strat compares the program under every wrapping strategy against the
	// ISS reference signature; sched fuzzes Partition plans against serial
	// one-core execution (see strategies.go).
	strat bool
	sched bool
	// skips counts explicit skip verdicts (strategy/scheduler wrapping
	// rejections, out-of-scope programs); allocated per Scenario instance.
	skips *int
	// fullSkips counts iterations that skipped ENTIRELY — not one wrapping
	// among several, but a program the scenario compared nothing for.
	fullSkips *int
}

// skip records one explicit skip verdict.
func (sp progSpec) skip() {
	if sp.skips != nil {
		*sp.skips++
	}
}

// fullSkip records an iteration that compared nothing at all.
func (sp progSpec) fullSkip() {
	if sp.fullSkips != nil {
		*sp.fullSkips++
	}
}

// mutable reports whether the scenario runs the assembled image directly
// on the target (and so supports an injected decoder mutation). The arena,
// strategies and sched scenarios re-emit the program through routines and
// strategy wrappers — there is no shared image to mutate.
func (sp progSpec) mutable() bool { return !sp.arena && !sp.strat && !sp.sched }

var progSpecs = []progSpec{
	{name: "cached", desc: "ISS vs pipeline, private caches on, single core",
		cached: true},
	{name: "uncached", desc: "ISS vs pipeline, caches off, single core"},
	{name: "contended", desc: "ISS vs pipeline, caches off, two cores hammering the bus",
		contend: true},
	{name: "arena", desc: "ISS vs fault-free arena engine runs, including reset determinism",
		arena: true},
	{name: "interrupts", desc: "ISS+archint model vs pipeline ICU, handler-carrying programs under a shared interrupt plan",
		intr: true},
	{name: "strategies", desc: "one program under Plain/CacheBased/TCMBased wrapping vs the ISS reference signature",
		strat: true},
	{name: "sched", desc: "multi-core Partition plans (barrier protocol included) vs single-core serial execution",
		sched: true},
}

// baseCfgFor derives the scenario-independent generator configuration for
// a seed: the knobs sweep 64-bit pair ops, ICU event pressure, load/store
// density and branch density across the seed space. Scenario code must go
// through progSpec.cfgFor, which layers the scenario's own shape (the
// interrupt plan) on top.
func baseCfgFor(seed int64) progen.Config {
	cfg := progen.Config{Pairs64: seed%3 == 0}
	switch seed % 5 {
	case 1:
		cfg.TrapFrac = 0.2 // ICU recognition-pipeline pressure
	case 2:
		cfg.MemFrac = 0.45 // load/store heavy
	case 3:
		cfg.BranchFrac = 0.95 // control-flow heavy
	case 4:
		cfg.MemFrac = 0.05 // ALU-heavy straight line
	}
	return cfg
}

// progTarget derives the execution target from a program's configuration:
// 64-bit pair programs must run on core C, everything else on core A.
func progTarget(p *progen.Program) (has64 bool, coreID int) {
	has64 = p.Cfg.Pairs64
	if has64 {
		coreID = 2
	}
	return has64, coreID
}

func genFor(seed int64) *progen.Program { return progen.Generate(seed, baseCfgFor(seed)) }

// cfgFor derives the generator configuration the scenario's seed sweep
// uses: the shared knob sweep, plus — for the interrupts scenario — a
// seed-derived interrupt plan and occasional synchronous trap pressure so
// planned and instruction-raised events interleave.
func (sp progSpec) cfgFor(seed int64) progen.Config {
	cfg := baseCfgFor(seed)
	switch {
	case sp.intr:
		rng := rand.New(rand.NewSource(seed ^ 0x61726368696e74)) // "archint"
		cfg.Interrupts = archint.RandomPlan(rng)
		if cfg.TrapFrac == 0 && seed%2 == 0 {
			cfg.TrapFrac = 0.1
		}
	case sp.sched:
		// Scheduled tasks land on any core, and only core C implements the
		// 64-bit pair extension.
		cfg.Pairs64 = false
	case sp.strat:
		// Larger programs on the seeds that also shrink the cache
		// strategy's partition budget (stratGeom), so multi-chunk wrapping
		// is reliably reached.
		if ((seed%3)+3)%3 == 2 {
			cfg.Blocks = 18
		}
	}
	return cfg
}

func (sp progSpec) runSeed(seed int64, mut Mutation) *Mismatch {
	p := progen.Generate(seed, sp.cfgFor(seed))
	detail, stack := guardCheck(func() string { return sp.check(p, mut, nil) })
	if detail == "" {
		return nil
	}
	m := &Mismatch{
		Scenario: sp.name,
		Seed:     seed,
		Detail:   detail,
		Panicked: stack != "",
		Stack:    stack,
		Program:  p,
		recheckProg: func(q *progen.Program) string {
			return guardRecheck(func() string { return sp.check(q, mut, nil) })
		},
		fromSweep: true,
	}
	sp.decorateSched(m)
	return m
}

// decorateSched attaches the scheduler scenario's second minimization axis
// to a fresh mismatch: the seed-derived library task list and a recheck
// that honours a reduced list (drop-a-task minimization).
func (sp progSpec) decorateSched(m *Mismatch) {
	if !sp.sched {
		return
	}
	m.LibTasks = schedShapeFor(m.Seed).libs
	m.recheckSched = func(q *progen.Program, libs []string) string {
		return guardRecheck(func() string { return sp.checkSched(q, libs, nil) })
	}
}

// check runs program p on the interpreter and on the scenario's target and
// returns a description of the divergence ("" when the engines agree).
// When cov is non-nil the target system's microarchitectural coverage is
// collected into it.
func (sp progSpec) check(p *progen.Program, mut Mutation, cov *coverage.Map) string {
	if sp.strat {
		return sp.checkStrategies(p, cov)
	}
	if sp.sched {
		return sp.checkSched(p, schedShapeFor(p.Seed).libs, cov)
	}
	if sp.arena && p.Cfg.Interrupts.Enabled() {
		// The arena's golden-capture run happens inside core.NewArena,
		// before any plan shim could attach; a handler program's drain
		// loop would spin its budget out waiting for events that are never
		// injected. Handler programs are out of this scenario's scope (a
		// cross-scenario corpus may legitimately hand one over): skip loudly
		// rather than report a phantom divergence or a silent pass.
		sp.skip()
		sp.fullSkip()
		return ""
	}
	has64, coreID := progTarget(p)
	prog, err := p.Assemble(codeBase)
	if err != nil {
		return fmt.Sprintf("assemble: %v", err)
	}
	refRegs, refScratch, err := runISS(prog, has64, p.Cfg)
	if err != nil {
		return fmt.Sprintf("iss: %v", err)
	}
	if sp.arena {
		// The arena engine assembles its program from the routine itself,
		// so there is no image to mutate here; NewMutated refuses arena.
		return checkArena(p, coreID, refRegs, refScratch, cov)
	}
	target := prog
	if mut != nil {
		target = mutate(prog, mut)
	}
	regs, scratch, err := runSoC(target, p.Cfg, coreID, sp.cached, sp.contend, cov)
	if err != nil {
		return fmt.Sprintf("soc: %v", err)
	}
	var diffs []string
	diffs = append(diffs, diffRegs(regs, refRegs)...)
	if !sp.cached {
		// With caches on, dirty lines may still be cache-resident
		// (write-back policy), so the SRAM view is only authoritative for
		// uncached runs; the spilled registers cover memory state there.
		diffs = append(diffs, diffScratch(scratch, refScratch)...)
	}
	return renderDiffs(diffs)
}

// checkArena compares fault-free arena runs against the interpreter and
// requires two consecutive runs of the same arena to agree exactly — the
// reset-determinism invariant every fault campaign rests on.
func checkArena(p *progen.Program, coreID int, refRegs [32]uint32, refScratch []uint32, cov *coverage.Map) string {
	cfg := socConfig(coreID, false, false)
	job := &core.CoreJob{
		Routine:  p.Routine("fuzz"),
		Strategy: core.Plain{},
		CodeBase: codeBase,
	}
	ar, err := core.NewArena(cfg, coreID, job, arenaBudget, core.ArenaOptions{})
	if err != nil {
		return fmt.Sprintf("arena: %v", err)
	}
	if cov != nil {
		// Attached after construction: the golden capture run inside
		// NewArena stays uninstrumented, the checked fault-free runs below
		// collect.
		ar.SoC().SetCoverage(cov)
	}
	read := func() ([32]uint32, []uint32) {
		s := ar.SoC()
		var regs [32]uint32
		for r := uint8(0); r < 32; r++ {
			regs[r] = s.Cores[coreID].Core.Reg(r)
		}
		return regs, readScratch(p.Cfg, func(addr uint32) uint32 {
			return mem.ReadWord(s.SRAM, addr-mem.SRAMBase)
		})
	}
	if _, ok := ar.Run(fault.None); !ok {
		return "arena: fault-free run did not complete cleanly"
	}
	regs1, scratch1 := read()
	var diffs []string
	diffs = append(diffs, diffRegs(regs1, refRegs)...)
	diffs = append(diffs, diffScratch(scratch1, refScratch)...)
	if d := renderDiffs(diffs); d != "" {
		return d
	}
	if _, ok := ar.Run(fault.None); !ok {
		return "arena: second fault-free run did not complete cleanly"
	}
	regs2, scratch2 := read()
	diffs = diffs[:0]
	for r := 1; r <= progen.MaxOperandReg; r++ {
		if regs2[r] != regs1[r] {
			diffs = append(diffs, fmt.Sprintf("reset leak: r%d = %08x, first run %08x", r, regs2[r], regs1[r]))
		}
	}
	for i := range scratch1 {
		if scratch2[i] != scratch1[i] {
			diffs = append(diffs, fmt.Sprintf("reset leak: scratch[%d] = %08x, first run %08x", i, scratch2[i], scratch1[i]))
		}
	}
	return renderDiffs(diffs)
}

// runISS executes the program on the interpreter and returns final
// registers and the scratch+spill window. Handler programs get the
// architectural recognition model, driven by the same plan the pipeline
// side injects (shared cause encoding on cores A/B, distinct on core C —
// the same has64 derivation progTarget uses).
func runISS(prog *asm.Program, has64 bool, cfg progen.Config) ([32]uint32, []uint32, error) {
	m := iss.NewSparseMem()
	m.LoadWords(prog.Base, prog.Words)
	s := iss.New(m, prog.Base, has64)
	if cfg.Interrupts.Enabled() {
		s.Int = archint.NewModel(!has64, cfg.Interrupts)
	}
	if err := s.Run(issBudget); err != nil {
		return s.Regs, nil, err
	}
	return s.Regs, readScratch(cfg, func(addr uint32) uint32 {
		return uint32(m.Read(addr, 4))
	}), nil
}

func readScratch(cfg progen.Config, read func(addr uint32) uint32) []uint32 {
	out := make([]uint32, cfg.ScratchWords())
	for i := range out {
		out[i] = read(cfg.ScratchBase + uint32(i)*4)
	}
	return out
}

// socConfig returns an SoC configuration with either just the core under
// test active, or all cores (the contended environment).
func socConfig(coreID int, cached, contend bool) soc.Config {
	cfg := soc.DefaultConfig()
	for id := 0; id < soc.NumCores; id++ {
		cfg.Cores[id].Active = id == coreID || contend
		cfg.Cores[id].CachesOn = cached
		cfg.Cores[id].WriteAlloc = true
	}
	return cfg
}

// runSoC executes the program on core coreID, optionally with the two
// other cores running the generic STL as bus contention, collecting
// coverage into cov when non-nil.
func runSoC(prog *asm.Program, cfg progen.Config, coreID int, cached, contend bool, cov *coverage.Map) ([32]uint32, []uint32, error) {
	var regs [32]uint32
	s := soc.New(socConfig(coreID, cached, contend))
	if cov != nil {
		s.SetCoverage(cov)
		// Scope pipeline coverage to the core under test: the contenders
		// run the same STL every iteration, and their constant activity
		// would drown the generated program's signal. The shared bus stays
		// attached — its contention states are exactly what the contended
		// scenario exists to exercise.
		for id := 0; id < soc.NumCores; id++ {
			if id != coreID {
				s.Cores[id].Core.SetCoverage(nil)
			}
		}
	}
	if err := s.Load(prog); err != nil {
		return regs, nil, err
	}
	s.Start(coreID, prog.Base)
	if cfg.Interrupts.Enabled() {
		s.SetInjector(coreID, archint.NewInjector(cfg.Interrupts))
	}
	if contend {
		for id := 0; id < soc.NumCores; id++ {
			if id == coreID {
				continue
			}
			if err := startContender(s, id); err != nil {
				return regs, nil, err
			}
		}
	}
	res := s.Run(socBudget)
	u := s.Cores[coreID]
	if res.TimedOut || u.Core.Wedged() {
		return regs, nil, fmt.Errorf("run failed: timeout=%v wedged=%v", res.TimedOut, u.Core.Wedged())
	}
	for r := uint8(0); r < 32; r++ {
		regs[r] = u.Core.Reg(r)
	}
	scratch := readScratch(cfg, func(addr uint32) uint32 {
		return mem.ReadWord(s.SRAM, addr-mem.SRAMBase)
	})
	return regs, scratch, nil
}

// startContender loads and starts the generic STL on core id — the bus
// pressure of the contended scenario.
func startContender(s *soc.SoC, id int) error {
	routines := sbst.StandardSTL(mem.SRAMBase + 0x2000*uint32(id+1))
	b := asm.NewBuilder()
	for _, r := range routines {
		r.EmitPlain(b)
	}
	b.Halt()
	p, err := b.Assemble(soc.CodeMid + uint32(id)*0x8000)
	if err != nil {
		return err
	}
	if err := s.Load(p); err != nil {
		return err
	}
	for _, r := range routines {
		off := r.DataBase - mem.SRAMBase
		for i, w := range r.DataWords {
			mem.WriteWord(s.SRAM, off+uint32(i)*4, w)
		}
	}
	s.Start(id, p.Base)
	return nil
}

func diffRegs(got, want [32]uint32) []string {
	var diffs []string
	for r := 1; r <= progen.MaxOperandReg; r++ {
		if got[r] != want[r] {
			diffs = append(diffs, fmt.Sprintf("r%d = %08x, want %08x", r, got[r], want[r]))
		}
	}
	return diffs
}

func diffScratch(got, want []uint32) []string {
	var diffs []string
	for i := range want {
		if got[i] != want[i] {
			diffs = append(diffs, fmt.Sprintf("scratch[%d] = %08x, want %08x", i, got[i], want[i]))
		}
	}
	return diffs
}

// renderDiffs compresses a diff list into one line (first few entries).
func renderDiffs(diffs []string) string {
	if len(diffs) == 0 {
		return ""
	}
	const max = 4
	if len(diffs) > max {
		diffs = append(diffs[:max:max], fmt.Sprintf("... %d more", len(diffs)-max))
	}
	return strings.Join(diffs, "; ")
}
