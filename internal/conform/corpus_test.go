package conform

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/coverage"
)

// TestSeedCorpusReplays is the regression gate over testdata/corpus: every
// checked-in recipe must rebuild and replay cleanly through the program
// scenarios, and the minimized decoder-bug repros must keep catching the
// injected bug they were shrunk against. New minimized repros land here as
// new files; the table is the directory.
func TestSeedCorpusReplays(t *testing.T) {
	dir := filepath.Join("testdata", "corpus")
	progs, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	names, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(progs) == 0 {
		t.Fatal("seed corpus is empty")
	}

	clean, err := Lookup("uncached")
	if err != nil {
		t.Fatal(err)
	}
	buggy, err := NewMutated("uncached", DecoderBugArithShift)
	if err != nil {
		t.Fatal(err)
	}

	for i, p := range progs {
		p := p
		name := filepath.Base(names[i])
		t.Run(name, func(t *testing.T) {
			// On the clean tree every entry must pass: these are regression
			// seeds, so any mismatch here is a real engine divergence.
			cov := new(coverage.Map)
			if m := clean.CheckProgram(p, cov); m != nil {
				t.Fatalf("clean replay diverged: %v", m)
			}
			if strings.HasPrefix(name, "interrupt-") {
				// Interrupt frontier seeds must stay what they were kept
				// for: handler-carrying programs whose plan actually takes
				// interrupts on the pipeline.
				if !p.Cfg.Interrupts.Enabled() {
					t.Fatal("interrupt seed lost its plan")
				}
				bits := cov.Bits()
				if !bits.Has(coverage.FeatInterrupt) || !bits.Has(coverage.FeatIntReti) {
					t.Error("interrupt seed no longer takes interrupts on replay")
				}
			}
			if !strings.HasPrefix(name, "decoder-bug-") {
				return
			}
			// A minimized repro must stay a repro: small, and still able to
			// expose the bug it was shrunk against.
			if n := p.NumInsts(); n > 20 {
				t.Errorf("minimized repro grew to %d instructions", n)
			}
			if m := buggy.CheckProgram(p, nil); m == nil {
				t.Error("minimized repro no longer catches the injected decoder bug")
			}
		})
	}
}
