package conform

import (
	"testing"

	"repro/internal/core"
	"repro/internal/coverage"
	"repro/internal/fault"
	"repro/internal/soc"
)

// TestMultifaultSteeringReachesCoverage pins the steering pass at a fixed
// environment: the instrumented candidate runs must light pipeline
// coverage, the greedy pick must keep a non-trivial diverse site set, and
// the resulting pair universe must be the full k*(k-1)/2 enumeration.
// A steering pass that silently observed nothing (coverage detached, map
// never folded) would pick zero sites and make the scenario vacuous —
// exactly what this test exists to catch.
func TestMultifaultSteeringReachesCoverage(t *testing.T) {
	env, err := NewCampaignEnv("forwarding", 0, 2, soc.CodeLow, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	replayCfg, budget, err := env.record()
	if err != nil {
		t.Fatal(err)
	}
	sites := fault.ForwardingLogic(fault.ListOptions{DataBits: 32, BitStep: 4})
	fault.SortSites(sites)
	if len(sites) > maxSteerCandidates {
		sites = fault.Sample(sites, (len(sites)+maxSteerCandidates-1)/maxSteerCandidates)
	}
	ar, err := core.NewArena(replayCfg, 0, env.Jobs[0], budget, core.ArenaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	picked, union := steerSites(ar, sites, steeredSites)
	if len(picked) < 2 {
		t.Fatalf("steering kept %d sites, want >= 2 (of %d candidates)", len(picked), len(sites))
	}
	if len(picked) > steeredSites {
		t.Fatalf("steering kept %d sites, cap is %d", len(picked), steeredSites)
	}
	if !union.Has(coverage.FeatIssue1) {
		t.Error("steered union never lit FeatIssue1: candidate runs collected no pipeline coverage")
	}
	if union.Count() == 0 {
		t.Fatal("steered union is empty")
	}
	groups := fault.PairGroups(picked)
	if want := len(picked) * (len(picked) - 1) / 2; len(groups) != want {
		t.Fatalf("pair universe has %d groups, want %d", len(groups), want)
	}
}

// TestMultifaultScenarioSweep runs the registered scenario over a few
// pinned seeds: both arena modes must agree on every steered pair universe
// (and the scenario must be listed — Lookup is how CI matrices reach it).
func TestMultifaultScenarioSweep(t *testing.T) {
	sc, err := Lookup("multifault")
	if err != nil {
		t.Fatal(err)
	}
	if sc.Guidable() {
		t.Fatal("multifault registered as guidable; it runs no generated programs")
	}
	for seed := int64(1); seed <= 3; seed++ {
		if m := sc.Run(seed); m != nil {
			t.Fatalf("seed %d: %s", seed, m)
		}
	}
}
