package conform

import (
	"testing"
	"time"

	"repro/internal/coverage"
	"repro/internal/progen"
)

// TestGuidedReachesStrategyCoverage is the acceptance bar of the strategy
// half of the tentpole: at a fixed seed and budget, the guided loop on the
// strategies scenario must actually wrap programs with the cache and TCM
// strategies — lighting the chunk-boundary cold-refill feature (a CINV
// followed by the refill miss, on both cache roles) and the TCM copy-loop
// states (code staging, DTCM traffic, ITCM fetch). Deterministic, so a
// pin, in the same pattern as TestGuidedReachesInterruptCoverage.
func TestGuidedReachesStrategyCoverage(t *testing.T) {
	sc, err := Lookup("strategies")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Fuzz(1, 25, time.Time{}, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil {
		t.Fatalf("unexpected mismatch: %v", res.Mismatch)
	}
	feats := map[string]coverage.Feature{
		"icache-cold-refill": coverage.CacheFeat(coverage.RoleICache, coverage.CacheColdMiss),
		"dcache-cold-refill": coverage.CacheFeat(coverage.RoleDCache, coverage.CacheColdMiss),
		"icache-invalidate":  coverage.CacheFeat(coverage.RoleICache, coverage.CacheInvalidate),
		"tcm-fetch":          coverage.FeatTCMFetch,
		"tcm-stage-code":     coverage.FeatTCMStageCode,
		"dtcm-read":          coverage.FeatTCMDataRead,
		"dtcm-write":         coverage.FeatTCMDataWrite,
	}
	for name, f := range feats {
		if !res.Bits.Has(f) {
			t.Errorf("strategy feature %s unreached by the guided loop", name)
		}
	}
}

// TestGuidedReachesSchedCoverage pins the scheduler half: the guided loop
// must boot multi-core partition plans whose barrier protocol publishes,
// spins on and releases the uncached completion flags.
func TestGuidedReachesSchedCoverage(t *testing.T) {
	sc, err := Lookup("sched")
	if err != nil {
		t.Fatal(err)
	}
	res, err := sc.Fuzz(1, 20, time.Time{}, FuzzOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mismatch != nil {
		t.Fatalf("unexpected mismatch: %v", res.Mismatch)
	}
	feats := map[string]coverage.Feature{
		"barrier-publish": coverage.FeatBarrierPublish,
		"barrier-spin":    coverage.FeatBarrierSpin,
		"barrier-release": coverage.FeatBarrierRelease,
	}
	for name, f := range feats {
		if !res.Bits.Has(f) {
			t.Errorf("scheduler feature %s unreached by the guided loop", name)
		}
	}
}

// TestStrategySkipVerdicts: a program whose scratch window exceeds the
// data cache must be rejected by the cache strategy's Validate — and that
// rejection must surface as an explicit skip verdict, not a silent pass
// (the remaining wrappings still compare against the ISS reference).
func TestStrategySkipVerdicts(t *testing.T) {
	sc, err := Lookup("strategies")
	if err != nil {
		t.Fatal(err)
	}
	// 8 kB scratch: fits the DTCM (16 kB) but not the 4 kB data cache.
	p := progen.Generate(5, progen.Config{ScratchSize: 8192})
	if m := sc.CheckProgram(p, nil); m != nil {
		t.Fatalf("oversized-scratch program diverged instead of skipping: %v", m)
	}
	if n := sc.Skips(); n != 1 {
		t.Errorf("skip verdicts = %d, want 1 (cache wrapping rejected)", n)
	}
}

// TestSchedMismatchShrinksBothAxes drives the scheduler minimizer with a
// synthetic failure predicate: the check "fails" while the library list
// still contains alu, whatever the program looks like. Minimization must
// then drop every droppable unit AND every other library task, proving
// both axes shrink and roll back correctly.
func TestSchedMismatchShrinksBothAxes(t *testing.T) {
	p := progen.Generate(3, progen.Config{})
	m := &Mismatch{
		Scenario: "sched",
		Seed:     3,
		Detail:   "synthetic",
		Program:  p,
		LibTasks: []string{"shift", "alu", "branch"},
		recheckSched: func(q *progen.Program, libs []string) string {
			for _, l := range libs {
				if l == "alu" {
					return "still failing"
				}
			}
			return ""
		},
	}
	before := len(p.Units)
	m.Minimize()
	if len(m.LibTasks) != 1 || m.LibTasks[0] != "alu" {
		t.Errorf("task axis minimized to %v, want [alu]", m.LibTasks)
	}
	droppable := 0
	for _, u := range m.Program.Units {
		if !u.Pinned {
			droppable++
		}
	}
	if droppable != 0 {
		t.Errorf("unit axis left %d droppable units (program had %d)", droppable, before)
	}
	if m.Detail != "still failing" {
		t.Errorf("detail not updated by minimization: %q", m.Detail)
	}
}

// TestStrategiesAndSchedRefuseMutation: the strategy and scheduler
// scenarios re-emit the program through routine wrappers, so the
// injected-decoder-bug self-test cannot apply to them.
func TestStrategiesAndSchedRefuseMutation(t *testing.T) {
	for _, name := range []string{"strategies", "sched"} {
		if _, err := NewMutated(name, DecoderBugArithShift); err == nil {
			t.Errorf("NewMutated(%q) accepted a routine-based scenario", name)
		}
	}
}
