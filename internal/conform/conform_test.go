package conform

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/progen"
)

// TestScenariosPass: a quick sweep of every scenario — the deep sweeps run
// in internal/iss (differential) and internal/experiments (engines), and
// cmd/conform runs the wide ones.
func TestScenariosPass(t *testing.T) {
	for _, sc := range Scenarios() {
		for seed := int64(1); seed <= 4; seed++ {
			if m := sc.Run(seed); m != nil {
				t.Errorf("%v", m)
			}
		}
	}
}

// TestSelfTestCatchesDecoderBug injects the canonical decoder bug and
// requires the harness to catch it and minimize the repro to at most 20
// instructions — the acceptance bar for the shrinking machinery.
func TestSelfTestCatchesDecoderBug(t *testing.T) {
	// Scenarios that cannot carry the mutation must refuse it rather than
	// silently run clean code on both sides.
	if _, err := NewMutated("arena", DecoderBugArithShift); err == nil {
		t.Error("arena scenario accepted a mutation it cannot apply")
	}
	if _, err := NewMutated("campaign", DecoderBugArithShift); err == nil {
		t.Error("campaign scenario accepted a mutation it cannot apply")
	}

	sc, err := NewMutated("uncached", DecoderBugArithShift)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 20; seed++ {
		m := sc.Run(seed)
		if m == nil {
			continue
		}
		if m.Program == nil {
			t.Fatalf("mismatch carries no program: %v", m)
		}
		before := m.Program.NumInsts()
		m.Minimize()
		after := m.Program.NumInsts()
		t.Logf("seed %d: minimized %d -> %d instructions: %s", seed, before, after, m.Detail)
		if after > 20 {
			t.Errorf("repro too large: %d instructions", after)
		}
		if after >= before {
			t.Errorf("minimization made no progress (%d -> %d)", before, after)
		}
		if m.Detail == "" {
			t.Error("minimized mismatch lost its detail")
		}
		if !strings.Contains(m.Repro(), "-scenario uncached") || !strings.Contains(m.Repro(), "-seed") {
			t.Errorf("repro line malformed: %s", m.Repro())
		}
		if !strings.Contains(m.Disassembly(), "halt") {
			t.Errorf("disassembly missing: %s", m.Disassembly())
		}
		// The minimized program must still fail and still contain the
		// arithmetic shift the bug corrupts.
		if d := m.recheckProg(m.Program); d == "" {
			t.Error("minimized program no longer fails")
		}
		dis := m.Disassembly()
		if !strings.Contains(dis, "sra") {
			t.Errorf("minimized program lost the faulty op:\n%s", dis)
		}
		return
	}
	t.Fatal("injected decoder bug not caught in 20 seeds")
}

// TestInterruptScenarioSweep: a deeper fixed-seed sweep of the interrupts
// scenario than TestScenariosPass gives every scenario — handler-carrying
// programs are where the two models' recognition points genuinely differ,
// so this is the differential surface most worth pinning.
func TestInterruptScenarioSweep(t *testing.T) {
	sc, err := Lookup("interrupts")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 40; seed++ {
		if m := sc.Run(seed); m != nil {
			t.Fatalf("%v", m)
		}
	}
}

// TestDuplicatedPreludeSurvivesInterrupts pins the class of the first
// real bug the interrupt fuzzer caught: mutation can duplicate the
// handler prelude into interrupt-enabled code, so a take can land
// mid-prelude (e.g. between `ori r22,...` and `csrw ivec, r22`). The
// handler must not clobber any register such code keeps live — with the
// original handler using the prelude's own scratch register, the resumed
// csrw installed a garbage vector and the models diverged. Here every
// seed's prelude is re-duplicated right before the drain, where
// interrupts are live.
func TestDuplicatedPreludeSurvivesInterrupts(t *testing.T) {
	sc, err := Lookup("interrupts")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 25; seed++ {
		cfg := sc.spec.cfgFor(seed)
		n := len(progen.Generate(seed, cfg).Units)
		// Duplicate the prelude (unit 1, after the pinned base) to the
		// position just before the drain+spill tail.
		q, err := progen.FromRecipe(progen.Recipe{Seed: seed, Cfg: cfg,
			Edits: []progen.Edit{{Op: progen.EditDup, I: 1, J: n - 17}}})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m := sc.CheckProgram(q, nil); m != nil {
			t.Fatalf("seed %d: duplicated prelude diverged: %v", seed, m)
		}
	}
}

// TestInterruptSelfTestShrinksBothAxes: the injected decoder bug must be
// caught on handler-carrying programs too, and minimization must shrink
// along the plan axis as well as the unit axis — the repro keeps its
// handler machinery (plans cannot dissolve) but drops needless events.
func TestInterruptSelfTestShrinksBothAxes(t *testing.T) {
	sc, err := NewMutated("interrupts", DecoderBugArithShift)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 40; seed++ {
		m := sc.Run(seed)
		if m == nil {
			continue
		}
		planBefore := len(m.Program.Cfg.Interrupts.Events)
		unitsBefore := len(m.Program.Units)
		m.Minimize()
		if n := m.Program.NumInsts(); n > 40 {
			t.Errorf("minimized interrupt repro too large: %d instructions", n)
		}
		if len(m.Program.Units) >= unitsBefore && len(m.Program.Cfg.Interrupts.Events) >= planBefore {
			t.Error("minimization shrank neither units nor plan")
		}
		if !m.Program.Cfg.Interrupts.Enabled() {
			t.Error("minimization dissolved the interrupt plan")
		}
		if d := m.recheckProg(m.Program); d == "" {
			t.Error("minimized program no longer fails")
		}
		t.Logf("seed %d: units %d->%d, plan events %d->%d: %s", seed,
			unitsBefore, len(m.Program.Units),
			planBefore, len(m.Program.Cfg.Interrupts.Events), m.Detail)
		return
	}
	t.Fatal("injected decoder bug not caught on the interrupts scenario in 40 seeds")
}

// TestMutate: the mutation rewrites exactly the targeted ops and leaves
// every other word bit-identical.
func TestMutate(t *testing.T) {
	p := genFor(3) // seed 3 is the selftest catch; contains SRA(V)
	prog, err := p.Assemble(codeBase)
	if err != nil {
		t.Fatal(err)
	}
	mut := mutate(prog, DecoderBugArithShift)
	changed := 0
	for i := range prog.Words {
		orig, _ := isa.Decode(prog.Words[i])
		got, _ := isa.Decode(mut.Words[i])
		switch orig.Op {
		case isa.OpSRA:
			if got.Op != isa.OpSRL {
				t.Errorf("word %d: SRA mutated to %v", i, got.Op)
			}
			changed++
		case isa.OpSRAV:
			if got.Op != isa.OpSRLV {
				t.Errorf("word %d: SRAV mutated to %v", i, got.Op)
			}
			changed++
		default:
			if mut.Words[i] != prog.Words[i] {
				t.Errorf("word %d (%v) changed by mutation", i, orig.Op)
			}
		}
	}
	if changed == 0 {
		t.Error("mutation touched nothing (seed choice no longer contains arithmetic shifts)")
	}
}

// TestMinimizeSites: the greedy site minimizer converges to exactly the
// sites a synthetic predicate needs.
func TestMinimizeSites(t *testing.T) {
	sites := fault.ForwardingLogic(fault.ListOptions{DataBits: 32, BitStep: 4})
	fault.SortSites(sites)
	sites = sites[:10]
	culprit := sites[7]
	fails := func(sub []fault.Site) string {
		for _, s := range sub {
			if s == culprit {
				return "still failing"
			}
		}
		return ""
	}
	var lastDetail string
	got := minimizeSites(sites, fails, func(d string) { lastDetail = d })
	if len(got) != 1 || got[0] != culprit {
		t.Fatalf("minimized to %v, want just %v", got, culprit)
	}
	if lastDetail != "still failing" {
		t.Errorf("detail not updated: %q", lastDetail)
	}
}
