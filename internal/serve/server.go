package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// Config configures a Server.
type Config struct {
	// StoreDir is the content-addressed store directory (required).
	StoreDir string
	// ShardSize is the shard width in sites; <= 0 means DefaultShardSize.
	ShardSize int
	// Lease is the shard lease duration; <= 0 means DefaultLease. A leased
	// shard whose worker stays silent past the lease returns to the pending
	// pool and is re-leased with the already-settled sites excluded.
	Lease time.Duration
	// Registry receives the pool-level metrics and backs the server's
	// /metrics endpoint; nil means a fresh private registry.
	Registry *telemetry.Registry
}

// DefaultShardSize is the default shard width in sites.
const DefaultShardSize = 64

// DefaultLease is the default shard lease duration.
const DefaultLease = time.Minute

// poolMetrics is the server's resolved pool-level metric handles.
type poolMetrics struct {
	jobsSubmitted   *telemetry.Counter
	jobsAttached    *telemetry.Counter
	jobsCompleted   *telemetry.Counter
	jobsFullyCached *telemetry.Counter
	jobsFailed      *telemetry.Counter
	jobsRunning     *telemetry.Gauge
	shardsLeased    *telemetry.Counter
	shardsExpired   *telemetry.Counter
	shardsCompleted *telemetry.Counter
	shardsCached    *telemetry.Counter
	verdicts        *telemetry.Counter
	sitesFromCache  *telemetry.Counter
	sitesSimulated  *telemetry.Counter
	buildNs         *telemetry.Histogram
}

// newPoolMetrics resolves the pool metric names on reg.
func newPoolMetrics(reg *telemetry.Registry) poolMetrics {
	return poolMetrics{
		jobsSubmitted:   reg.Counter("serve_jobs_submitted_total"),
		jobsAttached:    reg.Counter("serve_jobs_attached_total"),
		jobsCompleted:   reg.Counter("serve_jobs_completed_total"),
		jobsFullyCached: reg.Counter("serve_jobs_fully_cached_total"),
		jobsFailed:      reg.Counter("serve_jobs_failed_total"),
		jobsRunning:     reg.Gauge("serve_jobs_running"),
		shardsLeased:    reg.Counter("serve_shards_leased_total"),
		shardsExpired:   reg.Counter("serve_shards_expired_total"),
		shardsCompleted: reg.Counter("serve_shards_completed_total"),
		shardsCached:    reg.Counter("serve_shards_cached_total"),
		verdicts:        reg.Counter("serve_verdicts_received_total"),
		sitesFromCache:  reg.Counter("serve_sites_from_cache_total"),
		sitesSimulated:  reg.Counter("serve_sites_simulated_total"),
		buildNs:         reg.Histogram("serve_campaign_build_ns"),
	}
}

// Server is the campaign job server: it accepts Spec submissions, folds the
// content-addressed store's verdicts in as cache hits, shards the remainder
// across leasing workers, and assembles reports byte-identical to a local
// faultsim run. All job state is guarded by one mutex; simulation happens
// only in workers, so the critical sections are bookkeeping-sized.
type Server struct {
	cfg   Config
	store *Store
	reg   *telemetry.Registry
	met   poolMetrics
	mux   *http.ServeMux

	mu    sync.Mutex
	seq   int
	jobs  map[string]*job // by job ID
	order []*job          // submission order (lease scan, listing)
	byKey map[string]*job // running job per campaign key (dedup/attach)
}

// New builds a Server over cfg, opening (creating if needed) the store
// directory.
func New(cfg Config) (*Server, error) {
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = DefaultShardSize
	}
	if cfg.Lease <= 0 {
		cfg.Lease = DefaultLease
	}
	store, err := OpenStore(cfg.StoreDir)
	if err != nil {
		return nil, err
	}
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:   cfg,
		store: store,
		reg:   reg,
		met:   newPoolMetrics(reg),
		jobs:  map[string]*job{},
		byKey: map[string]*job{},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.handleReport)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/metrics", s.handleJobMetrics)
	mux.HandleFunc("POST /v1/lease", s.handleLease)
	mux.HandleFunc("POST /v1/jobs/{id}/shards/{shard}/verdicts", s.handleVerdicts)
	mux.HandleFunc("POST /v1/jobs/{id}/shards/{shard}/complete", s.handleComplete)
	// Everything else is the standard telemetry surface: pool /metrics and
	// /debug/pprof — the same mux every campaign binary mounts.
	mux.Handle("/", telemetry.Handler(reg))
	s.mux = mux
	return s, nil
}

// ServeHTTP serves the campaign API plus the pool telemetry surface.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close releases the journals of still-running jobs (they stay resumable
// in the store) and ends their event streams.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, j := range s.order {
		if j.state != jobRunning {
			continue
		}
		if err := j.journal.Close(); err != nil && first == nil {
			first = err
		}
		j.events.Close()
	}
	return first
}

// httpError writes a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeJSON writes v as a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// handleSubmit is POST /v1/jobs: body is a Spec; the reply is the job's
// status document (201 for a new job, 200 when attaching to the running
// job of the same campaign). With ?wait=1 the reply is deferred until the
// job leaves the running state.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad spec: %v", err)
		return
	}
	// Build outside the lock: the golden traffic-recording run is
	// milliseconds of simulation, and it never touches job state.
	t0 := time.Now()
	c, err := spec.Build()
	s.met.buildNs.Observe(time.Since(t0).Nanoseconds())
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	s.met.jobsSubmitted.Inc()
	key := c.Header.Key()
	j, attached := s.byKey[key]
	status := http.StatusOK
	if attached {
		s.met.jobsAttached.Inc()
	} else {
		var err error
		j, err = s.newJob(c, key)
		if err != nil {
			s.mu.Unlock()
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		status = http.StatusCreated
	}
	done := j.done
	s.mu.Unlock()

	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-done:
		case <-r.Context().Done():
			return
		}
	}
	s.mu.Lock()
	st := j.status(time.Now())
	s.mu.Unlock()
	writeJSON(w, status, st)
}

// newJob creates a job for the built campaign c, folding the store's
// journaled verdicts in as cache hits; a fully settled store completes the
// job before it ever reaches a worker. Caller holds the server mutex.
func (s *Server) newJob(c *Campaign, key string) (*job, error) {
	journal, err := s.store.Open(c.Header)
	if err != nil {
		return nil, err
	}
	s.seq++
	reg := telemetry.NewRegistry()
	j := &job{
		id:      fmt.Sprintf("j%03d-%s", s.seq, key[:8]),
		key:     key,
		c:       c,
		journal: journal,
		settled: make([]bool, len(c.Sites)),
		results: make([]fault.SiteResult, len(c.Sites)),
		events:  telemetry.NewEventBuffer(),
		reg:     reg,
		met:     newJobMetrics(reg),
		created: time.Now(),
		done:    make(chan struct{}),
	}
	for _, r := range fault.ShardRanges(len(c.Sites), s.cfg.ShardSize) {
		j.shards = append(j.shards, &shard{r: r})
	}
	j.met.sites.Set(int64(len(c.Sites)))
	j.met.shards.Set(int64(len(j.shards)))
	j.events.Emit(telemetry.Event{Kind: telemetry.EventStart, Sites: len(c.Sites)})

	if sig, ok, bound := journal.Golden(); bound {
		j.goldenSig, j.goldenOK, j.goldenBound = sig, ok, true
	}
	for _, i := range journal.SettledIndices() {
		res, _, _, _ := journal.Settled(i)
		res.Site = c.Sites[i]
		j.settle(i, res, true)
	}
	s.met.sitesFromCache.Add(int64(j.fromCache))
	for _, sh := range j.shards {
		if len(journal.Unsettled(sh.r.Lo, sh.r.Hi)) == 0 {
			sh.state = shardDone
			s.met.shardsCached.Inc()
		}
	}
	j.met.shardsDone.Set(int64(j.shardsDone()))

	s.jobs[j.id] = j
	s.order = append(s.order, j)
	s.byKey[key] = j
	s.met.jobsRunning.Set(int64(len(s.byKey)))

	if j.nSettled == len(c.Sites) {
		// Full cache hit: every site is already journaled, so the job
		// completes at submission without a single simulated run.
		if !j.goldenBound {
			s.failJob(j, "store journal settles every site but binds no golden")
		} else {
			s.finishJob(j)
		}
	}
	return j, nil
}

// finishJob renders the report and moves j to done. Caller holds the
// server mutex; j is running with every site settled.
func (s *Server) finishJob(j *job) {
	rep := j.assembleReport()
	blob, err := MarshalReport(rep)
	if err != nil {
		s.failJob(j, "rendering report: %v", err)
		return
	}
	j.report = blob
	j.state = jobDone
	j.finished = time.Now()
	j.events.Emit(telemetry.Event{
		Kind:          telemetry.EventFinish,
		Sites:         len(j.c.Sites),
		Settled:       int64(j.nSettled),
		DetectedTotal: int64(j.detected),
		ElapsedNs:     j.finished.Sub(j.created).Nanoseconds(),
	})
	j.events.Close()
	_ = j.journal.Close()
	s.retireJob(j)
	s.met.jobsCompleted.Inc()
	if j.simulated == 0 {
		s.met.jobsFullyCached.Inc()
	}
}

// failJob moves j to failed with the given reason. Caller holds the
// server mutex.
func (s *Server) failJob(j *job, format string, args ...any) {
	j.state = jobFailed
	j.err = fmt.Sprintf(format, args...)
	j.finished = time.Now()
	j.events.Close()
	_ = j.journal.Close()
	s.retireJob(j)
	s.met.jobsFailed.Inc()
}

// retireJob drops j from the running-by-key table and closes its done
// channel. Caller holds the server mutex.
func (s *Server) retireJob(j *job) {
	if s.byKey[j.key] == j {
		delete(s.byKey, j.key)
	}
	s.met.jobsRunning.Set(int64(len(s.byKey)))
	close(j.done)
}

// handleList is GET /v1/jobs: every job's status, in submission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	now := time.Now()
	out := make([]JobStatus, 0, len(s.order))
	for _, j := range s.order {
		out = append(out, j.status(now))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// findJob resolves the {id} path value under the server mutex, writing a
// 404 and returning nil when the job does not exist.
func (s *Server) findJob(w http.ResponseWriter, r *http.Request) *job {
	j := s.jobs[r.PathValue("id")]
	if j == nil {
		httpError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
	}
	return j
}

// handleStatus is GET /v1/jobs/{id}; with ?wait=1 the reply is deferred
// until the job leaves the running state.
func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.findJob(w, r)
	if j == nil {
		s.mu.Unlock()
		return
	}
	done := j.done
	s.mu.Unlock()
	if r.URL.Query().Get("wait") == "1" {
		select {
		case <-done:
		case <-r.Context().Done():
			return
		}
	}
	s.mu.Lock()
	st := j.status(time.Now())
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// handleReport is GET /v1/jobs/{id}/report: the assembled campaign report,
// byte-identical to `faultsim -report` on the same spec. Running jobs
// answer 409 (poll status or use ?wait=1 on submission).
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.findJob(w, r)
	if j == nil {
		s.mu.Unlock()
		return
	}
	state, errMsg, blob := j.state, j.err, j.report
	s.mu.Unlock()
	switch state {
	case jobRunning:
		httpError(w, http.StatusConflict, "job still running")
	case jobFailed:
		httpError(w, http.StatusConflict, "job failed: %s", errMsg)
	default:
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(blob)
	}
}

// handleEvents is GET /v1/jobs/{id}/events: the job's event stream as
// NDJSON — full replay from the first event, then live follow until the
// job finishes or the client disconnects. The lines decode with
// telemetry.DecodeEvents, the same strict schema as faultsim -events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.findJob(w, r)
	if j == nil {
		s.mu.Unlock()
		return
	}
	buf := j.events
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	from := 0
	for {
		batch, open := buf.Next(from, r.Context().Done())
		for _, e := range batch {
			if err := enc.Encode(e); err != nil {
				return
			}
		}
		from += len(batch)
		if flusher != nil && len(batch) > 0 {
			flusher.Flush()
		}
		if !open {
			return
		}
		if len(batch) == 0 {
			// Next returned without progress and the stream is still open:
			// the client context was canceled.
			select {
			case <-r.Context().Done():
				return
			default:
			}
		}
	}
}

// handleJobMetrics is GET /v1/jobs/{id}/metrics: the job-scoped registry
// in the Prometheus text format (the pool registry lives at /metrics).
func (s *Server) handleJobMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	j := s.findJob(w, r)
	if j == nil {
		s.mu.Unlock()
		return
	}
	reg := j.reg
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = reg.WriteProm(w)
}

// handleLease is POST /v1/lease: grant the oldest pending shard (expiring
// stale leases on the way) to the requesting worker, or 204 when no work
// is pending.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad lease request: %v", err)
		return
	}
	now := time.Now()
	s.mu.Lock()
	for _, j := range s.order {
		if j.state != jobRunning {
			continue
		}
		for _, sh := range j.shards {
			if sh.state == shardLeased && now.After(sh.deadline) {
				sh.state = shardPending
				sh.worker = ""
				s.met.shardsExpired.Inc()
			}
			if sh.state != shardPending {
				continue
			}
			sh.state = shardLeased
			sh.worker = req.Worker
			sh.deadline = now.Add(s.cfg.Lease)
			s.met.shardsLeased.Inc()
			var settled []int
			for i := sh.r.Lo; i < sh.r.Hi; i++ {
				if j.settled[i] {
					settled = append(settled, i)
				}
			}
			lease := Lease{
				Job:     j.id,
				Spec:    j.c.Spec,
				Shard:   sh.r,
				Settled: settled,
				Sites:   len(j.c.Sites),
				LeaseNs: s.cfg.Lease.Nanoseconds(),
			}
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, lease)
			return
		}
	}
	s.mu.Unlock()
	w.WriteHeader(http.StatusNoContent)
}

// parseShard resolves the {shard} path value ("lo-hi") against j's shard
// table. Caller holds the server mutex.
func (j *job) parseShard(name string) *shard {
	lo, hi, ok := splitRange(name)
	if !ok {
		return nil
	}
	for _, sh := range j.shards {
		if sh.r.Lo == lo && sh.r.Hi == hi {
			return sh
		}
	}
	return nil
}

// splitRange parses "lo-hi".
func splitRange(s string) (lo, hi int, ok bool) {
	dash := strings.IndexByte(s, '-')
	if dash < 0 {
		return 0, 0, false
	}
	lo, err1 := strconv.Atoi(s[:dash])
	hi, err2 := strconv.Atoi(s[dash+1:])
	return lo, hi, err1 == nil && err2 == nil
}

// handleVerdicts is POST /v1/jobs/{id}/shards/{shard}/verdicts: fold a
// batch of freshly settled verdicts into the job. The batch's golden is
// reconciled first (first batch binds it into the journal; later batches
// must reproduce it), every verdict is journaled before it is counted,
// duplicates of settled sites are ignored, and posting renews the
// worker's lease. A shard whose last site settles completes implicitly,
// so a worker killed between its final verdict and its complete call
// loses nothing.
func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	var batch VerdictBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		httpError(w, http.StatusBadRequest, "bad verdict batch: %v", err)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	if j.state == jobDone {
		// Late duplicate after completion (another leaseholder finished the
		// shard): fine, nothing to fold.
		writeJSON(w, http.StatusOK, j.status(time.Now()))
		return
	}
	if j.state == jobFailed {
		httpError(w, http.StatusConflict, "job failed: %s", j.err)
		return
	}
	sh := j.parseShard(r.PathValue("shard"))
	if sh == nil {
		httpError(w, http.StatusNotFound, "job has no shard %q", r.PathValue("shard"))
		return
	}

	// Golden reconciliation, exactly like a resumed local campaign: the
	// first worker's golden is journaled; any later golden must reproduce
	// it, or the campaign's determinism contract is broken and the job
	// fails loudly rather than mixing verdicts from two environments.
	if !j.goldenBound {
		if err := j.journal.BindGolden(batch.Golden, batch.GoldenOK); err != nil {
			s.failJob(j, "binding golden: %v", err)
			httpError(w, http.StatusConflict, "%s", j.err)
			return
		}
		j.goldenSig, j.goldenOK, j.goldenBound = batch.Golden, batch.GoldenOK, true
	} else if batch.Golden != j.goldenSig || batch.GoldenOK != j.goldenOK {
		s.failJob(j, "worker %q golden %08x/%v does not reproduce the journaled %08x/%v",
			batch.Worker, batch.Golden, batch.GoldenOK, j.goldenSig, j.goldenOK)
		httpError(w, http.StatusConflict, "%s", j.err)
		return
	}

	for _, v := range batch.Verdicts {
		if v.I < sh.r.Lo || v.I >= sh.r.Hi {
			httpError(w, http.StatusBadRequest, "verdict %d outside shard %s", v.I, sh.r)
			return
		}
		if v.Detected != (v.Crashed || v.Sig != j.goldenSig) {
			httpError(w, http.StatusBadRequest,
				"verdict %d inconsistent: detected=%v with sig %08x, crashed=%v against golden %08x",
				v.I, v.Detected, v.Sig, v.Crashed, j.goldenSig)
			return
		}
		if j.settled[v.I] {
			continue
		}
		res := fault.SiteResult{
			Site:      j.c.Sites[v.I],
			Detected:  v.Detected,
			Signature: v.Sig,
			Crashed:   v.Crashed,
			Panicked:  v.Panicked,
		}
		if err := j.journal.Record(v.I, res, v.Msg, v.Stack); err != nil {
			s.failJob(j, "journaling verdict %d: %v", v.I, err)
			httpError(w, http.StatusInternalServerError, "%s", j.err)
			return
		}
		j.settle(v.I, res, false)
		s.met.verdicts.Inc()
		s.met.sitesSimulated.Inc()
	}

	if sh.state == shardLeased && sh.worker == batch.Worker {
		sh.deadline = time.Now().Add(s.cfg.Lease)
	}
	s.completeShard(j, sh)
	writeJSON(w, http.StatusOK, j.status(time.Now()))
}

// completeShard marks sh done if every one of its sites is settled, and
// finishes the job when it was the last shard. Caller holds the server
// mutex; j is running.
func (s *Server) completeShard(j *job, sh *shard) {
	if sh.state == shardDone {
		return
	}
	for i := sh.r.Lo; i < sh.r.Hi; i++ {
		if !j.settled[i] {
			return
		}
	}
	sh.state = shardDone
	sh.worker = ""
	s.met.shardsCompleted.Inc()
	j.met.shardsDone.Set(int64(j.shardsDone()))
	if j.nSettled == len(j.c.Sites) {
		s.finishJob(j)
	}
}

// handleComplete is POST /v1/jobs/{id}/shards/{shard}/complete: confirm a
// shard is fully settled. Shards complete implicitly when their last
// verdict lands, so this answers 200 for a done shard and 409 with the
// outstanding count otherwise — the worker's signal to keep simulating
// (or, after a lease expiry, that the next leaseholder will).
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.findJob(w, r)
	if j == nil {
		return
	}
	if j.state == jobDone {
		writeJSON(w, http.StatusOK, j.status(time.Now()))
		return
	}
	if j.state == jobFailed {
		httpError(w, http.StatusConflict, "job failed: %s", j.err)
		return
	}
	sh := j.parseShard(r.PathValue("shard"))
	if sh == nil {
		httpError(w, http.StatusNotFound, "job has no shard %q", r.PathValue("shard"))
		return
	}
	if sh.state != shardDone {
		n := 0
		for i := sh.r.Lo; i < sh.r.Hi; i++ {
			if !j.settled[i] {
				n++
			}
		}
		httpError(w, http.StatusConflict, "shard %s has %d unsettled sites", sh.r, n)
		return
	}
	writeJSON(w, http.StatusOK, j.status(time.Now()))
}
