package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/telemetry"
)

// Worker is a shard worker: it leases shards from a faultserve server,
// rebuilds each campaign deterministically from its Spec, simulates the
// unsettled sites on a local arena pool, and streams verdict batches back.
// Workers hold no durable state — all of it lives in the server's store —
// so killing one mid-shard costs at most the verdicts not yet posted.
type Worker struct {
	// Server is the base URL of the faultserve server (http://host:port).
	Server string
	// Name is the worker's self-chosen name, recorded on its leases.
	Name string
	// Workers is the local arena-pool size per shard; <= 0 uses GOMAXPROCS.
	Workers int
	// Poll is the idle re-poll interval when no work is pending; <= 0
	// means DefaultPoll.
	Poll time.Duration
	// Drain exits Run successfully on the first idle poll instead of
	// waiting for more work — the batch-mode switch CI uses.
	Drain bool
	// BatchSize flushes a verdict batch when it reaches this many
	// verdicts; <= 0 means DefaultBatchSize.
	BatchSize int
	// FlushInterval flushes a non-empty verdict batch at least this
	// often; <= 0 means DefaultFlushInterval.
	FlushInterval time.Duration
	// Client is the HTTP client; nil means http.DefaultClient.
	Client *http.Client
	// Telemetry, when non-nil, receives the worker-side metrics and is
	// shared with each shard campaign's engine metrics.
	Telemetry *telemetry.Registry

	// campaigns caches built campaigns by spec: consecutive shards of one
	// job rebuild nothing.
	campaigns map[Spec]*Campaign
}

// DefaultPoll is the default idle re-poll interval.
const DefaultPoll = 500 * time.Millisecond

// DefaultBatchSize is the default verdict-batch flush threshold.
const DefaultBatchSize = 64

// DefaultFlushInterval is the default verdict-batch flush interval.
const DefaultFlushInterval = 200 * time.Millisecond

// client returns the configured HTTP client.
func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return http.DefaultClient
}

// post sends v as JSON to path and decodes the reply into out (when
// non-nil). Non-2xx replies surface the server's error body.
func (w *Worker) post(ctx context.Context, path string, v, out any) (int, error) {
	body, err := json.Marshal(v)
	if err != nil {
		return 0, fmt.Errorf("serve: worker: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Server+path, bytes.NewReader(body))
	if err != nil {
		return 0, fmt.Errorf("serve: worker: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, fmt.Errorf("serve: worker: %s: %w", path, err)
	}
	defer resp.Body.Close()
	blob, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 300 {
		return resp.StatusCode, fmt.Errorf("serve: worker: %s: %s: %s", path, resp.Status, bytes.TrimSpace(blob))
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.Unmarshal(blob, out); err != nil {
			return resp.StatusCode, fmt.Errorf("serve: worker: %s: decoding reply: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}

// Run is the worker loop: lease, simulate, stream, complete, repeat. It
// returns when ctx is canceled, on the first idle poll in Drain mode, or
// with the first hard error (a failed shard does not kill the loop — the
// lease expires and another worker retries — but an unreachable server
// does).
func (w *Worker) Run(ctx context.Context) error {
	if w.Poll <= 0 {
		w.Poll = DefaultPoll
	}
	leases := w.Telemetry.Counter("worker_leases_total")
	shardErrs := w.Telemetry.Counter("worker_shard_errors_total")
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		var lease Lease
		status, err := w.post(ctx, "/v1/lease", LeaseRequest{Worker: w.Name}, &lease)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		if status == http.StatusNoContent {
			if w.Drain {
				return nil
			}
			select {
			case <-ctx.Done():
				return nil
			case <-time.After(w.Poll):
			}
			continue
		}
		leases.Inc()
		if err := w.RunShard(ctx, lease); err != nil {
			// The shard's lease will expire and be re-offered; losing one
			// shard attempt must not kill the worker. A dead server kills
			// the loop via the next lease call instead.
			shardErrs.Inc()
			if ctx.Err() != nil {
				return nil
			}
		}
	}
}

// campaign returns the built campaign for spec, building and caching it on
// first use.
func (w *Worker) campaign(spec Spec) (*Campaign, error) {
	if c, ok := w.campaigns[spec]; ok {
		return c, nil
	}
	c, err := spec.Build()
	if err != nil {
		return nil, err
	}
	if w.campaigns == nil {
		w.campaigns = map[Spec]*Campaign{}
	}
	w.campaigns[spec] = c
	return c, nil
}

// verdictPoster batches settled verdicts and posts them on a size/interval
// policy from its own goroutine, so simulation never blocks on HTTP.
type verdictPoster struct {
	w      *Worker
	ctx    context.Context
	path   string
	worker string

	mu       sync.Mutex
	buf      []Verdict
	golden   uint32
	goldenOK bool
	err      error

	wake chan struct{}
	quit chan struct{}
	done chan struct{}
}

// add queues one verdict and wakes the poster when the batch threshold is
// reached. Safe for concurrent use from arena workers.
func (p *verdictPoster) add(v Verdict, batchSize int) {
	p.mu.Lock()
	p.buf = append(p.buf, v)
	full := len(p.buf) >= batchSize
	p.mu.Unlock()
	if full {
		select {
		case p.wake <- struct{}{}:
		default:
		}
	}
}

// flush posts the queued verdicts, if any. Post errors are sticky.
func (p *verdictPoster) flush() {
	p.mu.Lock()
	batch := p.buf
	p.buf = nil
	golden, goldenOK := p.golden, p.goldenOK
	p.mu.Unlock()
	if len(batch) == 0 {
		return
	}
	_, err := p.w.post(p.ctx, p.path, VerdictBatch{
		Worker:   p.worker,
		Golden:   golden,
		GoldenOK: goldenOK,
		Verdicts: batch,
	}, nil)
	if err != nil {
		p.mu.Lock()
		if p.err == nil {
			p.err = err
		}
		p.mu.Unlock()
	}
}

// loop is the poster goroutine: flush on wake (batch full), on the flush
// interval, and once more on quit.
func (p *verdictPoster) loop(interval time.Duration) {
	defer close(p.done)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-p.quit:
			p.flush()
			return
		case <-p.wake:
			p.flush()
		case <-tick.C:
			p.flush()
		}
	}
}

// RunShard simulates one leased shard: rebuild the campaign from the
// lease's spec, cross-check the universe size, run the shard's unsettled
// sites as a sub-universe on a local arena pool, and stream the verdicts
// back while simulation continues. Returns after the final flush and
// completion call.
func (w *Worker) RunShard(ctx context.Context, lease Lease) error {
	c, err := w.campaign(lease.Spec)
	if err != nil {
		return err
	}
	if lease.Sites != len(c.Sites) {
		return fmt.Errorf("serve: worker: lease %s/%s: universe size %d does not match the local build's %d",
			lease.Job, lease.Shard, lease.Sites, len(c.Sites))
	}
	if lease.Shard.Lo < 0 || lease.Shard.Hi > len(c.Sites) || lease.Shard.Lo > lease.Shard.Hi {
		return fmt.Errorf("serve: worker: lease %s/%s: shard outside universe of %d", lease.Job, lease.Shard, len(c.Sites))
	}

	// The shard's pending work as a sub-universe: verdicts are pure
	// per-site functions of the environment, so simulating a subset
	// settles the same verdicts the full campaign would. sub maps local
	// site indices back to universe indices for the wire.
	settled := make(map[int]bool, len(lease.Settled))
	for _, i := range lease.Settled {
		settled[i] = true
	}
	var sub []int
	var sites []fault.Site
	for i := lease.Shard.Lo; i < lease.Shard.Hi; i++ {
		if !settled[i] {
			sub = append(sub, i)
			sites = append(sites, c.Sites[i])
		}
	}

	batchSize := w.BatchSize
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	flushInterval := w.FlushInterval
	if flushInterval <= 0 {
		flushInterval = DefaultFlushInterval
	}
	p := &verdictPoster{
		w:      w,
		ctx:    ctx,
		path:   fmt.Sprintf("/v1/jobs/%s/shards/%s/verdicts", lease.Job, lease.Shard),
		worker: w.Name,
		wake:   make(chan struct{}, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go p.loop(flushInterval)

	simulated := w.Telemetry.Counter("worker_sites_simulated_total")
	var runErr error
	if len(sub) > 0 {
		_, runErr = core.RunCampaignOpts(c.Cfg, c.Core, c.Job, sites, c.Budget, core.CampaignOptions{
			Workers:   w.Workers,
			Telemetry: w.Telemetry,
			OnGolden: func(sig uint32, ok bool) {
				p.mu.Lock()
				p.golden, p.goldenOK = sig, ok
				p.mu.Unlock()
			},
			OnSettle: func(i int, res fault.SiteResult, fromJournal bool) {
				simulated.Inc()
				p.add(Verdict{
					I:        sub[i],
					Sig:      res.Signature,
					Detected: res.Detected,
					Crashed:  res.Crashed,
					Panicked: res.Panicked,
				}, batchSize)
			},
		})
	}
	close(p.quit)
	<-p.done
	if runErr != nil {
		return fmt.Errorf("serve: worker: shard %s/%s: %w", lease.Job, lease.Shard, runErr)
	}
	p.mu.Lock()
	postErr := p.err
	p.mu.Unlock()
	if postErr != nil {
		return postErr
	}
	_, err = w.post(ctx, fmt.Sprintf("/v1/jobs/%s/shards/%s/complete", lease.Job, lease.Shard),
		CompleteRequest{Worker: w.Name}, nil)
	return err
}
