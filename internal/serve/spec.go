package serve

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

// Spec is the wire form of a campaign request: the paper-shaped knobs that
// fully determine a campaign as a pure function. Everything else about a
// job — worker count, shard size, engine mode, checkpoint interval — is
// execution strategy and deliberately kept out, so it can vary between
// submissions without changing the campaign's content address.
type Spec struct {
	// Routine is the self-test routine name (sbst.NewRoutineByName);
	// empty means "forwarding".
	Routine string `json:"routine,omitempty"`
	// Core is the core under test: 0 (A), 1 (B) or 2 (C, 64-bit lanes).
	Core int `json:"core,omitempty"`
	// Strategy is the execution strategy: "plain", "cache" or "tcm";
	// empty means "cache".
	Strategy string `json:"strategy,omitempty"`
	// Multicore replays 3-core bus contention around the core under test;
	// false runs the core alone.
	Multicore bool `json:"multicore,omitempty"`
	// BitStep enumerates every Nth data bit of wide sites (campaign
	// reduction); <= 0 means 1 (every bit).
	BitStep int `json:"bitstep,omitempty"`
	// Faults selects the fault model: "stuckat" (default) or "transition"
	// (forwarding routine only).
	Faults string `json:"faults,omitempty"`
}

// Normalized fills the documented defaults and validates the spec, so
// every representation of the same campaign hashes to the same content
// address.
func (s Spec) Normalized() (Spec, error) {
	if s.Routine == "" {
		s.Routine = "forwarding"
	}
	if s.Strategy == "" {
		s.Strategy = "cache"
	}
	if s.BitStep <= 0 {
		s.BitStep = 1
	}
	if s.Faults == "" {
		s.Faults = "stuckat"
	}
	if s.Core < 0 || s.Core >= soc.NumCores {
		return s, fmt.Errorf("serve: core %d outside 0..%d", s.Core, soc.NumCores-1)
	}
	switch s.Strategy {
	case "plain", "cache", "tcm":
	default:
		return s, fmt.Errorf("serve: unknown strategy %q", s.Strategy)
	}
	switch s.Faults {
	case "stuckat":
	case "transition":
		if s.Routine != "forwarding" {
			return s, fmt.Errorf("serve: fault model transition requires the forwarding routine")
		}
	default:
		return s, fmt.Errorf("serve: unknown fault model %q", s.Faults)
	}
	return s, nil
}

// Campaign is one fully built campaign: the replay environment, the job
// under test, the ordered fault universe, the per-run cycle budget and the
// content-addressed identity. It is what the server fingerprints at
// submission and what a worker simulates shards of — both sides build it
// from the same Spec, so they agree bit for bit.
type Campaign struct {
	// Spec is the normalized request this campaign was built from.
	Spec Spec
	// Cfg is the replay SoC configuration (recorded golden bus traffic
	// feeding dedicated replay masters).
	Cfg soc.Config
	// Core is the core under test.
	Core int
	// Job is the core under test's routine + strategy job.
	Job *core.CoreJob
	// Sites is the ordered fault universe.
	Sites []fault.Site
	// Budget is the per-run cycle budget (8x the golden run plus slack).
	Budget int64
	// Header is the campaign's content address
	// (core.CampaignFingerprint over program, universe and environment).
	Header fault.JournalHeader
}

// Build constructs the campaign: routines and strategy for every active
// core, the fault universe, one golden full-system run recording the other
// cores' bus traffic, and the replay environment and budget derived from
// it. Construction is deterministic — two Builds of one normalized Spec
// (in any process) produce identical programs, universes, traffic and
// fingerprints. This is the exact construction cmd/faultsim performs, so
// a service job and a local faultsim run of the same spec are the same
// pure function.
func (s Spec) Build() (*Campaign, error) {
	spec, err := s.Normalized()
	if err != nil {
		return nil, err
	}
	mkRoutine := func(id int) (*sbst.Routine, error) {
		return sbst.NewRoutineByName(spec.Routine, sbst.RoutineOptions{
			DataBase:    mem.SRAMBase + 0x2000*uint32(id+1),
			CoreID:      id,
			TriggerReps: 2,
		})
	}
	var strat core.Strategy
	cached := false
	switch spec.Strategy {
	case "plain":
		strat = core.Plain{}
	case "cache":
		strat = core.CacheBased{WriteAllocate: true}
		cached = true
	case "tcm":
		strat = core.TCMBased{CoreID: spec.Core}
	}

	bits := 32
	if spec.Core == 2 {
		bits = 64
	}
	opts := fault.ListOptions{DataBits: bits, BitStep: spec.BitStep}
	var sites []fault.Site
	switch spec.Routine {
	case "forwarding":
		sites = fault.ForwardingLogic(opts)
	case "hdcu":
		sites = fault.HDCU(opts)
		sites = append(sites, fault.PerfCounters(opts)...)
	case "icu":
		sites = fault.ICU(opts)
	}
	if spec.Faults == "transition" {
		sites = fault.TransitionFaults(opts)
	}
	fault.SortSites(sites)
	if len(sites) == 0 {
		return nil, fmt.Errorf("serve: routine %q has no fault universe (want forwarding, hdcu or icu)", spec.Routine)
	}

	// Environment: the other cores run the same routine for contention.
	active := 1
	if spec.Multicore {
		active = soc.NumCores
	}
	cfg := soc.DefaultConfig()
	var jobs [soc.NumCores]*core.CoreJob
	for id := 0; id < soc.NumCores; id++ {
		cfg.Cores[id].Active = id < active || id == spec.Core
		cfg.Cores[id].CachesOn = cached
		cfg.Cores[id].WriteAlloc = true
		if cfg.Cores[id].Active {
			r, err := mkRoutine(id)
			if err != nil {
				return nil, fmt.Errorf("serve: %w", err)
			}
			jobs[id] = &core.CoreJob{
				Routine:  r,
				Strategy: core.Plain{},
				CodeBase: soc.CodeLow + uint32(id)*0x10000,
			}
			if id == spec.Core {
				jobs[id].Strategy = strat
			}
		}
	}

	// Golden run with traffic recording.
	var rec *bus.Recorder
	results, _, err := core.RunJobsSetup(cfg, jobs, 10_000_000, nil, func(s *soc.SoC) {
		rec = s.AttachRecorder(spec.Core)
	})
	if err != nil {
		return nil, fmt.Errorf("serve: golden run: %w", err)
	}
	golden := results[spec.Core]
	if !golden.OK {
		return nil, fmt.Errorf("serve: golden run failed on core %d", spec.Core)
	}
	budget := golden.Cycles*8 + 20_000
	replayCfg := cfg
	replayCfg.Replay = rec.EventsByMaster()

	header, err := core.CampaignFingerprint(replayCfg, spec.Core, jobs[spec.Core], sites, budget)
	if err != nil {
		return nil, fmt.Errorf("serve: fingerprint: %w", err)
	}
	return &Campaign{
		Spec:   spec,
		Cfg:    replayCfg,
		Core:   spec.Core,
		Job:    jobs[spec.Core],
		Sites:  sites,
		Budget: budget,
		Header: header,
	}, nil
}
