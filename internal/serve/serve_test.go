package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// quickSpec is the small campaign the end-to-end tests run: the forwarding
// universe at bit step 8 (the same reduction the engine tests use), single
// core, default cache strategy.
func quickSpec() Spec {
	return Spec{Routine: "forwarding", BitStep: 8}
}

// startServer boots a Server over a fresh store under t.TempDir.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.StoreDir == "" {
		cfg.StoreDir = t.TempDir()
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s)
	t.Cleanup(func() { hs.Close(); _ = s.Close() })
	return s, hs
}

// submit posts spec and decodes the status reply.
func submit(t *testing.T, base string, spec Spec, query string) JobStatus {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: status %s", resp.Status)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("submit: decode: %v", err)
	}
	return st
}

// getJSON fetches path and decodes into out, returning the status code.
func getJSON(t *testing.T, base, path string, out any) int {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode < 300 {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", path, err)
		}
	}
	return resp.StatusCode
}

// getRaw fetches path raw.
func getRaw(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, buf.Bytes()
}

// directReport runs the same campaign locally, bypassing the service, and
// renders it the way `faultsim -report` (and the service) does.
func directReport(t *testing.T, spec Spec) []byte {
	t.Helper()
	c, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	rep, err := core.RunCampaignOpts(c.Cfg, c.Core, c.Job, c.Sites, c.Budget, core.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatalf("RunCampaignOpts: %v", err)
	}
	blob, err := MarshalReport(rep)
	if err != nil {
		t.Fatalf("MarshalReport: %v", err)
	}
	return blob
}

func TestSpecBuildDeterministic(t *testing.T) {
	a, err := quickSpec().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	b, err := quickSpec().Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if a.Header != b.Header {
		t.Fatalf("two builds fingerprint differently: %+v vs %+v", a.Header, b.Header)
	}
	if a.Header.Key() != b.Header.Key() {
		t.Fatalf("key mismatch: %s vs %s", a.Header.Key(), b.Header.Key())
	}
	if len(a.Sites) == 0 || len(a.Sites) != len(b.Sites) {
		t.Fatalf("universe sizes %d vs %d", len(a.Sites), len(b.Sites))
	}
}

func TestSpecNormalizeRejects(t *testing.T) {
	cases := []Spec{
		{Core: 7},
		{Strategy: "warp"},
		{Faults: "gamma-ray"},
		{Routine: "hdcu", Faults: "transition"},
	}
	for _, spec := range cases {
		if _, err := spec.Normalized(); err == nil {
			t.Errorf("spec %+v: want error, got none", spec)
		}
	}
}

// TestServiceEndToEnd is the tentpole pin: a campaign submitted to the
// service, simulated by a worker over the shard protocol, must produce a
// report byte-identical to a direct local run — and a second submission of
// the same spec must complete entirely from the content-addressed store,
// with zero simulated sites.
func TestServiceEndToEnd(t *testing.T) {
	spec := quickSpec()
	want := directReport(t, spec)

	_, hs := startServer(t, Config{ShardSize: 7})
	st := submit(t, hs.URL, spec, "")
	if st.State != "running" {
		t.Fatalf("fresh job state %q, want running", st.State)
	}
	if st.Shards < 2 {
		t.Fatalf("want a multi-shard job, got %d shards of %d sites", st.Shards, st.Sites)
	}

	w := &Worker{Server: hs.URL, Name: "w1", Workers: 2, Drain: true, Telemetry: telemetry.NewRegistry()}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker: %v", err)
	}

	var done JobStatus
	if code := getJSON(t, hs.URL, "/v1/jobs/"+st.ID, &done); code != http.StatusOK {
		t.Fatalf("status: %d", code)
	}
	if done.State != "done" {
		t.Fatalf("job state %q (error %q), want done", done.State, done.Error)
	}
	if done.Simulated != done.Sites || done.FromCache != 0 {
		t.Fatalf("cold run accounting: simulated %d fromCache %d of %d", done.Simulated, done.FromCache, done.Sites)
	}
	code, got := getRaw(t, hs.URL, "/v1/jobs/"+st.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("report: %d", code)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("service report differs from direct run:\nservice: %.200s\ndirect:  %.200s", got, want)
	}

	// Second submission of the same spec: full cache hit, no worker runs.
	st2 := submit(t, hs.URL, spec, "")
	if st2.State != "done" {
		t.Fatalf("resubmitted job state %q, want done at submission", st2.State)
	}
	if st2.Simulated != 0 || st2.FromCache != st2.Sites {
		t.Fatalf("cache hit accounting: simulated %d fromCache %d of %d", st2.Simulated, st2.FromCache, st2.Sites)
	}
	code, got2 := getRaw(t, hs.URL, "/v1/jobs/"+st2.ID+"/report")
	if code != http.StatusOK {
		t.Fatalf("cached report: %d", code)
	}
	if !bytes.Equal(got2, want) {
		t.Fatalf("cached report differs from direct run")
	}

	// The cached job's event stream replays every verdict as journal-fed,
	// through the same strict schema faultsim streams.
	code, raw := getRaw(t, hs.URL, "/v1/jobs/"+st2.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events: %d", code)
	}
	events, err := telemetry.DecodeEvents(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("events decode: %v", err)
	}
	if n := telemetry.CountKind(events, telemetry.EventSite); n != st2.Sites {
		t.Fatalf("cached stream has %d site events, want %d", n, st2.Sites)
	}
	for _, e := range events {
		if e.Kind == telemetry.EventSite && !e.FromJournal {
			t.Fatalf("cached job streamed a non-journal site event: %+v", e)
		}
	}
	if telemetry.CountKind(events, telemetry.EventStart) != 1 || telemetry.CountKind(events, telemetry.EventFinish) != 1 {
		t.Fatalf("stream missing start/finish: %d/%d", telemetry.CountKind(events, telemetry.EventStart), telemetry.CountKind(events, telemetry.EventFinish))
	}

	// Pool metrics surface the cache hit machine-readably.
	code, prom := getRaw(t, hs.URL, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: %d", code)
	}
	if !strings.Contains(string(prom), "serve_jobs_fully_cached_total 1") {
		t.Fatalf("pool metrics missing full-cache-hit counter:\n%.400s", prom)
	}
}

// TestMidShardResume pins site-granular resume: a worker that posts only
// part of a shard's verdicts and then goes silent forfeits its lease, and
// the next leaseholder is told which sites are settled and simulates only
// the rest — converging on the same byte-identical report.
func TestMidShardResume(t *testing.T) {
	spec := quickSpec()
	want := directReport(t, spec)

	srv, hs := startServer(t, Config{ShardSize: 7, Lease: 30 * time.Millisecond})
	st := submit(t, hs.URL, spec, "")

	// Lease the first shard and settle only part of it by hand, playing a
	// worker that dies mid-shard.
	var lease Lease
	body, _ := json.Marshal(LeaseRequest{Worker: "doomed"})
	resp, err := http.Post(hs.URL+"/v1/lease", "application/json", bytes.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("lease: %v %v", err, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&lease); err != nil {
		t.Fatalf("lease decode: %v", err)
	}
	resp.Body.Close()
	if len(lease.Settled) != 0 {
		t.Fatalf("fresh lease reports %d settled sites", len(lease.Settled))
	}

	// Simulate the leased shard locally to get honest verdicts, then post
	// only the first two.
	c, err := spec.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sub := c.Sites[lease.Shard.Lo:lease.Shard.Hi]
	rep, err := core.RunCampaignOpts(c.Cfg, c.Core, c.Job, sub, c.Budget, core.CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatalf("RunCampaignOpts: %v", err)
	}
	batch := VerdictBatch{Worker: "doomed", Golden: rep.Golden, GoldenOK: rep.GoldenOK}
	for k := 0; k < 2; k++ {
		r := rep.Results[k]
		batch.Verdicts = append(batch.Verdicts, Verdict{
			I: lease.Shard.Lo + k, Sig: r.Signature,
			Detected: r.Detected, Crashed: r.Crashed, Panicked: r.Panicked,
		})
	}
	body, _ = json.Marshal(batch)
	resp, err = http.Post(fmt.Sprintf("%s/v1/jobs/%s/shards/%s/verdicts", hs.URL, lease.Job, lease.Shard),
		"application/json", bytes.NewReader(body))
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("partial batch: %v %v", err, resp.Status)
	}
	resp.Body.Close()

	// Let the lease expire, then drain the job with a healthy worker.
	time.Sleep(60 * time.Millisecond)
	w := &Worker{Server: hs.URL, Name: "healthy", Workers: 2, Drain: true}
	if err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker: %v", err)
	}

	var done JobStatus
	getJSON(t, hs.URL, "/v1/jobs/"+st.ID, &done)
	if done.State != "done" {
		t.Fatalf("job state %q (error %q), want done", done.State, done.Error)
	}
	code, got := getRaw(t, hs.URL, "/v1/jobs/"+st.ID+"/report")
	if code != http.StatusOK || !bytes.Equal(got, want) {
		t.Fatalf("resumed report differs from direct run (code %d)", code)
	}

	// The healthy worker must have been told about the settled prefix: the
	// shard was re-leased after expiry, so the expiry counter moved.
	var snap bytes.Buffer
	if err := srv.reg.WriteProm(&snap); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if !strings.Contains(snap.String(), "serve_shards_expired_total 1") {
		t.Fatalf("no lease expiry recorded:\n%.400s", snap.String())
	}
}

// TestGoldenMismatchFailsJob pins the determinism contract: a worker whose
// golden does not reproduce the already-bound one fails the job loudly
// instead of mixing verdicts from two environments.
func TestGoldenMismatchFailsJob(t *testing.T) {
	spec := quickSpec()
	_, hs := startServer(t, Config{ShardSize: 7})
	st := submit(t, hs.URL, spec, "")

	post := func(golden uint32, i int) int {
		var lease Lease
		body, _ := json.Marshal(LeaseRequest{Worker: "w"})
		resp, err := http.Post(hs.URL+"/v1/lease", "application/json", bytes.NewReader(body))
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("lease: %v %v", err, resp.Status)
		}
		json.NewDecoder(resp.Body).Decode(&lease)
		resp.Body.Close()
		batch := VerdictBatch{Worker: "w", Golden: golden, GoldenOK: true,
			Verdicts: []Verdict{{I: lease.Shard.Lo + i, Sig: golden + 1, Detected: true}}}
		body, _ = json.Marshal(batch)
		resp, err = http.Post(fmt.Sprintf("%s/v1/jobs/%s/shards/%s/verdicts", hs.URL, lease.Job, lease.Shard),
			"application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("batch: %v", err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post(0xAAAA, 0); code != http.StatusOK {
		t.Fatalf("first batch: %d", code)
	}
	if code := post(0xBBBB, 1); code != http.StatusConflict {
		t.Fatalf("conflicting golden: code %d, want 409", code)
	}
	var done JobStatus
	getJSON(t, hs.URL, "/v1/jobs/"+st.ID, &done)
	if done.State != "failed" || done.Error == "" {
		t.Fatalf("job state %q error %q, want failed with reason", done.State, done.Error)
	}
}

// TestSubmitAttachesToRunningJob pins dedup: submitting a spec while its
// campaign is already running returns the running job instead of a new one.
func TestSubmitAttachesToRunningJob(t *testing.T) {
	spec := quickSpec()
	_, hs := startServer(t, Config{})
	a := submit(t, hs.URL, spec, "")
	b := submit(t, hs.URL, spec, "")
	if a.ID != b.ID {
		t.Fatalf("resubmission while running created a second job: %s vs %s", a.ID, b.ID)
	}
	var all []JobStatus
	getJSON(t, hs.URL, "/v1/jobs", &all)
	if len(all) != 1 {
		t.Fatalf("job list has %d entries, want 1", len(all))
	}
}
