package serve

import (
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/fault"
)

// Store is the content-addressed campaign store: one verdict journal per
// campaign fingerprint, in one directory. The address is
// fault.JournalHeader.Key() — program image, fault universe, environment
// and universe size hashed together — so two requests resolve to the same
// journal exactly when they are the same pure function, and a journal can
// never serve verdicts to a campaign it does not belong to (ResumeJournal
// re-verifies the full header, not just the key). Shard completion state
// is derived from the journal (fault.Journal.Unsettled), which is what
// makes completed shards — and whole campaigns — cache hits across jobs,
// process restarts and worker losses.
type Store struct {
	dir string
}

// OpenStore opens (creating if needed) the store directory.
func OpenStore(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Path returns the journal path addressing campaign h.
func (s *Store) Path(h fault.JournalHeader) string {
	return filepath.Join(s.dir, h.Key()+".journal")
}

// Open opens campaign h's journal, resuming any verdicts previous jobs
// settled; a campaign never seen before starts an empty journal. The
// caller owns Close.
func (s *Store) Open(h fault.JournalHeader) (*fault.Journal, error) {
	return fault.ResumeJournal(s.Path(h), h)
}
