package serve

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"strings"
	"testing"
)

// TestExportedIdentifiersDocumented fails on any exported identifier in
// this package that lacks a doc comment — the same gate internal/coverage
// and internal/telemetry run, applied here because the serve package's
// exported surface doubles as the service's wire-format documentation.
func TestExportedIdentifiersDocumented(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				checkDecl(t, fset, decl)
			}
		}
	}
}

func checkDecl(t *testing.T, fset *token.FileSet, decl ast.Decl) {
	t.Helper()
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if d.Name.IsExported() && d.Doc == nil {
			t.Errorf("%s: exported func %s has no doc comment", fset.Position(d.Pos()), d.Name.Name)
		}
	case *ast.GenDecl:
		for _, spec := range d.Specs {
			switch s := spec.(type) {
			case *ast.TypeSpec:
				if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					t.Errorf("%s: exported type %s has no doc comment", fset.Position(s.Pos()), s.Name.Name)
				}
			case *ast.ValueSpec:
				for _, name := range s.Names {
					if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						t.Errorf("%s: exported %s %s has no doc comment", fset.Position(name.Pos()), declKind(d.Tok), name.Name)
					}
				}
			}
		}
	}
}

func declKind(tok token.Token) string {
	if tok == token.CONST {
		return "const"
	}
	return "var"
}
