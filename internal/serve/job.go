package serve

import (
	"time"

	"repro/internal/fault"
	"repro/internal/telemetry"
)

// shardState is one shard's position in the lifecycle machine:
// pending → leased → done, with leased → pending on lease expiry.
// Shards whose sites the store already settles are born done.
type shardState uint8

const (
	shardPending shardState = iota
	shardLeased
	shardDone
)

// shard is one contiguous slice of a job's fault universe, the unit of
// work distribution and of cache addressing.
type shard struct {
	r        fault.ShardRange
	state    shardState
	worker   string    // current leaseholder (leased state)
	deadline time.Time // lease expiry (leased state)
}

// jobState is a job's lifecycle state.
type jobState uint8

const (
	jobRunning jobState = iota
	jobDone
	jobFailed
)

// String renders the state the way JobStatus.State carries it.
func (s jobState) String() string {
	switch s {
	case jobRunning:
		return "running"
	case jobDone:
		return "done"
	case jobFailed:
		return "failed"
	}
	return "?"
}

// jobMetrics is a job's resolved per-job registry handles.
type jobMetrics struct {
	sites      *telemetry.Gauge
	shards     *telemetry.Gauge
	shardsDone *telemetry.Gauge
	fromCache  *telemetry.Counter
	simulated  *telemetry.Counter
	detected   *telemetry.Counter
}

// newJobMetrics resolves the per-job metric names on reg.
func newJobMetrics(reg *telemetry.Registry) jobMetrics {
	return jobMetrics{
		sites:      reg.Gauge("serve_job_sites"),
		shards:     reg.Gauge("serve_job_shards"),
		shardsDone: reg.Gauge("serve_job_shards_done"),
		fromCache:  reg.Counter("serve_job_sites_from_cache_total"),
		simulated:  reg.Counter("serve_job_sites_simulated_total"),
		detected:   reg.Counter("serve_job_verdicts_detected_total"),
	}
}

// job is one submitted campaign: the built campaign, the store journal
// backing its settled state, the shard table, and the job-scoped telemetry
// surface (event buffer + registry). All mutable fields are guarded by the
// owning Server's mutex.
type job struct {
	id      string
	key     string
	c       *Campaign
	journal *fault.Journal
	shards  []*shard

	state jobState
	err   string

	settled   []bool // per-site settled flags (journal + streamed)
	results   []fault.SiteResult
	nSettled  int
	fromCache int
	simulated int
	detected  int
	panics    int

	goldenSig   uint32
	goldenOK    bool
	goldenBound bool

	report []byte // final report JSON, rendered at completion

	events *telemetry.EventBuffer
	reg    *telemetry.Registry
	met    jobMetrics

	created  time.Time
	finished time.Time
	done     chan struct{} // closed when the job leaves the running state
}

// shardsDone counts completed shards.
func (j *job) shardsDone() int {
	n := 0
	for _, sh := range j.shards {
		if sh.state == shardDone {
			n++
		}
	}
	return n
}

// status renders the job's status document.
func (j *job) status(now time.Time) JobStatus {
	elapsed := now.Sub(j.created)
	if j.state != jobRunning {
		elapsed = j.finished.Sub(j.created)
	}
	return JobStatus{
		ID:         j.id,
		Key:        j.key,
		Spec:       j.c.Spec,
		State:      j.state.String(),
		Error:      j.err,
		Sites:      len(j.c.Sites),
		Settled:    j.nSettled,
		FromCache:  j.fromCache,
		Simulated:  j.simulated,
		Detected:   j.detected,
		Shards:     len(j.shards),
		ShardsDone: j.shardsDone(),
		ElapsedNs:  elapsed.Nanoseconds(),
	}
}

// settle folds one verdict into the job state (idempotent per site) and
// emits its site event. Caller holds the server mutex and has already
// journaled the verdict when it came from a worker.
func (j *job) settle(i int, res fault.SiteResult, fromCache bool) {
	if j.settled[i] {
		return
	}
	j.settled[i] = true
	j.results[i] = res
	j.nSettled++
	if fromCache {
		j.fromCache++
		j.met.fromCache.Inc()
	} else {
		j.simulated++
		j.met.simulated.Inc()
	}
	if res.Detected {
		j.detected++
		j.met.detected.Inc()
	}
	if res.Panicked {
		j.panics++
	}
	j.events.Emit(telemetry.Event{
		Kind:        telemetry.EventSite,
		Index:       i,
		Site:        res.Site.String(),
		Sig:         res.Signature,
		Detected:    res.Detected,
		Crashed:     res.Crashed,
		Panicked:    res.Panicked,
		FromJournal: fromCache,
	})
}

// assembleReport builds the final fault.Report from the settled verdicts.
// Anomaly stacks are not reassembled — like `faultsim -report`, the
// service report carries the verdict set, which is the byte-comparable
// part.
func (j *job) assembleReport() fault.Report {
	rep := fault.Report{
		Golden:   j.goldenSig,
		GoldenOK: j.goldenOK,
		Total:    len(j.c.Sites),
		Results:  make([]fault.SiteResult, len(j.c.Sites)),
	}
	copy(rep.Results, j.results)
	for _, res := range rep.Results {
		if res.Detected {
			rep.Detected++
		}
		if res.Panicked {
			rep.Panics++
		}
	}
	return rep
}
