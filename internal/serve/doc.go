// Package serve is the campaign service: an HTTP/JSON job server
// (cmd/faultserve) and shard worker (cmd/faultworker) that turn fault
// campaigns into content-addressed, cacheable, resumable jobs.
//
// A campaign is a pure function of its Spec — routine, core under test,
// execution strategy, contention, fault model, bit step. Build constructs
// the full environment from a Spec deterministically (the exact
// construction cmd/faultsim performs), so the server and every worker
// agree on the program image, fault universe, replay traffic, cycle budget
// and content address (core.CampaignFingerprint) without shipping any of
// them over the wire: the Spec is the wire format.
//
// The server folds previously settled verdicts in from a content-addressed
// Store (one fault.Journal per campaign fingerprint), shards the remainder
// of the universe (fault.ShardRanges), and leases shards to workers over
// the shard protocol (protocol.go). Workers stream verdict batches as
// sites settle; every verdict is journaled before it is counted, so a
// SIGKILL — of a worker or of the server — costs at most the verdicts not
// yet posted, and a resubmitted campaign completes from cache without a
// single simulated run. Reports are assembled byte-identical to a local
// `faultsim -report` run of the same spec; CI pins that with cmp.
//
// docs/SERVICE.md is the API and wire-format reference;
// docs/ARCHITECTURE.md § "Campaign service" covers the failure domains.
package serve
