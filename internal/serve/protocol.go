package serve

import (
	"encoding/json"
	"fmt"

	"repro/internal/fault"
)

// The shard protocol: a worker leases one shard at a time, streams the
// verdicts it settles in batches, and marks the shard complete. Every
// message is plain JSON over HTTP; docs/SERVICE.md is the wire reference.

// LeaseRequest is the body of POST /v1/lease.
type LeaseRequest struct {
	// Worker is the leasing worker's self-chosen name, recorded on the
	// shard for status output.
	Worker string `json:"worker"`
}

// Lease is the server's answer to a successful lease request: one shard
// of one job, plus everything the worker needs to simulate it without
// further round trips. (No work pending is a 204, not a Lease.)
type Lease struct {
	// Job is the job ID the shard belongs to.
	Job string `json:"job"`
	// Spec is the normalized campaign spec; the worker rebuilds the
	// campaign from it deterministically.
	Spec Spec `json:"spec"`
	// Shard is the leased index range of the fault universe.
	Shard fault.ShardRange `json:"shard"`
	// Settled lists the universe indices within Shard that are already
	// settled (journaled by the store or streamed by a worker that died
	// mid-shard) — the worker skips them, which is what makes shard
	// resume site-granular.
	Settled []int `json:"settled,omitempty"`
	// Sites is the universe size, so the worker can sanity-check its
	// build against the server's before simulating.
	Sites int `json:"sites"`
	// LeaseNs is the lease duration in nanoseconds; any verdict batch or
	// completion renews it, and a silent worker forfeits the shard when
	// it expires.
	LeaseNs int64 `json:"lease_ns"`
}

// Verdict is one settled site verdict on the wire (the JSON twin of
// fault.SiteResult, addressed by universe index).
type Verdict struct {
	// I is the site's index in the ordered fault universe.
	I int `json:"i"`
	// Sig is the settled test signature (0 for crashed runs, canonical).
	Sig uint32 `json:"sig"`
	// Detected marks a detected fault.
	Detected bool `json:"detected,omitempty"`
	// Crashed marks a wedged or timed-out run.
	Crashed bool `json:"crashed,omitempty"`
	// Panicked marks a verdict settled at the recover boundary.
	Panicked bool `json:"panicked,omitempty"`
	// Msg is the panic message of a panicked run (diagnostic).
	Msg string `json:"msg,omitempty"`
	// Stack is the panic stack of a panicked run (diagnostic).
	Stack string `json:"stack,omitempty"`
}

// VerdictBatch is the body of POST /v1/jobs/{id}/shards/{shard}/verdicts:
// a slice of freshly settled verdicts plus the worker's golden reference,
// which the server reconciles into the journal exactly like a resumed
// local campaign (a golden that fails to reproduce the journaled one is
// refused — determinism is load-bearing, not assumed).
type VerdictBatch struct {
	// Worker is the posting worker's name; posting renews the shard
	// lease when the name still holds it.
	Worker string `json:"worker"`
	// Golden is the worker's golden signature for this campaign.
	Golden uint32 `json:"golden"`
	// GoldenOK reports whether the worker's golden run completed cleanly.
	GoldenOK bool `json:"golden_ok"`
	// Verdicts carries the settled verdicts (any order, duplicates of
	// already-settled sites are ignored).
	Verdicts []Verdict `json:"verdicts"`
}

// CompleteRequest is the body of POST
// /v1/jobs/{id}/shards/{shard}/complete. Completion is only accepted once
// every site in the shard is settled; otherwise the server answers 409
// and the worker (or the next leaseholder) keeps going.
type CompleteRequest struct {
	// Worker is the completing worker's name.
	Worker string `json:"worker"`
}

// JobStatus is the status document of GET /v1/jobs/{id} (and each entry
// of GET /v1/jobs). Simulated counts verdicts streamed by workers for
// this job; FromCache counts verdicts served by the content-addressed
// store at submission. Their sum is Settled, so `simulated == 0` is the
// machine-checkable definition of a full cache hit.
type JobStatus struct {
	// ID is the job ID.
	ID string `json:"id"`
	// Key is the campaign's content address (store journal name).
	Key string `json:"key"`
	// Spec is the normalized campaign spec.
	Spec Spec `json:"spec"`
	// State is "running", "done" or "failed".
	State string `json:"state"`
	// Error carries the failure reason of a failed job.
	Error string `json:"error,omitempty"`
	// Sites is the universe size.
	Sites int `json:"sites"`
	// Settled counts settled sites (FromCache + Simulated).
	Settled int `json:"settled"`
	// FromCache counts verdicts folded in from the store at submission.
	FromCache int `json:"fromCache"`
	// Simulated counts verdicts streamed by workers.
	Simulated int `json:"simulated"`
	// Detected counts detected faults so far.
	Detected int `json:"detected"`
	// Shards counts the job's shards.
	Shards int `json:"shards"`
	// ShardsDone counts completed shards.
	ShardsDone int `json:"shardsDone"`
	// ElapsedNs is wall time since submission (until completion for
	// finished jobs).
	ElapsedNs int64 `json:"elapsed_ns"`
}

// MarshalReport renders a campaign report exactly as `faultsim -report`
// writes it: indented JSON with diagnostic anomaly stacks stripped and a
// trailing newline, so service reports and local reports are byte-
// comparable (`cmp` in CI).
func MarshalReport(rep fault.Report) ([]byte, error) {
	rep.Anomalies = nil
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("serve: report: %w", err)
	}
	return append(blob, '\n'), nil
}
