package asm

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
)

// Builder accumulates instructions and data, with label-based fixups that
// are resolved when Assemble is called. The zero value is not ready for use;
// call NewBuilder.
type Builder struct {
	items  []item
	labels map[string]int // label -> item index it precedes
	errs   []error
	nAuto  int // generator for unique local labels
}

type itemKind uint8

const (
	itemInst itemKind = iota
	itemWord          // raw data word
	itemAlign
	itemOrg
)

type item struct {
	kind  itemKind
	inst  isa.Inst
	word  uint32
	align int    // for itemAlign: byte boundary
	org   uint32 // for itemOrg: absolute target address

	// Label fixups, applied at assembly time.
	immLabel string // branch/jump target or absolute-address label
	immMode  fixMode
}

type fixMode uint8

const (
	fixNone fixMode = iota
	fixRel          // PC-relative byte offset from the *next* instruction
	fixAbsHi
	fixAbsLo
)

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{labels: make(map[string]int)}
}

// Label defines a label at the current position. Defining the same label
// twice records an error reported by Assemble.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("asm: duplicate label %q", name))
		return
	}
	b.labels[name] = len(b.items)
}

// AutoLabel returns a fresh label name unique within this builder.
func (b *Builder) AutoLabel(prefix string) string {
	b.nAuto++
	return fmt.Sprintf(".%s%d", prefix, b.nAuto)
}

// Emit appends a fully-formed instruction.
func (b *Builder) Emit(i isa.Inst) { b.items = append(b.items, item{kind: itemInst, inst: i}) }

// Word appends a raw 32-bit data word at the current position.
func (b *Builder) Word(w uint32) { b.items = append(b.items, item{kind: itemWord, word: w}) }

// Align pads with NOPs (encoded, so the padding is executable) until the
// current position is a multiple of n bytes. n must be a power of two and a
// multiple of 4.
func (b *Builder) Align(n int) {
	if n < 4 || n&(n-1) != 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: bad alignment %d", n))
		return
	}
	b.items = append(b.items, item{kind: itemAlign, align: n})
}

// Space reserves n bytes of zero-initialised data (n must be a multiple of
// the word size).
func (b *Builder) Space(n int) {
	if n < 0 || n%isa.InstBytes != 0 {
		b.errs = append(b.errs, fmt.Errorf("asm: bad space size %d", n))
		return
	}
	for i := 0; i < n/isa.InstBytes; i++ {
		b.Word(0)
	}
}

// Org pads with NOPs up to absolute address addr; assembly fails if the
// program has already passed it.
func (b *Builder) Org(addr uint32) {
	b.items = append(b.items, item{kind: itemOrg, org: addr})
}

// Convenience emitters. They keep generator code close to assembly text.

func (b *Builder) R(op isa.Op, rd, rs1, rs2 uint8) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

func (b *Builder) I(op isa.Op, rd, rs1 uint8, imm int32) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Shift emits a shift-by-immediate.
func (b *Builder) Shift(op isa.Op, rd, rs1 uint8, shamt int32) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: shamt})
}

// Load emits a load: rd <- [rs1+off].
func (b *Builder) Load(op isa.Op, rd, base uint8, off int32) {
	b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: base, Imm: off})
}

// Store emits a store: [base+off] <- rs2.
func (b *Builder) Store(op isa.Op, rs2, base uint8, off int32) {
	b.Emit(isa.Inst{Op: op, Rs2: rs2, Rs1: base, Imm: off})
}

// Branch emits a conditional branch to label.
func (b *Builder) Branch(op isa.Op, rs1, rs2 uint8, label string) {
	b.items = append(b.items, item{
		kind: itemInst, inst: isa.Inst{Op: op, Rs1: rs1, Rs2: rs2},
		immLabel: label, immMode: fixRel,
	})
}

// Jump emits J or JAL to label.
func (b *Builder) Jump(op isa.Op, label string) {
	b.items = append(b.items, item{
		kind: itemInst, inst: isa.Inst{Op: op},
		immLabel: label, immMode: fixRel,
	})
}

// Nop emits a single NOP.
func (b *Builder) Nop() { b.Emit(isa.Inst{Op: isa.OpNOP}) }

// Halt emits HALT.
func (b *Builder) Halt() { b.Emit(isa.Inst{Op: isa.OpHALT}) }

// CsrR emits csrr rd, csr.
func (b *Builder) CsrR(rd uint8, csr int32) {
	b.Emit(isa.Inst{Op: isa.OpCSRR, Rd: rd, Imm: csr})
}

// CsrW emits csrw csr, rs1.
func (b *Builder) CsrW(csr int32, rs1 uint8) {
	b.Emit(isa.Inst{Op: isa.OpCSRW, Rs1: rs1, Imm: csr})
}

// Cinv emits a cache-invalidate for the given selector (isa.CinvI/D/Both).
func (b *Builder) Cinv(sel int32) { b.Emit(isa.Inst{Op: isa.OpCINV, Imm: sel}) }

// Pseudo-instructions.

// Li loads a full 32-bit constant into rd (LUI+ORI pair, or a single
// instruction when the value permits).
func (b *Builder) Li(rd uint8, v uint32) {
	lo := v & 0xFFFF
	hi := v >> 16
	switch {
	case hi == 0:
		b.I(isa.OpORI, rd, isa.RegZero, int32(lo))
	case lo == 0:
		b.I(isa.OpLUI, rd, 0, int32(hi))
	default:
		b.I(isa.OpLUI, rd, 0, int32(hi))
		b.I(isa.OpORI, rd, rd, int32(lo))
	}
}

// LiAddr loads the absolute address of label into rd (always two
// instructions so routine sizes don't depend on where they are linked).
func (b *Builder) LiAddr(rd uint8, label string) {
	b.items = append(b.items, item{
		kind: itemInst, inst: isa.Inst{Op: isa.OpLUI, Rd: rd},
		immLabel: label, immMode: fixAbsHi,
	})
	b.items = append(b.items, item{
		kind: itemInst, inst: isa.Inst{Op: isa.OpORI, Rd: rd, Rs1: rd},
		immLabel: label, immMode: fixAbsLo,
	})
}

// Misr folds rs into the software MISR signature register (isa.RegSig):
//
//	sig = (sig rotl 1) ^ rs
//
// expanded into four real instructions using the reserved temporaries.
func (b *Builder) Misr(rs uint8) {
	b.Shift(isa.OpSLL, isa.RegTmp0, isa.RegSig, 1)
	b.Shift(isa.OpSRL, isa.RegTmp1, isa.RegSig, 31)
	b.R(isa.OpOR, isa.RegSig, isa.RegTmp0, isa.RegTmp1)
	b.R(isa.OpXOR, isa.RegSig, isa.RegSig, rs)
}

// MisrCost is the number of instructions Misr expands to.
const MisrCost = 4

// Len returns the current size of the program in bytes, assuming no
// alignment padding is still pending (alignment items are counted as zero
// until Assemble; use Assemble().Size for the exact figure).
func (b *Builder) Len() int {
	n := 0
	for _, it := range b.items {
		if it.kind != itemAlign {
			n += isa.InstBytes
		}
	}
	return n
}

// Program is an assembled, relocated memory image.
type Program struct {
	Base   uint32   // load address of Words[0]
	Words  []uint32 // encoded instructions and data
	Labels map[string]uint32
}

// Size returns the image size in bytes.
func (p *Program) Size() int { return len(p.Words) * isa.InstBytes }

// Addr returns the absolute address of a label, or an error.
func (p *Program) Addr(label string) (uint32, error) {
	a, ok := p.Labels[label]
	if !ok {
		return 0, fmt.Errorf("asm: unknown label %q", label)
	}
	return a, nil
}

// Assemble lays the program out at the given base address, resolves labels
// and encodes all instructions.
func (b *Builder) Assemble(base uint32) (*Program, error) {
	if base%uint32(isa.InstBytes) != 0 {
		return nil, fmt.Errorf("asm: base address 0x%x not word aligned", base)
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	// Pass 1: place items, compute addresses.
	addrOf := make([]uint32, len(b.items))
	pc := base
	for idx, it := range b.items {
		addrOf[idx] = pc // for align/org items: address where padding starts
		switch it.kind {
		case itemAlign:
			for pc%uint32(it.align) != 0 {
				pc += uint32(isa.InstBytes)
			}
		case itemOrg:
			if it.org < pc || it.org%uint32(isa.InstBytes) != 0 {
				return nil, fmt.Errorf("asm: .org %#x behind current address %#x or misaligned", it.org, pc)
			}
			pc = it.org
		default:
			pc += uint32(isa.InstBytes)
		}
	}
	end := pc
	labelAddr := make(map[string]uint32, len(b.labels))
	for name, idx := range b.labels {
		if idx < len(b.items) {
			labelAddr[name] = addrOf[idx]
		} else {
			labelAddr[name] = end
		}
	}
	// Pass 2: fix up and encode.
	words := make([]uint32, 0, (end-base)/uint32(isa.InstBytes))
	nopWord := isa.MustEncode(isa.Inst{Op: isa.OpNOP})
	for idx, it := range b.items {
		switch it.kind {
		case itemAlign:
			for a := addrOf[idx]; a%uint32(it.align) != 0; a += uint32(isa.InstBytes) {
				words = append(words, nopWord)
			}
		case itemOrg:
			for a := addrOf[idx]; a < it.org; a += uint32(isa.InstBytes) {
				words = append(words, nopWord)
			}
		case itemWord:
			words = append(words, it.word)
		case itemInst:
			inst := it.inst
			if it.immMode != fixNone {
				target, ok := labelAddr[it.immLabel]
				if !ok {
					return nil, fmt.Errorf("asm: undefined label %q", it.immLabel)
				}
				switch it.immMode {
				case fixRel:
					inst.Imm = int32(target) - int32(addrOf[idx]+uint32(isa.InstBytes))
				case fixAbsHi:
					inst.Imm = int32(target >> 16)
				case fixAbsLo:
					inst.Imm = int32(target & 0xFFFF)
				}
			}
			w, err := isa.Encode(inst)
			if err != nil {
				return nil, fmt.Errorf("asm: at 0x%x: %w", addrOf[idx], err)
			}
			words = append(words, w)
		}
	}
	return &Program{Base: base, Words: words, Labels: labelAddr}, nil
}

// Listing renders the program as annotated assembly: address, encoded
// word, disassembly, with label definitions interleaved.
func (p *Program) Listing() string {
	byAddr := make(map[uint32][]string)
	for name, addr := range p.Labels {
		byAddr[addr] = append(byAddr[addr], name)
	}
	var sb strings.Builder
	for i, w := range p.Words {
		addr := p.Base + uint32(i)*uint32(isa.InstBytes)
		if names, ok := byAddr[addr]; ok {
			sort.Strings(names)
			for _, n := range names {
				fmt.Fprintf(&sb, "%s:\n", n)
			}
		}
		fmt.Fprintf(&sb, "  %08x:  %08x  %s\n", addr, w, isa.Disasm(w))
	}
	return sb.String()
}

// AppendTo appends all of other's items to b. Labels from other are merged
// and must not collide with b's.
func (b *Builder) AppendTo(other *Builder) {
	offset := len(other.items)
	for name, idx := range b.labels {
		if _, dup := other.labels[name]; dup {
			other.errs = append(other.errs, fmt.Errorf("asm: duplicate label %q in merge", name))
			continue
		}
		other.labels[name] = idx + offset
	}
	other.items = append(other.items, b.items...)
	other.errs = append(other.errs, b.errs...)
}
