package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// ParseError reports a syntax error with its source line.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

var mnemonics = func() map[string]isa.Op {
	m := make(map[string]isa.Op, isa.NumOps)
	for op := isa.Op(1); int(op) <= isa.NumOps; op++ {
		m[op.String()] = op
	}
	return m
}()

var csrNames = map[string]int32{
	"cycle": isa.CsrCycle, "instret": isa.CsrInstret,
	"ifstall": isa.CsrIFStall, "memstall": isa.CsrMemStall,
	"hazstall": isa.CsrHazStall, "issued2": isa.CsrIssued2,
	"icause": isa.CsrICause, "idist": isa.CsrIDist, "iepc": isa.CsrIEPC,
	"ienable": isa.CsrIEnable, "ipend": isa.CsrIPend, "ivec": isa.CsrIVec,
	"coreid": isa.CsrCoreID,
}

// Parse reads assembler source into a Builder. Syntax:
//
//	label:                    ; define label
//	    addi r1, r0, 5        ; register ops
//	    lw   r2, 8(r29)       ; memory ops
//	    beq  r1, r2, done     ; branches to labels
//	    csrr r4, cycle        ; CSR by name or number
//	    li   r3, 0x1234abcd   ; pseudo: load 32-bit constant
//	    la   r3, table        ; pseudo: load label address
//	    misr r3               ; pseudo: fold into signature register
//	    .word 0xdeadbeef
//	    .align 16
//
// Comments start with ';' or '#'. Returns the populated builder; call
// Assemble to produce the image.
func Parse(src string) (*Builder, error) {
	b := NewBuilder()
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Labels (possibly followed by an instruction on the same line).
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				return nil, &ParseError{ln + 1, fmt.Sprintf("bad label %q", name)}
			}
			b.Label(name)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := parseStmt(b, line); err != nil {
			return nil, &ParseError{ln + 1, err.Error()}
		}
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	return b, nil
}

func parseStmt(b *Builder, line string) error {
	mn := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mn = strings.ToLower(mn)
	args := splitArgs(rest)

	switch mn {
	case ".word":
		if len(args) != 1 {
			return fmt.Errorf(".word wants 1 argument")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return err
		}
		b.Word(uint32(v))
		return nil
	case ".align":
		if len(args) != 1 {
			return fmt.Errorf(".align wants 1 argument")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return err
		}
		b.Align(int(v))
		return nil
	case ".space":
		if len(args) != 1 {
			return fmt.Errorf(".space wants 1 argument")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return err
		}
		b.Space(int(v))
		return nil
	case ".org":
		if len(args) != 1 {
			return fmt.Errorf(".org wants 1 argument")
		}
		v, err := parseImm(args[0])
		if err != nil {
			return err
		}
		b.Org(uint32(v))
		return nil
	case "li":
		if len(args) != 2 {
			return fmt.Errorf("li wants rd, imm")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		v, err := parseImm(args[1])
		if err != nil {
			return err
		}
		b.Li(rd, uint32(v))
		return nil
	case "la":
		if len(args) != 2 {
			return fmt.Errorf("la wants rd, label")
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if !isIdent(args[1]) {
			return fmt.Errorf("bad label %q", args[1])
		}
		b.LiAddr(rd, args[1])
		return nil
	case "misr":
		if len(args) != 1 {
			return fmt.Errorf("misr wants rs")
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Misr(rs)
		return nil
	}

	op, ok := mnemonics[mn]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	return parseOp(b, op, args)
}

func parseOp(b *Builder, op isa.Op, args []string) error {
	want := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%v wants %d operands, got %d", op, n, len(args))
		}
		return nil
	}
	switch isa.FormatOf(op) {
	case isa.FmtNone:
		if err := want(0); err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op})
	case isa.FmtR:
		if err := want(3); err != nil {
			return err
		}
		rd, e1 := parseReg(args[0])
		rs1, e2 := parseReg(args[1])
		rs2, e3 := parseReg(args[2])
		if err := firstErr(e1, e2, e3); err != nil {
			return err
		}
		b.R(op, rd, rs1, rs2)
	case isa.FmtRShamt, isa.FmtI:
		if err := want(3); err != nil {
			return err
		}
		rd, e1 := parseReg(args[0])
		rs1, e2 := parseReg(args[1])
		imm, e3 := parseImm(args[2])
		if err := firstErr(e1, e2, e3); err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: int32(imm)})
	case isa.FmtLui:
		if err := want(2); err != nil {
			return err
		}
		rd, e1 := parseReg(args[0])
		imm, e2 := parseImm(args[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Imm: int32(imm)})
	case isa.FmtMem:
		if err := want(2); err != nil {
			return err
		}
		r, e1 := parseReg(args[0])
		off, base, e2 := parseMemRef(args[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		if op.IsStore() {
			b.Store(op, r, base, off)
		} else {
			b.Load(op, r, base, off)
		}
	case isa.FmtBranch:
		if err := want(3); err != nil {
			return err
		}
		rs1, e1 := parseReg(args[0])
		rs2, e2 := parseReg(args[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		if !isIdent(args[2]) {
			return fmt.Errorf("branch target must be a label, got %q", args[2])
		}
		b.Branch(op, rs1, rs2, args[2])
	case isa.FmtJump:
		if err := want(1); err != nil {
			return err
		}
		if !isIdent(args[0]) {
			return fmt.Errorf("jump target must be a label, got %q", args[0])
		}
		b.Jump(op, args[0])
	case isa.FmtJR:
		if err := want(1); err != nil {
			return err
		}
		rs, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rs1: rs})
	case isa.FmtJALR:
		if err := want(2); err != nil {
			return err
		}
		rd, e1 := parseReg(args[0])
		rs, e2 := parseReg(args[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		b.Emit(isa.Inst{Op: op, Rd: rd, Rs1: rs})
	case isa.FmtCSRR:
		if err := want(2); err != nil {
			return err
		}
		rd, e1 := parseReg(args[0])
		csr, e2 := parseCsr(args[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		b.CsrR(rd, csr)
	case isa.FmtCSRW:
		if err := want(2); err != nil {
			return err
		}
		csr, e1 := parseCsr(args[0])
		rs, e2 := parseReg(args[1])
		if err := firstErr(e1, e2); err != nil {
			return err
		}
		b.CsrW(csr, rs)
	case isa.FmtCINV:
		if err := want(1); err != nil {
			return err
		}
		sel := args[0]
		switch strings.ToLower(sel) {
		case "i":
			b.Cinv(isa.CinvI)
		case "d":
			b.Cinv(isa.CinvD)
		case "both":
			b.Cinv(isa.CinvBoth)
		default:
			v, err := parseImm(sel)
			if err != nil {
				return err
			}
			b.Cinv(int32(v))
		}
	default:
		return fmt.Errorf("unhandled format for %v", op)
	}
	return nil
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseReg(s string) (uint8, error) {
	if len(s) < 2 || (s[0] != 'r' && s[0] != 'R') {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 31 {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

func parseImm(s string) (int64, error) {
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow full-range unsigned hex like 0xdeadbeef.
		u, uerr := strconv.ParseUint(s, 0, 32)
		if uerr != nil {
			return 0, fmt.Errorf("bad immediate %q", s)
		}
		return int64(int32(u)), nil
	}
	return v, nil
}

// parseMemRef parses "off(rN)".
func parseMemRef(s string) (off int32, base uint8, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	offStr := strings.TrimSpace(s[:open])
	if offStr == "" {
		offStr = "0"
	}
	v, err := parseImm(offStr)
	if err != nil {
		return 0, 0, err
	}
	base, err = parseReg(strings.TrimSpace(s[open+1 : len(s)-1]))
	return int32(v), base, err
}

func parseCsr(s string) (int32, error) {
	if n, ok := csrNames[strings.ToLower(s)]; ok {
		return n, nil
	}
	v, err := parseImm(s)
	if err != nil {
		return 0, fmt.Errorf("bad CSR %q", s)
	}
	return int32(v), nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}
