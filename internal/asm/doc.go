// Package asm provides two ways to produce executable memory images for the
// simulated SoC: a programmatic Builder, used by the SBST routine generators
// in internal/sbst and by the wrapping strategies in internal/core, and a
// two-pass text assembler (see parser.go) for hand-written programs.
package asm
