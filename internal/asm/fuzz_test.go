package asm

import (
	"testing"

	"repro/internal/isa"
)

// FuzzParse checks the assembler never panics and that whatever it accepts
// also assembles or fails cleanly. The seeds double as a syntax smoke
// suite under plain `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"nop",
		"add r1, r2, r3",
		"lab: addi r1, r0, -5\n bne r1, r0, lab",
		"lw r1, -8(r29)\n sw r1, 0(r29)",
		"li r1, 0xffffffff\n la r2, lab\nlab: halt",
		".word 0x1234\n.align 16\n.space 8\n.org 0x100",
		"misr r3\n csrr r1, cycle\n csrw ivec, r1\n cinv both",
		"addp r2, r4, r6\n swp r2, 8(r29)\n lwp r4, 8(r29)",
		"a:b:c: nop",
		"add r1 r2 r3",      // missing commas
		"lw r1, (r29)",      // empty offset
		"beq r1, r2, 0x100", // numeric target (rejected)
		"; only a comment",
		"\t\t\n\n  \n",
		"label-with-dash: nop",
		"add r1, r2, r3 extra",
		".align 3",
		"jalr r31, r2\n jr r31\n j done\ndone: rfe",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		b, err := Parse(src)
		if err != nil {
			return // rejected cleanly
		}
		p, err := b.Assemble(0x1000)
		if err != nil {
			return // label/range errors are fine
		}
		// Accepted programs must decode or be data words; Disasm never
		// panics either way.
		for _, w := range p.Words {
			_ = isa.Disasm(w)
		}
	})
}

// FuzzEncodeDecode feeds arbitrary words to the decoder: it must never
// panic, and any successfully decoded instruction must re-encode to the
// same word (canonical encoding property).
func FuzzEncodeDecode(f *testing.F) {
	f.Add(uint32(0))
	f.Add(uint32(0xFFFFFFFF))
	f.Add(isa.MustEncode(isa.Inst{Op: isa.OpADD, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(isa.MustEncode(isa.Inst{Op: isa.OpBEQ, Rs1: 1, Rs2: 2, Imm: -4}))
	f.Add(isa.MustEncode(isa.Inst{Op: isa.OpJ, Imm: 1 << 20}))
	f.Add(isa.MustEncode(isa.Inst{Op: isa.OpLUI, Rd: 9, Imm: 0xBEEF}))
	f.Fuzz(func(t *testing.T, w uint32) {
		inst, err := isa.Decode(w)
		if err != nil {
			return
		}
		re, err := isa.Encode(inst)
		if err != nil {
			t.Fatalf("decoded %v from %#x but cannot re-encode: %v", inst, w, err)
		}
		if re != w {
			// The encoding has dead bits in some formats (e.g. unused rs2
			// field); re-decoding must at least agree on the instruction.
			inst2, err := isa.Decode(re)
			if err != nil || inst2 != inst {
				t.Fatalf("non-canonical roundtrip: %#x -> %v -> %#x -> %v",
					w, inst, re, inst2)
			}
		}
	})
}
