package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func decode(t *testing.T, w uint32) isa.Inst {
	t.Helper()
	i, err := isa.Decode(w)
	if err != nil {
		t.Fatalf("decode 0x%08x: %v", w, err)
	}
	return i
}

func TestBuilderBasicLayout(t *testing.T) {
	b := NewBuilder()
	b.Label("start")
	b.I(isa.OpADDI, 1, 0, 5)
	b.R(isa.OpADD, 2, 1, 1)
	b.Halt()
	p, err := b.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.Base != 0x1000 || len(p.Words) != 3 {
		t.Fatalf("base %x len %d", p.Base, len(p.Words))
	}
	if a, _ := p.Addr("start"); a != 0x1000 {
		t.Errorf("start at 0x%x", a)
	}
	if got := decode(t, p.Words[0]); got != (isa.Inst{Op: isa.OpADDI, Rd: 1, Imm: 5}) {
		t.Errorf("word0 = %v", got)
	}
}

func TestBuilderBranchFixup(t *testing.T) {
	b := NewBuilder()
	b.Label("top")
	b.I(isa.OpADDI, 1, 1, 1)         // 0x0
	b.Branch(isa.OpBNE, 1, 2, "top") // 0x4: offset = 0x0 - 0x8 = -8
	b.Branch(isa.OpBEQ, 1, 2, "end") // 0x8: offset = 0x10 - 0xc = +4
	b.Nop()                          // 0xc
	b.Label("end")
	b.Halt() // 0x10
	p, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if i := decode(t, p.Words[1]); i.Imm != -8 {
		t.Errorf("bne offset = %d, want -8", i.Imm)
	}
	if i := decode(t, p.Words[2]); i.Imm != 4 {
		t.Errorf("beq offset = %d, want 4", i.Imm)
	}
}

func TestBuilderLabelAtEnd(t *testing.T) {
	b := NewBuilder()
	b.Jump(isa.OpJ, "end")
	b.Label("end")
	p, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if i := decode(t, p.Words[0]); i.Imm != 0 {
		t.Errorf("jump to next inst offset = %d, want 0", i.Imm)
	}
	if a, _ := p.Addr("end"); a != 4 {
		t.Errorf("end = 0x%x, want 4", a)
	}
}

func TestBuilderAlign(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Align(16)
	b.Label("aligned")
	b.Halt()
	p, err := b.Assemble(0x100)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.Addr("aligned")
	if a != 0x110 {
		t.Errorf("aligned at 0x%x, want 0x110", a)
	}
	if len(p.Words) != 5 { // nop + 3 pad nops + halt
		t.Errorf("len = %d, want 5", len(p.Words))
	}
	for _, w := range p.Words[1:4] {
		if decode(t, w).Op != isa.OpNOP {
			t.Errorf("padding is %v, want nop", decode(t, w))
		}
	}
}

func TestBuilderLi(t *testing.T) {
	cases := []struct {
		v    uint32
		want int // instruction count
	}{
		{0, 1}, {5, 1}, {0xFFFF, 1}, {0x10000, 1}, {0xABCD0000, 1},
		{0x12345678, 2}, {0xFFFFFFFF, 2},
	}
	for _, c := range cases {
		b := NewBuilder()
		b.Li(5, c.v)
		p, err := b.Assemble(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(p.Words) != c.want {
			t.Errorf("Li(%#x) used %d instructions, want %d", c.v, len(p.Words), c.want)
		}
	}
}

func TestBuilderLiAddrResolves(t *testing.T) {
	b := NewBuilder()
	b.LiAddr(3, "data")
	b.Halt()
	b.Label("data")
	b.Word(0x12345678)
	p, err := b.Assemble(0x00040000)
	if err != nil {
		t.Fatal(err)
	}
	lui := decode(t, p.Words[0])
	ori := decode(t, p.Words[1])
	addr, _ := p.Addr("data")
	got := uint32(lui.Imm)<<16 | uint32(ori.Imm)
	if got != addr {
		t.Errorf("la materialises 0x%x, want 0x%x", got, addr)
	}
}

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder()
	b.Label("x")
	b.Label("x")
	if _, err := b.Assemble(0); err == nil {
		t.Error("duplicate label accepted")
	}
	b = NewBuilder()
	b.Jump(isa.OpJ, "nowhere")
	if _, err := b.Assemble(0); err == nil {
		t.Error("undefined label accepted")
	}
	b = NewBuilder()
	if _, err := b.Assemble(2); err == nil {
		t.Error("misaligned base accepted")
	}
	b = NewBuilder()
	b.Align(3)
	if _, err := b.Assemble(0); err == nil {
		t.Error("bad alignment accepted")
	}
}

func TestMisrExpansion(t *testing.T) {
	b := NewBuilder()
	b.Misr(9)
	p, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != MisrCost {
		t.Fatalf("misr expands to %d words, want %d", len(p.Words), MisrCost)
	}
	// sig' = rotl(sig,1) ^ r9: check op sequence.
	wantOps := []isa.Op{isa.OpSLL, isa.OpSRL, isa.OpOR, isa.OpXOR}
	for k, w := range p.Words {
		if decode(t, w).Op != wantOps[k] {
			t.Errorf("misr[%d] = %v, want %v", k, decode(t, w).Op, wantOps[k])
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	src := `
; a small but representative program
start:
    li   r1, 0x20000000     # data base
    addi r2, r0, 10
    add  r3, r2, r2
    sll  r4, r3, 2
    sw   r3, 4(r1)
    lw   r5, 4(r1)
loop:
    addi r2, r2, -1
    bne  r2, r0, loop
    csrr r6, cycle
    csrw ivec, r1
    cinv both
    misr r5
    j    end
    .align 8
table:
    .word 0xdeadbeef
end:
    halt
`
	b, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Addr("table"); err != nil {
		t.Error(err)
	}
	ta, _ := p.Addr("table")
	if ta%8 != 0 {
		t.Errorf("table not aligned: 0x%x", ta)
	}
	if p.Words[ta/4] != 0xdeadbeef {
		t.Errorf("table word = 0x%x", p.Words[ta/4])
	}
	// li of a value with zero low half must be a single lui.
	if i := decode(t, p.Words[0]); i.Op != isa.OpLUI || uint32(i.Imm) != 0x2000 {
		t.Errorf("li expanded wrong: %v", i)
	}
	// The bne at "loop"+4 must branch back 8 bytes.
	la, _ := p.Addr("loop")
	if i := decode(t, p.Words[la/4+1]); i.Op != isa.OpBNE || i.Imm != -8 {
		t.Errorf("loop branch: %v", i)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2, r3",
		"add r1, r2",
		"add r1, r2, r99",
		"lw r1, r2, r3",
		"lw r1, 4[r2]",
		"beq r1, r2, 12", // numeric branch targets unsupported
		"9lab: nop",
		"li r1",
		"csrr r1, nosuchcsr???",
		".word",
		".align x",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseCaseAndComments(t *testing.T) {
	b, err := Parse("  ADD r1, r2, r3 ; comment\n\n# full-line comment\nL1: NOP")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 2 {
		t.Fatalf("got %d words", len(p.Words))
	}
	if decode(t, p.Words[0]).Op != isa.OpADD {
		t.Error("case-insensitive mnemonic failed")
	}
}

func TestAppendTo(t *testing.T) {
	a := NewBuilder()
	a.Label("a0")
	a.Nop()
	bb := NewBuilder()
	bb.Label("b0")
	bb.Halt()
	bb.AppendTo(a) // a = [nop, halt]
	p, err := a.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Words) != 2 {
		t.Fatalf("merged len = %d", len(p.Words))
	}
	if addr, _ := p.Addr("b0"); addr != 4 {
		t.Errorf("b0 = 0x%x, want 4", addr)
	}
}

func TestSpaceAndOrg(t *testing.T) {
	b, err := Parse(`
		nop
		.space 8
	tbl:
		.word 7
		.org 0x40
	late:
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble(0)
	if err != nil {
		t.Fatal(err)
	}
	if a, _ := p.Addr("tbl"); a != 12 {
		t.Errorf("tbl = %#x, want 0xc", a)
	}
	if p.Words[1] != 0 || p.Words[2] != 0 {
		t.Error("space not zeroed")
	}
	if a, _ := p.Addr("late"); a != 0x40 {
		t.Errorf("late = %#x, want 0x40", a)
	}
	if p.Size() != 0x44 {
		t.Errorf("size = %#x", p.Size())
	}
}

func TestOrgBackwardRejected(t *testing.T) {
	b := NewBuilder()
	b.Nop()
	b.Nop()
	b.Org(4)
	if _, err := b.Assemble(0); err == nil {
		t.Error("backward .org accepted")
	}
	b2 := NewBuilder()
	b2.Space(-4)
	if _, err := b2.Assemble(0); err == nil {
		t.Error("negative .space accepted")
	}
}

func TestListing(t *testing.T) {
	b, err := Parse("start:\n addi r1, r0, 3\nend:\n halt")
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble(0x100)
	if err != nil {
		t.Fatal(err)
	}
	lst := p.Listing()
	for _, want := range []string{"start:", "end:", "00000100", "addi r1, r0, 3", "halt"} {
		if !strings.Contains(lst, want) {
			t.Errorf("listing missing %q:\n%s", want, lst)
		}
	}
}
