package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. A nil *Counter is
// the disabled mode: every method is an allocation-free no-op, so hot
// paths carry the handle unconditionally.
type Counter struct {
	n atomic.Int64
}

// Inc bumps the counter by one. Safe (and free) on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n.Add(1)
}

// Add bumps the counter by d. Safe (and free) on a nil receiver.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.n.Add(d)
}

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// Gauge is an atomic instantaneous value (corpus size, worker count,
// coverage bits). A nil *Gauge no-ops like a nil *Counter.
type Gauge struct {
	n atomic.Int64
}

// Set stores the current value. Safe (and free) on a nil receiver.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.n.Store(v)
}

// Value returns the current value (0 on a nil receiver).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.n.Load()
}

// NumHistBuckets bounds every Histogram: power-of-two buckets cover
// [0, 2^47) — for nanosecond latencies that is ~39 hours, far beyond any
// single fault run — with one overflow bucket at the top.
const NumHistBuckets = 48

// Histogram is a bounded log-scale (power-of-two buckets) histogram for
// non-negative values, typically latencies in nanoseconds. Observations
// are lock-free atomic adds; a nil *Histogram is a no-op like a nil
// *Counter. Bucket i counts values whose bit length is i, i.e. values in
// [2^(i-1), 2^i), with bucket 0 counting exact zeros and the top bucket
// absorbing overflow.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [NumHistBuckets]atomic.Int64
}

// histBucket maps a value onto its bucket index.
func histBucket(v int64) int {
	if v <= 0 {
		return 0
	}
	b := bits.Len64(uint64(v))
	if b >= NumHistBuckets {
		b = NumHistBuckets - 1
	}
	return b
}

// BucketBound returns the inclusive upper value bound of bucket i
// (2^i - 1); the top bucket is unbounded.
func BucketBound(i int) int64 {
	if i >= NumHistBuckets-1 {
		return int64(1)<<62 - 1
	}
	return int64(1)<<uint(i) - 1
}

// Observe records one value. Safe (and free) on a nil receiver.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[histBucket(v)].Add(1)
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on a nil receiver).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 with no observations or on a
// nil receiver).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// Span is one open wall-clock measurement, closed by End. The zero Span
// (from a nil Registry) is the disabled mode: End is a no-op returning 0.
type Span struct {
	h  *Histogram
	t0 time.Time
}

// End closes the span, records the elapsed nanoseconds into the span's
// histogram, and returns them (0 when disabled).
func (s Span) End() int64 {
	if s.h == nil {
		return 0
	}
	ns := time.Since(s.t0).Nanoseconds()
	s.h.Observe(ns)
	return ns
}

// metricKind tags a registered name so a name cannot silently serve two
// metric types.
type metricKind uint8

// Registered metric kinds.
const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// metric is one registry entry.
type metric struct {
	name string
	kind metricKind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry resolves metric names to live metric handles and renders them
// (Prometheus text format, JSON snapshot). Resolution registers on first
// use and returns the same handle thereafter, so arenas cloned for a
// worker pool share one set of atomics. A nil *Registry is the disabled
// mode: it resolves every name to a nil handle, whose operations no-op.
//
// Resolution takes the registry lock and may allocate; it belongs in
// construction paths, not per-event code — resolve once, keep the handle.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*metric
	ordered []*metric
}

// NewRegistry returns an empty enabled registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*metric)}
}

// resolve returns the entry for name, registering it with kind on first
// use. A name re-resolved as a different kind panics: that is a
// programming error no output format could render coherently.
func (r *Registry) resolve(name string, kind metricKind) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as a different kind", name))
		}
		return m
	}
	m := &metric{name: name, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = &Histogram{}
	}
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter returns the named counter, registering it on first use (nil on
// a nil registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	return r.resolve(name, kindCounter).c
}

// Gauge returns the named gauge, registering it on first use (nil on a
// nil registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	return r.resolve(name, kindGauge).g
}

// Histogram returns the named histogram, registering it on first use (nil
// on a nil registry).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	return r.resolve(name, kindHistogram).h
}

// StartSpan opens a named wall-clock span backed by the name's histogram.
// On a nil registry the zero Span is returned and End no-ops.
func (r *Registry) StartSpan(name string) Span {
	if r == nil {
		return Span{}
	}
	return Span{h: r.Histogram(name), t0: time.Now()}
}

// snapshotMetrics copies the ordered entry list under the lock; the
// metric values themselves are atomics and read without it.
func (r *Registry) snapshotMetrics() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.ordered))
	copy(out, r.ordered)
	return out
}

// WriteProm renders every registered metric in the Prometheus text
// exposition format (sorted by name, histograms with cumulative le
// buckets). A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	ms := r.snapshotMetrics()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		var err error
		switch m.kind {
		case kindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.c.Value())
		case kindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", m.name, m.name, m.g.Value())
		case kindHistogram:
			err = writePromHist(w, m.name, m.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writePromHist renders one histogram with cumulative buckets.
func writePromHist(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i := 0; i < NumHistBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 && i != NumHistBuckets-1 {
			continue // sparse render; cumulative counts stay correct
		}
		cum += n
		le := fmt.Sprintf("%d", BucketBound(i))
		if i == NumHistBuckets-1 {
			le = "+Inf"
			cum = h.Count() // the top line must equal _count exactly
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", name, h.Sum(), name, h.Count())
	return err
}

// HistBucket is one occupied histogram bucket in a Snapshot: N values at
// most Le.
type HistBucket struct {
	Le int64 `json:"le"`
	N  int64 `json:"n"`
}

// HistogramSnapshot is the JSON form of one histogram: totals plus the
// occupied (non-cumulative) buckets.
type HistogramSnapshot struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Mean    float64      `json:"mean"`
	Buckets []HistBucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of every registered metric, the
// machine-readable payload of a campaign run-summary JSON.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered metric. A nil
// registry yields the zero Snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	for _, m := range r.snapshotMetrics() {
		switch m.kind {
		case kindCounter:
			if s.Counters == nil {
				s.Counters = make(map[string]int64)
			}
			s.Counters[m.name] = m.c.Value()
		case kindGauge:
			if s.Gauges == nil {
				s.Gauges = make(map[string]int64)
			}
			s.Gauges[m.name] = m.g.Value()
		case kindHistogram:
			if s.Histograms == nil {
				s.Histograms = make(map[string]HistogramSnapshot)
			}
			hs := HistogramSnapshot{Count: m.h.Count(), Sum: m.h.Sum(), Mean: m.h.Mean()}
			for i := 0; i < NumHistBuckets; i++ {
				if n := m.h.buckets[i].Load(); n > 0 {
					hs.Buckets = append(hs.Buckets, HistBucket{Le: BucketBound(i), N: n})
				}
			}
			s.Histograms[m.name] = hs
		}
	}
	return s
}
