package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Event kinds of the campaign event stream. DecodeEvents rejects anything
// else, so the set doubles as the stream's schema version: extending it is
// a deliberate, test-visible change.
const (
	// EventStart opens a campaign: universe size, worker count.
	EventStart = "start"
	// EventProgress is one periodic progress sample: settled count, rate,
	// ETA.
	EventProgress = "progress"
	// EventSite records one settled site verdict.
	EventSite = "site"
	// EventQuarantine records a worker arena failing its health check and
	// being rebuilt (or dying).
	EventQuarantine = "quarantine"
	// EventSpan records one closed named wall-clock span (experiments
	// table sweeps).
	EventSpan = "span"
	// EventFinish closes a campaign: totals and wall time.
	EventFinish = "finish"
)

// Event is one line of the JSONL campaign event stream. Kind selects the
// meaningful fields; everything else stays at its zero value and is
// omitted from the encoding. The schema is pinned by the round-trip test
// in events_test.go, and DecodeEvents (which CI runs over real streams)
// rejects unknown kinds and unknown fields.
type Event struct {
	// Kind is one of the Event* constants.
	Kind string `json:"kind"`
	// T is the wall-clock timestamp in Unix nanoseconds (stamped by Emit
	// when zero).
	T int64 `json:"t,omitempty"`

	// Sites is the universe size (start, finish).
	Sites int `json:"sites,omitempty"`
	// Workers is the worker-pool size (start).
	Workers int `json:"workers,omitempty"`

	// Index is the settled site's index in the universe (site).
	Index int `json:"i,omitempty"`
	// Site is the rendered site name (site).
	Site string `json:"site,omitempty"`
	// Sig is the settled signature (site).
	Sig uint32 `json:"sig,omitempty"`
	// Detected marks a detected verdict (site).
	Detected bool `json:"detected,omitempty"`
	// Crashed marks a wedged or timed-out run (site).
	Crashed bool `json:"crashed,omitempty"`
	// Panicked marks a verdict settled at the recover boundary (site).
	Panicked bool `json:"panicked,omitempty"`
	// FromJournal marks a verdict folded in from a resumed journal rather
	// than re-run (site).
	FromJournal bool `json:"journal,omitempty"`

	// Settled is the number of settled sites so far (progress) or total
	// (finish).
	Settled int64 `json:"settled,omitempty"`
	// DetectedTotal is the running detected count (progress, finish).
	DetectedTotal int64 `json:"detected_total,omitempty"`
	// Rate is the settle rate in sites/second (progress).
	Rate float64 `json:"rate,omitempty"`
	// ETANs estimates the remaining campaign time in nanoseconds
	// (progress).
	ETANs int64 `json:"eta_ns,omitempty"`
	// ElapsedNs is wall time since the campaign or span start (progress,
	// span, finish).
	ElapsedNs int64 `json:"elapsed_ns,omitempty"`

	// Core is the arena's core under test (quarantine).
	Core int `json:"core,omitempty"`
	// Dead marks a quarantine whose rebuild failed (quarantine).
	Dead bool `json:"dead,omitempty"`

	// Name is the span name (span).
	Name string `json:"name,omitempty"`
}

// knownKinds is the decode-side schema gate.
var knownKinds = map[string]bool{
	EventStart: true, EventProgress: true, EventSite: true,
	EventQuarantine: true, EventSpan: true, EventFinish: true,
}

// EventLog is an append-only JSONL event sink, safe for concurrent Emit
// from campaign workers. A nil *EventLog is the disabled mode: Emit
// no-ops, so instrumented code passes the handle through unconditionally.
type EventLog struct {
	mu  sync.Mutex
	w   io.Writer
	err error
}

// NewEventLog wraps w (typically an os.File the caller owns and closes)
// as an event sink.
func NewEventLog(w io.Writer) *EventLog {
	return &EventLog{w: w}
}

// Emit appends one event line, stamping T with the current wall clock
// when unset. Write errors are sticky and reported by Err — an
// observability stream must never abort the campaign it watches.
func (l *EventLog) Emit(e Event) {
	if l == nil {
		return
	}
	if e.T == 0 {
		e.T = time.Now().UnixNano()
	}
	blob, err := json.Marshal(e)
	if err != nil {
		l.setErr(err)
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return
	}
	if _, err := l.w.Write(append(blob, '\n')); err != nil {
		l.err = err
	}
}

// setErr records the first error.
func (l *EventLog) setErr(err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		l.err = err
	}
}

// Err returns the first write or encode error (nil on a nil receiver).
func (l *EventLog) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// DecodeEvents parses a JSONL event stream strictly: every line must be a
// well-formed Event with a known kind and no unknown fields. It is the
// schema validator the round-trip test and the CI smoke leg share.
func DecodeEvents(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var e Event
		if err := dec.Decode(&e); err != nil {
			return nil, fmt.Errorf("telemetry: events line %d: %w", line, err)
		}
		if !knownKinds[e.Kind] {
			return nil, fmt.Errorf("telemetry: events line %d: unknown kind %q", line, e.Kind)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("telemetry: events: %w", err)
	}
	return out, nil
}

// CountKind returns how many events of the given kind the slice holds —
// the one-line query CI's stream validation and the schema tests use.
func CountKind(events []Event, kind string) int {
	n := 0
	for _, e := range events {
		if e.Kind == kind {
			n++
		}
	}
	return n
}
