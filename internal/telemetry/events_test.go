package telemetry

import (
	"bytes"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// TestEventSchemaRoundTrip pins the event stream schema: one fully
// populated event of every kind encodes through an EventLog and decodes
// back bit-identically via DecodeEvents — the same decoder the CI smoke
// leg runs over real faultsim streams.
func TestEventSchemaRoundTrip(t *testing.T) {
	events := []Event{
		{Kind: EventStart, T: 10, Sites: 96, Workers: 4},
		{Kind: EventProgress, T: 20, Settled: 40, DetectedTotal: 31,
			Rate: 12.5, ETANs: 4_480_000_000, ElapsedNs: 3_200_000_000},
		{Kind: EventSite, T: 30, Index: 7, Site: "fwd/EX-MEM.l0.a bit3 SA1",
			Sig: 0xdeadbeef, Detected: true, Crashed: true, Panicked: true,
			FromJournal: true},
		{Kind: EventQuarantine, T: 40, Core: 2, Dead: true},
		{Kind: EventSpan, T: 50, Name: "table2_coreA", ElapsedNs: 900},
		{Kind: EventFinish, T: 60, Sites: 96, Settled: 96, DetectedTotal: 80,
			ElapsedNs: 7_000_000_000},
	}
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	for _, e := range events {
		l.Emit(e)
	}
	if err := l.Err(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, events) {
		t.Fatalf("round trip changed the events:\n got %+v\nwant %+v", got, events)
	}
	if CountKind(got, EventSite) != 1 || CountKind(got, EventProgress) != 1 {
		t.Fatal("CountKind miscounts")
	}
}

func TestEmitStampsTime(t *testing.T) {
	var buf bytes.Buffer
	NewEventLog(&buf).Emit(Event{Kind: EventStart})
	got, err := DecodeEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].T == 0 {
		t.Fatalf("Emit must stamp T: %+v", got)
	}
}

func TestDecodeRejectsUnknownKind(t *testing.T) {
	if _, err := DecodeEvents(strings.NewReader(`{"kind":"mystery"}`)); err == nil {
		t.Fatal("unknown kind must fail decoding")
	}
}

func TestDecodeRejectsUnknownField(t *testing.T) {
	if _, err := DecodeEvents(strings.NewReader(`{"kind":"start","bogus":1}`)); err == nil {
		t.Fatal("unknown field must fail decoding")
	}
}

func TestDecodeRejectsGarbageLine(t *testing.T) {
	in := `{"kind":"start"}` + "\nnot json\n"
	if _, err := DecodeEvents(strings.NewReader(in)); err == nil {
		t.Fatal("malformed line must fail decoding")
	}
}

func TestDecodeSkipsBlankLines(t *testing.T) {
	in := "\n" + `{"kind":"start"}` + "\n\n" + `{"kind":"finish"}` + "\n"
	got, err := DecodeEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("decoded %d events, want 2", len(got))
	}
}

// TestEventLogConcurrentEmit exercises the worker-pool pattern: many
// goroutines emitting into one log must interleave whole lines only.
func TestEventLogConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	l := NewEventLog(&buf)
	const workers, each = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Emit(Event{Kind: EventSite, Index: w*each + i})
			}
		}(w)
	}
	wg.Wait()
	got, err := DecodeEvents(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*each {
		t.Fatalf("decoded %d events, want %d", len(got), workers*each)
	}
}
