package telemetry

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the HTTP surface a campaign process exposes: /metrics
// in the Prometheus text exposition format over the registry, and the
// standard net/http/pprof tree under /debug/pprof/. This is the exact mux
// the planned cmd/faultserve workers will mount; Serve wraps it for the
// CLI tools' -telemetry flag.
func Handler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WriteProm(w)
	})
	// pprof's init only registers on http.DefaultServeMux; wire the
	// handlers into our private mux explicitly.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprintln(w, "telemetry: /metrics, /debug/pprof/")
	})
	return mux
}

// Server is a running telemetry HTTP listener.
type Server struct {
	reg *Registry
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry endpoint on addr (":0" picks a free port;
// the resolved address is Addr). The listener runs on its own goroutine
// until Close.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, ln: ln, srv: &http.Server{Handler: Handler(reg)}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the resolved listen address (host:port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
