// Package telemetry is the campaign observability substrate: atomic
// counters and gauges, bounded log-scale latency histograms, named
// wall-clock spans, a structured JSONL event stream, a periodic progress
// ticker, and an HTTP endpoint serving Prometheus-style /metrics plus
// net/http/pprof — all stdlib-only.
//
// The package extends the contract internal/coverage proved for its nil
// *Map: nil receiver = disabled = zero cost. A nil *Registry hands out nil
// *Counter/*Gauge/*Histogram handles and zero Spans; every operation on
// those is an allocation-free no-op, so instrumented hot paths (arena
// runs, campaign workers, fuzz loops) carry the handles unconditionally
// and pay only a nil check when telemetry is detached. The disabled path
// is pinned by TestDetachedZeroCost and the root
// BenchmarkCampaignTelemetryOverhead guard.
//
// All live metrics are updated with sync/atomic operations, so worker
// arenas on separate goroutines share one Registry without locks on the
// hot path; the Registry's own map is only locked at handle-resolution
// time (campaign construction), never per event.
package telemetry
