package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c_total") != c {
		t.Fatal("re-resolving a name must return the same handle")
	}
	g := r.Gauge("g")
	g.Set(7)
	g.Set(3)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %d, want 3", got)
	}
	h := r.Histogram("h_ns")
	for _, v := range []int64{0, 1, 2, 3, 1000, 1 << 60} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("hist count = %d, want 6", h.Count())
	}
	if h.Sum() != 0+1+2+3+1000+1<<60 {
		t.Fatalf("hist sum = %d", h.Sum())
	}
	if h.Mean() <= 0 {
		t.Fatalf("hist mean = %f", h.Mean())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("resolving a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x")
}

// TestDetachedZeroCost pins the disabled mode the same way the coverage
// package pins its nil map: every operation on handles from a nil
// Registry (and the zero Span) must be a no-op and allocation-free, so a
// campaign with telemetry detached pays only nil checks.
func TestDetachedZeroCost(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	sp := r.StartSpan("s")
	var l *EventLog
	var tk *Ticker
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil handles")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(9)
		h.Observe(42)
		sp.End()
		l.Emit(Event{Kind: EventSite})
		tk.Stop()
		_ = c.Value() + g.Value() + h.Count() + h.Sum()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocated %.1f per op, want 0", allocs)
	}
	if r.Snapshot().Counters != nil {
		t.Fatal("nil registry snapshot must be zero")
	}
	if err := r.WriteProm(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentUpdates hammers shared metrics from many goroutines — the
// worker-arena sharing pattern — and checks exact totals. Run under
// -race in CI, this is the data-race gate for the atomic hot path.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, each = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Resolution races with other resolutions and with updates;
			// all workers must land on the same handles.
			c := r.Counter("shared_total")
			h := r.Histogram("shared_ns")
			g := r.Gauge("shared_gauge")
			for i := 0; i < each; i++ {
				c.Inc()
				h.Observe(int64(i))
				g.Set(int64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	if got := r.Histogram("shared_ns").Count(); got != workers*each {
		t.Fatalf("hist count = %d, want %d", got, workers*each)
	}
}

func TestWriteProm(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Add(2)
	r.Gauge("a_gauge").Set(-4)
	h := r.Histogram("lat_ns")
	h.Observe(0)
	h.Observe(5) // bucket le 7
	var sb strings.Builder
	if err := r.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE a_gauge gauge\na_gauge -4\n",
		"# TYPE b_total counter\nb_total 2\n",
		"# TYPE lat_ns histogram\n",
		`lat_ns_bucket{le="0"} 1`,
		`lat_ns_bucket{le="7"} 2`,
		`lat_ns_bucket{le="+Inf"} 2`,
		"lat_ns_sum 5\nlat_ns_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: the gauge must render before the counter.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Errorf("prom output not name-sorted:\n%s", out)
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Gauge("g").Set(11)
	r.Histogram("h_ns").Observe(100)
	s := r.Snapshot()
	if s.Counters["c_total"] != 3 || s.Gauges["g"] != 11 {
		t.Fatalf("snapshot = %+v", s)
	}
	hs := s.Histograms["h_ns"]
	if hs.Count != 1 || hs.Sum != 100 || len(hs.Buckets) != 1 || hs.Buckets[0].N != 1 {
		t.Fatalf("hist snapshot = %+v", hs)
	}
	if hs.Buckets[0].Le < 100 {
		t.Fatalf("bucket bound %d below observed value", hs.Buckets[0].Le)
	}
}

func TestServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("arena_dispatch_full_replay_total").Add(9)
	s, err := Serve("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	get := func(path string) string {
		resp, err := http.Get("http://" + s.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(blob)
	}
	if out := get("/metrics"); !strings.Contains(out, "arena_dispatch_full_replay_total 9") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/pprof/"); !strings.Contains(out, "goroutine") {
		t.Errorf("/debug/pprof/ index unexpected:\n%s", out)
	}
}

func TestHistBucketBounds(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 3, 7, 8, 1023, 1 << 46, 1 << 62} {
		b := histBucket(v)
		if v > BucketBound(b) && b != NumHistBuckets-1 {
			t.Errorf("value %d above its bucket %d bound %d", v, b, BucketBound(b))
		}
		if b > 0 && b < NumHistBuckets-1 && v <= BucketBound(b-1) {
			t.Errorf("value %d fits bucket %d already", v, b-1)
		}
	}
}

func TestStartTickerDisabled(t *testing.T) {
	if StartTicker(0, func() {}) != nil {
		t.Fatal("interval 0 must disable the ticker")
	}
	if StartTicker(1, nil) != nil {
		t.Fatal("nil tick must disable the ticker")
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("work_ns")
	if ns := sp.End(); ns < 0 {
		t.Fatalf("span ns = %d", ns)
	}
	if got := r.Histogram("work_ns").Count(); got != 1 {
		t.Fatalf("span histogram count = %d, want 1", got)
	}
}

func TestEventLogErrSticky(t *testing.T) {
	l := NewEventLog(failWriter{})
	l.Emit(Event{Kind: EventStart})
	if l.Err() == nil {
		t.Fatal("write failure must surface via Err")
	}
	l.Emit(Event{Kind: EventFinish}) // must not panic after the error
}

// failWriter always fails, for the sticky-error test.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("boom") }
