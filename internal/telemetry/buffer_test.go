package telemetry

import (
	"testing"
	"time"
)

func TestEventBufferReplayThenFollow(t *testing.T) {
	b := NewEventBuffer()
	b.Emit(Event{Kind: EventStart, Sites: 4})
	b.Emit(Event{Kind: EventSite, Index: 0})

	// Replay: a late reader sees the full prefix immediately.
	batch, open := b.Next(0, nil)
	if len(batch) != 2 || !open {
		t.Fatalf("replay: got %d events, open=%v; want 2, true", len(batch), open)
	}
	if batch[0].Kind != EventStart || batch[1].Kind != EventSite {
		t.Fatalf("replay order wrong: %+v", batch)
	}

	// Follow: a reader past the end blocks until the next emit.
	got := make(chan []Event, 1)
	go func() {
		e, _ := b.Next(2, nil)
		got <- e
	}()
	select {
	case e := <-got:
		t.Fatalf("Next returned %v before an emit", e)
	case <-time.After(10 * time.Millisecond):
	}
	b.Emit(Event{Kind: EventSite, Index: 1})
	select {
	case e := <-got:
		if len(e) != 1 || e[0].Index != 1 {
			t.Fatalf("follow batch = %+v", e)
		}
	case <-time.After(time.Second):
		t.Fatal("follower never woke")
	}

	// Close: drained followers stop with open=false.
	b.Close()
	batch, open = b.Next(3, nil)
	if len(batch) != 0 || open {
		t.Fatalf("after close: batch=%v open=%v; want empty, false", batch, open)
	}
	// A reader behind the end still drains the tail after Close.
	batch, open = b.Next(1, nil)
	if len(batch) != 2 || open {
		t.Fatalf("drain after close: got %d events, open=%v; want 2, false", len(batch), open)
	}
	// Emits after Close are dropped.
	b.Emit(Event{Kind: EventFinish})
	if b.Len() != 3 {
		t.Fatalf("Len after post-close emit = %d, want 3", b.Len())
	}
}

func TestEventBufferCancel(t *testing.T) {
	b := NewEventBuffer()
	cancel := make(chan struct{})
	done := make(chan struct{})
	go func() {
		batch, open := b.Next(0, cancel)
		if len(batch) != 0 || !open {
			t.Errorf("canceled Next = %v, %v; want empty, true", batch, open)
		}
		close(done)
	}()
	close(cancel)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Next did not unblock on cancel")
	}
}

func TestEventBufferNilReceiver(t *testing.T) {
	var b *EventBuffer
	b.Emit(Event{Kind: EventStart})
	b.Close()
	if b.Len() != 0 || b.Events() != nil {
		t.Fatal("nil buffer is not empty")
	}
}
