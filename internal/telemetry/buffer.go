package telemetry

import (
	"sync"
	"time"
)

// EventBuffer is an in-memory event sink with replay-then-follow
// semantics: events append in order, and any number of readers can replay
// the prefix they missed and then block for new events. It is the
// buffering layer a campaign service puts between the verdict stream and
// its HTTP event endpoints — each connecting client replays the settled
// history and follows live from there. A nil *EventBuffer is the disabled
// mode: Emit and Close no-op, mirroring the nil *EventLog contract.
type EventBuffer struct {
	mu      sync.Mutex
	events  []Event
	closed  bool
	changed chan struct{} // closed and replaced on every append/Close
}

// NewEventBuffer returns an empty open buffer.
func NewEventBuffer() *EventBuffer {
	return &EventBuffer{changed: make(chan struct{})}
}

// Emit appends one event, stamping T with the current wall clock when
// unset. Events emitted after Close are dropped. Safe (and free) on a nil
// receiver.
func (b *EventBuffer) Emit(e Event) {
	if b == nil {
		return
	}
	if e.T == 0 {
		e.T = time.Now().UnixNano()
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.events = append(b.events, e)
	b.wake()
}

// Close ends the stream: followers drain the remaining events and stop.
// Idempotent, and safe on a nil receiver.
func (b *EventBuffer) Close() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	b.closed = true
	b.wake()
}

// wake broadcasts to every blocked Next. Callers hold b.mu.
func (b *EventBuffer) wake() {
	close(b.changed)
	b.changed = make(chan struct{})
}

// Len returns the number of buffered events (0 on a nil receiver).
func (b *EventBuffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.events)
}

// Events returns a snapshot copy of the full event history.
func (b *EventBuffer) Events() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, len(b.events))
	copy(out, b.events)
	return out
}

// Next returns a copy of the events past index from, blocking while there
// are none, the buffer is open, and cancel has not fired. open reports
// whether the stream may still grow; a drained reader stops on an empty
// batch with open == false. A fired cancel returns the available batch
// (possibly empty) immediately — the caller owns checking its own cancel
// signal, Next only unblocks on it.
func (b *EventBuffer) Next(from int, cancel <-chan struct{}) (batch []Event, open bool) {
	for {
		b.mu.Lock()
		if len(b.events) > from || b.closed {
			batch = make([]Event, len(b.events)-from)
			copy(batch, b.events[from:])
			open = !b.closed
			b.mu.Unlock()
			return batch, open
		}
		ch := b.changed
		b.mu.Unlock()
		select {
		case <-ch:
		case <-cancel:
			return nil, true
		}
	}
}
