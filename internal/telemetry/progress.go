package telemetry

import (
	"sync"
	"time"
)

// Ticker periodically invokes a render callback on its own goroutine — the
// engine behind the -progress flags. The callback must read only atomic
// state (Registry handles), since it runs concurrently with the campaign
// it watches. A nil *Ticker (from a disabled StartTicker) is a no-op.
type Ticker struct {
	stop chan struct{}
	done chan struct{}
	once sync.Once
	tick func()
}

// StartTicker runs tick every interval until Stop. A non-positive
// interval or nil tick returns nil, on which Stop is a safe no-op — the
// disabled mode of the -progress flag.
func StartTicker(every time.Duration, tick func()) *Ticker {
	if every <= 0 || tick == nil {
		return nil
	}
	t := &Ticker{stop: make(chan struct{}), done: make(chan struct{}), tick: tick}
	go func() {
		defer close(t.done)
		tk := time.NewTicker(every)
		defer tk.Stop()
		for {
			select {
			case <-tk.C:
				tick()
			case <-t.stop:
				return
			}
		}
	}()
	return t
}

// Stop halts the ticker, waits for any in-flight tick to finish, then
// renders one final tick — so even a run shorter than the interval ends
// with a closing progress line. Safe on a nil receiver and idempotent
// (the final tick renders only once).
func (t *Ticker) Stop() {
	if t == nil {
		return
	}
	final := false
	t.once.Do(func() {
		close(t.stop)
		final = true
	})
	<-t.done
	if final {
		t.tick()
	}
}
