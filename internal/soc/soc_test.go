package soc

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/bus"
	"repro/internal/isa"
	"repro/internal/mem"
)

func loadAndStart(t *testing.T, s *SoC, id int, src string, base uint32) *asm.Program {
	t.Helper()
	b, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p, err := b.Assemble(base)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Load(p); err != nil {
		t.Fatal(err)
	}
	s.Start(id, p.Base)
	return p
}

func TestSingleCoreRunsToCompletion(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores[1].Active = false
	cfg.Cores[2].Active = false
	s := New(cfg)
	loadAndStart(t, s, 0, `
		addi r1, r0, 21
		add  r2, r1, r1
		halt
	`, CodeLow)
	res := s.Run(100_000)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	if got := s.Cores[0].Core.Reg(2); got != 42 {
		t.Errorf("r2 = %d", got)
	}
}

func TestThreeCoresIndependentPrograms(t *testing.T) {
	cfg := DefaultConfig()
	s := New(cfg)
	for id := 0; id < NumCores; id++ {
		loadAndStart(t, s, id, `
			csrr r1, coreid
			addi r2, r1, 100
			halt
		`, CodeLow+uint32(id)*0x1000)
	}
	res := s.Run(200_000)
	if res.TimedOut {
		t.Fatal("timed out")
	}
	for id := 0; id < NumCores; id++ {
		if got := s.Cores[id].Core.Reg(2); got != uint32(100+id) {
			t.Errorf("core %d: r2 = %d", id, got)
		}
	}
}

func TestSRAMSharingThroughUncachedAlias(t *testing.T) {
	// Core 0 writes a flag through the uncached alias; core 1 spins on it.
	cfg := DefaultConfig()
	cfg.Cores[2].Active = false
	cfg.Cores[0].CachesOn = true
	cfg.Cores[1].CachesOn = true
	cfg.Cores[0].WriteAlloc = true
	cfg.Cores[1].WriteAlloc = true
	s := New(cfg)
	loadAndStart(t, s, 0, `
		li   r1, 0x28000100   ; uncached alias
		addi r2, r0, 7
		; burn some time first
		addi r3, r0, 50
	delay:
		addi r3, r3, -1
		bne  r3, r0, delay
		sw   r2, 0(r1)
		halt
	`, CodeLow)
	loadAndStart(t, s, 1, `
		li   r1, 0x28000100
	spin:
		lw   r2, 0(r1)
		beq  r2, r0, spin
		halt
	`, CodeLow+0x2000)
	res := s.Run(500_000)
	if res.TimedOut {
		t.Fatal("spin never satisfied: uncached alias broken")
	}
	if got := s.Cores[1].Core.Reg(2); got != 7 {
		t.Errorf("flag = %d", got)
	}
	if got := mem.ReadWord(s.SRAM, 0x100); got != 7 {
		t.Errorf("SRAM backing = %d", got)
	}
}

func TestTCMPrivacy(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores[2].Active = false
	s := New(cfg)
	// Core 0 writes its own DTCM; core 1 reads the same offset of its own.
	loadAndStart(t, s, 0, `
		li r1, 0x30000000
		addi r2, r0, 99
		sw r2, 16(r1)
		halt
	`, CodeLow)
	loadAndStart(t, s, 1, `
		li r1, 0x30010000
		lw r2, 16(r1)
		halt
	`, CodeLow+0x2000)
	if res := s.Run(100_000); res.TimedOut {
		t.Fatal("timeout")
	}
	if got := s.Cores[1].Core.Reg(2); got == 99 {
		t.Error("core 1 observed core 0's DTCM contents")
	}
	if got := mem.ReadWord(s.Cores[0].DTCM, 16); got != 99 {
		t.Errorf("core 0 DTCM = %d", got)
	}
}

func TestCinvInvalidatesCaches(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores[0].CachesOn = true
	cfg.Cores[0].WriteAlloc = true
	cfg.Cores[1].Active = false
	cfg.Cores[2].Active = false
	s := New(cfg)
	loadAndStart(t, s, 0, `
		li r1, 0x20000040
		lw r2, 0(r1)     ; pull a line into the D-cache
		cinv both
		halt
	`, CodeLow)
	if res := s.Run(100_000); res.TimedOut {
		t.Fatal("timeout")
	}
	if n := s.Cores[0].DCache.ResidentLines(); n != 0 {
		t.Errorf("%d lines survived cinv", n)
	}
	if n := s.Cores[0].ICache.ResidentLines(); n != 0 {
		t.Errorf("%d I-lines survived cinv", n)
	}
	if s.Cores[0].ICache.Stats().Invalidates == 0 {
		t.Error("invalidate not recorded")
	}
}

func TestExecuteFromITCM(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores[1].Active = false
	cfg.Cores[2].Active = false
	s := New(cfg)
	// Hand-place a tiny program in the ITCM: addi r5, r0, 77; jr r31.
	itcm := s.Cores[0].ITCM
	mem.WriteWord(itcm, 0, isa.MustEncode(isa.Inst{Op: isa.OpADDI, Rd: 5, Imm: 77}))
	mem.WriteWord(itcm, 4, isa.MustEncode(isa.Inst{Op: isa.OpJR, Rs1: 31}))
	loadAndStart(t, s, 0, `
		li   r2, 0x34000000
		jalr r31, r2
		halt
	`, CodeLow)
	if res := s.Run(100_000); res.TimedOut {
		t.Fatal("timeout")
	}
	if got := s.Cores[0].Core.Reg(5); got != 77 {
		t.Errorf("r5 = %d; ITCM execution failed", got)
	}
}

func TestStartDelayHoldsCore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores[1].Active = false
	cfg.Cores[2].Active = false
	cfg.Cores[0].StartDelay = 50
	s := New(cfg)
	loadAndStart(t, s, 0, "halt", CodeLow)
	res := s.Run(100_000)
	if res.Cycles <= 50 {
		t.Errorf("core finished in %d cycles despite 50-cycle hold", res.Cycles)
	}
}

func TestDeterminismAcrossIdenticalSoCs(t *testing.T) {
	build := func() int64 {
		cfg := DefaultConfig()
		s := New(cfg)
		for id := 0; id < NumCores; id++ {
			loadAndStart(t, s, id, `
				li   r29, 0x20001000
				addi r1, r0, 40
			loop:
				sw   r1, 0(r29)
				lw   r2, 0(r29)
				addi r1, r1, -1
				bne  r1, r0, loop
				halt
			`, CodeLow+uint32(id)*0x1000)
		}
		res := s.Run(1_000_000)
		if res.TimedOut {
			t.Fatal("timeout")
		}
		return res.Cycles
	}
	if a, b := build(), build(); a != b {
		t.Errorf("identical SoCs diverged: %d vs %d cycles", a, b)
	}
}

func TestBusContentionVisibleInStats(t *testing.T) {
	run := func(n int) float64 {
		cfg := DefaultConfig()
		for id := 0; id < NumCores; id++ {
			cfg.Cores[id].Active = id < n
		}
		s := New(cfg)
		for id := 0; id < n; id++ {
			loadAndStart(t, s, id, `
				addi r1, r0, 200
			loop:
				addi r1, r1, -1
				bne  r1, r0, loop
				halt
			`, CodeLow+uint32(id)*0x1000)
		}
		if res := s.Run(2_000_000); res.TimedOut {
			t.Fatal("timeout")
		}
		return s.Bus.Utilization()
	}
	u1, u3 := run(1), run(3)
	if u3 <= u1 {
		t.Errorf("bus utilization did not grow with cores: %f vs %f", u1, u3)
	}
}

func TestLoadRejectsOutsideFlash(t *testing.T) {
	s := New(DefaultConfig())
	b, _ := asm.Parse("halt")
	p, _ := b.Assemble(0x4000_0000) // not a flash address
	if err := s.Load(p); err == nil {
		t.Error("out-of-flash load accepted")
	}
}

func TestActiveCountAndCycle(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores[2].Active = false
	s := New(cfg)
	if s.ActiveCount() != 2 {
		t.Errorf("ActiveCount = %d", s.ActiveCount())
	}
	loadAndStart(t, s, 0, "halt", CodeLow)
	s.Run(1000)
	if s.Cycle() == 0 {
		t.Error("cycle counter did not advance")
	}
}

func TestAttachRecorderCapturesOtherCores(t *testing.T) {
	cfg := DefaultConfig()
	s := New(cfg)
	rec := s.AttachRecorder(0)
	for id := 0; id < NumCores; id++ {
		loadAndStart(t, s, id, `
			li r1, 0x20004000
			lw r2, 0(r1)
			halt
		`, CodeLow+uint32(id)*0x1000)
	}
	if res := s.Run(100_000); res.TimedOut {
		t.Fatal("timeout")
	}
	ev := rec.Events()
	if len(ev) == 0 {
		t.Fatal("nothing recorded")
	}
	for _, e := range ev {
		if e.Master == 0 || e.Master == 1 {
			t.Fatalf("recorded the excluded core's master %d", e.Master)
		}
	}
	byMaster := rec.EventsByMaster()
	if len(byMaster) < 2 {
		t.Errorf("expected several source masters, got %d", len(byMaster))
	}
}

func TestReplayMastersProduceContention(t *testing.T) {
	// Record two cores' traffic, then replay it against a single core and
	// verify the bus sees comparable pressure. The workload is
	// straight-line so fetch pressure maps directly onto IF stalls (with
	// taken branches, contention can even *reduce* stalls by letting
	// wrong-path prefetches be cancelled while still queued).
	body := strings.Repeat("addi r1, r1, 1\n", 240) + "halt\n"
	cfg := DefaultConfig()
	s := New(cfg)
	rec := s.AttachRecorder(0)
	for id := 0; id < NumCores; id++ {
		loadAndStart(t, s, id, body, CodeLow+uint32(id)*0x1000)
	}
	if res := s.Run(2_000_000); res.TimedOut {
		t.Fatal("timeout")
	}
	fullStall := s.Cores[0].Core.Counter(2) // IF stalls

	run1 := func(replay [][]bus.TrafficEvent) uint64 {
		c := DefaultConfig()
		c.Cores[1].Active = false
		c.Cores[2].Active = false
		c.Replay = replay
		s := New(c)
		loadAndStart(t, s, 0, body, CodeLow)
		if res := s.Run(2_000_000); res.TimedOut {
			t.Fatal("timeout")
		}
		return s.Cores[0].Core.Counter(2)
	}
	replayStall := run1(rec.EventsByMaster())
	soloStall := run1(nil)

	if replayStall <= soloStall {
		t.Errorf("replay produced no contention: replay=%d solo=%d", replayStall, soloStall)
	}
	// Within a factor of two of the genuine three-core pressure.
	if replayStall*2 < fullStall || replayStall > fullStall*2 {
		t.Errorf("replay pressure %d far from full-system %d", replayStall, fullStall)
	}
}
