package soc

import (
	"fmt"
	"sort"

	"repro/internal/archint"
	"repro/internal/asm"
	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/coverage"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/mem"
)

// NumCores is the core count of the modelled device.
const NumCores = 3

// DefaultFlashBankLatencies gives the flash wait states per 256 KiB bank;
// the paper reports 8 cycles per issue-packet fetch, with the "code
// position" scenario knob exposing small bank-to-bank differences.
func DefaultFlashBankLatencies() []int { return []int{8, 9, 10, 9} }

// Code placement bases used by the Table II scenarios.
const (
	CodeLow  = 0x0000_1000
	CodeMid  = 0x0004_0000 // bank 1: one extra wait state
	CodeHigh = 0x000A_0000 // bank 2: two extra wait states
)

// CoreSetup configures one core slot.
type CoreSetup struct {
	CPU        cpu.Config
	Active     bool
	CachesOn   bool        // private I/D caches enabled
	WriteAlloc bool        // D-cache write-allocate (paper's setting: true)
	Plane      fault.Plane // nil = fault-free
	StartDelay int         // cycles to hold the core in reset (start phase)
}

// Config configures the SoC.
type Config struct {
	Arbitration bus.Arbitration
	FlashBanks  []int // per-bank latencies; nil = DefaultFlashBankLatencies
	SRAMLatency int   // 0 = default (2)
	Cores       [NumCores]CoreSetup
	// Replay attaches background bus traffic (recorded from a full run)
	// to dedicated replay masters, one per recorded source master; used by
	// the fault simulator so that a single simulated core experiences
	// three-core bus contention without simulating the other cores.
	Replay [][]bus.TrafficEvent
}

// DefaultConfig returns a triple-core configuration with all cores active
// and caches off (the paper's baseline).
func DefaultConfig() Config {
	var cfg Config
	cfg.Cores[0] = CoreSetup{CPU: cpu.CoreA(), Active: true}
	cfg.Cores[1] = CoreSetup{CPU: cpu.CoreB(), Active: true}
	cfg.Cores[2] = CoreSetup{CPU: cpu.CoreC(), Active: true}
	return cfg
}

// CoreUnit is one assembled core with its private memories.
type CoreUnit struct {
	Core   *cpu.Core
	ICache *cache.Cache // nil when caches disabled
	DCache *cache.Cache
	ITCM   *mem.TCM
	DTCM   *mem.TCM

	setup   CoreSetup
	imem    *router
	dmem    *router
	started bool
}

// SoC is the assembled system.
type SoC struct {
	Bus   *bus.Bus
	Flash *mem.Flash
	SRAM  *mem.RAM
	Cores [NumCores]*CoreUnit

	replayers []*bus.Replayer
	running   []*CoreUnit // active started cores, in core-ID order
	cycle     int64

	// Sealed baseline images restored by Reset (nil until SealBaseline):
	// SRAM plus each core's TCMs. Flash needs no image — it is read-only
	// from the bus, so the loaded program survives every run.
	baseSRAM []byte
	baseTCM  [NumCores][2][]byte // per core: ITCM, DTCM
}

// Masters per core: instruction port then data port; replay masters at the
// end (one per non-tested core port).
func imemMaster(coreID int) int { return coreID * 2 }
func dmemMaster(coreID int) int { return coreID*2 + 1 }

const (
	replayMasterBase = NumCores * 2
	numReplayMasters = 4 // two cores' worth of (ifetch, data) ports
)

// New assembles an SoC.
func New(cfg Config) *SoC {
	banks := cfg.FlashBanks
	if banks == nil {
		banks = DefaultFlashBankLatencies()
	}
	sramLat := cfg.SRAMLatency
	if sramLat == 0 {
		sramLat = 2
	}
	flash := mem.NewFlash(mem.FlashSize, banks)
	sram := mem.NewRAM(mem.SRAMSize, sramLat)
	b := bus.New(replayMasterBase+numReplayMasters, cfg.Arbitration, []bus.Region{
		{Base: mem.FlashBase, Size: mem.FlashSize, Dev: flash},
		{Base: mem.SRAMBase, Size: mem.SRAMSize, Dev: sram},
		// Uncached alias of the same SRAM, used for cross-core flags.
		{Base: mem.SRAMUncachedBase, Size: mem.SRAMSize, Dev: sram},
	})
	s := &SoC{Bus: b, Flash: flash, SRAM: sram}
	for id := 0; id < NumCores; id++ {
		s.Cores[id] = buildCore(id, cfg.Cores[id], b)
	}
	if len(cfg.Replay) > numReplayMasters {
		panic(fmt.Sprintf("soc: %d replay traces, max %d", len(cfg.Replay), numReplayMasters))
	}
	for i, trace := range cfg.Replay {
		s.replayers = append(s.replayers,
			bus.NewReplayer(b.PortFor(replayMasterBase+i), trace))
	}
	return s
}

func buildCore(id int, setup CoreSetup, b *bus.Bus) *CoreUnit {
	u := &CoreUnit{
		ITCM:  mem.NewTCM(mem.TCMSize),
		DTCM:  mem.NewTCM(mem.TCMSize),
		setup: setup,
	}
	setup.CPU.CoreID = id

	iport := b.PortFor(imemMaster(id))
	dport := b.PortFor(dmemMaster(id))

	var ifAccess, dAccess cache.Client
	if setup.CachesOn {
		u.ICache = cache.New(cache.ICacheConfig())
		u.DCache = cache.New(cache.DCacheConfig(setup.WriteAlloc))
		ifAccess = cache.NewCtrl(u.ICache, iport)
		dAccess = cache.NewCtrl(u.DCache, dport)
	} else {
		// The fetch-side bypass keeps a one-line prefetch buffer: pairs
		// inside a flash line can still dual-issue without caches.
		ifAccess = cache.NewBypass(iport, true)
		dAccess = cache.NewBypass(dport, false)
	}

	u.imem = &router{
		tcm:     cache.NewTCMClient(u.ITCM, mem.ITCMFor(id)),
		tcmBase: mem.ITCMFor(id),
		tcmSize: mem.TCMSize,
		def:     ifAccess,
	}
	u.dmem = &router{
		tcm:      cache.NewTCMClient(u.DTCM, mem.DTCMFor(id)),
		tcmBase:  mem.DTCMFor(id),
		tcmSize:  mem.TCMSize,
		tcm2:     cache.NewTCMClient(u.ITCM, mem.ITCMFor(id)),
		tcm2Base: mem.ITCMFor(id),
		uncached: cache.NewBypass(dport, false),
		def:      dAccess,
	}
	if !setup.CachesOn {
		// Flash is read-only, so a data-side line buffer is coherence-safe;
		// it gives software copy loops (the TCM-based strategy) the same
		// line-wide flash bursts the fetch unit enjoys. With the D-cache
		// enabled, flash data reads stay on the cached path instead.
		u.dmem.flash = cache.NewBypass(dport, true)
	}
	// The data-side uncached alias and the cached path share one bus port;
	// the router guarantees only one is in flight at a time.

	invalidate := func(sel int32) {
		if sel&1 != 0 && u.ICache != nil {
			u.ICache.InvalidateAll()
		}
		if sel&2 != 0 && u.DCache != nil {
			u.DCache.InvalidateAll()
		}
	}
	u.Core = cpu.New(setup.CPU, u.imem, u.dmem, invalidate, setup.Plane)
	return u
}

// Load programs the flash with an assembled image.
func (s *SoC) Load(p *asm.Program) error {
	if p.Base >= mem.FlashSize {
		return fmt.Errorf("soc: program base %#x outside flash", p.Base)
	}
	return s.Flash.LoadWords(p.Base, p.Words)
}

// Start resets core id and points it at entry. Inactive cores stay off.
func (s *SoC) Start(id int, entry uint32) {
	u := s.Cores[id]
	u.Core.Reset(entry)
	if !u.started && u.setup.Active {
		// Keep the stepping list in core-ID order regardless of Start order.
		s.running = append(s.running, u)
		sort.Slice(s.running, func(i, j int) bool {
			return s.running[i].Core.Config().CoreID < s.running[j].Core.Config().CoreID
		})
	}
	u.started = true
}

// Cycle returns the global cycle count.
func (s *SoC) Cycle() int64 { return s.cycle }

// SealBaseline captures the current SRAM and TCM contents as the state
// Reset restores. Call it once after loading programs and pattern tables;
// every later Reset rewinds the SoC to this point instead of power-on zero.
func (s *SoC) SealBaseline() {
	s.baseSRAM = s.SRAM.Snapshot()
	for id, u := range s.Cores {
		s.baseTCM[id][0] = u.ITCM.Snapshot()
		s.baseTCM[id][1] = u.DTCM.Snapshot()
	}
}

// Reset rewinds the whole SoC for another run on the same hardware: cycle
// counters, bus and replayer state, cache contents and statistics, memory
// clients, RAM/TCM data (restored to the sealed baseline, or zeroed when no
// baseline was sealed) and per-core architectural state. The flash image,
// bus topology and wiring survive, so a reset SoC behaves exactly like a
// freshly built one with the same program loaded — without reallocating
// anything.
func (s *SoC) Reset() {
	s.cycle = 0
	s.running = s.running[:0]
	s.Bus.Reset()
	for _, r := range s.replayers {
		r.Reset()
	}
	if s.baseSRAM != nil {
		s.SRAM.Restore(s.baseSRAM)
	} else {
		s.SRAM.Reset()
	}
	for id, u := range s.Cores {
		if img := s.baseTCM[id]; img[0] != nil {
			u.ITCM.Restore(img[0])
			u.DTCM.Restore(img[1])
		} else {
			u.ITCM.Reset()
			u.DTCM.Reset()
		}
		if u.ICache != nil {
			u.ICache.Reset()
		}
		if u.DCache != nil {
			u.DCache.Reset()
		}
		// Clients before the core: Core.Reset retracts in-flight fetches
		// through the (already idle) instruction-side client.
		u.imem.Reset()
		u.dmem.Reset()
		u.Core.Reset(0)
		u.started = false
	}
}

// SetPlane swaps core id's fault-injection plane (nil restores fault-free).
func (s *SoC) SetPlane(id int, p fault.Plane) { s.Cores[id].Core.SetPlane(p) }

// SetInjector attaches an interrupt-plan injector to core id (nil
// detaches): the pipeline half of the architectural interrupt subsystem —
// the same archint.Plan the functional reference recognises is driven
// into this core's ICU, retire-indexed. The attachment survives Reset.
func (s *SoC) SetInjector(id int, in *archint.Injector) { s.Cores[id].Core.SetInjector(in) }

// SetCoverage attaches one coverage map to every instrumented component of
// the system — all cores, their private caches, and the shared bus — so a
// run's microarchitectural coverage lands in a single map (nil detaches).
// The attachment survives Reset; the SoC must be stepped from a single
// goroutine for the shared map to be safe, which Step already requires.
func (s *SoC) SetCoverage(m *coverage.Map) {
	s.Bus.SetCoverage(m)
	for _, u := range s.Cores {
		u.Core.SetCoverage(m)
		if u.ICache != nil {
			u.ICache.SetCoverage(m, coverage.RoleICache)
		}
		if u.DCache != nil {
			u.DCache.SetCoverage(m, coverage.RoleDCache)
		}
		// TCM traffic: instruction fetches from the ITCM, the data-side
		// ITCM window (the TCM strategy's boot copy loop) and DTCM data.
		if tc, ok := u.imem.tcm.(*cache.TCMClient); ok {
			tc.SetCoverage(m, coverage.FeatTCMFetch, coverage.FeatTCMStageCode)
		}
		if tc, ok := u.dmem.tcm.(*cache.TCMClient); ok {
			tc.SetCoverage(m, coverage.FeatTCMDataRead, coverage.FeatTCMDataWrite)
		}
		if tc, ok := u.dmem.tcm2.(*cache.TCMClient); ok {
			tc.SetCoverage(m, coverage.FeatTCMStageCode, coverage.FeatTCMStageCode)
		}
		// The uncached data-side alias carries the scheduler barrier's
		// completion flags.
		if bp, ok := u.dmem.uncached.(*cache.Bypass); ok {
			bp.SetCoverage(m)
		}
	}
}

// Done reports whether every active started core has halted and drained.
func (s *SoC) Done() bool { return s.allDone() }

// Step advances the whole system one clock cycle.
func (s *SoC) Step() {
	s.cycle++
	s.Bus.Step()
	for _, r := range s.replayers {
		r.Step(s.Bus.Cycle())
	}
	for _, u := range s.running {
		if s.cycle <= int64(u.setup.StartDelay) {
			continue
		}
		u.Core.Step()
	}
}

// Result summarises a run.
type Result struct {
	Cycles   int64
	TimedOut bool
}

// Run steps until every active started core is done (halted and drained) or
// maxCycles elapse.
func (s *SoC) Run(maxCycles int64) Result {
	start := s.cycle
	for s.cycle-start < maxCycles {
		if s.allDone() {
			return Result{Cycles: s.cycle - start}
		}
		s.Step()
	}
	return Result{Cycles: s.cycle - start, TimedOut: !s.allDone()}
}

func (s *SoC) allDone() bool {
	for _, u := range s.running {
		if !u.Core.Done() {
			return false
		}
	}
	return true
}

// AttachRecorder installs a bus-traffic recorder that captures the
// transactions of every core except exceptID (pass -1 to record them all).
// The returned recorder's EventsByMaster output feeds Config.Replay.
func (s *SoC) AttachRecorder(exceptID int) *bus.Recorder {
	var masters []int
	for id := 0; id < NumCores; id++ {
		if id == exceptID {
			continue
		}
		masters = append(masters, imemMaster(id), dmemMaster(id))
	}
	rec := bus.NewRecorder(masters...)
	s.Bus.Attach(rec)
	return rec
}

// ActiveCount returns how many cores are configured active.
func (s *SoC) ActiveCount() int {
	n := 0
	for _, u := range s.Cores {
		if u.setup.Active {
			n++
		}
	}
	return n
}

// router dispatches memory accesses by address region: the core-private
// TCMs bypass the bus entirely; accesses to the uncached SRAM alias bypass
// the cache; everything else goes to the default path (cache controller or
// uncached bus client).
type router struct {
	tcm      cache.Client
	tcmBase  uint32
	tcmSize  uint32
	tcm2     cache.Client // data-side view of the ITCM (for TCM copy loops)
	tcm2Base uint32
	uncached cache.Client // SRAM uncached-alias path (data side only)
	flash    cache.Client // read-only flash window, line-buffered (data side)
	def      cache.Client

	cur cache.Client
}

func (r *router) pick(addr uint32, write bool) cache.Client {
	if addr >= r.tcmBase && addr < r.tcmBase+r.tcmSize {
		return r.tcm
	}
	if r.tcm2 != nil && addr >= r.tcm2Base && addr < r.tcm2Base+mem.TCMSize {
		return r.tcm2
	}
	if r.uncached != nil && addr >= mem.SRAMUncachedBase &&
		addr < mem.SRAMUncachedBase+mem.SRAMSize {
		return r.uncached
	}
	if r.flash != nil && !write && addr < mem.FlashBase+mem.FlashSize {
		return r.flash
	}
	return r.def
}

func (r *router) Busy() bool { return r.cur != nil && r.cur.Busy() }

func (r *router) Start(addr uint32, write bool, wdata uint64, size int) {
	r.cur = r.pick(addr, write)
	r.cur.Start(addr, write, wdata, size)
}

func (r *router) Tick() (bool, uint64) {
	done, v := r.cur.Tick()
	if done {
		r.cur = nil
	}
	return done, v
}

func (r *router) TryAbort() bool {
	if r.cur == nil {
		return true
	}
	if r.cur.TryAbort() {
		r.cur = nil
		return true
	}
	return false
}

// Reset implements cache.Client: resets every routed client and drops the
// in-flight selection.
func (r *router) Reset() {
	for _, c := range []cache.Client{r.tcm, r.tcm2, r.uncached, r.flash, r.def} {
		if c != nil {
			c.Reset()
		}
	}
	r.cur = nil
}

var _ cache.Client = (*router)(nil)
