package soc

import (
	"fmt"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/cpu"
	"repro/internal/mem"
)

// Full-SoC checkpointing. A State is everything a mid-run SoC holds beyond
// its sealed baseline: the cycle counter, bus and replayer positions, the
// dirty-page deltas of SRAM and the TCMs, cache contents, the in-flight
// state of every memory client, and each core's architectural and pipeline
// state. Snapshot/Restore complete the snapshot engine Reset's dirty-page
// machinery started: Reset rewinds to the baseline, Restore rewinds to an
// arbitrary captured cycle of a run that began with Reset.

// State is an opaque full-SoC snapshot (see Snapshot and Restore).
type State struct {
	cycle  int64
	bus    *bus.State
	replay []int
	sram   *mem.PageDelta
	cores  [NumCores]coreState
}

// Cycle returns the cycle count the snapshot was taken at.
func (st *State) Cycle() int64 { return st.cycle }

type coreState struct {
	itcm, dtcm     *mem.PageDelta
	icache, dcache *cache.State // nil when caches disabled
	imem, dmem     routerState
	core           *cpu.CoreState
	started        bool
}

// routerState snapshots one memory router: the in-flight state of each
// routed client (positional, in the router's fixed client order) plus which
// client the current access is routed to (-1 = none).
type routerState struct {
	cur     int8
	clients [5]cache.ClientState
}

// clientList returns the routed clients in their fixed positional order;
// entries are nil for paths the router does not have.
func (r *router) clientList() [5]cache.Client {
	return [5]cache.Client{r.tcm, r.tcm2, r.uncached, r.flash, r.def}
}

func (r *router) save(st *routerState) {
	st.cur = -1
	for i, c := range r.clientList() {
		if c == nil {
			continue
		}
		st.clients[i] = c.(cache.Stateful).Save()
		if c == r.cur {
			st.cur = int8(i)
		}
	}
}

func (r *router) load(st *routerState) {
	r.cur = nil
	for i, c := range r.clientList() {
		if c == nil {
			continue
		}
		c.(cache.Stateful).Load(st.clients[i])
		if int8(i) == st.cur {
			r.cur = c
		}
	}
}

// Snapshot captures the SoC's full dynamic state mid-run. The SoC must have
// a sealed baseline and the snapshot must be taken during a run that began
// with Reset — the memory dirty maps then hold exactly the delta from the
// baseline, which is what the snapshot stores. Snapshots are plain data:
// they may be restored into any SoC built from the same Config with the
// same programs loaded and baseline sealed, including concurrently into
// several such SoCs.
func (s *SoC) Snapshot() *State {
	if s.baseSRAM == nil {
		panic("soc: Snapshot before SealBaseline")
	}
	st := &State{
		cycle: s.cycle,
		bus:   s.Bus.Snapshot(),
		sram:  s.SRAM.CaptureDelta(),
	}
	for _, r := range s.replayers {
		st.replay = append(st.replay, r.Pos())
	}
	for id, u := range s.Cores {
		cs := &st.cores[id]
		cs.itcm = u.ITCM.CaptureDelta()
		cs.dtcm = u.DTCM.CaptureDelta()
		if u.ICache != nil {
			cs.icache = u.ICache.Snapshot()
			cs.dcache = u.DCache.Snapshot()
		}
		u.imem.save(&cs.imem)
		u.dmem.save(&cs.dmem)
		cs.core = u.Core.Snapshot()
		cs.started = u.started
	}
	return st
}

// Restore rewinds the SoC to a snapshot: an internal Reset back to the
// sealed baseline, then the snapshot's deltas and component states overlaid
// on top. Attachments (planes, observers, coverage, recorder) are left as
// they are, and restored cores resume without going through Start — the
// stepping list is rebuilt from the snapshot's started flags. After Restore
// the SoC is bit-identical, in everything that can affect execution, to the
// SoC the snapshot was taken from at that cycle.
func (s *SoC) Restore(st *State) {
	s.Reset()
	if len(st.replay) != len(s.replayers) {
		panic(fmt.Sprintf("soc: snapshot has %d replayers, SoC has %d",
			len(st.replay), len(s.replayers)))
	}
	s.cycle = st.cycle
	s.Bus.Restore(st.bus)
	for i, r := range s.replayers {
		r.Seek(st.replay[i])
	}
	s.SRAM.ApplyDelta(st.sram)
	for id, u := range s.Cores {
		cs := &st.cores[id]
		u.ITCM.ApplyDelta(cs.itcm)
		u.DTCM.ApplyDelta(cs.dtcm)
		if u.ICache != nil {
			u.ICache.Restore(cs.icache)
			u.DCache.Restore(cs.dcache)
		}
		u.imem.load(&cs.imem)
		u.dmem.load(&cs.dmem)
		u.Core.Restore(cs.core)
		u.started = cs.started
		if cs.started && u.setup.Active {
			// Cores iterate in ID order, so the stepping list comes out in
			// ID order without the sort Start does.
			s.running = append(s.running, u)
		}
	}
}
