// Package soc assembles the simulated triple-core System-on-Chip: three
// dual-issue cores (A, B 32-bit; C with the 64-bit extension), each with
// private I/D caches (8 kB / 4 kB) and instruction/data TCMs, sharing one
// bus to the code flash and system SRAM. The SoC is stepped cycle by cycle
// from a single goroutine and is fully deterministic: two runs with the
// same configuration produce identical cycle-by-cycle behaviour.
package soc
