package sched

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

// Task is one schedulable routine with a cost estimate.
type Task struct {
	Routine *sbst.Routine
	// EstCycles drives the partitioning; when zero, the routine's code
	// size is used as a proxy (straight-line STL routines execute in time
	// roughly proportional to their length).
	EstCycles int64
}

// Cost is the partitioning weight: EstCycles when set, otherwise the
// routine's code size as a proxy.
func (t Task) Cost() int64 {
	if t.EstCycles > 0 {
		return t.EstCycles
	}
	size, err := t.Routine.SizeBytes()
	if err != nil {
		return 1
	}
	return int64(size)
}

// Plan assigns tasks to cores.
type Plan struct {
	PerCore [soc.NumCores][]Task
	NCores  int
}

// Partition distributes tasks over nCores with the classic longest
// processing time (LPT) greedy rule: sort by descending cost, always give
// the next task to the least-loaded core.
func Partition(tasks []Task, nCores int) (Plan, error) {
	if nCores < 1 || nCores > soc.NumCores {
		return Plan{}, fmt.Errorf("sched: core count %d out of range", nCores)
	}
	sorted := append([]Task(nil), tasks...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Cost() > sorted[j].Cost() })
	var plan Plan
	plan.NCores = nCores
	var load [soc.NumCores]int64
	for _, t := range sorted {
		best := 0
		for c := 1; c < nCores; c++ {
			if load[c] < load[best] {
				best = c
			}
		}
		plan.PerCore[best] = append(plan.PerCore[best], t)
		load[best] += t.Cost()
	}
	return plan, nil
}

// Makespan returns the estimated finishing cost per core.
func (p Plan) Makespan() [soc.NumCores]int64 {
	var load [soc.NumCores]int64
	for c, tasks := range p.PerCore {
		for _, t := range tasks {
			load[c] += t.Cost()
		}
	}
	return load
}

// FlagAddr is core id's completion flag in the uncached SRAM alias. The
// flags live in the reserved line at the top of SRAM (mem.BarrierFlagBase);
// exported so conformance checkers can observe the barrier outcome.
func FlagAddr(id int) uint32 {
	return mem.BarrierFlagBase + uint32(id)*4
}

// barrier emits the decentralized completion protocol: publish this core's
// flag, then spin until every participating core has published its own.
// The flags are uncached, so the protocol needs no coherence support.
func barrier(id, nCores int) func(*asm.Builder) {
	return func(b *asm.Builder) {
		b.I(isa.OpADDI, 1, isa.RegZero, 1)
		b.Li(2, FlagAddr(id))
		b.Store(isa.OpSW, 1, 2, 0)
		for other := 0; other < nCores; other++ {
			if other == id {
				continue
			}
			b.Li(2, FlagAddr(other))
			wait := b.AutoLabel(fmt.Sprintf("wait%d_", other))
			b.Label(wait)
			// Back off between polls so spinning cores do not saturate the
			// bus and slow the cores still testing.
			b.I(isa.OpADDI, 4, isa.RegZero, 48)
			pause := b.AutoLabel(fmt.Sprintf("pause%d_", other))
			b.Label(pause)
			b.I(isa.OpADDI, 4, 4, -1)
			b.Branch(isa.OpBNE, 4, isa.RegZero, pause)
			b.Load(isa.OpLW, 3, 2, 0)
			b.Branch(isa.OpBEQ, 3, isa.RegZero, wait)
		}
	}
}

// Jobs converts the plan into runnable per-core jobs using the given
// strategy factory (per core, so a TCM-based strategy can bind its core
// ID). Every core's program ends with the completion barrier.
func (p Plan) Jobs(strategyFor func(coreID int) core.Strategy) [soc.NumCores]*core.CoreJob {
	var jobs [soc.NumCores]*core.CoreJob
	for id := 0; id < p.NCores; id++ {
		var routines []*sbst.Routine
		for _, t := range p.PerCore[id] {
			routines = append(routines, t.Routine)
		}
		if len(routines) == 0 {
			// An idle core still participates in the barrier.
			routines = nil
		}
		jobs[id] = &core.CoreJob{
			Routines: routines,
			Strategy: strategyFor(id),
			CodeBase: soc.CodeLow + uint32(id)*0x8000,
			Epilogue: barrier(id, p.NCores),
		}
	}
	return jobs
}

// ClearFlags zeroes the barrier flags in the SoC's SRAM before a run.
func ClearFlags(s *soc.SoC) {
	base := FlagAddr(0) - mem.SRAMUncachedBase
	for id := 0; id < soc.NumCores; id++ {
		mem.WriteWord(s.SRAM, base+uint32(id)*4, 0)
	}
}
