package sched

import (
	"math/rand"
	"testing"

	"repro/internal/sbst"
	"repro/internal/soc"
)

// Partition invariants, checked over random task sets with a fixed seed:
// every task is assigned to exactly one core, each core receives its tasks
// in the order the LPT rule considered them (descending cost, stable), and
// the makespan estimate is sandwiched between the heaviest single task and
// the serial cost of running everything on one core.

func TestPartitionProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 300; trial++ {
		nCores := 1 + rng.Intn(soc.NumCores)
		nTasks := rng.Intn(14)
		tasks := make([]Task, nTasks)
		var serial int64
		maxCost := int64(0)
		for i := range tasks {
			cost := 1 + rng.Int63n(10_000)
			// Duplicate costs now and then to exercise the stable-order
			// guarantee.
			if i > 0 && rng.Intn(4) == 0 {
				cost = tasks[i-1].EstCycles
			}
			// Distinct routine pointers give each task an identity.
			tasks[i] = Task{Routine: &sbst.Routine{Name: "t"}, EstCycles: cost}
			serial += cost
			if cost > maxCost {
				maxCost = cost
			}
		}

		plan, err := Partition(tasks, nCores)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Exactly-once assignment, by routine-pointer identity.
		seen := make(map[*sbst.Routine]int, nTasks)
		assigned := 0
		for c := 0; c < soc.NumCores; c++ {
			if c >= nCores && len(plan.PerCore[c]) > 0 {
				t.Fatalf("trial %d: inactive core %d received tasks", trial, c)
			}
			for _, task := range plan.PerCore[c] {
				seen[task.Routine]++
				assigned++
			}
		}
		if assigned != nTasks {
			t.Fatalf("trial %d: %d of %d tasks assigned", trial, assigned, nTasks)
		}
		for i := range tasks {
			if seen[tasks[i].Routine] != 1 {
				t.Fatalf("trial %d: task %d assigned %d times", trial, i, seen[tasks[i].Routine])
			}
		}

		// Per-core order preserved: LPT hands out tasks in stable
		// descending-cost order, so each core's list must be a subsequence
		// of that order — position indices strictly increasing.
		order := make(map[*sbst.Routine]int, nTasks)
		sorted := append([]Task(nil), tasks...)
		stableSortDescending(sorted)
		for i, task := range sorted {
			order[task.Routine] = i
		}
		for c := 0; c < nCores; c++ {
			prev := -1
			for _, task := range plan.PerCore[c] {
				pos := order[task.Routine]
				if pos <= prev {
					t.Fatalf("trial %d: core %d order violated (pos %d after %d)", trial, c, pos, prev)
				}
				prev = pos
			}
		}

		// Makespan bounds: no core exceeds the serial cost, the longest
		// core carries at least the heaviest task (when any exist), and
		// Makespan agrees with a direct recount.
		loads := plan.Makespan()
		var longest, total int64
		for c := 0; c < soc.NumCores; c++ {
			var recount int64
			for _, task := range plan.PerCore[c] {
				recount += task.EstCycles
			}
			if loads[c] != recount {
				t.Fatalf("trial %d: Makespan()[%d] = %d, recount %d", trial, c, loads[c], recount)
			}
			if loads[c] > serial {
				t.Fatalf("trial %d: core %d load %d exceeds serial cost %d", trial, c, loads[c], serial)
			}
			if loads[c] > longest {
				longest = loads[c]
			}
			total += loads[c]
		}
		if total != serial {
			t.Fatalf("trial %d: loads sum to %d, serial cost %d", trial, total, serial)
		}
		if nTasks > 0 && longest < maxCost {
			t.Fatalf("trial %d: makespan %d below heaviest task %d", trial, longest, maxCost)
		}
	}
}

// stableSortDescending mirrors Partition's ordering rule.
func stableSortDescending(tasks []Task) {
	for i := 1; i < len(tasks); i++ {
		for j := i; j > 0 && tasks[j].Cost() > tasks[j-1].Cost(); j-- {
			tasks[j], tasks[j-1] = tasks[j-1], tasks[j]
		}
	}
}

func TestPartitionRejectsBadCoreCounts(t *testing.T) {
	if _, err := Partition(nil, 0); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := Partition(nil, soc.NumCores+1); err == nil {
		t.Error("too many cores accepted")
	}
}
