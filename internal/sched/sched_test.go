package sched

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

func stlTasks(coreCount int) []Task {
	var tasks []Task
	for i := 0; i < coreCount; i++ {
		for _, r := range sbst.StandardSTL(mem.SRAMBase + 0x2000*uint32(i+1)) {
			tasks = append(tasks, Task{Routine: r})
		}
	}
	return tasks
}

// loopyTasks returns the STL with each routine iterating its sweep, the
// compute-bound regime where parallel testing pays off.
func loopyTasks(coreCount, reps int) []Task {
	var tasks []Task
	for i := 0; i < coreCount; i++ {
		for _, r := range sbst.StandardSTL(mem.SRAMBase + 0x2000*uint32(i+1)) {
			rr := sbst.Repeat(r, reps)
			size, _ := rr.SizeBytes()
			tasks = append(tasks, Task{Routine: rr, EstCycles: int64(size) * int64(reps)})
		}
	}
	return tasks
}

func TestPartitionBalances(t *testing.T) {
	tasks := stlTasks(2) // 10 routines
	plan, err := Partition(tasks, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, pc := range plan.PerCore {
		total += len(pc)
	}
	if total != len(tasks) {
		t.Fatalf("%d of %d tasks assigned", total, len(tasks))
	}
	load := plan.Makespan()
	min, max := load[0], load[0]
	for _, l := range load[:3] {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
	}
	// LPT keeps the imbalance small: the largest load is within 2x the
	// smallest for this mix.
	if min == 0 || max > 2*min {
		t.Errorf("unbalanced plan: %v", load)
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(nil, 0); err == nil {
		t.Error("0 cores accepted")
	}
	if _, err := Partition(nil, soc.NumCores+1); err == nil {
		t.Error("too many cores accepted")
	}
}

func TestScheduledRunCompletesWithBarrier(t *testing.T) {
	tasks := stlTasks(1) // 5 routines over 3 cores
	plan, err := Partition(tasks, 3)
	if err != nil {
		t.Fatal(err)
	}
	jobs := plan.Jobs(func(int) core.Strategy { return core.Plain{} })
	cfg := soc.DefaultConfig() // all cores active, no caches
	results, s, err := core.RunJobs(cfg, jobs, 6_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 3; id++ {
		if results[id] == nil || !results[id].OK {
			t.Fatalf("core %d failed: %+v", id, results[id])
		}
	}
	// Every barrier flag must be set.
	base := FlagAddr(0) - mem.SRAMUncachedBase
	for id := 0; id < 3; id++ {
		if mem.ReadWord(s.SRAM, base+uint32(id)*4) != 1 {
			t.Errorf("core %d never published its flag", id)
		}
	}
}

func TestParallelBeatsSerial(t *testing.T) {
	tasks := loopyTasks(2, 6) // ten iterating routines: compute-bound when cached
	serialPlan, _ := Partition(tasks, 1)
	parPlan, _ := Partition(tasks, 3)

	// With uncached flash execution, bus contention can eat the whole
	// parallel gain (that is Table I's point); the scheduler pays off once
	// code executes from the private caches.
	run := func(plan Plan, active int) int64 {
		jobs := plan.Jobs(func(int) core.Strategy { return core.Plain{} })
		cfg := soc.DefaultConfig()
		for id := 0; id < soc.NumCores; id++ {
			cfg.Cores[id].Active = id < active
			cfg.Cores[id].CachesOn = true
			cfg.Cores[id].WriteAlloc = true
		}
		results, _, err := core.RunJobs(cfg, jobs, 8_000_000)
		if err != nil {
			t.Fatal(err)
		}
		var max int64
		for id := 0; id < active; id++ {
			if results[id] == nil || !results[id].OK {
				t.Fatalf("core %d failed", id)
			}
			if results[id].Cycles > max {
				max = results[id].Cycles
			}
		}
		return max
	}
	serial := run(serialPlan, 1)
	parallel := run(parPlan, 3)
	if parallel >= serial {
		t.Errorf("parallel schedule (%d cycles) not faster than serial (%d)", parallel, serial)
	}
	t.Logf("serial %d cycles, parallel %d cycles (%.2fx)",
		serial, parallel, float64(serial)/float64(parallel))
}

func TestFlagAddressesDisjoint(t *testing.T) {
	seen := map[uint32]bool{}
	for id := 0; id < soc.NumCores; id++ {
		a := FlagAddr(id)
		if seen[a] {
			t.Fatal("flag collision")
		}
		seen[a] = true
		if a < mem.SRAMUncachedBase || a >= mem.SRAMUncachedBase+mem.SRAMSize {
			t.Errorf("flag %d outside the uncached alias: %#x", id, a)
		}
	}
}
