// Package sched implements a parallel boot-time STL scheduler in the
// spirit of Floridia et al., "A decentralized scheduler for on-line
// self-test routines in multi-core automotive system-on-chips" (ITC 2019,
// the paper's reference [13]): the library's routines are partitioned
// across the cores to minimise the boot-test makespan, each core runs its
// share back to back, and the cores synchronise at the end through
// per-core completion flags in uncached SRAM (no cross-core cache
// coherence is needed or assumed).
package sched
