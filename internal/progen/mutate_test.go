package progen

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// words assembles p and returns the image words.
func words(t *testing.T, p *Program) []uint32 {
	t.Helper()
	prog, err := p.Assemble(0x1000)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return prog.Words
}

// TestRecipeRoundtrip pins the corpus contract: a mutated program's Recipe,
// serialized to JSON and rebuilt with FromRecipe, reproduces the exact
// instruction stream.
func TestRecipeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(1); seed <= 20; seed++ {
		cfg := Config{}
		if seed%3 == 0 {
			cfg.Pairs64 = true
		}
		p := Generate(seed, cfg)
		for m := 0; m < 4; m++ {
			p = Mutate(rng, p)
		}
		// Mix in a minimization-style drop, which also records an edit.
		for i := len(p.Units) - 1; i >= 0; i-- {
			if !p.Units[i].Pinned {
				p = p.WithoutUnit(i)
				break
			}
		}
		blob, err := json.Marshal(p.Recipe)
		if err != nil {
			t.Fatalf("seed %d: marshal: %v", seed, err)
		}
		var r Recipe
		if err := json.Unmarshal(blob, &r); err != nil {
			t.Fatalf("seed %d: unmarshal: %v", seed, err)
		}
		q, err := FromRecipe(r)
		if err != nil {
			t.Fatalf("seed %d: FromRecipe: %v", seed, err)
		}
		got, want := words(t, q), words(t, p)
		if len(got) != len(want) {
			t.Fatalf("seed %d: rebuilt %d words, want %d", seed, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: word %d = %08x, want %08x", seed, i, got[i], want[i])
			}
		}
	}
}

// TestMutatedProgramsTerminate pins the mutation invariant: any chain of
// mutations still yields a valid program that terminates on the
// interpreter within the budget.
func TestMutatedProgramsTerminate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for seed := int64(1); seed <= 15; seed++ {
		has64 := seed%3 == 0
		p := Generate(seed, Config{Pairs64: has64})
		for m := 0; m < 8; m++ {
			p = Mutate(rng, p)
			run(t, p, has64)
		}
	}
}

// TestFromRecipeRejectsCorrupt pins that mangled corpus entries fail
// loudly instead of rebuilding a different program.
func TestFromRecipeRejectsCorrupt(t *testing.T) {
	base := Recipe{Seed: 3, Cfg: Config{}}
	for _, bad := range []Edit{
		{Op: "drop", I: 9999},
		{Op: "drop", I: 0}, // unit 0 is the pinned scratch-base pointer
		{Op: "swap", I: 0, J: 1},
		{Op: "splice", Seed: 5, I: -1, J: 0, N: 1},
		{Op: "splice", Seed: 5, I: 0, J: 0, N: 9999},
		{Op: "frobnicate", I: 1},
	} {
		r := base
		r.Edits = []Edit{bad}
		if _, err := FromRecipe(r); err == nil {
			t.Errorf("edit %+v: expected error", bad)
		}
	}
}

// TestPerturbKnobsStaysValid pins that perturbed configs stay inside the
// generator's supported ranges and preserve structural parameters.
func TestPerturbKnobsStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	base := Config{Pairs64: true}
	for i := 0; i < 200; i++ {
		cfg := PerturbKnobs(rng, base)
		if !cfg.Pairs64 {
			t.Fatal("Pairs64 not preserved")
		}
		if cfg.MemFrac <= 0 || cfg.MemFrac > 0.9 {
			t.Fatalf("MemFrac %v out of range", cfg.MemFrac)
		}
		if cfg.BranchFrac <= 0 || cfg.BranchFrac > 0.98 {
			t.Fatalf("BranchFrac %v out of range", cfg.BranchFrac)
		}
		if cfg.TrapFrac < 0 || cfg.TrapFrac > 0.35 {
			t.Fatalf("TrapFrac %v out of range", cfg.TrapFrac)
		}
		if cfg.Blocks < 4 || cfg.Blocks > 15 {
			t.Fatalf("Blocks %v out of range", cfg.Blocks)
		}
		p := Generate(int64(i), cfg)
		run(t, p, cfg.Pairs64)
	}
}
