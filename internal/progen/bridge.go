package progen

// Strategy bridge: BlockForm re-emits a generated program as an
// sbst.Routine made of self-contained blocks, the shape the paper's
// wrapping strategies (core.Plain / CacheBased / TCMBased) consume. The
// strategies may re-execute the body (the cache strategy's loading +
// execution loops) and may split it between blocks (chunking), so a raw
// generated program — whose registers and scratch evolve cumulatively —
// cannot be wrapped directly. Each bridge block therefore re-establishes
// its full context and folds its complete architectural effect into the
// MISR signature register:
//
//	save link · base := strategy base · clear scratch window ·
//	seed r1..r15 deterministically · generated units · fold r1..r15 and
//	the scratch window into RegSig · restore link
//
// Given the same entry signature, a block always produces the same exit
// signature, which is exactly the re-execution invariance the cache
// strategy's loops and the multi-chunk mailbox chain require. The link
// save/restore keeps call/return units from clobbering the TCM strategy's
// body-return protocol (it calls the body via JALR).

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/sbst"
)

// Bridge scratch registers, all outside the generator's operand set
// (r1..r15), its working registers (BaseReg, LoopReg, handler r20..r23)
// and the ISA-reserved wrapper registers (r26..r31).
const (
	bridgeCursorReg = 18 // clear/fold address cursor
	bridgeCountReg  = 19 // clear/fold word counter
	bridgeLinkSave  = 24 // RegLink preserved across call/return units
	bridgeFoldTmp   = 25 // scratch-word load target for the fold
)

// blockInstBudget caps the generated-unit instructions grouped into one
// bridge block; block boundaries are where the cache strategy may split.
const blockInstBudget = 32

// bridgeSeeds derives the deterministic per-register constants every block
// seeds r1..r15 with. They depend only on the base seed — not on the
// droppable seed units — so minimization and mutation never change a
// block's entry state.
func bridgeSeeds(seed int64) [MaxOperandReg + 1]uint32 {
	var out [MaxOperandReg + 1]uint32
	x := uint64(seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	for r := 1; r <= MaxOperandReg; r++ {
		x ^= x >> 27
		x *= 0x3C79AC492BA7B653
		x ^= x >> 33
		out[r] = uint32(x)
	}
	return out
}

// BlockForm converts the program into strategy-wrappable routine form. The
// pinned scratch-base unit is dropped (each block derives the generator's
// base register from the strategy-provided isa.RegBase, so the TCM
// strategy can repoint the data area at the DTCM); handler-mode units
// (ivec, drain) are dropped too — an interrupt plan is meaningless without
// its injector, and the strategy scenarios skip handler programs entirely.
// The routine's scratch footprint is the program's compared window (the
// scratch area plus the register spill slots).
func (p *Program) BlockForm(name string) *sbst.Routine {
	words := p.Cfg.ScratchWords()
	seeds := bridgeSeeds(p.Seed)
	var blocks []sbst.Block
	var cur []Unit
	curInsts := 0
	flush := func() {
		if len(cur) == 0 {
			return
		}
		units := cur
		cur, curInsts = nil, 0
		blocks = append(blocks, sbst.Block{
			Name: fmt.Sprintf("%s%d", name, len(blocks)),
			Emit: func(b *asm.Builder) { emitBridgeBlock(b, units, seeds, words) },
		})
	}
	for _, u := range p.Units {
		switch u.Name {
		case "base", "ivec", "drain":
			continue
		}
		cur = append(cur, u)
		curInsts += u.Insts
		if curInsts >= blockInstBudget {
			flush()
		}
	}
	flush()
	if len(blocks) == 0 {
		// Every generated unit was dropped: a single empty block still
		// clears, seeds and folds, so the signature stays well defined.
		blocks = append(blocks, sbst.Block{
			Name: name + "0",
			Emit: func(b *asm.Builder) { emitBridgeBlock(b, nil, seeds, words) },
		})
	}
	return &sbst.Routine{
		Name:         name,
		Target:       "progen",
		DataBase:     p.Cfg.ScratchBase,
		ScratchBytes: words * 4,
		Blocks:       blocks,
	}
}

// emitBridgeBlock emits one self-contained block (see the file comment for
// the structure).
func emitBridgeBlock(b *asm.Builder, units []Unit, seeds [MaxOperandReg + 1]uint32, scratchWords int) {
	// Preserve the wrapper's link register: call/return units write r31,
	// and the TCM strategy's body must still return through it.
	b.R(isa.OpADD, bridgeLinkSave, isa.RegLink, isa.RegZero)
	// The strategy's data base becomes the generator's base register.
	b.R(isa.OpADD, BaseReg, isa.RegBase, isa.RegZero)
	// Clear the scratch window so re-execution reads the same memory state.
	b.R(isa.OpADD, bridgeCursorReg, BaseReg, isa.RegZero)
	b.Li(bridgeCountReg, uint32(scratchWords))
	clr := b.AutoLabel("clr")
	b.Label(clr)
	b.Store(isa.OpSW, isa.RegZero, bridgeCursorReg, 0)
	b.I(isa.OpADDI, bridgeCursorReg, bridgeCursorReg, 4)
	b.I(isa.OpADDI, bridgeCountReg, bridgeCountReg, -1)
	b.Branch(isa.OpBNE, bridgeCountReg, isa.RegZero, clr)
	// Deterministic operand seeds.
	for r := uint8(1); r <= MaxOperandReg; r++ {
		b.Li(r, seeds[r])
	}
	for _, u := range units {
		u.Emit(b)
	}
	// Fold the block's architectural effect into the signature.
	for r := uint8(1); r <= MaxOperandReg; r++ {
		b.Misr(r)
	}
	b.R(isa.OpADD, bridgeCursorReg, BaseReg, isa.RegZero)
	b.Li(bridgeCountReg, uint32(scratchWords))
	fold := b.AutoLabel("fold")
	b.Label(fold)
	b.Load(isa.OpLW, bridgeFoldTmp, bridgeCursorReg, 0)
	b.Misr(bridgeFoldTmp)
	b.I(isa.OpADDI, bridgeCursorReg, bridgeCursorReg, 4)
	b.I(isa.OpADDI, bridgeCountReg, bridgeCountReg, -1)
	b.Branch(isa.OpBNE, bridgeCountReg, isa.RegZero, fold)
	b.R(isa.OpADD, isa.RegLink, bridgeLinkSave, isa.RegZero)
}
