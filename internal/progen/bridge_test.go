package progen

import (
	"testing"

	"repro/internal/archint"
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/iss"
	"repro/internal/sbst"
)

// emitPlainForm assembles the bridged routine in single-core plain shape:
// signature reset, strategy-style data base, body, HALT.
func emitPlainForm(t *testing.T, r *sbst.Routine, reps int) *asm.Program {
	t.Helper()
	b := asm.NewBuilder()
	for i := 0; i < reps; i++ {
		r.EmitSigReset(b)
		b.Li(isa.RegBase, r.DataBase)
		r.EmitBody(b)
	}
	b.Halt()
	p, err := b.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runOnISS(t *testing.T, prog *asm.Program, setup func(*iss.ISS)) *iss.ISS {
	t.Helper()
	m := iss.NewSparseMem()
	m.LoadWords(prog.Base, prog.Words)
	s := iss.New(m, prog.Base, false)
	if setup != nil {
		setup(s)
	}
	if err := s.Run(2_000_000); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBlockFormDeterministic: the bridge is a pure function of the
// program — two conversions assemble to identical images.
func TestBlockFormDeterministic(t *testing.T) {
	p := Generate(7, Config{})
	a := emitPlainForm(t, p.BlockForm("x"), 1)
	b := emitPlainForm(t, p.BlockForm("x"), 1)
	if len(a.Words) != len(b.Words) {
		t.Fatalf("image sizes differ: %d vs %d", len(a.Words), len(b.Words))
	}
	for i := range a.Words {
		if a.Words[i] != b.Words[i] {
			t.Fatalf("word %d differs: %08x vs %08x", i, a.Words[i], b.Words[i])
		}
	}
}

// TestBlockFormReexecutionInvariant is the property the cache strategy's
// loading+execution loops rest on: running the body a second time (after a
// signature reset, exactly the single-chunk loop shape) must produce the
// same signature, because every block clears its scratch window and
// re-seeds its registers.
func TestBlockFormReexecutionInvariant(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 9} {
		p := Generate(seed, Config{})
		r := p.BlockForm("x")
		once := runOnISS(t, emitPlainForm(t, r, 1), nil).Regs[isa.RegSig]
		twice := runOnISS(t, emitPlainForm(t, r, 2), nil).Regs[isa.RegSig]
		if once != twice {
			t.Errorf("seed %d: re-execution changed the signature: %08x vs %08x", seed, once, twice)
		}
		if once == 0 {
			t.Errorf("seed %d: zero signature", seed)
		}
	}
}

// TestBlockFormPreservesLink: call/return units clobber r31 inside a
// block, but the block must restore it — the TCM strategy returns from its
// body through RegLink.
func TestBlockFormPreservesLink(t *testing.T) {
	// Find a seed whose program contains a call unit.
	var p *Program
	for seed := int64(1); seed < 64; seed++ {
		q := Generate(seed, Config{BranchFrac: 0.97})
		for _, u := range q.Units {
			if u.Name == "call" {
				p = q
				break
			}
		}
		if p != nil {
			break
		}
	}
	if p == nil {
		t.Fatal("no call unit in the first 64 seeds")
	}
	const sentinel = 0xCAFEF00D
	s := runOnISS(t, emitPlainForm(t, p.BlockForm("x"), 1), func(s *iss.ISS) {
		s.Regs[isa.RegLink] = sentinel
	})
	if got := s.Regs[isa.RegLink]; got != sentinel {
		t.Errorf("link register not preserved across blocks: %08x, want %08x", got, sentinel)
	}
}

// TestBlockFormDropsHandlerUnits: the bridge must strip handler-mode units
// (vector install, drain loop) — without their injection plan they would
// enable interrupts the wrappers cannot deliver.
func TestBlockFormDropsHandlerUnits(t *testing.T) {
	cfg := Config{}
	cfg.Interrupts.Enable = 1
	cfg.Interrupts.Events = []archint.Event{{Retire: 4, Line: 0}}
	p := Generate(11, cfg)
	if !p.Cfg.Interrupts.Enabled() {
		t.Fatal("test plan not enabled")
	}
	prog := emitPlainForm(t, p.BlockForm("x"), 1)
	for i, w := range prog.Words {
		inst, err := isa.Decode(w)
		if err != nil {
			continue
		}
		switch inst.Op {
		case isa.OpCSRW, isa.OpCSRR, isa.OpRFE:
			t.Fatalf("word %d: handler-mode instruction %v survived the bridge", i, inst.Op)
		}
	}
}
