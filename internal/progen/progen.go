package progen

import (
	"math/rand"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sbst"
)

// Register assignments (see package comment).
const (
	BaseReg       = 16 // holds Config.ScratchBase
	LoopReg       = 17 // counted-loop counter
	MaxOperandReg = 15 // operands are r1..r15
)

// DefaultScratchBase is the default scratch window (clear of the sbst
// routine data tables at SRAMBase+0x2000..0x8000).
const DefaultScratchBase = mem.SRAMBase + 0x8000

// Config tunes the generated instruction mix. The zero value gives the
// historical difftest distribution: ~20% memory operations, control-flow
// blocks three times out of four, no trap-raising operations.
type Config struct {
	// Pairs64 enables the 64-bit paired-register extension (ADDP, LWP,
	// SWP, ...). Only core C implements it; the interpreter must be built
	// with has64 to match.
	Pairs64 bool

	// MemFrac is the fraction of straight-line slots that become loads or
	// stores (0 < MemFrac < 1); 0 means the default 0.2.
	MemFrac float64

	// BranchFrac is the probability that a top-level block is control flow
	// (counted loop, forward branch, call/return) rather than straight
	// line; 0 means the default 0.75.
	BranchFrac float64

	// TrapFrac is the fraction of ALU slots that use the trap-raising
	// operations (ADDV, SUBV, MULV, DIVV). These raise synchronous events
	// towards the ICU — recognition-pipeline pressure — but generated
	// programs never enable interrupts, so the events stay architecturally
	// invisible and the program remains checkable against the interpreter.
	// The default is 0.
	TrapFrac float64

	// Blocks is the number of top-level blocks; 0 picks 6..11 at random.
	Blocks int

	// ScratchBase/ScratchSize bound the memory window the program
	// addresses. Zero values use DefaultScratchBase and 256 bytes. The
	// register spill area (16 words) follows the window.
	ScratchBase uint32
	ScratchSize int
}

func (c Config) withDefaults() Config {
	if c.MemFrac <= 0 {
		c.MemFrac = 0.2
	}
	if c.BranchFrac <= 0 {
		c.BranchFrac = 0.75
	}
	if c.ScratchBase == 0 {
		c.ScratchBase = DefaultScratchBase
	}
	if c.ScratchSize == 0 {
		c.ScratchSize = 256
	}
	return c
}

// ScratchWords returns the size, in words, of the memory window a
// generated program may write: the scratch area plus the register spill
// slots. Differential checkers compare exactly this window.
func (c Config) ScratchWords() int {
	c = c.withDefaults()
	return (c.ScratchSize + 4*(MaxOperandReg+1)) / 4
}

// Unit is one droppable fragment of a generated program. Emit appends the
// fragment to a builder; it captures only concrete values chosen at
// generation time, so re-emission (after dropping other units) is
// deterministic. Any labels come from b.AutoLabel and are local to the
// unit.
type Unit struct {
	Name   string
	Insts  int  // instructions this unit emits
	Pinned bool // never dropped by minimization (the scratch base pointer)
	Emit   func(b *asm.Builder)
}

// Program is a generated program: the ordered unit list plus the
// generation parameters needed to rebuild or describe it. Recipe records
// the full derivation (base seed, config, mutation edits), so any program
// — including one shaped by minimization or the fuzzer's mutators — can be
// serialized and rebuilt bit-identically (see FromRecipe).
type Program struct {
	Seed   int64
	Cfg    Config // normalised (defaults filled in)
	Units  []Unit
	Recipe Recipe
}

// Generate builds the program for (seed, cfg). The same pair always yields
// the same program.
func Generate(seed int64, cfg Config) *Program {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	g := &generator{rng: rng, cfg: cfg}

	p := &Program{Seed: seed, Cfg: cfg, Recipe: Recipe{Seed: seed, Cfg: cfg}}
	addUnit := func(name string, pinned bool, emit func(b *asm.Builder)) {
		n := asm.NewBuilder()
		emit(n)
		p.Units = append(p.Units, Unit{Name: name, Insts: n.Len() / isa.InstBytes, Pinned: pinned, Emit: emit})
	}

	base := cfg.ScratchBase
	addUnit("base", true, func(b *asm.Builder) { b.Li(BaseReg, base) })
	for r := uint8(1); r <= MaxOperandReg; r++ {
		r, v := r, rng.Uint32()
		addUnit("seed", false, func(b *asm.Builder) { b.Li(r, v) })
	}

	blocks := cfg.Blocks
	if blocks <= 0 {
		blocks = 6 + rng.Intn(6)
	}
	for i := 0; i < blocks; i++ {
		if rng.Float64() >= cfg.BranchFrac {
			// Straight-line chunk: one unit per instruction for maximal
			// minimization granularity.
			for _, inst := range g.straight(4 + rng.Intn(12)) {
				inst := inst
				addUnit("inst", false, func(b *asm.Builder) { b.Emit(inst) })
			}
			continue
		}
		switch rng.Intn(3) {
		case 0: // bounded counted loop
			iters := int32(2 + rng.Intn(5))
			body := g.straight(2 + rng.Intn(6))
			addUnit("loop", false, func(b *asm.Builder) {
				b.I(isa.OpADDI, LoopReg, isa.RegZero, iters)
				top := b.AutoLabel("loop")
				b.Label(top)
				for _, inst := range body {
					b.Emit(inst)
				}
				b.I(isa.OpADDI, LoopReg, LoopReg, -1)
				b.Branch(isa.OpBNE, LoopReg, isa.RegZero, top)
			})
		case 1: // forward branch over a few instructions
			op := branchOps[rng.Intn(len(branchOps))]
			rs1, rs2 := g.reg(), g.reg()
			body := g.straight(1 + rng.Intn(4))
			addUnit("branch", false, func(b *asm.Builder) {
				skip := b.AutoLabel("skip")
				b.Branch(op, rs1, rs2, skip)
				for _, inst := range body {
					b.Emit(inst)
				}
				b.Label(skip)
			})
		default: // call/return
			body := g.straight(2 + rng.Intn(4))
			addUnit("call", false, func(b *asm.Builder) {
				sub := b.AutoLabel("sub")
				after := b.AutoLabel("after")
				b.Jump(isa.OpJAL, sub)
				b.Jump(isa.OpJ, after)
				b.Label(sub)
				for _, inst := range body {
					b.Emit(inst)
				}
				b.Emit(isa.Inst{Op: isa.OpJR, Rs1: isa.RegLink})
				b.Label(after)
			})
		}
	}

	// Spill the operand registers so memory comparison also covers
	// register state (each spill its own unit; direct register comparison
	// keeps catching bugs when minimization drops them).
	spillBase := int32(cfg.ScratchSize)
	for r := uint8(1); r <= MaxOperandReg; r++ {
		r := r
		addUnit("spill", false, func(b *asm.Builder) {
			b.Store(isa.OpSW, r, BaseReg, spillBase+int32(r)*4)
		})
	}
	return p
}

var (
	aluOps = []isa.Op{
		isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOR,
		isa.OpSLT, isa.OpSLTU, isa.OpSLLV, isa.OpSRLV, isa.OpSRAV, isa.OpMUL,
	}
	trapOps   = []isa.Op{isa.OpADDV, isa.OpSUBV, isa.OpMULV, isa.OpDIVV}
	immOps    = []isa.Op{isa.OpADDI, isa.OpSLTI}
	logImmOps = []isa.Op{isa.OpANDI, isa.OpORI, isa.OpXORI}
	shiftOps  = []isa.Op{isa.OpSLL, isa.OpSRL, isa.OpSRA}
	branchOps = []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE}
	pairOps   = []isa.Op{isa.OpADDP, isa.OpSUBP, isa.OpXORP, isa.OpANDP, isa.OpORP}
)

// generator walks the rng; all randomness is consumed at generation time
// so the emitted units are pure data.
type generator struct {
	rng *rand.Rand
	cfg Config
}

func (g *generator) reg() uint8 { return uint8(1 + g.rng.Intn(MaxOperandReg)) }

// evenReg returns an even register r2..r12 (pair ops use (rN, rN+1)).
func (g *generator) evenReg() uint8 { return uint8(2 + 2*g.rng.Intn(6)) }

func (g *generator) off(align int) int32 {
	return int32(g.rng.Intn(g.cfg.ScratchSize/align)) * int32(align)
}

// straight produces n straight-line instructions following the configured
// mix.
func (g *generator) straight(n int) []isa.Inst {
	rng := g.rng
	out := make([]isa.Inst, 0, n)
	emit := func(i isa.Inst) { out = append(out, i) }
	for len(out) < n {
		if rng.Float64() < g.cfg.MemFrac {
			// Memory slot: word, byte or (with Pairs64) doubleword.
			kinds := 2
			if g.cfg.Pairs64 {
				kinds = 3
			}
			switch rng.Intn(kinds) {
			case 0:
				if rng.Intn(2) == 0 {
					emit(isa.Inst{Op: isa.OpSW, Rs2: g.reg(), Rs1: BaseReg, Imm: g.off(4)})
				} else {
					emit(isa.Inst{Op: isa.OpLW, Rd: g.reg(), Rs1: BaseReg, Imm: g.off(4)})
				}
			case 1:
				switch rng.Intn(3) {
				case 0:
					emit(isa.Inst{Op: isa.OpSB, Rs2: g.reg(), Rs1: BaseReg, Imm: g.off(1)})
				case 1:
					emit(isa.Inst{Op: isa.OpLB, Rd: g.reg(), Rs1: BaseReg, Imm: g.off(1)})
				default:
					emit(isa.Inst{Op: isa.OpLBU, Rd: g.reg(), Rs1: BaseReg, Imm: g.off(1)})
				}
			default:
				if rng.Intn(2) == 0 {
					emit(isa.Inst{Op: isa.OpSWP, Rs2: g.evenReg(), Rs1: BaseReg, Imm: g.off(8)})
				} else {
					emit(isa.Inst{Op: isa.OpLWP, Rd: g.evenReg(), Rs1: BaseReg, Imm: g.off(8)})
				}
			}
			continue
		}
		if g.cfg.TrapFrac > 0 && rng.Float64() < g.cfg.TrapFrac {
			emit(isa.Inst{Op: trapOps[rng.Intn(len(trapOps))], Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()})
			continue
		}
		kinds := 4
		if g.cfg.Pairs64 {
			kinds = 5
		}
		switch rng.Intn(kinds) {
		case 0:
			emit(isa.Inst{Op: immOps[rng.Intn(len(immOps))], Rd: g.reg(), Rs1: g.reg(),
				Imm: int32(rng.Intn(1<<15)) - 1<<14})
		case 1:
			emit(isa.Inst{Op: logImmOps[rng.Intn(len(logImmOps))], Rd: g.reg(), Rs1: g.reg(),
				Imm: int32(rng.Intn(1 << 16))})
		case 2:
			emit(isa.Inst{Op: shiftOps[rng.Intn(len(shiftOps))], Rd: g.reg(), Rs1: g.reg(),
				Imm: int32(rng.Intn(32))})
		case 4:
			emit(isa.Inst{Op: pairOps[rng.Intn(len(pairOps))], Rd: g.evenReg(),
				Rs1: g.evenReg(), Rs2: g.evenReg()})
		default:
			emit(isa.Inst{Op: aluOps[rng.Intn(len(aluOps))], Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()})
		}
	}
	return out
}

// Emit appends the whole program body (no HALT) to b.
func (p *Program) Emit(b *asm.Builder) {
	for _, u := range p.Units {
		u.Emit(b)
	}
}

// Assemble lays the program out at base, terminated by HALT — the
// standalone form the interpreter and the pipeline run directly.
func (p *Program) Assemble(base uint32) (*asm.Program, error) {
	b := asm.NewBuilder()
	p.Emit(b)
	b.Halt()
	return b.Assemble(base)
}

// Routine wraps the program as an atomic sbst routine so it can run under
// any execution strategy and inside the fault-campaign engines.
func (p *Program) Routine(name string) *sbst.Routine {
	return &sbst.Routine{
		Name:         name,
		Target:       "progen",
		DataBase:     p.Cfg.ScratchBase,
		ScratchBytes: p.Cfg.ScratchWords() * 4,
		NoSplit:      true,
		Blocks:       []sbst.Block{{Name: "fuzz", Emit: p.Emit}},
	}
}

// NumInsts returns the body instruction count (excluding the final HALT of
// the standalone form).
func (p *Program) NumInsts() int {
	n := 0
	for _, u := range p.Units {
		n += u.Insts
	}
	return n
}

// WithoutUnit returns a copy of p with unit i removed. It is the
// minimization step: any non-pinned unit can be dropped and the result is
// still a valid, terminating program. The drop is recorded in the copy's
// Recipe.
func (p *Program) WithoutUnit(i int) *Program {
	cp := p.clone()
	cp.Units = append(cp.Units[:i:i], cp.Units[i+1:]...)
	cp.Recipe.Edits = append(cp.Recipe.Edits, Edit{Op: EditDrop, I: i})
	return cp
}

// clone returns a copy of p with its own unit and edit slices.
func (p *Program) clone() *Program {
	cp := *p
	cp.Units = append([]Unit(nil), p.Units...)
	cp.Recipe.Edits = append([]Edit(nil), p.Recipe.Edits...)
	return &cp
}
