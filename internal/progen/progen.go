package progen

import (
	"math"
	"math/rand"

	"repro/internal/archint"
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sbst"
)

// Register assignments (see package comment).
const (
	BaseReg       = 16 // holds Config.ScratchBase
	LoopReg       = 17 // counted-loop counter
	MaxOperandReg = 15 // operands are r1..r15

	// Handler-mode registers. The interrupt handler and the drain loop may
	// run at different program points on different execution models
	// (imprecise recognition), so everything they touch lives outside both
	// the compared operand set (r1..r15) and the generator's own working
	// registers — the transparency that makes handler-carrying programs
	// differentially comparable at all.
	//
	// The handler itself may touch ONLY AccumReg and HandlerTmpReg:
	// mutation can duplicate the prelude (and splice donors' preludes)
	// into interrupt-enabled code, so a take can land mid-prelude — e.g.
	// between `ori r22, ...` and `csrw ivec, r22` — and a handler that
	// clobbered the prelude's scratch register would corrupt the vector on
	// resume. The fuzzer found exactly that (see the
	// interrupt-prelude-dup corpus seed); keeping the handler's registers
	// disjoint from every other unit's closes the whole class.
	AccumReg      = 20 // OR-accumulated icause observations (handler-only write)
	ExpectReg     = 21 // cause bits the drain loop waits for (prelude write, drain read)
	HTmpReg       = 22 // prelude/drain scratch, never touched by the handler
	HandlerTmpReg = 23 // handler-only scratch
)

// DefaultScratchBase is the default scratch window (clear of the sbst
// routine data tables at SRAMBase+0x2000..0x8000).
const DefaultScratchBase = mem.SRAMBase + 0x8000

// Config tunes the generated instruction mix. The zero value gives the
// historical difftest distribution: ~20% memory operations, control-flow
// blocks three times out of four, no trap-raising operations.
type Config struct {
	// Pairs64 enables the 64-bit paired-register extension (ADDP, LWP,
	// SWP, ...). Only core C implements it; the interpreter must be built
	// with has64 to match.
	Pairs64 bool

	// MemFrac is the fraction of straight-line slots that become loads or
	// stores (0 < MemFrac < 1); 0 means the default 0.2.
	MemFrac float64

	// BranchFrac is the probability that a top-level block is control flow
	// (counted loop, forward branch, call/return) rather than straight
	// line; 0 means the default 0.75.
	BranchFrac float64

	// TrapFrac is the fraction of ALU slots that use the trap-raising
	// operations (ADDV, SUBV, MULV, DIVV). These raise synchronous events
	// towards the ICU — recognition-pipeline pressure — but generated
	// programs never enable interrupts, so the events stay architecturally
	// invisible and the program remains checkable against the interpreter.
	// The default is 0.
	TrapFrac float64

	// Blocks is the number of top-level blocks; 0 picks 6..11 at random.
	Blocks int

	// ScratchBase/ScratchSize bound the memory window the program
	// addresses. Zero values use DefaultScratchBase and 256 bytes. The
	// register spill area (16 words) follows the window.
	ScratchBase uint32
	ScratchSize int

	// Interrupts, when it schedules any events, switches the generator
	// into handler-emitting mode: the program installs an interrupt vector
	// and a terminating handler (accumulate icause, RFE), enables the
	// plan's mask, and — before spilling its registers — drains until
	// every enabled planned cause has been observed. The plan is part of
	// the Config and therefore of the Recipe, so FromRecipe rebuilds
	// handler programs bit-identically and corpus entries carry their
	// interrupt schedule with them.
	Interrupts archint.Plan `json:",omitzero"`
}

// Fraction-knob bounds. Values outside [0, max] are clamped rather than
// silently skewing generation: rng.Float64() < frac degenerates for
// frac >= 1 (the branch always taken) and for NaN (never taken).
const (
	maxMemFrac    = 0.9
	maxBranchFrac = 0.98
	maxTrapFrac   = 0.9
)

// clampFrac normalises one fraction knob: non-finite or non-positive
// values fall back to def, values above max clamp to max.
func clampFrac(v, def, max float64) float64 {
	if math.IsNaN(v) || v <= 0 {
		return def
	}
	if v > max {
		return max
	}
	return v
}

// withDefaults fills defaults and validates the knobs. Normalisation is
// idempotent — Recipe stores the normalised Config, and FromRecipe must
// rebuild the exact same program from it.
func (c Config) withDefaults() Config {
	c.MemFrac = clampFrac(c.MemFrac, 0.2, maxMemFrac)
	c.BranchFrac = clampFrac(c.BranchFrac, 0.75, maxBranchFrac)
	c.TrapFrac = clampFrac(c.TrapFrac, 0, maxTrapFrac)
	// MemFrac and TrapFrac are drawn sequentially per slot; a combined
	// budget above 1 would starve the plain-ALU mix entirely. Rescale the
	// pair to sum below 1 (0.95 keeps the rescale a fixed point).
	if sum := c.MemFrac + c.TrapFrac; sum > 1 {
		c.MemFrac *= 0.95 / sum
		c.TrapFrac *= 0.95 / sum
	}
	if c.Blocks < 0 {
		c.Blocks = 0
	}
	if c.Blocks > 64 {
		c.Blocks = 64
	}
	if c.ScratchBase == 0 {
		c.ScratchBase = DefaultScratchBase
	}
	// The scratch window must fit the widest access (8-byte pairs) with a
	// non-degenerate offset range; out-of-range sizes would panic the
	// offset draw or overrun the compared window.
	if c.ScratchSize < 64 {
		c.ScratchSize = 256
	}
	c.ScratchSize &^= 7
	return c
}

// ScratchWords returns the size, in words, of the memory window a
// generated program may write: the scratch area plus the register spill
// slots. Differential checkers compare exactly this window.
func (c Config) ScratchWords() int {
	c = c.withDefaults()
	return (c.ScratchSize + 4*(MaxOperandReg+1)) / 4
}

// sharedCause reports which ICU cause encoder the program's execution
// target uses: 64-bit pair programs must run on core C (fully decoded
// cause register), everything else targets core A (shared cause bits) —
// the same derivation internal/conform applies when picking the core
// under test. The drain loop's expected-cause mask depends on it.
func (c Config) sharedCause() bool { return !c.Pairs64 }

// Unit is one droppable fragment of a generated program. Emit appends the
// fragment to a builder; it captures only concrete values chosen at
// generation time, so re-emission (after dropping other units) is
// deterministic. Any labels come from b.AutoLabel and are local to the
// unit.
type Unit struct {
	Name   string
	Insts  int  // instructions this unit emits
	Pinned bool // never dropped by minimization (the scratch base pointer)
	Emit   func(b *asm.Builder)
}

// Program is a generated program: the ordered unit list plus the
// generation parameters needed to rebuild or describe it. Recipe records
// the full derivation (base seed, config, mutation edits), so any program
// — including one shaped by minimization or the fuzzer's mutators — can be
// serialized and rebuilt bit-identically (see FromRecipe).
type Program struct {
	Seed   int64
	Cfg    Config // normalised (defaults filled in)
	Units  []Unit
	Recipe Recipe
}

// Generate builds the program for (seed, cfg). The same pair always yields
// the same program.
func Generate(seed int64, cfg Config) *Program {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	g := &generator{rng: rng, cfg: cfg}

	p := &Program{Seed: seed, Cfg: cfg, Recipe: Recipe{Seed: seed, Cfg: cfg}}
	addUnit := func(name string, pinned bool, emit func(b *asm.Builder)) {
		n := asm.NewBuilder()
		emit(n)
		p.Units = append(p.Units, Unit{Name: name, Insts: n.Len() / isa.InstBytes, Pinned: pinned, Emit: emit})
	}

	base := cfg.ScratchBase
	addUnit("base", true, func(b *asm.Builder) { b.Li(BaseReg, base) })
	if cfg.Interrupts.Enabled() {
		// Handler-mode prelude, one pinned unit so mutation can never
		// split the handler: jump over the handler body, install the
		// vector, publish the drain target, enable the plan's mask (last —
		// events that pend earlier stay unrecognised until here, with the
		// vector already valid). The handler accumulates observed causes
		// into AccumReg and returns; it touches no compared state, so its
		// timing-dependent placement cannot diverge the models.
		enable, expect := cfg.Interrupts.Enable, cfg.Interrupts.ExpectedCause(cfg.sharedCause())
		addUnit("ivec", true, func(b *asm.Builder) {
			over := b.AutoLabel("over")
			handler := b.AutoLabel("handler")
			b.Jump(isa.OpJ, over)
			b.Label(handler)
			b.CsrR(HandlerTmpReg, isa.CsrICause)
			b.R(isa.OpOR, AccumReg, AccumReg, HandlerTmpReg)
			b.Emit(isa.Inst{Op: isa.OpRFE})
			b.Label(over)
			b.LiAddr(HTmpReg, handler)
			b.CsrW(isa.CsrIVec, HTmpReg)
			b.Li(ExpectReg, expect)
			b.Li(HTmpReg, enable)
			b.CsrW(isa.CsrIEnable, HTmpReg)
		})
	}
	for r := uint8(1); r <= MaxOperandReg; r++ {
		r, v := r, rng.Uint32()
		addUnit("seed", false, func(b *asm.Builder) { b.Li(r, v) })
	}

	blocks := cfg.Blocks
	if blocks <= 0 {
		blocks = 6 + rng.Intn(6)
	}
	for i := 0; i < blocks; i++ {
		if rng.Float64() >= cfg.BranchFrac {
			// Straight-line chunk: one unit per instruction for maximal
			// minimization granularity.
			for _, inst := range g.straight(4 + rng.Intn(12)) {
				inst := inst
				addUnit("inst", false, func(b *asm.Builder) { b.Emit(inst) })
			}
			continue
		}
		switch rng.Intn(3) {
		case 0: // bounded counted loop
			iters := int32(2 + rng.Intn(5))
			body := g.straight(2 + rng.Intn(6))
			addUnit("loop", false, func(b *asm.Builder) {
				b.I(isa.OpADDI, LoopReg, isa.RegZero, iters)
				top := b.AutoLabel("loop")
				b.Label(top)
				for _, inst := range body {
					b.Emit(inst)
				}
				b.I(isa.OpADDI, LoopReg, LoopReg, -1)
				b.Branch(isa.OpBNE, LoopReg, isa.RegZero, top)
			})
		case 1: // forward branch over a few instructions
			op := branchOps[rng.Intn(len(branchOps))]
			rs1, rs2 := g.reg(), g.reg()
			body := g.straight(1 + rng.Intn(4))
			addUnit("branch", false, func(b *asm.Builder) {
				skip := b.AutoLabel("skip")
				b.Branch(op, rs1, rs2, skip)
				for _, inst := range body {
					b.Emit(inst)
				}
				b.Label(skip)
			})
		default: // call/return
			body := g.straight(2 + rng.Intn(4))
			addUnit("call", false, func(b *asm.Builder) {
				sub := b.AutoLabel("sub")
				after := b.AutoLabel("after")
				b.Jump(isa.OpJAL, sub)
				b.Jump(isa.OpJ, after)
				b.Label(sub)
				for _, inst := range body {
					b.Emit(inst)
				}
				b.Emit(isa.Inst{Op: isa.OpJR, Rs1: isa.RegLink})
				b.Label(after)
			})
		}
	}

	if cfg.Interrupts.Enabled() {
		// Drain before the spills: spin until every enabled planned cause
		// has been accumulated. Not a counted loop, but still terminating
		// by construction — the loop itself keeps retiring instructions,
		// which matures every planned retire index, and the ICU contract
		// guarantees an enabled pending event is eventually recognised
		// (recognition re-arms on RFE). The interpreter, recognising
		// precisely, falls straight through.
		addUnit("drain", true, func(b *asm.Builder) {
			top := b.AutoLabel("drain")
			b.Label(top)
			b.R(isa.OpAND, HTmpReg, AccumReg, ExpectReg)
			b.Branch(isa.OpBNE, HTmpReg, ExpectReg, top)
		})
	}

	// Spill the operand registers so memory comparison also covers
	// register state (each spill its own unit; direct register comparison
	// keeps catching bugs when minimization drops them).
	spillBase := int32(cfg.ScratchSize)
	for r := uint8(1); r <= MaxOperandReg; r++ {
		r := r
		addUnit("spill", false, func(b *asm.Builder) {
			b.Store(isa.OpSW, r, BaseReg, spillBase+int32(r)*4)
		})
	}
	return p
}

var (
	aluOps = []isa.Op{
		isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOR,
		isa.OpSLT, isa.OpSLTU, isa.OpSLLV, isa.OpSRLV, isa.OpSRAV, isa.OpMUL,
	}
	trapOps   = []isa.Op{isa.OpADDV, isa.OpSUBV, isa.OpMULV, isa.OpDIVV}
	immOps    = []isa.Op{isa.OpADDI, isa.OpSLTI}
	logImmOps = []isa.Op{isa.OpANDI, isa.OpORI, isa.OpXORI}
	shiftOps  = []isa.Op{isa.OpSLL, isa.OpSRL, isa.OpSRA}
	branchOps = []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE}
	pairOps   = []isa.Op{isa.OpADDP, isa.OpSUBP, isa.OpXORP, isa.OpANDP, isa.OpORP}
)

// generator walks the rng; all randomness is consumed at generation time
// so the emitted units are pure data.
type generator struct {
	rng *rand.Rand
	cfg Config
}

func (g *generator) reg() uint8 { return uint8(1 + g.rng.Intn(MaxOperandReg)) }

// evenReg returns an even register r2..r12 (pair ops use (rN, rN+1)).
func (g *generator) evenReg() uint8 { return uint8(2 + 2*g.rng.Intn(6)) }

func (g *generator) off(align int) int32 {
	return int32(g.rng.Intn(g.cfg.ScratchSize/align)) * int32(align)
}

// straight produces n straight-line instructions following the configured
// mix.
func (g *generator) straight(n int) []isa.Inst {
	rng := g.rng
	out := make([]isa.Inst, 0, n)
	emit := func(i isa.Inst) { out = append(out, i) }
	for len(out) < n {
		if rng.Float64() < g.cfg.MemFrac {
			// Memory slot: word, byte or (with Pairs64) doubleword.
			kinds := 2
			if g.cfg.Pairs64 {
				kinds = 3
			}
			switch rng.Intn(kinds) {
			case 0:
				if rng.Intn(2) == 0 {
					emit(isa.Inst{Op: isa.OpSW, Rs2: g.reg(), Rs1: BaseReg, Imm: g.off(4)})
				} else {
					emit(isa.Inst{Op: isa.OpLW, Rd: g.reg(), Rs1: BaseReg, Imm: g.off(4)})
				}
			case 1:
				switch rng.Intn(3) {
				case 0:
					emit(isa.Inst{Op: isa.OpSB, Rs2: g.reg(), Rs1: BaseReg, Imm: g.off(1)})
				case 1:
					emit(isa.Inst{Op: isa.OpLB, Rd: g.reg(), Rs1: BaseReg, Imm: g.off(1)})
				default:
					emit(isa.Inst{Op: isa.OpLBU, Rd: g.reg(), Rs1: BaseReg, Imm: g.off(1)})
				}
			default:
				if rng.Intn(2) == 0 {
					emit(isa.Inst{Op: isa.OpSWP, Rs2: g.evenReg(), Rs1: BaseReg, Imm: g.off(8)})
				} else {
					emit(isa.Inst{Op: isa.OpLWP, Rd: g.evenReg(), Rs1: BaseReg, Imm: g.off(8)})
				}
			}
			continue
		}
		if g.cfg.TrapFrac > 0 && rng.Float64() < g.cfg.TrapFrac {
			emit(isa.Inst{Op: trapOps[rng.Intn(len(trapOps))], Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()})
			continue
		}
		kinds := 4
		if g.cfg.Pairs64 {
			kinds = 5
		}
		switch rng.Intn(kinds) {
		case 0:
			emit(isa.Inst{Op: immOps[rng.Intn(len(immOps))], Rd: g.reg(), Rs1: g.reg(),
				Imm: int32(rng.Intn(1<<15)) - 1<<14})
		case 1:
			emit(isa.Inst{Op: logImmOps[rng.Intn(len(logImmOps))], Rd: g.reg(), Rs1: g.reg(),
				Imm: int32(rng.Intn(1 << 16))})
		case 2:
			emit(isa.Inst{Op: shiftOps[rng.Intn(len(shiftOps))], Rd: g.reg(), Rs1: g.reg(),
				Imm: int32(rng.Intn(32))})
		case 4:
			emit(isa.Inst{Op: pairOps[rng.Intn(len(pairOps))], Rd: g.evenReg(),
				Rs1: g.evenReg(), Rs2: g.evenReg()})
		default:
			emit(isa.Inst{Op: aluOps[rng.Intn(len(aluOps))], Rd: g.reg(), Rs1: g.reg(), Rs2: g.reg()})
		}
	}
	return out
}

// Emit appends the whole program body (no HALT) to b.
func (p *Program) Emit(b *asm.Builder) {
	for _, u := range p.Units {
		u.Emit(b)
	}
}

// Assemble lays the program out at base, terminated by HALT — the
// standalone form the interpreter and the pipeline run directly.
func (p *Program) Assemble(base uint32) (*asm.Program, error) {
	b := asm.NewBuilder()
	p.Emit(b)
	b.Halt()
	return b.Assemble(base)
}

// Routine wraps the program as an atomic sbst routine so it can run under
// any execution strategy and inside the fault-campaign engines.
func (p *Program) Routine(name string) *sbst.Routine {
	return &sbst.Routine{
		Name:         name,
		Target:       "progen",
		DataBase:     p.Cfg.ScratchBase,
		ScratchBytes: p.Cfg.ScratchWords() * 4,
		NoSplit:      true,
		Blocks:       []sbst.Block{{Name: "fuzz", Emit: p.Emit}},
	}
}

// NumInsts returns the body instruction count (excluding the final HALT of
// the standalone form).
func (p *Program) NumInsts() int {
	n := 0
	for _, u := range p.Units {
		n += u.Insts
	}
	return n
}

// WithoutUnit returns a copy of p with unit i removed. It is the
// minimization step: any non-pinned unit can be dropped and the result is
// still a valid, terminating program. The drop is recorded in the copy's
// Recipe.
func (p *Program) WithoutUnit(i int) *Program {
	cp := p.clone()
	cp.Units = append(cp.Units[:i:i], cp.Units[i+1:]...)
	cp.Recipe.Edits = append(cp.Recipe.Edits, Edit{Op: EditDrop, I: i})
	return cp
}

// clone returns a copy of p with its own unit and edit slices.
func (p *Program) clone() *Program {
	cp := *p
	cp.Units = append([]Unit(nil), p.Units...)
	cp.Recipe.Edits = append([]Edit(nil), p.Recipe.Edits...)
	return &cp
}
