package progen

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/archint"
	"repro/internal/isa"
	"repro/internal/iss"
)

// run executes a generated program on the interpreter, failing the test on
// any error (non-termination, undecodable word, unsupported op). Handler
// programs get the architectural interrupt model their plan requires.
func run(t *testing.T, p *Program, has64 bool) *iss.ISS {
	t.Helper()
	prog, err := p.Assemble(0x1000)
	if err != nil {
		t.Fatalf("seed %d: %v", p.Seed, err)
	}
	m := iss.NewSparseMem()
	m.LoadWords(prog.Base, prog.Words)
	s := iss.New(m, prog.Base, has64)
	if p.Cfg.Interrupts.Enabled() {
		s.Int = archint.NewModel(p.Cfg.sharedCause(), p.Cfg.Interrupts)
	}
	if err := s.Run(500_000); err != nil {
		t.Fatalf("seed %d: %v", p.Seed, err)
	}
	return s
}

// opsOf decodes the assembled program and returns the op histogram.
func opsOf(t *testing.T, p *Program) map[isa.Op]int {
	t.Helper()
	prog, err := p.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[isa.Op]int{}
	for _, w := range prog.Words {
		inst, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("seed %d: undecodable word %08x: %v", p.Seed, w, err)
		}
		ops[inst.Op]++
	}
	return ops
}

func TestDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := Config{Pairs64: seed%2 == 0, TrapFrac: 0.2}
		a, err := Generate(seed, cfg).Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, cfg).Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Words) != len(b.Words) {
			t.Fatalf("seed %d: sizes differ: %d vs %d", seed, len(a.Words), len(b.Words))
		}
		for i := range a.Words {
			if a.Words[i] != b.Words[i] {
				t.Fatalf("seed %d: word %d differs: %08x vs %08x", seed, i, a.Words[i], b.Words[i])
			}
		}
	}
}

func TestAlwaysTerminates(t *testing.T) {
	configs := []Config{
		{},
		{Pairs64: true},
		{MemFrac: 0.6},
		{BranchFrac: 0.95},
		{TrapFrac: 0.5},
		{Pairs64: true, MemFrac: 0.5, BranchFrac: 0.9, TrapFrac: 0.3},
	}
	for seed := int64(1); seed <= 20; seed++ {
		for _, cfg := range configs {
			p := Generate(seed, cfg)
			run(t, p, cfg.Pairs64)
		}
	}
}

func TestKnobsHonoured(t *testing.T) {
	isPairOrTrap := func(ops map[isa.Op]int, pair, trap *int) {
		for op, n := range ops {
			if op.IsPair() {
				*pair += n
			}
			switch op {
			case isa.OpADDV, isa.OpSUBV, isa.OpMULV, isa.OpDIVV:
				*trap += n
			}
		}
	}
	var pair, trap int
	for seed := int64(1); seed <= 10; seed++ {
		isPairOrTrap(opsOf(t, Generate(seed, Config{})), &pair, &trap)
	}
	if pair != 0 || trap != 0 {
		t.Errorf("default config emitted %d pair and %d trap ops", pair, trap)
	}
	pair, trap = 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		isPairOrTrap(opsOf(t, Generate(seed, Config{Pairs64: true, TrapFrac: 0.3})), &pair, &trap)
	}
	if pair == 0 {
		t.Error("Pairs64 config emitted no pair ops across 10 seeds")
	}
	if trap == 0 {
		t.Error("TrapFrac config emitted no trap ops across 10 seeds")
	}
}

// TestMemoryStaysInWindow: every memory access of a generated program lands
// inside the configured scratch window (plus the spill area) — the
// precondition for differential memory comparison.
func TestMemoryStaysInWindow(t *testing.T) {
	cfg := Config{MemFrac: 0.6}
	for seed := int64(1); seed <= 10; seed++ {
		p := Generate(seed, cfg)
		lo := p.Cfg.ScratchBase
		hi := lo + uint32(p.Cfg.ScratchWords()*4)
		prog, err := p.Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range prog.Words {
			inst, err := isa.Decode(w)
			if err != nil || !inst.Op.IsMem() {
				continue
			}
			if inst.Rs1 != BaseReg {
				t.Fatalf("seed %d: memory op %v uses base r%d", seed, inst.Op, inst.Rs1)
			}
			if inst.Imm < 0 {
				t.Fatalf("seed %d: %v has negative offset %d", seed, inst.Op, inst.Imm)
			}
			addr := lo + uint32(inst.Imm)
			if addr+uint32(sizeOf(inst.Op)) > hi {
				t.Fatalf("seed %d: %v at offset %d overruns window end", seed, inst.Op, inst.Imm)
			}
		}
	}
}

func sizeOf(op isa.Op) int {
	switch op {
	case isa.OpLWP, isa.OpSWP:
		return 8
	case isa.OpLB, isa.OpLBU, isa.OpSB:
		return 1
	default:
		return 4
	}
}

// TestWithoutUnit: dropping any single non-pinned unit still yields a
// valid, terminating program — the property minimization depends on.
func TestWithoutUnit(t *testing.T) {
	p := Generate(5, Config{Pairs64: true, TrapFrac: 0.2})
	for i := range p.Units {
		if p.Units[i].Pinned {
			continue
		}
		run(t, p.WithoutUnit(i), true)
	}
	// Dropping everything but the pinned base still terminates.
	q := p
	for i := len(q.Units) - 1; i >= 0; i-- {
		if !q.Units[i].Pinned {
			q = q.WithoutUnit(i)
		}
	}
	if got := len(q.Units); got != 1 {
		t.Fatalf("expected only the pinned unit to remain, have %d", got)
	}
	run(t, q, true)
}

// TestKnobValidation: out-of-range knobs are clamped deterministically
// instead of panicking the generator or silently degenerating the mix,
// and the normalisation is a fixed point (the property recipe replay
// depends on).
func TestKnobValidation(t *testing.T) {
	wild := []Config{
		{MemFrac: 3.5, TrapFrac: 2.0, BranchFrac: 7},
		{MemFrac: math.NaN(), BranchFrac: math.NaN(), TrapFrac: math.NaN()},
		{MemFrac: -1, BranchFrac: -0.5, TrapFrac: -2},
		{MemFrac: 0.8, TrapFrac: 0.8}, // sum > 1
		{ScratchSize: -100, Blocks: -3},
		{ScratchSize: 7, Blocks: 100000},
	}
	for i, cfg := range wild {
		n := cfg.withDefaults()
		if !(n.MemFrac > 0 && n.MemFrac <= maxMemFrac) ||
			!(n.BranchFrac > 0 && n.BranchFrac <= maxBranchFrac) ||
			!(n.TrapFrac >= 0 && n.TrapFrac <= maxTrapFrac) {
			t.Errorf("cfg %d: fractions not normalised: %+v", i, n)
		}
		if n.MemFrac+n.TrapFrac > 1 {
			t.Errorf("cfg %d: MemFrac+TrapFrac = %v still above 1", i, n.MemFrac+n.TrapFrac)
		}
		if n.ScratchSize < 64 || n.ScratchSize%8 != 0 {
			t.Errorf("cfg %d: scratch size %d", i, n.ScratchSize)
		}
		if n.Blocks < 0 || n.Blocks > 64 {
			t.Errorf("cfg %d: blocks %d", i, n.Blocks)
		}
		if again := n.withDefaults(); !reflect.DeepEqual(n, again) {
			t.Errorf("cfg %d: normalisation not idempotent: %+v vs %+v", i, n, again)
		}
		// The generator must run the wild config end to end, and a recipe
		// carrying it must rebuild bit-identically.
		p := Generate(int64(i)+1, cfg)
		run(t, p, false)
		q, err := FromRecipe(p.Recipe)
		if err != nil {
			t.Fatalf("cfg %d: %v", i, err)
		}
		a, _ := p.Assemble(0x1000)
		b, _ := q.Assemble(0x1000)
		for k := range a.Words {
			if a.Words[k] != b.Words[k] {
				t.Fatalf("cfg %d: recipe replay diverged at word %d", i, k)
			}
		}
	}
}

// interruptCfg returns a handler-mode config with a recognisable plan.
func interruptCfg(seed int64) Config {
	rng := rand.New(rand.NewSource(seed))
	return Config{TrapFrac: 0.1, Interrupts: archint.RandomPlan(rng)}
}

// TestHandlerModeTerminatesAndDrains: handler programs terminate on the
// interpreter, observe every enabled planned cause (the drain loop's exit
// condition), and keep their interrupt machinery out of the compared
// operand registers.
func TestHandlerModeTerminatesAndDrains(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		cfg := interruptCfg(seed)
		p := Generate(seed, cfg)
		s := run(t, p, false)
		expect := p.Cfg.Interrupts.ExpectedCause(p.Cfg.sharedCause())
		if expect == 0 {
			t.Fatalf("seed %d: plan schedules nothing recognisable", seed)
		}
		if got := s.Regs[AccumReg]; got&expect != expect {
			t.Errorf("seed %d: accumulated causes %#x missing expected %#x", seed, got, expect)
		}
		if s.Int.InHandler() {
			t.Errorf("seed %d: program halted inside the handler", seed)
		}
	}
}

// TestHandlerModeRecipeRoundtrip: handler-mode programs — plan included —
// rebuild bit-identically from their recipe, through mutation chains too.
func TestHandlerModeRecipeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(1); seed <= 6; seed++ {
		p := Generate(seed, interruptCfg(seed))
		for k := 0; k < 3; k++ {
			p = Mutate(rng, p)
		}
		q, err := FromRecipe(p.Recipe)
		if err != nil {
			t.Fatal(err)
		}
		a, err := p.Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := q.Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Words) != len(b.Words) {
			t.Fatalf("seed %d: sizes differ", seed)
		}
		for i := range a.Words {
			if a.Words[i] != b.Words[i] {
				t.Fatalf("seed %d: word %d differs", seed, i)
			}
		}
	}
}

// TestWithoutPlanEvent: dropping any plan event but the last rebuilds a
// valid, terminating handler program; the last event refuses to drop.
func TestWithoutPlanEvent(t *testing.T) {
	var p *Program
	for seed := int64(1); ; seed++ {
		p = Generate(seed, interruptCfg(seed))
		if len(p.Cfg.Interrupts.Events) >= 2 {
			break
		}
	}
	n := len(p.Cfg.Interrupts.Events)
	for i := 0; i < n; i++ {
		q, err := p.WithoutPlanEvent(i)
		if err != nil {
			t.Fatalf("drop %d: %v", i, err)
		}
		if len(q.Cfg.Interrupts.Events) != n-1 {
			t.Fatalf("drop %d: %d events left", i, len(q.Cfg.Interrupts.Events))
		}
		run(t, q, false)
	}
	single := p
	for len(single.Cfg.Interrupts.Events) > 1 {
		var err error
		if single, err = single.WithoutPlanEvent(0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := single.WithoutPlanEvent(0); err == nil {
		t.Error("last plan event dropped")
	}
}

func TestUnitInstCounts(t *testing.T) {
	p := Generate(9, Config{})
	prog, err := p.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.NumInsts()+1, len(prog.Words); got != want {
		t.Errorf("NumInsts+HALT = %d, assembled %d words", got, want)
	}
}
