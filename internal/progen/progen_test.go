package progen

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/iss"
)

// run executes a generated program on the interpreter, failing the test on
// any error (non-termination, undecodable word, unsupported op).
func run(t *testing.T, p *Program, has64 bool) *iss.ISS {
	t.Helper()
	prog, err := p.Assemble(0x1000)
	if err != nil {
		t.Fatalf("seed %d: %v", p.Seed, err)
	}
	m := iss.NewSparseMem()
	m.LoadWords(prog.Base, prog.Words)
	s := iss.New(m, prog.Base, has64)
	if err := s.Run(500_000); err != nil {
		t.Fatalf("seed %d: %v", p.Seed, err)
	}
	return s
}

// opsOf decodes the assembled program and returns the op histogram.
func opsOf(t *testing.T, p *Program) map[isa.Op]int {
	t.Helper()
	prog, err := p.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	ops := map[isa.Op]int{}
	for _, w := range prog.Words {
		inst, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("seed %d: undecodable word %08x: %v", p.Seed, w, err)
		}
		ops[inst.Op]++
	}
	return ops
}

func TestDeterministic(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		cfg := Config{Pairs64: seed%2 == 0, TrapFrac: 0.2}
		a, err := Generate(seed, cfg).Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(seed, cfg).Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Words) != len(b.Words) {
			t.Fatalf("seed %d: sizes differ: %d vs %d", seed, len(a.Words), len(b.Words))
		}
		for i := range a.Words {
			if a.Words[i] != b.Words[i] {
				t.Fatalf("seed %d: word %d differs: %08x vs %08x", seed, i, a.Words[i], b.Words[i])
			}
		}
	}
}

func TestAlwaysTerminates(t *testing.T) {
	configs := []Config{
		{},
		{Pairs64: true},
		{MemFrac: 0.6},
		{BranchFrac: 0.95},
		{TrapFrac: 0.5},
		{Pairs64: true, MemFrac: 0.5, BranchFrac: 0.9, TrapFrac: 0.3},
	}
	for seed := int64(1); seed <= 20; seed++ {
		for _, cfg := range configs {
			p := Generate(seed, cfg)
			run(t, p, cfg.Pairs64)
		}
	}
}

func TestKnobsHonoured(t *testing.T) {
	isPairOrTrap := func(ops map[isa.Op]int, pair, trap *int) {
		for op, n := range ops {
			if op.IsPair() {
				*pair += n
			}
			switch op {
			case isa.OpADDV, isa.OpSUBV, isa.OpMULV, isa.OpDIVV:
				*trap += n
			}
		}
	}
	var pair, trap int
	for seed := int64(1); seed <= 10; seed++ {
		isPairOrTrap(opsOf(t, Generate(seed, Config{})), &pair, &trap)
	}
	if pair != 0 || trap != 0 {
		t.Errorf("default config emitted %d pair and %d trap ops", pair, trap)
	}
	pair, trap = 0, 0
	for seed := int64(1); seed <= 10; seed++ {
		isPairOrTrap(opsOf(t, Generate(seed, Config{Pairs64: true, TrapFrac: 0.3})), &pair, &trap)
	}
	if pair == 0 {
		t.Error("Pairs64 config emitted no pair ops across 10 seeds")
	}
	if trap == 0 {
		t.Error("TrapFrac config emitted no trap ops across 10 seeds")
	}
}

// TestMemoryStaysInWindow: every memory access of a generated program lands
// inside the configured scratch window (plus the spill area) — the
// precondition for differential memory comparison.
func TestMemoryStaysInWindow(t *testing.T) {
	cfg := Config{MemFrac: 0.6}
	for seed := int64(1); seed <= 10; seed++ {
		p := Generate(seed, cfg)
		lo := p.Cfg.ScratchBase
		hi := lo + uint32(p.Cfg.ScratchWords()*4)
		prog, err := p.Assemble(0x1000)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range prog.Words {
			inst, err := isa.Decode(w)
			if err != nil || !inst.Op.IsMem() {
				continue
			}
			if inst.Rs1 != BaseReg {
				t.Fatalf("seed %d: memory op %v uses base r%d", seed, inst.Op, inst.Rs1)
			}
			if inst.Imm < 0 {
				t.Fatalf("seed %d: %v has negative offset %d", seed, inst.Op, inst.Imm)
			}
			addr := lo + uint32(inst.Imm)
			if addr+uint32(sizeOf(inst.Op)) > hi {
				t.Fatalf("seed %d: %v at offset %d overruns window end", seed, inst.Op, inst.Imm)
			}
		}
	}
}

func sizeOf(op isa.Op) int {
	switch op {
	case isa.OpLWP, isa.OpSWP:
		return 8
	case isa.OpLB, isa.OpLBU, isa.OpSB:
		return 1
	default:
		return 4
	}
}

// TestWithoutUnit: dropping any single non-pinned unit still yields a
// valid, terminating program — the property minimization depends on.
func TestWithoutUnit(t *testing.T) {
	p := Generate(5, Config{Pairs64: true, TrapFrac: 0.2})
	for i := range p.Units {
		if p.Units[i].Pinned {
			continue
		}
		run(t, p.WithoutUnit(i), true)
	}
	// Dropping everything but the pinned base still terminates.
	q := p
	for i := len(q.Units) - 1; i >= 0; i-- {
		if !q.Units[i].Pinned {
			q = q.WithoutUnit(i)
		}
	}
	if got := len(q.Units); got != 1 {
		t.Fatalf("expected only the pinned unit to remain, have %d", got)
	}
	run(t, q, true)
}

func TestUnitInstCounts(t *testing.T) {
	p := Generate(9, Config{})
	prog, err := p.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := p.NumInsts()+1, len(prog.Words); got != want {
		t.Errorf("NumInsts+HALT = %d, assembled %d words", got, want)
	}
}
