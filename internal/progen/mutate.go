package progen

// Mutation mode: a generated program's droppable units are also
// spliceable, duplicable and reorderable, which is what the
// coverage-guided corpus loop in internal/conform mutates. Every mutation
// is recorded as an Edit in the program's Recipe, so a mutated program is
// exactly reproducible from (base seed, config, edit list) — the form the
// on-disk corpus stores.

import (
	"fmt"
	"math/rand"
)

// Edit operation names, as serialized in corpus files.
const (
	EditDrop   = "drop"   // remove unit I
	EditDup    = "dup"    // duplicate unit I, inserting the copy at J
	EditSwap   = "swap"   // exchange units I and J
	EditSplice = "splice" // insert N units of donor Generate(Seed, base Cfg), starting at donor unit J, at position I
)

// Edit is one recorded mutation step. Field meaning depends on Op (see the
// Edit* constants); unused fields stay zero and are omitted from JSON.
type Edit struct {
	Op   string `json:"op"`
	I    int    `json:"i"`
	J    int    `json:"j,omitempty"`
	N    int    `json:"n,omitempty"`
	Seed int64  `json:"seed,omitempty"`
}

// Recipe is a program's full derivation: the base generation parameters
// plus the ordered edits applied to it. It is the serializable identity of
// a Program — FromRecipe rebuilds the exact same instruction stream —
// which is what makes an on-disk corpus and shrunk-repro regression seeds
// possible.
type Recipe struct {
	Seed  int64  `json:"seed"`
	Cfg   Config `json:"cfg"`
	Edits []Edit `json:"edits,omitempty"`
}

// FromRecipe rebuilds the program a recipe describes: Generate(Seed, Cfg),
// then each edit in order. It fails on an edit that is out of bounds or
// would drop a pinned unit — a corrupt or hand-mangled corpus entry, not a
// legitimate derivation.
func FromRecipe(r Recipe) (*Program, error) {
	p := Generate(r.Seed, r.Cfg)
	for k, e := range r.Edits {
		q, err := p.applyEdit(e)
		if err != nil {
			return nil, fmt.Errorf("progen: recipe edit %d (%s): %w", k, e.Op, err)
		}
		p = q
	}
	return p, nil
}

// minInsert returns the first legal insertion index: inserted units must
// land after the leading pinned prelude (the scratch-base pointer every
// memory-accessing unit depends on). Inserting earlier would run memory
// ops against an uninitialised base register — a valid-looking program
// whose accesses fall outside the checked scratch window, i.e. a
// generator-validity hole, not a real engine divergence.
func (p *Program) minInsert() int {
	i := 0
	for i < len(p.Units) && p.Units[i].Pinned {
		i++
	}
	return i
}

// applyEdit returns a copy of p with e applied and recorded.
func (p *Program) applyEdit(e Edit) (*Program, error) {
	n := len(p.Units)
	switch e.Op {
	case EditDrop:
		if e.I < 0 || e.I >= n {
			return nil, fmt.Errorf("drop %d of %d units", e.I, n)
		}
		if p.Units[e.I].Pinned {
			return nil, fmt.Errorf("drop of pinned unit %d", e.I)
		}
		return p.WithoutUnit(e.I), nil
	case EditDup:
		if e.I < 0 || e.I >= n || e.J < p.minInsert() || e.J > n {
			return nil, fmt.Errorf("dup %d at %d of %d units", e.I, e.J, n)
		}
		cp := p.clone()
		u := cp.Units[e.I]
		u.Pinned = false // the copy is always droppable
		cp.Units = append(cp.Units[:e.J:e.J], append([]Unit{u}, cp.Units[e.J:]...)...)
		cp.Recipe.Edits = append(cp.Recipe.Edits, e)
		return cp, nil
	case EditSwap:
		if e.I < 0 || e.I >= n || e.J < 0 || e.J >= n {
			return nil, fmt.Errorf("swap %d,%d of %d units", e.I, e.J, n)
		}
		if p.Units[e.I].Pinned || p.Units[e.J].Pinned {
			return nil, fmt.Errorf("swap involving pinned unit")
		}
		cp := p.clone()
		cp.Units[e.I], cp.Units[e.J] = cp.Units[e.J], cp.Units[e.I]
		cp.Recipe.Edits = append(cp.Recipe.Edits, e)
		return cp, nil
	case EditSplice:
		// The donor is always a base generation with the recipient's own
		// config, so register conventions, the scratch window and the
		// 64-bit extension requirement line up by construction.
		return p.spliceFrom(e, Generate(e.Seed, p.Cfg))
	}
	return nil, fmt.Errorf("unknown op %q", e.Op)
}

// spliceFrom applies a splice edit using an already-built donor (which
// must be Generate(e.Seed, p.Cfg) — Mutate passes the donor it sized the
// edit against, applyEdit regenerates it from the recorded seed).
func (p *Program) spliceFrom(e Edit, donor *Program) (*Program, error) {
	if e.J < 0 || e.N <= 0 || e.J+e.N > len(donor.Units) {
		return nil, fmt.Errorf("splice donor units [%d:%d) of %d", e.J, e.J+e.N, len(donor.Units))
	}
	if e.I < p.minInsert() || e.I > len(p.Units) {
		return nil, fmt.Errorf("splice at %d of %d units", e.I, len(p.Units))
	}
	cp := p.clone()
	graft := make([]Unit, e.N)
	copy(graft, donor.Units[e.J:e.J+e.N])
	for i := range graft {
		graft[i].Pinned = false
	}
	cp.Units = append(cp.Units[:e.I:e.I], append(graft, cp.Units[e.I:]...)...)
	cp.Recipe.Edits = append(cp.Recipe.Edits, e)
	return cp, nil
}

// WithoutPlanEvent returns p rebuilt with interrupt-plan event i removed —
// the plan-axis minimization step. The drain target and enable sequence
// baked into the prelude unit depend on the plan, so the program is
// regenerated from the edited recipe (same seed, same edit list) rather
// than patched. Dropping the last event would leave handler mode entirely
// and change the unit structure under the recorded edits, so a one-event
// plan refuses to shrink further.
func (p *Program) WithoutPlanEvent(i int) (*Program, error) {
	r := p.Recipe
	n := len(r.Cfg.Interrupts.Events)
	if i < 0 || i >= n {
		return nil, fmt.Errorf("progen: drop plan event %d of %d", i, n)
	}
	if n == 1 {
		return nil, fmt.Errorf("progen: cannot drop the last plan event")
	}
	r.Cfg.Interrupts = r.Cfg.Interrupts.WithoutEvent(i)
	return FromRecipe(r)
}

// maxSpliceUnits bounds one splice so mutated programs grow gradually.
const maxSpliceUnits = 8

// Mutate returns a copy of p with 1-3 random edits applied: drop, dup or
// swap of droppable units, or a splice of units from a fresh donor program
// (seeded from rng, generated with p's config). Mutations that happen to
// be invalid for the current shape (e.g. a drop landing on a pinned unit)
// are skipped, so the result may occasionally equal p; it is always a
// valid, terminating program, and its Recipe records the applied edits.
func Mutate(rng *rand.Rand, p *Program) *Program {
	edits := 1 + rng.Intn(3)
	for k := 0; k < edits; k++ {
		n := len(p.Units)
		if n == 0 {
			break
		}
		var q *Program
		var err error
		lo := p.minInsert() // insertions stay after the pinned prelude
		// Splice and dup are weighted up: they grow and recombine programs,
		// which is what pushes event counts into new coverage buckets; drop
		// and swap mostly reshuffle what a parent already covers.
		switch rng.Intn(8) {
		case 0:
			q, err = p.applyEdit(Edit{Op: EditDrop, I: rng.Intn(n)})
		case 1, 2:
			q, err = p.applyEdit(Edit{Op: EditDup, I: rng.Intn(n), J: lo + rng.Intn(n-lo+1)})
		case 3:
			q, err = p.applyEdit(Edit{Op: EditSwap, I: rng.Intn(n), J: rng.Intn(n)})
		default:
			donorSeed := int64(rng.Uint64() >> 1)
			donor := Generate(donorSeed, p.Cfg)
			cnt := 1 + rng.Intn(maxSpliceUnits)
			if cnt > len(donor.Units) {
				cnt = len(donor.Units)
			}
			e := Edit{Op: EditSplice, Seed: donorSeed,
				I: lo + rng.Intn(n-lo+1), J: rng.Intn(len(donor.Units) - cnt + 1), N: cnt}
			q, err = p.spliceFrom(e, donor)
		}
		if err == nil {
			p = q
		}
	}
	return p
}

// PerturbKnobs jitters the generator's distribution knobs around cfg: the
// fuzzer's third mutation axis besides seed sweep and unit edits. The
// result keeps cfg's structural parameters (Pairs64, scratch window) so
// perturbed programs stay comparable and spliceable.
func PerturbKnobs(rng *rand.Rand, cfg Config) Config {
	cfg = cfg.withDefaults()
	jitter := func(v, lo, hi float64) float64 {
		v *= 0.5 + rng.Float64() // x0.5 .. x1.5
		if v < lo {
			v = lo
		}
		if v > hi {
			v = hi
		}
		return v
	}
	cfg.MemFrac = jitter(cfg.MemFrac, 0.02, 0.9)
	cfg.BranchFrac = jitter(cfg.BranchFrac, 0.05, 0.98)
	switch rng.Intn(3) {
	case 0:
		cfg.TrapFrac = 0
	case 1:
		cfg.TrapFrac = 0.05 + 0.3*rng.Float64()
	}
	cfg.Blocks = 4 + rng.Intn(12)
	return cfg
}
