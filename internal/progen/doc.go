// Package progen generates random, always-terminating test programs for
// differential testing of the ISA implementations: the functional
// interpreter (internal/iss), the cycle-accurate pipeline in any SoC
// configuration, and the reusable fault-simulation arenas. It is the
// difftest generator promoted to a first-class, reusable subsystem.
//
// Programs are built from a fixed seed, so every consumer — tests, the
// conform harness, a failure repro command line — regenerates the exact
// same instruction stream from (seed, Config). Termination is guaranteed
// by construction: the only backward branches are counted loops with a
// dedicated counter register, and calls always return.
//
// A generated Program is a list of Units, each a self-contained fragment
// (one straight-line instruction, or one atomic control-flow block).
// Dropping any subset of non-pinned units yields another valid,
// terminating program, which is what makes drop-an-instruction failure
// minimization possible (see internal/conform).
//
// Register conventions: r1..r15 are operand registers seeded with random
// constants, r16 (BaseReg) holds the scratch base address, r17 (LoopReg)
// is the loop counter, and handler mode reserves r20..r23
// (AccumReg/ExpectReg/HTmpReg/HandlerTmpReg). The strategy bridge
// (BlockForm) uses r18/r19/r24/r25 for its clear/fold loops and link
// preservation; r26..r31 are left to the sbst/core wrappers. A Program
// can therefore run bare (Assemble), as an atomic routine (Routine), or
// in strategy-wrappable block form (BlockForm) under core.Plain,
// core.CacheBased or core.TCMBased.
//
// Handler mode (Config.Interrupts, an archint.Plan) additionally emits a
// pinned interrupt prelude — vector installation, a terminating
// accumulate-and-RFE handler, the plan's enable mask — and a pinned drain
// loop that spins until every enabled planned cause has been observed.
// The handler touches only AccumReg and HandlerTmpReg — registers no
// other generated code writes — so its placement (which differs between
// the precise interpreter and the imprecise pipeline, and can fall inside
// a mutation-duplicated prelude) never reaches compared architectural
// state or any live scratch value; the drain loop is the only non-counted
// backward branch the generator emits, and it terminates by the ICU's
// delivery guarantee (see internal/archint).
package progen
