// Package core implements the paper's primary contribution: the
// deterministic cache-based execution strategy for boot-time self-test
// routines in a multi-core SoC (Section III), together with the two
// comparison strategies of the evaluation — plain in-place execution and
// the TCM-based approach of Table IV.
//
// The cache-based transformation takes an unmodified single-core routine
// and wraps it as:
//
//	cinv  both            ; invalidate private I/D caches      (Fig 2b, block b)
//	li    r30, 2
//	loop: sig-reset; data-base; BODY                           (blocks c,d)
//	      addi r30, r30, -1
//	      bne  r30, r0, loop
//
// The first iteration (the loading loop) drags every instruction and every
// referenced data line into the private caches; its signature work is
// discarded. The second iteration (the execution loop) runs entirely
// cache-resident, decoupled from bus contention, and produces the
// signature that is actually checked. When the doubled routine does not
// fit the instruction cache it is split into chunks at block boundaries,
// each with its own invalidate+loop, chaining the signature through an
// uncached mailbox (rule 2.2 of the paper). With a no-write-allocate data
// cache the routine must have been generated with dummy loads after each
// store (rule 1); Wrap validates that.
package core
