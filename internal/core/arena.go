package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"reflect"
	"sync"
	"time"

	"repro/internal/archint"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/soc"
	"repro/internal/telemetry"
)

// Arena is a reusable fault-simulation worker: one long-lived SoC with the
// program assembled and loaded exactly once, serving thousands of fault runs
// as reset + plane-swap instead of soc.New + reassemble + reload. The
// per-run hot path is allocation-free.
//
// An Arena additionally supports early exit on observable divergence: during
// construction it captures the golden run's observable trace (every
// data-side store the core under test performs, with value and cycle), and
// faulty runs are watched against that trace. Two watchdogs bound runs that
// can no longer reach a clean outcome long before the full cycle budget:
//
//   - hang: no observable store for more than 8x the golden run's largest
//     store-to-store gap (and at least one whole golden run) plus slack —
//     the wedged/deadlocked class, which under the plain budget burns 8x
//     the golden cycle count per fault;
//   - flood: a run that has observably diverged keeps storing past 8x the
//     golden store count (plus slack) — the runaway-loop class.
//
// The margins apply the same 8x stall-factor assumption the campaign cycle
// budget (golden cycles x 8 + 20_000) embodies, at store-gap rather than
// whole-run granularity, so both modes misclassify only runs slowed by
// more than 8x — and the mode-equivalence tests pin that they agree on
// every site of the shipped universes. ArenaOptions.NoEarlyExit restores
// the exact full-budget reference semantics. Runs that halt (cleanly or
// wedged) are never cut short, so their signatures are exact.
type Arena struct {
	s      *soc.SoC
	id     int
	entry  uint32
	budget int64
	early  bool

	// Construction inputs, kept so a quarantined arena can rebuild itself
	// and a dead one can fall back to rebuild-per-fault runs.
	cfg soc.Config
	job *CoreJob
	opt ArenaOptions

	// Golden observable trace and derived watchdog bounds.
	golden    []obsEvent
	hangLimit int64
	floodCap  int

	// Golden reference for the health check: the full result of the
	// construction-time capture run.
	goldenRes RunResult
	goldenOK  bool

	// Checkpointing state (nil/empty when ArenaOptions.CheckpointInterval
	// is zero or the golden capture failed). probe and ckpts are read-only
	// after construction and may be shared across arenas (see
	// newArenaClone); soc.State snapshots are plain data restorable into
	// any SoC built from the same config and programs.
	probe *fault.MuxProbe
	ckpts []checkpoint

	// Per-run monitor state (reset by Run).
	capturing bool
	idx       int
	count     int
	diverged  bool
	lastObs   int64

	// Per-run fast-forward state: the checkpoints past the running
	// Transition site's last activating edge, against which stepRun
	// compares the live SoC for exact re-convergence with the golden run
	// (empty when the run is not eligible).
	ffCks   []checkpoint
	ffPlane *fault.Transition

	// Failure-domain state. inRun is true while runOnce executes; finding
	// it still set on the next Run means the previous run panicked out
	// through the campaign's recover boundary. dead marks an arena whose
	// rebuild failed: it serves every remaining site via fallbackRun.
	inRun bool
	dead  bool

	// testPoison, when set (same-package tests only), runs after every
	// Reset inside runOnce — the hook the quarantine tests use to corrupt
	// post-Reset state.
	testPoison func(*soc.SoC)

	last RunResult

	// st holds the lifetime counters (Stats() fills in the derived
	// fields). path is the dispatch classification of the run in flight,
	// set by whichever serving path executes and folded into st.Dispatch
	// by Run. met carries the registry handles; its zero value (telemetry
	// detached) makes every metric update a nil-check no-op.
	st   ArenaStats
	path fault.DispatchPath
	met  arenaMetrics
}

// ArenaStats is one arena's lifetime counters as a plain snapshot —
// the unified form of the per-counter getters, which now delegate to it.
// Campaign code folds the per-worker snapshots into campaign totals
// (fault.Report.Dispatch) and the run-summary JSON.
type ArenaStats struct {
	// Runs counts plane-swap runs served by the long-lived SoC, golden
	// capture included.
	Runs int64
	// EarlyExits counts runs the divergence watchdogs terminated before
	// the full budget.
	EarlyExits int64
	// HealthChecks counts golden-replay health probes.
	HealthChecks int64
	// Quarantines counts rebuilds after a failed health check.
	Quarantines int64
	// FallbackRuns counts sites served by fresh-SoC rebuild-per-fault
	// runs.
	FallbackRuns int64
	// CheckpointRuns counts runs started from a golden checkpoint.
	CheckpointRuns int64
	// GoldenServed counts sites served the golden verdict outright.
	GoldenServed int64
	// ConvergedRuns counts runs cut short by exact re-convergence with
	// the golden run past the site's last activating edge.
	ConvergedRuns int64
	// Jumps counts provably-golden mid-run windows skipped by restoring
	// a later checkpoint.
	Jumps int64
	// Dispatch classifies every site served through Run by the path that
	// served it (fallback runs included).
	Dispatch fault.DispatchStats
	// Checkpoints is the number of golden-run restore points held.
	Checkpoints int
	// GoldenEvents is the length of the captured observable trace.
	GoldenEvents int
	// GoldenOK reports a clean construction-time golden capture.
	GoldenOK bool
	// Dead reports an arena that gave up on reuse (rebuild failed).
	Dead bool
}

// Stats snapshots the arena's lifetime counters.
func (a *Arena) Stats() ArenaStats {
	st := a.st
	st.Checkpoints = len(a.ckpts)
	st.GoldenEvents = len(a.golden)
	st.GoldenOK = a.goldenOK
	st.Dead = a.dead
	return st
}

// arenaMetrics holds the registry handles an arena updates on its hot
// path. All handles are nil when telemetry is detached; enabled gates the
// time.Now() calls so the detached path pays only nil checks.
type arenaMetrics struct {
	enabled      bool
	dispatch     [fault.NumDispatchPaths]*telemetry.Counter
	runNs        [fault.NumDispatchPaths]*telemetry.Histogram
	earlyExits   *telemetry.Counter
	healthChecks *telemetry.Counter
	quarantines  *telemetry.Counter
	converged    *telemetry.Counter
	jumps        *telemetry.Counter
}

// newArenaMetrics resolves the arena metric names once. Worker arenas
// cloned from one prototype share the registry, so they land on the same
// atomic handles and their updates aggregate campaign-wide.
func newArenaMetrics(reg *telemetry.Registry) arenaMetrics {
	if reg == nil {
		return arenaMetrics{}
	}
	m := arenaMetrics{enabled: true}
	for p := fault.DispatchPath(0); p < fault.NumDispatchPaths; p++ {
		m.dispatch[p] = reg.Counter("arena_dispatch_" + p.String() + "_total")
		m.runNs[p] = reg.Histogram("arena_run_ns_" + p.String())
	}
	m.earlyExits = reg.Counter("arena_early_exits_total")
	m.healthChecks = reg.Counter("arena_health_checks_total")
	m.quarantines = reg.Counter("arena_quarantines_total")
	m.converged = reg.Counter("arena_converged_runs_total")
	m.jumps = reg.Counter("arena_jumps_total")
	return m
}

// checkpoint is one golden-run restore point: the full SoC state at cycle,
// plus the arena monitor and Transition edge history a run restored there
// must resume with.
type checkpoint struct {
	cycle   int64
	state   *soc.State
	obsIdx  int
	lastObs int64
	hist    fault.MuxHistory
}

// obsEvent is one observable event: a completed data-side store of the core
// under test. The cycle stamp calibrates the hang watchdog; divergence
// compares only address, value and size (a faulty run that is merely slower
// is not observably divergent).
type obsEvent struct {
	addr  uint32
	val   uint64
	size  int
	cycle int64
}

// ArenaOptions tunes an Arena.
type ArenaOptions struct {
	// NoEarlyExit disables the divergence watchdogs; every run then uses
	// the full cycle budget. Together with checkpointing off this is the
	// reference mode: no early exit, no checkpoint fast-forward, no
	// golden-verdict shortcut — the semantics every arena optimization is
	// differentially pinned against.
	NoEarlyExit bool
	// CheckpointInterval > 0 snapshots the golden capture run every that
	// many cycles and starts each Transition-fault run from the last
	// checkpoint before the site's first activating edge instead of
	// replaying the golden prefix from cycle 0 (sites that never activate
	// are served the golden verdict outright). Stuck-at sites always take
	// the full replay. Zero disables checkpointing; campaigns enable it by
	// default (see CampaignOptions.CheckpointInterval).
	CheckpointInterval int64
	// Plan, when enabled, drives a deterministic interrupt-event plan into
	// the core under test on every run (golden capture included) — the
	// fault x planned-interrupt cross of the multifault scenario. The
	// injector's delivery cursor rewinds with Reset but is not part of
	// soc.State snapshots, so an enabled plan forces checkpointing off.
	Plan archint.Plan
	// Telemetry, when non-nil, receives the arena's dispatch-path
	// counters and per-path run-latency histograms. Nil (the default)
	// disables metrics at zero cost — the nil-receiver contract of
	// internal/telemetry.
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives a quarantine event whenever the
	// arena is rebuilt after a failed health check.
	Events *telemetry.EventLog
}

// earlySlack mirrors the constant term of the campaign watchdog budget
// (golden cycles x 8 + 20_000).
const earlySlack = 20_000

// NewArena assembles the SoC once and runs the fault-free golden once to
// capture the observable trace. cfg should carry the replayed background
// traffic; only core id is activated regardless of cfg's Active flags.
func NewArena(cfg soc.Config, id int, job *CoreJob, budget int64, opt ArenaOptions) (*Arena, error) {
	for k := 0; k < soc.NumCores; k++ {
		cfg.Cores[k].Active = k == id
		cfg.Cores[k].Plane = nil // planes are swapped per run
	}
	if opt.Plan.Enabled() {
		// soc.State snapshots do not cover the injector's delivery cursor
		// (see cpu.CoreState), so checkpoint restores would resume with a
		// stale cursor; plans force the full-replay path.
		opt.CheckpointInterval = 0
	}
	prog, err := buildProgram(job)
	if err != nil {
		return nil, fmt.Errorf("arena core%d: %w", id, err)
	}
	s := soc.New(cfg)
	if err := s.Load(prog); err != nil {
		return nil, fmt.Errorf("arena core%d: %w", id, err)
	}
	for _, r := range job.routines() {
		loadRoutineData(s, r)
	}
	s.SealBaseline()

	a := &Arena{s: s, id: id, entry: prog.Base, budget: budget, cfg: cfg, job: job, opt: opt,
		met: newArenaMetrics(opt.Telemetry)}
	s.Cores[id].Core.SetStoreObserver(a.observe)
	if opt.Plan.Enabled() {
		// The attachment survives Reset; the cursor rewinds with the core.
		s.SetInjector(id, archint.NewInjector(opt.Plan))
	}

	// Golden capture run: records the observable trace and calibrates the
	// watchdog bounds. With checkpointing on, the run additionally carries
	// the activation probe (an identity plane, so the run is still the
	// golden run) and snapshots the SoC every CheckpointInterval cycles.
	// When the capture fails (the campaign will reject the golden anyway)
	// early exit stays disabled, runs simply use the full budget, the
	// health check has no reference to replay against, and the
	// checkpoints are dropped — restored runs would have no golden
	// reference to be equivalent to.
	capturePlane := fault.Plane(fault.None)
	if opt.CheckpointInterval > 0 {
		a.probe = fault.NewMuxProbe(s.Cycle)
		capturePlane = a.probe
	}
	a.capturing = true
	_, ok, _ := a.runOnce(capturePlane)
	a.capturing = false
	if ok {
		a.goldenRes, a.goldenOK = a.last, true
		if !opt.NoEarlyExit {
			a.calibrate()
		}
	} else {
		a.probe, a.ckpts = nil, nil
	}
	return a, nil
}

// newArenaClone builds an additional worker arena from a prototype without
// re-running the golden capture: a fresh SoC over the same config and
// program, with the prototype's golden trace, watchdog bounds, activation
// probe and checkpoints shared read-only. Snapshots are plain data
// restorable into any identically-built SoC, so sharing ckpts across
// workers is safe.
func newArenaClone(proto *Arena) (*Arena, error) {
	prog, err := buildProgram(proto.job)
	if err != nil {
		return nil, fmt.Errorf("arena core%d: %w", proto.id, err)
	}
	s := soc.New(proto.cfg)
	if err := s.Load(prog); err != nil {
		return nil, fmt.Errorf("arena core%d: %w", proto.id, err)
	}
	for _, r := range proto.job.routines() {
		loadRoutineData(s, r)
	}
	s.SealBaseline()

	a := &Arena{
		s: s, id: proto.id, entry: prog.Base, budget: proto.budget,
		early: proto.early, cfg: proto.cfg, job: proto.job, opt: proto.opt,
		golden: proto.golden, hangLimit: proto.hangLimit,
		floodCap: proto.floodCap, goldenRes: proto.goldenRes,
		goldenOK: proto.goldenOK, probe: proto.probe, ckpts: proto.ckpts,
		met: newArenaMetrics(proto.opt.Telemetry),
	}
	s.Cores[a.id].Core.SetStoreObserver(a.observe)
	if a.opt.Plan.Enabled() {
		s.SetInjector(a.id, archint.NewInjector(a.opt.Plan))
	}
	return a, nil
}

// calibrate derives the watchdog bounds from the captured golden trace.
func (a *Arena) calibrate() {
	a.early = true
	if len(a.golden) == 0 {
		// No observable events at all: nothing to watch, keep the plain
		// budget (the hang limit below would equal it anyway).
		a.early = false
		return
	}
	var maxGap, prev int64
	for _, ev := range a.golden {
		if g := ev.cycle - prev; g > maxGap {
			maxGap = g
		}
		prev = ev.cycle
	}
	if g := a.last.Cycles - prev; g > maxGap {
		maxGap = g
	}
	a.hangLimit = maxGap * 8
	if a.hangLimit < a.last.Cycles {
		// Never call a run hung for a silence shorter than one entire
		// golden run: routines with dense stores would otherwise get an
		// aggressive limit, and a hung run still stops at ~1/8 of the
		// full campaign budget.
		a.hangLimit = a.last.Cycles
	}
	a.hangLimit += earlySlack
	a.floodCap = len(a.golden)*8 + 1_000
}

// observe receives every completed store of the core under test.
func (a *Arena) observe(addr uint32, val uint64, size int) {
	a.lastObs = a.s.Cycle()
	if a.capturing {
		a.golden = append(a.golden, obsEvent{addr: addr, val: val, size: size, cycle: a.lastObs})
		return
	}
	if !a.diverged {
		if a.idx >= len(a.golden) {
			a.diverged = true
		} else if g := a.golden[a.idx]; g.addr != addr || g.val != val || g.size != size {
			a.diverged = true
		}
		a.idx++
	}
	a.count++
}

// Run executes one fault run under plane p (fault.None for golden) and
// reports the final signature plus whether the run completed cleanly. It is
// the fault.RunFunc of this arena; each arena serves one worker goroutine.
//
// Run is also the arena's failure-domain boundary. A run that ends
// anomalously — panicked out through the campaign's recover boundary, or
// cut by a watchdog (early exit or budget exhaustion) — may have left state
// behind that Reset cannot rewind, so before the verdict stands the arena
// replays the golden run and requires the construction-time RunResult
// exactly. A failed health check quarantines the arena: it is rebuilt from
// scratch and the suspect site is re-run on a fresh SoC (rebuild-per-fault
// semantics), so one corrupt Reset can never silently
// skew subsequent verdicts. If even the rebuild fails the arena is dead
// and serves every remaining site via fresh-SoC runs.
func (a *Arena) Run(p fault.Plane) (sig uint32, ok bool) {
	// Classify the site by the path that ends up serving it (the serving
	// paths overwrite a.path) and time the whole service, health checks
	// and fallbacks included — the latency the campaign actually paid.
	// The fault-free golden verification run is not a site: it stays out
	// of the dispatch counts so Dispatch.Total() matches the sites served.
	a.path = fault.DispatchFullReplay
	var t0 time.Time
	if a.met.enabled {
		t0 = time.Now()
	}
	sig, ok = a.serve(p)
	if p != fault.None {
		a.st.Dispatch[a.path]++
		if a.met.enabled {
			a.met.dispatch[a.path].Inc()
			a.met.runNs[a.path].Observe(time.Since(t0).Nanoseconds())
		}
	}
	return sig, ok
}

// serve is the Run body: failure-domain validation around the dispatch.
func (a *Arena) serve(p fault.Plane) (sig uint32, ok bool) {
	if a.dead {
		return a.fallbackRun(p)
	}
	if a.inRun {
		// The previous run never returned: it panicked and the campaign's
		// recover boundary caught it. Validate the arena before serving
		// another site.
		a.inRun = false
		if !a.healthy() {
			a.quarantine()
			if a.dead {
				return a.fallbackRun(p)
			}
		}
	}
	a.inRun = true
	sig, ok, cut := a.dispatch(p)
	a.inRun = false
	if cut && !a.healthy() {
		a.quarantine()
		return a.fallbackRun(p)
	}
	return sig, ok
}

// dispatch picks the cheapest sound way to serve plane p. Transition
// faults are transparent until their site's first activating edge, which
// the construction-time probe recorded: sites that never activate are
// served the golden verdict outright, and activating sites start from the
// last golden checkpoint before their activation cycle with the plane's
// edge history seeded from the checkpoint. Everything else — stuck-at
// sites, the fault-free plane, unknown plane types — takes the full
// replay from cycle 0.
func (a *Arena) dispatch(p fault.Plane) (sig uint32, ok, cut bool) {
	t, isTransition := p.(*fault.Transition)
	if !isTransition || a.probe == nil || !a.goldenOK {
		return a.runOnce(p)
	}
	act := a.probe.FirstActivation(t.S)
	if act < 0 {
		// The fault never modifies a delivered value: its run is
		// bit-identical to the golden run, so serve the golden verdict.
		a.st.GoldenServed++
		a.path = fault.DispatchGolden
		a.last = a.goldenRes
		return a.goldenRes.Signature, a.goldenRes.OK, false
	}
	if ck := a.checkpointBefore(act); ck != nil {
		return a.runFrom(ck, t)
	}
	return a.runOnce(p)
}

// checkpointBefore returns the latest golden checkpoint strictly before
// cycle act, or nil when none exists (activation inside the first
// interval, or checkpointing produced no snapshots).
func (a *Arena) checkpointBefore(act int64) *checkpoint {
	for i := len(a.ckpts) - 1; i >= 0; i-- {
		if a.ckpts[i].cycle < act {
			return &a.ckpts[i]
		}
	}
	return nil
}

// runFrom executes a Transition run starting from a golden checkpoint
// instead of cycle 0: SoC state restored, plane edge history seeded from
// the checkpoint, and the divergence monitor resumed at the checkpoint's
// trace position. Sound because the faulty run is bit-identical to the
// golden run before the site's first activating edge, which the caller
// guarantees lies after the checkpoint.
func (a *Arena) runFrom(ck *checkpoint, t *fault.Transition) (sig uint32, ok, cut bool) {
	s := a.s
	s.Restore(ck.state)
	if a.testPoison != nil {
		a.testPoison(s)
	}
	t.SeedHistory(ck.hist.For(t.S))
	s.SetPlane(a.id, t)
	a.setupFastForward(t)
	a.idx, a.count, a.diverged, a.lastObs = ck.obsIdx, ck.obsIdx, false, ck.lastObs
	a.st.Runs++
	a.st.CheckpointRuns++
	a.path = fault.DispatchCheckpoint
	return a.stepRun()
}

// setupFastForward arms re-convergence detection for a Transition run: at
// every golden checkpoint the run passes, stepRun checks whether the
// faulty SoC has exactly re-converged with the golden run — in which case
// the run is provably golden-identical until the site's next activating
// edge and can jump over the gap (or straight to the golden verdict when
// no edge remains).
func (a *Arena) setupFastForward(p fault.Plane) {
	a.ffCks, a.ffPlane = nil, nil
	t, isTransition := p.(*fault.Transition)
	if !isTransition || a.probe == nil || !a.goldenOK {
		return
	}
	cur := a.s.Cycle()
	for i := range a.ckpts {
		if a.ckpts[i].cycle > cur {
			a.ffCks, a.ffPlane = a.ckpts[i:], t
			return
		}
	}
}

// converged reports whether, at golden checkpoint ck (which the run has
// just reached), the faulty run has exactly re-converged with the golden
// run: divergence monitor in the golden position, plane edge history
// matching the golden history on the faulty bit, and the full SoC state
// bit-identical to the checkpoint. All three are required for the
// continuation to be provably golden-identical up to the next activating
// edge — the monitor condition also guarantees the skipped window cannot
// trip a watchdog the full replay would have tripped differently.
func (a *Arena) convergedAt(ck *checkpoint) bool {
	if a.diverged || a.idx != ck.obsIdx || a.count != ck.obsIdx || a.lastObs != ck.lastObs {
		return false
	}
	prev, seen := a.ffPlane.History()
	hPrev, hSeen := ck.hist.For(a.ffPlane.S)
	if seen != hSeen || (seen && (prev^hPrev)>>(a.ffPlane.S.Bit&63)&1 != 0) {
		return false
	}
	return reflect.DeepEqual(a.s.Snapshot(), ck.state)
}

// runOnce executes one reset + plane-swap run from cycle 0. cut reports an
// anomalous ending: a watchdog abort or budget exhaustion before the SoC
// drained (wedged cores halt and drain normally, so they are not cut).
func (a *Arena) runOnce(p fault.Plane) (sig uint32, ok, cut bool) {
	s := a.s
	s.Reset()
	if a.testPoison != nil {
		a.testPoison(s)
	}
	// The plane may have served an earlier run (fallback and re-run
	// paths); stale Transition edge history — directly or inside a
	// Composite — must not leak into this run.
	fault.ResetPlaneState(p)
	s.SetPlane(a.id, p)
	s.Start(a.id, a.entry)
	a.setupFastForward(p)
	a.idx, a.count, a.diverged, a.lastObs = 0, 0, false, 0
	a.st.Runs++
	return a.stepRun()
}

// stepRun steps the prepared SoC (reset or checkpoint-restored, plane set,
// monitor state primed) to completion and extracts the verdict. The cycle
// budget is absolute: a checkpoint-restored run is charged for the skipped
// prefix, so its verdict matches the full replay's exactly.
func (a *Arena) stepRun() (sig uint32, ok, cut bool) {
	s := a.s
	aborted := false
	cycles := s.Cycle()
	for cycles < a.budget {
		if s.Done() {
			break
		}
		s.Step()
		cycles = s.Cycle()
		if a.capturing {
			if iv := a.opt.CheckpointInterval; a.probe != nil && iv > 0 &&
				cycles%iv == 0 && !s.Done() {
				a.ckpts = append(a.ckpts, checkpoint{
					cycle:   cycles,
					state:   s.Snapshot(),
					obsIdx:  len(a.golden),
					lastObs: a.lastObs,
					hist:    a.probe.History(),
				})
			}
			continue
		}
		if len(a.ffCks) > 0 && cycles >= a.ffCks[0].cycle {
			ck := &a.ffCks[0]
			a.ffCks = a.ffCks[1:]
			if cycles == ck.cycle && a.convergedAt(ck) {
				next := a.probe.NextActivation(a.ffPlane.S, cycles)
				if next < 0 {
					// No further activating edge: the rest of the run is
					// the rest of the golden run.
					a.ffCks = nil
					a.st.ConvergedRuns++
					a.met.converged.Inc()
					a.path = fault.DispatchFastForward
					a.last = a.goldenRes
					return a.goldenRes.Signature, a.goldenRes.OK, false
				}
				if ck2 := a.checkpointBefore(next); ck2 != nil && ck2.cycle > cycles {
					// Jump over the provably-golden window up to the last
					// checkpoint before the next injection.
					s.Restore(ck2.state)
					a.ffPlane.SeedHistory(ck2.hist.For(a.ffPlane.S))
					a.idx, a.count, a.diverged, a.lastObs =
						ck2.obsIdx, ck2.obsIdx, false, ck2.lastObs
					a.st.Jumps++
					a.met.jumps.Inc()
					a.path = fault.DispatchFastForward
					cycles = s.Cycle()
					for len(a.ffCks) > 0 && a.ffCks[0].cycle <= cycles {
						a.ffCks = a.ffCks[1:]
					}
				}
			}
		}
		if a.early {
			if cycles-a.lastObs > a.hangLimit || (a.diverged && a.count > a.floodCap) {
				aborted = true
				a.st.EarlyExits++
				a.met.earlyExits.Inc()
				break
			}
		}
	}

	u := s.Cores[a.id]
	done := s.Done() && !aborted
	a.last = RunResult{
		Signature: u.Core.Reg(isa.RegSig),
		OK:        done && !u.Core.Wedged(),
		Wedged:    u.Core.Wedged(),
		Cycles:    u.Core.Cycle(),
		IFStall:   u.Core.Counter(fault.CntIFStall),
		MemStall:  u.Core.Counter(fault.CntMemStall),
		HazStall:  u.Core.Counter(fault.CntHazStall),
		Issued2:   u.Core.Counter(fault.CntIssued2),
		Instret:   u.Core.Counter(fault.CntInstret),
	}
	return a.last.Signature, a.last.OK, !done
}

// healthy replays the golden run and compares the full RunResult against
// the construction-time capture — the same equivalence the
// TestArenaResetMatchesFreshSoC family pins for normal runs, applied as an
// online probe. Without a golden reference (capture failed) the check is
// vacuous: the campaign rejects such goldens wholesale.
func (a *Arena) healthy() (healthy bool) {
	if !a.goldenOK {
		return true
	}
	a.st.HealthChecks++
	a.met.healthChecks.Inc()
	saved := a.last
	defer func() {
		a.last = saved
		if recover() != nil {
			healthy = false
		}
	}()
	_, ok, cut := a.runOnce(fault.None)
	return ok && !cut && a.last == a.goldenRes
}

// quarantine retires the poisoned SoC and rebuilds the arena in place,
// keeping the lifetime counters. A failed rebuild marks the arena dead.
func (a *Arena) quarantine() {
	st := a.st
	st.Quarantines++
	fresh, err := NewArena(a.cfg, a.id, a.job, a.budget, a.opt)
	if err != nil {
		a.dead = true
		a.st.Quarantines = st.Quarantines
		a.noteQuarantine()
		return
	}
	// fresh ran its own golden capture: its run counters fold into the
	// lifetime stats, everything else carries over unchanged.
	st.Runs += fresh.st.Runs
	st.EarlyExits += fresh.st.EarlyExits
	*a = *fresh
	a.st = st
	// The copied SoC still notifies fresh's observer; re-point it at this
	// arena so the monitor state it updates is the state Run consults.
	a.s.Cores[a.id].Core.SetStoreObserver(a.observe)
	a.noteQuarantine()
}

// noteQuarantine reports a quarantine to the telemetry sinks (counter and
// event stream), including whether the rebuild failed and left the arena
// dead.
func (a *Arena) noteQuarantine() {
	a.met.quarantines.Inc()
	if a.opt.Events != nil {
		a.opt.Events.Emit(telemetry.Event{
			Kind: telemetry.EventQuarantine, Core: a.id, Dead: a.dead,
		})
	}
}

// fallbackRun serves one site with rebuild-per-fault semantics: a
// fresh SoC, freshly assembled program and the full cycle budget. Used for
// the site whose run poisoned the arena and for every site after the arena
// died. Stateful planes are reset first: the plane object may already have
// executed on the poisoned arena, and its edge history must not leak into
// the fresh-SoC verdict. A failed rebuild panics (into the campaign's
// recover boundary, which records a Panicked verdict and counts an
// anomaly) rather than masquerading as a crashed fault run — a build
// failure is an engine fault, not a property of the site.
func (a *Arena) fallbackRun(p fault.Plane) (sig uint32, ok bool) {
	a.st.FallbackRuns++
	a.path = fault.DispatchFallback
	fault.ResetPlaneState(p)
	c := a.cfg
	c.Cores[a.id].Plane = p
	var jobs [soc.NumCores]*CoreJob
	jobs[a.id] = a.job
	var setup func(*soc.SoC)
	if a.opt.Plan.Enabled() {
		plan := a.opt.Plan
		setup = func(s *soc.SoC) { s.SetInjector(a.id, archint.NewInjector(plan)) }
	}
	res, _, err := RunJobsSetup(c, jobs, a.budget, nil, setup)
	if err != nil {
		panic(fmt.Sprintf("arena core%d: fallback run failed: %v", a.id, err))
	}
	if res[a.id] == nil {
		panic(fmt.Sprintf("arena core%d: fallback run produced no result", a.id))
	}
	return res[a.id].Signature, res[a.id].OK
}

// SoC exposes the underlying system (cache statistics, bus state) for
// inspection after a run.
func (a *Arena) SoC() *soc.SoC { return a.s }

// Last returns the full result of the most recent Run.
func (a *Arena) Last() RunResult { return a.last }

// GoldenEvents returns the length of the captured observable trace.
func (a *Arena) GoldenEvents() int { return len(a.golden) }

// Runs returns how many runs this arena has served (including the golden
// capture run).
func (a *Arena) Runs() int64 { return a.st.Runs }

// EarlyExits returns how many runs the divergence watchdogs terminated
// before the full budget.
func (a *Arena) EarlyExits() int64 { return a.st.EarlyExits }

// HealthChecks returns how many golden-replay health probes this arena ran.
func (a *Arena) HealthChecks() int64 { return a.st.HealthChecks }

// Quarantines returns how many times this arena was rebuilt after a failed
// health check.
func (a *Arena) Quarantines() int64 { return a.st.Quarantines }

// FallbackRuns returns how many sites were served by fresh-SoC
// rebuild-per-fault runs (quarantined sites, plus everything after the
// arena died).
func (a *Arena) FallbackRuns() int64 { return a.st.FallbackRuns }

// Dead reports whether the arena gave up on reuse entirely (rebuild
// failed) and now serves every site via fallback runs.
func (a *Arena) Dead() bool { return a.dead }

// Checkpoints returns how many golden-run restore points this arena holds.
func (a *Arena) Checkpoints() int { return len(a.ckpts) }

// CheckpointRuns returns how many runs started from a golden checkpoint
// instead of replaying the full prefix.
func (a *Arena) CheckpointRuns() int64 { return a.st.CheckpointRuns }

// GoldenOK reports whether the construction-time golden capture run
// completed cleanly. Scenario harnesses gate optional environment
// perturbations (e.g. an interrupt plan) on it: a perturbation under which
// even the fault-free run fails would fault every verdict.
func (a *Arena) GoldenOK() bool { return a.goldenOK }

// GoldenServed returns how many sites were served the golden verdict
// outright because their fault never activates.
func (a *Arena) GoldenServed() int64 { return a.st.GoldenServed }

// ConvergedRuns returns how many runs were cut short because the faulty
// SoC provably re-converged with the golden run past the site's last
// activating edge.
func (a *Arena) ConvergedRuns() int64 { return a.st.ConvergedRuns }

// Jumps returns how many provably-golden mid-run windows were skipped by
// restoring a later checkpoint after exact re-convergence.
func (a *Arena) Jumps() int64 { return a.st.Jumps }

// CampaignOptions tunes RunCampaignOpts beyond the engine mode.
type CampaignOptions struct {
	// Workers is the worker-pool size; <= 0 uses GOMAXPROCS.
	Workers int
	// Reference runs the arenas in reference mode: full cycle budget per
	// run (no early exit), no checkpoint fast-forward, no golden-verdict
	// shortcut. Reports are bit-identical to the optimized mode — that
	// equivalence is what the conformance oracle checks over full
	// universes. (The reference mode inherited its own pin from the
	// retired rebuild-per-fault legacy engine; see
	// TestArenaNoEarlyExitMatchesLegacy.)
	Reference bool
	// Journal, when non-empty, is the path of the verdict journal.
	// Combined with Resume, settled sites are folded in from the file;
	// otherwise the file is created fresh (truncating any previous one).
	Journal string
	// Resume loads Journal (which must carry this campaign's fingerprint)
	// and skips its settled sites.
	Resume bool
	// CheckpointInterval controls golden-run checkpointing in the
	// optimized mode: 0 picks an automatic interval from the cycle budget,
	// negative disables checkpointing, positive is the exact interval in
	// cycles. Checkpointing is a pure execution-strategy choice — reports
	// are bit-identical either way — so it does not enter the campaign
	// fingerprint and journals transfer across settings. Ignored in
	// reference mode, which never checkpoints.
	CheckpointInterval int64
	// Telemetry, when non-nil, receives the campaign metrics: arena
	// dispatch-path counters and latency histograms, settle rates and
	// verdict-class counts, journal-append latency. All workers share the
	// registry's atomics. Nil disables metrics at zero cost (a progress
	// interval alone spins up an internal registry for its rate math).
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives the campaign event stream:
	// start/progress/site/quarantine/finish JSONL records.
	Events *telemetry.EventLog
	// OnSettle, when non-nil, is invoked once per settled verdict with the
	// site's index in the sites slice (passed through to
	// fault.SimOptions.OnSettle). It runs on worker goroutines and must be
	// safe for concurrent calls.
	OnSettle func(i int, res fault.SiteResult, fromJournal bool)
	// OnGolden, when non-nil, receives the golden verdict before any site
	// settles (passed through to fault.SimOptions.OnGolden).
	OnGolden func(sig uint32, ok bool)
	// Progress > 0 prints a progress line (settled/total, rate, ETA,
	// shortcut rate) to ProgressWriter every interval, and emits progress
	// events when Events is set.
	Progress time.Duration
	// ProgressWriter receives the progress lines; nil means os.Stderr.
	ProgressWriter io.Writer
}

// resolveCheckpointInterval maps the CampaignOptions knob to the
// ArenaOptions value. The automatic interval targets a restore point
// roughly every 1/8 of a golden run (the budget is 8x golden plus slack,
// so budget/64 approximates goldenCycles/8), clamped below so snapshot
// traffic stays negligible next to stepping on long runs and above so
// short campaigns still get useful prefix-skip granularity.
func resolveCheckpointInterval(opt int64, budget int64) int64 {
	switch {
	case opt < 0:
		return 0
	case opt > 0:
		return opt
	}
	iv := budget / 64
	if iv < 256 {
		iv = 256
	}
	if iv > 16_384 {
		iv = 16_384
	}
	return iv
}

// CampaignFingerprint content-addresses the campaign as a pure function:
// the assembled program image and routine data tables, the ordered fault
// universe, and the execution environment (core, budget, SoC configuration
// with replayed traffic). Two campaigns with equal fingerprints compute
// identical reports, which is what makes journaled verdicts transferable
// across process restarts.
func CampaignFingerprint(cfg soc.Config, id int, job *CoreJob, sites []fault.Site, budget int64) (fault.JournalHeader, error) {
	prog, err := buildProgram(job)
	if err != nil {
		return fault.JournalHeader{}, err
	}
	ph := fnv.New64a()
	fmt.Fprintf(ph, "base %08x:", prog.Base)
	for _, w := range prog.Words {
		fmt.Fprintf(ph, "%08x", w)
	}
	for _, r := range job.routines() {
		fmt.Fprintf(ph, "|data %08x:", r.DataBase)
		for _, w := range r.DataWords {
			fmt.Fprintf(ph, "%08x", w)
		}
	}
	eh := fnv.New64a()
	for k := 0; k < soc.NumCores; k++ {
		// Normalise exactly like NewArena/fallbackRun: only core id is
		// active and planes are per-run state, not environment.
		cfg.Cores[k].Active = k == id
		cfg.Cores[k].Plane = nil
	}
	fmt.Fprintf(eh, "core %d budget %d cfg %+v", id, budget, cfg)
	return fault.JournalHeader{
		Program:  fmt.Sprintf("%016x", ph.Sum64()),
		Universe: fault.HashSites(sites),
		Env:      fmt.Sprintf("%016x", eh.Sum64()),
		Sites:    len(sites),
	}, nil
}

// RunCampaign fault-simulates job on core id for every site, in the replay
// environment cfg with the given per-run cycle budget — the shared engine
// dispatch behind experiments campaigns and cmd/faultsim. Each worker
// drives one reusable Arena; reference selects the full-budget reference
// mode (no early exit, no checkpointing, no golden-verdict shortcut).
// Both modes produce identical reports. workers <= 0 uses GOMAXPROCS.
func RunCampaign(cfg soc.Config, id int, job *CoreJob, sites []fault.Site, budget int64, workers int, reference bool) (fault.Report, error) {
	return RunCampaignOpts(cfg, id, job, sites, budget, CampaignOptions{Workers: workers, Reference: reference})
}

// RunCampaignOpts is RunCampaign with journaling: verdicts stream to an
// append-only journal as they settle, and a resumed campaign skips the
// sites the journal already settles — producing a report bit-identical to
// the uninterrupted run.
func RunCampaignOpts(cfg soc.Config, id int, job *CoreJob, sites []fault.Site, budget int64, opt CampaignOptions) (fault.Report, error) {
	reg := opt.Telemetry
	if reg == nil && opt.Progress > 0 {
		// The progress line computes rates from registry counters; give it
		// a private registry when the caller did not attach one.
		reg = telemetry.NewRegistry()
	}
	var simOpt fault.SimOptions
	simOpt.Telemetry = reg
	simOpt.Events = opt.Events
	simOpt.OnSettle = opt.OnSettle
	simOpt.OnGolden = opt.OnGolden
	if opt.Journal != "" {
		header, err := CampaignFingerprint(cfg, id, job, sites, budget)
		if err != nil {
			return fault.Report{}, err
		}
		var j *fault.Journal
		if opt.Resume {
			j, err = fault.ResumeJournal(opt.Journal, header)
		} else {
			j, err = fault.CreateJournal(opt.Journal, header)
		}
		if err != nil {
			return fault.Report{}, err
		}
		defer j.Close()
		simOpt.Journal = j
	}
	// Arena 0 runs the one golden capture (with checkpointing unless
	// disabled); the remaining workers are clones sharing its golden
	// trace, probe and checkpoints over their own SoCs, so campaign
	// startup costs one golden-run latency total.
	aOpt := ArenaOptions{CheckpointInterval: resolveCheckpointInterval(opt.CheckpointInterval, budget)}
	if opt.Reference {
		aOpt = ArenaOptions{NoEarlyExit: true}
	}
	aOpt.Telemetry = reg
	aOpt.Events = opt.Events
	proto, err := NewArena(cfg, id, job, budget, aOpt)
	if err != nil {
		return fault.Report{}, err
	}
	n := fault.Workers(opt.Workers, len(sites))
	arenas := make([]*Arena, n)
	errs := make([]error, n)
	arenas[0] = proto
	var wg sync.WaitGroup
	for w := 1; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arenas[w], errs[w] = newArenaClone(proto)
		}(w)
	}
	wg.Wait()
	runners := make([]fault.RunFunc, n)
	for w := range runners {
		if errs[w] != nil {
			return fault.Report{}, errs[w]
		}
		runners[w] = arenas[w].Run
	}
	if opt.Events != nil {
		opt.Events.Emit(telemetry.Event{
			Kind: telemetry.EventStart, Sites: len(sites), Workers: n,
		})
	}
	start := time.Now()
	prog := campaignProgress(reg, opt, len(sites), start)
	rep, err := fault.SimulateOpts(sites, runners, simOpt)
	prog.Stop()
	if err != nil {
		return rep, err
	}
	for _, a := range arenas {
		rep.Dispatch.Add(a.Stats().Dispatch)
	}
	if opt.Events != nil {
		opt.Events.Emit(telemetry.Event{
			Kind: telemetry.EventFinish, Sites: len(sites),
			Settled:       int64(len(rep.Results)),
			DetectedTotal: int64(rep.Detected),
			ElapsedNs:     time.Since(start).Nanoseconds(),
		})
	}
	return rep, nil
}

// campaignProgress starts the periodic progress line (nil when disabled).
// The tick reads only registry atomics — the worker arenas own all other
// state — so it is safe alongside the running campaign.
func campaignProgress(reg *telemetry.Registry, opt CampaignOptions, total int, start time.Time) *telemetry.Ticker {
	if opt.Progress <= 0 {
		return nil
	}
	w := opt.ProgressWriter
	if w == nil {
		w = os.Stderr
	}
	settled := reg.Counter("campaign_sites_settled_total")
	detected := reg.Counter("campaign_verdict_detected_total")
	ckpt := reg.Counter("arena_dispatch_" + fault.DispatchCheckpoint.String() + "_total")
	ff := reg.Counter("arena_dispatch_" + fault.DispatchFastForward.String() + "_total")
	golden := reg.Counter("arena_dispatch_" + fault.DispatchGolden.String() + "_total")
	return telemetry.StartTicker(opt.Progress, func() {
		s := settled.Value()
		elapsed := time.Since(start)
		rate := float64(s) / elapsed.Seconds()
		var eta time.Duration
		if rate > 0 && s < int64(total) {
			eta = time.Duration(float64(int64(total)-s) / rate * float64(time.Second))
		}
		hit := 0.0
		if s > 0 {
			hit = 100 * float64(ckpt.Value()+ff.Value()+golden.Value()) / float64(s)
		}
		fmt.Fprintf(w, "progress: %d/%d sites, %.1f sites/s, ETA %s, %.0f%% checkpoint-hit\n",
			s, total, rate, eta.Round(time.Second), hit)
		if opt.Events != nil {
			opt.Events.Emit(telemetry.Event{
				Kind: telemetry.EventProgress, Settled: s,
				DetectedTotal: detected.Value(), Rate: rate,
				ETANs: eta.Nanoseconds(), ElapsedNs: elapsed.Nanoseconds(),
			})
		}
	})
}
