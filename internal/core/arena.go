package core

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/soc"
)

// Arena is a reusable fault-simulation worker: one long-lived SoC with the
// program assembled and loaded exactly once, serving thousands of fault runs
// as reset + plane-swap instead of soc.New + reassemble + reload. The
// per-run hot path is allocation-free.
//
// An Arena additionally supports early exit on observable divergence: during
// construction it captures the golden run's observable trace (every
// data-side store the core under test performs, with value and cycle), and
// faulty runs are watched against that trace. Two watchdogs bound runs that
// can no longer reach a clean outcome long before the full cycle budget:
//
//   - hang: no observable store for more than 8x the golden run's largest
//     store-to-store gap (and at least one whole golden run) plus slack —
//     the wedged/deadlocked class, which under the plain budget burns 8x
//     the golden cycle count per fault;
//   - flood: a run that has observably diverged keeps storing past 8x the
//     golden store count (plus slack) — the runaway-loop class.
//
// The margins apply the same 8x stall-factor assumption the legacy watchdog
// budget (golden cycles x 8 + 20_000) embodies, at store-gap rather than
// whole-run granularity, so both engines misclassify only runs slowed by
// more than 8x — and the engine-equivalence tests pin that they agree on
// every site of the shipped universes. ArenaOptions.NoEarlyExit restores
// the exact legacy budget semantics. Runs that halt (cleanly or wedged)
// are never cut short, so their signatures are exact.
type Arena struct {
	s      *soc.SoC
	id     int
	entry  uint32
	budget int64
	early  bool

	// Golden observable trace and derived watchdog bounds.
	golden    []obsEvent
	hangLimit int64
	floodCap  int

	// Per-run monitor state (reset by Run).
	capturing bool
	idx       int
	count     int
	diverged  bool
	lastObs   int64

	last       RunResult
	runs       int64
	earlyExits int64
}

// obsEvent is one observable event: a completed data-side store of the core
// under test. The cycle stamp calibrates the hang watchdog; divergence
// compares only address, value and size (a faulty run that is merely slower
// is not observably divergent).
type obsEvent struct {
	addr  uint32
	val   uint64
	size  int
	cycle int64
}

// ArenaOptions tunes an Arena.
type ArenaOptions struct {
	// NoEarlyExit disables the divergence watchdogs; every run then uses
	// the full cycle budget exactly like the legacy engine.
	NoEarlyExit bool
}

// earlySlack mirrors the constant term of the legacy watchdog budget.
const earlySlack = 20_000

// NewArena assembles the SoC once and runs the fault-free golden once to
// capture the observable trace. cfg should carry the replayed background
// traffic; only core id is activated regardless of cfg's Active flags.
func NewArena(cfg soc.Config, id int, job *CoreJob, budget int64, opt ArenaOptions) (*Arena, error) {
	for k := 0; k < soc.NumCores; k++ {
		cfg.Cores[k].Active = k == id
		cfg.Cores[k].Plane = nil // planes are swapped per run
	}
	prog, err := buildProgram(job)
	if err != nil {
		return nil, fmt.Errorf("arena core%d: %w", id, err)
	}
	s := soc.New(cfg)
	if err := s.Load(prog); err != nil {
		return nil, fmt.Errorf("arena core%d: %w", id, err)
	}
	for _, r := range job.routines() {
		loadRoutineData(s, r)
	}
	s.SealBaseline()

	a := &Arena{s: s, id: id, entry: prog.Base, budget: budget}
	s.Cores[id].Core.SetStoreObserver(a.observe)

	// Golden capture run: records the observable trace and calibrates the
	// watchdog bounds. When it fails (the campaign will reject the golden
	// anyway) early exit stays disabled and runs simply use the full budget.
	a.capturing = true
	_, ok := a.Run(fault.None)
	a.capturing = false
	if ok && !opt.NoEarlyExit {
		a.calibrate()
	}
	return a, nil
}

// calibrate derives the watchdog bounds from the captured golden trace.
func (a *Arena) calibrate() {
	a.early = true
	if len(a.golden) == 0 {
		// No observable events at all: nothing to watch, keep the plain
		// budget (the hang limit below would equal it anyway).
		a.early = false
		return
	}
	var maxGap, prev int64
	for _, ev := range a.golden {
		if g := ev.cycle - prev; g > maxGap {
			maxGap = g
		}
		prev = ev.cycle
	}
	if g := a.last.Cycles - prev; g > maxGap {
		maxGap = g
	}
	a.hangLimit = maxGap * 8
	if a.hangLimit < a.last.Cycles {
		// Never call a run hung for a silence shorter than one entire
		// golden run: routines with dense stores would otherwise get an
		// aggressive limit, and a hung run still stops at ~1/8 of the
		// legacy budget.
		a.hangLimit = a.last.Cycles
	}
	a.hangLimit += earlySlack
	a.floodCap = len(a.golden)*8 + 1_000
}

// observe receives every completed store of the core under test.
func (a *Arena) observe(addr uint32, val uint64, size int) {
	a.lastObs = a.s.Cycle()
	if a.capturing {
		a.golden = append(a.golden, obsEvent{addr: addr, val: val, size: size, cycle: a.lastObs})
		return
	}
	if !a.diverged {
		if a.idx >= len(a.golden) {
			a.diverged = true
		} else if g := a.golden[a.idx]; g.addr != addr || g.val != val || g.size != size {
			a.diverged = true
		}
		a.idx++
	}
	a.count++
}

// Run executes one fault run under plane p (fault.None for golden) and
// reports the final signature plus whether the run completed cleanly. It is
// the fault.RunFunc of this arena; each arena serves one worker goroutine.
func (a *Arena) Run(p fault.Plane) (sig uint32, ok bool) {
	s := a.s
	s.Reset()
	s.SetPlane(a.id, p)
	s.Start(a.id, a.entry)
	a.idx, a.count, a.diverged, a.lastObs = 0, 0, false, 0
	a.runs++

	aborted := false
	var cycles int64
	for cycles < a.budget {
		if s.Done() {
			break
		}
		s.Step()
		cycles = s.Cycle()
		if a.early && !a.capturing {
			if cycles-a.lastObs > a.hangLimit || (a.diverged && a.count > a.floodCap) {
				aborted = true
				a.earlyExits++
				break
			}
		}
	}

	u := s.Cores[a.id]
	done := s.Done() && !aborted
	a.last = RunResult{
		Signature: u.Core.Reg(isa.RegSig),
		OK:        done && !u.Core.Wedged(),
		Wedged:    u.Core.Wedged(),
		Cycles:    u.Core.Cycle(),
		IFStall:   u.Core.Counter(fault.CntIFStall),
		MemStall:  u.Core.Counter(fault.CntMemStall),
		HazStall:  u.Core.Counter(fault.CntHazStall),
		Issued2:   u.Core.Counter(fault.CntIssued2),
		Instret:   u.Core.Counter(fault.CntInstret),
	}
	return a.last.Signature, a.last.OK
}

// SoC exposes the underlying system (cache statistics, bus state) for
// inspection after a run.
func (a *Arena) SoC() *soc.SoC { return a.s }

// Last returns the full result of the most recent Run.
func (a *Arena) Last() RunResult { return a.last }

// GoldenEvents returns the length of the captured observable trace.
func (a *Arena) GoldenEvents() int { return len(a.golden) }

// Runs returns how many runs this arena has served (including the golden
// capture run).
func (a *Arena) Runs() int64 { return a.runs }

// EarlyExits returns how many runs the divergence watchdogs terminated
// before the full budget.
func (a *Arena) EarlyExits() int64 { return a.earlyExits }

// RunCampaign fault-simulates job on core id for every site, in the replay
// environment cfg with the given per-run cycle budget — the shared engine
// dispatch behind experiments campaigns and cmd/faultsim. legacy selects
// the rebuild-per-fault reference engine (fresh SoC and reassembled
// program per run, full budget); otherwise each worker drives one reusable
// Arena. Both engines produce identical reports. workers <= 0 uses
// GOMAXPROCS.
func RunCampaign(cfg soc.Config, id int, job *CoreJob, sites []fault.Site, budget int64, workers int, legacy bool) (fault.Report, error) {
	if legacy {
		runOne := func(p fault.Plane) (uint32, bool) {
			c := cfg
			for k := 0; k < soc.NumCores; k++ {
				c.Cores[k].Active = k == id
			}
			c.Cores[id].Plane = p
			var jobs [soc.NumCores]*CoreJob
			jobs[id] = job
			res, _, err := RunJobs(c, jobs, budget)
			if err != nil || res[id] == nil {
				return 0, false
			}
			return res[id].Signature, res[id].OK
		}
		return fault.Simulate(sites, runOne, workers), nil
	}
	// Arenas are independent, and each construction simulates one golden
	// capture run — build them concurrently so campaign startup costs one
	// golden-run latency instead of one per worker.
	n := fault.Workers(workers, len(sites))
	arenas := make([]*Arena, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			arenas[w], errs[w] = NewArena(cfg, id, job, budget, ArenaOptions{})
		}(w)
	}
	wg.Wait()
	runners := make([]fault.RunFunc, n)
	for w := range runners {
		if errs[w] != nil {
			return fault.Report{}, errs[w]
		}
		runners[w] = arenas[w].Run
	}
	return fault.SimulateWith(sites, runners), nil
}
