package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/soc"
)

// runWithCheck runs the HDCU routine cache-wrapped with a signature check
// appended, returning the published verdict.
func runWithCheck(t *testing.T, golden uint32, plane fault.Plane) (verdict, sig uint32) {
	t.Helper()
	c := cfg(1, true, true, [3]int{})
	c.Cores[0].Plane = plane
	job := &CoreJob{
		Routine:  hdcuRoutine(0),
		Strategy: CacheBased{WriteAllocate: true},
		CodeBase: soc.CodeLow,
		Epilogue: func(b *asm.Builder) {
			EmitSignatureCheck(b, golden, VerdictMailbox(0))
		},
	}
	res, s, err := RunSingle(c, 0, job, maxRun)
	if err != nil {
		t.Fatal(err)
	}
	if res.Wedged {
		t.Fatal("wedged")
	}
	return ReadVerdict(func(off uint32) uint32 { return mem.ReadWord(s.SRAM, off) }, 0)
}

func TestSignatureCheckPassAndFail(t *testing.T) {
	// First learn the golden signature from a fault-free reference run.
	ref, _, err := RunSingle(cfg(1, true, true, [3]int{}), 0,
		&CoreJob{Routine: hdcuRoutine(0), Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
		maxRun)
	if err != nil {
		t.Fatal(err)
	}
	golden := ref.Signature

	verdict, sig := runWithCheck(t, golden, nil)
	if verdict != VerdictPass {
		t.Errorf("fault-free verdict = %d, want PASS", verdict)
	}
	if sig != golden {
		t.Errorf("published signature %08x != golden %08x", sig, golden)
	}

	// A wrong golden (e.g. stale reference) must fail.
	if verdict, _ := runWithCheck(t, golden^1, nil); verdict != VerdictFail {
		t.Errorf("wrong-golden verdict = %d, want FAIL", verdict)
	}

	// A detectable hardware fault must fail against the true golden.
	site := fault.Site{Unit: fault.UnitHDCU, Signal: fault.SigCtl, Path: fault.CtlCascade, Stuck: 0}
	if verdict, _ := runWithCheck(t, golden, fault.NewSingle(site)); verdict != VerdictFail {
		t.Errorf("faulty-run verdict = %d, want FAIL", verdict)
	}
}

func TestVerdictMailboxesDisjoint(t *testing.T) {
	seen := map[uint32]bool{}
	for id := 0; id < soc.NumCores; id++ {
		a := VerdictMailbox(id)
		if seen[a] {
			t.Fatal("mailbox collision")
		}
		seen[a] = true
		if a < mem.SRAMUncachedBase || a+8 > mem.SRAMUncachedBase+mem.SRAMSize {
			t.Errorf("mailbox %d out of range: %#x", id, a)
		}
	}
}
