package core

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

const maxRun = 3_000_000

func dataBaseFor(coreID int) uint32 { return mem.SRAMBase + 0x1000*uint32(coreID+1) }

func codeBaseFor(coreID int) uint32 { return soc.CodeLow + 0x4000*uint32(coreID) }

// cfg builds a SoC configuration with the first n cores active.
func cfg(n int, cached, writeAlloc bool, delays [soc.NumCores]int) soc.Config {
	c := soc.DefaultConfig()
	for id := 0; id < soc.NumCores; id++ {
		c.Cores[id].Active = id < n
		c.Cores[id].CachesOn = cached
		c.Cores[id].WriteAlloc = writeAlloc
		c.Cores[id].StartDelay = delays[id]
	}
	return c
}

// jobsSameRoutine builds one job per active core, each with its own code
// copy and data area.
func jobsSameRoutine(n int, mk func(coreID int) *sbst.Routine, strat func(coreID int) Strategy) [soc.NumCores]*CoreJob {
	var jobs [soc.NumCores]*CoreJob
	for id := 0; id < n; id++ {
		jobs[id] = &CoreJob{
			Routine:  mk(id),
			Strategy: strat(id),
			CodeBase: codeBaseFor(id),
		}
	}
	return jobs
}

func hdcuRoutine(coreID int) *sbst.Routine {
	return sbst.NewHDCUTest(sbst.HDCUOptions{DataBase: dataBaseFor(coreID)})
}

func fwdRoutine(coreID int) *sbst.Routine {
	return sbst.NewForwardingTest(sbst.ForwardingOptions{DataBase: dataBaseFor(coreID)})
}

func icuRoutine(coreID int) *sbst.Routine {
	return sbst.NewICUTest(sbst.ICUOptions{DataBase: dataBaseFor(coreID)})
}

func TestPlainSingleCoreStable(t *testing.T) {
	for run := 0; run < 2; run++ {
		res, _, err := RunSingle(cfg(1, false, true, [3]int{}), 0,
			&CoreJob{Routine: hdcuRoutine(0), Strategy: Plain{}, CodeBase: soc.CodeLow},
			maxRun)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("run failed: %+v", res)
		}
		if res.Signature == 0 {
			t.Fatal("zero signature")
		}
	}
	// Identical runs give identical signatures by determinism of the
	// whole simulator; cross-checked in the multi-run tests below.
}

func TestCacheStrategyDeterministicAcrossScenarios(t *testing.T) {
	// The HDCU routine folds stall-counter deltas: the most
	// timing-sensitive signature. Under the cache-based strategy it must
	// be identical for every start-phase and alignment scenario.
	sigs := map[uint32]bool{}
	for _, delays := range [][soc.NumCores]int{
		{0, 0, 0}, {0, 7, 13}, {5, 0, 23}, {11, 17, 0},
	} {
		for _, pad := range []uint32{0, 4, 8} {
			jobs := jobsSameRoutine(3, hdcuRoutine,
				func(int) Strategy { return CacheBased{WriteAllocate: true} })
			for _, j := range jobs {
				j.AlignPad = pad
			}
			results, _, err := RunJobs(cfg(3, true, true, delays), jobs, maxRun)
			if err != nil {
				t.Fatal(err)
			}
			for id, r := range results {
				if !r.OK {
					t.Fatalf("core %d failed: %+v", id, r)
				}
			}
			sigs[results[0].Signature] = true
		}
	}
	if len(sigs) != 1 {
		t.Errorf("cache-based signature unstable across scenarios: %d distinct values", len(sigs))
	}
}

// unstableScenarios enumerates SoC configurations the way the paper's
// experiments did: active-core start phase, code position in flash
// (low/mid/high banks with different wait states) and code alignment.
type scenario struct {
	delays [soc.NumCores]int
	bases  [soc.NumCores]uint32
	pad    uint32
}

func unstableScenarios() []scenario {
	low3 := [soc.NumCores]uint32{soc.CodeLow, soc.CodeLow + 0x4000, soc.CodeLow + 0x8000}
	mix := [soc.NumCores]uint32{soc.CodeLow, soc.CodeMid, soc.CodeHigh}
	rot := [soc.NumCores]uint32{soc.CodeMid, soc.CodeHigh, soc.CodeLow}
	return []scenario{
		{[soc.NumCores]int{0, 0, 0}, low3, 0},
		{[soc.NumCores]int{0, 7, 13}, low3, 4},
		{[soc.NumCores]int{0, 0, 0}, mix, 0},
		{[soc.NumCores]int{5, 0, 23}, mix, 8},
		{[soc.NumCores]int{0, 0, 0}, rot, 12},
		{[soc.NumCores]int{11, 17, 0}, rot, 4},
	}
}

func runScenario(t *testing.T, sc scenario, mk func(int) *sbst.Routine, strat func(int) Strategy, cached bool) [soc.NumCores]*RunResult {
	t.Helper()
	var jobs [soc.NumCores]*CoreJob
	for id := 0; id < 3; id++ {
		jobs[id] = &CoreJob{
			Routine:  mk(id),
			Strategy: strat(id),
			CodeBase: sc.bases[id],
			AlignPad: sc.pad,
		}
	}
	results, _, err := RunJobs(cfg(3, cached, true, sc.delays), jobs, maxRun)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestPlainMulticoreUnstable(t *testing.T) {
	// Without the strategy, the same routine produces different signatures
	// depending on the SoC configuration (start phase, code position,
	// alignment) — the failure mode motivating the paper. A stable golden
	// signature therefore cannot exist.
	sigs := map[uint32]bool{}
	for _, sc := range unstableScenarios() {
		results := runScenario(t, sc, hdcuRoutine, func(int) Strategy { return Plain{} }, false)
		sigs[results[0].Signature] = true
	}
	if len(sigs) < 2 {
		t.Error("plain multi-core execution unexpectedly produced a stable signature")
	}
}

func TestPlainMulticoreDiffersFromSingleCoreGolden(t *testing.T) {
	// Table III's premise: the golden signature is computed in a
	// single-core environment; in a multi-core run the routine "inevitably
	// fails", i.e. never reproduces that golden value.
	golden, _, err := RunSingle(cfg(1, false, true, [3]int{}), 0,
		&CoreJob{Routine: hdcuRoutine(0), Strategy: Plain{}, CodeBase: soc.CodeLow},
		maxRun)
	if err != nil {
		t.Fatal(err)
	}
	for i, sc := range unstableScenarios() {
		sc.bases[0] = soc.CodeLow // the core under test keeps its position
		sc.pad = 0
		results := runScenario(t, sc, hdcuRoutine, func(int) Strategy { return Plain{} }, false)
		if results[0].Signature == golden.Signature {
			t.Errorf("scenario %d: multi-core run reproduced the single-core golden signature", i)
		}
	}
}

func TestCacheAndTCMSignaturesAgree(t *testing.T) {
	// Both strategies isolate execution from the bus: identical fetch and
	// data timing, identical architectural values, identical signature.
	// The ICU routine is excluded: it folds the (position-dependent)
	// saved resume PC, so its signature legitimately differs between a
	// flash-resident and a TCM-resident image — the paper's claim there is
	// equal fault coverage, not equal signatures.
	for _, mk := range []func(int) *sbst.Routine{fwdRoutine, hdcuRoutine} {
		cacheRes, _, err := RunSingle(cfg(1, true, true, [3]int{}), 0,
			&CoreJob{Routine: mk(0), Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
			maxRun)
		if err != nil {
			t.Fatal(err)
		}
		tcmRes, _, err := RunSingle(cfg(1, false, true, [3]int{}), 0,
			&CoreJob{Routine: mk(0), Strategy: TCMBased{CoreID: 0}, CodeBase: soc.CodeLow},
			maxRun)
		if err != nil {
			t.Fatal(err)
		}
		if !cacheRes.OK || !tcmRes.OK {
			t.Fatalf("%s: cache %+v tcm %+v", mk(0).Name, cacheRes, tcmRes)
		}
		if cacheRes.Signature != tcmRes.Signature {
			t.Errorf("%s: cache sig %#x != tcm sig %#x",
				mk(0).Name, cacheRes.Signature, tcmRes.Signature)
		}
	}
}

func TestSplitChunksMatchSingleChunk(t *testing.T) {
	whole, _, err := RunSingle(cfg(1, true, true, [3]int{}), 0,
		&CoreJob{Routine: fwdRoutine(0), Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
		maxRun)
	if err != nil {
		t.Fatal(err)
	}
	// Force splitting with an artificially small partition budget; the
	// physical cache stays 8 kB, so behaviour stays deterministic.
	split := CacheBased{WriteAllocate: true, ICacheBytes: 1 << 10}
	chunks, err := split.partition(fwdRoutine(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Fatalf("expected multiple chunks, got %d", len(chunks))
	}
	splitRes, _, err := RunSingle(cfg(1, true, true, [3]int{}), 0,
		&CoreJob{Routine: fwdRoutine(0), Strategy: split, CodeBase: soc.CodeLow},
		maxRun)
	if err != nil {
		t.Fatal(err)
	}
	if !whole.OK || !splitRes.OK {
		t.Fatalf("whole %+v split %+v", whole, splitRes)
	}
	if whole.Signature != splitRes.Signature {
		t.Errorf("split signature %#x != single-chunk %#x", splitRes.Signature, whole.Signature)
	}
}

func TestSplitDeterministicMulticore(t *testing.T) {
	split := CacheBased{WriteAllocate: true, ICacheBytes: 1 << 10}
	sigs := map[uint32]bool{}
	for _, delays := range [][soc.NumCores]int{{0, 0, 0}, {0, 9, 21}} {
		jobs := jobsSameRoutine(3, fwdRoutine, func(int) Strategy { return split })
		results, _, err := RunJobs(cfg(3, true, true, delays), jobs, maxRun)
		if err != nil {
			t.Fatal(err)
		}
		if !results[0].OK {
			t.Fatalf("failed: %+v", results[0])
		}
		sigs[results[0].Signature] = true
	}
	if len(sigs) != 1 {
		t.Error("chunked cache strategy unstable across scenarios")
	}
}

func TestNoWriteAllocateRequiresDummyLoads(t *testing.T) {
	r := sbst.NewForwardingTest(sbst.ForwardingOptions{DataBase: dataBaseFor(0)})
	s := CacheBased{WriteAllocate: false}
	if err := s.Validate(r); err == nil {
		t.Error("missing dummy loads accepted for no-write-allocate cache")
	}
	r2 := sbst.NewForwardingTest(sbst.ForwardingOptions{
		DataBase: dataBaseFor(0), DummyLoadAfterStore: true,
	})
	s2 := CacheBased{WriteAllocate: false, DummyLoadsPresent: true}
	if err := s2.Validate(r2); err != nil {
		t.Errorf("valid no-write-allocate setup rejected: %v", err)
	}
	res, _, err := RunSingle(cfg(1, true, false, [3]int{}), 0,
		&CoreJob{Routine: r2, Strategy: s2, CodeBase: soc.CodeLow}, maxRun)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("no-write-allocate run failed: %+v", res)
	}
}

func TestNoSplitRoutineRejectedWhenTooBig(t *testing.T) {
	r := icuRoutine(0)
	s := CacheBased{WriteAllocate: true, ICacheBytes: 256}
	if err := s.Validate(r); err == nil {
		t.Error("oversized NoSplit routine accepted")
	}
}

func TestICUCacheWrappedDeterministic(t *testing.T) {
	sigs := map[uint32]bool{}
	for _, delays := range [][soc.NumCores]int{{0, 0, 0}, {0, 13, 29}, {7, 3, 0}} {
		jobs := jobsSameRoutine(3, icuRoutine,
			func(int) Strategy { return CacheBased{WriteAllocate: true} })
		results, _, err := RunJobs(cfg(3, true, true, delays), jobs, maxRun)
		if err != nil {
			t.Fatal(err)
		}
		if !results[0].OK {
			t.Fatalf("icu run failed: %+v", results[0])
		}
		if results[0].Signature == 0 {
			t.Fatal("icu signature zero")
		}
		sigs[results[0].Signature] = true
	}
	if len(sigs) != 1 {
		t.Error("ICU cache-wrapped signature unstable")
	}
}

func TestICUPlainMulticoreUnstable(t *testing.T) {
	sigs := map[uint32]bool{}
	for _, sc := range unstableScenarios() {
		results := runScenario(t, sc, icuRoutine, func(int) Strategy { return Plain{} }, false)
		sigs[results[0].Signature] = true
	}
	if len(sigs) < 2 {
		t.Error("ICU plain multi-core signature unexpectedly stable")
	}
}

func TestForwardingExercisesAllPaths(t *testing.T) {
	res, s, err := RunSingle(cfg(1, true, true, [3]int{}), 0,
		&CoreJob{Routine: fwdRoutine(0), Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
		maxRun)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("run failed: %+v", res)
	}
	use := s.Cores[0].Core.PathUse
	checks := []struct {
		lane, op, path int
		name           string
	}{
		{1, 0, fault.PathCascade, "cascade opA"},
		{1, 1, fault.PathCascade, "cascade opB"},
		{0, 0, fault.PathEXL0, "EXL0 lane0 opA"},
		{0, 1, fault.PathEXL1, "EXL1 lane0 opB"},
		{1, 0, fault.PathEXL0, "EXL0 lane1 opA"},
		{1, 1, fault.PathEXL1, "EXL1 lane1 opB"},
		{0, 0, fault.PathMEML0, "MEML0 lane0 opA"},
		{0, 1, fault.PathMEML1, "MEML1 lane0 opB"},
		{1, 0, fault.PathMEML1, "MEML1 lane1 opA"},
		{1, 1, fault.PathMEML0, "MEML0 lane1 opB"},
		{1, 0, fault.PathMEML0, "MEML0 lane1 opA"},
		{1, 1, fault.PathEXL0, "EXL0 lane1 opB"},
	}
	for _, c := range checks {
		if use[c.lane][c.op][c.path] == 0 {
			t.Errorf("path not exercised: %s", c.name)
		}
	}
}

func TestMemoryOverheads(t *testing.T) {
	r := icuRoutine(0)
	if ov, err := (CacheBased{WriteAllocate: true}).MemoryOverhead(r); err != nil || ov != 0 {
		t.Errorf("cache overhead = %d, %v; want 0", ov, err)
	}
	ov, err := (TCMBased{CoreID: 0}).MemoryOverhead(r)
	if err != nil {
		t.Fatal(err)
	}
	size, _ := r.SizeBytes()
	if ov < size {
		t.Errorf("tcm overhead %d < routine size %d", ov, size)
	}
}

func TestTableIVShape(t *testing.T) {
	// TCM-based runs faster but reserves memory; cache-based is slightly
	// slower with zero overhead.
	r := icuRoutine(0)
	cacheRes, _, err := RunSingle(cfg(1, true, true, [3]int{}), 0,
		&CoreJob{Routine: icuRoutine(0), Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
		maxRun)
	if err != nil {
		t.Fatal(err)
	}
	tcmRes, _, err := RunSingle(cfg(1, false, true, [3]int{}), 0,
		&CoreJob{Routine: icuRoutine(0), Strategy: TCMBased{CoreID: 0}, CodeBase: soc.CodeLow},
		maxRun)
	if err != nil {
		t.Fatal(err)
	}
	if !cacheRes.OK || !tcmRes.OK {
		t.Fatalf("cache %+v tcm %+v", cacheRes, tcmRes)
	}
	if cacheRes.Cycles <= tcmRes.Cycles {
		t.Errorf("expected cache-based (%d cycles) slower than TCM-based (%d cycles)",
			cacheRes.Cycles, tcmRes.Cycles)
	}
	tcmOv, _ := (TCMBased{CoreID: 0}).MemoryOverhead(r)
	if tcmOv == 0 {
		t.Error("tcm overhead zero")
	}
}

func TestRoutineSizesFitIcache(t *testing.T) {
	// The paper notes neither routine needed splitting on the 8 kB cache.
	for _, r := range []*sbst.Routine{fwdRoutine(0), hdcuRoutine(0), icuRoutine(0)} {
		size, err := r.SizeBytes()
		if err != nil {
			t.Fatal(err)
		}
		if size+chunkOverheadBytes > 8<<10 {
			t.Errorf("%s: %d bytes does not fit the 8 kB I-cache", r.Name, size)
		}
		t.Logf("%s: %d bytes", r.Name, size)
	}
}

func TestCachePartitionExactFit(t *testing.T) {
	// A routine sized so that size + chunkOverheadBytes exactly equals the
	// partition budget must stay a single chunk; one instruction over must
	// split. This pins the boundary arithmetic of the splitting rule.
	r := fwdRoutine(0)
	size, err := r.SizeBytes()
	if err != nil {
		t.Fatal(err)
	}
	exact := CacheBased{WriteAllocate: true, ICacheBytes: size + chunkOverheadBytes}
	chunks, err := exact.partition(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) != 1 {
		t.Errorf("exactly-cache-sized routine split into %d chunks", len(chunks))
	}
	// Below the exact fit the early single-chunk exit no longer applies;
	// shrink the budget under the blocks' own footprint (the plain-form
	// size includes a prologue the per-block packing does not) so the
	// packing loop must actually split.
	sumBlocks := 0
	for _, blk := range r.Blocks {
		bs, err := blockSize(blk)
		if err != nil {
			t.Fatal(err)
		}
		sumBlocks += bs
	}
	over := CacheBased{WriteAllocate: true, ICacheBytes: sumBlocks + chunkOverheadBytes - int(isa.InstBytes)}
	chunks, err = over.partition(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(chunks) < 2 {
		t.Errorf("one-instruction-over routine stayed in %d chunk(s)", len(chunks))
	}
	// The exact fit must also validate and run.
	if err := exact.Validate(r); err != nil {
		t.Errorf("exact fit rejected: %v", err)
	}
	res, _, err := RunSingle(cfg(1, true, true, [3]int{}), 0,
		&CoreJob{Routine: fwdRoutine(0), Strategy: exact, CodeBase: soc.CodeLow}, maxRun)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("exact-fit run failed: %+v", res)
	}
}

// oversizedRoutine emits more straight-line code than one TCM can hold.
func oversizedRoutine() *sbst.Routine {
	r := &sbst.Routine{Name: "huge", Target: "huge", DataBase: dataBaseFor(0)}
	r.Blocks = []sbst.Block{{Name: "pad", Emit: func(b *asm.Builder) {
		for i := 0; i < mem.TCMSize/int(isa.InstBytes); i++ {
			b.I(isa.OpADDI, 1, 1, 1)
		}
		b.Misr(1)
	}}}
	return r
}

func TestTCMRejectsOversizedRoutine(t *testing.T) {
	// A routine larger than the ITCM has no TCM deployment: Emit and
	// MemoryOverhead must both reject it (an overhead figure for an
	// unplaceable routine would silently corrupt Table IV accounting).
	r := oversizedRoutine()
	s := TCMBased{CoreID: 0}
	if err := s.Emit(asm.NewBuilder(), r); err == nil {
		t.Error("oversized routine accepted by Emit")
	}
	if _, err := s.MemoryOverhead(r); err == nil {
		t.Error("oversized routine got a MemoryOverhead figure")
	}
	// Oversized data alone must reject the same way.
	rd := fwdRoutine(0)
	rd.ScratchBytes = mem.TCMSize + 4
	if err := s.Emit(asm.NewBuilder(), rd); err == nil {
		t.Error("oversized data accepted by Emit")
	}
	if _, err := s.MemoryOverhead(rd); err == nil {
		t.Error("oversized data got a MemoryOverhead figure")
	}
}

func TestMisrReferenceMatchesHardware(t *testing.T) {
	// A trivial routine folding known constants must produce the Go-side
	// MisrStream prediction.
	vals := []uint32{0x11111111, 0x02222222, 0xDEADBEEF}
	r := &sbst.Routine{
		Name: "ref", Target: "ref", DataBase: dataBaseFor(0),
		DataWords: vals,
	}
	r.Blocks = []sbst.Block{{Name: "fold", Emit: func(b *asm.Builder) {
		for i := int32(0); i < 3; i++ {
			b.Load(isa.OpLW, 1, isa.RegBase, i*4)
			b.Nop()
			b.Nop()
			b.Nop()
			b.Misr(1)
		}
	}}}
	res, _, err := RunSingle(cfg(1, true, true, [3]int{}), 0,
		&CoreJob{Routine: r, Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
		maxRun)
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK {
		t.Fatalf("run failed: %+v", res)
	}
	if want := sbst.MisrStream(vals...); res.Signature != want {
		t.Errorf("signature %#x, want MisrStream %#x", res.Signature, want)
	}
}
