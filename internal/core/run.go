package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

// CoreJob describes what one core runs: one routine (Routine) or a
// sequence (Routines), each emitted by Strategy, then an optional epilogue
// (e.g. a scheduler barrier) and a HALT.
type CoreJob struct {
	Routine  *sbst.Routine
	Routines []*sbst.Routine // takes precedence over Routine when non-nil
	Strategy Strategy
	CodeBase uint32 // flash address of the program
	AlignPad uint32 // extra bytes before the body (code-alignment scenario)
	Epilogue func(b *asm.Builder)
}

// routines returns the job's routine list.
func (j *CoreJob) routines() []*sbst.Routine {
	if j.Routines != nil {
		return j.Routines
	}
	if j.Routine == nil {
		return nil
	}
	return []*sbst.Routine{j.Routine}
}

// RunResult captures one core's outcome.
type RunResult struct {
	Signature uint32
	OK        bool // halted cleanly: no wedge, no timeout
	Wedged    bool
	Cycles    int64 // core cycles until HALT drained
	IFStall   uint64
	MemStall  uint64
	HazStall  uint64
	Issued2   uint64
	Instret   uint64
}

// RunJobs assembles and loads each job, starts the corresponding cores and
// runs the SoC to completion (or maxCycles). cfg's per-core Active flags
// must match the non-nil jobs. The returned SoC allows callers to inspect
// bus statistics and cache state.
func RunJobs(cfg soc.Config, jobs [soc.NumCores]*CoreJob, maxCycles int64) ([soc.NumCores]*RunResult, *soc.SoC, error) {
	return RunJobsTraced(cfg, jobs, maxCycles, nil)
}

// RunJobsTraced is RunJobs with a pipeline tracer attached to core 0 (used
// by the Figure 1 reproduction and debugging tools).
func RunJobsTraced(cfg soc.Config, jobs [soc.NumCores]*CoreJob, maxCycles int64, trace cpu.TraceFn) ([soc.NumCores]*RunResult, *soc.SoC, error) {
	return RunJobsSetup(cfg, jobs, maxCycles, trace, nil)
}

// RunJobsSetup additionally invokes setup on the assembled SoC before the
// cores start — the hook the fault campaigns use to attach bus-traffic
// recorders.
func RunJobsSetup(cfg soc.Config, jobs [soc.NumCores]*CoreJob, maxCycles int64, trace cpu.TraceFn, setup func(*soc.SoC)) ([soc.NumCores]*RunResult, *soc.SoC, error) {
	var results [soc.NumCores]*RunResult
	for id, job := range jobs {
		cfg.Cores[id].Active = job != nil
	}
	s := soc.New(cfg)
	if trace != nil {
		s.Cores[0].Core.SetTracer(trace)
	}
	if setup != nil {
		setup(s)
	}
	var entries [soc.NumCores]uint32
	for id, job := range jobs {
		if job == nil {
			continue
		}
		prog, err := buildProgram(job)
		if err != nil {
			return results, nil, fmt.Errorf("core%d: %w", id, err)
		}
		if err := s.Load(prog); err != nil {
			return results, nil, fmt.Errorf("core%d: %w", id, err)
		}
		for _, r := range job.routines() {
			loadRoutineData(s, r)
		}
		entries[id] = prog.Base
	}
	for id, job := range jobs {
		if job != nil {
			s.Start(id, entries[id])
		}
	}
	res := s.Run(maxCycles)
	for id, job := range jobs {
		if job == nil {
			continue
		}
		u := s.Cores[id]
		results[id] = &RunResult{
			Signature: u.Core.Reg(isa.RegSig),
			OK:        u.Core.Done() && !u.Core.Wedged() && !res.TimedOut,
			Wedged:    u.Core.Wedged(),
			Cycles:    u.Core.Cycle(),
			IFStall:   u.Core.Counter(fault.CntIFStall),
			MemStall:  u.Core.Counter(fault.CntMemStall),
			HazStall:  u.Core.Counter(fault.CntHazStall),
			Issued2:   u.Core.Counter(fault.CntIssued2),
			Instret:   u.Core.Counter(fault.CntInstret),
		}
	}
	return results, s, nil
}

// RunSingle is the single-job convenience form: the job runs on core id
// with the given SoC configuration.
func RunSingle(cfg soc.Config, id int, job *CoreJob, maxCycles int64) (*RunResult, *soc.SoC, error) {
	var jobs [soc.NumCores]*CoreJob
	jobs[id] = job
	results, s, err := RunJobs(cfg, jobs, maxCycles)
	if err != nil {
		return nil, nil, err
	}
	return results[id], s, nil
}

func buildProgram(job *CoreJob) (*asm.Program, error) {
	b := asm.NewBuilder()
	for pad := uint32(0); pad < job.AlignPad; pad += isa.InstBytes {
		b.Nop()
	}
	for _, r := range job.routines() {
		if err := job.Strategy.Emit(b, r); err != nil {
			return nil, err
		}
	}
	if job.Epilogue != nil {
		job.Epilogue(b)
	}
	b.Halt()
	return b.Assemble(job.CodeBase)
}

// loadRoutineData writes the routine's pattern table into system SRAM (the
// loader's job on the real device).
func loadRoutineData(s *soc.SoC, r *sbst.Routine) {
	off := r.DataBase - mem.SRAMBase
	for i, w := range r.DataWords {
		mem.WriteWord(s.SRAM, off+uint32(i)*4, w)
	}
}
