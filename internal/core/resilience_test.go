package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/soc"
)

// poisonData returns a testPoison hook that corrupts the first word of
// job's data table — post-Reset state the golden replay is guaranteed to
// read, so a health check against the poisoned arena must see a divergent
// result.
func poisonData(job *CoreJob) func(*soc.SoC) {
	return func(s *soc.SoC) {
		off := job.Routine.DataBase - mem.SRAMBase
		mem.WriteWord(s.SRAM, off, mem.ReadWord(s.SRAM, off)^0xDEADBEEF)
	}
}

// hangSite stalls the pipeline forever (load-use request stuck on), so its
// run is always watchdog-cut — the trigger for the arena health check.
var hangSite = fault.Site{Unit: fault.UnitHDCU, Signal: fault.SigCtl, Path: fault.CtlLoadUse, Stuck: 1}

// TestArenaQuarantineRecoversPoisonedReset extends the
// TestArenaResetMatchesFreshSoC family with a deliberately corrupted
// arena: the poison hook trashes post-Reset state, the watchdog-cut run's
// health check detects it, the arena is quarantined and rebuilt, and the
// suspect site's verdict comes from a fresh SoC — matching a
// rebuild-per-fault run exactly.
func TestArenaQuarantineRecoversPoisonedReset(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 2, false)
	wantRes, _ := freshRun(t, replayCfg, job, budget, nil)
	freshHang, _ := freshRun(t, replayCfg, job, budget, fault.PlaneFor(hangSite))

	a, err := NewArena(replayCfg, 0, job, budget, ArenaOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Control: a cut run on a healthy arena passes its health check and no
	// quarantine happens.
	sig, ok := a.Run(fault.PlaneFor(hangSite))
	if ok != freshHang.OK || (ok && sig != freshHang.Signature) {
		t.Fatalf("healthy arena hang verdict (%08x, %v) != fresh (%08x, %v)",
			sig, ok, freshHang.Signature, freshHang.OK)
	}
	if a.HealthChecks() != 1 || a.Quarantines() != 0 {
		t.Fatalf("healthy cut run: checks=%d quarantines=%d, want 1/0",
			a.HealthChecks(), a.Quarantines())
	}

	// Poison the arena. The next cut run must fail its health check,
	// quarantine the arena, and settle the site on a fresh SoC.
	a.testPoison = poisonData(job)
	sig, ok = a.Run(fault.PlaneFor(hangSite))
	if a.Quarantines() != 1 {
		t.Fatalf("poisoned arena not quarantined (quarantines=%d)", a.Quarantines())
	}
	if a.Dead() {
		t.Fatal("rebuild failed")
	}
	if a.FallbackRuns() != 1 {
		t.Errorf("suspect site not served by fallback (fallbacks=%d)", a.FallbackRuns())
	}
	if ok != freshHang.OK || (ok && sig != freshHang.Signature) {
		t.Errorf("quarantined site verdict (%08x, %v) != fresh-SoC (%08x, %v)",
			sig, ok, freshHang.Signature, freshHang.OK)
	}
	if a.testPoison != nil {
		t.Error("rebuild kept the poison hook")
	}

	// The rebuilt arena is healthy again: golden runs reproduce the fresh
	// result exactly, monitor wiring included.
	for i := 0; i < 2; i++ {
		sig, ok = a.Run(fault.None)
		if sig != wantRes.Signature || !ok {
			t.Fatalf("rebuilt arena golden %08x ok=%v, fresh %08x", sig, ok, wantRes.Signature)
		}
		if got := a.Last(); got != wantRes {
			t.Errorf("rebuilt arena result %+v != fresh %+v", got, wantRes)
		}
	}
}

// TestArenaPanickedRunHealthCheck pins the panic leg of the failure
// domain: a run that panics out of the arena (caught by the campaign's
// recover boundary) leaves inRun set, and the next Run health-checks the
// arena before serving its site — quarantining it when the panic left
// corrupt state behind.
func TestArenaPanickedRunHealthCheck(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 1, false)
	wantRes, _ := freshRun(t, replayCfg, job, budget, nil)

	a, err := NewArena(replayCfg, 0, job, budget, ArenaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// First call panics mid-run (the simulated defect); every later call
	// poisons post-Reset state (the mess the defect left behind).
	calls := 0
	a.testPoison = func(s *soc.SoC) {
		calls++
		if calls == 1 {
			panic("injected arena defect")
		}
		poisonData(job)(s)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("injected panic did not propagate")
			}
		}()
		a.Run(fault.None)
	}()

	sig, ok := a.Run(fault.None)
	if a.HealthChecks() == 0 {
		t.Error("no health check after a panicked run")
	}
	if a.Quarantines() != 1 {
		t.Fatalf("poisoned arena not quarantined after panic (quarantines=%d)", a.Quarantines())
	}
	if sig != wantRes.Signature || !ok {
		t.Errorf("post-quarantine golden %08x ok=%v, want %08x", sig, ok, wantRes.Signature)
	}
}

// TestArenaFallbackResetsStaleTransitionPlane pins the stateful-plane leg
// of the fallback path: a Transition plane that already executed on the
// (now retired) arena carries the poisoned run's edge history, and the
// fallback fresh-SoC run must not inherit it — the verdict has to match a
// clean rebuild-per-fault run of the same site exactly.
func TestArenaFallbackResetsStaleTransitionPlane(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 1, false)
	sites := fault.TransitionFaults(fault.ListOptions{DataBits: 32, BitStep: 8})
	fault.SortSites(sites)
	sites = fault.Sample(sites, 5)

	a, err := NewArena(replayCfg, 0, job, budget, ArenaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	staleSeen := false
	for _, site := range sites {
		p := fault.NewTransition(site)
		a.Run(p) // leaves the run's edge history on the plane object
		if _, seen := p.History(); seen {
			staleSeen = true
		}
		a.dead = true // simulate a failed rebuild: every site falls back
		sig, ok := a.Run(p)
		a.dead = false
		fresh, _ := freshRun(t, replayCfg, job, budget, fault.PlaneFor(site))
		if ok != fresh.OK || (ok && sig != fresh.Signature) {
			t.Errorf("%v: fallback of a used plane (%08x, %v) != clean run (%08x, %v)",
				site, sig, ok, fresh.Signature, fresh.OK)
		}
	}
	if !staleSeen {
		t.Fatal("no sampled site left edge history on its plane; test is vacuous")
	}
}

// TestArenaFallbackSurfacesBuildError pins that a fallback run whose
// fresh-SoC build fails panics (into the campaign's recover boundary,
// where it becomes a Panicked verdict plus an anomaly) instead of
// returning a fabricated crashed-run verdict.
func TestArenaFallbackSurfacesBuildError(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 1, false)
	a, err := NewArena(replayCfg, 0, job, budget, ArenaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := *job
	bad.CodeBase = mem.FlashSize // program lands outside flash: build fails
	a.job = &bad
	a.dead = true
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("fallback build error did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "fallback") {
			t.Errorf("panic does not identify the fallback path: %v", r)
		}
	}()
	a.Run(fault.None)
}

// campaignSites returns a small deterministic universe for campaign-level
// tests: stuck-at and transition sites (so both the full-replay and the
// checkpointed paths run), plus the hang site so the cut path is exercised.
func campaignSites() []fault.Site {
	sites := fault.ForwardingLogic(fault.ListOptions{DataBits: 32, BitStep: 8})
	fault.SortSites(sites)
	sites = fault.Sample(sites, 29)
	tr := fault.TransitionFaults(fault.ListOptions{DataBits: 32, BitStep: 8})
	fault.SortSites(tr)
	sites = append(sites, fault.Sample(tr, 7)...)
	return append(sites, hangSite)
}

// TestCampaignJournalResumeBitIdentical is the acceptance pin for the
// resume primitive at the engine level: a journaled campaign killed
// mid-append (journal truncated to a prefix plus a torn line) and resumed
// produces a fault.Report bit-identical to the uninterrupted run.
func TestCampaignJournalResumeBitIdentical(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 1, false)
	sites := campaignSites()
	dir := t.TempDir()
	fullPath := filepath.Join(dir, "full.journal")
	killedPath := filepath.Join(dir, "killed.journal")

	full, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 2, Journal: fullPath})
	if err != nil {
		t.Fatal(err)
	}

	// Forge the killed journal: header, golden, three settled verdicts,
	// one torn mid-append.
	blob, err := os.ReadFile(fullPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(blob), "\n")
	if len(lines) < 7 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	partial := strings.Join(lines[:5], "") + lines[5][:len(lines[5])/2]
	if err := os.WriteFile(killedPath, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 2, Journal: killedPath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !full.SameVerdicts(resumed) {
		t.Fatalf("resumed report differs from uninterrupted:\nfull    %+v\nresumed %+v", full, resumed)
	}

	// Both modes agree under journaling too: a reference-mode resume of
	// the same optimized-arena journal reproduces the identical report.
	ref, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 2, Reference: true, Journal: killedPath, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if !full.SameVerdicts(ref) {
		t.Fatal("reference-mode resume differs from optimized report")
	}

	// Checkpointing is a pure engine optimisation, so it stays out of the
	// campaign fingerprint: a torn journal written by the (auto-
	// checkpointed) run above resumes under an engine with checkpointing
	// forced off and still reproduces the identical report.
	plainPath := filepath.Join(dir, "plain.journal")
	if err := os.WriteFile(plainPath, []byte(partial), 0o644); err != nil {
		t.Fatal(err)
	}
	plain, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 2, Journal: plainPath, Resume: true, CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !full.SameVerdicts(plain) {
		t.Fatal("checkpoint-off resume differs from checkpointed report")
	}
}

// TestCampaignJournalRefusesForeignFingerprint pins that a journal written
// by one campaign cannot be resumed by a different one: any change to the
// program, universe, or environment changes the fingerprint.
func TestCampaignJournalRefusesForeignFingerprint(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 1, false)
	sites := campaignSites()
	dir := t.TempDir()
	path := filepath.Join(dir, "j.journal")

	if _, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 2, Journal: path}); err != nil {
		t.Fatal(err)
	}

	// Different budget -> different environment hash.
	if _, err := RunCampaignOpts(replayCfg, 0, job, sites, budget+1,
		CampaignOptions{Workers: 2, Journal: path, Resume: true}); err == nil {
		t.Error("budget change resumed a foreign journal")
	}
	// Different universe.
	if _, err := RunCampaignOpts(replayCfg, 0, job, sites[:len(sites)-1], budget,
		CampaignOptions{Workers: 2, Journal: path, Resume: true}); err == nil {
		t.Error("universe change resumed a foreign journal")
	}

	// Identity resume works and reruns nothing (the report is complete).
	rep, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 2, Journal: path, Resume: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total != len(sites) {
		t.Errorf("resumed report total %d, want %d", rep.Total, len(sites))
	}
}
