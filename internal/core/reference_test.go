package core

import (
	"reflect"
	"runtime"
	"testing"

	"repro/internal/fault"
)

// TestArenaNoEarlyExitMatchesLegacy pins the reference arena mode
// (NoEarlyExit, no checkpointing, no golden-verdict shortcut) as the
// campaign reference semantics. It was first run against the retired
// rebuild-per-fault legacy engine to inherit its pin: reference-arena
// reports were bit-identical to legacy reports on these universes before
// the legacy code was deleted. The pin now targets the optimized arena —
// plain and checkpointed — against the reference mode, over the same quick
// universes (stuck-at, transition and hang sites). The -race CI job runs
// this test under the race detector.
func TestArenaNoEarlyExitMatchesLegacy(t *testing.T) {
	for _, env := range []struct {
		name   string
		active int
		cached bool
	}{
		{"uncached-1core", 1, false},
		{"cached-2core", 2, true},
	} {
		t.Run(env.name, func(t *testing.T) {
			replayCfg, job, budget := arenaEnv(t, env.active, env.cached)
			sites := campaignSites()

			ref, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
				CampaignOptions{Workers: 2, Reference: true})
			if err != nil {
				t.Fatal(err)
			}

			// Optimized arena, checkpointing off: early exit and the
			// divergence watchdogs must not change a single verdict.
			plain, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
				CampaignOptions{Workers: 2, CheckpointInterval: -1})
			if err != nil {
				t.Fatal(err)
			}
			if !ref.SameVerdicts(plain) {
				t.Fatalf("optimized arena report differs from reference:\nref %+v\nopt %+v", ref, plain)
			}

			// Checkpointed leg: golden-run checkpoints, fast-forward and the
			// golden-verdict shortcut are pure execution strategy.
			ck, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
				CampaignOptions{Workers: 2, CheckpointInterval: 512})
			if err != nil {
				t.Fatal(err)
			}
			if !ref.SameVerdicts(ck) {
				t.Fatalf("checkpointed arena report differs from reference:\nref  %+v\nckpt %+v", ref, ck)
			}
		})
	}
}

// TestCampaignWorkerCountStable pins that the full-universe campaign path
// is order-stable across worker-pool sizes: the report over an entire
// (unsampled, sorted) universe must be bit-identical under Workers 1, 4
// and GOMAXPROCS. Verdict slots are indexed by site position and workers
// claim sites through an atomic cursor, so parallelism must never reorder
// or skew a report — the invariant that made removing the legacy site
// sampling cap safe.
func TestCampaignWorkerCountStable(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 2, false)
	sites := fault.ICU(fault.ListOptions{BitStep: 1})
	fault.SortSites(sites)
	if len(sites) < 8 {
		t.Fatalf("ICU universe has only %d sites; test is vacuous", len(sites))
	}

	var base fault.Report
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rep, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
			CampaignOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			base = rep
			continue
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("report differs between Workers=1 and Workers=%d:\nbase %+v\ngot  %+v",
				workers, base, rep)
		}
	}
}
