package core

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/cache"
	"repro/internal/fault"
	"repro/internal/soc"
)

// arenaEnv builds the replay environment the fault campaigns use: a full
// multi-core golden run records the other cores' bus traffic, then the core
// under test runs alone against the replayed contention.
func arenaEnv(t *testing.T, active int, cached bool) (replayCfg soc.Config, job *CoreJob, budget int64) {
	t.Helper()
	c := cfg(active, cached, true, [3]int{})
	strat := func(int) Strategy {
		if cached {
			return CacheBased{WriteAllocate: true}
		}
		return Plain{}
	}
	jobs := jobsSameRoutine(active, fwdRoutine, strat)
	var rec *bus.Recorder
	results, _, err := RunJobsSetup(c, jobs, maxRun, nil, func(s *soc.SoC) {
		rec = s.AttachRecorder(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !results[0].OK {
		t.Fatal("full golden run failed")
	}
	replayCfg = c
	replayCfg.Replay = rec.EventsByMaster()
	return replayCfg, jobs[0], results[0].Cycles*8 + 20_000
}

// freshRun runs job once on a freshly built SoC in the replay environment
// (rebuild-per-fault semantics) and returns the result plus cache statistics.
func freshRun(t *testing.T, replayCfg soc.Config, job *CoreJob, budget int64, p fault.Plane) (RunResult, [2]cache.Stats) {
	t.Helper()
	c := replayCfg
	for id := 0; id < soc.NumCores; id++ {
		c.Cores[id].Active = id == 0
	}
	c.Cores[0].Plane = p
	var jobs [soc.NumCores]*CoreJob
	jobs[0] = job
	res, s, err := RunJobs(c, jobs, budget)
	if err != nil {
		t.Fatal(err)
	}
	return *res[0], socCacheStats(s)
}

func socCacheStats(s *soc.SoC) [2]cache.Stats {
	var out [2]cache.Stats
	if s.Cores[0].ICache != nil {
		out[0] = s.Cores[0].ICache.Stats()
		out[1] = s.Cores[0].DCache.Stats()
	}
	return out
}

// TestArenaResetMatchesFreshSoC is the reset-equivalence property: across
// cached/uncached and 1-3-core replay environments, a Reset() arena SoC
// reproduces the exact golden signature, cycle count, performance counters
// and cache statistics of a freshly built SoC — including immediately after
// a faulty (possibly wedged) run has trampled caches, memories and
// architectural state.
func TestArenaResetMatchesFreshSoC(t *testing.T) {
	// A spread of fault sites chosen to corrupt different layers: forwarded
	// data (wild stores), mux selects (wild control flow, often wedges) and
	// a stuck hazard line (stalls/hangs).
	dirty := []fault.Site{
		{Unit: fault.UnitFwd, Signal: fault.SigMuxData, Lane: 0, Operand: 0, Path: fault.PathEXL0, Bit: 31, Stuck: 1},
		{Unit: fault.UnitFwd, Signal: fault.SigMuxSel, Lane: 1, Operand: 1, Bit: 2, Stuck: 1},
		{Unit: fault.UnitHDCU, Signal: fault.SigCtl, Path: fault.CtlLoadUse, Stuck: 1},
	}
	for _, cached := range []bool{false, true} {
		for active := 1; active <= soc.NumCores; active++ {
			replayCfg, job, budget := arenaEnv(t, active, cached)
			wantRes, wantStats := freshRun(t, replayCfg, job, budget, nil)
			if !wantRes.OK {
				t.Fatalf("cached=%v active=%d: fresh replay golden failed", cached, active)
			}

			a, err := NewArena(replayCfg, 0, job, budget, ArenaOptions{})
			if err != nil {
				t.Fatal(err)
			}
			check := func(when string) {
				sig, ok := a.Run(fault.None)
				if sig != wantRes.Signature || !ok {
					t.Fatalf("cached=%v active=%d %s: arena golden %08x ok=%v, fresh %08x",
						cached, active, when, sig, ok, wantRes.Signature)
				}
				if got := a.Last(); got != wantRes {
					t.Errorf("cached=%v active=%d %s: arena result %+v != fresh %+v",
						cached, active, when, got, wantRes)
				}
				if got := socCacheStats(a.SoC()); got != wantStats {
					t.Errorf("cached=%v active=%d %s: arena cache stats %+v != fresh %+v",
						cached, active, when, got, wantStats)
				}
			}
			check("first run")
			for i, site := range dirty {
				a.Run(fault.PlaneFor(site)) // trample state
				check([]string{"after data fault", "after sel fault", "after ctl fault"}[i])
			}
		}
	}
}

// TestArenaFaultyRunMatchesFreshSoC pins the per-fault path itself: for a
// sample of fault sites, a reset arena run must reproduce the signature and
// clean/crash classification of a freshly built SoC simulating the same
// fault with the full budget.
func TestArenaFaultyRunMatchesFreshSoC(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 2, false)
	sites := fault.ForwardingLogic(fault.ListOptions{DataBits: 32, BitStep: 8})
	fault.SortSites(sites)
	sites = fault.Sample(sites, 7)

	a, err := NewArena(replayCfg, 0, job, budget, ArenaOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range sites {
		fresh, _ := freshRun(t, replayCfg, job, budget, fault.PlaneFor(site))
		sig, ok := a.Run(fault.PlaneFor(site))
		if ok != fresh.OK {
			t.Errorf("%v: arena ok=%v, fresh ok=%v", site, ok, fresh.OK)
			continue
		}
		// Crashed runs may be cut short by the divergence watchdogs, so
		// only clean runs pin the exact signature (campaign reports
		// canonicalise crashed signatures to 0 for the same reason).
		if ok && sig != fresh.Signature {
			t.Errorf("%v: arena signature %08x, fresh %08x", site, sig, fresh.Signature)
		}
	}
}
