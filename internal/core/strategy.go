package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sbst"
)

// Strategy emits the executable form of one routine into a program under
// construction. The final signature is left in isa.RegSig. Emit does not
// terminate the program (no HALT), so several routines can be sequenced;
// the runner appends the terminator.
type Strategy interface {
	Name() string
	Emit(b *asm.Builder, r *sbst.Routine) error
	// MemoryOverhead reports the bytes of system memory the strategy
	// permanently reserves beyond the routine image itself (Table IV).
	MemoryOverhead(r *sbst.Routine) (int, error)
}

// Plain executes the routine in place, exactly as a single-core STL would:
// no caches involved, no loop.
type Plain struct{}

// Name implements Strategy.
func (Plain) Name() string { return "plain" }

// Emit implements Strategy.
func (Plain) Emit(b *asm.Builder, r *sbst.Routine) error {
	r.EmitSigReset(b)
	b.Nop() // keep issue-packet parity even
	emitDataBase(b, r)
	r.EmitBody(b)
	return nil
}

// MemoryOverhead implements Strategy.
func (Plain) MemoryOverhead(*sbst.Routine) (int, error) { return 0, nil }

// CacheBased is the paper's strategy.
type CacheBased struct {
	// ICacheBytes/DCacheBytes bound the footprint checks; zero values use
	// the paper's geometry (8 kB / 4 kB).
	ICacheBytes int
	DCacheBytes int
	// WriteAllocate describes the data-cache policy the routine will run
	// under. With no-write-allocate the routine must carry dummy loads.
	WriteAllocate bool
	// DummyLoadsPresent asserts the routine was generated with a dummy
	// load after every store (required when WriteAllocate is false).
	DummyLoadsPresent bool
	// Iterations is the loop count; the paper uses 2 (one loading loop,
	// one execution loop). Values > 2 only add redundant execution loops;
	// 1 disables the loading loop (used by the ablation bench).
	Iterations int
}

// Name implements Strategy.
func (CacheBased) Name() string { return "cache" }

func (s CacheBased) icacheBytes() int {
	if s.ICacheBytes > 0 {
		return s.ICacheBytes
	}
	return cache.ICacheConfig().SizeBytes
}

func (s CacheBased) dcacheBytes() int {
	if s.DCacheBytes > 0 {
		return s.DCacheBytes
	}
	return cache.DCacheConfig(true).SizeBytes
}

func (s CacheBased) iterations() int {
	if s.Iterations > 0 {
		return s.Iterations
	}
	return 2
}

// chunkOverheadBytes is the per-chunk wrapper size: invalidate, loop
// counter, sig spill/reload, data base, loop branch — measured generously.
const chunkOverheadBytes = 24 * isa.InstBytes

// Emit implements Strategy.
func (s CacheBased) Emit(b *asm.Builder, r *sbst.Routine) error {
	if err := s.Validate(r); err != nil {
		return err
	}
	chunks, err := s.partition(r)
	if err != nil {
		return err
	}
	if len(chunks) == 1 {
		s.emitSingleChunk(b, r)
		return nil
	}
	s.emitMultiChunk(b, r, chunks)
	return nil
}

// Validate checks the strategy's applicability rules (Section III).
func (s CacheBased) Validate(r *sbst.Routine) error {
	if !s.WriteAllocate && !s.DummyLoadsPresent {
		return fmt.Errorf("core: routine %q targets a no-write-allocate data cache "+
			"but was generated without dummy loads after stores (rule 1)", r.Name)
	}
	if r.DataSize()+8 > s.dcacheBytes() {
		return fmt.Errorf("core: routine %q data footprint %d bytes exceeds the "+
			"%d-byte data cache", r.Name, r.DataSize(), s.dcacheBytes())
	}
	size, err := r.SizeBytes()
	if err != nil {
		return err
	}
	if r.NoSplit && size+chunkOverheadBytes > s.icacheBytes() {
		return fmt.Errorf("core: routine %q (%d bytes) does not fit the %d-byte "+
			"instruction cache and cannot be split", r.Name, size, s.icacheBytes())
	}
	return nil
}

// partition groups blocks into chunks that fit the instruction cache.
func (s CacheBased) partition(r *sbst.Routine) ([][]sbst.Block, error) {
	size, err := r.SizeBytes()
	if err != nil {
		return nil, err
	}
	if r.NoSplit || size+chunkOverheadBytes <= s.icacheBytes() {
		return [][]sbst.Block{r.Blocks}, nil
	}
	budget := s.icacheBytes() - chunkOverheadBytes
	var chunks [][]sbst.Block
	var cur []sbst.Block
	curSize := 0
	for _, blk := range r.Blocks {
		bs, err := blockSize(blk)
		if err != nil {
			return nil, fmt.Errorf("core: sizing block %q of %q: %w", blk.Name, r.Name, err)
		}
		if bs > budget {
			return nil, fmt.Errorf("core: block %q of %q (%d bytes) exceeds the "+
				"chunk budget %d", blk.Name, r.Name, bs, budget)
		}
		if curSize+bs > budget && len(cur) > 0 {
			chunks = append(chunks, cur)
			cur, curSize = nil, 0
		}
		cur = append(cur, blk)
		curSize += bs
	}
	if len(cur) > 0 {
		chunks = append(chunks, cur)
	}
	return chunks, nil
}

func blockSize(blk sbst.Block) (int, error) {
	b := asm.NewBuilder()
	blk.Emit(b)
	p, err := b.Assemble(0)
	if err != nil {
		return 0, err
	}
	return p.Size(), nil
}

// emitSingleChunk emits the Figure 2b structure for a routine that fits.
func (s CacheBased) emitSingleChunk(b *asm.Builder, r *sbst.Routine) {
	b.Cinv(isa.CinvBoth)
	b.I(isa.OpADDI, isa.RegLoop, isa.RegZero, int32(s.iterations()))
	loop := b.AutoLabel("ldexe")
	b.Label(loop)
	r.EmitSigReset(b)
	b.Nop()
	emitDataBase(b, r)
	r.EmitBody(b)
	b.I(isa.OpADDI, isa.RegLoop, isa.RegLoop, -1)
	b.Branch(isa.OpBNE, isa.RegLoop, isa.RegZero, loop)
}

// emitMultiChunk emits one invalidate+loop per chunk, chaining the
// signature through an uncached mailbox so a loading loop can never
// pollute the committed value and a later chunk's invalidate can never
// discard it (the mailbox bypasses the write-back data cache entirely).
func (s CacheBased) emitMultiChunk(b *asm.Builder, r *sbst.Routine, chunks [][]sbst.Block) {
	mailbox := sigMailboxAddr(r)
	// Preamble: clear the mailbox.
	emitLi2(b, isa.RegTmp1, mailbox)
	b.Store(isa.OpSW, isa.RegZero, isa.RegTmp1, 0)
	for _, chunk := range chunks {
		b.Cinv(isa.CinvBoth)
		b.I(isa.OpADDI, isa.RegLoop, isa.RegZero, int32(s.iterations()))
		loop := b.AutoLabel("chunk")
		b.Label(loop)
		// Reload the committed signature; the loading loop's accumulation
		// is discarded by this reload on the execution loop's entry.
		emitLi2(b, isa.RegTmp1, mailbox)
		b.Load(isa.OpLW, isa.RegSig, isa.RegTmp1, 0)
		emitDataBase(b, r)
		for _, blk := range chunk {
			blk.Emit(b)
		}
		b.I(isa.OpADDI, isa.RegLoop, isa.RegLoop, -1)
		b.Branch(isa.OpBNE, isa.RegLoop, isa.RegZero, loop)
		// Commit after the execution loop.
		emitLi2(b, isa.RegTmp1, mailbox)
		b.Store(isa.OpSW, isa.RegSig, isa.RegTmp1, 0)
	}
	// Leave the final signature in the register too.
	emitLi2(b, isa.RegTmp1, mailbox)
	b.Load(isa.OpLW, isa.RegSig, isa.RegTmp1, 0)
	b.Nop()
	b.Nop()
}

// MemoryOverhead implements Strategy: the cache-based approach reserves no
// memory (the multi-chunk mailbox lives in the routine's existing scratch
// area).
func (CacheBased) MemoryOverhead(*sbst.Routine) (int, error) { return 0, nil }

// sigMailboxAddr places the signature mailbox in the uncached SRAM alias,
// just past the routine's data area, on its own cache line: the routine's
// cached stores must never share a line with the mailbox, or a later dirty
// write-back could overwrite the uncached commit.
func sigMailboxAddr(r *sbst.Routine) uint32 {
	off := r.DataBase - mem.SRAMBase + uint32((r.DataSize()+mem.LineBytes-1)&^(mem.LineBytes-1))
	return mem.SRAMUncachedBase + off
}

// emitDataBase materialises the routine's data pointer in a fixed two
// instructions so packet parity does not depend on the address value.
func emitDataBase(b *asm.Builder, r *sbst.Routine) {
	emitLi2(b, isa.RegBase, r.DataBase)
}

// emitLi2 is a fixed-size (two instruction) load-immediate.
func emitLi2(b *asm.Builder, rd uint8, v uint32) {
	b.I(isa.OpLUI, rd, 0, int32(v>>16))
	b.I(isa.OpORI, rd, rd, int32(v&0xFFFF))
}
