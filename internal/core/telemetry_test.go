package core

// Campaign-telemetry pins: attaching a registry, an event stream and the
// progress ticker must not change a single verdict, and every metric must
// reconcile exactly with the report it describes. Run under -race in CI,
// TestCampaignTelemetryCounts doubles as the data-race gate for worker
// arenas sharing one registry's atomics.

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/soc"
	"repro/internal/telemetry"
)

// syncBuffer is a goroutine-safe writer for ticker output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestCampaignTelemetryCounts(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 1, false)
	sites := campaignSites()

	plain, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	var stream bytes.Buffer
	log := telemetry.NewEventLog(&stream)
	rep, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 4, Telemetry: reg, Events: log})
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Err(); err != nil {
		t.Fatal(err)
	}
	if !plain.SameVerdicts(rep) {
		t.Fatal("attaching telemetry changed the report")
	}

	// Metrics reconcile exactly with the report.
	if got := reg.Counter("campaign_sites_settled_total").Value(); got != int64(len(rep.Results)) {
		t.Errorf("settled counter = %d, want %d", got, len(rep.Results))
	}
	if got := reg.Counter("campaign_verdict_detected_total").Value(); got != int64(rep.Detected) {
		t.Errorf("detected counter = %d, want %d", got, rep.Detected)
	}
	if got := reg.Counter("campaign_verdict_panicked_total").Value(); got != int64(rep.Panics) {
		t.Errorf("panicked counter = %d, want %d", got, rep.Panics)
	}
	var dispatchSum int64
	for p := fault.DispatchPath(0); p < fault.NumDispatchPaths; p++ {
		dispatchSum += reg.Counter("arena_dispatch_" + p.String() + "_total").Value()
	}
	if dispatchSum != int64(len(rep.Results)) {
		t.Errorf("dispatch counters sum to %d, want %d", dispatchSum, len(rep.Results))
	}
	if got := rep.Dispatch.Total(); got != int64(len(rep.Results)) {
		t.Errorf("report dispatch total = %d, want %d", got, len(rep.Results))
	}
	// The universe mixes stuck-at and transition sites, so both the full
	// replay and at least one checkpoint shortcut must have served.
	if rep.Dispatch[fault.DispatchFullReplay] == 0 || rep.Dispatch.Shortcuts() == 0 {
		t.Errorf("dispatch does not cover both path families: %s", rep.Dispatch)
	}
	if !strings.Contains(rep.String(), "dispatch:") {
		t.Errorf("Report.String misses the dispatch line:\n%s", rep.String())
	}

	// The event stream decodes strictly and mirrors the report: one start,
	// one finish, one site event per settled site.
	events, err := telemetry.DecodeEvents(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if got := telemetry.CountKind(events, telemetry.EventSite); got != len(rep.Results) {
		t.Errorf("%d site events, want %d", got, len(rep.Results))
	}
	if telemetry.CountKind(events, telemetry.EventStart) != 1 ||
		telemetry.CountKind(events, telemetry.EventFinish) != 1 {
		t.Error("stream must carry exactly one start and one finish event")
	}
	for _, e := range events {
		if e.Kind == telemetry.EventFinish {
			if e.Settled != int64(len(rep.Results)) || e.DetectedTotal != int64(rep.Detected) {
				t.Errorf("finish event %+v disagrees with report (%d settled, %d detected)",
					e, len(rep.Results), rep.Detected)
			}
		}
	}
}

// TestCampaignTelemetryJournalResume pins the resumed-campaign half of the
// contract: sites folded in from a journal count as settled (and emit site
// events flagged journal=true) without being re-dispatched by an arena.
func TestCampaignTelemetryJournalResume(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 1, false)
	sites := campaignSites()
	journal := t.TempDir() + "/campaign.journal"
	if _, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 2, Journal: journal}); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	var stream bytes.Buffer
	rep, err := RunCampaignOpts(replayCfg, 0, job, sites, budget,
		CampaignOptions{Workers: 2, Journal: journal, Resume: true,
			Telemetry: reg, Events: telemetry.NewEventLog(&stream)})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("campaign_sites_settled_total").Value(); got != int64(len(rep.Results)) {
		t.Errorf("settled counter = %d, want %d", got, len(rep.Results))
	}
	if got := reg.Counter("campaign_sites_from_journal_total").Value(); got != int64(len(sites)) {
		t.Errorf("journal counter = %d, want %d (fully settled journal)", got, len(sites))
	}
	if got := rep.Dispatch.Total(); got != 0 {
		t.Errorf("fully journal-resumed campaign dispatched %d sites, want 0", got)
	}
	events, err := telemetry.DecodeEvents(&stream)
	if err != nil {
		t.Fatal(err)
	}
	journaled := 0
	for _, e := range events {
		if e.Kind == telemetry.EventSite && e.FromJournal {
			journaled++
		}
	}
	if journaled != len(sites) {
		t.Errorf("%d journal-flagged site events, want %d", journaled, len(sites))
	}
}

// TestCampaignProgressTicker pins the progress line's shape and sources:
// it reads only registry atomics and renders settled/total, the rate and
// the checkpoint-hit percentage.
func TestCampaignProgressTicker(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("campaign_sites_settled_total").Add(40)
	reg.Counter("campaign_verdict_detected_total").Add(31)
	reg.Counter("arena_dispatch_" + fault.DispatchCheckpoint.String() + "_total").Add(10)
	var buf syncBuffer
	var stream bytes.Buffer
	log := telemetry.NewEventLog(&stream)
	tk := campaignProgress(reg, CampaignOptions{
		Progress: 2 * time.Millisecond, ProgressWriter: &buf, Events: log,
	}, 96, time.Now())
	deadline := time.Now().Add(5 * time.Second)
	for buf.String() == "" && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	tk.Stop()
	out := buf.String()
	if !strings.Contains(out, "progress: 40/96 sites") {
		t.Errorf("progress line misses settled/total:\n%s", out)
	}
	if !strings.Contains(out, "sites/s") || !strings.Contains(out, "checkpoint-hit") {
		t.Errorf("progress line misses rate or checkpoint-hit:\n%s", out)
	}
	events, err := telemetry.DecodeEvents(&stream)
	if err != nil {
		t.Fatal(err)
	}
	if telemetry.CountKind(events, telemetry.EventProgress) == 0 {
		t.Fatal("no progress events emitted")
	}
	for _, e := range events {
		if e.Kind == telemetry.EventProgress && e.Settled != 40 {
			t.Errorf("progress event settled = %d, want 40", e.Settled)
		}
	}
}

// TestArenaQuarantineEvent pins that a quarantine reaches both telemetry
// sinks: the arena_quarantines_total counter and a quarantine event naming
// the core.
func TestArenaQuarantineEvent(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 1, false)
	reg := telemetry.NewRegistry()
	var stream bytes.Buffer
	a, err := NewArena(replayCfg, 0, job, budget,
		ArenaOptions{Telemetry: reg, Events: telemetry.NewEventLog(&stream)})
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	a.testPoison = func(s *soc.SoC) {
		calls++
		if calls == 1 {
			panic("injected arena defect")
		}
		poisonData(job)(s)
	}
	func() {
		defer func() { recover() }()
		a.Run(fault.None)
	}()
	if _, ok := a.Run(fault.None); !ok {
		t.Fatal("post-quarantine golden run failed")
	}
	if a.Quarantines() != 1 {
		t.Fatalf("quarantines = %d, want 1", a.Quarantines())
	}
	if got := reg.Counter("arena_quarantines_total").Value(); got != 1 {
		t.Errorf("quarantine counter = %d, want 1", got)
	}
	events, err := telemetry.DecodeEvents(&stream)
	if err != nil {
		t.Fatal(err)
	}
	quars := 0
	for _, e := range events {
		if e.Kind == telemetry.EventQuarantine {
			quars++
			if e.Core != 0 || e.Dead {
				t.Errorf("quarantine event %+v, want core 0, not dead", e)
			}
		}
	}
	if quars != 1 {
		t.Errorf("%d quarantine events, want 1", quars)
	}
}

// TestArenaStatsSnapshot pins that the unified ArenaStats snapshot agrees
// with the per-counter getters it subsumes.
func TestArenaStatsSnapshot(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 1, false)
	a, err := NewArena(replayCfg, 0, job, budget, ArenaOptions{CheckpointInterval: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range campaignSites() {
		a.Run(fault.PlaneFor(s))
	}
	st := a.Stats()
	if st.Runs != a.Runs() || st.EarlyExits != a.EarlyExits() ||
		st.HealthChecks != a.HealthChecks() || st.Quarantines != a.Quarantines() ||
		st.FallbackRuns != a.FallbackRuns() || st.CheckpointRuns != a.CheckpointRuns() ||
		st.GoldenServed != a.GoldenServed() || st.ConvergedRuns != a.ConvergedRuns() ||
		st.Jumps != a.Jumps() || st.Checkpoints != a.Checkpoints() ||
		st.GoldenEvents != a.GoldenEvents() || st.GoldenOK != a.GoldenOK() ||
		st.Dead != a.Dead() {
		t.Errorf("Stats() disagrees with getters: %+v", st)
	}
	if st.Dispatch.Total() != int64(len(campaignSites())) {
		t.Errorf("dispatch total = %d, want %d", st.Dispatch.Total(), len(campaignSites()))
	}
}
