package core

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/sbst"
	"repro/internal/soc"
)

// runSig executes a routine cache-wrapped on a single core with the given
// fault plane and returns (signature, ok).
func runSig(t *testing.T, mk func(int) *sbst.Routine, plane fault.Plane) (uint32, bool) {
	t.Helper()
	c := cfg(1, true, true, [3]int{})
	c.Cores[0].Plane = plane
	res, _, err := RunSingle(c, 0,
		&CoreJob{Routine: mk(0), Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
		maxRun)
	if err != nil {
		t.Fatal(err)
	}
	return res.Signature, res.OK
}

// TestDetectionMatrix verifies end to end, for one representative fault of
// every signal class, that the targeting routine's signature changes (or
// the run fails) under the cache-based strategy. This pins the fault model
// to the routines: a refactor that silently stops exercising a signal
// class breaks here, not in a slow campaign.
func TestDetectionMatrix(t *testing.T) {
	cases := []struct {
		name    string
		site    fault.Site
		routine func(int) *sbst.Routine
	}{
		{
			"forwarding mux data EX-EX lane0 opA bit5 SA1",
			fault.Site{Unit: fault.UnitFwd, Signal: fault.SigMuxData,
				Lane: 0, Operand: 0, Path: fault.PathEXL0, Bit: 5, Stuck: 1},
			fwdRoutine,
		},
		{
			"forwarding mux data cascade lane1 opB bit0 SA0",
			fault.Site{Unit: fault.UnitFwd, Signal: fault.SigMuxData,
				Lane: 1, Operand: 1, Path: fault.PathCascade, Bit: 0, Stuck: 0},
			fwdRoutine,
		},
		{
			"forwarding mux data MEM-EX lane0 opB bit31 SA0",
			fault.Site{Unit: fault.UnitFwd, Signal: fault.SigMuxData,
				Lane: 0, Operand: 1, Path: fault.PathMEML1, Bit: 31, Stuck: 0},
			fwdRoutine,
		},
		{
			"forwarding mux select lane0 opA bit0 SA1",
			fault.Site{Unit: fault.UnitFwd, Signal: fault.SigMuxSel,
				Lane: 0, Operand: 0, Bit: 0, Stuck: 1},
			fwdRoutine,
		},
		{
			"hazard comparator EXL0->lane0 opA bit0 SA1 (false match)",
			fault.Site{Unit: fault.UnitHDCU, Signal: fault.SigCmp,
				Path: fault.CmpFwd(fault.PathEXL0, 0, 0), Bit: 0, Stuck: 1},
			hdcuRoutine,
		},
		{
			"hazard comparator EXL1->lane1 opB bit2 SA0 (missing forward)",
			fault.Site{Unit: fault.UnitHDCU, Signal: fault.SigCmp,
				Path: fault.CmpFwd(fault.PathEXL1, 1, 1), Bit: 2, Stuck: 0},
			hdcuRoutine,
		},
		{
			"load-use comparator SA0 (missing stall, stale value)",
			fault.Site{Unit: fault.UnitHDCU, Signal: fault.SigCmp,
				Path: fault.CmpLoadUse(0, 0, 0), Bit: 1, Stuck: 0},
			hdcuRoutine,
		},
		{
			"cascade enable stuck at 0 (packets always split)",
			fault.Site{Unit: fault.UnitHDCU, Signal: fault.SigCtl,
				Path: fault.CtlCascade, Stuck: 0},
			hdcuRoutine,
		},
		{
			"split request stuck at 1 (never dual-issues)",
			fault.Site{Unit: fault.UnitHDCU, Signal: fault.SigCtl,
				Path: fault.CtlSplit, Stuck: 1},
			hdcuRoutine,
		},
		{
			"ICU event line 3 stuck at 0 (event lost)",
			fault.Site{Unit: fault.UnitICU, Signal: fault.SigEvLine,
				Path: fault.EvDivZero, Stuck: 0},
			icuRoutine,
		},
		{
			"ICU event line 0 stuck at 1 (spurious events)",
			fault.Site{Unit: fault.UnitICU, Signal: fault.SigEvLine,
				Path: fault.EvOverflowAdd, Stuck: 1},
			icuRoutine,
		},
		{
			"ICU cause bit 1 stuck at 0",
			fault.Site{Unit: fault.UnitICU, Signal: fault.SigCause, Bit: 1, Stuck: 0},
			icuRoutine,
		},
		{
			"ICU distance counter bit 1 stuck at 1",
			fault.Site{Unit: fault.UnitICU, Signal: fault.SigDist, Bit: 1, Stuck: 1},
			icuRoutine,
		},
		{
			"ICU enable mask bit 0 stuck at 0 (interrupt never taken)",
			fault.Site{Unit: fault.UnitICU, Signal: fault.SigEnable, Bit: 0, Stuck: 0},
			icuRoutine,
		},
		{
			"hazstall counter increment stuck at 0",
			fault.Site{Unit: fault.UnitPerf, Signal: fault.SigCntInc,
				Lane: fault.CntHazStall, Stuck: 0},
			hdcuRoutine,
		},
		{
			"issued2 counter bit 3 stuck at 0",
			fault.Site{Unit: fault.UnitPerf, Signal: fault.SigCntBit,
				Lane: fault.CntIssued2, Bit: 3, Stuck: 0},
			hdcuRoutine,
		},
	}

	goldens := map[string]uint32{}
	for _, c := range cases {
		key := c.site.String()[:4] // routine identity via unit prefix is enough
		if _, ok := goldens[key]; !ok {
			sig, ok := runSig(t, c.routine, nil)
			if !ok {
				t.Fatalf("golden run for %s failed", key)
			}
			goldens[key] = sig
		}
	}
	for _, c := range cases {
		key := c.site.String()[:4]
		sig, ok := runSig(t, c.routine, fault.NewSingle(c.site))
		if ok && sig == goldens[key] {
			t.Errorf("%s: fault not detected (sig %08x)", c.name, sig)
		}
	}
}

// TestLoadUseStallStuckAt1TimesOut pins the watchdog path: a permanently
// asserted load-use stall deadlocks issue; the run must time out (counted
// as detected by the campaign driver).
func TestLoadUseStallStuckAt1TimesOut(t *testing.T) {
	site := fault.Site{Unit: fault.UnitHDCU, Signal: fault.SigCtl,
		Path: fault.CtlLoadUse, Stuck: 1}
	_, ok := func() (uint32, bool) {
		c := cfg(1, true, true, [3]int{})
		c.Cores[0].Plane = fault.NewSingle(site)
		res, _, err := RunSingle(c, 0,
			&CoreJob{Routine: hdcuRoutine(0), Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
			200_000)
		if err != nil {
			t.Fatal(err)
		}
		return res.Signature, res.OK
	}()
	if ok {
		t.Error("stuck stall line did not deadlock the pipeline")
	}
}

// TestDualIssueAlgorithmBeatsSingleIssueBaseline reproduces the paper's
// algorithm-selection rationale: the dual-issue-aware forwarding test of
// [19] covers strictly more of the forwarding network than a test written
// against a scalar pipeline model ([18]-style), because only the former
// steers dependencies onto specific lanes and the cascade path.
func TestDualIssueAlgorithmBeatsSingleIssueBaseline(t *testing.T) {
	sites := fault.ForwardingLogic(fault.ListOptions{DataBits: 32, BitStep: 8})
	fault.SortSites(sites)
	sites = fault.Sample(sites, 2)

	coverage := func(mk func(int) *sbst.Routine) float64 {
		run := func(p fault.Plane) (uint32, bool) {
			c := cfg(1, true, true, [3]int{})
			c.Cores[0].Plane = p
			res, _, err := RunSingle(c, 0,
				&CoreJob{Routine: mk(0), Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
				maxRun)
			if err != nil {
				return 0, false
			}
			return res.Signature, res.OK
		}
		return fault.Simulate(sites, run, 0).Coverage()
	}

	dual := coverage(fwdRoutine)
	single := coverage(func(id int) *sbst.Routine {
		return sbst.NewForwardingTestSingleIssue(dataBaseFor(id))
	})
	t.Logf("dual-issue algorithm FC %.2f%%, single-issue baseline FC %.2f%%", dual, single)
	if dual <= single {
		t.Errorf("dual-issue algorithm (%.2f%%) must beat the scalar baseline (%.2f%%)",
			dual, single)
	}
	if dual-single < 5 {
		t.Errorf("advantage %.2f points implausibly small", dual-single)
	}
}

// TestUpperHalfFaultDetectedOnCoreC: bits 32..63 of the forwarding lines
// exist only on core C and are exercised only by the paired-register
// sequences of the 64-bit routine variant.
func TestUpperHalfFaultDetectedOnCoreC(t *testing.T) {
	mk := func(int) *sbst.Routine {
		return sbst.NewForwardingTest(sbst.ForwardingOptions{
			DataBase: dataBaseFor(2), Pairs64: true,
		})
	}
	run := func(plane fault.Plane) (uint32, bool) {
		c := cfg(3, true, true, [3]int{})
		for id := 0; id < soc.NumCores; id++ {
			c.Cores[id].Active = id == 2
		}
		c.Cores[2].Plane = plane
		res, _, err := RunSingle(c, 2,
			&CoreJob{Routine: mk(2), Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
			maxRun)
		if err != nil {
			t.Fatal(err)
		}
		return res.Signature, res.OK
	}
	golden, ok := run(nil)
	if !ok {
		t.Fatal("golden failed")
	}
	site := fault.Site{Unit: fault.UnitFwd, Signal: fault.SigMuxData,
		Lane: 0, Operand: 0, Path: fault.PathEXL0, Bit: 40, Stuck: 1}
	if sig, ok := run(fault.NewSingle(site)); ok && sig == golden {
		t.Error("upper-half EXL0 fault not detected by the 64-bit routine")
	}
	// The same fault on a lane-1 path is structurally unreachable (pair
	// operations issue alone), the source of core C's lower coverage.
	unreachable := fault.Site{Unit: fault.UnitFwd, Signal: fault.SigMuxData,
		Lane: 1, Operand: 0, Path: fault.PathCascade, Bit: 40, Stuck: 1}
	if sig, ok := run(fault.NewSingle(unreachable)); !ok || sig != golden {
		t.Error("cascade upper-half fault unexpectedly detected (model change?)")
	}
}
