package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sbst"
)

// TCMBased is the comparison strategy of Table IV: the routine body is
// assembled for the core's instruction TCM, embedded in flash as data,
// copied word by word into the ITCM at run time and executed from there;
// the routine's pattern table is likewise staged into the data TCM. Like
// the cache-based strategy this isolates execution from the bus, but the
// TCM bytes are permanently reserved for test purposes — the memory
// overhead the paper argues against.
type TCMBased struct {
	CoreID int
}

// Name implements Strategy.
func (TCMBased) Name() string { return "tcm" }

// tcmRoutine returns a copy of r with its data repointed at the core's
// DTCM (blocks address data only through the base register, so the copy is
// safe).
func (s TCMBased) tcmRoutine(r *sbst.Routine) *sbst.Routine {
	cp := *r
	cp.DataBase = mem.DTCMFor(s.CoreID)
	return &cp
}

// bodyProgram assembles the routine in its TCM-resident form (signature
// reset, data base, body, return) at the core's ITCM base.
func (s TCMBased) bodyProgram(r *sbst.Routine) (*asm.Program, error) {
	sub := asm.NewBuilder()
	tr := s.tcmRoutine(r)
	tr.EmitSigReset(sub)
	sub.Nop()
	emitDataBase(sub, tr)
	tr.EmitBody(sub)
	sub.Emit(isa.Inst{Op: isa.OpJR, Rs1: isa.RegLink})
	return sub.Assemble(mem.ITCMFor(s.CoreID))
}

// validate checks the assembled body and pattern table against the TCM
// sizes — the strategy's applicability rule, shared by Emit and
// MemoryOverhead so an unplaceable routine is rejected consistently.
func (s TCMBased) validate(r *sbst.Routine, body *asm.Program) error {
	if body.Size()+12 > mem.TCMSize {
		return fmt.Errorf("core: routine %q (%d bytes) exceeds the %d-byte ITCM",
			r.Name, body.Size(), mem.TCMSize)
	}
	if r.DataSize() > mem.TCMSize {
		return fmt.Errorf("core: routine %q data (%d bytes) exceeds the %d-byte DTCM",
			r.Name, r.DataSize(), mem.TCMSize)
	}
	return nil
}

// Emit implements Strategy.
func (s TCMBased) Emit(b *asm.Builder, r *sbst.Routine) error {
	body, err := s.bodyProgram(r)
	if err != nil {
		return fmt.Errorf("core: assembling TCM body of %q: %w", r.Name, err)
	}
	if err := s.validate(r, body); err != nil {
		return err
	}
	imgLabel := b.AutoLabel("tcmimg")

	// Copy the code image from flash into the ITCM, one cache-line-sized
	// group (four words) per iteration, as a production boot copy loop
	// would to exploit the flash line buffer.
	nWords := (len(body.Words) + 3) &^ 3
	b.LiAddr(1, imgLabel)
	emitLi2(b, 2, body.Base)
	b.Li(3, uint32(nWords/4))
	copyTop := b.AutoLabel("copycode")
	b.Label(copyTop)
	for k := int32(0); k < 4; k++ {
		b.Load(isa.OpLW, 4, 1, k*4)
		b.Store(isa.OpSW, 4, 2, k*4)
	}
	b.I(isa.OpADDI, 1, 1, 16)
	b.I(isa.OpADDI, 2, 2, 16)
	b.I(isa.OpADDI, 3, 3, -1)
	b.Branch(isa.OpBNE, 3, isa.RegZero, copyTop)

	// Stage the pattern table from system SRAM into the DTCM.
	if n := len(r.DataWords); n > 0 {
		emitLi2(b, 1, r.DataBase)
		emitLi2(b, 2, mem.DTCMFor(s.CoreID))
		b.Li(3, uint32(n))
		dataTop := b.AutoLabel("copydata")
		b.Label(dataTop)
		b.Load(isa.OpLW, 4, 1, 0)
		b.Store(isa.OpSW, 4, 2, 0)
		b.I(isa.OpADDI, 1, 1, 4)
		b.I(isa.OpADDI, 2, 2, 4)
		b.I(isa.OpADDI, 3, 3, -1)
		b.Branch(isa.OpBNE, 3, isa.RegZero, dataTop)
	}

	// Call into the ITCM; execution continues after the embedded image
	// when the routine returns.
	emitLi2(b, 2, body.Base)
	b.Emit(isa.Inst{Op: isa.OpJALR, Rd: isa.RegLink, Rs1: 2})
	after := b.AutoLabel("tcmafter")
	b.Jump(isa.OpJ, after)

	// Embedded code image.
	b.Align(16)
	b.Label(imgLabel)
	for _, w := range body.Words {
		b.Word(w)
	}
	b.Label(after)
	return nil
}

// MemoryOverhead implements Strategy: the TCM bytes reserved for the
// routine's code and data (the paper's Table IV "overall memory overhead";
// the flash-side image exists under every strategy and is not counted,
// matching the paper's accounting). A routine whose code or data exceeds
// the TCMs has no overhead figure — it cannot be deployed this way — so the
// same validation Emit applies rejects it here too.
func (s TCMBased) MemoryOverhead(r *sbst.Routine) (int, error) {
	body, err := s.bodyProgram(r)
	if err != nil {
		return 0, err
	}
	if err := s.validate(r, body); err != nil {
		return 0, err
	}
	return body.Size() + r.DataSize(), nil
}

var (
	_ Strategy = Plain{}
	_ Strategy = CacheBased{}
	_ Strategy = TCMBased{}
)
