package core

import (
	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
)

// In-field verdict publication. On the real device the boot flow does not
// inspect registers: after the self-test procedure the routine itself
// compares its computed signature with the expected golden value (obtained
// from a fault-free reference execution) and publishes the verdict where
// the safety supervisor can read it. These helpers emit that tail.

// Verdict values written to the mailbox.
const (
	VerdictNone uint32 = 0 // routine never reached the check (watchdog case)
	VerdictPass uint32 = 1
	VerdictFail uint32 = 2
)

// EmitSignatureCheck appends the verdict tail: compare isa.RegSig with the
// expected golden signature and store VerdictPass/VerdictFail followed by
// the computed signature at mailbox (which should live in the uncached
// SRAM alias so the store is visible immediately and survives cache
// invalidations). Clobbers r26/r27 (the MISR scratch registers).
func EmitSignatureCheck(b *asm.Builder, golden, mailbox uint32) {
	b.Li(isa.RegTmp0, golden)
	fail := b.AutoLabel("sigfail")
	done := b.AutoLabel("sigdone")
	b.Li(isa.RegTmp1, mailbox)
	b.Branch(isa.OpBNE, isa.RegSig, isa.RegTmp0, fail)
	b.I(isa.OpADDI, isa.RegTmp0, isa.RegZero, int32(VerdictPass))
	b.Store(isa.OpSW, isa.RegTmp0, isa.RegTmp1, 0)
	b.Jump(isa.OpJ, done)
	b.Label(fail)
	b.I(isa.OpADDI, isa.RegTmp0, isa.RegZero, int32(VerdictFail))
	b.Store(isa.OpSW, isa.RegTmp0, isa.RegTmp1, 0)
	b.Label(done)
	b.Store(isa.OpSW, isa.RegSig, isa.RegTmp1, 4)
}

// VerdictMailbox returns a conventional per-core mailbox address in the
// uncached SRAM alias (one line per core, just below the scheduler flags).
func VerdictMailbox(coreID int) uint32 {
	return mem.SRAMUncachedBase + mem.SRAMSize - 128 + uint32(coreID)*16
}

// ReadVerdict fetches the published verdict and signature for a core from
// SRAM (host-side inspection of what the routine wrote).
func ReadVerdict(read func(off uint32) uint32, coreID int) (verdict, signature uint32) {
	off := VerdictMailbox(coreID) - mem.SRAMUncachedBase
	return read(off), read(off + 4)
}
