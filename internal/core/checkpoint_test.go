package core

import (
	"reflect"
	"testing"

	"repro/internal/fault"
	"repro/internal/isa"
	"repro/internal/soc"
)

// TestArenaCheckpointRestoreMatchesSteppedSoC is the checkpoint-equivalence
// pin, the restore-side counterpart of TestArenaResetMatchesFreshSoC: across
// cached/uncached and 1-3-core replay environments, every golden checkpoint
// the arena captured is bit-identical to a fresh SoC stepped to the same
// cycle, a Restore of it round-trips through Snapshot unchanged, and a run
// continued from the restore point finishes with the golden signature. This
// also pins that the activation probe (an identity plane installed during
// capture) does not perturb golden state: the stepped reference runs with
// fault.None, not the probe.
func TestArenaCheckpointRestoreMatchesSteppedSoC(t *testing.T) {
	for _, cached := range []bool{false, true} {
		for active := 1; active <= soc.NumCores; active++ {
			replayCfg, job, budget := arenaEnv(t, active, cached)
			a, err := NewArena(replayCfg, 0, job, budget,
				ArenaOptions{CheckpointInterval: 512})
			if err != nil {
				t.Fatal(err)
			}
			if a.Checkpoints() == 0 {
				t.Fatalf("cached=%v active=%d: no checkpoints captured", cached, active)
			}
			s := a.SoC()
			for i := range a.ckpts {
				ck := &a.ckpts[i]
				s.Reset()
				s.SetPlane(0, fault.None)
				s.Start(0, a.entry)
				for s.Cycle() < ck.cycle {
					s.Step()
				}
				stepped := s.Snapshot()
				if !reflect.DeepEqual(stepped, ck.state) {
					t.Fatalf("cached=%v active=%d: checkpoint %d (cycle %d) differs from fresh SoC stepped there",
						cached, active, i, ck.cycle)
				}
				s.Restore(ck.state)
				if restored := s.Snapshot(); !reflect.DeepEqual(restored, ck.state) {
					t.Fatalf("cached=%v active=%d: restore of checkpoint %d (cycle %d) does not round-trip",
						cached, active, i, ck.cycle)
				}
			}

			// A run continued from the last restore point (left in place by
			// the loop above) finishes as the golden run.
			for s.Cycle() < budget && !s.Done() {
				s.Step()
			}
			if !s.Done() {
				t.Fatalf("cached=%v active=%d: restored continuation exhausted the budget", cached, active)
			}
			if sig := s.Cores[0].Core.Reg(isa.RegSig); sig != a.goldenRes.Signature {
				t.Errorf("cached=%v active=%d: restored continuation signature %08x, golden %08x",
					cached, active, sig, a.goldenRes.Signature)
			}

			// The arena itself is unscathed by the manual stepping: it still
			// serves the exact golden verdict.
			if sig, ok := a.Run(fault.None); sig != a.goldenRes.Signature || !ok {
				t.Errorf("cached=%v active=%d: arena golden after restores %08x ok=%v",
					cached, active, sig, ok)
			}
		}
	}
}

// TestArenaCheckpointedTransitionRunsMatchFreshSoC pins the checkpointed
// fast path against rebuild-per-fault semantics: for a sample of transition sites, a
// checkpointed arena run (golden-served, checkpoint-restored or
// fast-forwarded) must reproduce the verdict of a freshly built SoC
// simulating the same fault with the full budget.
func TestArenaCheckpointedTransitionRunsMatchFreshSoC(t *testing.T) {
	replayCfg, job, budget := arenaEnv(t, 2, false)
	sites := fault.TransitionFaults(fault.ListOptions{DataBits: 32, BitStep: 4})
	fault.SortSites(sites)
	sites = fault.Sample(sites, 11)

	a, err := NewArena(replayCfg, 0, job, budget, ArenaOptions{CheckpointInterval: 256})
	if err != nil {
		t.Fatal(err)
	}
	if a.Checkpoints() == 0 {
		t.Fatal("no checkpoints captured")
	}
	for _, site := range sites {
		fresh, _ := freshRun(t, replayCfg, job, budget, fault.PlaneFor(site))
		sig, ok := a.Run(fault.PlaneFor(site))
		if ok != fresh.OK {
			t.Errorf("%v: arena ok=%v, fresh ok=%v", site, ok, fresh.OK)
			continue
		}
		if ok && sig != fresh.Signature {
			t.Errorf("%v: arena signature %08x, fresh %08x", site, sig, fresh.Signature)
		}
	}
	if a.CheckpointRuns()+a.GoldenServed() == 0 {
		t.Error("checkpoint fast path never engaged across the sample")
	}

	// Stuck-at sites always take the full replay: the checkpointed arena
	// must serve them exactly as the plain arena tests pin.
	stuck := fault.Site{Unit: fault.UnitFwd, Signal: fault.SigMuxData,
		Lane: 0, Operand: 0, Path: fault.PathEXL0, Bit: 31, Stuck: 1}
	before := a.CheckpointRuns() + a.GoldenServed()
	fresh, _ := freshRun(t, replayCfg, job, budget, fault.PlaneFor(stuck))
	sig, ok := a.Run(fault.PlaneFor(stuck))
	if ok != fresh.OK || (ok && sig != fresh.Signature) {
		t.Errorf("stuck-at on checkpointed arena (%08x, %v) != fresh (%08x, %v)",
			sig, ok, fresh.Signature, fresh.OK)
	}
	if a.CheckpointRuns()+a.GoldenServed() != before {
		t.Error("stuck-at site took the checkpoint fast path")
	}
}
