package core

import (
	"testing"

	"repro/internal/sbst"
	"repro/internal/soc"
)

// TestGoldenSignaturesPinned freezes the cache-wrapped golden signatures
// of the three module routines on core A. These values are the in-field
// references a production STL would burn into flash; any change to the
// ISA, pipeline, caches, routine generators or wrapper that alters them
// shows up here first.
//
// If a change is *intentional* (a routine or model improvement), update
// the constants below and note the reason in the commit — that is exactly
// the re-qualification step a real STL release would go through.
func TestGoldenSignaturesPinned(t *testing.T) {
	goldens := map[string]uint32{}
	for _, mk := range []func(int) *sbst.Routine{fwdRoutine, hdcuRoutine, icuRoutine} {
		r := mk(0)
		res, _, err := RunSingle(cfg(1, true, true, [3]int{}), 0,
			&CoreJob{Routine: r, Strategy: CacheBased{WriteAllocate: true}, CodeBase: soc.CodeLow},
			maxRun)
		if err != nil {
			t.Fatal(err)
		}
		if !res.OK {
			t.Fatalf("%s: run failed", r.Name)
		}
		goldens[r.Name] = res.Signature
	}
	want := map[string]uint32{
		"forwarding": 0xf7c0da1a,
		"hdcu":       0x1a1f7c60,
		"icu":        0x1111110f,
	}
	for name, sig := range goldens {
		if w, ok := want[name]; !ok || sig != w {
			t.Errorf("%s: golden signature %08x, pinned %08x — if this change is "+
				"intentional, update the pin and re-qualify", name, sig, want[name])
		}
	}
}
