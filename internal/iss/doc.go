// Package iss is a functional instruction-set simulator: it executes the
// ISA one instruction at a time with no pipeline, no caches and no timing.
// Its only purpose is differential testing — the architectural results of
// the cycle-accurate dual-issue pipeline (in any SoC configuration, under
// any bus contention) must match this interpreter exactly, because timing
// must never change semantics. The two implementations share nothing
// beyond the instruction decoder.
//
// Interrupts are modelled architecturally, not microarchitecturally: with
// an archint.Model attached (ISS.Int), planned and synchronous events are
// recognised precisely at instruction boundaries — the zero-imprecision
// ideal the pipeline's delayed recognition converges to. See
// internal/archint for the cross-model contract that makes
// handler-carrying programs comparable despite the differing recognition
// points. With no model attached, CSR, RFE and event recognition remain
// outside the interpreter's subset.
package iss
