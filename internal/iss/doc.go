// Package iss is a functional instruction-set simulator: it executes the
// ISA one instruction at a time with no pipeline, no caches and no timing.
// Its only purpose is differential testing — the architectural results of
// the cycle-accurate dual-issue pipeline (in any SoC configuration, under
// any bus contention) must match this interpreter exactly, because timing
// must never change semantics. The two implementations share nothing
// beyond the instruction decoder.
package iss
