package iss

import (
	"encoding/binary"
	"fmt"

	"repro/internal/archint"
	"repro/internal/fault"
	"repro/internal/isa"
)

// Memory is the flat byte-addressable memory the interpreter runs against.
type Memory interface {
	Read(addr uint32, n int) uint64
	Write(addr uint32, v uint64, n int)
}

// SparseMem is a simple paged memory suitable for mirroring the SoC map.
type SparseMem struct {
	pages map[uint32][]byte // 4 KiB pages
}

// NewSparseMem returns an empty memory; unwritten bytes read as zero.
func NewSparseMem() *SparseMem { return &SparseMem{pages: map[uint32][]byte{}} }

func (m *SparseMem) page(addr uint32, create bool) []byte {
	key := addr >> 12
	p, ok := m.pages[key]
	if !ok && create {
		p = make([]byte, 1<<12)
		m.pages[key] = p
	}
	return p
}

// Read implements Memory (naturally aligned accesses only, like the SoC's
// memory clients, which truncate low address bits).
func (m *SparseMem) Read(addr uint32, n int) uint64 {
	addr &^= uint32(n - 1)
	var buf [8]byte
	for i := 0; i < n; i++ {
		if p := m.page(addr+uint32(i), false); p != nil {
			buf[i] = p[(addr+uint32(i))&0xFFF]
		}
	}
	switch n {
	case 1:
		return uint64(buf[0])
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:4]))
	case 8:
		return binary.LittleEndian.Uint64(buf[:8])
	}
	panic(fmt.Sprintf("iss: bad size %d", n))
}

// Write implements Memory.
func (m *SparseMem) Write(addr uint32, v uint64, n int) {
	addr &^= uint32(n - 1)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	for i := 0; i < n; i++ {
		p := m.page(addr+uint32(i), true)
		p[(addr+uint32(i))&0xFFF] = buf[i]
	}
}

// LoadWords stores a program image.
func (m *SparseMem) LoadWords(base uint32, words []uint32) {
	for i, w := range words {
		m.Write(base+uint32(i)*4, uint64(w), 4)
	}
}

// ISS is the interpreter state.
type ISS struct {
	Regs   [32]uint32
	PC     uint32
	Mem    Memory
	Has64  bool
	Halted bool

	// Int is the architectural interrupt model (internal/archint): plan
	// delivery, pending/mask/cause resolution, vector entry and RFE,
	// recognised precisely at instruction boundaries. Nil (the default)
	// leaves interrupts unmodelled — CSR, RFE and event recognition are
	// then outside the interpreter's subset, exactly as before.
	Int *archint.Model

	instret int64
}

// New builds an interpreter starting at entry.
func New(mem Memory, entry uint32, has64 bool) *ISS {
	return &ISS{Mem: mem, PC: entry, Has64: has64}
}

// Instret returns the retired-instruction count.
func (s *ISS) Instret() int64 { return s.instret }

func (s *ISS) reg(r uint8) uint32 { return s.Regs[r&31] }

func (s *ISS) setReg(r uint8, v uint32) {
	if r&31 != 0 {
		s.Regs[r&31] = v
	}
}

func (s *ISS) regPair(r uint8) uint64 {
	return uint64(s.reg(r)) | uint64(s.reg((r+1)&31))<<32
}

func (s *ISS) setRegPair(r uint8, v uint64) {
	s.setReg(r, uint32(v))
	s.setReg((r+1)&31, uint32(v>>32))
}

// Step executes one instruction, after recognising any interrupt that is
// architecturally due at this boundary (when an interrupt model is
// attached). It returns an error for undecodable words or operations
// outside the interpreter's supported subset (cache operations and — with
// no interrupt model attached — CSR and RFE are microarchitecture-coupled
// and not modelled).
func (s *ISS) Step() error {
	if s.Halted {
		return nil
	}
	if s.Int != nil {
		// Plan events matured by the retire count pend now; an enabled
		// pending cause redirects to the handler before the next
		// instruction executes (precise recognition, EPC = next PC).
		s.Int.Advance(s.instret)
		if s.Int.ShouldTake() {
			s.PC = s.Int.Take(s.PC)
		}
	}
	word := uint32(s.Mem.Read(s.PC, 4))
	inst, err := isa.Decode(word)
	if err != nil {
		return fmt.Errorf("iss: pc %#x: %w", s.PC, err)
	}
	next := s.PC + 4
	a := s.reg(inst.Rs1)
	b := s.reg(inst.Rs2)
	imm := inst.Imm

	if inst.Op.IsPair() && !s.Has64 {
		return fmt.Errorf("iss: pc %#x: pair op on 32-bit core", s.PC)
	}

	switch inst.Op {
	case isa.OpADD:
		s.setReg(inst.Rd, a+b)
	case isa.OpSUB:
		s.setReg(inst.Rd, a-b)
	case isa.OpAND:
		s.setReg(inst.Rd, a&b)
	case isa.OpOR:
		s.setReg(inst.Rd, a|b)
	case isa.OpXOR:
		s.setReg(inst.Rd, a^b)
	case isa.OpNOR:
		s.setReg(inst.Rd, ^(a | b))
	case isa.OpSLT:
		s.setReg(inst.Rd, boolTo32(int32(a) < int32(b)))
	case isa.OpSLTU:
		s.setReg(inst.Rd, boolTo32(a < b))
	case isa.OpSLLV:
		s.setReg(inst.Rd, a<<(b&31))
	case isa.OpSRLV:
		s.setReg(inst.Rd, a>>(b&31))
	case isa.OpSRAV:
		s.setReg(inst.Rd, uint32(int32(a)>>(b&31)))
	case isa.OpMUL:
		s.setReg(inst.Rd, a*b)

	// Trap-raising arithmetic. With an interrupt model attached the
	// overflow/div-zero conditions latch the same synchronous event lines
	// the pipeline raises towards its ICU; without one the events are
	// architecturally invisible (interrupts stay disabled in that regime)
	// and only the computed result is modelled. DIVV saturates like the
	// hardware on MinInt32 / -1 and returns 0 on division by zero.
	case isa.OpADDV:
		sum := a + b
		s.setReg(inst.Rd, sum)
		if s.Int != nil && (a^sum)&(b^sum)&0x8000_0000 != 0 {
			s.Int.Raise(fault.EvOverflowAdd)
		}
	case isa.OpSUBV:
		diff := a - b
		s.setReg(inst.Rd, diff)
		if s.Int != nil && (a^b)&(a^diff)&0x8000_0000 != 0 {
			s.Int.Raise(fault.EvOverflowSub)
		}
	case isa.OpMULV:
		prod := int64(int32(a)) * int64(int32(b))
		s.setReg(inst.Rd, uint32(prod))
		if s.Int != nil && prod != int64(int32(prod)) {
			s.Int.Raise(fault.EvOverflowMul)
		}
	case isa.OpDIVV:
		switch {
		case b == 0:
			s.setReg(inst.Rd, 0)
			if s.Int != nil {
				s.Int.Raise(fault.EvDivZero)
			}
		case a == 0x8000_0000 && b == 0xFFFF_FFFF:
			s.setReg(inst.Rd, a)
		default:
			s.setReg(inst.Rd, uint32(int32(a)/int32(b)))
		}

	case isa.OpSLL:
		s.setReg(inst.Rd, a<<uint32(imm&31))
	case isa.OpSRL:
		s.setReg(inst.Rd, a>>uint32(imm&31))
	case isa.OpSRA:
		s.setReg(inst.Rd, uint32(int32(a)>>uint32(imm&31)))

	case isa.OpADDI:
		s.setReg(inst.Rd, a+uint32(imm))
	case isa.OpANDI:
		s.setReg(inst.Rd, a&uint32(imm))
	case isa.OpORI:
		s.setReg(inst.Rd, a|uint32(imm))
	case isa.OpXORI:
		s.setReg(inst.Rd, a^uint32(imm))
	case isa.OpSLTI:
		s.setReg(inst.Rd, boolTo32(int32(a) < imm))
	case isa.OpLUI:
		s.setReg(inst.Rd, uint32(imm)<<16)

	case isa.OpADDP:
		s.setRegPair(inst.Rd, s.regPair(inst.Rs1)+s.regPair(inst.Rs2))
	case isa.OpSUBP:
		s.setRegPair(inst.Rd, s.regPair(inst.Rs1)-s.regPair(inst.Rs2))
	case isa.OpANDP:
		s.setRegPair(inst.Rd, s.regPair(inst.Rs1)&s.regPair(inst.Rs2))
	case isa.OpORP:
		s.setRegPair(inst.Rd, s.regPair(inst.Rs1)|s.regPair(inst.Rs2))
	case isa.OpXORP:
		s.setRegPair(inst.Rd, s.regPair(inst.Rs1)^s.regPair(inst.Rs2))

	case isa.OpLW:
		s.setReg(inst.Rd, uint32(s.Mem.Read(a+uint32(imm), 4)))
	case isa.OpLB:
		s.setReg(inst.Rd, uint32(int32(int8(uint8(s.Mem.Read(a+uint32(imm), 1))))))
	case isa.OpLBU:
		s.setReg(inst.Rd, uint32(s.Mem.Read(a+uint32(imm), 1))&0xFF)
	case isa.OpSW:
		s.Mem.Write(a+uint32(imm), uint64(b), 4)
	case isa.OpSB:
		s.Mem.Write(a+uint32(imm), uint64(b), 1)
	case isa.OpLWP:
		s.setRegPair(inst.Rd, s.Mem.Read(a+uint32(imm), 8))
	case isa.OpSWP:
		s.Mem.Write(a+uint32(imm), s.regPair(inst.Rs2), 8)

	case isa.OpBEQ:
		if a == b {
			next = s.PC + 4 + uint32(imm)
		}
	case isa.OpBNE:
		if a != b {
			next = s.PC + 4 + uint32(imm)
		}
	case isa.OpBLT:
		if int32(a) < int32(b) {
			next = s.PC + 4 + uint32(imm)
		}
	case isa.OpBGE:
		if int32(a) >= int32(b) {
			next = s.PC + 4 + uint32(imm)
		}

	case isa.OpJ:
		next = s.PC + 4 + uint32(imm)
	case isa.OpJAL:
		s.setReg(isa.RegLink, s.PC+4)
		next = s.PC + 4 + uint32(imm)
	case isa.OpJR:
		next = a
	case isa.OpJALR:
		s.setReg(inst.Rd, s.PC+4)
		next = a

	case isa.OpRFE:
		if s.Int == nil {
			return fmt.Errorf("iss: pc %#x: rfe without an interrupt model", s.PC)
		}
		next = s.Int.RFE()
	case isa.OpCSRR:
		if s.Int == nil {
			return fmt.Errorf("iss: pc %#x: csrr without an interrupt model", s.PC)
		}
		v, ok := s.readIntCSR(imm)
		if !ok {
			return fmt.Errorf("iss: pc %#x: unsupported csr %d", s.PC, imm)
		}
		s.setReg(inst.Rd, v)
	case isa.OpCSRW:
		if s.Int == nil {
			return fmt.Errorf("iss: pc %#x: csrw without an interrupt model", s.PC)
		}
		if !s.writeIntCSR(imm, a) {
			return fmt.Errorf("iss: pc %#x: unsupported csr %d", s.PC, imm)
		}

	case isa.OpNOP:
		// nothing
	case isa.OpHALT:
		s.Halted = true
	default:
		return fmt.Errorf("iss: pc %#x: unsupported op %v", s.PC, inst.Op)
	}
	s.instret++
	s.PC = next
	return nil
}

// readIntCSR reads the interrupt CSR block from the attached model. The
// timing CSRs (cycle, the stall counters) have no meaning here and stay
// unsupported — a generated program reading them is a harness bug, not a
// divergence.
func (s *ISS) readIntCSR(n int32) (uint32, bool) {
	switch n {
	case isa.CsrICause:
		return s.Int.Cause(), true
	case isa.CsrIDist:
		return s.Int.Dist(), true
	case isa.CsrIEPC:
		return s.Int.EPC(), true
	case isa.CsrIEnable:
		return s.Int.Enable(), true
	case isa.CsrIPend:
		return s.Int.PendingMask(), true
	case isa.CsrIVec:
		return s.Int.Vector(), true
	}
	return 0, false
}

// writeIntCSR writes the interrupt CSR block, mirroring the pipeline's CSR
// write semantics (ipend is write-one-to-clear).
func (s *ISS) writeIntCSR(n int32, v uint32) bool {
	switch n {
	case isa.CsrIEnable:
		s.Int.SetEnable(v)
	case isa.CsrIVec:
		s.Int.SetVector(v)
	case isa.CsrIPend:
		s.Int.ClearPending(v)
	default:
		return false
	}
	return true
}

// Run steps until HALT or the instruction budget is exhausted.
func (s *ISS) Run(maxInstrs int64) error {
	for !s.Halted && s.instret < maxInstrs {
		if err := s.Step(); err != nil {
			return err
		}
	}
	if !s.Halted {
		return fmt.Errorf("iss: did not halt within %d instructions", maxInstrs)
	}
	return nil
}

func boolTo32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
