package iss_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/conform"
	"repro/internal/isa"
	"repro/internal/iss"
	"repro/internal/mem"
)

// Differential test: randomly generated programs must produce identical
// architectural results on the functional interpreter, the pipelined core
// in every SoC configuration, and fault-free arena-engine runs. Anything
// else means timing leaked into semantics — the class of bug that would
// silently invalidate every experiment in this repository. The generator
// and the cross-checking harness live in internal/progen and
// internal/conform; this test keeps the historical seed sweep running as
// part of the interpreter's own suite.

func TestDifferentialRandomPrograms(t *testing.T) {
	for _, sc := range conform.Scenarios() {
		if sc.Name == "campaign" {
			continue // engine equivalence is covered by experiments' tests
		}
		for seed := int64(1); seed <= 12; seed++ {
			if m := sc.Run(seed); m != nil {
				t.Errorf("%v", m)
			}
		}
	}
}

const (
	testScratchBase = mem.SRAMBase + 0x8000
	testBaseReg     = 16
)

// runProg executes a hand-built program on the interpreter.
func runProg(t *testing.T, b *asm.Builder, has64 bool) *iss.ISS {
	t.Helper()
	prog, err := b.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	m := iss.NewSparseMem()
	m.LoadWords(prog.Base, prog.Words)
	s := iss.New(m, prog.Base, has64)
	if err := s.Run(10_000); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestISSBasics(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(1, 7)
	b.Li(2, 5)
	b.R(isa.OpMUL, 3, 1, 2)
	b.Li(testBaseReg, testScratchBase)
	b.Store(isa.OpSW, 3, testBaseReg, 0)
	b.Load(isa.OpLW, 4, testBaseReg, 0)
	b.Halt()
	s := runProg(t, b, false)
	if s.Regs[3] != 35 || s.Regs[4] != 35 {
		t.Errorf("r3=%d r4=%d", s.Regs[3], s.Regs[4])
	}
}

// TestISSTrapOps pins the interpreter's model of the trap-raising
// arithmetic against the pipeline's documented semantics: results are
// architectural, events are not (interrupts stay disabled).
func TestISSTrapOps(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(1, 0x7FFF_FFFF)
	b.Li(2, 1)
	b.R(isa.OpADDV, 3, 1, 2) // overflows; result wraps
	b.R(isa.OpSUBV, 4, 1, 2)
	b.Li(5, 0x0001_0000)
	b.R(isa.OpMULV, 6, 5, 5) // product does not fit; low word kept
	b.R(isa.OpDIVV, 7, 1, 2)
	b.R(isa.OpDIVV, 8, 1, 0) // divide by zero -> 0
	b.Li(9, 0x8000_0000)
	b.Li(10, 0xFFFF_FFFF)
	b.R(isa.OpDIVV, 11, 9, 10) // MinInt32 / -1 saturates like the HW
	b.Halt()
	s := runProg(t, b, false)
	want := map[uint8]uint32{
		3:  0x8000_0000,
		4:  0x7FFF_FFFE,
		6:  0,
		7:  0x7FFF_FFFF,
		8:  0,
		11: 0x8000_0000,
	}
	for r, w := range want {
		if s.Regs[r] != w {
			t.Errorf("r%d = %08x, want %08x", r, s.Regs[r], w)
		}
	}
}

func TestISSRejectsUnsupported(t *testing.T) {
	m := iss.NewSparseMem()
	m.LoadWords(0, []uint32{isa.MustEncode(isa.Inst{Op: isa.OpCSRR, Rd: 1})})
	s := iss.New(m, 0, false)
	if err := s.Step(); err == nil {
		t.Error("CSR op accepted")
	}
	m2 := iss.NewSparseMem()
	m2.LoadWords(0, []uint32{isa.MustEncode(isa.Inst{Op: isa.OpADDP, Rd: 2, Rs1: 4, Rs2: 6})})
	s2 := iss.New(m2, 0, false)
	if err := s2.Step(); err == nil {
		t.Error("pair op accepted on 32-bit core")
	}
}

func TestSparseMemRoundTrip(t *testing.T) {
	m := iss.NewSparseMem()
	m.Write(0x2000_0FFF, 0xAB, 1) // page-boundary byte
	if got := m.Read(0x2000_0FFF, 1); got != 0xAB {
		t.Errorf("byte = %#x", got)
	}
	m.Write(0x3000_0000, 0x1122334455667788, 8)
	if got := m.Read(0x3000_0000, 8); got != 0x1122334455667788 {
		t.Errorf("dword = %#x", got)
	}
	if got := m.Read(0x3000_0004, 4); got != 0x11223344 {
		t.Errorf("high word = %#x", got)
	}
	if m.Read(0x4000_0000, 4) != 0 {
		t.Error("unwritten memory not zero")
	}
	// Misaligned addresses truncate like the SoC clients.
	m.Write(0x103, 0xFF, 4)
	if m.Read(0x100, 4) != 0xFF {
		t.Error("alignment truncation mismatch")
	}
}
