package iss

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
)

// Differential test: randomly generated programs must produce identical
// architectural results on
//
//	(1) this functional interpreter,
//	(2) the pipelined core running alone with caches, and
//	(3) the pipelined core running uncached while two other cores hammer
//	    the bus.
//
// Anything else means timing leaked into semantics — the class of bug that
// would silently invalidate every experiment in this repository.

const (
	diffCodeBase    = soc.CodeLow
	diffScratchBase = mem.SRAMBase + 0x8000
	diffScratchSize = 256 // bytes of scratch the generator addresses
	diffBaseReg     = 16  // holds diffScratchBase
	diffLoopReg     = 17
	diffMaxRegs     = 15 // general registers r1..r15
)

// genProgram emits a random, always-terminating program.
func genProgram(rng *rand.Rand, has64 bool) *asm.Builder {
	b := asm.NewBuilder()
	b.Li(diffBaseReg, diffScratchBase)
	// Seed the general registers.
	for r := uint8(1); r <= diffMaxRegs; r++ {
		b.Li(r, rng.Uint32())
	}

	aluOps := []isa.Op{
		isa.OpADD, isa.OpSUB, isa.OpAND, isa.OpOR, isa.OpXOR, isa.OpNOR,
		isa.OpSLT, isa.OpSLTU, isa.OpSLLV, isa.OpSRLV, isa.OpSRAV, isa.OpMUL,
	}
	immOps := []isa.Op{isa.OpADDI, isa.OpSLTI}
	logImmOps := []isa.Op{isa.OpANDI, isa.OpORI, isa.OpXORI}
	shiftOps := []isa.Op{isa.OpSLL, isa.OpSRL, isa.OpSRA}
	branchOps := []isa.Op{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE}

	reg := func() uint8 { return uint8(1 + rng.Intn(diffMaxRegs)) }
	evenReg := func() uint8 { return uint8(2 + 2*rng.Intn(6)) } // r2..r12
	off := func(align int) int32 {
		return int32(rng.Intn(diffScratchSize/align)) * int32(align)
	}

	emitStraight := func(n int) {
		for i := 0; i < n; i++ {
			switch k := rng.Intn(10); {
			case k < 4:
				b.R(aluOps[rng.Intn(len(aluOps))], reg(), reg(), reg())
			case k < 5:
				b.I(immOps[rng.Intn(len(immOps))], reg(), reg(), int32(rng.Intn(1<<15))-1<<14)
			case k < 6:
				b.I(logImmOps[rng.Intn(len(logImmOps))], reg(), reg(), int32(rng.Intn(1<<16)))
			case k < 7:
				b.Shift(shiftOps[rng.Intn(len(shiftOps))], reg(), reg(), int32(rng.Intn(32)))
			case k < 8:
				if rng.Intn(2) == 0 {
					b.Store(isa.OpSW, reg(), diffBaseReg, off(4))
				} else {
					b.Load(isa.OpLW, reg(), diffBaseReg, off(4))
				}
			case k < 9:
				if rng.Intn(2) == 0 {
					b.Store(isa.OpSB, reg(), diffBaseReg, off(1))
				} else {
					if rng.Intn(2) == 0 {
						b.Load(isa.OpLB, reg(), diffBaseReg, off(1))
					} else {
						b.Load(isa.OpLBU, reg(), diffBaseReg, off(1))
					}
				}
			default:
				if has64 {
					switch rng.Intn(3) {
					case 0:
						b.R([]isa.Op{isa.OpADDP, isa.OpSUBP, isa.OpXORP, isa.OpANDP, isa.OpORP}[rng.Intn(5)],
							evenReg(), evenReg(), evenReg())
					case 1:
						b.Store(isa.OpSWP, evenReg(), diffBaseReg, off(8))
					default:
						b.Load(isa.OpLWP, evenReg(), diffBaseReg, off(8))
					}
				} else {
					b.R(aluOps[rng.Intn(len(aluOps))], reg(), reg(), reg())
				}
			}
		}
	}

	for block := 0; block < 6+rng.Intn(6); block++ {
		switch rng.Intn(4) {
		case 0: // straight-line chunk
			emitStraight(4 + rng.Intn(12))
		case 1: // bounded counted loop
			iters := int32(2 + rng.Intn(5))
			b.I(isa.OpADDI, diffLoopReg, isa.RegZero, iters)
			top := b.AutoLabel("loop")
			b.Label(top)
			emitStraight(2 + rng.Intn(6))
			b.I(isa.OpADDI, diffLoopReg, diffLoopReg, -1)
			b.Branch(isa.OpBNE, diffLoopReg, isa.RegZero, top)
		case 2: // forward branch over a few instructions
			skip := b.AutoLabel("skip")
			b.Branch(branchOps[rng.Intn(len(branchOps))], reg(), reg(), skip)
			emitStraight(1 + rng.Intn(4))
			b.Label(skip)
		default: // call/return
			ret := b.AutoLabel("sub")
			after := b.AutoLabel("after")
			b.Jump(isa.OpJAL, ret)
			b.Jump(isa.OpJ, after)
			b.Label(ret)
			emitStraight(2 + rng.Intn(4))
			b.Emit(isa.Inst{Op: isa.OpJR, Rs1: isa.RegLink})
			b.Label(after)
		}
	}
	// Spill everything so memory comparison also covers register state.
	for r := uint8(1); r <= diffMaxRegs; r++ {
		b.Store(isa.OpSW, r, diffBaseReg, int32(diffScratchSize)+int32(r)*4)
	}
	b.Halt()
	return b
}

// runISS executes the program on the interpreter and returns final regs and
// the scratch+spill memory window.
func runISS(t *testing.T, prog *asm.Program, has64 bool) ([32]uint32, []uint32) {
	t.Helper()
	m := NewSparseMem()
	m.LoadWords(prog.Base, prog.Words)
	s := New(m, prog.Base, has64)
	if err := s.Run(200_000); err != nil {
		t.Fatal(err)
	}
	return s.Regs, readScratch(func(addr uint32) uint32 {
		return uint32(m.Read(addr, 4))
	})
}

func readScratch(read func(addr uint32) uint32) []uint32 {
	n := (diffScratchSize + 4*(diffMaxRegs+1)) / 4
	out := make([]uint32, n)
	for i := range out {
		out[i] = read(diffScratchBase + uint32(i)*4)
	}
	return out
}

// runSoC executes the program on core coreID of a SoC, optionally with two
// contending cores running the generic STL.
func runSoC(t *testing.T, prog *asm.Program, coreID int, cached, contend bool) ([32]uint32, []uint32) {
	t.Helper()
	cfg := soc.DefaultConfig()
	for id := 0; id < soc.NumCores; id++ {
		cfg.Cores[id].Active = id == coreID || contend
		cfg.Cores[id].CachesOn = cached
		cfg.Cores[id].WriteAlloc = true
	}
	s := soc.New(cfg)
	if err := s.Load(prog); err != nil {
		t.Fatal(err)
	}
	s.Start(coreID, prog.Base)
	if contend {
		for id := 0; id < soc.NumCores; id++ {
			if id == coreID {
				continue
			}
			b := asm.NewBuilder()
			for _, r := range sbst.StandardSTL(mem.SRAMBase + 0x2000*uint32(id+1)) {
				r.EmitPlain(b)
			}
			b.Halt()
			p, err := b.Assemble(soc.CodeMid + uint32(id)*0x8000)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Load(p); err != nil {
				t.Fatal(err)
			}
			// Initialise their data tables.
			for _, r := range sbst.StandardSTL(mem.SRAMBase + 0x2000*uint32(id+1)) {
				off := r.DataBase - mem.SRAMBase
				for i, w := range r.DataWords {
					mem.WriteWord(s.SRAM, off+uint32(i)*4, w)
				}
			}
			s.Start(id, p.Base)
		}
	}
	res := s.Run(20_000_000)
	u := s.Cores[coreID]
	if res.TimedOut || u.Core.Wedged() {
		t.Fatalf("soc run failed: timeout=%v wedged=%v", res.TimedOut, u.Core.Wedged())
	}
	var regs [32]uint32
	for r := uint8(0); r < 32; r++ {
		regs[r] = u.Core.Reg(r)
	}
	// With caches on, dirty lines may still be cache-resident (write-back
	// policy), so the SRAM view is only authoritative for uncached runs;
	// cached callers compare registers (which include the spilled values).
	scratch := readScratch(func(addr uint32) uint32 {
		return mem.ReadWord(s.SRAM, addr-mem.SRAMBase)
	})
	return regs, scratch
}

func compareRegs(t *testing.T, seed int64, name string, got, want [32]uint32) {
	t.Helper()
	for r := 1; r <= diffMaxRegs; r++ {
		if got[r] != want[r] {
			t.Errorf("seed %d %s: r%d = %08x, want %08x", seed, name, r, got[r], want[r])
		}
	}
}

func TestDifferentialRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 12; seed++ {
		rng := rand.New(rand.NewSource(seed))
		has64 := seed%3 == 0
		coreID := 0
		if has64 {
			coreID = 2 // pair ops only run on core C
		}
		prog, err := genProgram(rng, has64).Assemble(diffCodeBase)
		if err != nil {
			t.Fatal(err)
		}
		refRegs, refScratch := runISS(t, prog, has64)

		cachedRegs, _ := runSoC(t, prog, coreID, true, false)
		compareRegs(t, seed, "cached", cachedRegs, refRegs)

		plainRegs, plainScratch := runSoC(t, prog, coreID, false, false)
		compareRegs(t, seed, "plain", plainRegs, refRegs)
		for i := range refScratch {
			if plainScratch[i] != refScratch[i] {
				t.Errorf("seed %d plain: scratch[%d] = %08x, want %08x",
					seed, i, plainScratch[i], refScratch[i])
			}
		}

		contendRegs, contendScratch := runSoC(t, prog, coreID, false, true)
		compareRegs(t, seed, "contended", contendRegs, refRegs)
		for i := range refScratch {
			if contendScratch[i] != refScratch[i] {
				t.Errorf("seed %d contended: scratch[%d] = %08x, want %08x",
					seed, i, contendScratch[i], refScratch[i])
			}
		}
	}
}

func TestISSBasics(t *testing.T) {
	b := asm.NewBuilder()
	b.Li(1, 7)
	b.Li(2, 5)
	b.R(isa.OpMUL, 3, 1, 2)
	b.Li(diffBaseReg, diffScratchBase)
	b.Store(isa.OpSW, 3, diffBaseReg, 0)
	b.Load(isa.OpLW, 4, diffBaseReg, 0)
	b.Halt()
	prog, err := b.Assemble(0x1000)
	if err != nil {
		t.Fatal(err)
	}
	regs, _ := runISS(t, prog, false)
	if regs[3] != 35 || regs[4] != 35 {
		t.Errorf("r3=%d r4=%d", regs[3], regs[4])
	}
}

func TestISSRejectsUnsupported(t *testing.T) {
	m := NewSparseMem()
	m.LoadWords(0, []uint32{isa.MustEncode(isa.Inst{Op: isa.OpCSRR, Rd: 1})})
	s := New(m, 0, false)
	if err := s.Step(); err == nil {
		t.Error("CSR op accepted")
	}
	m2 := NewSparseMem()
	m2.LoadWords(0, []uint32{isa.MustEncode(isa.Inst{Op: isa.OpADDP, Rd: 2, Rs1: 4, Rs2: 6})})
	s2 := New(m2, 0, false)
	if err := s2.Step(); err == nil {
		t.Error("pair op accepted on 32-bit core")
	}
}

func TestSparseMemRoundTrip(t *testing.T) {
	m := NewSparseMem()
	m.Write(0x2000_0FFF, 0xAB, 1) // page-boundary byte
	if got := m.Read(0x2000_0FFF, 1); got != 0xAB {
		t.Errorf("byte = %#x", got)
	}
	m.Write(0x3000_0000, 0x1122334455667788, 8)
	if got := m.Read(0x3000_0000, 8); got != 0x1122334455667788 {
		t.Errorf("dword = %#x", got)
	}
	if got := m.Read(0x3000_0004, 4); got != 0x11223344 {
		t.Errorf("high word = %#x", got)
	}
	if m.Read(0x4000_0000, 4) != 0 {
		t.Error("unwritten memory not zero")
	}
	// Misaligned addresses truncate like the SoC clients.
	m.Write(0x103, 0xFF, 4)
	if m.Read(0x100, 4) != 0xFF {
		t.Error("alignment truncation mismatch")
	}
}
