package cache

import (
	"repro/internal/bus"
	"repro/internal/coverage"
	"repro/internal/mem"
)

// Client is a per-cycle memory agent the CPU pipeline drives. Protocol:
// call Start then Tick in the same simulator cycle; if Tick reports done the
// access took one cycle (a hit / TCM access). Otherwise the pipeline stalls
// and calls Tick once per subsequent cycle until done. Accesses are
// naturally aligned to their size by the client (hardware truncates low
// address bits), which keeps faulty address computations from wedging the
// model.
type Client interface {
	Busy() bool
	Start(addr uint32, write bool, wdata uint64, size int)
	Tick() (done bool, rdata uint64)
	// TryAbort attempts to retract the in-flight access (used by the fetch
	// unit on control-flow redirects). It returns true when the access is
	// gone — either it never reached the bus or its request was still
	// queued and could be cancelled. It returns false when the transfer is
	// already in service; the caller must then keep Ticking until done and
	// discard the result.
	TryAbort() bool
	// Reset unconditionally drops all in-flight state and internal buffers,
	// returning the client to power-on idle. The caller is responsible for
	// resetting the bus underneath (Reset never touches bus requests).
	Reset()
}

func alignTo(addr uint32, size int) uint32 { return addr &^ uint32(size-1) }

// ctrlState is the cache controller's refill state machine.
type ctrlState uint8

const (
	ctrlIdle ctrlState = iota
	ctrlHitDone
	ctrlWB     // victim write-back in flight
	ctrlRefill // line read in flight
	ctrlWT     // no-write-allocate write-through in flight
)

// Ctrl gives a Cache its timing behaviour against the shared bus.
type Ctrl struct {
	cache *Cache
	port  *bus.Port

	state ctrlState
	addr  uint32
	write bool
	wdata uint64
	size  int
	rdata uint64
}

// NewCtrl wraps cache with a controller mastering the given bus port.
func NewCtrl(c *Cache, port *bus.Port) *Ctrl { return &Ctrl{cache: c, port: port} }

// Cache exposes the underlying tag/data array (for CINV and statistics).
func (c *Ctrl) Cache() *Cache { return c.cache }

// Busy reports whether an access is in flight.
func (c *Ctrl) Busy() bool { return c.state != ctrlIdle }

// Start begins an access. The controller must be idle.
func (c *Ctrl) Start(addr uint32, write bool, wdata uint64, size int) {
	if c.state != ctrlIdle {
		panic("cache: Start on busy controller")
	}
	addr = alignTo(addr, size)
	c.addr, c.write, c.wdata, c.size = addr, write, wdata, size

	if write {
		if c.cache.Write(addr, wdata, size) {
			c.state = ctrlHitDone
			return
		}
		if !c.cache.Config().WriteAlloc {
			// Write around: send the store to memory, do not allocate.
			c.cache.cover(coverage.CacheWriteAround)
			var buf [8]byte
			writeLE(buf[:], wdata, size)
			c.port.StartWrite(addr, buf[:size])
			c.state = ctrlWT
			return
		}
	} else {
		if v, hit := c.cache.Read(addr, size); hit {
			c.rdata = v
			c.state = ctrlHitDone
			return
		}
	}
	c.beginRefill()
}

func (c *Ctrl) beginRefill() {
	lineAddr := mem.LineAddr(c.addr)
	_, wbAddr, wbData, needWB := c.cache.Victim(lineAddr)
	if needWB {
		c.port.StartWrite(wbAddr, wbData)
		c.state = ctrlWB
		return
	}
	c.port.StartRead(lineAddr, c.cache.Config().LineBytes)
	c.state = ctrlRefill
}

// Tick advances the access one cycle.
func (c *Ctrl) Tick() (bool, uint64) {
	switch c.state {
	case ctrlIdle:
		panic("cache: Tick while idle")
	case ctrlHitDone:
		c.state = ctrlIdle
		return true, c.rdata
	case ctrlWB:
		if !c.port.Done() {
			return false, 0
		}
		c.port.Take()
		lineAddr := mem.LineAddr(c.addr)
		c.port.StartRead(lineAddr, c.cache.Config().LineBytes)
		c.state = ctrlRefill
		return false, 0
	case ctrlRefill:
		if !c.port.Done() {
			return false, 0
		}
		data := c.port.Take()
		lineAddr := mem.LineAddr(c.addr)
		way, _, _, _ := c.cache.Victim(lineAddr)
		c.cache.Fill(lineAddr, way, data)
		if c.write {
			c.cache.writeAt(c.addr, c.wdata, c.size)
			c.state = ctrlIdle
			return true, 0
		}
		v := c.cache.readAt(c.addr, c.size)
		c.state = ctrlIdle
		return true, v
	case ctrlWT:
		if !c.port.Done() {
			return false, 0
		}
		c.port.Take()
		c.state = ctrlIdle
		return true, 0
	}
	return false, 0
}

// TryAbort implements Client. A hit that has not been consumed is dropped;
// a queued bus request is cancelled; an in-service transfer (and the
// write-back leg of an eviction, whose read must still follow to keep the
// cache consistent) cannot be retracted.
func (c *Ctrl) TryAbort() bool {
	switch c.state {
	case ctrlIdle:
		return true
	case ctrlHitDone:
		c.state = ctrlIdle
		return true
	case ctrlRefill, ctrlWT:
		if c.port.InService() || c.port.Done() {
			return false
		}
		c.port.Cancel()
		c.state = ctrlIdle
		return true
	case ctrlWB:
		// The victim was already chosen; cancelling mid-sequence would
		// need extra bookkeeping for no modelling benefit.
		return false
	}
	return false
}

// Reset implements Client: the state machine returns to idle. Bus requests
// are dropped by the bus's own reset.
func (c *Ctrl) Reset() { c.state = ctrlIdle }

// Bypass is an uncached bus client. With LineBuffer enabled it keeps the
// last line read and serves reads within it in a single cycle — this models
// the line-wide flash prefetch buffer of the fetch unit, which is what lets
// instruction pairs inside one flash line still issue back-to-back when the
// caches are disabled.
type Bypass struct {
	port       *bus.Port
	lineBuffer bool

	bufValid bool
	bufAddr  uint32
	buf      [mem.LineBytes]byte

	state ctrlState // reuses ctrlIdle / ctrlRefill / ctrlWT / ctrlHitDone
	addr  uint32
	size  int
	write bool

	// cov collects barrier flag-line coverage when attached (the uncached
	// data-side alias client is where the scheduler's completion protocol
	// becomes observable); nil is the zero-cost disabled mode.
	cov *coverage.Map
}

// NewBypass builds an uncached client on port. lineBuffer enables the
// single-line prefetch buffer (used for instruction fetch).
func NewBypass(port *bus.Port, lineBuffer bool) *Bypass {
	return &Bypass{port: port, lineBuffer: lineBuffer}
}

// InvalidateBuffer drops the prefetch buffer (called on control-flow
// redirects so stale lines are not reused; harmless to call when disabled).
func (b *Bypass) InvalidateBuffer() { b.bufValid = false }

// SetCoverage attaches a coverage map recording barrier flag-line accesses
// (nil detaches). The attachment survives Reset.
func (b *Bypass) SetCoverage(m *coverage.Map) { b.cov = m }

// inFlagLine reports whether addr falls in the reserved barrier flag line.
func inFlagLine(addr uint32) bool {
	return addr >= mem.BarrierFlagBase && addr < mem.SRAMUncachedBase+mem.SRAMSize
}

// coverFlagRead classifies a completed flag-line read: a zero flag is a
// spinning poll (the peer is still testing), non-zero is the release.
func (b *Bypass) coverFlagRead(v uint64) {
	if b.cov == nil || b.write || !inFlagLine(b.addr) {
		return
	}
	if v == 0 {
		b.cov.Inc(coverage.FeatBarrierSpin)
	} else {
		b.cov.Inc(coverage.FeatBarrierRelease)
	}
}

// Busy reports whether an access is in flight.
func (b *Bypass) Busy() bool { return b.state != ctrlIdle }

// Start begins an access.
func (b *Bypass) Start(addr uint32, write bool, wdata uint64, size int) {
	if b.state != ctrlIdle {
		panic("cache: Start on busy bypass")
	}
	addr = alignTo(addr, size)
	b.addr, b.size, b.write = addr, size, write
	if write {
		if b.bufValid && mem.LineAddr(addr) == b.bufAddr {
			b.bufValid = false
		}
		if b.cov != nil && inFlagLine(addr) {
			b.cov.Inc(coverage.FeatBarrierPublish)
		}
		var buf [8]byte
		writeLE(buf[:], wdata, size)
		b.port.StartWrite(addr, buf[:size])
		b.state = ctrlWT
		return
	}
	if b.lineBuffer {
		if b.bufValid && mem.LineAddr(addr) == b.bufAddr {
			b.state = ctrlHitDone
			return
		}
		b.port.StartRead(mem.LineAddr(addr), mem.LineBytes)
		b.state = ctrlRefill
		return
	}
	b.port.StartRead(addr, size)
	b.state = ctrlRefill
}

// Tick advances the access one cycle.
func (b *Bypass) Tick() (bool, uint64) {
	switch b.state {
	case ctrlIdle:
		panic("cache: Tick while idle")
	case ctrlHitDone:
		b.state = ctrlIdle
		off := b.addr - b.bufAddr
		return true, readLE(b.buf[off:], b.size)
	case ctrlRefill:
		if !b.port.Done() {
			return false, 0
		}
		data := b.port.Take()
		b.state = ctrlIdle
		if b.lineBuffer {
			b.bufAddr = mem.LineAddr(b.addr)
			copy(b.buf[:], data)
			b.bufValid = true
			off := b.addr - b.bufAddr
			return true, readLE(b.buf[off:], b.size)
		}
		v := readLE(data, b.size)
		b.coverFlagRead(v)
		return true, v
	case ctrlWT:
		if !b.port.Done() {
			return false, 0
		}
		b.port.Take()
		b.state = ctrlIdle
		return true, 0
	}
	return false, 0
}

// TryAbort implements Client.
func (b *Bypass) TryAbort() bool {
	switch b.state {
	case ctrlIdle:
		return true
	case ctrlHitDone:
		b.state = ctrlIdle
		return true
	case ctrlRefill, ctrlWT:
		if b.port.InService() || b.port.Done() {
			return false
		}
		b.port.Cancel()
		b.state = ctrlIdle
		return true
	}
	return false
}

// Reset implements Client: drops the prefetch buffer and in-flight state.
func (b *Bypass) Reset() {
	b.state = ctrlIdle
	b.bufValid = false
}

// TCMClient serves a core-private tightly-coupled memory in a single cycle
// without touching the bus.
type TCMClient struct {
	dev  mem.Device
	base uint32

	pending bool
	addr    uint32
	write   bool
	wdata   uint64
	size    int

	// cov/readFeat/writeFeat record TCM traffic coverage when attached —
	// the copy-loop states of the TCM-based wrapping strategy.
	cov       *coverage.Map
	readFeat  coverage.Feature
	writeFeat coverage.Feature
}

// NewTCMClient builds a client for dev mapped at base.
func NewTCMClient(dev mem.Device, base uint32) *TCMClient {
	return &TCMClient{dev: dev, base: base}
}

// SetCoverage attaches a coverage map with the features to record for reads
// and writes through this client (nil detaches); survives Reset.
func (t *TCMClient) SetCoverage(m *coverage.Map, readFeat, writeFeat coverage.Feature) {
	t.cov = m
	t.readFeat = readFeat
	t.writeFeat = writeFeat
}

// Busy reports whether an access is in flight (never across cycles).
func (t *TCMClient) Busy() bool { return t.pending }

// Start begins an access; it completes on the same cycle's Tick.
func (t *TCMClient) Start(addr uint32, write bool, wdata uint64, size int) {
	if t.pending {
		panic("cache: Start on busy TCM client")
	}
	t.addr = alignTo(addr, size) - t.base
	t.write, t.wdata, t.size = write, wdata, size
	t.pending = true
	if t.cov != nil {
		if write {
			t.cov.Inc(t.writeFeat)
		} else {
			t.cov.Inc(t.readFeat)
		}
	}
}

// Tick completes the access.
func (t *TCMClient) Tick() (bool, uint64) {
	if !t.pending {
		panic("cache: Tick while idle")
	}
	t.pending = false
	if t.addr+uint32(t.size) > t.dev.Size() {
		return true, 0xFFFFFFFFFFFFFFFF // off the end: open bus
	}
	if t.write {
		var buf [8]byte
		writeLE(buf[:], t.wdata, t.size)
		t.dev.Write(t.addr, buf[:t.size])
		return true, 0
	}
	buf := make([]byte, t.size)
	t.dev.Read(t.addr, buf)
	return true, readLE(buf, t.size)
}

// TryAbort implements Client: a TCM access never reaches the bus.
func (t *TCMClient) TryAbort() bool {
	t.pending = false
	return true
}

// Reset implements Client.
func (t *TCMClient) Reset() { t.pending = false }

// ClientState is an opaque snapshot of one concrete client's in-flight
// state (Ctrl, Bypass or TCMClient — the superset of their dynamic fields),
// captured by Save and reinstated by Load. Fields that are dead in the
// captured state (an idle state machine's access parameters, an invalid
// prefetch buffer's contents) are canonicalised to zero, so snapshots of
// behaviourally identical clients compare equal regardless of what earlier
// runs left behind.
type ClientState struct {
	state    ctrlState
	addr     uint32
	write    bool
	wdata    uint64
	size     int
	rdata    uint64
	bufValid bool
	bufAddr  uint32
	buf      [mem.LineBytes]byte
	pending  bool
}

// Stateful is implemented by clients whose in-flight state can be
// checkpointed. The bus request a busy client may have outstanding lives in
// the bus's request slot and is covered by bus.Bus.Snapshot.
type Stateful interface {
	Save() ClientState
	Load(ClientState)
}

// Save implements Stateful.
func (c *Ctrl) Save() ClientState {
	st := ClientState{state: c.state}
	if c.state != ctrlIdle {
		st.addr, st.write, st.wdata, st.size, st.rdata = c.addr, c.write, c.wdata, c.size, c.rdata
	}
	return st
}

// Load implements Stateful.
func (c *Ctrl) Load(st ClientState) {
	c.state = st.state
	c.addr, c.write, c.wdata, c.size, c.rdata = st.addr, st.write, st.wdata, st.size, st.rdata
}

// Save implements Stateful.
func (b *Bypass) Save() ClientState {
	st := ClientState{state: b.state, bufValid: b.bufValid}
	if b.state != ctrlIdle {
		st.addr, st.size, st.write = b.addr, b.size, b.write
	}
	if b.bufValid {
		st.bufAddr, st.buf = b.bufAddr, b.buf
	}
	return st
}

// Load implements Stateful.
func (b *Bypass) Load(st ClientState) {
	b.state = st.state
	b.addr, b.size, b.write = st.addr, st.size, st.write
	b.bufValid, b.bufAddr, b.buf = st.bufValid, st.bufAddr, st.buf
}

// Save implements Stateful. A TCM access never spans cycles, but the
// Start/Tick pair may straddle a snapshot boundary, so pending state is
// captured too.
func (t *TCMClient) Save() ClientState {
	st := ClientState{pending: t.pending}
	if t.pending {
		st.addr, st.write, st.wdata, st.size = t.addr, t.write, t.wdata, t.size
	}
	return st
}

// Load implements Stateful.
func (t *TCMClient) Load(st ClientState) {
	t.pending = st.pending
	t.addr, t.write, t.wdata, t.size = st.addr, st.write, st.wdata, st.size
}

// Interface conformance checks.
var (
	_ Client = (*Ctrl)(nil)
	_ Client = (*Bypass)(nil)
	_ Client = (*TCMClient)(nil)

	_ Stateful = (*Ctrl)(nil)
	_ Stateful = (*Bypass)(nil)
	_ Stateful = (*TCMClient)(nil)
)
