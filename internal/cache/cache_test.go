package cache

import (
	"math/rand"
	"testing"

	"repro/internal/bus"
	"repro/internal/mem"
)

func smallCfg(writeAlloc bool) Config {
	return Config{SizeBytes: 256, Ways: 2, LineBytes: 16, WriteAlloc: writeAlloc}
}

func TestConfigValidate(t *testing.T) {
	if err := ICacheConfig().Validate(); err != nil {
		t.Error(err)
	}
	if err := DCacheConfig(true).Validate(); err != nil {
		t.Error(err)
	}
	bad := []Config{
		{SizeBytes: 100, Ways: 2, LineBytes: 16},
		{SizeBytes: 256, Ways: 0, LineBytes: 16},
		{SizeBytes: 256, Ways: 2, LineBytes: 12},
		{SizeBytes: 96, Ways: 2, LineBytes: 16}, // 3 sets
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v accepted", c)
		}
	}
}

func TestFillReadWrite(t *testing.T) {
	c := New(smallCfg(true))
	line := make([]byte, 16)
	for i := range line {
		line[i] = byte(i)
	}
	c.Fill(0x100, 0, line)
	if !c.Contains(0x104) || c.Contains(0x114) {
		t.Error("Contains wrong")
	}
	if v, hit := c.Read(0x104, 4); !hit || v != 0x07060504 {
		t.Errorf("read = %#x hit=%v", v, hit)
	}
	if hit := c.Write(0x108, 0xAABBCCDD, 4); !hit {
		t.Error("write missed resident line")
	}
	if v, _ := c.Read(0x108, 4); v != 0xAABBCCDD {
		t.Errorf("readback = %#x", v)
	}
	if _, hit := c.Read(0x200, 4); hit {
		t.Error("phantom hit")
	}
}

func TestLRUVictimAndWriteback(t *testing.T) {
	c := New(smallCfg(true)) // 8 sets, 2 ways
	line := make([]byte, 16)
	// Two lines mapping to set 0: addresses 0x000 and 0x080 (8 sets * 16B).
	c.Fill(0x000, mustVictim(c, 0x000), line)
	c.Fill(0x080, mustVictim(c, 0x080), line)
	// Touch 0x000 so 0x080 becomes LRU.
	c.Read(0x000, 4)
	c.Write(0x080, 1, 4)                      // dirty the LRU line... but this touches it too
	c.Read(0x000, 4)                          // make 0x000 MRU again
	way, wbAddr, _, needWB := c.Victim(0x100) // third line in set 0
	if !needWB {
		t.Fatal("expected dirty victim write-back")
	}
	if wbAddr != 0x080 {
		t.Errorf("victim addr %#x, want 0x080", wbAddr)
	}
	c.Fill(0x100, way, line)
	if c.Contains(0x080) {
		t.Error("victim still resident")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Writebacks != 1 {
		t.Errorf("stats %+v", st)
	}
}

func mustVictim(c *Cache, addr uint32) int {
	way, _, _, _ := c.Victim(addr)
	return way
}

func TestInvalidateAll(t *testing.T) {
	c := New(smallCfg(true))
	line := make([]byte, 16)
	c.Fill(0x0, 0, line)
	c.Fill(0x10, 0, line)
	if c.ResidentLines() != 2 {
		t.Fatalf("resident %d", c.ResidentLines())
	}
	c.InvalidateAll()
	if c.ResidentLines() != 0 {
		t.Error("lines survived invalidate")
	}
	if c.Stats().Invalidates != 1 {
		t.Error("invalidate not counted")
	}
}

// busFixture builds a bus with an SRAM at 0x2000_0000 and a flash at 0.
func busFixture(nMasters int) (*bus.Bus, *mem.RAM, *mem.Flash) {
	ram := mem.NewRAM(64<<10, 2)
	flash := mem.NewFlash(64<<10, []int{8})
	b := bus.New(nMasters, bus.RoundRobin, []bus.Region{
		{Base: 0x0000_0000, Size: 64 << 10, Dev: flash},
		{Base: 0x2000_0000, Size: 64 << 10, Dev: ram},
	})
	return b, ram, flash
}

// drive runs an access through a client, stepping the bus, and returns
// (cycles, data).
func drive(t *testing.T, b *bus.Bus, cl Client, addr uint32, write bool, wdata uint64, size int) (int, uint64) {
	t.Helper()
	cl.Start(addr, write, wdata, size)
	// Same-cycle attempt (hit path).
	if done, v := cl.Tick(); done {
		return 1, v
	}
	for i := 2; i < 200; i++ {
		b.Step()
		if done, v := cl.Tick(); done {
			return i, v
		}
	}
	t.Fatal("access did not complete")
	return 0, 0
}

func TestCtrlMissThenHit(t *testing.T) {
	b, ram, _ := busFixture(1)
	mem.WriteWord(ram, 0x40, 0x11223344)
	c := NewCtrl(New(smallCfg(true)), b.PortFor(0))

	cyc, v := drive(t, b, c, 0x2000_0040, false, 0, 4)
	if v != 0x11223344 {
		t.Errorf("miss read = %#x", v)
	}
	if cyc < 3 {
		t.Errorf("miss served in %d cycles; too fast for a bus refill", cyc)
	}
	cyc2, v2 := drive(t, b, c, 0x2000_0044, false, 0, 4)
	if cyc2 != 1 {
		t.Errorf("hit took %d cycles, want 1", cyc2)
	}
	if v2 != 0 {
		t.Errorf("hit read = %#x, want 0", v2)
	}
	st := c.Cache().Stats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats %+v", st)
	}
}

func TestCtrlWriteAllocateKeepsStoreLocal(t *testing.T) {
	b, ram, _ := busFixture(1)
	c := NewCtrl(New(smallCfg(true)), b.PortFor(0))
	drive(t, b, c, 0x2000_0080, true, 0xDEAD, 4) // write miss -> refill + local write
	if mem.ReadWord(ram, 0x80) == 0xDEAD {
		t.Error("write-back cache leaked store to memory immediately")
	}
	if _, v := drive(t, b, c, 0x2000_0080, false, 0, 4); v != 0xDEAD {
		t.Errorf("readback = %#x", v)
	}
	// Write hit must complete in one cycle.
	if cyc, _ := drive(t, b, c, 0x2000_0084, true, 7, 4); cyc != 1 {
		t.Errorf("write hit took %d cycles", cyc)
	}
}

func TestCtrlNoWriteAllocateWritesAround(t *testing.T) {
	b, ram, _ := busFixture(1)
	c := NewCtrl(New(smallCfg(false)), b.PortFor(0))
	drive(t, b, c, 0x2000_0080, true, 0xBEEF, 4)
	if got := mem.ReadWord(ram, 0x80); got != 0xBEEF {
		t.Errorf("write-around did not reach memory: %#x", got)
	}
	if c.Cache().Contains(0x2000_0080) {
		t.Error("no-write-allocate cache allocated on write miss")
	}
	// A read of that line must now miss (the paper's dummy-load rule exists
	// exactly because of this behaviour).
	if cyc, v := drive(t, b, c, 0x2000_0080, false, 0, 4); v != 0xBEEF || cyc < 3 {
		t.Errorf("read after write-around: cyc=%d v=%#x", cyc, v)
	}
}

func TestCtrlDirtyEvictionWritesBack(t *testing.T) {
	b, ram, _ := busFixture(1)
	cfg := smallCfg(true) // 8 sets, 2 ways: 0x000,0x080,0x100 all map to set 0
	c := NewCtrl(New(cfg), b.PortFor(0))
	drive(t, b, c, 0x2000_0000, true, 0x111, 4)
	drive(t, b, c, 0x2000_0080, true, 0x222, 4)
	drive(t, b, c, 0x2000_0100, false, 0, 4) // evicts 0x000 (LRU, dirty)
	if got := mem.ReadWord(ram, 0x0); got != 0x111 {
		t.Errorf("write-back lost: mem=%#x", got)
	}
	// 0x080 still cached and dirty, not yet in memory.
	if got := mem.ReadWord(ram, 0x80); got == 0x222 {
		t.Error("non-victim line written back")
	}
}

func TestBypassLineBufferTiming(t *testing.T) {
	b, _, flash := busFixture(1)
	flash.LoadWords(0, []uint32{1, 2, 3, 4, 5, 6, 7, 8})
	cl := NewBypass(b.PortFor(0), true)
	cyc, v := drive(t, b, cl, 0x0, false, 0, 4)
	if v != 1 {
		t.Errorf("word0 = %d", v)
	}
	if cyc < 9 { // flash latency 8 + arbitration
		t.Errorf("first fetch took %d cycles, want >= 9", cyc)
	}
	// Same line: single cycle.
	if cyc, v := drive(t, b, cl, 0xC, false, 0, 4); cyc != 1 || v != 4 {
		t.Errorf("in-line fetch cyc=%d v=%d", cyc, v)
	}
	// Next line: slow again.
	if cyc, v := drive(t, b, cl, 0x10, false, 0, 4); cyc < 9 || v != 5 {
		t.Errorf("next-line fetch cyc=%d v=%d", cyc, v)
	}
	cl.InvalidateBuffer()
	if cyc, _ := drive(t, b, cl, 0x10, false, 0, 4); cyc < 9 {
		t.Errorf("fetch after invalidate took %d cycles", cyc)
	}
}

func TestBypassUnbufferedDataPath(t *testing.T) {
	b, ram, _ := busFixture(1)
	mem.WriteWord(ram, 0x20, 42)
	cl := NewBypass(b.PortFor(0), false)
	if _, v := drive(t, b, cl, 0x2000_0020, false, 0, 4); v != 42 {
		t.Errorf("read = %d", v)
	}
	drive(t, b, cl, 0x2000_0024, true, 99, 4)
	if mem.ReadWord(ram, 0x24) != 99 {
		t.Error("write lost")
	}
}

func TestTCMClientSingleCycle(t *testing.T) {
	tcm := mem.NewTCM(1024)
	cl := NewTCMClient(tcm, 0x3000_0000)
	cl.Start(0x3000_0010, true, 0x55AA, 4)
	if done, _ := cl.Tick(); !done {
		t.Fatal("TCM write not single cycle")
	}
	cl.Start(0x3000_0010, false, 0, 4)
	done, v := cl.Tick()
	if !done || v != 0x55AA {
		t.Errorf("TCM read done=%v v=%#x", done, v)
	}
	// Out-of-range access returns open-bus ones, no panic.
	cl.Start(0x3000_0000+2048, false, 0, 4)
	if _, v := cl.Tick(); v == 0 {
		t.Error("out-of-range TCM read returned zero")
	}
}

func TestClientAlignment(t *testing.T) {
	tcm := mem.NewTCM(1024)
	cl := NewTCMClient(tcm, 0)
	cl.Start(0x13, true, 0x77, 4) // misaligned: truncated to 0x10
	cl.Tick()
	cl.Start(0x10, false, 0, 4)
	if _, v := cl.Tick(); v != 0x77 {
		t.Errorf("aligned truncation broken: %#x", v)
	}
}

func TestPairAccess64(t *testing.T) {
	b, _, _ := busFixture(1)
	c := NewCtrl(New(smallCfg(true)), b.PortFor(0))
	drive(t, b, c, 0x2000_0008, true, 0x1122334455667788, 8)
	if _, v := drive(t, b, c, 0x2000_0008, false, 0, 8); v != 0x1122334455667788 {
		t.Errorf("64-bit readback = %#x", v)
	}
	if _, v := drive(t, b, c, 0x2000_000C, false, 0, 4); v != 0x11223344 {
		t.Errorf("high word = %#x", v)
	}
}

// Property: a cache in front of a memory must behave exactly like the
// memory alone for any access sequence (single master, so no coherence
// concerns).
func TestCacheCoherentWithMemoryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		b, _, _ := busFixture(1)
		c := NewCtrl(New(smallCfg(trial%2 == 0)), b.PortFor(0))
		ref := make(map[uint32]uint64) // word-addressed reference model
		for op := 0; op < 300; op++ {
			addr := 0x2000_0000 + uint32(rng.Intn(64))*4 // small window forces evictions
			if rng.Intn(2) == 0 {
				v := uint64(rng.Uint32())
				drive(t, b, c, addr, true, v, 4)
				ref[addr] = v
			} else {
				_, v := drive(t, b, c, addr, false, 0, 4)
				if want := ref[addr]; v != want {
					t.Fatalf("trial %d op %d: read %#x = %#x, want %#x",
						trial, op, addr, v, want)
				}
			}
		}
	}
}
