// Package cache implements the private first-level caches of each core:
// set-associative, LRU replacement, write-back with configurable
// write-allocate or no-write-allocate policy (the paper's SoC supports
// both), and whole-cache invalidation as used by the deterministic
// cache-based test strategy. The package also provides the per-cycle memory
// clients the CPU pipeline talks to: a cache controller, a cache-bypass
// client, and a TCM client.
package cache
