package cache

import (
	"math/rand"
	"testing"

	"repro/internal/bus"
	"repro/internal/mem"
)

// Property tests on the cache's replacement and policy behaviour.

func fillLine(c *Cache, addr uint32) {
	way, _, _, _ := c.Victim(addr)
	c.Fill(addr, way, make([]byte, c.Config().LineBytes))
}

// TestLRUNeverEvictsMostRecent: for random access sequences, the victim
// chosen for a refill is never the line touched most recently in that set.
func TestLRUNeverEvictsMostRecent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := New(Config{SizeBytes: 512, Ways: 4, LineBytes: 16, WriteAlloc: true})
	nSets := 512 / (4 * 16)
	lastTouched := map[uint32]uint32{} // set -> line base most recently read
	for op := 0; op < 2000; op++ {
		set := uint32(rng.Intn(nSets))
		tag := uint32(rng.Intn(12))
		addr := tag*uint32(nSets)*16 + set*16
		if _, hit := c.Read(addr, 4); !hit {
			_, wbAddr, _, needWB := c.Victim(addr)
			if needWB && wbAddr == lastTouched[set] {
				t.Fatalf("op %d: LRU evicted the most recently used line %#x", op, wbAddr)
			}
			// Also check the victim way does not hold the MRU line.
			way, _, _, _ := c.Victim(addr)
			if base, ok := lastTouched[set]; ok && c.Contains(base) {
				vs, vw := set, way
				_ = vs
				// Fill and verify MRU line survives.
				c.Fill(addr, vw, make([]byte, 16))
				if !c.Contains(base) {
					t.Fatalf("op %d: refill displaced the MRU line %#x", op, base)
				}
			} else {
				fillLine(c, addr)
			}
		}
		lastTouched[set] = addr &^ 15
	}
}

// TestWriteAllocateVsAroundDiffer: the same store-then-evict sequence
// leaves different memory/cache footprints per policy, but reads always
// return the stored data.
func TestWriteAllocateVsAroundDiffer(t *testing.T) {
	for _, writeAlloc := range []bool{true, false} {
		ram := mem.NewRAM(64<<10, 2)
		b := bus.New(1, bus.RoundRobin, []bus.Region{{Base: 0, Size: 64 << 10, Dev: ram}})
		ctrl := NewCtrl(New(Config{SizeBytes: 256, Ways: 2, LineBytes: 16, WriteAlloc: writeAlloc}), b.PortFor(0))
		drive(t, b, ctrl, 0x100, true, 0xABCD, 4)
		inCache := ctrl.Cache().Contains(0x100)
		inMem := mem.ReadWord(ram, 0x100) == 0xABCD
		if writeAlloc && (!inCache || inMem) {
			t.Errorf("write-allocate: cached=%v memory=%v", inCache, inMem)
		}
		if !writeAlloc && (inCache || !inMem) {
			t.Errorf("write-around: cached=%v memory=%v", inCache, inMem)
		}
		if _, v := drive(t, b, ctrl, 0x100, false, 0, 4); v != 0xABCD {
			t.Errorf("policy %v: readback %#x", writeAlloc, v)
		}
	}
}

// TestInvalidateDropsDirtyData: CINV semantics are invalidate, not flush —
// dirty lines are lost, which is why the strategies keep live state out of
// the write-back cache across chunk boundaries.
func TestInvalidateDropsDirtyData(t *testing.T) {
	ram := mem.NewRAM(64<<10, 2)
	b := bus.New(1, bus.RoundRobin, []bus.Region{{Base: 0, Size: 64 << 10, Dev: ram}})
	ctrl := NewCtrl(New(smallCfg(true)), b.PortFor(0))
	drive(t, b, ctrl, 0x40, true, 0x77, 4)
	ctrl.Cache().InvalidateAll()
	if _, v := drive(t, b, ctrl, 0x40, false, 0, 4); v == 0x77 {
		t.Error("dirty data survived invalidate (flush semantics?)")
	}
}

// TestTryAbortStates pins the abort protocol against the bus.
func TestTryAbortStates(t *testing.T) {
	ram := mem.NewRAM(64<<10, 4)
	b := bus.New(2, bus.RoundRobin, []bus.Region{{Base: 0, Size: 64 << 10, Dev: ram}})
	ctrl := NewCtrl(New(smallCfg(true)), b.PortFor(0))

	// Idle: trivially aborts.
	if !ctrl.TryAbort() {
		t.Error("idle abort failed")
	}
	// Unconsumed hit: aborts.
	ctrl.Start(0x40, false, 0, 4)
	if !ctrl.TryAbort() || ctrl.Busy() {
		t.Error("hit abort failed")
	}
	// Queued miss behind another master: cancellable.
	other := b.PortFor(1)
	other.StartRead(0x100, 16)
	b.Step() // grant master 1
	ctrl.Start(0x40, false, 0, 4)
	if done, _ := ctrl.Tick(); done {
		t.Fatal("expected miss")
	}
	if !ctrl.TryAbort() {
		t.Error("queued miss not cancellable")
	}
	if ctrl.Busy() {
		t.Error("controller busy after abort")
	}
	// In-service miss: not abortable; must drain.
	for !other.Done() {
		b.Step()
	}
	other.Take()
	ctrl.Start(0x80, false, 0, 4)
	ctrl.Tick()
	b.Step() // grant: now in service
	if ctrl.TryAbort() {
		t.Error("in-service transfer claimed abortable")
	}
	for i := 0; i < 50; i++ {
		b.Step()
		if done, _ := ctrl.Tick(); done {
			return
		}
	}
	t.Fatal("drain never completed")
}

// TestBypassAbort covers the same protocol for the uncached client.
func TestBypassAbort(t *testing.T) {
	ram := mem.NewRAM(64<<10, 4)
	b := bus.New(2, bus.RoundRobin, []bus.Region{{Base: 0, Size: 64 << 10, Dev: ram}})
	by := NewBypass(b.PortFor(0), true)
	if !by.TryAbort() {
		t.Error("idle abort failed")
	}
	other := b.PortFor(1)
	other.StartRead(0x100, 16)
	b.Step()
	by.Start(0x40, false, 0, 4)
	by.Tick()
	if !by.TryAbort() || by.Busy() {
		t.Error("queued read not cancellable")
	}
}
