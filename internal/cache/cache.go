package cache

import (
	"encoding/binary"
	"fmt"

	"repro/internal/coverage"
	"repro/internal/mem"
)

// Config describes cache geometry and policy.
type Config struct {
	SizeBytes  int
	Ways       int
	LineBytes  int
	WriteAlloc bool // true: write-allocate (paper's experimental setting)
}

// ICacheConfig returns the paper's 8 kB instruction-cache geometry.
func ICacheConfig() Config {
	return Config{SizeBytes: 8 << 10, Ways: 2, LineBytes: mem.LineBytes, WriteAlloc: true}
}

// DCacheConfig returns the paper's 4 kB data-cache geometry.
func DCacheConfig(writeAlloc bool) Config {
	return Config{SizeBytes: 4 << 10, Ways: 2, LineBytes: mem.LineBytes, WriteAlloc: writeAlloc}
}

func (c Config) sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// Validate checks the geometry for consistency.
func (c Config) Validate() error {
	if c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways %d", c.Ways)
	}
	if c.SizeBytes%(c.Ways*c.LineBytes) != 0 {
		return fmt.Errorf("cache: size %d not divisible by way*line", c.SizeBytes)
	}
	s := c.sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", s)
	}
	return nil
}

type line struct {
	valid bool
	dirty bool
	tag   uint32
	age   uint64 // LRU timestamp; higher = more recent
	data  []byte
}

// Stats counts cache events.
type Stats struct {
	Hits        int
	Misses      int
	Evictions   int
	Writebacks  int
	Invalidates int
}

// Cache is the tag/data array. Timing lives in Ctrl; Cache itself is purely
// functional state.
type Cache struct {
	cfg   Config
	sets  [][]line
	tick  uint64
	stats Stats

	setShift uint32
	setMask  uint32

	// cov/covRole collect hit/miss/evict/writeback coverage when attached;
	// a nil map (the default) is the zero-cost disabled mode.
	cov     *coverage.Map
	covRole int

	// sinceInv marks that a CINV has happened and no miss has been recorded
	// yet: the next miss is a chunk-boundary cold refill (CacheColdMiss).
	sinceInv bool
}

// New builds an empty cache with the given configuration.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	nSets := cfg.sets()
	sets := make([][]line, nSets)
	for i := range sets {
		ways := make([]line, cfg.Ways)
		for w := range ways {
			ways[w].data = make([]byte, cfg.LineBytes)
		}
		sets[i] = ways
	}
	shift := uint32(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg: cfg, sets: sets,
		setShift: shift, setMask: uint32(nSets - 1),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the accumulated event counts.
func (c *Cache) Stats() Stats { return c.stats }

// SetCoverage attaches a coverage map recording this cache's events under
// the given role (coverage.RoleICache / RoleDCache); nil detaches. The
// attachment survives Reset.
func (c *Cache) SetCoverage(m *coverage.Map, role int) {
	c.cov = m
	c.covRole = role
}

// cover records one cache event when a coverage map is attached.
func (c *Cache) cover(event int) {
	if c.cov != nil {
		c.cov.Inc(coverage.CacheFeat(c.covRole, event))
	}
}

// coverMiss records a miss, distinguishing the first miss after a CINV —
// the refill at a wrapping-strategy chunk boundary.
func (c *Cache) coverMiss() {
	c.cover(coverage.CacheMiss)
	if c.sinceInv {
		c.sinceInv = false
		c.cover(coverage.CacheColdMiss)
	}
}

func (c *Cache) index(addr uint32) (set, tag uint32) {
	return (addr >> c.setShift) & c.setMask, addr >> c.setShift >> trailingBits(c.setMask)
}

func trailingBits(mask uint32) uint32 {
	n := uint32(0)
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// lookup returns the way index of addr's line, or -1.
func (c *Cache) lookup(addr uint32) (set uint32, way int) {
	s, tag := c.index(addr)
	for w := range c.sets[s] {
		if c.sets[s][w].valid && c.sets[s][w].tag == tag {
			return s, w
		}
	}
	return s, -1
}

// Contains reports whether addr's line is resident (no LRU side effects).
func (c *Cache) Contains(addr uint32) bool {
	_, w := c.lookup(addr)
	return w >= 0
}

// Read returns up to 8 bytes at addr on a hit. n must not cross a line
// boundary.
func (c *Cache) Read(addr uint32, n int) (v uint64, hit bool) {
	s, w := c.lookup(addr)
	if w < 0 {
		c.stats.Misses++
		c.coverMiss()
		return 0, false
	}
	c.stats.Hits++
	c.cover(coverage.CacheHit)
	c.touch(s, w)
	off := addr & uint32(c.cfg.LineBytes-1)
	return readLE(c.sets[s][w].data[off:], n), true
}

// Write stores n bytes at addr on a hit, marking the line dirty.
func (c *Cache) Write(addr uint32, v uint64, n int) (hit bool) {
	s, w := c.lookup(addr)
	if w < 0 {
		c.stats.Misses++
		c.coverMiss()
		return false
	}
	c.stats.Hits++
	c.cover(coverage.CacheHit)
	c.touch(s, w)
	ln := &c.sets[s][w]
	ln.dirty = true
	off := addr & uint32(c.cfg.LineBytes-1)
	writeLE(ln.data[off:], v, n)
	return true
}

func (c *Cache) touch(s uint32, w int) {
	c.tick++
	c.sets[s][w].age = c.tick
}

// Victim returns the way that a refill of addr would replace and, when that
// way is valid and dirty, the line's address and data for write-back.
func (c *Cache) Victim(addr uint32) (way int, wbAddr uint32, wbData []byte, needWB bool) {
	s, _ := c.index(addr)
	way = 0
	var oldest uint64 = ^uint64(0)
	for w := range c.sets[s] {
		ln := &c.sets[s][w]
		if !ln.valid {
			return w, 0, nil, false
		}
		if ln.age < oldest {
			oldest = ln.age
			way = w
		}
	}
	v := &c.sets[s][way]
	if v.dirty {
		base := c.lineBase(s, v.tag)
		return way, base, v.data, true
	}
	return way, 0, nil, false
}

func (c *Cache) lineBase(set, tag uint32) uint32 {
	return (tag<<trailingBits(c.setMask) | set) << c.setShift
}

// Fill installs line data for addr into the given way.
func (c *Cache) Fill(addr uint32, way int, data []byte) {
	s, tag := c.index(addr)
	ln := &c.sets[s][way]
	if ln.valid {
		c.stats.Evictions++
		if ln.dirty {
			c.stats.Writebacks++
			c.cover(coverage.CacheWriteback)
		} else {
			c.cover(coverage.CacheEvict)
		}
	}
	ln.valid = true
	ln.dirty = false
	ln.tag = tag
	copy(ln.data, data)
	c.touch(s, way)
}

// InvalidateAll drops every line without writing anything back (the CINV
// semantics the test strategy relies on: caches start cold and clean).
func (c *Cache) InvalidateAll() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].valid = false
			c.sets[s][w].dirty = false
		}
	}
	c.stats.Invalidates++
	c.cover(coverage.CacheInvalidate)
	c.sinceInv = true
}

// Reset restores power-on state: every line invalid and clean, statistics
// and the LRU clock cleared. Unlike InvalidateAll it does not count as an
// invalidate event — it models a cold reset, not a CINV instruction.
func (c *Cache) Reset() {
	for s := range c.sets {
		for w := range c.sets[s] {
			c.sets[s][w].valid = false
			c.sets[s][w].dirty = false
			c.sets[s][w].age = 0
		}
	}
	c.tick = 0
	c.stats = Stats{}
	c.sinceInv = false
}

// State is an opaque snapshot of a cache's dynamic state (see Snapshot).
type State struct {
	lines    []line // sets×ways flattened; invalid lines are zero entries
	tick     uint64
	stats    Stats
	sinceInv bool
}

// Snapshot captures the tag/data array, LRU clock and statistics mid-run.
// Invalid lines are recorded as zero entries: their residual tag and data
// bytes are unobservable (every lookup checks valid first), and omitting
// them makes snapshots of behaviourally identical caches compare equal
// regardless of what earlier runs left in the arrays.
func (c *Cache) Snapshot() *State {
	st := &State{tick: c.tick, stats: c.stats, sinceInv: c.sinceInv}
	st.lines = make([]line, 0, len(c.sets)*c.cfg.Ways)
	for _, ways := range c.sets {
		for _, ln := range ways {
			if ln.valid {
				ln.data = append([]byte(nil), ln.data...)
			} else {
				ln = line{}
			}
			st.lines = append(st.lines, ln)
		}
	}
	return st
}

// Restore rewinds the cache to a snapshot taken from an identically
// configured cache. Invalid lines get zeroed metadata; their data bytes are
// left as they are (unobservable, see Snapshot).
func (c *Cache) Restore(st *State) {
	i := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			src := &st.lines[i]
			i++
			dst := &c.sets[s][w]
			dst.valid, dst.dirty, dst.tag, dst.age = src.valid, src.dirty, src.tag, src.age
			if src.valid {
				copy(dst.data, src.data)
			}
		}
	}
	c.tick = st.tick
	c.stats = st.stats
	c.sinceInv = st.sinceInv
}

// ResidentLines counts valid lines (used in tests and by the strategy
// checker to verify a routine fits).
func (c *Cache) ResidentLines() int {
	n := 0
	for s := range c.sets {
		for w := range c.sets[s] {
			if c.sets[s][w].valid {
				n++
			}
		}
	}
	return n
}

// readAt/writeAt serve an access that is known to hit (used by the
// controller right after a Fill) without perturbing hit/miss statistics.
func (c *Cache) readAt(addr uint32, n int) uint64 {
	s, w := c.lookup(addr)
	if w < 0 {
		panic("cache: readAt miss")
	}
	c.touch(s, w)
	off := addr & uint32(c.cfg.LineBytes-1)
	return readLE(c.sets[s][w].data[off:], n)
}

func (c *Cache) writeAt(addr uint32, v uint64, n int) {
	s, w := c.lookup(addr)
	if w < 0 {
		panic("cache: writeAt miss")
	}
	c.touch(s, w)
	ln := &c.sets[s][w]
	ln.dirty = true
	off := addr & uint32(c.cfg.LineBytes-1)
	writeLE(ln.data[off:], v, n)
}

func readLE(b []byte, n int) uint64 {
	switch n {
	case 1:
		return uint64(b[0])
	case 4:
		return uint64(binary.LittleEndian.Uint32(b))
	case 8:
		return binary.LittleEndian.Uint64(b)
	}
	panic(fmt.Sprintf("cache: bad access size %d", n))
}

func writeLE(b []byte, v uint64, n int) {
	switch n {
	case 1:
		b[0] = byte(v)
	case 4:
		binary.LittleEndian.PutUint32(b, uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(b, v)
	default:
		panic(fmt.Sprintf("cache: bad access size %d", n))
	}
}
