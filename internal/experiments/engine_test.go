package experiments

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/soc"
)

// runBothEngines executes the same campaign under the legacy
// (rebuild-per-fault, full-budget) and arena (reusable SoC, early-exit)
// engines and requires bit-identical reports: same golden, same detected
// set, same signatures, same crash flags, site by site.
func runBothEngines(t *testing.T, mk func(o Options) campaign, sites []fault.Site) {
	t.Helper()
	legacy, err := mk(Options{Engine: EngineLegacy}).run(sites)
	if err != nil {
		t.Fatal(err)
	}
	arena, err := mk(Options{Engine: EngineArena}).run(sites)
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Golden != arena.Golden || legacy.GoldenOK != arena.GoldenOK {
		t.Fatalf("golden mismatch: legacy %08x/%v, arena %08x/%v",
			legacy.Golden, legacy.GoldenOK, arena.Golden, arena.GoldenOK)
	}
	if legacy.Detected != arena.Detected {
		t.Errorf("detected %d (legacy) != %d (arena)", legacy.Detected, arena.Detected)
	}
	for i := range legacy.Results {
		if legacy.Results[i] != arena.Results[i] {
			t.Errorf("site %v: legacy %+v, arena %+v",
				sites[i], legacy.Results[i], arena.Results[i])
		}
	}
	if !reflect.DeepEqual(legacy.BySignal(), arena.BySignal()) {
		t.Error("per-signal breakdown differs between engines")
	}
}

// TestEngineEquivalenceForwarding compares the engines on the quick
// forwarding universe (stuck-at plus transition faults) in the uncached
// multi-core replay environment of Table II.
func TestEngineEquivalenceForwarding(t *testing.T) {
	sites := fault.ForwardingLogic(fault.ListOptions{DataBits: 32, BitStep: 8})
	sites = append(sites, fault.TransitionFaults(fault.ListOptions{DataBits: 32, BitStep: 16})...)
	fault.SortSites(sites)

	spec := scenarioSpec{active: 3, pos: soc.CodeMid, pad: 8}
	runBothEngines(t, func(o Options) campaign {
		return newCampaign(o, 0, baseConfig(3, false),
			forwardingJobs(0, spec, func(int) core.Strategy { return core.Plain{} }, false))
	}, sites)
}

// TestEngineEquivalenceICU compares the engines on the quick ICU universe
// under the cache-based strategy (Table III's multi-core arm), which
// additionally exercises cache reset between fault runs and the
// wedge-heavy ICU fault population.
func TestEngineEquivalenceICU(t *testing.T) {
	sites := fault.ICU(fault.ListOptions{BitStep: 1})
	fault.SortSites(sites)
	sites = fault.Sample(sites, 2)

	runBothEngines(t, func(o Options) campaign {
		return newCampaign(o, 0, baseConfig(3, true),
			moduleJobs(0, 3, icuRoutineFor,
				func(int) core.Strategy { return core.CacheBased{WriteAllocate: true} }))
	}, sites)
}
