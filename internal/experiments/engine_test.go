package experiments_test

import (
	"testing"

	"repro/internal/conform"
	"repro/internal/fault"
	"repro/internal/soc"
)

// The reference (full-budget, no shortcuts) and optimized (early-exit,
// checkpointed) arena modes must produce bit-identical reports: same
// golden, same detected set, same signatures, same crash flags, site by
// site. The cross-checking machinery lives in internal/conform (which also
// fuzzes it over random universes and environments); these tests pin the
// equivalence on the fixed universes the paper's tables depend on.

func compareEngines(t *testing.T, env *conform.CampaignEnv, sites []fault.Site) {
	t.Helper()
	detail, err := env.CompareEngines(sites)
	if err != nil {
		t.Fatal(err)
	}
	if detail != "" {
		t.Errorf("arena modes disagree: %s", detail)
	}
}

// TestEngineEquivalenceForwarding compares the arena modes on the quick
// forwarding universe (stuck-at plus transition faults) in the uncached
// multi-core replay environment of Table II.
func TestEngineEquivalenceForwarding(t *testing.T) {
	sites := fault.ForwardingLogic(fault.ListOptions{DataBits: 32, BitStep: 8})
	sites = append(sites, fault.TransitionFaults(fault.ListOptions{DataBits: 32, BitStep: 16})...)
	fault.SortSites(sites)

	env, err := conform.NewCampaignEnv("forwarding", 0, 3, soc.CodeMid, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	compareEngines(t, env, sites)
}

// TestEngineEquivalenceICU compares the arena modes on the full ICU
// universe under the cache-based strategy (Table III's multi-core arm),
// which additionally exercises cache reset between fault runs and the
// wedge-heavy ICU fault population. The universe is unsampled: the
// reference arena can afford it now that both sides reuse their SoCs.
func TestEngineEquivalenceICU(t *testing.T) {
	sites := fault.ICU(fault.ListOptions{BitStep: 1})
	fault.SortSites(sites)

	env, err := conform.NewCampaignEnv("icu", 0, 3, soc.CodeLow, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	compareEngines(t, env, sites)
}

// TestEngineEquivalenceFuzz runs a few iterations of the conform campaign
// fuzz scenario — random universes, random environments — from fixed
// seeds, so the randomized surface stays exercised in the ordinary test
// suite too.
func TestEngineEquivalenceFuzz(t *testing.T) {
	sc, err := conform.Lookup("campaign")
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 6; seed++ {
		if m := sc.Run(seed); m != nil {
			t.Errorf("%v", m)
		}
	}
}
