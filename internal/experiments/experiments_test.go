package experiments

import "testing"

var quick = Options{Quick: true}

func TestTableIShape(t *testing.T) {
	rows, err := TableI(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Stalls must grow monotonically and superlinearly with core count:
	// going from one to three cores multiplies the total stall cycles by
	// more than the core count itself (the paper's Table I shows ~9x).
	for i := 1; i < 3; i++ {
		if rows[i].IFStalls <= rows[i-1].IFStalls {
			t.Errorf("IF stalls not increasing: %+v", rows)
		}
		if rows[i].MemStalls <= rows[i-1].MemStalls {
			t.Errorf("MEM stalls not increasing: %+v", rows)
		}
	}
	if rows[2].IFStalls < 3*rows[0].IFStalls {
		t.Errorf("3-core IF stalls %d not superlinear vs single-core %d",
			rows[2].IFStalls, rows[0].IFStalls)
	}
	// IF stalls dominate MEM stalls, as in the paper.
	if rows[2].IFStalls <= rows[2].MemStalls {
		t.Errorf("IF stalls should dominate: %+v", rows[2])
	}
	t.Log("\n" + RenderTableI(rows))
}

func TestTableIIShape(t *testing.T) {
	rows, err := TableII(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Faults == 0 {
			t.Errorf("core %s: empty fault list", r.Core)
		}
		if r.MinFC > r.MaxFC {
			t.Errorf("core %s: min %f > max %f", r.Core, r.MinFC, r.MaxFC)
		}
		// The cache-based strategy must beat every uncached scenario.
		if r.CacheFC < r.MaxFC {
			t.Errorf("core %s: cache FC %.2f below uncached max %.2f",
				r.Core, r.CacheFC, r.MaxFC)
		}
		if r.CacheFC <= r.MinFC {
			t.Errorf("core %s: cache FC %.2f does not improve on min %.2f",
				r.Core, r.CacheFC, r.MinFC)
		}
	}
	// Coverage must fluctuate across scenarios for at least one core
	// (the paper reports spreads up to ~16 points).
	spread := 0.0
	for _, r := range rows {
		if s := r.MaxFC - r.MinFC; s > spread {
			spread = s
		}
	}
	if spread == 0 {
		t.Error("no coverage fluctuation across uncached scenarios")
	}
	// Core C's 64-bit forwarding network has more faults and lower
	// coverage than A/B (upper-half excitation limits), as in the paper.
	if rows[2].Faults <= rows[0].Faults {
		t.Error("core C fault list should be larger")
	}
	if rows[2].CacheFC >= rows[0].CacheFC {
		t.Errorf("core C coverage %.2f should trail core A %.2f",
			rows[2].CacheFC, rows[0].CacheFC)
	}
	t.Log("\n" + RenderTableII(rows))
}

func TestTableIIIShape(t *testing.T) {
	rows, err := TableIII(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[string]TableIIIRow{}
	hdcuGain := false
	icuNotWorse := true
	icuGain := false
	for _, r := range rows {
		byKey[r.Core+r.Module] = r
		if !r.MultiNoCacheFails {
			t.Errorf("%s/%s: plain multi-core run reproduced the golden signature",
				r.Core, r.Module)
		}
		// Cache-based multi-core coverage must never fall below the
		// single-core no-cache baseline; for the HDCU (and in the paper,
		// for both modules) it exceeds it, because flash latency limits
		// excitation of the timing-sensitive behaviours.
		switch r.Module {
		case "HDCU":
			if r.MultiCacheFC <= r.SingleFC {
				t.Errorf("%s/HDCU: cache FC %.2f not above single-core %.2f",
					r.Core, r.MultiCacheFC, r.SingleFC)
			} else {
				hdcuGain = true
			}
		case "ICU":
			if r.MultiCacheFC < r.SingleFC {
				icuNotWorse = false
				t.Errorf("%s/ICU: cache FC %.2f below single-core %.2f",
					r.Core, r.MultiCacheFC, r.SingleFC)
			}
			if r.MultiCacheFC > r.SingleFC {
				icuGain = true
			}
		}
	}
	if !hdcuGain {
		t.Error("no HDCU coverage gain anywhere")
	}
	if icuNotWorse && !icuGain {
		t.Log("note: ICU coverage tied on every core in this reduced campaign")
	}
	// Core C's ICU coverage exceeds A's (distinct cause bits, no
	// masking), the paper's ~10%-higher observation.
	if byKey["CICU"].MultiCacheFC <= byKey["AICU"].MultiCacheFC {
		t.Errorf("core C ICU %.2f should exceed core A ICU %.2f",
			byKey["CICU"].MultiCacheFC, byKey["AICU"].MultiCacheFC)
	}
	t.Log("\n" + RenderTableIII(rows))
}

func TestTableIVShape(t *testing.T) {
	rows, err := TableIV(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	tcm, cache := rows[0], rows[1]
	if tcm.MemoryOverhead == 0 {
		t.Error("TCM-based approach must reserve TCM bytes")
	}
	if cache.MemoryOverhead != 0 {
		t.Error("cache-based approach must reserve no memory")
	}
	if cache.ExecutionTime <= tcm.ExecutionTime {
		t.Errorf("cache-based (%d cycles) should be slightly slower than TCM-based (%d)",
			cache.ExecutionTime, tcm.ExecutionTime)
	}
	// "Slightly" slower: within ~2x, not an order of magnitude (the paper
	// reports ~10%).
	if cache.ExecutionTime > 2*tcm.ExecutionTime {
		t.Errorf("cache-based overhead too large: %d vs %d cycles",
			cache.ExecutionTime, tcm.ExecutionTime)
	}
	t.Log("\n" + RenderTableIV(rows))
}

func TestFigure1(t *testing.T) {
	res, err := Figure1(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ForwardingUsed {
		t.Error("scenario (a) did not exercise the forwarding path")
	}
	if !res.ForwardingLost {
		t.Error("scenario (b) did not break the forwarding path")
	}
	if res.DiagramA == res.DiagramB {
		t.Error("diagrams identical")
	}
	t.Log("\n" + RenderFigure1(res))
}

func TestFigure2(t *testing.T) {
	res, err := Figure2(quick)
	if err != nil {
		t.Fatal(err)
	}
	if res.OverheadBytes <= 0 || res.OverheadBytes > 256 {
		t.Errorf("wrapper overhead %d bytes implausible", res.OverheadBytes)
	}
	if !res.FitsICache {
		t.Error("wrapped ICU routine should fit the 8 kB cache")
	}
	t.Log("\n" + RenderFigure2(res))
}

func TestDelayFaultExtension(t *testing.T) {
	rows, err := DelayFaults(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Faults == 0 {
			t.Errorf("core %s: empty universe", r.Core)
		}
		if r.CacheFC < r.MaxFC {
			t.Errorf("core %s: cache FC %.2f below uncached max %.2f",
				r.Core, r.CacheFC, r.MaxFC)
		}
		if r.CacheFC <= 0 {
			t.Errorf("core %s: no transition faults detected at all", r.Core)
		}
	}
	t.Log("\n" + RenderDelay(rows))
}
