package experiments

import (
	"fmt"
	"io"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mem"
	"repro/internal/sbst"
	"repro/internal/soc"
	"repro/internal/telemetry"
)

// Options tunes experiment cost.
type Options struct {
	// Quick reduces fault universes (bit sampling) and scenario counts so
	// the whole suite runs in seconds; the full setting is for cmd/repro.
	Quick bool
	// Workers bounds fault-simulation parallelism (0 = GOMAXPROCS).
	Workers int
	// Reference runs the campaigns in the arena's full-budget reference
	// mode (no early exit, no checkpointing, no golden-verdict shortcut)
	// instead of the optimized default. Reports are bit-identical across
	// modes; see core.CampaignOptions.Reference.
	Reference bool
	// JournalDir, when non-empty, journals every campaign's verdicts to a
	// content-addressed file in this directory and resumes from whatever
	// those files already settle — an interrupted table sweep re-runs only
	// unsettled sites (see internal/fault's Journal).
	JournalDir string
	// CheckpointInterval controls golden-run checkpointing in the
	// optimized campaign mode: 0 = automatic (derived from the cycle
	// budget), negative = off, positive = interval in cycles. Reports are
	// bit-identical across settings; see core.CampaignOptions.
	CheckpointInterval int64
	// Telemetry, when non-nil, receives every campaign's metrics plus a
	// per-table span histogram (experiment_<table>_ns). Nil disables
	// metrics at zero cost; see core.CampaignOptions.Telemetry.
	Telemetry *telemetry.Registry
	// Events, when non-nil, receives every campaign's event stream plus
	// one span event per table sweep.
	Events *telemetry.EventLog
	// Progress > 0 forwards a progress-line interval to every campaign;
	// see core.CampaignOptions.Progress.
	Progress time.Duration
	// ProgressWriter receives the progress lines; nil means os.Stderr.
	ProgressWriter io.Writer
}

// span times one table sweep: started on entry, the returned func records
// an experiment_<name>_ns span in the registry and emits a span event.
// Both sinks detached makes it a no-op.
func (o Options) span(name string) func() {
	if o.Telemetry == nil && o.Events == nil {
		return func() {}
	}
	sp := o.Telemetry.StartSpan("experiment_" + name + "_ns")
	start := time.Now()
	return func() {
		sp.End()
		if o.Events != nil {
			o.Events.Emit(telemetry.Event{Kind: telemetry.EventSpan, Name: name,
				ElapsedNs: time.Since(start).Nanoseconds()})
		}
	}
}

func (o Options) bitStep() int {
	if o.Quick {
		return 8
	}
	return 1
}

// maxRunCycles bounds any single simulation (watchdog).
const maxRunCycles = 6_000_000

// coreName maps core IDs to the paper's labels.
func coreName(id int) string { return string(rune('A' + id)) }

func dataBaseFor(id int) uint32 { return mem.SRAMBase + 0x2000*uint32(id+1) }

// positions returns the three flash placements of the Table II scenarios.
func positions() []uint32 { return []uint32{soc.CodeLow, soc.CodeMid, soc.CodeHigh} }

// baseConfig returns an SoC configuration with the first n cores active.
func baseConfig(n int, cached bool) soc.Config {
	cfg := soc.DefaultConfig()
	for id := 0; id < soc.NumCores; id++ {
		cfg.Cores[id].Active = id < n
		cfg.Cores[id].CachesOn = cached
		cfg.Cores[id].WriteAlloc = true
	}
	return cfg
}

// ---------------------------------------------------------------------------
// Table I: stalls due to the memory subsystem vs number of active cores.

// TableIRow is one row of Table I.
type TableIRow struct {
	ActiveCores int
	IFStalls    int64 // clock cycles, summed over active cores, averaged over phases
	MemStalls   int64
}

// TableI runs the generic STL in parallel on 1..3 cores (no caches, as in
// the paper's baseline) and reports the stall cycles counted by the
// performance counters, averaged across start-phase scenarios.
func TableI(o Options) ([]TableIRow, error) {
	defer o.span("table1")()
	phases := [][soc.NumCores]int{{0, 0, 0}, {0, 11, 23}, {7, 0, 17}}
	if o.Quick {
		phases = phases[:2]
	}
	var rows []TableIRow
	for n := 1; n <= soc.NumCores; n++ {
		var ifSum, memSum int64
		for _, ph := range phases {
			cfg := baseConfig(n, false)
			var jobs [soc.NumCores]*core.CoreJob
			for id := 0; id < n; id++ {
				cfg.Cores[id].StartDelay = ph[id]
				var routines []*sbst.Routine
				routines = append(routines, sbst.StandardSTL(dataBaseFor(id))...)
				jobs[id] = &core.CoreJob{
					Routines: routines,
					Strategy: core.Plain{},
					CodeBase: positions()[id%3] + uint32(id)*0x4000,
				}
			}
			results, _, err := core.RunJobs(cfg, jobs, maxRunCycles)
			if err != nil {
				return nil, err
			}
			for id := 0; id < n; id++ {
				if !results[id].OK {
					return nil, fmt.Errorf("experiments: table I: core %d failed", id)
				}
				ifSum += int64(results[id].IFStall)
				memSum += int64(results[id].MemStall)
			}
		}
		rows = append(rows, TableIRow{
			ActiveCores: n,
			IFStalls:    ifSum / int64(len(phases)),
			MemStalls:   memSum / int64(len(phases)),
		})
	}
	return rows, nil
}

// RenderTableI formats the rows like the paper's Table I.
func RenderTableI(rows []TableIRow) string {
	var sb strings.Builder
	sb.WriteString("Table I: multi-core STL execution, stalls due to the memory subsystem\n")
	sb.WriteString("# Active Cores | IF stalls [cycles] | MEM stalls [cycles]\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%14d | %18d | %19d\n", r.ActiveCores, r.IFStalls, r.MemStalls)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Shared fault-campaign plumbing.

// scenarioSpec is one multi-core SoC configuration of the Table II sweep.
type scenarioSpec struct {
	active int    // number of active cores
	pos    uint32 // code position of the core under test
	pad    uint32 // alignment padding in bytes
}

func tableIIScenarios(quick bool) []scenarioSpec {
	var out []scenarioSpec
	for _, active := range []int{2, 3} {
		for _, pos := range positions() {
			for _, pad := range []uint32{0, 8, 16} {
				out = append(out, scenarioSpec{active, pos, pad})
			}
		}
	}
	if quick {
		// Keep a diverse subset: both core counts, all positions.
		out = []scenarioSpec{
			{2, soc.CodeLow, 0}, {3, soc.CodeMid, 8},
			{3, soc.CodeHigh, 16}, {3, soc.CodeLow, 8},
		}
	}
	return out
}

// campaign runs a fault-free multi-core scenario to record golden signature
// and bus traffic, then fault-simulates the core under test against the
// replayed traffic.
type campaign struct {
	underTest int
	cfg       soc.Config // configuration for the golden (full) run
	jobs      [soc.NumCores]*core.CoreJob
	opts      Options
}

func newCampaign(o Options, underTest int, cfg soc.Config, jobs [soc.NumCores]*core.CoreJob) campaign {
	return campaign{underTest: underTest, cfg: cfg, jobs: jobs, opts: o}
}

func (c campaign) run(sites []fault.Site) (fault.Report, error) {
	// Golden full-system run with traffic recording.
	var rec *bus.Recorder
	results, _, err := core.RunJobsSetup(c.cfg, c.jobs, maxRunCycles, nil, func(s *soc.SoC) {
		rec = s.AttachRecorder(c.underTest)
	})
	if err != nil {
		return fault.Report{}, err
	}
	golden := results[c.underTest]
	if !golden.OK {
		return fault.Report{}, fmt.Errorf("experiments: golden run failed on core %d", c.underTest)
	}
	traffic := rec.EventsByMaster()
	budget := golden.Cycles*8 + 20_000

	// Per-fault environment: only the core under test simulated, the other
	// cores' bus pressure replayed.
	cfg := c.cfg
	cfg.Replay = traffic

	opt := core.CampaignOptions{Workers: c.opts.Workers, Reference: c.opts.Reference,
		CheckpointInterval: c.opts.CheckpointInterval,
		Telemetry:          c.opts.Telemetry, Events: c.opts.Events,
		Progress: c.opts.Progress, ProgressWriter: c.opts.ProgressWriter}
	if c.opts.JournalDir != "" {
		// One content-addressed journal per campaign: resuming an
		// interrupted sweep settles finished campaigns entirely from disk.
		header, err := core.CampaignFingerprint(cfg, c.underTest, c.jobs[c.underTest], sites, budget)
		if err != nil {
			return fault.Report{}, err
		}
		opt.Journal = filepath.Join(c.opts.JournalDir, "campaign-"+header.Key()+".journal")
		opt.Resume = true
	}
	rep, err := core.RunCampaignOpts(cfg, c.underTest, c.jobs[c.underTest], sites, budget, opt)
	if err != nil {
		return fault.Report{}, err
	}
	if !rep.GoldenOK {
		return rep, fmt.Errorf("experiments: replay golden run failed on core %d", c.underTest)
	}
	// Note: fault detection compares faulty runs against the golden of the
	// same replayed environment, so the campaign is internally consistent
	// even though replayed arbitration can differ slightly from the full
	// system (replay masters occupy different round-robin slots).
	return rep, nil
}

// forwardingJobs builds per-core forwarding-test jobs; the core under test
// sits at spec.pos with spec.pad, the other cores at the remaining
// positions.
func forwardingJobs(underTest int, spec scenarioSpec, strat func(id int) core.Strategy, withPC bool) [soc.NumCores]*core.CoreJob {
	var jobs [soc.NumCores]*core.CoreJob
	pos := positions()
	slot := 0
	for id := 0; id < spec.active; id++ {
		var base uint32
		var pad uint32
		if id == underTest {
			base, pad = spec.pos, spec.pad
		} else {
			if pos[slot] == spec.pos {
				slot++
			}
			base = pos[slot%len(pos)] + 0x10000
			slot++
		}
		jobs[id] = &core.CoreJob{
			Routine: sbst.NewForwardingTest(sbst.ForwardingOptions{
				DataBase:         dataBaseFor(id),
				WithPerfCounters: withPC,
				Pairs64:          id == 2,
			}),
			Strategy: strat(id),
			CodeBase: base,
			AlignPad: pad,
		}
	}
	return jobs
}

// ---------------------------------------------------------------------------
// Table II: forwarding-logic fault coverage, min-max without caches versus
// stable coverage with the cache-based strategy.

// TableIIRow is one row of Table II.
type TableIIRow struct {
	Core      string
	Faults    int
	MinFC     float64 // no caches, no PCs: minimum over scenarios
	MaxFC     float64
	CacheFC   float64 // cache-based strategy
	Scenarios int
}

// TableII fault-grades the forwarding logic of each core.
func TableII(o Options) ([]TableIIRow, error) {
	defer o.span("table2")()
	var rows []TableIIRow
	for id := 0; id < soc.NumCores; id++ {
		bits := 32
		if id == 2 {
			bits = 64
		}
		sites := fault.ForwardingLogic(fault.ListOptions{DataBits: bits, BitStep: o.bitStep()})
		fault.SortSites(sites)

		// Without caches, without performance counters: coverage per
		// scenario.
		var reports []fault.Report
		for _, spec := range tableIIScenarios(o.Quick) {
			if id >= spec.active {
				continue // core not active in this scenario
			}
			c := newCampaign(o, id, baseConfig(spec.active, false),
				forwardingJobs(id, spec, func(int) core.Strategy { return core.Plain{} }, false))
			rep, err := c.run(sites)
			if err != nil {
				return nil, fmt.Errorf("core %s: %w", coreName(id), err)
			}
			reports = append(reports, rep)
		}
		mm := fault.NewMinMax(reports)

		// With the cache-based strategy (still no PCs, matching the
		// paper's column): one representative multi-core scenario.
		spec := scenarioSpec{active: 3, pos: soc.CodeLow, pad: 0}
		c := newCampaign(o, id, baseConfig(3, true),
			forwardingJobs(id, spec,
				func(int) core.Strategy { return core.CacheBased{WriteAllocate: true} }, false))
		cacheRep, err := c.run(sites)
		if err != nil {
			return nil, fmt.Errorf("core %s cached: %w", coreName(id), err)
		}

		rows = append(rows, TableIIRow{
			Core:      coreName(id),
			Faults:    len(sites),
			MinFC:     mm.Min,
			MaxFC:     mm.Max,
			CacheFC:   cacheRep.Coverage(),
			Scenarios: len(reports),
		})
	}
	return rows, nil
}

// RenderTableII formats the rows like the paper's Table II.
func RenderTableII(rows []TableIIRow) string {
	var sb strings.Builder
	sb.WriteString("Table II: forwarding logic fault simulation results\n")
	sb.WriteString("Core | # of Faults | min - max FC [%] (no caches, no PCs) | FC [%] (caches, no PCs)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%4s | %11d | %17.2f - %.2f | %23.2f\n",
			r.Core, r.Faults, r.MinFC, r.MaxFC, r.CacheFC)
	}
	return sb.String()
}
