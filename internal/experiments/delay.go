package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/soc"
)

// Delay-fault extension — the paper's future-work note made concrete:
// transition faults on the forwarding data lines need a *timed two-pattern
// sequence* through the same path, so their coverage is even more exposed
// to issue-packet reshuffling than stuck-at coverage. This experiment runs
// the Table II sweep with the transition-fault universe.

// DelayRow is one core's delay-fault results.
type DelayRow struct {
	Core      string
	Faults    int
	MinFC     float64 // plain multi-core execution, across scenarios
	MaxFC     float64
	CacheFC   float64 // cache-based strategy
	Scenarios int
}

// DelayFaults runs the transition-fault campaigns.
func DelayFaults(o Options) ([]DelayRow, error) {
	defer o.span("delay")()
	var rows []DelayRow
	for id := 0; id < soc.NumCores; id++ {
		bits := 32
		if id == 2 {
			bits = 64
		}
		step := o.bitStep() * 2 // transition campaigns run two kinds per line
		sites := fault.TransitionFaults(fault.ListOptions{DataBits: bits, BitStep: step})
		fault.SortSites(sites)

		var reports []fault.Report
		for _, spec := range tableIIScenarios(o.Quick) {
			if id >= spec.active {
				continue
			}
			c := newCampaign(o, id, baseConfig(spec.active, false),
				forwardingJobs(id, spec, func(int) core.Strategy { return core.Plain{} }, false))
			rep, err := c.run(sites)
			if err != nil {
				return nil, fmt.Errorf("delay core %s: %w", coreName(id), err)
			}
			reports = append(reports, rep)
		}
		mm := fault.NewMinMax(reports)

		spec := scenarioSpec{active: 3, pos: soc.CodeLow, pad: 0}
		c := newCampaign(o, id, baseConfig(3, true),
			forwardingJobs(id, spec,
				func(int) core.Strategy { return core.CacheBased{WriteAllocate: true} }, false))
		cacheRep, err := c.run(sites)
		if err != nil {
			return nil, fmt.Errorf("delay core %s cached: %w", coreName(id), err)
		}
		rows = append(rows, DelayRow{
			Core:      coreName(id),
			Faults:    len(sites),
			MinFC:     mm.Min,
			MaxFC:     mm.Max,
			CacheFC:   cacheRep.Coverage(),
			Scenarios: len(reports),
		})
	}
	return rows, nil
}

// RenderDelay formats the extension results.
func RenderDelay(rows []DelayRow) string {
	var sb strings.Builder
	sb.WriteString("Extension (paper future work): transition/delay faults on the forwarding lines\n")
	sb.WriteString("Core | # of Faults | min - max FC [%] (no caches) | FC [%] (cache-based)\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%4s | %11d | %12.2f - %.2f | %20.2f\n",
			r.Core, r.Faults, r.MinFC, r.MaxFC, r.CacheFC)
	}
	sb.WriteString("(two-pattern sequences only survive intact inside the execution loop,\n")
	sb.WriteString(" so the strategy's advantage grows versus the stuck-at campaign)\n")
	return sb.String()
}
