package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/sbst"
	"repro/internal/soc"
)

// ---------------------------------------------------------------------------
// Table III: ICU and HDCU fault coverage, single-core without caches versus
// multi-core with the cache-based strategy; plain multi-core execution
// fails outright.

// TableIIIRow is one row of Table III.
type TableIIIRow struct {
	Core   string
	Module string // "ICU" or "HDCU"
	Faults int
	// SingleFC: plain execution, single core, no caches (the paper's
	// baseline where signatures are stable but flash latency limits
	// excitation).
	SingleFC float64
	// MultiCacheFC: three active cores, cache-based strategy.
	MultiCacheFC float64
	// MultiNoCacheFails reports that plain multi-core execution never
	// reproduced the single-core golden signature (the test "inevitably
	// failed in any configuration").
	MultiNoCacheFails bool
}

// tableIIIICUReps keeps the ICU routine short for fault grading (each rep
// adds interrupt round-trips without adding new fault excitation).
const tableIIIICUReps = 2

func icuRoutineFor(id int) *sbst.Routine {
	return sbst.NewICUTest(sbst.ICUOptions{DataBase: dataBaseFor(id), TriggerReps: tableIIIICUReps})
}

func hdcuRoutineFor(id int) *sbst.Routine {
	return sbst.NewHDCUTest(sbst.HDCUOptions{DataBase: dataBaseFor(id)})
}

// TableIII fault-grades the interrupt control unit and hazard detection
// control unit per core.
func TableIII(o Options) ([]TableIIIRow, error) {
	defer o.span("table3")()
	type module struct {
		name  string
		mk    func(id int) *sbst.Routine
		sites func(id int) []fault.Site
	}
	modules := []module{
		{
			name: "ICU",
			mk:   icuRoutineFor,
			sites: func(id int) []fault.Site {
				return fault.ICU(fault.ListOptions{BitStep: 1})
			},
		},
		{
			name: "HDCU",
			mk:   hdcuRoutineFor,
			sites: func(id int) []fault.Site {
				s := fault.HDCU(fault.ListOptions{BitStep: 1})
				return append(s, fault.PerfCounters(fault.ListOptions{BitStep: o.bitStep()})...)
			},
		},
	}

	var rows []TableIIIRow
	for id := 0; id < soc.NumCores; id++ {
		for _, m := range modules {
			sites := m.sites(id)
			fault.SortSites(sites)
			if o.Quick {
				sites = fault.Sample(sites, 2)
			}

			// Single-core, no caches, plain execution.
			single := newCampaign(o, id, singleCoreConfig(id, false),
				moduleJobs(id, 1, m.mk, func(int) core.Strategy { return core.Plain{} }))
			singleRep, err := single.run(sites)
			if err != nil {
				return nil, fmt.Errorf("table III %s core %s single: %w", m.name, coreName(id), err)
			}

			// Multi-core, cache-based.
			multi := newCampaign(o, id, baseConfig(3, true),
				moduleJobs(id, 3, m.mk,
					func(int) core.Strategy { return core.CacheBased{WriteAllocate: true} }))
			multiRep, err := multi.run(sites)
			if err != nil {
				return nil, fmt.Errorf("table III %s core %s multi: %w", m.name, coreName(id), err)
			}

			fails, err := multiNoCacheFails(id, m.mk, singleRep.Golden, o)
			if err != nil {
				return nil, err
			}

			rows = append(rows, TableIIIRow{
				Core:              coreName(id),
				Module:            m.name,
				Faults:            len(sites),
				SingleFC:          singleRep.Coverage(),
				MultiCacheFC:      multiRep.Coverage(),
				MultiNoCacheFails: fails,
			})
		}
	}
	return rows, nil
}

// singleCoreConfig activates only core id.
func singleCoreConfig(id int, cached bool) soc.Config {
	cfg := soc.DefaultConfig()
	for k := 0; k < soc.NumCores; k++ {
		cfg.Cores[k].Active = k == id
		cfg.Cores[k].CachesOn = cached
		cfg.Cores[k].WriteAlloc = true
	}
	return cfg
}

// moduleJobs builds jobs where every active core runs its own copy of the
// module routine.
func moduleJobs(underTest, active int, mk func(id int) *sbst.Routine, strat func(id int) core.Strategy) [soc.NumCores]*core.CoreJob {
	var jobs [soc.NumCores]*core.CoreJob
	n := active
	if underTest >= n {
		n = underTest + 1
	}
	for id := 0; id < n; id++ {
		if active == 1 && id != underTest {
			continue
		}
		jobs[id] = &core.CoreJob{
			Routine:  mk(id),
			Strategy: strat(id),
			CodeBase: positions()[id%3] + uint32(id)*0x8000,
		}
	}
	return jobs
}

// multiNoCacheFails checks that across several plain multi-core
// configurations the routine never reproduces the single-core golden.
func multiNoCacheFails(id int, mk func(id int) *sbst.Routine, golden uint32, o Options) (bool, error) {
	pads := []uint32{0, 8}
	if o.Quick {
		pads = pads[:1]
	}
	for _, pad := range pads {
		jobs := moduleJobs(id, 3, mk, func(int) core.Strategy { return core.Plain{} })
		for _, j := range jobs {
			if j != nil {
				j.AlignPad = pad
			}
		}
		results, _, err := core.RunJobs(baseConfig(3, false), jobs, maxRunCycles)
		if err != nil {
			return false, err
		}
		if results[id].Signature == golden {
			return false, nil
		}
	}
	return true, nil
}

// RenderTableIII formats the rows like the paper's Table III.
func RenderTableIII(rows []TableIIIRow) string {
	var sb strings.Builder
	sb.WriteString("Table III: ICU and HDCU fault simulation results\n")
	sb.WriteString("Core | Module | # of Faults | FC single-core no caches [%] | FC multi-core with caches [%] | plain multi-core\n")
	for _, r := range rows {
		status := "FAILS (unstable signature)"
		if !r.MultiNoCacheFails {
			status = "unexpectedly passed"
		}
		fmt.Fprintf(&sb, "%4s | %6s | %11d | %28.2f | %29.2f | %s\n",
			r.Core, r.Module, r.Faults, r.SingleFC, r.MultiCacheFC, status)
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table IV: TCM-based versus cache-based execution of the imprecise
// interrupt routine.

// TableIVRow is one strategy's cost line.
type TableIVRow struct {
	Approach       string
	MemoryOverhead int   // bytes permanently reserved
	ExecutionTime  int64 // clock cycles
	Signature      uint32
}

// TableIV compares the two deterministic execution strategies on the ICU
// routine (single core, as in the paper's measurement).
func TableIV(o Options) ([]TableIVRow, error) {
	defer o.span("table4")()
	mk := func() *sbst.Routine {
		return sbst.NewICUTest(sbst.ICUOptions{DataBase: dataBaseFor(0)})
	}
	var rows []TableIVRow

	tcm := core.TCMBased{CoreID: 0}
	tcmRes, _, err := core.RunSingle(singleCoreConfig(0, false), 0,
		&core.CoreJob{Routine: mk(), Strategy: tcm, CodeBase: soc.CodeLow}, maxRunCycles)
	if err != nil {
		return nil, err
	}
	if !tcmRes.OK {
		return nil, fmt.Errorf("table IV: tcm run failed")
	}
	tcmOv, err := tcm.MemoryOverhead(mk())
	if err != nil {
		return nil, err
	}
	rows = append(rows, TableIVRow{
		Approach: "TCM-based", MemoryOverhead: tcmOv,
		ExecutionTime: tcmRes.Cycles, Signature: tcmRes.Signature,
	})

	cb := core.CacheBased{WriteAllocate: true}
	cbRes, _, err := core.RunSingle(singleCoreConfig(0, true), 0,
		&core.CoreJob{Routine: mk(), Strategy: cb, CodeBase: soc.CodeLow}, maxRunCycles)
	if err != nil {
		return nil, err
	}
	if !cbRes.OK {
		return nil, fmt.Errorf("table IV: cache run failed")
	}
	rows = append(rows, TableIVRow{
		Approach: "Cache-based", MemoryOverhead: 0,
		ExecutionTime: cbRes.Cycles, Signature: cbRes.Signature,
	})
	return rows, nil
}

// RenderTableIV formats the rows like the paper's Table IV.
func RenderTableIV(rows []TableIVRow) string {
	var sb strings.Builder
	sb.WriteString("Table IV: TCM-based versus cache-based approaches (imprecise interrupts routine)\n")
	sb.WriteString("Approach    | Overall memory overhead [bytes] | Execution time [clock cycles]\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-11s | %31d | %29d\n", r.Approach, r.MemoryOverhead, r.ExecutionTime)
	}
	if len(rows) == 2 && rows[0].Signature == rows[1].Signature {
		fmt.Fprintf(&sb, "(both strategies produce the same signature %08x and hence the same fault coverage)\n",
			rows[0].Signature)
	}
	return sb.String()
}
