// Package experiments regenerates every table and figure of the paper's
// evaluation (Section IV). Each experiment returns structured rows plus a
// renderer; cmd/repro prints them and the repository-root benchmarks time
// them. Absolute numbers reflect this repository's architectural simulator
// and fault universe, not the paper's proprietary netlist; the shapes —
// who wins, by what factor, where behaviour flips — are the reproduction
// target (see EXPERIMENTS.md).
package experiments
