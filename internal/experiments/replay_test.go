package experiments

import (
	"testing"

	"repro/internal/bus"
	"repro/internal/core"
	"repro/internal/soc"
)

// TestReplayPreservesDataflowSignature validates the fault campaigns'
// central approximation: replacing the other cores with replayed bus
// traffic changes arbitration details but must not change the core under
// test's *dataflow* signature (the no-performance-counter forwarding
// routine computes pure dataflow, so its signature is timing-invariant by
// the differential-test guarantee).
func TestReplayPreservesDataflowSignature(t *testing.T) {
	spec := scenarioSpec{active: 3, pos: soc.CodeMid, pad: 8}
	jobs := forwardingJobs(0, spec, func(int) core.Strategy { return core.Plain{} }, false)

	var rec *bus.Recorder
	full, _, err := core.RunJobsSetup(baseConfig(3, false), jobs, maxRunCycles, nil,
		func(s *soc.SoC) { rec = s.AttachRecorder(0) })
	if err != nil {
		t.Fatal(err)
	}
	if !full[0].OK {
		t.Fatal("full run failed")
	}

	cfg := baseConfig(3, false)
	cfg.Replay = rec.EventsByMaster()
	for id := 0; id < soc.NumCores; id++ {
		cfg.Cores[id].Active = id == 0
	}
	var solo [soc.NumCores]*core.CoreJob
	solo[0] = jobs[0]
	replayed, _, err := core.RunJobs(cfg, solo, maxRunCycles)
	if err != nil {
		t.Fatal(err)
	}
	if !replayed[0].OK {
		t.Fatal("replayed run failed")
	}
	if replayed[0].Signature != full[0].Signature {
		t.Errorf("replay changed the dataflow signature: %08x vs %08x",
			replayed[0].Signature, full[0].Signature)
	}
	// The replay must actually generate contention, not run the core solo.
	if replayed[0].IFStall*10 < full[0].IFStall*5 {
		t.Errorf("replayed contention too weak: ifstall %d vs full %d",
			replayed[0].IFStall, full[0].IFStall)
	}
}

func TestRendersContainHeaders(t *testing.T) {
	if s := RenderTableI([]TableIRow{{1, 10, 5}}); len(s) == 0 {
		t.Error("empty render")
	}
	r2 := RenderTableII([]TableIIRow{{Core: "A", Faults: 10, MinFC: 1, MaxFC: 2, CacheFC: 3}})
	r3 := RenderTableIII([]TableIIIRow{{Core: "A", Module: "ICU", Faults: 5, MultiNoCacheFails: true}})
	r4 := RenderTableIV([]TableIVRow{{Approach: "TCM-based"}, {Approach: "Cache-based"}})
	rd := RenderDelay([]DelayRow{{Core: "A"}})
	for _, s := range []string{r2, r3, r4, rd} {
		if len(s) < 40 {
			t.Errorf("suspiciously short render: %q", s)
		}
	}
}
