package experiments

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/sbst"
	"repro/internal/soc"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// Figure 1: the forwarding path exercised by back-to-back issue (a) and
// broken by multi-core fetch delays (b), as pipeline diagrams.

// Figure1Result carries both diagrams.
type Figure1Result struct {
	DiagramA       string // forwarding exercised
	DiagramB       string // forwarding broken
	ForwardingUsed bool   // in scenario (a)
	ForwardingLost bool   // in scenario (b)
}

// figure1Routine is the paper's two-instruction fragment, placed so that
// producer and consumer share one flash line (aligned) or straddle a line
// boundary (pad), preceded by filler so the pair is mid-stream.
func figure1Routine(straddle bool) *sbst.Routine {
	r := &sbst.Routine{Name: "fig1", Target: "forwarding", DataBase: dataBaseFor(0),
		DataWords: []uint32{0x5A5A5A5A}}
	r.Blocks = []sbst.Block{{Name: "pair", Emit: func(b *asm.Builder) {
		b.Load(isa.OpLW, 5, isa.RegBase, 0)
		b.Nop()
		b.Nop()
		b.Nop()
		b.Align(16)
		b.Nop()
		b.Nop()
		if straddle {
			// Push the producer to the last word of the line so the
			// consumer sits behind a fetch boundary.
			b.Nop()
		}
		b.Label("fig1_pair")
		b.R(isa.OpOR, 1, 5, isa.RegZero) // producer (the paper's first add)
		b.R(isa.OpADD, 2, 1, 1)          // consumer: EX-to-EX dependent
		b.Label("fig1_end")
		b.Misr(2)
	}}}
	return r
}

// Figure1 reproduces both halves of the figure.
func Figure1(o Options) (*Figure1Result, error) {
	run := func(active int, straddle bool) (*trace.Recorder, error) {
		job := &core.CoreJob{
			Routine:  figure1Routine(straddle),
			Strategy: core.Plain{},
			CodeBase: soc.CodeLow,
		}
		var jobs [soc.NumCores]*core.CoreJob
		jobs[0] = job
		cfg := baseConfig(active, false)
		for id := 1; id < active; id++ {
			jobs[id] = &core.CoreJob{
				Routines: sbst.StandardSTL(dataBaseFor(id)),
				Strategy: core.Plain{},
				CodeBase: positions()[id] + uint32(id)*0x4000,
			}
			// Keep contending cores running past core 0's finish.
			cfg.Cores[id].StartDelay = 0
		}
		// Resolve the instrumented PC window from a dry assembly.
		b := asm.NewBuilder()
		if err := job.Strategy.Emit(b, job.Routine); err != nil {
			return nil, err
		}
		prog, err := b.Assemble(job.CodeBase)
		if err != nil {
			return nil, err
		}
		lo, err := prog.Addr("fig1_pair")
		if err != nil {
			return nil, err
		}
		hi, err := prog.Addr("fig1_end")
		if err != nil {
			return nil, err
		}
		rec := trace.NewRecorder(lo, hi)
		results, _, err := core.RunJobsTraced(cfg, jobs, maxRunCycles, rec.Fn())
		if err != nil {
			return nil, err
		}
		if results[0] == nil || results[0].Wedged {
			return nil, fmt.Errorf("figure 1 run failed")
		}
		return rec, nil
	}

	// (a) single core: the aligned pair is fetched in one flash line and
	// dual-issues; the consumer takes a forwarding path.
	recA, err := run(1, false)
	if err != nil {
		return nil, err
	}
	// (b) three cores with the pair straddling a fetch-line boundary:
	// contention delays the second line far beyond the pipeline depth and
	// the consumer reads the register file instead of the bypass.
	recB, err := run(3, true)
	if err != nil {
		return nil, err
	}
	res := &Figure1Result{
		DiagramA: recA.Render(),
		DiagramB: recB.Render(),
	}
	// Find the consumer PC in each recording via forwarding use.
	res.ForwardingUsed = anyForwarding(recA)
	res.ForwardingLost = !anyForwarding(recB)
	return res, nil
}

func anyForwarding(rec *trace.Recorder) bool {
	for pc := rec.Lo; pc < rec.Hi; pc += 4 {
		if rec.ForwardingUsed(pc) {
			return true
		}
	}
	return false
}

// RenderFigure1 formats the result.
func RenderFigure1(r *Figure1Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 1(a): single-core execution, forwarding path exercised\n")
	sb.WriteString(r.DiagramA)
	fmt.Fprintf(&sb, "forwarding exercised: %v\n\n", r.ForwardingUsed)
	sb.WriteString("Figure 1(b): triple-core execution, dependent pair split by fetch stalls\n")
	sb.WriteString(r.DiagramB)
	fmt.Fprintf(&sb, "forwarding broken: %v\n", r.ForwardingLost)
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 2: structure of the single-core routine versus the cache-based
// multi-core version.

// Figure2Result quantifies the transformation.
type Figure2Result struct {
	Routine         string
	SingleCoreBytes int
	WrappedBytes    int
	OverheadBytes   int
	Chunks          int
	Iterations      int
	FitsICache      bool
}

// Figure2 reports the structural comparison for the ICU routine (any
// routine would do; the paper's figure is schematic).
func Figure2(o Options) (*Figure2Result, error) {
	r := sbst.NewICUTest(sbst.ICUOptions{DataBase: dataBaseFor(0)})
	plainSize, err := programSize(core.Plain{}, r)
	if err != nil {
		return nil, err
	}
	strat := core.CacheBased{WriteAllocate: true}
	wrapped, err := programSize(strat, r)
	if err != nil {
		return nil, err
	}
	return &Figure2Result{
		Routine:         r.Name,
		SingleCoreBytes: plainSize,
		WrappedBytes:    wrapped,
		OverheadBytes:   wrapped - plainSize,
		Chunks:          1,
		Iterations:      2,
		FitsICache:      wrapped <= 8<<10,
	}, nil
}

func programSize(s core.Strategy, r *sbst.Routine) (int, error) {
	b := asm.NewBuilder()
	if err := s.Emit(b, r); err != nil {
		return 0, err
	}
	p, err := b.Assemble(0x1000)
	if err != nil {
		return 0, err
	}
	return p.Size(), nil
}

// RenderFigure2 formats the result.
func RenderFigure2(r *Figure2Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 2: single-core routine vs cache-based multi-core structure\n")
	fmt.Fprintf(&sb, "routine %q:\n", r.Routine)
	fmt.Fprintf(&sb, "  (a) single-core version:        %5d bytes  [init | test program body]\n", r.SingleCoreBytes)
	fmt.Fprintf(&sb, "  (b) cache-based version:        %5d bytes  [init | invalidate | loading loop + execution loop]\n", r.WrappedBytes)
	fmt.Fprintf(&sb, "  wrapper overhead:               %5d bytes (%d chunk(s), %d loop iterations)\n",
		r.OverheadBytes, r.Chunks, r.Iterations)
	fmt.Fprintf(&sb, "  fits the 8 kB instruction cache: %v\n", r.FitsICache)
	fmt.Fprintf(&sb, "  memory footprint of the routine is unchanged: the loop re-executes the same image\n")
	return sb.String()
}
