package sbst

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Forwarding-logic test generator, after the dual-issue SBST algorithm of
// Bernardi et al. [19]: it exhaustively exercises every forwarding path of
// the dual-issue pipeline — interpipeline (producer and consumer in the
// same issue packet, the cascade path) and intrapipeline (producer in one
// of the two previous packets, the EX/MEM- and MEM/WB-latch paths) — for
// every consumer lane and operand, driving complementary data patterns
// through each path and folding every consumer result into the software
// MISR signature.
//
// Packet discipline: the generator emits instructions strictly in
// co-issueable pairs so issue-packet parity is known by construction; this
// is exactly the property bus-contention fetch stalls destroy, which is why
// the routine's fault coverage becomes scenario-dependent without the
// cache-based strategy.

// ForwardingOptions configures generation.
type ForwardingOptions struct {
	DataBase uint32 // pattern table address (SRAM)
	// WithPerfCounters folds pipeline stall/dual-issue counter deltas into
	// the signature (the complete algorithm of [19]); disable for the
	// Table II variant.
	WithPerfCounters bool
	// Pairs64 adds 64-bit paired-register path groups (core C only).
	Pairs64 bool
	// DummyLoadAfterStore follows every store with a load of the same
	// location, the paper's fix-up for no-write-allocate data caches.
	DummyLoadAfterStore bool
}

// forwarding test register map (within the r1..r22 window):
const (
	fwdP   = 1 // pattern value
	fwdN   = 2 // complemented pattern
	fwdT0  = 3 // producer copies / consumer results
	fwdT1  = 4
	fwdT2  = 6
	fwdT3  = 8
	fwdC0  = 10 // consumer destinations
	fwdC1  = 12
	fwdF0  = 14 // fillers
	fwdF1  = 16
	fwdCnt = 17 // counter snapshot base (r17..r20)
)

// sigCheckpointOff is the write-only signature checkpoint slot in the
// routine's scratch area.
const sigCheckpointOff = int32(96)

var fwdPatterns = []uint32{
	0x00000000, 0xFFFFFFFF, 0xAAAAAAAA, 0x55555555,
	0x0F0F0F0F, 0xC3A50FF0,
}

// NewForwardingTest builds the forwarding-logic routine.
func NewForwardingTest(o ForwardingOptions) *Routine {
	r := &Routine{
		Name:             "forwarding",
		Target:           "forwarding",
		DataBase:         o.DataBase,
		UsesPerfCounters: o.WithPerfCounters,
	}
	// Pattern table: value then complement, pairwise.
	for _, p := range fwdPatterns {
		r.DataWords = append(r.DataWords, p, ^p)
	}
	r.ScratchBytes = 96

	r.Blocks = append(r.Blocks, RegInitBlock())
	if o.WithPerfCounters {
		r.Blocks = append(r.Blocks, Block{
			Name: "pc-begin",
			Emit: func(b *asm.Builder) { emitCounterSnap(b, fwdCnt) },
		})
	}
	for i := range fwdPatterns {
		idx := i
		r.Blocks = append(r.Blocks, Block{
			Name: fmt.Sprintf("pattern%d", idx),
			Emit: func(b *asm.Builder) { emitForwardingGroup(b, idx, o) },
		})
	}
	if o.Pairs64 {
		r.Blocks = append(r.Blocks, Block{
			Name: "pairs64",
			Emit: func(b *asm.Builder) { emitPairGroups(b, o) },
		})
	}
	if o.WithPerfCounters {
		r.Blocks = append(r.Blocks, Block{
			Name: "pc-end",
			Emit: func(b *asm.Builder) { emitCounterDelta(b, fwdCnt) },
		})
	}
	return r
}

// counterSet is the pipeline-stall counter set the complete algorithm of
// [19] folds into the signature: stalls inserted by the hazard unit,
// dual-issue packets, and the fetch- and data-side stall counts. The last
// two are what bus contention inflates, so any multi-core execution outside
// the caches breaks this signature.
var counterSet = []int32{isa.CsrHazStall, isa.CsrIssued2, isa.CsrIFStall, isa.CsrMemStall}

// emitCounterSnap saves the counter set into base..base+3.
func emitCounterSnap(b *asm.Builder, base uint8) {
	for i, csr := range counterSet {
		b.CsrR(base+uint8(i), csr)
	}
}

// emitCounterDelta folds the counter deltas since emitCounterSnap into the
// signature. CSR reads serialise, so packet parity is clean afterwards.
func emitCounterDelta(b *asm.Builder, base uint8) {
	for i, csr := range counterSet {
		b.CsrR(fwdT0, csr)
		b.R(isa.OpSUB, fwdT0, fwdT0, base+uint8(i))
		b.Misr(fwdT0)
	}
}

// emitForwardingGroup emits the full path sweep for pattern index idx.
// Every fragment is an exact number of co-issueable pairs.
func emitForwardingGroup(b *asm.Builder, idx int, o ForwardingOptions) {
	off := int32(idx * 8)

	// Load pattern and complement. The ALU partner keeps parity; it must
	// not touch the loads' destinations.
	b.Load(isa.OpLW, fwdP, isa.RegBase, off)
	b.R(isa.OpOR, fwdF0, fwdF0, isa.RegZero)
	b.Load(isa.OpLW, fwdN, isa.RegBase, off+4)
	b.R(isa.OpOR, fwdF1, fwdF1, isa.RegZero)
	// One packet of distance so the loads retire (their values then come
	// from the register file inside the producers below).
	b.Nop()
	b.Nop()

	// --- Interpipeline: cascade path, lane 1, both operands. ---
	// [or T0 = P][add C0 = T0 + T0]: lane1 reads lane0 through the
	// cascade on A and B.
	b.R(isa.OpOR, fwdT0, fwdP, isa.RegZero)
	b.R(isa.OpADD, fwdC0, fwdT0, fwdT0)
	b.Misr(fwdC0)
	// Cascade on operand B only: [or T1 = N][sub C1 = F0 - T1].
	b.R(isa.OpOR, fwdT1, fwdN, isa.RegZero)
	b.R(isa.OpSUB, fwdC1, fwdF0, fwdT1)
	b.Misr(fwdC1)

	// --- Intrapipeline, distance 1 (EX/MEM latch), consumer lane 0. ---
	// [or T0 = P ; or T1 = N][add C0 = T0 + T1 ; or F0]: consumer lane0
	// takes opA from EXL0 and opB from EXL1.
	b.R(isa.OpOR, fwdT0, fwdP, isa.RegZero)
	b.R(isa.OpOR, fwdT1, fwdN, isa.RegZero)
	b.R(isa.OpADD, fwdC0, fwdT0, fwdT1)
	b.R(isa.OpOR, fwdF0, fwdF1, isa.RegZero)
	b.Misr(fwdC0)
	// Swapped: opA from EXL1, opB from EXL0.
	b.R(isa.OpOR, fwdT0, fwdN, isa.RegZero)
	b.R(isa.OpOR, fwdT1, fwdP, isa.RegZero)
	b.R(isa.OpXOR, fwdC0, fwdT1, fwdT0)
	b.R(isa.OpOR, fwdF0, fwdF1, isa.RegZero)
	b.Misr(fwdC0)

	// --- Intrapipeline, distance 1, consumer lane 1. ---
	// [or T2 = P ; or T3 = N][or F0 ; add C1 = T2 + T3].
	b.R(isa.OpOR, fwdT2, fwdP, isa.RegZero)
	b.R(isa.OpOR, fwdT3, fwdN, isa.RegZero)
	b.R(isa.OpOR, fwdF0, fwdF1, isa.RegZero)
	b.R(isa.OpADD, fwdC1, fwdT2, fwdT3)
	b.Misr(fwdC1)

	// --- Intrapipeline, distance 2 (MEM/WB latch), both lanes, both
	// operands. [producers][independent packet][consumers].
	b.R(isa.OpOR, fwdT0, fwdP, isa.RegZero)
	b.R(isa.OpOR, fwdT1, fwdN, isa.RegZero)
	b.R(isa.OpOR, fwdF0, fwdF1, isa.RegZero)
	b.R(isa.OpOR, fwdF1, fwdF0, isa.RegZero)
	b.R(isa.OpADD, fwdC0, fwdT0, fwdT1) // lane0: MEML0 opA, MEML1 opB
	b.R(isa.OpSUB, fwdC1, fwdT1, fwdT0) // lane1: MEML1 opA, MEML0 opB
	b.Misr(fwdC0)
	b.Misr(fwdC1)

	// --- Remaining lane-1 combinations: opB from EX/MEM lane 0 and opA
	// from MEM/WB lane 0. ---
	// [or T0=P ; or F0][or F1 ; xor C1=F0^T0]: lane1 opA <- EXL1 (F0),
	// opB <- EXL0 (T0).
	b.R(isa.OpOR, fwdT0, fwdP, isa.RegZero)
	b.R(isa.OpOR, fwdF0, fwdF1, isa.RegZero)
	b.R(isa.OpOR, fwdF1, fwdF0, isa.RegZero)
	b.R(isa.OpXOR, fwdC1, fwdF0, fwdT0)
	b.Misr(fwdC1)
	// [or T0=N ; filler][filler ; or T1=P][or T2 ; add C1=T0+T1]: lane1
	// opA <- MEML0 (T0, two packets back, lane 0), opB <- EXL1 (T1).
	b.R(isa.OpOR, fwdT0, fwdN, isa.RegZero)
	b.R(isa.OpOR, fwdF0, fwdF1, isa.RegZero)
	b.R(isa.OpOR, fwdF1, fwdF0, isa.RegZero)
	b.R(isa.OpOR, fwdT1, fwdP, isa.RegZero)
	b.R(isa.OpOR, fwdT2, fwdF0, isa.RegZero)
	b.R(isa.OpADD, fwdC1, fwdT0, fwdT1)
	b.Misr(fwdC1)

	// --- Load-data forwarding (MEM/WB latch carries load data). ---
	// Store the pattern then load it back; consumer two packets later.
	b.Store(isa.OpSW, fwdP, isa.RegBase, int32(len(fwdPatterns)*8)+off)
	b.R(isa.OpOR, fwdF0, fwdF1, isa.RegZero)
	if o.DummyLoadAfterStore {
		b.Load(isa.OpLW, fwdF1, isa.RegBase, int32(len(fwdPatterns)*8)+off)
		b.R(isa.OpOR, fwdF0, fwdF0, isa.RegZero)
	}
	b.Load(isa.OpLW, fwdT0, isa.RegBase, int32(len(fwdPatterns)*8)+off)
	b.R(isa.OpOR, fwdF0, fwdF1, isa.RegZero)
	b.Nop()
	b.Nop()
	b.R(isa.OpADD, fwdC0, fwdT0, fwdT0)
	b.R(isa.OpOR, fwdF1, fwdF0, isa.RegZero)
	b.Misr(fwdC0)

	// --- Load-use (one-bubble stall, then MEM/WB forward). ---
	b.Load(isa.OpLW, fwdT1, isa.RegBase, off)
	b.R(isa.OpOR, fwdF0, fwdF0, isa.RegZero)
	b.R(isa.OpXOR, fwdC1, fwdT1, fwdN) // stalls one cycle, then forwards
	b.R(isa.OpOR, fwdF1, fwdF1, isa.RegZero)
	b.Misr(fwdC1)

	// --- Signature checkpoint. ---
	// STLs periodically spill the running signature so a watchdog can
	// localise a failure. The checkpoint is write-only: this is precisely
	// the store the paper's rule 1 is about — under a no-write-allocate
	// data cache it misses on every execution-loop pass unless a dummy
	// load pulled the line in, and the resulting bus write re-couples the
	// "isolated" loop to bus contention.
	b.Store(isa.OpSW, isa.RegSig, isa.RegBase, sigCheckpointOff)
	b.R(isa.OpOR, fwdF0, fwdF0, isa.RegZero)
	if o.DummyLoadAfterStore {
		b.Load(isa.OpLW, fwdF1, isa.RegBase, sigCheckpointOff)
		b.R(isa.OpOR, fwdF0, fwdF0, isa.RegZero)
	}
}

// emitPairGroups exercises the 64-bit extension of the forwarding network
// (core C): pair producers feed pair consumers at distances 1 and 2
// through the widened EXL0/MEML0 paths. Pair operations issue alone, so
// the cascade and lane-1 paths keep their 32-bit-only excitation — one of
// the structural reasons core C's forwarding coverage trails cores A/B.
func emitPairGroups(b *asm.Builder, o ForwardingOptions) {
	for i := 0; i < len(fwdPatterns); i += 2 {
		off := int32(i * 8)
		// Build a pair (P, ~P) in (r1,r2) and (r3,r4).
		b.Load(isa.OpLW, 1, isa.RegBase, off)
		b.Load(isa.OpLW, 2, isa.RegBase, off+4)
		b.Load(isa.OpLW, 3, isa.RegBase, off+4)
		b.Load(isa.OpLW, 4, isa.RegBase, off)
		b.Nop()
		b.Nop()
		// Distance 1 (EXL0, 64-bit): producer then consumer pair ops.
		b.R(isa.OpORP, 6, 2, 2)  // (r6,r7) = pair(r2)
		b.R(isa.OpADDP, 8, 6, 6) // consumer reads EXL0 64-bit
		b.Misr(8)
		b.Misr(9)
		// Distance 2 (MEML0, 64-bit).
		b.R(isa.OpXORP, 10, 2, 4)
		b.Nop()
		b.Nop()
		b.R(isa.OpSUBP, 12, 10, 2)
		b.Misr(12)
		b.Misr(13)
		// Pair store/load path.
		scratch := int32(len(fwdPatterns)*8) + 32
		b.Store(isa.OpSWP, 8, isa.RegBase, scratch)
		b.Nop()
		if o.DummyLoadAfterStore {
			b.Load(isa.OpLWP, 18, isa.RegBase, scratch)
			b.Nop()
		}
		b.Load(isa.OpLWP, 14, isa.RegBase, scratch)
		b.Nop()
		b.Nop()
		b.Nop()
		b.R(isa.OpADDP, 16, 14, 14)
		b.Misr(16)
		b.Misr(17)
	}
}
