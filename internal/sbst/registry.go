package sbst

import (
	"fmt"
	"sort"
	"strings"
)

// RoutineOptions carries the per-instantiation parameters a registry
// construction can use. Routines ignore fields that do not apply to them.
type RoutineOptions struct {
	// DataBase is the routine's pattern-table/scratch address.
	DataBase uint32
	// CoreID selects core-specific variants (the forwarding test emits
	// 64-bit pair patterns on core C).
	CoreID int
	// TriggerReps bounds the ICU routine's trigger loops (0 = routine
	// default).
	TriggerReps int
}

// routineRegistry is the single name → constructor table shared by
// cmd/stlgen, cmd/faultsim, the conformance harness and the examples.
var routineRegistry = map[string]func(RoutineOptions) *Routine{
	"forwarding": func(o RoutineOptions) *Routine {
		return NewForwardingTest(ForwardingOptions{DataBase: o.DataBase, Pairs64: o.CoreID == 2})
	},
	"hdcu": func(o RoutineOptions) *Routine {
		return NewHDCUTest(HDCUOptions{DataBase: o.DataBase})
	},
	"icu": func(o RoutineOptions) *Routine {
		return NewICUTest(ICUOptions{DataBase: o.DataBase, TriggerReps: o.TriggerReps})
	},
	"alu":       func(o RoutineOptions) *Routine { return NewALUTest(o.DataBase) },
	"shift":     func(o RoutineOptions) *Routine { return NewShiftTest(o.DataBase) },
	"mul":       func(o RoutineOptions) *Routine { return NewMulTest(o.DataBase) },
	"loadstore": func(o RoutineOptions) *Routine { return NewLoadStoreTest(o.DataBase) },
	"branch":    func(o RoutineOptions) *Routine { return NewBranchTest(o.DataBase) },
}

// RoutineNames lists the registered routine names, sorted.
func RoutineNames() []string {
	names := make([]string, 0, len(routineRegistry))
	for name := range routineRegistry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewRoutineByName constructs a library routine by its registered name.
func NewRoutineByName(name string, o RoutineOptions) (*Routine, error) {
	mk, ok := routineRegistry[name]
	if !ok {
		return nil, fmt.Errorf("sbst: unknown routine %q (have %s)",
			name, strings.Join(RoutineNames(), ", "))
	}
	return mk(o), nil
}
