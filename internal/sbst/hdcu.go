package sbst

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Hazard Detection Control Unit test generator: the complete algorithm of
// [19], i.e. the forwarding sweep plus sequences that exercise the hazard
// comparators and control lines, observed through the performance counters
// (wrongly inserted or missing stalls do not corrupt dataflow, so only
// counter deltas reveal them). This routine's signature therefore contains
// pipeline stall counts — exactly the quantity that fluctuates with bus
// contention, which is why the paper's multi-core runs of this routine fail
// outright without the cache-based strategy.

// HDCUOptions configures generation.
type HDCUOptions struct {
	DataBase            uint32
	DummyLoadAfterStore bool
}

// Comparator-diversity register pairs: 6 against registers differing in
// exactly one index bit (6^1=7, 6^2=4, 6^4=2, 6^8=14, 6^16=22), exercising
// each XNOR bit of the load-use comparators in the "almost equal" state
// that detects stuck-at-1 bits.
var hdcuNearMiss = []uint8{7, 4, 2, 14, 22}

// NewHDCUTest builds the HDCU routine.
func NewHDCUTest(o HDCUOptions) *Routine {
	r := &Routine{
		Name:             "hdcu",
		Target:           "hdcu",
		DataBase:         o.DataBase,
		UsesPerfCounters: true,
	}
	r.DataWords = []uint32{0x13572468, 0x87654321, 0xDEADBEEF, 0x0BADF00D}
	r.ScratchBytes = 32

	r.Blocks = append(r.Blocks, RegInitBlock())
	r.Blocks = append(r.Blocks, Block{
		Name: "snap",
		Emit: func(b *asm.Builder) { emitCounterSnap(b, fwdCnt) },
	})
	r.Blocks = append(r.Blocks, Block{
		Name: "loaduse-real",
		Emit: emitLoadUseReal,
	})
	for i := range hdcuNearMiss {
		bit := i
		r.Blocks = append(r.Blocks, Block{
			Name: fmt.Sprintf("loaduse-nearmiss-b%d", bit),
			Emit: func(b *asm.Builder) { emitLoadUseNearMiss(b, hdcuNearMiss[bit]) },
		})
		r.Blocks = append(r.Blocks, Block{
			Name: fmt.Sprintf("cmp-sweep-b%d", bit),
			Emit: func(b *asm.Builder) { emitCmpSweep(b, uint8(bit)) },
		})
	}
	r.Blocks = append(r.Blocks, Block{
		Name: "cmp-realdep",
		Emit: emitCmpRealDeps,
	})
	r.Blocks = append(r.Blocks, Block{
		Name: "dualissue",
		Emit: emitDualIssueChecks,
	})
	r.Blocks = append(r.Blocks, Block{
		Name: "fold",
		Emit: func(b *asm.Builder) { emitHDCUFold(b, fwdCnt) },
	})
	return r
}

// emitLoadUseReal creates genuine load-use hazards in every combination of
// producer lane and consumer lane/operand, each costing exactly one hazard
// stall when the HDCU works.
func emitLoadUseReal(b *asm.Builder) {
	// Producer in lane 0, consumer lane 0 operand A.
	b.Load(isa.OpLW, 6, isa.RegBase, 0)
	b.R(isa.OpOR, 10, 10, isa.RegZero)
	b.R(isa.OpADD, 11, 6, isa.RegZero) // stall; then MEM/WB forward
	b.R(isa.OpOR, 12, 12, isa.RegZero)
	b.Misr(11)
	// Producer lane 0, consumer operand B.
	b.Load(isa.OpLW, 6, isa.RegBase, 4)
	b.R(isa.OpOR, 10, 10, isa.RegZero)
	b.R(isa.OpSUB, 11, isa.RegZero, 6)
	b.R(isa.OpOR, 12, 12, isa.RegZero)
	b.Misr(11)
	// Producer in lane 1 (ALU first, load second in the packet).
	b.R(isa.OpOR, 10, 10, isa.RegZero)
	b.Load(isa.OpLW, 6, isa.RegBase, 8)
	b.R(isa.OpADD, 11, 6, 6)
	b.R(isa.OpOR, 12, 12, isa.RegZero)
	b.Misr(11)
	// Consumer in lane 1.
	b.Load(isa.OpLW, 6, isa.RegBase, 12)
	b.R(isa.OpOR, 10, 10, isa.RegZero)
	b.R(isa.OpOR, 12, 12, isa.RegZero)
	b.R(isa.OpXOR, 11, 12, 6)
	b.Misr(11)
}

// emitLoadUseNearMiss loads into r6 and immediately consumes the register
// whose index differs in one bit. Fault-free this costs zero hazard
// stalls; a stuck-at-1 comparator bit makes the HDCU see a dependency and
// insert one, which the counter delta exposes.
func emitLoadUseNearMiss(b *asm.Builder, other uint8) {
	b.Load(isa.OpLW, 6, isa.RegBase, 0)
	b.R(isa.OpOR, 10, 10, isa.RegZero)
	b.R(isa.OpADD, 11, other, other) // no true dependency on r6
	b.R(isa.OpOR, 12, 12, isa.RegZero)
	b.Misr(11)
}

// emitDualIssueChecks runs known-shape packet sequences whose dual-issue
// count is fixed by construction: cascade pairs (must co-issue), WAW pairs
// (must split) and mixed fillers. The issued2 delta betrays stuck split or
// cascade control lines.
func emitDualIssueChecks(b *asm.Builder) {
	for k := 0; k < 4; k++ {
		// Cascade pair: co-issues, issued2++.
		b.I(isa.OpADDI, 6, isa.RegZero, int32(k+1))
		b.R(isa.OpADD, 7, 6, 6)
		b.Misr(7)
		// WAW pair: must split (issued2 unchanged by these two).
		b.I(isa.OpADDI, 8, isa.RegZero, int32(k+17))
		b.I(isa.OpADDI, 8, isa.RegZero, int32(k+33))
		b.Misr(8)
		// Independent pair: co-issues.
		b.R(isa.OpOR, 9, 8, isa.RegZero)
		b.R(isa.OpOR, 10, 7, isa.RegZero)
		b.Misr(9)
		b.Misr(10)
	}
}

// emitHDCUFold folds the stall/issue counter deltas into the signature.
// Under the cache-based strategy every delta is deterministic; executed
// from contended flash they fluctuate and break the signature.
func emitHDCUFold(b *asm.Builder, base uint8) {
	emitCounterDelta(b, base)
}

// emitCmpSweep is the systematic near-miss sweep for index bit `bit` of
// the hazard comparators, in the style of [19]'s exhaustive dependency
// enumeration. A producer writes r6; a consumer then sources the register
// whose index differs from 6 in exactly that bit, in every structural
// position: each forwarding comparator (producer lane x distance x
// consumer lane x operand), the intra-packet RAW/WAW comparators and both
// load-use candidate slots. Fault-free there is no dependency and the
// consumer reads its register-file value; a stuck-at-1 comparator bit
// fabricates a match, so the consumer receives the producer's value (or a
// spurious stall/split fires), which the signature or the counter deltas
// expose. The matching stuck-at-0 faults are covered by the routine's real
// dependencies going missing.
func emitCmpSweep(b *asm.Builder, bit uint8) {
	s := uint8(6) ^ (1 << bit) // the near-miss register: 7, 4, 2, 14, 22
	v := int32(600) + int32(bit)*7

	// Re-seed the registers this sweep observes (they must hold known,
	// distinct values; fillers use r9/r10 to stay clear of the near-miss
	// set).
	b.I(isa.OpADDI, s, isa.RegZero, int32(s)*0x101)
	b.I(isa.OpADDI, 9, isa.RegZero, 0x123)
	b.I(isa.OpADDI, 10, isa.RegZero, 0x321)
	b.Nop()

	// Distance 1 (EX/MEM latch), producer in lane 0 then lane 1, consumer
	// in both lanes and on both operands.
	for prodLane := 0; prodLane < 2; prodLane++ {
		emitProducer := func() {
			if prodLane == 0 {
				b.I(isa.OpADDI, 6, isa.RegZero, v)
				b.R(isa.OpOR, 9, 10, isa.RegZero)
			} else {
				b.R(isa.OpOR, 9, 10, isa.RegZero)
				b.I(isa.OpADDI, 6, isa.RegZero, v)
			}
		}
		// Consumer lane 0, operand A.
		emitProducer()
		b.R(isa.OpADD, 11, s, isa.RegZero)
		b.R(isa.OpOR, 10, 9, isa.RegZero)
		b.Misr(11)
		// Consumer lane 0, operand B.
		emitProducer()
		b.R(isa.OpSUB, 11, isa.RegZero, s)
		b.R(isa.OpOR, 10, 9, isa.RegZero)
		b.Misr(11)
		// Consumer lane 1, operand A.
		emitProducer()
		b.R(isa.OpOR, 10, 9, isa.RegZero)
		b.R(isa.OpADD, 11, s, isa.RegZero)
		b.Misr(11)
		// Consumer lane 1, operand B.
		emitProducer()
		b.R(isa.OpOR, 10, 9, isa.RegZero)
		b.R(isa.OpSUB, 11, isa.RegZero, s)
		b.Misr(11)

		// Distance 2 (MEM/WB latch): one independent packet between
		// producer and the same four consumer positions.
		for pos := 0; pos < 4; pos++ {
			emitProducer()
			b.R(isa.OpOR, 9, 10, isa.RegZero)
			b.R(isa.OpOR, 10, 9, isa.RegZero)
			switch pos {
			case 0:
				b.R(isa.OpADD, 11, s, isa.RegZero)
				b.R(isa.OpOR, 9, 10, isa.RegZero)
			case 1:
				b.R(isa.OpSUB, 11, isa.RegZero, s)
				b.R(isa.OpOR, 9, 10, isa.RegZero)
			case 2:
				b.R(isa.OpOR, 9, 10, isa.RegZero)
				b.R(isa.OpADD, 11, s, isa.RegZero)
			default:
				b.R(isa.OpOR, 9, 10, isa.RegZero)
				b.R(isa.OpSUB, 11, isa.RegZero, s)
			}
			b.Misr(11)
		}
	}

	// Intra-packet RAW comparators (operands A and B): a false match turns
	// into a cascade, handing the consumer the producer's value.
	b.I(isa.OpADDI, 6, isa.RegZero, v)
	b.R(isa.OpADD, 11, s, isa.RegZero) // CmpIntra RAW on operand A
	b.Misr(11)
	b.I(isa.OpADDI, 6, isa.RegZero, v)
	b.R(isa.OpSUB, 11, isa.RegZero, s) // CmpIntra RAW on operand B
	b.Misr(11)
	// Intra-packet WAW comparator: a false match splits the packet, which
	// only the dual-issue counter delta can see.
	b.I(isa.OpADDI, 6, isa.RegZero, v)
	b.I(isa.OpADDI, s, isa.RegZero, int32(s)*0x101)
	b.Misr(s)

	// Load-use comparators: producer load in each lane, candidate in each
	// slot and operand; a false match inserts a spurious stall (counter
	// delta), a missing match is covered by loaduse-real.
	for prodLane := 0; prodLane < 2; prodLane++ {
		emitLoad := func() {
			if prodLane == 0 {
				b.Load(isa.OpLW, 6, isa.RegBase, 0)
				b.R(isa.OpOR, 9, 10, isa.RegZero)
			} else {
				b.R(isa.OpOR, 9, 10, isa.RegZero)
				b.Load(isa.OpLW, 6, isa.RegBase, 0)
			}
		}
		emitLoad()
		b.R(isa.OpADD, 11, s, isa.RegZero)
		b.R(isa.OpOR, 10, 9, isa.RegZero)
		b.Misr(11)
		emitLoad()
		b.R(isa.OpSUB, 11, isa.RegZero, s)
		b.R(isa.OpOR, 10, 9, isa.RegZero)
		b.Misr(11)
		emitLoad()
		b.R(isa.OpOR, 10, 9, isa.RegZero)
		b.R(isa.OpADD, 11, s, isa.RegZero)
		b.Misr(11)
		emitLoad()
		b.R(isa.OpOR, 10, 9, isa.RegZero)
		b.R(isa.OpSUB, 11, isa.RegZero, s)
		b.Misr(11)
	}
}

// emitCmpRealDeps drives a genuine r6 dependency through every forwarding
// comparator position (producer lane x distance x consumer lane x operand).
// A stuck-at-0 bit anywhere in a comparator kills its match outright, so
// the consumer silently reads the stale register-file value instead of the
// bypass — one real dependency per position exposes all five bits' SA0
// faults. (The near-miss sweep in emitCmpSweep covers the SA1 polarity.)
func emitCmpRealDeps(b *asm.Builder) {
	val := int32(0x700)
	for prodLane := 0; prodLane < 2; prodLane++ {
		for dist := 1; dist <= 2; dist++ {
			for pos := 0; pos < 4; pos++ { // consumer lane x operand
				val += 3
				if prodLane == 0 {
					b.I(isa.OpADDI, 6, isa.RegZero, val)
					b.R(isa.OpOR, 9, 10, isa.RegZero)
				} else {
					b.R(isa.OpOR, 9, 10, isa.RegZero)
					b.I(isa.OpADDI, 6, isa.RegZero, val)
				}
				if dist == 2 {
					b.R(isa.OpOR, 9, 10, isa.RegZero)
					b.R(isa.OpOR, 10, 9, isa.RegZero)
				}
				switch pos {
				case 0: // consumer lane 0, operand A
					b.R(isa.OpADD, 11, 6, isa.RegZero)
					b.R(isa.OpOR, 9, 10, isa.RegZero)
				case 1: // lane 0, operand B
					b.R(isa.OpSUB, 11, isa.RegZero, 6)
					b.R(isa.OpOR, 9, 10, isa.RegZero)
				case 2: // lane 1, operand A
					b.R(isa.OpOR, 9, 10, isa.RegZero)
					b.R(isa.OpADD, 11, 6, isa.RegZero)
				default: // lane 1, operand B
					b.R(isa.OpOR, 9, 10, isa.RegZero)
					b.R(isa.OpSUB, 11, isa.RegZero, 6)
				}
				b.Misr(11)
			}
		}
	}
}
