package sbst

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// Generic boot-time STL routines. These are the "rest of the library":
// conventional self-test procedures for the ALU, shifter, multiplier and
// load/store path that are not sensitive to multi-core timing (their
// signatures are pure dataflow). The Table I experiment runs them in
// parallel on 1–3 cores to measure how bus contention scales the stall
// counts; they also serve as the background workload whose bus traffic the
// fault campaigns replay.

// NewALUTest exercises the adder/logic units with a pattern sweep.
func NewALUTest(dataBase uint32) *Routine {
	r := &Routine{Name: "alu", Target: "alu", DataBase: dataBase}
	r.DataWords = []uint32{
		0x00000000, 0xFFFFFFFF, 0xAAAAAAAA, 0x55555555,
		0x01234567, 0x89ABCDEF, 0x7FFFFFFF, 0x80000000,
	}
	r.ScratchBytes = 32
	n := len(r.DataWords)
	r.Blocks = append(r.Blocks, Block{Name: "sweep", Emit: func(b *asm.Builder) {
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				b.Load(isa.OpLW, 1, isa.RegBase, int32(i*4))
				b.Load(isa.OpLW, 2, isa.RegBase, int32(j*4))
				b.R(isa.OpADD, 3, 1, 2)
				b.R(isa.OpSUB, 4, 1, 2)
				b.R(isa.OpAND, 5, 1, 2)
				b.R(isa.OpOR, 6, 1, 2)
				b.R(isa.OpXOR, 7, 1, 2)
				b.R(isa.OpNOR, 8, 1, 2)
				b.R(isa.OpSLT, 9, 1, 2)
				b.R(isa.OpSLTU, 10, 1, 2)
				for reg := uint8(3); reg <= 10; reg++ {
					b.Misr(reg)
				}
			}
		}
	}})
	return r
}

// NewShiftTest exercises the barrel shifter at every shift amount.
func NewShiftTest(dataBase uint32) *Routine {
	r := &Routine{Name: "shift", Target: "shifter", DataBase: dataBase}
	r.DataWords = []uint32{0x80000001, 0xA5A5A5A5, 0x00000001}
	r.ScratchBytes = 16
	r.Blocks = append(r.Blocks, Block{Name: "amounts", Emit: func(b *asm.Builder) {
		for w := 0; w < len(r.DataWords); w++ {
			b.Load(isa.OpLW, 1, isa.RegBase, int32(w*4))
			b.Nop()
			b.Nop()
			b.Nop()
			for sh := int32(0); sh < 32; sh += 3 {
				b.Shift(isa.OpSLL, 3, 1, sh)
				b.Shift(isa.OpSRL, 4, 1, sh)
				b.Shift(isa.OpSRA, 5, 1, sh)
				b.Misr(3)
				b.Misr(4)
				b.Misr(5)
			}
			// Variable shifts through registers.
			b.I(isa.OpADDI, 6, isa.RegZero, 13)
			b.R(isa.OpSLLV, 7, 1, 6)
			b.R(isa.OpSRLV, 8, 1, 6)
			b.R(isa.OpSRAV, 9, 1, 6)
			b.Misr(7)
			b.Misr(8)
			b.Misr(9)
		}
	}})
	return r
}

// NewMulTest exercises the multiplier (including the overflow-detecting
// MULV in its non-trapping range).
func NewMulTest(dataBase uint32) *Routine {
	r := &Routine{Name: "mul", Target: "multiplier", DataBase: dataBase}
	r.DataWords = []uint32{3, 0x10001, 0xFFFF, 0x7FFF, 0x00FF00FF}
	r.ScratchBytes = 16
	r.Blocks = append(r.Blocks, Block{Name: "products", Emit: func(b *asm.Builder) {
		n := len(r.DataWords)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				b.Load(isa.OpLW, 1, isa.RegBase, int32(i*4))
				b.Load(isa.OpLW, 2, isa.RegBase, int32(j*4))
				b.Nop()
				b.Nop()
				b.R(isa.OpMUL, 3, 1, 2)
				b.Misr(3)
			}
		}
	}})
	return r
}

// NewLoadStoreTest exercises the load/store unit with word and byte
// traffic, marching addresses across a scratch buffer.
func NewLoadStoreTest(dataBase uint32) *Routine {
	r := &Routine{Name: "loadstore", Target: "lsu", DataBase: dataBase}
	r.DataWords = []uint32{0xDEADBEEF, 0x01020304}
	r.ScratchBytes = 128
	r.Blocks = append(r.Blocks, Block{Name: "march", Emit: func(b *asm.Builder) {
		base := int32(len(r.DataWords) * 4)
		for k := int32(0); k < 16; k++ {
			b.Load(isa.OpLW, 1, isa.RegBase, (k%2)*4)
			b.Nop()
			b.Nop()
			b.Nop()
			b.I(isa.OpADDI, 2, 1, k)
			b.Store(isa.OpSW, 2, isa.RegBase, base+k*4)
			b.Load(isa.OpLW, 3, isa.RegBase, base+k*4)
			b.Nop()
			b.Nop()
			b.Nop()
			b.Misr(3)
			b.Store(isa.OpSB, 3, isa.RegBase, base+64+k)
			b.Load(isa.OpLBU, 4, isa.RegBase, base+64+k)
			b.Nop()
			b.Nop()
			b.Nop()
			b.Misr(4)
		}
	}})
	return r
}

// NewBranchTest exercises the branch comparators; every branch is taken or
// not taken identically on every execution, as the cache-based strategy
// requires.
func NewBranchTest(dataBase uint32) *Routine {
	r := &Routine{Name: "branch", Target: "branch", DataBase: dataBase}
	r.DataWords = []uint32{5, 0xFFFFFFFB} // 5, -5
	r.ScratchBytes = 16
	r.Blocks = append(r.Blocks, Block{Name: "compares", Emit: func(b *asm.Builder) {
		b.Load(isa.OpLW, 1, isa.RegBase, 0)
		b.Load(isa.OpLW, 2, isa.RegBase, 4)
		b.Nop()
		b.Nop()
		cases := []struct {
			op       isa.Op
			rs1, rs2 uint8
			taken    bool
		}{
			{isa.OpBEQ, 1, 1, true}, {isa.OpBEQ, 1, 2, false},
			{isa.OpBNE, 1, 2, true}, {isa.OpBNE, 2, 2, false},
			{isa.OpBLT, 2, 1, true}, {isa.OpBLT, 1, 2, false},
			{isa.OpBGE, 1, 2, true}, {isa.OpBGE, 2, 1, false},
		}
		for idx, cs := range cases {
			lbl := b.AutoLabel(fmt.Sprintf("br%d_", idx))
			b.I(isa.OpADDI, 5, isa.RegZero, int32(100+idx))
			b.Branch(cs.op, cs.rs1, cs.rs2, lbl)
			b.I(isa.OpADDI, 5, 5, 1) // executed only when not taken
			b.Label(lbl)
			b.Misr(5)
		}
		// A counted loop: taken N-1 times then falls through, the same on
		// every execution.
		b.I(isa.OpADDI, 6, isa.RegZero, 8)
		b.R(isa.OpXOR, 7, 7, 7)
		top := b.AutoLabel("loop")
		b.Label(top)
		b.R(isa.OpADD, 7, 7, 6)
		b.I(isa.OpADDI, 6, 6, -1)
		b.Branch(isa.OpBNE, 6, isa.RegZero, top)
		b.Misr(7)
	}})
	return r
}

// StandardSTL returns the generic library used as the Table I parallel
// workload for one core, with per-core data areas carved from dataBase.
func StandardSTL(dataBase uint32) []*Routine {
	return []*Routine{
		NewALUTest(dataBase),
		NewShiftTest(dataBase + 0x100),
		NewMulTest(dataBase + 0x200),
		NewLoadStoreTest(dataBase + 0x300),
		NewBranchTest(dataBase + 0x400),
	}
}
