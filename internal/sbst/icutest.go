package sbst

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/isa"
)

// ICU test generator for synchronous imprecise interrupts, after the
// strategy of Singh et al. [21]: each interrupt source is triggered by the
// instruction class that raises it (overflowing ADDV/SUBV/MULV, DIVV by
// zero); a fixed-length padding sequence follows the trigger so the
// recognition pipeline matures mid-padding; the handler captures the cause
// and the imprecision distance — how many younger instructions retired
// before recognition — and the main flow folds both into the signature.
//
// The imprecision distance is a direct function of pipeline occupancy
// between trigger and recognition. Executed from contended flash it varies
// run to run, so this routine's signature is only stable when execution is
// isolated in the caches (or a TCM). The routine deliberately contains no
// data-dependent branches: after the padding the handler has always run
// (cached case) or the flag value itself becomes part of the signature.

// ICUOptions configures generation.
type ICUOptions struct {
	DataBase            uint32
	DummyLoadAfterStore bool
	// TriggerReps repeats each trigger sequence in a counted loop
	// (identical flow on every execution). Real ICU procedures fire every
	// source several times; it also makes the routine's run time dominate
	// its code size, the regime of the paper's Table IV. 0 means 24.
	TriggerReps int
}

func (o ICUOptions) reps() int32 {
	if o.TriggerReps > 0 {
		return int32(o.TriggerReps)
	}
	return 24
}

// icuPad is the padding length (instructions) after each trigger; it must
// exceed the recognition window even at full dual-issue rate so the handler
// has always run before the trigger block folds its observations.
const icuPad = 56

// NewICUTest builds the imprecise-interrupt routine.
func NewICUTest(o ICUOptions) *Routine {
	r := &Routine{
		Name:           "icu",
		Target:         "icu",
		DataBase:       o.DataBase,
		UsesInterrupts: true,
		NoSplit:        true,
	}
	r.DataWords = []uint32{0x7FFFFFFF, 0x80000000, 0x00010000, 0x12345678}
	r.ScratchBytes = 32

	r.Blocks = append(r.Blocks, RegInitBlock())
	r.Blocks = append(r.Blocks, Block{Name: "setup", Emit: emitICUSetup})
	type trig struct {
		name string
		op   isa.Op
		// operand immediates are loaded from the data table
		aOff, bOff int32
	}
	trigs := []trig{
		{"addv-ovf", isa.OpADDV, 0, 0},   // MaxInt32 + MaxInt32: overflow
		{"subv-ovf", isa.OpSUBV, 4, 0},   // MinInt32 - MaxInt32: overflow
		{"mulv-ovf", isa.OpMULV, 8, 8},   // 0x10000 * 0x10000: overflow
		{"divv-dbz", isa.OpDIVV, 12, -1}, // x / 0
	}
	for _, tg := range trigs {
		for variant := 0; variant < 3; variant++ {
			tg, variant := tg, variant
			r.Blocks = append(r.Blocks, Block{
				Name: fmt.Sprintf("%s-v%d", tg.name, variant),
				Emit: func(b *asm.Builder) {
					emitTrigger(b, tg.op, tg.aOff, tg.bOff, variant, o.reps())
				},
			})
		}
	}
	r.Blocks = append(r.Blocks, Block{Name: "masked", Emit: emitMaskedTrigger})
	r.Blocks = append(r.Blocks, Block{Name: "handler", Emit: emitHandler})
	return r
}

// emitICUSetup points the vector at the handler block and enables all
// lines. The handler label is routine-local; NewICUTest emits the handler
// once at the end of the body, jumped over by fall-through protection
// inside its own block.
func emitICUSetup(b *asm.Builder) {
	b.LiAddr(1, "icu_handler")
	b.CsrW(isa.CsrIVec, 1)
	b.I(isa.OpADDI, 1, isa.RegZero, 15)
	b.CsrW(isa.CsrIEnable, 1)
}

// emitTrigger raises one event and folds flag, cause and distance.
// Variants change the padding's issue shape so recognition lands at
// different pipeline occupancies, producing distinct distances.
func emitTrigger(b *asm.Builder, op isa.Op, aOff, bOff int32, variant int, reps int32) {
	b.I(isa.OpADDI, 22, isa.RegZero, reps)
	top := b.AutoLabel("trig")
	b.Label(top)
	// Clear the handler flag and captured registers.
	b.R(isa.OpXOR, 23, 23, 23)
	b.R(isa.OpXOR, 24, 24, 24)
	b.R(isa.OpXOR, 25, 25, 25)
	b.R(isa.OpXOR, 21, 21, 21)
	// Load operands; the trigger consumes the second load in its load-use
	// shadow, so the moment the event is raised — and with it where the
	// recognition window lands in the padding stream — is coupled to the
	// data access latency the bus dictates.
	b.Load(isa.OpLW, 2, isa.RegBase, aOff)
	b.Nop()
	if bOff >= 0 {
		b.Load(isa.OpLW, 3, isa.RegBase, bOff)
	} else {
		b.R(isa.OpXOR, 3, 3, 3) // zero divisor for DIVV
	}
	// Trigger.
	b.R(op, 4, 2, 3)
	// Fixed-length padding. A load heads the shadow of every trigger so
	// the retire pattern inside the recognition window — and therefore the
	// imprecision distance — depends on data-access latency; the variants
	// then differ in issue shape to produce distinct distances.
	b.Load(isa.OpLW, 8, isa.RegBase, 0)
	for i := 1; i < icuPad; i++ {
		switch variant {
		case 0:
			b.I(isa.OpADDI, 5, 5, 1) // serial chain: cascade pairs
		case 1:
			b.R(isa.OpOR, uint8(6+i%4), 5, isa.RegZero) // independent: dual issue
		default:
			if i%3 == 0 {
				b.Load(isa.OpLW, 8, isa.RegBase, 0) // memory traffic in the shadow
			} else {
				b.I(isa.OpADDI, 9, 9, 1)
			}
		}
	}
	// Fold the handler's observations. In a deterministic execution the
	// handler has always run by now (flag == 1).
	b.Misr(23)
	b.Misr(24)
	b.Misr(25)
	b.Misr(21)
	b.I(isa.OpADDI, 22, 22, -1)
	b.Branch(isa.OpBNE, 22, isa.RegZero, top)
}

// emitMaskedTrigger raises an event with interrupts disabled: no handler
// runs; the pending line is observed through ipend, folded, then cleared.
// This exercises the enable-mask and pending-line fault sites.
func emitMaskedTrigger(b *asm.Builder) {
	b.CsrW(isa.CsrIEnable, isa.RegZero)
	b.R(isa.OpXOR, 23, 23, 23)
	b.Nop()
	b.Load(isa.OpLW, 2, isa.RegBase, 12)
	b.R(isa.OpXOR, 3, 3, 3)
	b.R(isa.OpDIVV, 4, 2, 3) // pending, but masked
	for i := 0; i < 8; i++ {
		b.Nop()
	}
	b.CsrR(5, isa.CsrIPend)
	b.Misr(5)
	b.Misr(23) // flag must still be zero
	b.I(isa.OpADDI, 6, isa.RegZero, 15)
	b.CsrW(isa.CsrIPend, 6) // write-one-to-clear
	b.CsrW(isa.CsrIEnable, 6)
}

// emitHandler is the interrupt handler block, placed at the end of the
// body behind a jump so straight-line execution never falls into it.
func emitHandler(b *asm.Builder) {
	skip := b.AutoLabel("skip")
	b.Jump(isa.OpJ, skip)
	b.Label("icu_handler")
	b.CsrR(24, isa.CsrICause)
	b.CsrR(25, isa.CsrIDist)
	b.CsrR(21, isa.CsrIEPC)
	// Observe EPC bits [5:2]: the word-offset within the padding window.
	// Folding absolute address bits would make the signature differ between
	// otherwise-equivalent program placements for no diagnostic gain.
	b.Shift(isa.OpSRL, 21, 21, 2)
	b.I(isa.OpANDI, 21, 21, 0xF)
	b.I(isa.OpADDI, 23, isa.RegZero, 1)
	b.Emit(isa.Inst{Op: isa.OpRFE})
	b.Label(skip)
}
